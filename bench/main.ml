(* E6: single-threaded micro-costs via Bechamel.

   Groups:
   - primitives: the paper's Figure 2 atoms (read/write/FAA/CAS/SWAP)
     on one arena cell;
   - mm.<scheme>: the memory-manager hot paths — alloc+release pair,
     deref+release pair, cas_link flip — for every registered scheme;
   - structures.<scheme>: one push+pop / enqueue+dequeue /
     insert+delete_min round trip.

   Quiescent single-thread numbers: they measure the constant factors
   (announcement writes, helping scans, share bookkeeping), not
   contention — experiments E1–E5 cover that. *)

open Bechamel
open Toolkit
module Mm = Mm_intf
module Value = Shmem.Value

let primitives_tests (module P : Atomics.Backend.PRIMS) =
  let cell = P.make 0 in
  [
    Test.make ~name:"read" (Staged.stage (fun () -> P.read cell));
    Test.make ~name:"write" (Staged.stage (fun () -> P.write cell 1));
    Test.make ~name:"faa" (Staged.stage (fun () -> P.faa cell 2));
    Test.make ~name:"swap" (Staged.stage (fun () -> P.swap cell 3));
    Test.make ~name:"cas-hit"
      (Staged.stage (fun () ->
           let v = P.read cell in
           P.cas cell ~old:v ~nw:v));
    Test.make ~name:"cas-miss"
      (Staged.stage (fun () -> P.cas cell ~old:(-1) ~nw:0));
  ]

let mm_tests backend scheme =
  let cfg =
    Mm.config ~backend ~threads:2 ~capacity:1024 ~num_links:1 ~num_data:1
      ~num_roots:2 ()
  in
  let mm = Harness.Registry.instantiate scheme cfg in
  let arena = Mm.arena mm in
  let root = Shmem.Arena.root_addr arena 0 in
  let seeded = Mm.alloc mm ~tid:0 in
  Mm.store_link mm ~tid:0 root seeded;
  Mm.release mm ~tid:0 seeded;
  (* Each body is a complete client operation: bracketed with
     enter/exit (EBR pins epochs there) and finishing with [terminate]
     for nodes leaving the structure (the retire point for HP/EBR; a
     no-op for the RC schemes). *)
  let op f =
    Staged.stage (fun () ->
        Mm.enter_op mm ~tid:0;
        f ();
        Mm.exit_op mm ~tid:0)
  in
  [
    Test.make ~name:"alloc+release"
      (op (fun () ->
           let p = Mm.alloc mm ~tid:0 in
           Mm.release mm ~tid:0 p;
           Mm.terminate mm ~tid:0 p));
    Test.make ~name:"deref+release"
      (op (fun () ->
           let p = Mm.deref mm ~tid:0 root in
           if not (Value.is_null p) then Mm.release mm ~tid:0 p));
    Test.make ~name:"cas_link-flip"
      (op (fun () ->
           let b = Mm.alloc mm ~tid:0 in
           let old = Mm.deref mm ~tid:0 root in
           ignore (Mm.cas_link mm ~tid:0 root ~old ~nw:b);
           if not (Value.is_null old) then begin
             Mm.release mm ~tid:0 old;
             Mm.terminate mm ~tid:0 old
           end;
           Mm.release mm ~tid:0 b));
  ]

let structure_tests scheme =
  let cfg =
    Mm.config ~threads:2 ~capacity:4096 ~num_links:6 ~num_data:3 ~num_roots:4
      ()
  in
  let mm = Harness.Registry.instantiate scheme cfg in
  let stack = Structures.Stack.create mm ~root:0 in
  let queue = Structures.Queue.create mm ~head_root:1 ~tail_root:2 ~tid:0 in
  let base =
    [
      Test.make ~name:"stack-push+pop"
        (Staged.stage (fun () ->
             Structures.Stack.push stack ~tid:0 7;
             Structures.Stack.pop stack ~tid:0));
      Test.make ~name:"queue-enq+deq"
        (Staged.stage (fun () ->
             Structures.Queue.enqueue queue ~tid:0 7;
             Structures.Queue.dequeue queue ~tid:0));
    ]
  in
  let base =
    base
    @ [
        (let cfg' =
           Mm.config ~threads:2 ~capacity:4096 ~num_links:1 ~num_data:2
             ~num_roots:0 ()
         in
         let mm' = Harness.Registry.instantiate scheme cfg' in
         let set = Structures.Oset.create mm' ~tid:0 in
         for k = 1 to 128 do
           ignore (Structures.Oset.insert set ~tid:0 (k * 2) 0)
         done;
         let k = ref 0 in
         Test.make ~name:"oset-ins+del+mem"
           (Staged.stage (fun () ->
                incr k;
                let key = 1 + (2 * (!k mod 128)) in
                ignore (Structures.Oset.insert set ~tid:0 key 0);
                ignore (Structures.Oset.mem set ~tid:0 key);
                ignore (Structures.Oset.remove set ~tid:0 key))));
      ]
  in
  if List.mem scheme Harness.Registry.rc_names then begin
    let pq = Structures.Pqueue.create mm ~seed:99 ~tid:0 in
    (* steady-state population *)
    let rng = Sched.Rng.create 4242 in
    for _ = 1 to 256 do
      Structures.Pqueue.insert pq ~tid:0 (1 + Sched.Rng.int rng 10_000) 0
    done;
    let k = ref 0 in
    base
    @ [
        Test.make ~name:"pq-insert+delmin"
          (Staged.stage (fun () ->
               incr k;
               Structures.Pqueue.insert pq ~tid:0
                 (1 + (!k * 7919 mod 10_000))
                 0;
               Structures.Pqueue.delete_min pq ~tid:0));
      ]
  end
  else base

let all_tests () =
  Test.make_grouped ~name:"E6"
    [
      (* One primitives group per backend: the sim/native delta is the
         cost of the Schedpoint dispatch itself. *)
      Test.make_grouped ~name:"primitives-sim"
        (primitives_tests (Atomics.Backend.prims Sim));
      Test.make_grouped ~name:"primitives-native"
        (primitives_tests (Atomics.Backend.prims Native));
      Test.make_grouped ~name:"mm-sim"
        (List.map
           (fun s -> Test.make_grouped ~name:s (mm_tests Atomics.Backend.Sim s))
           Harness.Registry.names);
      Test.make_grouped ~name:"mm-native"
        (List.map
           (fun s ->
             Test.make_grouped ~name:s (mm_tests Atomics.Backend.Native s))
           Harness.Registry.names);
      Test.make_grouped ~name:"structures"
        (List.map
           (fun s -> Test.make_grouped ~name:s (structure_tests s))
           [ "wfrc"; "lfrc"; "hp" ]);
    ]

let run_and_print () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (all_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Printf.sprintf "%.1f" x
        | _ -> "n/a"
      in
      rows := [ name; est ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  print_string (Harness.Table.render ~headers:[ "benchmark"; "ns/op" ] ~rows);
  print_endline
    "note: single-threaded micro-costs (E6); contention behaviour is \
     covered by `wfrc_bench run e1..e5`."

let () = run_and_print ()
