(** Plain-text experiment tables. *)

val render : headers:string list -> rows:string list list -> string
(** Aligned ASCII table (numeric-looking cells right-aligned). Raises
    [Invalid_argument] on ragged rows. *)

val csv : headers:string list -> rows:string list list -> string
(** RFC-4180-style CSV with quoting. *)
