lib/harness/registry.ml: Epoch Hazard Lfrc List Lockrc Mm_intf Printf String Wfrc
