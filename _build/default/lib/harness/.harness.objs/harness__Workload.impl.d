lib/harness/workload.ml: Array Sched
