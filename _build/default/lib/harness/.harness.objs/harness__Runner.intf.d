lib/harness/runner.mli:
