lib/harness/metrics.ml: Array Fmt Printf
