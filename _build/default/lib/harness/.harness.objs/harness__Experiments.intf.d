lib/harness/experiments.mli:
