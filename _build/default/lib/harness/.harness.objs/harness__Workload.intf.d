lib/harness/workload.mli: Sched
