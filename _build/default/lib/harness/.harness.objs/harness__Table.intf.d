lib/harness/table.mli:
