lib/harness/runner.ml: Array Atomic Domain Unix
