lib/harness/registry.mli: Mm_intf
