lib/harness/experiments.ml: Array Atomics Hashtbl Lincheck List Metrics Mm_intf Option Printf Registry Runner Sched Shmem String Structures Table Wfrc Workload
