(** Latency/step statistics: log-bucketed histograms with exact
    min/max/mean, plus duration and rate formatting. *)

module Hist : sig
  type t

  val create : unit -> t

  val add : t -> int -> unit
  (** Record one (non-negative; clamped) sample. *)

  val merge_into : t -> t -> unit
  (** [merge_into dst src] folds [src] into [dst] (per-thread
      histograms are merged after a run). *)

  val count : t -> int
  val max_value : t -> int
  val min_value : t -> int
  val mean : t -> float

  val percentile : t -> float -> int
  (** [percentile t q] for [q] in [0,1]: an upper bound on the value
      at that quantile, exact within one log sub-bucket (~6%). *)
end

val pp_ns : Format.formatter -> int -> unit
val ns_to_string : int -> string
(** ["999ns"], ["1.5us"], ["2.0ms"], ["3.00s"]. *)

val ops_to_string : float -> string
(** ["2.50M"], ["3.2k"], ["42"]. *)
