(** Registry of the memory-management schemes (the paper's §1
    comparison space). *)

val all : (string * (module Mm_intf.S)) list

val names : string list
(** ["wfrc"; "lfrc"; "hp"; "ebr"; "lockrc"]. *)

val rc_names : string list
(** The reference-counting subset — the schemes that support arbitrary
    structures (used by the priority queue). *)

val find : string -> (module Mm_intf.S)
(** Raises [Invalid_argument] listing the known names. *)

val instantiate : string -> Mm_intf.config -> Mm_intf.instance
