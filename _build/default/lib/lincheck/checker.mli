(** Linearizability checking by Wing–Gong search with memoisation of
    failed (linearised-set, state) configurations. Practical for
    histories up to ~20 events. *)

module type SPEC = sig
  type state
  type op
  type res

  val init : unit -> state

  val step : state -> op -> res -> state option
  (** [step st op res] is [Some st'] iff the sequential object in [st]
      can execute [op] yielding exactly [res] (result-validating form:
      handles nondeterministic operations like AllocNode without
      enumeration). *)

  val hash : state -> int
  val equal : state -> state -> bool
  val pp_op : Format.formatter -> op -> unit
  val pp_res : Format.formatter -> res -> unit
end

module Make (S : SPEC) : sig
  type outcome = { ok : bool; explored : int }

  val check_events : (S.op, S.res) History.event array -> outcome

  val check : (S.op, S.res) History.event array -> bool
  (** [true] iff a legal sequential witness respecting real-time order
      exists. Raises [Invalid_argument] beyond 62 events. *)

  val pp_history :
    Format.formatter -> (S.op, S.res) History.event array -> unit
end
