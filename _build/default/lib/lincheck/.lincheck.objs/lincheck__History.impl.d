lib/lincheck/history.ml: Array Atomic Fmt List Sched
