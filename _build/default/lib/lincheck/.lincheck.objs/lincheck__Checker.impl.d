lib/lincheck/checker.ml: Array Fmt Format Hashtbl History List
