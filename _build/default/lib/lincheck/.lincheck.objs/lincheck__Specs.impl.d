lib/lincheck/specs.ml: Fmt Hashtbl List
