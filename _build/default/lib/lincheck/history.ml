(* Concurrent-history recording.

   Events are stamped with the deterministic engine's logical clock
   ([Sched.Engine.now]) when running under the simulator, falling back
   to a shared atomic counter for native runs. Each thread appends to
   its own buffer; [events] merges after the run. *)

type ('op, 'res) event = {
  tid : int;
  op : 'op;
  res : 'res;
  invoke : int;
  return : int;
}

type ('op, 'res) t = {
  buffers : ('op, 'res) event list ref array;
  clock : int Atomic.t; (* fallback logical clock for native runs *)
}

let create ~threads =
  {
    buffers = Array.init threads (fun _ -> ref []);
    clock = Atomic.make 0;
  }

let now t =
  if Sched.Engine.active () then Sched.Engine.now ()
  else Atomic.fetch_and_add t.clock 1

let record t ~tid op f =
  let invoke = now t in
  let res = f () in
  let return = now t in
  t.buffers.(tid) := { tid; op; res; invoke; return } :: !(t.buffers.(tid));
  res

let events t =
  let all =
    Array.to_list t.buffers |> List.concat_map (fun b -> !b)
  in
  let arr = Array.of_list all in
  Array.sort (fun a b -> compare a.invoke b.invoke) arr;
  arr

let clear t = Array.iter (fun b -> b := []) t.buffers

let pp_event pp_op pp_res ppf e =
  Fmt.pf ppf "[t%d %d..%d] %a -> %a" e.tid e.invoke e.return pp_op e.op
    pp_res e.res
