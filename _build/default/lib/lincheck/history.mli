(** Concurrent-history recording for linearizability checking.

    Timestamps come from the deterministic engine's step clock when a
    simulation is active, else from a shared atomic counter. Threads
    append to private buffers; {!events} merges and sorts. *)

type ('op, 'res) event = {
  tid : int;
  op : 'op;
  res : 'res;
  invoke : int;
  return : int;
}

type ('op, 'res) t

val create : threads:int -> ('op, 'res) t

val record : ('op, 'res) t -> tid:int -> 'op -> (unit -> 'res) -> 'res
(** [record t ~tid op f] runs [f], logging the operation with its
    invocation/response stamps, and returns [f ()]'s result. *)

val events : ('op, 'res) t -> ('op, 'res) event array
(** All recorded events, sorted by invocation time. *)

val clear : ('op, 'res) t -> unit

val pp_event :
  (Format.formatter -> 'op -> unit) ->
  (Format.formatter -> 'res -> unit) ->
  Format.formatter ->
  ('op, 'res) event ->
  unit
