(* Linearizability checking by the Wing–Gong search:

   find a total order of the events that (a) respects real-time order
   (an op returning before another's invocation must precede it) and
   (b) is a legal sequential execution of the spec. The search
   memoises failed (linearised-set, state) pairs, which keeps small
   histories (<= ~20 events) tractable.

   The spec validates a recorded result rather than enumerating
   possible results, which handles nondeterministic operations (e.g.
   AllocNode may return any free node) without blow-up. *)

module type SPEC = sig
  type state
  type op
  type res

  val init : unit -> state

  val step : state -> op -> res -> state option
  (** [step st op res] is [Some st'] iff the sequential object in
      state [st] can execute [op] yielding exactly [res]. *)

  val hash : state -> int
  val equal : state -> state -> bool
  val pp_op : Format.formatter -> op -> unit
  val pp_res : Format.formatter -> res -> unit
end

module Make (S : SPEC) = struct
  type outcome = { ok : bool; explored : int }

  let max_events = 62

  let check_events (events : (S.op, S.res) History.event array) =
    let n = Array.length events in
    if n > max_events then
      invalid_arg "Lincheck: history too long for bitset search";
    let full = (1 lsl n) - 1 in
    let explored = ref 0 in
    (* Failed configurations: mask -> states already proven dead. *)
    let dead : (int, S.state list ref) Hashtbl.t = Hashtbl.create 256 in
    let is_dead mask st =
      match Hashtbl.find_opt dead mask with
      | None -> false
      | Some l -> List.exists (S.equal st) !l
    in
    let mark_dead mask st =
      match Hashtbl.find_opt dead mask with
      | None -> Hashtbl.replace dead mask (ref [ st ])
      | Some l -> l := st :: !l
    in
    let rec go mask st =
      incr explored;
      if mask = full then true
      else if is_dead mask st then false
      else begin
        (* Earliest return among unlinearised events. *)
        let min_ret = ref max_int in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) = 0 && events.(i).return < !min_ret then
            min_ret := events.(i).return
        done;
        let ok = ref false in
        let i = ref 0 in
        while (not !ok) && !i < n do
          let e = events.(!i) in
          if mask land (1 lsl !i) = 0 && e.invoke <= !min_ret then begin
            match S.step st e.op e.res with
            | Some st' -> if go (mask lor (1 lsl !i)) st' then ok := true
            | None -> ()
          end;
          incr i
        done;
        if not !ok then mark_dead mask st;
        !ok
      end
    in
    let ok = go 0 (S.init ()) in
    { ok; explored = !explored }

  let check events = (check_events events).ok

  let pp_history ppf events =
    Array.iter
      (fun e ->
        History.pp_event S.pp_op S.pp_res ppf e;
        Fmt.pf ppf "@.")
      events
end
