(* Sequential specifications used by the linearizability experiments
   (E7) and the test suite. Each spec validates recorded results, so
   nondeterministic operations (AllocNode) are handled naturally. *)

(* -- Shared-link semantics: DeRefLink / CompareAndSwapLink / store --
   State: the contents of each observed link. This is the object
   whose linearizability the paper's Lemmas 2–5 establish. *)
module Link_ops = struct
  type op =
    | Deref of int                (* link address *)
    | Cas of int * int * int      (* link, old, new *)
    | Store of int * int          (* link, value *)

  type res = Word of int | Bool of bool | Unit

  (* Sorted association list: canonical representation so structural
     equality and hashing are sound. *)
  type state = (int * int) list

  let initial : (int * int) list ref = ref []
  let init () = !initial
  let set_initial links = initial := List.sort compare links

  let get st l = match List.assoc_opt l st with Some v -> v | None -> 0

  let set st l v =
    let rec go = function
      | [] -> [ (l, v) ]
      | (l', _) :: rest when l' = l -> (l, v) :: rest
      | (l', _) as hd :: rest when l' < l -> hd :: go rest
      | rest -> (l, v) :: rest
    in
    go st

  let step st op res =
    match (op, res) with
    | Deref l, Word w -> if get st l = w then Some st else None
    | Cas (l, old, nw), Bool true ->
        if get st l = old then Some (set st l nw) else None
    | Cas (l, old, _), Bool false -> if get st l <> old then Some st else None
    | Store (l, v), Unit -> Some (set st l v)
    | _ -> None

  let hash = Hashtbl.hash
  let equal = ( = )

  let pp_op ppf = function
    | Deref l -> Fmt.pf ppf "deref(&%d)" l
    | Cas (l, o, n) -> Fmt.pf ppf "cas(&%d,%d,%d)" l o n
    | Store (l, v) -> Fmt.pf ppf "store(&%d,%d)" l v

  let pp_res ppf = function
    | Word w -> Fmt.pf ppf "%d" w
    | Bool b -> Fmt.pf ppf "%b" b
    | Unit -> Fmt.pf ppf "()"
end

(* -- Free-multiset semantics of AllocNode/FreeNode (Definition 1):
   AN() = n requires n ∈ F; FN(n) requires n ∉ F. We observe alloc
   and release-to-zero (the point Del(n) is fulfilled) from outside,
   so the spec tracks the allocated set. *)
module Alloc_ops = struct
  type op = Alloc | Free of int
  type res = Node of int | Unit

  type state = int list (* sorted allocated handles *)

  let init () = []

  let rec insert_sorted x = function
    | [] -> [ x ]
    | y :: rest when y < x -> y :: insert_sorted x rest
    | rest -> x :: rest

  let step st op res =
    match (op, res) with
    | Alloc, Node n ->
        if List.mem n st then None (* double allocation! *)
        else Some (insert_sorted n st)
    | Free n, Unit ->
        if List.mem n st then Some (List.filter (fun x -> x <> n) st)
        else None (* freeing something not allocated *)
    | _ -> None

  let hash = Hashtbl.hash
  let equal = ( = )

  let pp_op ppf = function
    | Alloc -> Fmt.string ppf "alloc"
    | Free n -> Fmt.pf ppf "free(%d)" n

  let pp_res ppf = function
    | Node n -> Fmt.pf ppf "#%d" n
    | Unit -> Fmt.string ppf "()"
end

(* -- LIFO stack over ints. *)
module Stack_ops = struct
  type op = Push of int | Pop
  type res = Unit | Value of int | Empty
  type state = int list

  let init () = []

  let step st op res =
    match (op, res, st) with
    | Push v, Unit, _ -> Some (v :: st)
    | Pop, Empty, [] -> Some []
    | Pop, Value v, x :: rest when x = v -> Some rest
    | _ -> None

  let hash = Hashtbl.hash
  let equal = ( = )

  let pp_op ppf = function
    | Push v -> Fmt.pf ppf "push(%d)" v
    | Pop -> Fmt.string ppf "pop"

  let pp_res ppf = function
    | Unit -> Fmt.string ppf "()"
    | Value v -> Fmt.pf ppf "%d" v
    | Empty -> Fmt.string ppf "empty"
end

(* -- FIFO queue over ints. *)
module Queue_ops = struct
  type op = Enq of int | Deq
  type res = Unit | Value of int | Empty
  type state = int list (* front at head *)

  let init () = []

  let step st op res =
    match (op, res, st) with
    | Enq v, Unit, _ -> Some (st @ [ v ])
    | Deq, Empty, [] -> Some []
    | Deq, Value v, x :: rest when x = v -> Some rest
    | _ -> None

  let hash = Hashtbl.hash
  let equal = ( = )

  let pp_op ppf = function
    | Enq v -> Fmt.pf ppf "enq(%d)" v
    | Deq -> Fmt.string ppf "deq"

  let pp_res ppf = function
    | Unit -> Fmt.string ppf "()"
    | Value v -> Fmt.pf ppf "%d" v
    | Empty -> Fmt.string ppf "empty"
end

(* -- Ordered set over int keys: insert is a no-op returning false on
   duplicates; remove returns whether the key was present; mem is a
   pure query. *)
module Set_ops = struct
  type op = Insert of int | Remove of int | Mem of int
  type res = Bool of bool
  type state = int list (* sorted keys *)

  let init () = []

  let rec insert_sorted x = function
    | [] -> [ x ]
    | y :: rest when y < x -> y :: insert_sorted x rest
    | rest -> x :: rest

  let step st op res =
    match (op, res) with
    | Insert k, Bool r ->
        let fresh = not (List.mem k st) in
        if r = fresh then Some (if fresh then insert_sorted k st else st)
        else None
    | Remove k, Bool r ->
        let present = List.mem k st in
        if r = present then
          Some (if present then List.filter (fun x -> x <> k) st else st)
        else None
    | Mem k, Bool r -> if r = List.mem k st then Some st else None

  let hash = Hashtbl.hash
  let equal = ( = )

  let pp_op ppf = function
    | Insert k -> Fmt.pf ppf "insert(%d)" k
    | Remove k -> Fmt.pf ppf "remove(%d)" k
    | Mem k -> Fmt.pf ppf "mem(%d)" k

  let pp_res ppf (Bool b) = Fmt.pf ppf "%b" b
end

(* -- Priority queue over int keys (values ignored for the spec).
   delete_min must return a minimal key present. *)
module Pqueue_ops = struct
  type op = Insert of int | DelMin
  type res = Unit | Key of int | Empty
  type state = int list (* sorted keys *)

  let init () = []

  let rec insert_sorted x = function
    | [] -> [ x ]
    | y :: rest when y < x -> y :: insert_sorted x rest
    | rest -> x :: rest

  let step st op res =
    match (op, res, st) with
    | Insert k, Unit, _ -> Some (insert_sorted k st)
    | DelMin, Empty, [] -> Some []
    | DelMin, Key k, x :: rest when x = k -> Some rest
    | _ -> None

  let hash = Hashtbl.hash
  let equal = ( = )

  let pp_op ppf = function
    | Insert k -> Fmt.pf ppf "insert(%d)" k
    | DelMin -> Fmt.string ppf "delmin"

  let pp_res ppf = function
    | Unit -> Fmt.string ppf "()"
    | Key k -> Fmt.pf ppf "%d" k
    | Empty -> Fmt.string ppf "empty"
end
