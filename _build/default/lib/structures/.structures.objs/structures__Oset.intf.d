lib/structures/oset.mli: Mm_intf
