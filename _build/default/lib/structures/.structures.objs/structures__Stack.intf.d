lib/structures/stack.mli: Mm_intf
