lib/structures/queue.ml: Fun List Mm_intf Shmem
