lib/structures/pqueue.mli: Mm_intf
