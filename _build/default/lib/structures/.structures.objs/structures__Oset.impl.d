lib/structures/oset.ml: Fun List Mm_intf Shmem
