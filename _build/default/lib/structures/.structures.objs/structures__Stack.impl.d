lib/structures/stack.ml: Fun List Mm_intf Shmem
