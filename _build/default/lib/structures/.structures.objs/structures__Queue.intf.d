lib/structures/queue.mli: Mm_intf
