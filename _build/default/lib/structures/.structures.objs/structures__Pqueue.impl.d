lib/structures/pqueue.ml: Array Fun List Mm_intf Sched Shmem
