lib/structures/hmap.mli: Mm_intf
