lib/structures/hmap.ml: Array List Mm_intf Oset
