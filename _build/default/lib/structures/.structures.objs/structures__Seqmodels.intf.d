lib/structures/seqmodels.mli:
