lib/structures/seqmodels.ml: List
