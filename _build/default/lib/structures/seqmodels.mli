(** Sequential reference models for differential testing of the
    concurrent structures. *)

module Stack_model : sig
  type t

  val create : unit -> t
  val push : t -> int -> unit
  val pop : t -> int option
  val is_empty : t -> bool
  val to_list : t -> int list
  (** Top first. *)
end

module Queue_model : sig
  type t

  val create : unit -> t
  val push : t -> int -> unit
  val pop : t -> int option
  val is_empty : t -> bool
  val to_list : t -> int list
  (** Front first. *)
end

module Pqueue_model : sig
  type t

  val create : unit -> t
  val insert : t -> int -> int -> unit
  val delete_min : t -> (int * int) option
  (** Stable for equal keys (insertion order). *)

  val is_empty : t -> bool
  val to_list : t -> (int * int) list
  val sorted_keys : t -> int list
end
