(* Sequential reference models for differential testing: the
   concurrent structures, run single-threaded or checked at
   quiescence, must agree with these observationally. *)

module Stack_model = struct
  type t = int list ref

  let create () = ref []
  let push t v = t := v :: !t

  let pop t =
    match !t with
    | [] -> None
    | v :: rest ->
        t := rest;
        Some v

  let is_empty t = !t = []
  let to_list t = !t
end

module Queue_model = struct
  (* Two-list queue with amortised O(1) operations. *)
  type t = { mutable front : int list; mutable back : int list }

  let create () = { front = []; back = [] }
  let push t v = t.back <- v :: t.back

  let pop t =
    match t.front with
    | v :: rest ->
        t.front <- rest;
        Some v
    | [] -> (
        match List.rev t.back with
        | [] -> None
        | v :: rest ->
            t.front <- rest;
            t.back <- [];
            Some v)

  let is_empty t = t.front = [] && t.back = []
  let to_list t = t.front @ List.rev t.back
end

module Pqueue_model = struct
  (* Sorted association list keyed by priority; duplicates kept in
     insertion order (the concurrent queue makes no promise about the
     relative order of equal keys, so comparisons must account for
     that). *)
  type t = (int * int) list ref

  let create () = ref []

  let insert t k v =
    let rec go = function
      | [] -> [ (k, v) ]
      | (k', _) as hd :: rest when k' <= k -> hd :: go rest
      | rest -> (k, v) :: rest
    in
    t := go !t

  let delete_min t =
    match !t with
    | [] -> None
    | kv :: rest ->
        t := rest;
        Some kv

  let is_empty t = !t = []
  let to_list t = !t

  (* Multiset view for order-insensitive comparison of equal keys. *)
  let sorted_keys t = List.map fst !t
end
