(** Treiber stack over any {!Mm_intf.S} scheme (the §3.2 usage model).

    Layout requirements: at least one link slot (next) and one data
    word (value); one arena root cell for the top link. *)

type t

val create : Mm_intf.instance -> root:int -> t
(** [create mm ~root] uses arena root cell [root] as the top link. *)

val push : t -> tid:int -> int -> unit
val pop : t -> tid:int -> int option
val is_empty : t -> tid:int -> bool

val drain : t -> tid:int -> int list
(** Pop until empty (top-to-bottom order). Quiescent teardown helper. *)
