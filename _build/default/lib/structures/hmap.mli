(** Lock-free hash map: a fixed power-of-two array of {!Oset} buckets
    sharing one memory manager (Michael's hash-map construction).
    Scheme-generic like {!Oset}. Each map consumes two sentinel nodes
    per bucket. *)

type t

val create : Mm_intf.instance -> buckets:int -> tid:int -> t
(** [buckets] must be a positive power of two. *)

val num_buckets : t -> int
val insert : t -> tid:int -> int -> int -> bool
val remove : t -> tid:int -> int -> bool
val mem : t -> tid:int -> int -> bool
val lookup : t -> tid:int -> int -> int option

val size : t -> tid:int -> int
(** Quiescent count (sums bucket snapshots). *)

val to_list : t -> tid:int -> (int * int) list
(** Quiescent ascending (key, value) snapshot. *)

val clear : t -> tid:int -> int
