(* Treiber stack written against the scheme-independent MM signature,
   following the paper's §3.2 usage rules: links are only modified via
   [cas_link]/[store_link] (which manage the links' own references and,
   on WFRC, perform the HelpDeRef duty), and every reference acquired
   by [alloc]/[deref] is released before the operation returns.

   Node layout: link 0 = next, data 0 = value. Requires
   [num_links >= 1], [num_data >= 1], one root cell (the top link). *)

module Mm = Mm_intf
module Value = Shmem.Value

type t = {
  mm : Mm.instance;
  top : Value.addr;
}

let create mm ~root =
  let arena = Mm.arena mm in
  if Shmem.Layout.num_links (Shmem.Arena.layout arena) < 1 then
    invalid_arg "Stack.create: layout needs a next link";
  if Shmem.Layout.num_data (Shmem.Arena.layout arena) < 1 then
    invalid_arg "Stack.create: layout needs a value word";
  { mm; top = Shmem.Arena.root_addr arena root }

let push t ~tid v =
  Mm.enter_op t.mm ~tid;
  Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
  let arena = Mm.arena t.mm in
  let n = Mm.alloc t.mm ~tid in
  Shmem.Arena.write_data arena n 0 v;
  let next = Shmem.Arena.link_addr arena n 0 in
  let rec attempt () =
    let old = Mm.deref t.mm ~tid t.top in
    (* Transfer the top node into the new node's next link; the link
       share is managed by store_link (the slot is still private). *)
    Mm.store_link t.mm ~tid next old;
    let ok = Mm.cas_link t.mm ~tid t.top ~old ~nw:n in
    if not (Value.is_null old) then Mm.release t.mm ~tid old;
    if not ok then attempt ()
  in
  attempt ();
  Mm.release t.mm ~tid n

let pop t ~tid =
  Mm.enter_op t.mm ~tid;
  Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
  let arena = Mm.arena t.mm in
  let rec attempt () =
    let old = Mm.deref t.mm ~tid t.top in
    if Value.is_null old then None
    else begin
      let next = Mm.deref t.mm ~tid (Shmem.Arena.link_addr arena old 0) in
      if Mm.cas_link t.mm ~tid t.top ~old ~nw:next then begin
        let v = Shmem.Arena.read_data arena old 0 in
        if not (Value.is_null next) then Mm.release t.mm ~tid next;
        Mm.release t.mm ~tid old;
        Mm.terminate t.mm ~tid old;
        Some v
      end
      else begin
        if not (Value.is_null next) then Mm.release t.mm ~tid next;
        Mm.release t.mm ~tid old;
        attempt ()
      end
    end
  in
  attempt ()

let is_empty t ~tid =
  Mm.enter_op t.mm ~tid;
  Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
  let w = Mm.deref t.mm ~tid t.top in
  if Value.is_null w then true
  else begin
    Mm.release t.mm ~tid w;
    false
  end

(* Pop everything (quiescent teardown helper for leak tests). *)
let drain t ~tid =
  let rec go acc = match pop t ~tid with
    | None -> List.rev acc
    | Some v -> go (v :: acc)
  in
  go []
