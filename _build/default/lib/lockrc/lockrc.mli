(** The blocking strawman: reference counting with every operation
    serialised by a test-and-set spinlock (counted via
    [Lock_acquire]). Correct, simple, and subject to the convoying /
    priority-inversion behaviour that motivates the paper's
    non-blocking design. The lock is a CAS spinlock on an atomic cell,
    so the scheme also runs under the deterministic scheduler. *)

include Mm_intf.S
