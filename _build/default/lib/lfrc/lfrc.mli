(** The lock-free reference-counting baseline (Valois [19] as
    corrected by Michael & Scott [14]) — the "default lock-free memory
    management scheme" of the paper's §5 comparison.

    [deref] is the unbounded-retry read/FAA/validate loop of §3 (the
    retries are visible in the [Deref_retry] counter); the free-list
    is one stamp-tagged Treiber stack. Same reference-count
    conventions as {!Wfrc}. *)

include Mm_intf.S
