(** Epoch-based reclamation (3-epoch scheme) behind the common MM
    signature.

    Clients bracket each operation with [enter_op]/[exit_op]; a node
    retired by [terminate] in epoch [e] is recycled only after the
    global epoch has advanced twice. Reclamation is {e blocking}: one
    stalled reader pins the epoch and stops recycling — the trade-off
    the paper's §1 surveys (observable via the [Epoch_advance]
    counter). *)

include Mm_intf.S

val try_advance : t -> tid:int -> unit
(** Attempt one global-epoch advance (normally driven by
    [exit_op]). *)
