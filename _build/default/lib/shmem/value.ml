(* Word encodings for the simulated shared memory.

   The paper stores three kinds of values in single machine words:

   - node pointers (possibly null, possibly carrying a deletion mark
     in data-structure links, as in the skiplist of [18]);
   - link addresses (the [LinkOrPointer] union of Figure 4);
   - stamped pointers (used only by the Valois-baseline free-list to
     rule out ABA, the classic tagged-pointer fix).

   We encode node pointers as [handle lsl 1 lor mark] with [null = 0]
   and handles starting at 1, and link addresses as [-(addr+1)]. Links
   are therefore strictly negative and pointers non-negative: the two
   value spaces are disjoint, which is exactly the property the paper's
   Lemma 1 derives from its field layout. *)

type ptr = int
type addr = int

let null : ptr = 0

let is_null (p : ptr) = p = 0

let of_handle h =
  if h < 1 then invalid_arg "Value.of_handle: handles start at 1";
  h lsl 1

let handle (p : ptr) =
  if p <= 0 then invalid_arg "Value.handle: null or link";
  p lsr 1

let is_marked (p : ptr) = p land 1 = 1

let mark (p : ptr) =
  if is_null p then invalid_arg "Value.mark: null";
  p lor 1

let unmark (p : ptr) = p land lnot 1

let same_node (a : ptr) (b : ptr) = unmark a = unmark b && not (is_null a)

(* Link-address encoding for the announcement cells. *)

let enc_link (a : addr) =
  if a < 0 then invalid_arg "Value.enc_link: negative address";
  -(a + 1)

let dec_link v =
  if v >= 0 then invalid_arg "Value.dec_link: not a link";
  -v - 1

let is_link v = v < 0

(* Stamped pointers for the baseline free-list: [stamp] in the high
   bits, pointer in the low 32. Stamps wrap at 2^30 so the packed value
   stays a positive OCaml int. *)

let stamp_bits = 30
let ptr_bits = 32
let max_stamp = (1 lsl stamp_bits) - 1

let pack_stamped ~stamp ~ptr =
  if ptr < 0 || ptr >= 1 lsl ptr_bits then invalid_arg "Value.pack_stamped";
  ((stamp land max_stamp) lsl ptr_bits) lor ptr

let stamped_ptr v = v land ((1 lsl ptr_bits) - 1)
let stamped_stamp v = (v lsr ptr_bits) land max_stamp

let pp_ptr ppf p =
  if is_null p then Fmt.string ppf "⊥"
  else if is_marked p then Fmt.pf ppf "#%d!" (handle p)
  else Fmt.pf ppf "#%d" (handle p)

let pp_word ppf v =
  if is_link v then Fmt.pf ppf "&%d" (dec_link v) else pp_ptr ppf v
