lib/shmem/value.ml: Fmt
