lib/shmem/layout.mli: Format
