lib/shmem/value.mli: Format
