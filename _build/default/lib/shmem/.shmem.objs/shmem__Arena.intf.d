lib/shmem/arena.mli: Atomics Format Layout Value
