lib/shmem/layout.ml: Fmt
