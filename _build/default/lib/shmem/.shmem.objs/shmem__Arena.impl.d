lib/shmem/arena.ml: Array Atomics Fmt Layout Value
