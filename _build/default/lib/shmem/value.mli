(** Word encodings for the simulated shared memory.

    Node pointers are [handle lsl 1 lor mark] with [null = 0]; link
    addresses are stored negated. Pointers are non-negative and links
    strictly negative, implementing the disjointness of the paper's
    Lemma 1 directly in the value space. *)

type ptr = int
(** An encoded node pointer: [null], or a handle plus a deletion-mark
    bit (bit 0). Non-negative by construction. *)

type addr = int
(** A cell index in an {!Arena} — the paper's "pointer to Node"
    location, i.e. a link. Non-negative. *)

val null : ptr
val is_null : ptr -> bool

val of_handle : int -> ptr
(** [of_handle h] is the unmarked pointer to node [h]; [h >= 1]. *)

val handle : ptr -> int
(** Node handle of a non-null pointer (mark ignored). *)

val is_marked : ptr -> bool
val mark : ptr -> ptr
val unmark : ptr -> ptr

val same_node : ptr -> ptr -> bool
(** [same_node a b] iff both point at the same node, marks ignored. *)

val enc_link : addr -> int
(** Encode a link address for storage in an announcement cell
    ([LinkOrPointer] of Figure 4). Strictly negative. *)

val dec_link : int -> addr
val is_link : int -> bool

val max_stamp : int

val pack_stamped : stamp:int -> ptr:ptr -> int
(** Stamped pointer for the baseline free-list's ABA protection:
    pointer in the low 32 bits, stamp (mod 2{^30}) above. *)

val stamped_ptr : int -> ptr
val stamped_stamp : int -> int

val pp_ptr : Format.formatter -> ptr -> unit
val pp_word : Format.formatter -> int -> unit
