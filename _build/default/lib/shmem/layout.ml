(* Node layout: the paper's Node structure (Figure 3) generalised.

   Every node starts with [mm_ref] (offset 0) and [mm_next] (offset 1),
   followed by [num_links] link slots — the shared links the memory
   manager must release recursively when reclaiming the node (line R3)
   — and [num_data] plain data words the manager never interprets.

   [mm_ref] being at offset 0 is load-bearing: the paper's Lemma 1
   rests on a link never being the first field of a node. Our encoding
   makes links and pointers disjoint by sign as well, but we keep the
   layout faithful. *)

type t = { num_links : int; num_data : int; node_size : int }

let mm_ref_offset = 0
let mm_next_offset = 1
let header_size = 2

let create ~num_links ~num_data =
  if num_links < 0 || num_data < 0 then invalid_arg "Layout.create";
  { num_links; num_data; node_size = header_size + num_links + num_data }

let num_links t = t.num_links
let num_data t = t.num_data
let node_size t = t.node_size

let link_offset t i =
  if i < 0 || i >= t.num_links then invalid_arg "Layout.link_offset";
  header_size + i

let data_offset t j =
  if j < 0 || j >= t.num_data then invalid_arg "Layout.data_offset";
  header_size + t.num_links + j

let pp ppf t =
  Fmt.pf ppf "layout(links=%d, data=%d, size=%d)" t.num_links t.num_data
    t.node_size
