(** Node layout: [mm_ref]; [mm_next]; [num_links] link slots that the
    memory manager releases recursively on reclamation (paper line R3);
    [num_data] uninterpreted data words. *)

type t

val create : num_links:int -> num_data:int -> t

val mm_ref_offset : int
(** Always 0 — the paper's Lemma 1 depends on [mm_ref] being first. *)

val mm_next_offset : int
val header_size : int

val num_links : t -> int
val num_data : t -> int
val node_size : t -> int

val link_offset : t -> int -> int
(** [link_offset t i] is the cell offset of link slot [i]. *)

val data_offset : t -> int -> int
(** [data_offset t j] is the cell offset of data word [j]. *)

val pp : Format.formatter -> t -> unit
