lib/atomics/schedpoint.mli:
