lib/atomics/counters.mli: Format
