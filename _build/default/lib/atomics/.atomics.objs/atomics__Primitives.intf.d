lib/atomics/primitives.mli: Atomic
