lib/atomics/backoff.mli:
