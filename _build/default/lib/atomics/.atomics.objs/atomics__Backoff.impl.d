lib/atomics/backoff.ml: Domain Schedpoint
