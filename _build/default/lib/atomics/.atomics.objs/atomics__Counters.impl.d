lib/atomics/counters.ml: Array Fmt List
