lib/atomics/primitives.ml: Atomic Schedpoint
