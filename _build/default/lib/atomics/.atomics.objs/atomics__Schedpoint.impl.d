lib/atomics/schedpoint.ml: Fun
