(* Word-level atomic primitives of the paper's Figure 2, over OCaml 5
   [int Atomic.t] cells. Each primitive crosses exactly one scheduling
   point, so a deterministic scheduler observes the same atomicity
   granularity the paper assumes. *)

type cell = int Atomic.t

let make = Atomic.make

let read (c : cell) =
  Schedpoint.hit ();
  Atomic.get c

let write (c : cell) v =
  Schedpoint.hit ();
  Atomic.set c v

(* CAS of the paper: returns whether the swap happened. *)
let cas (c : cell) ~old ~nw =
  Schedpoint.hit ();
  Atomic.compare_and_set c old nw

(* FAA of the paper: no return value is used by the algorithms, but we
   expose the previous value since it is free and useful for tests. *)
let faa (c : cell) delta =
  Schedpoint.hit ();
  Atomic.fetch_and_add c delta

(* SWAP of the paper: unconditionally stores [v], returns old value. *)
let swap (c : cell) v =
  Schedpoint.hit ();
  Atomic.exchange c v
