(* Deterministic cooperative scheduler.

   Thread bodies run as effect-based fibers on a single domain. Every
   shared-memory primitive crosses [Atomics.Schedpoint], whose hook we
   replace with a [Yield] effect for the duration of the run; each
   resumption therefore executes the fiber up to (and including) its
   next atomic primitive — one "step" in the sense of the paper's
   wait-freedom bounds. The policy picks which runnable fiber performs
   the next step, so any interleaving of primitives can be produced
   and reproduced exactly.

   Only one run may be active at a time (single global hook); this is
   enforced with [running]. *)

open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t

exception Fiber_failed of int * exn
exception Out_of_steps

type state =
  | Not_started of (unit -> unit)
  | Suspended of (unit, unit) continuation
  | Running
  | Finished
  | Failed of exn

type outcome = {
  steps : int array;
  total_steps : int;
  schedule : int array;
}

let cur_tid = ref (-1)
let cur_step = ref 0
let running = ref false

let current_tid () = !cur_tid
let now () = !cur_step
let active () = !running

(* [quorum] (default: everyone) is the set of fibers whose completion
   ends the run; the rest may be abandoned mid-operation — the model
   of a crashed/stopped process used by the fault-tolerance
   experiments (E10). Combine with [Policy.crashed] so abandoned
   fibers are never scheduled. *)
let run ?(max_steps = 2_000_000) ?quorum ~threads ~policy body =
  if threads <= 0 then invalid_arg "Engine.run: threads";
  if !running then invalid_arg "Engine.run: nested runs are not supported";
  let states = Array.init threads (fun i -> Not_started (fun () -> body i)) in
  let steps = Array.make threads 0 in
  let sched_rev = ref [] in
  let handler tid =
    {
      retc = (fun () -> states.(tid) <- Finished);
      exnc = (fun e -> states.(tid) <- Failed e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  states.(tid) <- Suspended k)
          | _ -> None);
    }
  in
  let quorum =
    match quorum with
    | None -> Array.make threads true
    | Some tids ->
        let q = Array.make threads false in
        List.iter
          (fun tid ->
            if tid < 0 || tid >= threads then
              invalid_arg "Engine.run: quorum tid out of range";
            q.(tid) <- true)
          tids;
        q
  in
  let quorum_done () =
    let all = ref true in
    for i = 0 to threads - 1 do
      if quorum.(i) then
        match states.(i) with
        | Finished | Failed _ -> ()
        | Not_started _ | Suspended _ | Running -> all := false
    done;
    !all
  in
  let runnable () =
    let acc = ref [] in
    for i = threads - 1 downto 0 do
      match states.(i) with
      | Not_started _ | Suspended _ -> acc := i :: !acc
      | Running -> assert false
      | Finished | Failed _ -> ()
    done;
    !acc
  in
  let yield () = perform Yield in
  (* All argument validation is done; from here on, [running] is
     always reset on every exit path. *)
  running := true;
  cur_step := 0;
  cur_tid := -1;
  let finish () =
    running := false;
    cur_tid := -1
  in
  (try
     Atomics.Schedpoint.with_hook yield (fun () ->
         let rec loop () =
           if quorum_done () then ()
           else
           match runnable () with
           | [] -> ()
           | rs ->
               if !cur_step >= max_steps then raise Out_of_steps;
               let tid = Policy.next policy ~runnable:rs ~step:!cur_step in
               if not (List.mem tid rs) then
                 invalid_arg "Engine.run: policy chose a non-runnable tid";
               cur_tid := tid;
               incr cur_step;
               steps.(tid) <- steps.(tid) + 1;
               sched_rev := tid :: !sched_rev;
               (match states.(tid) with
               | Not_started f ->
                   states.(tid) <- Running;
                   match_with f () (handler tid)
               | Suspended k ->
                   states.(tid) <- Running;
                   continue k ()
               | Running | Finished | Failed _ -> assert false);
               loop ()
         in
         loop ())
   with e ->
     finish ();
     raise e);
  finish ();
  Array.iteri
    (fun i s -> match s with Failed e -> raise (Fiber_failed (i, e)) | _ -> ())
    states;
  {
    steps;
    total_steps = !cur_step;
    schedule = Array.of_list (List.rev !sched_rev);
  }
