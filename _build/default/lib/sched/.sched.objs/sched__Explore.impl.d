lib/sched/explore.ml: Array Engine List Policy Stack
