lib/sched/policy.ml: Array List Printf Rng String
