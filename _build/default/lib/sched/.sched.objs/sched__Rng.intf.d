lib/sched/rng.mli:
