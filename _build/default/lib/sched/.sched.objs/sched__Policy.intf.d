lib/sched/policy.mli:
