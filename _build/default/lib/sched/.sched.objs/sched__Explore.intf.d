lib/sched/explore.mli:
