lib/sched/engine.ml: Array Atomics Effect List Policy
