lib/sched/engine.mli: Policy
