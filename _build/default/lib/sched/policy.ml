(* Scheduling policies for the deterministic engine.

   A policy is asked, at each step, to pick one of the currently
   runnable thread ids. The engine validates the choice, so a policy
   may be sloppy about threads that have already finished. *)

type t = {
  name : string;
  next : runnable:int list -> step:int -> int;
}

let name t = t.name
let next t = t.next

let make ~name next = { name; next }

let round_robin () =
  let last = ref (-1) in
  let next ~runnable ~step:_ =
    let pick =
      match List.find_opt (fun i -> i > !last) runnable with
      | Some i -> i
      | None -> List.hd runnable
    in
    last := pick;
    pick
  in
  { name = "round_robin"; next }

let random ~seed =
  let rng = Rng.create seed in
  let next ~runnable ~step:_ =
    List.nth runnable (Rng.int rng (List.length runnable))
  in
  { name = Printf.sprintf "random(seed=%d)" seed; next }

(* Follow a recorded schedule; fall back to the first runnable thread
   once the recording is exhausted or names a finished thread. Used to
   replay counterexamples from Explore. *)
let replay schedule =
  let pos = ref 0 in
  let next ~runnable ~step:_ =
    let fallback () = List.hd runnable in
    if !pos >= Array.length schedule then fallback ()
    else begin
      let tid = schedule.(!pos) in
      incr pos;
      if List.mem tid runnable then tid else fallback ()
    end
  in
  { name = "replay"; next }

(* Starve [victim]: run any other runnable thread first. This is the
   adversary of experiment E2 — against a lock-free de-reference the
   other threads' link updates force retries; against the paper's
   wait-free one the victim still finishes in a bounded number of its
   own steps once it runs. *)
let others_first ~victim =
  let next ~runnable ~step:_ =
    match List.filter (fun i -> i <> victim) runnable with
    | [] -> victim
    | i :: _ -> i
  in
  { name = Printf.sprintf "others_first(victim=%d)" victim; next }

(* Probabilistic starvation: pick the victim with probability
   1/(weight+1) whenever someone else is runnable. Interleaves the
   victim's steps with adversary steps, which is what actually triggers
   the Valois retry loop. *)
let biased ~seed ~victim ~weight =
  if weight < 0 then invalid_arg "Policy.biased";
  let rng = Rng.create seed in
  let next ~runnable ~step:_ =
    let others = List.filter (fun i -> i <> victim) runnable in
    if others = [] then victim
    else if not (List.mem victim runnable) then
      List.nth others (Rng.int rng (List.length others))
    else if Rng.int rng (weight + 1) = 0 then victim
    else List.nth others (Rng.int rng (List.length others))
  in
  { name = Printf.sprintf "biased(victim=%d,weight=%d)" victim weight; next }

(* Crash modelling: fibers in [dead] are never scheduled (after an
   optional [after] step count at which they die), so they stall at
   whatever primitive they had reached — a stopped/crashed process.
   Use together with [Engine.run ~quorum]. *)
let crashed ~dead ?(after = 0) inner =
  let next ~runnable ~step =
    let alive =
      if step < after then runnable
      else List.filter (fun i -> not (List.mem i dead)) runnable
    in
    match alive with
    | [] -> List.hd runnable (* nothing else left; let it run out *)
    | alive -> next inner ~runnable:alive ~step
  in
  {
    name = Printf.sprintf "crashed(%s)@%d+%s"
        (String.concat "," (List.map string_of_int dead))
        after (name inner);
    next;
  }
