(** The paper's wait-free memory-management scheme, packaged behind
    the scheme-independent {!Mm_intf.S} signature.

    - [deref] is [DeRefLink] (Figure 4): wait-free safe de-reference
      via announcement + helping.
    - [release] is [ReleaseRef]: wait-free reference drop with
      recursive reclamation (R3).
    - [alloc] is [AllocNode] (Figure 5): wait-free allocation from the
      [2N]-list free-list with round-robin helping.
    - [cas_link] is [CompareAndSwapLink] (Figure 6): CAS + the
      mandatory [HelpDeRef] + internal link-share transfer.

    The line-level engine (and the ablation knobs) live in {!Gc}; the
    announcement pool in {!Ann}. *)

module Gc : module type of Gc
module Ann : module type of Ann

include Mm_intf.S with type t = Gc.t
