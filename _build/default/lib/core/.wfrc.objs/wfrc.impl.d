lib/core/wfrc.ml: Ann Atomics Gc Shmem
