lib/core/gc.ml: Ann Array Atomics Mm_intf Printf Shmem
