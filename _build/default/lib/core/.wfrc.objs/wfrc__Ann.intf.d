lib/core/ann.mli: Shmem
