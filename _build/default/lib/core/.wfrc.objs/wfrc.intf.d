lib/core/wfrc.mli: Ann Gc Mm_intf
