lib/core/ann.ml: Array Atomic Atomics Printf Shmem
