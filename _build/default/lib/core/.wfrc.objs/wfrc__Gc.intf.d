lib/core/gc.mli: Ann Atomics Mm_intf Shmem
