(* Word-encoding tests: pointer/mark/link/stamped representations and
   the Lemma 1 disjointness property they implement. *)

open Helpers
module Value = Shmem.Value

let handle_gen = QCheck.int_range 1 1_000_000
let addr_gen = QCheck.int_range 0 1_000_000

let unit_tests =
  [
    tc "null is null" (fun () ->
        check_bool "is_null" true (Value.is_null Value.null);
        check_int "null encoding" 0 Value.null);
    tc "of_handle/handle roundtrip" (fun () ->
        check_int "h=1" 1 (Value.handle (Value.of_handle 1));
        check_int "h=77" 77 (Value.handle (Value.of_handle 77)));
    tc "of_handle rejects zero and negatives" (fun () ->
        fails_with (fun () -> Value.of_handle 0);
        fails_with (fun () -> Value.of_handle (-3)));
    tc "handle rejects null and links" (fun () ->
        fails_with (fun () -> Value.handle Value.null);
        fails_with (fun () -> Value.handle (Value.enc_link 5)));
    tc "mark sets bit 0 only" (fun () ->
        let p = Value.of_handle 9 in
        let m = Value.mark p in
        check_bool "marked" true (Value.is_marked m);
        check_bool "orig unmarked" false (Value.is_marked p);
        check_int "same handle" 9 (Value.handle m);
        check_int "unmark restores" p (Value.unmark m));
    tc "mark of null rejected" (fun () ->
        fails_with (fun () -> Value.mark Value.null));
    tc "unmark of null is null" (fun () ->
        check_int "unmark null" Value.null (Value.unmark Value.null));
    tc "mark is idempotent through unmark" (fun () ->
        let p = Value.of_handle 3 in
        check_int "unmark∘mark∘mark" p (Value.unmark (Value.mark (Value.mark p))));
    tc "same_node ignores marks, rejects null" (fun () ->
        let p = Value.of_handle 4 in
        check_bool "p ~ mark p" true (Value.same_node p (Value.mark p));
        check_bool "different nodes" false
          (Value.same_node p (Value.of_handle 5));
        check_bool "null never same" false (Value.same_node Value.null Value.null));
    tc "enc_link is negative; dec_link inverts" (fun () ->
        check_bool "negative" true (Value.enc_link 0 < 0);
        check_int "dec∘enc 0" 0 (Value.dec_link (Value.enc_link 0));
        check_int "dec∘enc 12345" 12345 (Value.dec_link (Value.enc_link 12345)));
    tc "enc_link rejects negative addresses" (fun () ->
        fails_with (fun () -> Value.enc_link (-1)));
    tc "dec_link rejects non-links" (fun () ->
        fails_with (fun () -> Value.dec_link 0);
        fails_with (fun () -> Value.dec_link (Value.of_handle 2)));
    tc "stamped pack/unpack roundtrip" (fun () ->
        let v = Value.pack_stamped ~stamp:77 ~ptr:(Value.of_handle 123) in
        check_int "ptr" (Value.of_handle 123) (Value.stamped_ptr v);
        check_int "stamp" 77 (Value.stamped_stamp v));
    tc "stamp wraps modulo 2^30" (fun () ->
        let v =
          Value.pack_stamped ~stamp:(Value.max_stamp + 3) ~ptr:Value.null
        in
        check_int "wrapped" 2 (Value.stamped_stamp v));
    tc "pp formats" (fun () ->
        check_string "null" "⊥" (Fmt.str "%a" Value.pp_ptr Value.null);
        check_string "ptr" "#5" (Fmt.str "%a" Value.pp_ptr (Value.of_handle 5));
        check_string "marked" "#5!"
          (Fmt.str "%a" Value.pp_ptr (Value.mark (Value.of_handle 5)));
        check_string "link" "&9"
          (Fmt.str "%a" Value.pp_word (Value.enc_link 9)));
  ]

let prop_tests =
  [
    qc "handle roundtrip" handle_gen (fun h ->
        Value.handle (Value.of_handle h) = h);
    qc "pointers are non-negative and even (unmarked)" handle_gen (fun h ->
        let p = Value.of_handle h in
        p > 0 && p land 1 = 0);
    qc "mark/unmark preserve handle" handle_gen (fun h ->
        let p = Value.of_handle h in
        Value.handle (Value.mark p) = h && Value.unmark (Value.mark p) = p);
    (* Lemma 1: link encodings and pointer encodings are disjoint. *)
    qc "Lemma 1 disjointness"
      QCheck.(pair handle_gen addr_gen)
      (fun (h, a) ->
        let p = Value.of_handle h in
        let l = Value.enc_link a in
        l <> p && l <> Value.mark p && l <> Value.null);
    qc "link roundtrip" addr_gen (fun a ->
        Value.dec_link (Value.enc_link a) = a && Value.is_link (Value.enc_link a));
    qc "stamped roundtrip"
      QCheck.(pair (int_range 0 Value.max_stamp) handle_gen)
      (fun (s, h) ->
        let p = Value.of_handle (h land 0x3FFFFFF) in
        let p = if p = 0 then Value.of_handle 1 else p in
        let v = Value.pack_stamped ~stamp:s ~ptr:p in
        Value.stamped_ptr v = p && Value.stamped_stamp v = s);
  ]

let suite = unit_tests @ prop_tests
