(* Wider deterministic-scheduler sweeps: three and four fibers mixing
   operations on each structure, with full conservation + invariant
   checks after every schedule. These are the interleavings native
   time slicing almost never produces (multiple threads inside the
   same few primitives), and exactly where helping, marks and
   donations interact. *)

open Helpers
module Mm = Mm_intf
module Value = Shmem.Value

let stack_threeway scheme =
  tc
    (Printf.sprintf "%s: stack 3-fiber push/pop storm" scheme)
    (fun () ->
      sweep_ok ~runs:120 ~threads:3 (fun () ->
          let cfg = small_cfg ~threads:3 ~capacity:24 ~num_roots:1 () in
          let mm = mm_of scheme cfg in
          let s = Structures.Stack.create mm ~root:0 in
          let popped = Array.make 3 [] in
          let body tid =
            Structures.Stack.push s ~tid (100 + tid);
            (match Structures.Stack.pop s ~tid with
            | Some v -> popped.(tid) <- v :: popped.(tid)
            | None -> failwith "pop missed with >=1 element present");
            Structures.Stack.push s ~tid (200 + tid)
          in
          let check () =
            let rest = Structures.Stack.drain s ~tid:0 in
            let got =
              List.sort compare
                (rest @ popped.(0) @ popped.(1) @ popped.(2))
            in
            let want =
              List.sort compare [ 100; 101; 102; 200; 201; 202 ]
            in
            if got <> want then
              failwith
                ("value conservation: "
                ^ String.concat "," (List.map string_of_int got));
            for _ = 1 to 60 do
              Mm.enter_op mm ~tid:0;
              Mm.exit_op mm ~tid:0
            done;
            Mm.validate mm;
            if Mm.free_count mm <> 24 then failwith "leak"
          in
          (body, check)))

let queue_threeway scheme =
  tc
    (Printf.sprintf "%s: queue 2-producer/1-consumer FIFO" scheme)
    (fun () ->
      sweep_ok ~runs:120 ~threads:3 (fun () ->
          let cfg = small_cfg ~threads:3 ~capacity:24 ~num_roots:2 () in
          let mm = mm_of scheme cfg in
          let q = Structures.Queue.create mm ~head_root:0 ~tail_root:1 ~tid:0 in
          let consumed = ref [] in
          let body tid =
            if tid < 2 then begin
              Structures.Queue.enqueue q ~tid ((tid * 10) + 1);
              Structures.Queue.enqueue q ~tid ((tid * 10) + 2)
            end
            else
              for _ = 1 to 2 do
                match Structures.Queue.dequeue q ~tid with
                | Some v -> consumed := v :: !consumed
                | None -> ()
              done
          in
          let check () =
            let rest = Structures.Queue.drain q ~tid:0 in
            let all = List.rev !consumed @ rest in
            (* per-producer order must survive any interleaving *)
            let of_producer p = List.filter (fun v -> v / 10 = p) all in
            if of_producer 0 <> [ 1; 2 ] then failwith "producer 0 disorder";
            if of_producer 1 <> [ 11; 12 ] then failwith "producer 1 disorder";
            for _ = 1 to 60 do
              Mm.enter_op mm ~tid:0;
              Mm.exit_op mm ~tid:0
            done;
            Mm.validate mm;
            if Mm.free_count mm <> 23 then failwith "leak"
          in
          (body, check)))

let pqueue_threeway scheme =
  tc
    (Printf.sprintf "%s: pqueue 3-fiber insert/delmin mix" scheme)
    (fun () ->
      sweep_ok ~runs:100 ~threads:3 (fun () ->
          let cfg =
            Mm.config ~threads:3 ~capacity:32 ~num_links:3 ~num_data:3
              ~num_roots:0 ()
          in
          let mm = mm_of scheme cfg in
          let pq = Structures.Pqueue.create mm ~seed:77 ~tid:0 in
          Structures.Pqueue.insert pq ~tid:0 100 0;
          let taken = Array.make 3 [] in
          let body tid =
            Structures.Pqueue.insert pq ~tid (10 + tid) tid;
            match Structures.Pqueue.delete_min pq ~tid with
            | Some (k, _) -> taken.(tid) <- k :: taken.(tid)
            | None -> failwith "delete_min missed"
          in
          let check () =
            let rest = List.map fst (Structures.Pqueue.drain pq ~tid:0) in
            let got =
              List.sort compare
                (rest @ taken.(0) @ taken.(1) @ taken.(2))
            in
            if got <> [ 10; 11; 12; 100 ] then
              failwith
                ("key conservation: "
                ^ String.concat "," (List.map string_of_int got));
            Mm.validate mm;
            (* capacity 32 minus the two immortal sentinels *)
            if Mm.free_count mm <> 30 then failwith "leak"
          in
          (body, check)))

let oset_fourway scheme =
  tc
    (Printf.sprintf "%s: oset 4-fiber insert/remove/mem weave" scheme)
    (fun () ->
      sweep_ok ~runs:80 ~threads:4 (fun () ->
          let cfg =
            Mm.config ~threads:4 ~capacity:24 ~num_links:1 ~num_data:2
              ~num_roots:0 ()
          in
          let mm = mm_of scheme cfg in
          let s = Structures.Oset.create mm ~tid:0 in
          ignore (Structures.Oset.insert s ~tid:0 50 0);
          let body tid =
            match tid with
            | 0 ->
                ignore (Structures.Oset.insert s ~tid 10 0);
                ignore (Structures.Oset.remove s ~tid 50)
            | 1 ->
                ignore (Structures.Oset.insert s ~tid 20 1);
                ignore (Structures.Oset.mem s ~tid 10)
            | 2 ->
                ignore (Structures.Oset.remove s ~tid 20);
                ignore (Structures.Oset.insert s ~tid 30 2)
            | _ ->
                ignore (Structures.Oset.mem s ~tid 50);
                ignore (Structures.Oset.remove s ~tid 10)
          in
          let check () =
            let keys = List.map fst (Structures.Oset.to_list s ~tid:0) in
            if List.sort_uniq compare keys <> keys then failwith "dup keys";
            (* 50 removed exactly once; 30 must be present; 20 present
               iff t1's insert linearised after t2's remove *)
            if List.mem 50 keys then failwith "remove of 50 lost";
            if not (List.mem 30 keys) then failwith "insert of 30 lost";
            ignore (Structures.Oset.clear s ~tid:0);
            for _ = 1 to 80 do
              Mm.enter_op mm ~tid:0;
              Mm.exit_op mm ~tid:0
            done;
            Mm.validate mm;
            if Mm.free_count mm <> 22 then failwith "leak"
          in
          (body, check)))

let suite =
  List.map stack_threeway [ "wfrc"; "lfrc"; "hp" ]
  @ List.map queue_threeway [ "wfrc"; "ebr" ]
  @ List.map pqueue_threeway rc_schemes
  @ List.map oset_fourway [ "wfrc"; "hp"; "ebr" ]
