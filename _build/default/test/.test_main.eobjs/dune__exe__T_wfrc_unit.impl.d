test/t_wfrc_unit.ml: Alcotest Array Hashtbl Helpers List Mm_intf Printf QCheck Shmem Wfrc
