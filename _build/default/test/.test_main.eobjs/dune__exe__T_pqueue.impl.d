test/t_pqueue.ml: Array Atomic Gen Harness Helpers List Mm_intf Printf QCheck Sched String Structures
