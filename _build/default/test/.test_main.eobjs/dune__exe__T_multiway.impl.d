test/t_multiway.ml: Array Helpers List Mm_intf Printf Shmem String Structures
