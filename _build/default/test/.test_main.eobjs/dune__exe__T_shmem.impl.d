test/t_shmem.ml: Alcotest Helpers List QCheck Shmem
