test/t_stack.ml: Array Atomic Gen Harness Hashtbl Helpers List Mm_intf Printf QCheck Sched Shmem Structures
