test/t_harness.ml: Alcotest Array Atomics Gen Harness Helpers List Mm_intf QCheck Sched Shmem String
