test/t_experiments.ml: Alcotest Harness Helpers List Printf String
