test/t_atomics.ml: Array Atomics Domain Helpers List
