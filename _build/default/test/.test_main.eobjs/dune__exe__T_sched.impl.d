test/t_sched.ml: Alcotest Array Atomic Atomics Fun Helpers List Mm_intf Printf QCheck Sched Shmem
