test/t_baselines.ml: Alcotest Atomics Harness Helpers List Mm_intf Printf Sched Shmem
