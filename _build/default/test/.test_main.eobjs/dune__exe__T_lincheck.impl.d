test/t_lincheck.ml: Array Atomics Helpers Lincheck Printf Sched
