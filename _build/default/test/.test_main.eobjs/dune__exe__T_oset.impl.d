test/t_oset.ml: Alcotest Array Gen Harness Hashtbl Helpers List Mm_intf Printf QCheck Sched Structures
