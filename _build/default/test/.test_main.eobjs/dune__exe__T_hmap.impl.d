test/t_hmap.ml: Gen Harness Hashtbl Helpers List Mm_intf Printf QCheck Sched Structures
