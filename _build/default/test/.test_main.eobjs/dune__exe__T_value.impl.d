test/t_value.ml: Fmt Helpers QCheck Shmem
