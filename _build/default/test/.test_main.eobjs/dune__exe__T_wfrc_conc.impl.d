test/t_wfrc_conc.ml: Array Atomic Domain Harness Helpers List Mm_intf Sched Shmem
