test/t_wfrc_sim.ml: Alcotest Array Atomics Helpers Lincheck List Mm_intf Printf Sched Shmem String
