test/helpers.ml: Alcotest Array Harness List Mm_intf Printexc QCheck QCheck_alcotest Sched Shmem String
