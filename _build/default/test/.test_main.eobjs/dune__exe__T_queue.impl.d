test/t_queue.ml: Array Domain Gen Harness Helpers List Mm_intf Printf QCheck Sched Structures
