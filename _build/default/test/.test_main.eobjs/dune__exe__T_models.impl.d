test/t_models.ml: Helpers List QCheck Structures
