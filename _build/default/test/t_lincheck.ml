(* The linearizability checker itself: hand-crafted histories with
   known verdicts, spec unit tests, and recorder behaviour. *)

open Helpers
module H = Lincheck.History
module Specs = Lincheck.Specs
module Stack_check = Lincheck.Checker.Make (Specs.Stack_ops)
module Queue_check = Lincheck.Checker.Make (Specs.Queue_ops)
module Link_check = Lincheck.Checker.Make (Specs.Link_ops)
module Alloc_check = Lincheck.Checker.Make (Specs.Alloc_ops)

let ev tid op res invoke return = { H.tid; op; res; invoke; return }

let stack_tests =
  let open Specs.Stack_ops in
  [
    tc "sequential legal history accepted" (fun () ->
        let h =
          [|
            ev 0 (Push 1) Unit 0 1;
            ev 0 Pop (Value 1) 2 3;
            ev 0 Pop Empty 4 5;
          |]
        in
        check_bool "ok" true (Stack_check.check h));
    tc "sequential illegal history rejected (wrong pop)" (fun () ->
        let h = [| ev 0 (Push 1) Unit 0 1; ev 0 Pop (Value 2) 2 3 |] in
        check_bool "rejected" false (Stack_check.check h));
    tc "pop-empty with a completed push before it is illegal" (fun () ->
        let h = [| ev 0 (Push 1) Unit 0 1; ev 0 Pop Empty 2 3 |] in
        check_bool "rejected" false (Stack_check.check h));
    tc "overlapping ops may commute" (fun () ->
        (* pop overlaps push: Empty is fine (pop first) and Value 1 is
           fine (push first) *)
        let ok_empty = [| ev 0 (Push 1) Unit 0 5; ev 1 Pop Empty 1 2 |] in
        let ok_value = [| ev 0 (Push 1) Unit 0 5; ev 1 Pop (Value 1) 1 2 |] in
        check_bool "empty ok" true (Stack_check.check ok_empty);
        check_bool "value ok" true (Stack_check.check ok_value));
    tc "real-time order is respected" (fun () ->
        (* push(1) completes before push(2) begins; pops see 2 then 1 *)
        let good =
          [|
            ev 0 (Push 1) Unit 0 1;
            ev 0 (Push 2) Unit 2 3;
            ev 1 Pop (Value 2) 4 5;
            ev 1 Pop (Value 1) 6 7;
          |]
        in
        let bad =
          [|
            ev 0 (Push 1) Unit 0 1;
            ev 0 (Push 2) Unit 2 3;
            ev 1 Pop (Value 1) 4 5;
            ev 1 Pop (Value 2) 6 7;
          |]
        in
        check_bool "good" true (Stack_check.check good);
        check_bool "bad" false (Stack_check.check bad));
    tc "double delivery of one element rejected" (fun () ->
        let h =
          [|
            ev 0 (Push 7) Unit 0 1;
            ev 0 Pop (Value 7) 2 3;
            ev 1 Pop (Value 7) 2 3;
          |]
        in
        check_bool "rejected" false (Stack_check.check h));
    tc "empty history is linearizable" (fun () ->
        check_bool "ok" true (Stack_check.check [||]));
  ]

let queue_tests =
  let open Specs.Queue_ops in
  [
    tc "FIFO must hold across threads" (fun () ->
        let good =
          [|
            ev 0 (Enq 1) Unit 0 1;
            ev 0 (Enq 2) Unit 2 3;
            ev 1 Deq (Value 1) 4 5;
            ev 1 Deq (Value 2) 6 7;
          |]
        in
        let bad =
          [|
            ev 0 (Enq 1) Unit 0 1;
            ev 0 (Enq 2) Unit 2 3;
            ev 1 Deq (Value 2) 4 5;
            ev 1 Deq (Value 1) 6 7;
          |]
        in
        check_bool "good" true (Queue_check.check good);
        check_bool "bad (LIFO order)" false (Queue_check.check bad));
    tc "overlapping enqueues may land in either order" (fun () ->
        let h order =
          [|
            ev 0 (Enq 1) Unit 0 10;
            ev 1 (Enq 2) Unit 0 10;
            ev 0 Deq (Value order) 11 12;
          |]
        in
        check_bool "1 first" true (Queue_check.check (h 1));
        check_bool "2 first" true (Queue_check.check (h 2)));
  ]

let link_tests =
  let open Specs.Link_ops in
  [
    tc "deref must return a value the link held" (fun () ->
        Specs.Link_ops.set_initial [ (0, 10) ];
        let good =
          [| ev 0 (Cas (0, 10, 20)) (Bool true) 0 1; ev 1 (Deref 0) (Word 20) 2 3 |]
        in
        let bad =
          [| ev 0 (Cas (0, 10, 20)) (Bool true) 0 1; ev 1 (Deref 0) (Word 10) 2 3 |]
        in
        check_bool "good" true (Link_check.check good);
        check_bool "bad (stale read after cas)" false (Link_check.check bad));
    tc "overlapping deref can see either side of a cas" (fun () ->
        Specs.Link_ops.set_initial [ (0, 10) ];
        let h v =
          [| ev 0 (Cas (0, 10, 20)) (Bool true) 0 10; ev 1 (Deref 0) (Word v) 1 2 |]
        in
        check_bool "old value" true (Link_check.check (h 10));
        check_bool "new value" true (Link_check.check (h 20));
        check_bool "invented value" false (Link_check.check (h 99)));
    tc "failed cas must not change the link" (fun () ->
        Specs.Link_ops.set_initial [ (0, 10) ];
        let h =
          [|
            ev 0 (Cas (0, 99, 20)) (Bool false) 0 1;
            ev 1 (Deref 0) (Word 10) 2 3;
          |]
        in
        check_bool "ok" true (Link_check.check h));
    tc "cas claiming success from a wrong old value is rejected" (fun () ->
        Specs.Link_ops.set_initial [ (0, 10) ];
        let h = [| ev 0 (Cas (0, 99, 20)) (Bool true) 0 1 |] in
        check_bool "rejected" false (Link_check.check h));
  ]

let alloc_tests =
  let open Specs.Alloc_ops in
  [
    tc "double allocation without free is rejected" (fun () ->
        let h =
          [| ev 0 Alloc (Node 3) 0 1; ev 1 Alloc (Node 3) 2 3 |]
        in
        check_bool "rejected" false (Alloc_check.check h));
    tc "alloc-free-alloc of the same node is fine" (fun () ->
        let h =
          [|
            ev 0 Alloc (Node 3) 0 1;
            ev 0 (Free 3) Unit 2 3;
            ev 1 Alloc (Node 3) 4 5;
          |]
        in
        check_bool "ok" true (Alloc_check.check h));
    tc "overlapping alloc and free may reuse the node" (fun () ->
        let h =
          [|
            ev 0 Alloc (Node 3) 0 1;
            ev 0 (Free 3) Unit 2 9;
            ev 1 Alloc (Node 3) 3 4;
          |]
        in
        check_bool "ok (free linearizes first)" true (Alloc_check.check h));
    tc "freeing an unallocated node is rejected" (fun () ->
        let h = [| ev 0 (Free 5) Unit 0 1 |] in
        check_bool "rejected" false (Alloc_check.check h));
  ]

let recorder_tests =
  [
    tc "recorder produces invoke<return and sorted output" (fun () ->
        let h = H.create ~threads:2 in
        ignore
          (H.record h ~tid:0 "a" (fun () ->
               ignore (H.record h ~tid:1 "nested" (fun () -> 1));
               2));
        let evs = H.events h in
        check_int "two events" 2 (Array.length evs);
        Array.iter
          (fun e -> check_bool "ordered stamps" true (e.H.invoke < e.H.return))
          evs;
        check_bool "sorted by invoke" true
          (evs.(0).H.invoke <= evs.(1).H.invoke));
    tc "recorder under the sim engine uses the step clock" (fun () ->
        let h = H.create ~threads:2 in
        ignore
          (Sched.Engine.run ~threads:2
             ~policy:(Sched.Policy.round_robin ())
             (fun tid ->
               ignore
                 (H.record h ~tid (Printf.sprintf "op%d" tid) (fun () ->
                      let c = Atomics.Primitives.make 0 in
                      ignore (Atomics.Primitives.faa c 1)))));
        let evs = H.events h in
        check_int "both recorded" 2 (Array.length evs);
        Array.iter
          (fun e ->
            check_bool "stamps within run" true
              (e.H.invoke >= 0 && e.H.return > e.H.invoke))
          evs);
    tc "clear resets the history" (fun () ->
        let h = H.create ~threads:1 in
        ignore (H.record h ~tid:0 "x" (fun () -> ()));
        H.clear h;
        check_int "empty" 0 (Array.length (H.events h)));
    tc "checker rejects oversized histories" (fun () ->
        let big =
          Array.init 63 (fun i ->
              ev 0 (Specs.Stack_ops.Push i) Specs.Stack_ops.Unit (2 * i)
                ((2 * i) + 1))
        in
        fails_with (fun () -> ignore (Stack_check.check big)));
  ]

let suite =
  stack_tests @ queue_tests @ link_tests @ alloc_tests @ recorder_tests
