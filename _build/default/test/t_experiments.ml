(* Experiment shape checks: every experiment must run (at reduced
   parameters), produce a well-formed table, and reproduce the
   paper-shaped qualitative result it exists for. *)

open Helpers

let wellformed (r : Harness.Experiments.report) =
  check_bool "has rows" true (r.rows <> []);
  let cols = List.length r.headers in
  List.iter
    (fun row -> check_int "row arity" cols (List.length row))
    r.rows

let parse_int s = int_of_string (String.trim s)

let suite =
  [
    tc_slow "E1 runs and covers all RC schemes" (fun () ->
        let r =
          Harness.Experiments.e1 ~threads_list:[ 1; 2 ] ~ops:2_000
            ~capacity:1024 ()
        in
        wellformed r;
        let schemes = List.map List.hd r.rows in
        check_bool "wfrc present" true (List.mem "wfrc" schemes);
        check_bool "lfrc present" true (List.mem "lfrc" schemes));
    tc_slow "E2 shape: wfrc bounded, lfrc grows" (fun () ->
        let r =
          Harness.Experiments.e2 ~schemes:[ "wfrc"; "lfrc" ]
            ~budgets:[ 0; 16 ] ~seeds:10 ()
        in
        wellformed r;
        match r.rows with
        | [ [ _; w0; l0 ]; [ _; w16; l16 ] ] ->
            let w0 = parse_int w0
            and l0 = parse_int l0
            and w16 = parse_int w16
            and l16 = parse_int l16 in
            (* the wait-free bound: a fixed constant for N=2 *)
            check_bool "wfrc bounded" true (w16 <= 60 && w0 <= 60);
            (* the lock-free baseline visibly grows *)
            check_bool "lfrc grows" true (l16 > l0)
        | _ -> Alcotest.fail "unexpected table shape");
    tc_slow "E3 runs for all three free-list schemes" (fun () ->
        let r =
          Harness.Experiments.e3 ~threads_list:[ 1; 2 ] ~ops:4_000
            ~capacity:512 ()
        in
        wellformed r;
        check_int "rows = schemes x thread counts" 6 (List.length r.rows));
    tc_slow "E4 helping counters are exercised" (fun () ->
        let r = Harness.Experiments.e4 ~threads_list:[ 2 ] ~ops:10 ~runs:20 () in
        wellformed r;
        match r.rows with
        | [ row ] ->
            let derefs = parse_int (List.nth row 1) in
            check_bool "derefs happened" true (derefs > 0)
        | _ -> Alcotest.fail "one row expected");
    tc_slow "E5 latency columns parse and are ordered" (fun () ->
        let r =
          Harness.Experiments.e5 ~schemes:[ "wfrc" ] ~threads:2 ~ops:2_000
            ~capacity:1024 ()
        in
        wellformed r;
        check_int "one scheme" 1 (List.length r.rows));
    tc_slow "E7 finds no violations" (fun () ->
        let r = Harness.Experiments.e7 ~runs:25 () in
        wellformed r;
        List.iter
          (fun row ->
            check_string
              (Printf.sprintf "%s/%s clean" (List.nth row 0) (List.nth row 1))
              "none" (List.nth row 3))
          r.rows);
    tc_slow "E8 conservation holds at exhaustion" (fun () ->
        let r = Harness.Experiments.e8 ~threads_list:[ 1; 2 ] ~capacity:16 () in
        wellformed r;
        List.iter
          (fun row ->
            check_string "conservation column" "ok" (List.nth row 6);
            let allocated = parse_int (List.nth row 2) in
            let parked = parse_int (List.nth row 3) in
            let lost = parse_int (List.nth row 4) in
            check_int "nothing lost" 0 lost;
            check_int "allocated+parked = capacity" 16 (allocated + parked))
          r.rows);
    tc_slow "E9 covers all five schemes" (fun () ->
        let r =
          Harness.Experiments.e9 ~threads_list:[ 1; 2 ] ~ops:3_000
            ~capacity:512 ()
        in
        wellformed r;
        check_int "five schemes" 5 (List.length r.rows));
    tc_slow "E10 non-blocking schemes never stall; lockrc can" (fun () ->
        let r = Harness.Experiments.e10 ~runs:15 ~ops:8 () in
        wellformed r;
        List.iter
          (fun row ->
            let scheme = List.nth row 0 in
            let stalled = parse_int (List.nth row 3) in
            if scheme <> "lockrc" then
              check_int (scheme ^ " never stalls") 0 stalled)
          r.rows);
    tc_slow "A1 bound grows at most linearly in N" (fun () ->
        let r =
          Harness.Experiments.a1 ~threads_list:[ 2; 8 ] ~seeds:6 ()
        in
        wellformed r;
        match r.rows with
        | [ [ _; s2 ]; [ _; s8 ] ] ->
            let s2 = parse_int s2 and s8 = parse_int s8 in
            (* linear-ish: N grew 4x; allow 8x slack but not explosion *)
            check_bool
              (Printf.sprintf "s2=%d s8=%d linearish" s2 s8)
              true
              (s8 <= 8 * s2)
        | _ -> Alcotest.fail "two rows expected");
    tc_slow "A2 and A3 run" (fun () ->
        wellformed
          (Harness.Experiments.a2 ~threads_list:[ 2 ] ~ops:4_000
             ~capacity:512 ());
        wellformed
          (Harness.Experiments.a3 ~threads_list:[ 2 ] ~ops:4_000
             ~capacity:512 ()));
    tc "experiment registry resolves every id" (fun () ->
        List.iter
          (fun id ->
            match List.assoc_opt id (List.map (fun i -> (i, ())) Harness.Experiments.ids) with
            | Some () -> ()
            | None -> Alcotest.failf "id %s missing" id)
          [ "e1"; "e2"; "e3"; "e4"; "e5"; "e7"; "e8"; "e9"; "e10"; "e11"; "a1"; "a2"; "a3" ];
        fails_with ~substring:"unknown experiment" (fun () ->
            Harness.Experiments.run "e99"));
  ]
