(* The sequential reference models themselves must be right, or the
   differential tests prove nothing. *)

open Helpers
module SM = Structures.Seqmodels

let stack_tests =
  [
    tc "stack model LIFO" (fun () ->
        let m = SM.Stack_model.create () in
        SM.Stack_model.push m 1;
        SM.Stack_model.push m 2;
        check_bool "pop 2" true (SM.Stack_model.pop m = Some 2);
        check_bool "pop 1" true (SM.Stack_model.pop m = Some 1);
        check_bool "empty" true (SM.Stack_model.pop m = None);
        check_bool "is_empty" true (SM.Stack_model.is_empty m));
    qc "stack model = List semantics" QCheck.(list (option small_int))
      (fun script ->
        let m = SM.Stack_model.create () in
        let l = ref [] in
        List.for_all
          (fun op ->
            match op with
            | Some v ->
                SM.Stack_model.push m v;
                l := v :: !l;
                true
            | None -> (
                match !l with
                | [] -> SM.Stack_model.pop m = None
                | x :: rest ->
                    l := rest;
                    SM.Stack_model.pop m = Some x))
          script
        && SM.Stack_model.to_list m = !l);
  ]

let queue_tests =
  [
    tc "queue model FIFO across front/back shuffles" (fun () ->
        let m = SM.Queue_model.create () in
        SM.Queue_model.push m 1;
        SM.Queue_model.push m 2;
        check_bool "pop 1" true (SM.Queue_model.pop m = Some 1);
        SM.Queue_model.push m 3;
        check_bool "pop 2" true (SM.Queue_model.pop m = Some 2);
        check_bool "pop 3" true (SM.Queue_model.pop m = Some 3);
        check_bool "empty" true (SM.Queue_model.pop m = None));
    qc "queue model = naive list queue" QCheck.(list (option small_int))
      (fun script ->
        let m = SM.Queue_model.create () in
        let l = ref [] in
        List.for_all
          (fun op ->
            match op with
            | Some v ->
                SM.Queue_model.push m v;
                l := !l @ [ v ];
                true
            | None -> (
                match !l with
                | [] -> SM.Queue_model.pop m = None
                | x :: rest ->
                    l := rest;
                    SM.Queue_model.pop m = Some x))
          script
        && SM.Queue_model.to_list m = !l);
  ]

let pq_tests =
  [
    tc "pqueue model delivers minima, stable for equal keys" (fun () ->
        let m = SM.Pqueue_model.create () in
        SM.Pqueue_model.insert m 5 1;
        SM.Pqueue_model.insert m 3 2;
        SM.Pqueue_model.insert m 5 3;
        check_bool "min first" true (SM.Pqueue_model.delete_min m = Some (3, 2));
        check_bool "stable dup 1" true
          (SM.Pqueue_model.delete_min m = Some (5, 1));
        check_bool "stable dup 2" true
          (SM.Pqueue_model.delete_min m = Some (5, 3));
        check_bool "empty" true (SM.Pqueue_model.delete_min m = None));
    qc "pqueue model keys always ascend" QCheck.(list (int_range 0 50))
      (fun keys ->
        let m = SM.Pqueue_model.create () in
        List.iter (fun k -> SM.Pqueue_model.insert m k k) keys;
        SM.Pqueue_model.sorted_keys m = List.sort compare keys);
  ]

let suite = stack_tests @ queue_tests @ pq_tests
