(* Harness components: histogram statistics, table rendering, workload
   generation, the runner and the registry. *)

open Helpers
module Hist = Harness.Metrics.Hist

let hist_tests =
  [
    tc "empty histogram" (fun () ->
        let h = Hist.create () in
        check_int "count" 0 (Hist.count h);
        check_int "max" 0 (Hist.max_value h);
        check_int "p99" 0 (Hist.percentile h 0.99);
        check_bool "mean" true (Hist.mean h = 0.0));
    tc "single value" (fun () ->
        let h = Hist.create () in
        Hist.add h 500;
        check_int "count" 1 (Hist.count h);
        check_int "min" 500 (Hist.min_value h);
        check_int "max" 500 (Hist.max_value h);
        check_bool "mean" true (Hist.mean h = 500.0);
        check_int "p50 = the value" 500 (Hist.percentile h 0.5));
    tc "percentiles are monotone and bounded by max" (fun () ->
        let h = Hist.create () in
        for i = 1 to 10_000 do
          Hist.add h i
        done;
        let p50 = Hist.percentile h 0.5 in
        let p90 = Hist.percentile h 0.9 in
        let p999 = Hist.percentile h 0.999 in
        check_bool "monotone" true (p50 <= p90 && p90 <= p999);
        check_bool "bounded" true (p999 <= Hist.max_value h);
        (* log-bucket error is bounded by one sub-bucket (~6%) *)
        check_bool "p50 near 5000" true (p50 >= 5_000 && p50 <= 5_700);
        check_bool "p90 near 9000" true (p90 >= 9_000 && p90 <= 10_000));
    tc "merge_into combines counts and extremes" (fun () ->
        let a = Hist.create () and b = Hist.create () in
        Hist.add a 10;
        Hist.add b 1_000_000;
        Hist.merge_into a b;
        check_int "count" 2 (Hist.count a);
        check_int "min" 10 (Hist.min_value a);
        check_int "max" 1_000_000 (Hist.max_value a));
    tc "negative values clamp to zero" (fun () ->
        let h = Hist.create () in
        Hist.add h (-5);
        check_int "min" 0 (Hist.min_value h));
    qc "max is exact, percentile(1.0) equals it"
      QCheck.(list_of_size (Gen.int_range 1 200) (int_range 0 1_000_000))
      (fun vs ->
        let h = Hist.create () in
        List.iter (Hist.add h) vs;
        Hist.max_value h = List.fold_left max 0 vs
        && Hist.percentile h 1.0 = Hist.max_value h);
    qc "mean matches a direct computation"
      QCheck.(list_of_size (Gen.int_range 1 100) (int_range 0 100_000))
      (fun vs ->
        let h = Hist.create () in
        List.iter (Hist.add h) vs;
        let direct =
          float_of_int (List.fold_left ( + ) 0 vs)
          /. float_of_int (List.length vs)
        in
        abs_float (Hist.mean h -. direct) < 0.001);
  ]

let fmt_tests =
  [
    tc "duration formatting" (fun () ->
        check_string "ns" "999ns" (Harness.Metrics.ns_to_string 999);
        check_string "us" "1.5us" (Harness.Metrics.ns_to_string 1_500);
        check_string "ms" "2.0ms" (Harness.Metrics.ns_to_string 2_000_000);
        check_string "s" "3.00s" (Harness.Metrics.ns_to_string 3_000_000_000));
    tc "ops formatting" (fun () ->
        check_string "M" "2.50M" (Harness.Metrics.ops_to_string 2.5e6);
        check_string "k" "3.2k" (Harness.Metrics.ops_to_string 3_200.0);
        check_string "plain" "42" (Harness.Metrics.ops_to_string 42.0));
  ]

let table_tests =
  [
    tc "render aligns columns" (fun () ->
        let out =
          Harness.Table.render ~headers:[ "name"; "n" ]
            ~rows:[ [ "alpha"; "1" ]; [ "b"; "10000" ] ]
        in
        let lines = String.split_on_char '\n' out in
        let widths =
          List.filter_map
            (fun l -> if l = "" then None else Some (String.length l))
            lines
        in
        check_bool "all lines same width" true
          (List.for_all (fun w -> w = List.hd widths) widths));
    tc "render rejects ragged rows" (fun () ->
        fails_with (fun () ->
            Harness.Table.render ~headers:[ "a"; "b" ] ~rows:[ [ "1" ] ]));
    tc "csv quotes what needs quoting" (fun () ->
        let out =
          Harness.Table.csv ~headers:[ "x" ] ~rows:[ [ "a,b" ]; [ "c\"d" ] ]
        in
        check_bool "comma quoted" true (contains out "\"a,b\"");
        check_bool "quote doubled" true (contains out "\"c\"\"d\""));
  ]

let workload_tests =
  [
    tc "mixed respects the produce ratio (statistically)" (fun () ->
        let rng = Sched.Rng.create 4 in
        let ops =
          Harness.Workload.mixed ~rng ~n:10_000 ~produce_pct:30 ~key_range:100
        in
        let produces = Harness.Workload.count_produces ops in
        check_bool "close to 30%" true (produces > 2_500 && produces < 3_500));
    tc "mixed keys stay in range" (fun () ->
        let rng = Sched.Rng.create 5 in
        let ops =
          Harness.Workload.mixed ~rng ~n:1_000 ~produce_pct:100 ~key_range:7
        in
        Array.iter
          (function
            | Harness.Workload.Produce k ->
                if k < 0 || k >= 7 then Alcotest.failf "key %d" k
            | Consume -> Alcotest.fail "no consumes expected")
          ops);
    tc "per_thread streams are independent and reproducible" (fun () ->
        let gen rng = Array.init 5 (fun _ -> Sched.Rng.int rng 1000) in
        let a = Harness.Workload.per_thread ~threads:3 ~seed:9 gen in
        let b = Harness.Workload.per_thread ~threads:3 ~seed:9 gen in
        check_bool "reproducible" true (a = b);
        check_bool "distinct across threads" true (a.(0) <> a.(1)));
    tc "churn bursts within bounds" (fun () ->
        let rng = Sched.Rng.create 6 in
        let bursts = Harness.Workload.churn_bursts ~rng ~n:500 ~max_burst:8 in
        Array.iter
          (fun b -> if b < 1 || b > 8 then Alcotest.failf "burst %d" b)
          bursts);
  ]

let runner_tests =
  [
    tc "runner executes every tid exactly once" (fun () ->
        let hits = Array.make 4 0 in
        let r = Harness.Runner.run ~threads:4 (fun ~tid -> hits.(tid) <- hits.(tid) + 1) in
        check_bool "all ran once" true (hits = [| 1; 1; 1; 1 |]);
        check_bool "wall time positive" true (r.wall_ns >= 0));
    tc "throughput arithmetic" (fun () ->
        let r = { Harness.Runner.wall_ns = 1_000_000_000; per_thread_ns = [| 0 |] } in
        check_bool "1000 ops in 1s" true
          (abs_float (Harness.Runner.throughput ~ops:1000 r -. 1000.0) < 0.01));
    tc "single-thread runner works" (fun () ->
        let x = ref 0 in
        ignore (Harness.Runner.run ~threads:1 (fun ~tid -> x := tid + 41));
        check_int "ran" 41 !x);
  ]

let config_tests =
  [
    tc "config rejects non-positive sizes" (fun () ->
        fails_with (fun () -> Mm_intf.config ~threads:0 ~capacity:4 ());
        fails_with (fun () -> Mm_intf.config ~threads:2 ~capacity:0 ()));
    tc "config defaults are zero-extras" (fun () ->
        let c = Mm_intf.config ~threads:2 ~capacity:4 () in
        check_int "links" 0 c.num_links;
        check_int "data" 0 c.num_data;
        check_int "roots" 0 c.num_roots);
    tc "instance accessors agree with the config" (fun () ->
        let c = small_cfg ~threads:3 ~capacity:32 () in
        let mm = mm_of "wfrc" c in
        check_int "threads" 3 (Mm_intf.conf mm).threads;
        check_int "capacity" 32 (Shmem.Arena.capacity (Mm_intf.arena mm));
        check_int "counters rows" 3
          (Atomics.Counters.threads (Mm_intf.counters mm)));
  ]

let registry_tests =
  [
    tc "all five schemes are registered" (fun () ->
        check_int "count" 5 (List.length Harness.Registry.names);
        List.iter
          (fun s ->
            let mm = mm_of s (small_cfg ()) in
            check_string "name matches" s (Mm_intf.name mm))
          Harness.Registry.names);
    tc "rc subset is correct" (fun () ->
        check_bool "wfrc rc" true (List.mem "wfrc" Harness.Registry.rc_names);
        check_bool "hp not rc" false (List.mem "hp" Harness.Registry.rc_names));
    tc "unknown scheme rejected with the known list" (fun () ->
        fails_with ~substring:"unknown scheme" (fun () ->
            Harness.Registry.find "nope"));
  ]

let suite =
  hist_tests @ fmt_tests @ table_tests @ workload_tests @ runner_tests
  @ config_tests @ registry_tests
