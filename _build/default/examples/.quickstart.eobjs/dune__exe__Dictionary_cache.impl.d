examples/dictionary_cache.ml: Array Harness List Mm_intf Printf Sched Structures
