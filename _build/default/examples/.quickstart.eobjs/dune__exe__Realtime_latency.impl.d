examples/realtime_latency.ml: Array Atomic Atomics Harness List Mm_intf Printf Sched Shmem
