examples/quickstart.ml: Harness Mm_intf Printf Shmem
