examples/job_scheduler.ml: Array Atomic Domain Harness List Mm_intf Printf Sched Structures
