examples/telemetry_pipeline.ml: Atomic Atomics Domain Harness List Mm_intf Printf Sched Structures
