examples/telemetry_pipeline.mli:
