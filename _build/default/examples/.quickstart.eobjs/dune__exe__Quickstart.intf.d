examples/quickstart.mli:
