examples/dictionary_cache.mli:
