(* Quickstart: the memory-management API end to end.

   Run with:  dune exec examples/quickstart.exe

   Walks through the paper's user model (§3.2): allocate nodes, link
   them through shared links, de-reference safely, release — narrating
   the reference counts as it goes. *)

module Mm = Mm_intf
module Value = Shmem.Value
module Arena = Shmem.Arena

let () =
  (* A manager for 2 threads, 16 nodes, each node carrying one link
     slot and one data word; 1 root link for us to play with. *)
  let cfg =
    Mm.config ~threads:2 ~capacity:16 ~num_links:1 ~num_data:1 ~num_roots:1 ()
  in
  let mm = Harness.Registry.instantiate "wfrc" cfg in
  let arena = Mm.arena mm in
  let refs p = Arena.read_mm_ref arena p in

  Printf.printf "scheme: %s, capacity: %d nodes, free now: %d\n\n"
    (Mm.name mm) cfg.capacity (Mm.free_count mm);

  (* AllocNode: a fresh node with one reference owned by us.
     (mm_ref counts two units per reference — the paper's convention.) *)
  let a = Mm.alloc mm ~tid:0 in
  Arena.write_data arena a 0 42;
  Printf.printf "allocated node #%d (mm_ref=%d, i.e. 1 reference)\n"
    (Value.handle a) (refs a);

  (* Publish it through a shared link. store_link/cas_link manage the
     link's own reference internally, so the count gains 2 units. *)
  let root = Arena.root_addr arena 0 in
  Mm.store_link mm ~tid:0 root a;
  Printf.printf "stored into root link     (mm_ref=%d: us + the link)\n"
    (refs a);

  (* DeRefLink: another thread reads the link and gets a guaranteed
     reference — this is the operation the paper makes wait-free. *)
  let p = Mm.deref mm ~tid:1 root in
  Printf.printf "thread 1 deref'd the link (mm_ref=%d), payload=%d\n"
    (refs p)
    (Arena.read_data arena p 0);
  Mm.release mm ~tid:1 p;

  (* Replace the node in the link with CompareAndSwapLink (Figure 6).
     On WFRC this helps pending de-references before the old node can
     lose its link reference. *)
  let b = Mm.alloc mm ~tid:0 in
  Arena.write_data arena b 0 43;
  let swapped = Mm.cas_link mm ~tid:0 root ~old:a ~nw:b in
  Printf.printf "cas_link a->b: %b           (a mm_ref=%d, b mm_ref=%d)\n"
    swapped (refs a) (refs b);

  (* Drop our own references. Node [a] now has none left, so it is
     reclaimed into the wait-free free-list automatically. *)
  Mm.release mm ~tid:0 a;
  Mm.release mm ~tid:0 b;
  Printf.printf "released our refs: free=%d (node a reclaimed)\n"
    (Mm.free_count mm);

  (* Clear the root: the link's reference on b is released internally,
     so b is reclaimed too. *)
  ignore (Mm.cas_link mm ~tid:0 root ~old:b ~nw:Value.null);
  Printf.printf "cleared root: free=%d of %d — no leaks\n" (Mm.free_count mm)
    cfg.capacity;
  Mm.validate mm;
  print_endline "invariants validated. done."
