(* The single hook every shared-memory primitive crosses.

   In native parallel runs the hook is a no-op and costs one indirect
   call. Under the deterministic scheduler ([Sched.Engine]) the hook
   performs a [Yield] effect, which is what gives the engine one
   scheduling decision per atomic primitive — the granularity at which
   the paper's interleavings are defined.

   [noop] is a named closure (not [ignore]): the [%ignore] primitive
   materialises a fresh closure at every use site, which would break
   the physical-equality test in [is_installed]. *)

(* Access-kind metadata carried by the instrumented crossing
   ([hit_at]). [Read]/[Write] are the plain single-word operations;
   [Cas]/[Faa]/[Swap] are the paper's Figure 2 RMW primitives. *)
type kind = Read | Write | Cas | Faa | Swap

let kind_name = function
  | Read -> "read"
  | Write -> "write"
  | Cas -> "cas"
  | Faa -> "faa"
  | Swap -> "swap"

let noop () = ()

let hook : (unit -> unit) ref = ref noop

(* Secondary validation hook, run before the scheduling hook on every
   primitive. The deterministic engine installs a fault-consistency
   assertion here when a fault plan is active (Sim mode only — native
   runs never call [hit]); it defaults to a no-op and costs one
   indirect call otherwise. *)
let check : (unit -> unit) ref = ref noop

(* Access validator, run after the scheduling hook with the access
   metadata. Ordering matters: the primitive's atomic operation
   executes when the engine resumes the fiber out of the [Yield]
   raised by [hook], so the validator observes shared state at the
   moment the access actually takes effect — any free interleaved
   before this step has already been recorded. Like [noop] above,
   [no_validate] is a named closure so installation is detectable by
   physical equality. *)
let no_validate ~addr:(_ : int) (_ : kind) = ()

let validator : (addr:int -> kind -> unit) ref = ref no_validate

let hit () =
  !check ();
  !hook ()

(* The instrumented crossing: identical scheduling behaviour to [hit]
   (one [check], one [hook]), plus one indirect validator call. With
   no validator installed the extra cost is that single call to a
   no-op, and native runs keep using the metadata-free entry points,
   so the metadata is free where it is not wanted. [addr] is a global
   arena address ([Shmem.Arena.addr_base] + local offset), or -1 for
   cells outside any arena. *)
let hit_at ~addr kind =
  !check ();
  !hook ();
  !validator ~addr kind

let install f = hook := f

let reset () = hook := noop

(* [with_hook] brackets one deterministic run, so it must give the
   body a clean instrumentation context and put everything back after:
   a validator (or check) installed inside one [Sched.Explore] run
   must not leak into later runs that share the process. *)
let with_hook f body =
  let saved = !hook in
  let saved_check = !check in
  let saved_validator = !validator in
  hook := f;
  Fun.protect
    ~finally:(fun () ->
      hook := saved;
      check := saved_check;
      validator := saved_validator)
    body

let with_check f body =
  let saved = !check in
  check := f;
  Fun.protect ~finally:(fun () -> check := saved) body

let install_validator f = validator := f
let reset_validator () = validator := no_validate

let with_validator f body =
  let saved = !validator in
  validator := f;
  Fun.protect ~finally:(fun () -> validator := saved) body

let is_installed () = !hook != noop
let validator_installed () = !validator != no_validate
