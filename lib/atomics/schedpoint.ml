(* The single hook every shared-memory primitive crosses.

   In native parallel runs the hook is a no-op and costs one indirect
   call. Under the deterministic scheduler ([Sched.Engine]) the hook
   performs a [Yield] effect, which is what gives the engine one
   scheduling decision per atomic primitive — the granularity at which
   the paper's interleavings are defined.

   [noop] is a named closure (not [ignore]): the [%ignore] primitive
   materialises a fresh closure at every use site, which would break
   the physical-equality test in [is_installed]. *)

let noop () = ()

let hook : (unit -> unit) ref = ref noop

(* Secondary validation hook, run before the scheduling hook on every
   primitive. The deterministic engine installs a fault-consistency
   assertion here when a fault plan is active (Sim mode only — native
   runs never call [hit]); it defaults to a no-op and costs one
   indirect call otherwise. *)
let check : (unit -> unit) ref = ref noop

let hit () =
  !check ();
  !hook ()

let install f = hook := f

let reset () = hook := noop

let with_hook f body =
  let saved = !hook in
  hook := f;
  Fun.protect ~finally:(fun () -> hook := saved) body

let with_check f body =
  let saved = !check in
  check := f;
  Fun.protect ~finally:(fun () -> check := saved) body

let is_installed () = !hook != noop
