(* Unboxed atomic word store (Native backend only).

   A page-aligned block of [uintnat] words outside the OCaml heap,
   driven through C stubs that compile to single [__atomic] SEQ_CST
   instructions — no per-word [Atomic.t] box, no GC card marking, and
   word addresses that never move. The buffer holds untagged machine
   integers only (the managers' word encodings are immediates by
   construction), so the GC never scans it.

   The stubs are unchecked by design ([@@noalloc] externals cannot
   raise), so this wrapper owns the bounds checks. Hot-path accessors
   use [unsafe_*] after a single check, mirroring how [Array] code is
   written. *)

type raw

external raw_make : int -> raw = "caml_wfrc_words_make"

external unsafe_get : raw -> int -> int = "caml_wfrc_words_get" [@@noalloc]

external unsafe_set : raw -> int -> int -> unit = "caml_wfrc_words_set"
[@@noalloc]

external unsafe_cas : raw -> int -> int -> int -> bool = "caml_wfrc_words_cas"
[@@noalloc]

external unsafe_faa : raw -> int -> int -> int = "caml_wfrc_words_faa"
[@@noalloc]

external unsafe_swap : raw -> int -> int -> int = "caml_wfrc_words_swap"
[@@noalloc]

external unsafe_ann_scan : raw -> int array -> int -> int -> int
  = "caml_wfrc_ann_scan"
[@@noalloc]

external unsafe_release_ref : raw -> int -> bool
  = "caml_wfrc_words_release_ref"
[@@noalloc]

external unsafe_take : raw -> int -> int = "caml_wfrc_words_take" [@@noalloc]

external unsafe_bump_mod : raw -> int -> int -> int
  = "caml_wfrc_words_bump_mod"
[@@noalloc]

external unsafe_read_clear : raw -> int -> int = "caml_wfrc_words_read_clear"
[@@noalloc]

external unsafe_release_collect : raw -> int -> int -> int -> int array -> int
  = "caml_wfrc_words_release_collect"
[@@noalloc]

external unsafe_take_fix : raw -> int -> raw -> int array -> int
  = "caml_wfrc_take_fix"
[@@noalloc]

external unsafe_free_donate : raw -> raw -> int -> int -> int array -> bool
  = "caml_wfrc_free_donate"
[@@noalloc]

external unsafe_rc_flush : raw -> int array -> int -> int array -> int
  = "caml_wfrc_rc_flush"
[@@noalloc]

type t = { raw : raw; len : int }

let make len =
  if len < 1 then invalid_arg "Words.make";
  { raw = raw_make len; len }

let length t = t.len

let[@inline] check t i =
  if i < 0 || i >= t.len then invalid_arg "Words: index out of range"

let[@inline] get t i =
  check t i;
  unsafe_get t.raw i

let[@inline] set t i v =
  check t i;
  unsafe_set t.raw i v

let[@inline] cas t i ~old ~nw =
  check t i;
  unsafe_cas t.raw i old nw

let[@inline] faa t i d =
  check t i;
  unsafe_faa t.raw i d

let[@inline] swap t i v =
  check t i;
  unsafe_swap t.raw i v

(* Fused protocol fragments: one stub call for a short fixed sequence
   of atomic ops (see word_stubs.c). Identical per-word behaviour to
   issuing the ops through [faa]/[get]/[cas]/... individually. *)

let[@inline] release_ref t i =
  check t i;
  unsafe_release_ref t.raw i

let[@inline] take t i =
  check t i;
  unsafe_take t.raw i

let[@inline] bump_mod t i n =
  check t i;
  if n < 1 then invalid_arg "Words.bump_mod";
  unsafe_bump_mod t.raw i n

let[@inline] read_clear t i =
  check t i;
  unsafe_read_clear t.raw i

let[@inline] release_collect t ~ref_addr ~links ~nl ~out =
  check t ref_addr;
  if nl < 0 || Array.length out < nl then invalid_arg "Words.release_collect";
  if nl > 0 then begin
    check t links;
    check t (links + nl - 1)
  end;
  unsafe_release_collect t.raw ref_addr links nl out

(* [geom] for the cross-store fusions is validated once at creation by
   the manager (Gc) — the stubs also guard defensively. *)
let[@inline] take_fix t slot ~arena ~geom =
  check t slot;
  unsafe_take_fix t.raw slot arena.raw geom

let[@inline] free_donate t ~arena ~ref_addr ~node ~geom =
  check arena ref_addr;
  unsafe_free_donate t.raw arena.raw ref_addr node geom

(* Batched rc-buffer flush (R1-R2 per buffered decrement, claimed
   handles compacted to the front of [nodes]). The stub re-checks each
   computed ref offset, so the only wrapper obligation is the array
   bound on [n]. *)
let rc_flush t ~nodes ~n ~geom =
  if n < 0 || n > Array.length nodes then invalid_arg "Words.rc_flush";
  if Array.length geom <> 2 then invalid_arg "Words.rc_flush: geom";
  unsafe_rc_flush t.raw nodes n geom

(* [geom] layout: [| idx_base; idx_stride; ra_base; row_stride;
   slot_stride; n |]. Validated once here so the stub's own guards are
   pure defence in depth. *)
let ann_scan t ~geom ~from target =
  if Array.length geom <> 6 then invalid_arg "Words.ann_scan: geom";
  let n = geom.(5) in
  if from < 0 || from > n then invalid_arg "Words.ann_scan: from";
  unsafe_ann_scan t.raw geom from target
