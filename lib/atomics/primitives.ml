(* Word-level atomic primitives of the paper's Figure 2, over OCaml 5
   [int Atomic.t] cells. Each primitive crosses exactly one scheduling
   point, so a deterministic scheduler observes the same atomicity
   granularity the paper assumes. *)

type cell = int Atomic.t

let make = Atomic.make

let read (c : cell) =
  Schedpoint.hit ();
  Atomic.get c

let write (c : cell) v =
  Schedpoint.hit ();
  Atomic.set c v

(* CAS of the paper: returns whether the swap happened. *)
let cas (c : cell) ~old ~nw =
  Schedpoint.hit ();
  Atomic.compare_and_set c old nw

(* FAA of the paper: no return value is used by the algorithms, but we
   expose the previous value since it is free and useful for tests. *)
let faa (c : cell) delta =
  Schedpoint.hit ();
  Atomic.fetch_and_add c delta

(* SWAP of the paper: unconditionally stores [v], returns old value. *)
let swap (c : cell) v =
  Schedpoint.hit ();
  Atomic.exchange c v

(* Instrumented variants, used by [Shmem.Arena] for cells that live at
   a stable arena address. Scheduling behaviour is identical to the
   plain variants (exactly one crossing per call); the only difference
   is the access metadata handed to the installed validator. These are
   separate functions rather than optional arguments so the hot plain
   path allocates nothing and pays nothing. *)

let read_at ~addr (c : cell) =
  Schedpoint.hit_at ~addr Schedpoint.Read;
  Atomic.get c

let write_at ~addr (c : cell) v =
  Schedpoint.hit_at ~addr Schedpoint.Write;
  Atomic.set c v

let cas_at ~addr (c : cell) ~old ~nw =
  Schedpoint.hit_at ~addr Schedpoint.Cas;
  Atomic.compare_and_set c old nw

let faa_at ~addr (c : cell) delta =
  Schedpoint.hit_at ~addr Schedpoint.Faa;
  Atomic.fetch_and_add c delta

let swap_at ~addr (c : cell) v =
  Schedpoint.hit_at ~addr Schedpoint.Swap;
  Atomic.exchange c v
