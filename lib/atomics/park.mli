(** Park/unpark for the [Native] backend: an eventcount over a Linux
    futex (stub), with a [Mutex]/[Condition] fallback elsewhere.

    Usage (parker):
    {[
      let gen = Park.prepare p in
      if condition_now_satisfied () then Park.cancel p
      else Park.park p ~gen ~timeout_ns
    ]}
    and (waker), after publishing the condition:
    {[
      if Park.wake p then Counters.incr ctr ~tid Park_wake
    ]}

    The [prepare]/re-check/[park] order is load-bearing: it closes the
    lost-wakeup race (see park.ml). Never used under the [Sim]
    backend — parking is invisible to the deterministic scheduler. *)

type t

val create : unit -> t

val available : unit -> bool
(** Whether the futex stub is live (Linux). When [false], [create]
    builds the [Mutex]/[Condition] fallback. *)

type impl = Futex | Condvar

val impl : t -> impl
val waiters : t -> int
(** Registered parkers ([prepare]d, not yet returned). Approximate
    under concurrency; exact at quiescence. *)

val prepare : t -> int
(** Register as a waiter and read the current generation. Must be
    followed by a re-check of the awaited condition, then either
    {!cancel} or {!park}. *)

val cancel : t -> unit
(** Deregister without sleeping (the re-check found the condition). *)

val park : t -> gen:int -> timeout_ns:int -> unit
(** Sleep until the generation moves past [gen], the timeout elapses
    ([timeout_ns < 0] = no timeout), or a spurious kernel wakeup.
    Deregisters on return. With the condvar fallback a timed park is a
    bounded spin (the stdlib has no timed condition wait); untimed
    parks are exact on both implementations. *)

val wake : t -> bool
(** Bump the generation and wake all registered parkers. Returns
    [true] if any parker was registered — callers use it to count
    [Park_wake] events. Cheap when nobody waits: one atomic add and
    one load. *)
