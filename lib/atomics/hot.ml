(* A vector of contention-padded hot words, representation-dispatched.

   The managers keep a handful of global words every thread hammers —
   free-list heads, [currentFreeList], [helpCurrent], the [annAlloc]
   slots, the lock word. Under [Boxed] these are the familiar padded
   [int Atomic.t] cells (and under [Sim], plain {!Primitives} cells so
   every access still crosses one scheduling point, byte-for-byte the
   historical behaviour). Under [Unboxed] the whole vector is one
   {!Words} block with each slot on its own cache-line pair — no boxes,
   no GC traffic, stable addresses.

   Indexing is by slot: slot [i] lives at word [i * cache_line_words]
   in the unboxed block. *)

module P = Primitives

type store = Cells of P.cell array | Raw of Words.t
type t = { backend : Backend.t; store : store }

let stride = Backend.cache_line_words

let create ~backend ~(rep : Backend.rep) n ~init =
  if n < 1 then invalid_arg "Hot.create";
  match (backend, rep) with
  | Backend.Sim, Backend.Unboxed ->
      invalid_arg "Hot.create: Sim is boxed-only"
  | Backend.Sim, Backend.Boxed ->
      { backend; store = Cells (Array.init n (fun i -> P.make (init i))) }
  | Backend.Native, Backend.Boxed ->
      {
        backend;
        store =
          Cells
            (Array.init n (fun i ->
                 Backend.make_contended Backend.Native (init i)));
      }
  | Backend.Native, Backend.Unboxed ->
      let w = Words.make (n * stride) in
      for i = 0 to n - 1 do
        Words.set w (i * stride) (init i)
      done;
      { backend; store = Raw w }

let length t =
  match t.store with
  | Cells a -> Array.length a
  | Raw w -> Words.length w / stride

let[@inline] read t i =
  match t.store with
  | Cells a -> Backend.read t.backend a.(i)
  | Raw w -> Words.get w (i * stride)

let[@inline] write t i v =
  match t.store with
  | Cells a -> Backend.write t.backend a.(i) v
  | Raw w -> Words.set w (i * stride) v

let[@inline] cas t i ~old ~nw =
  match t.store with
  | Cells a -> Backend.cas t.backend a.(i) ~old ~nw
  | Raw w -> Words.cas w (i * stride) ~old ~nw

let[@inline] faa t i d =
  match t.store with
  | Cells a -> Backend.faa t.backend a.(i) d
  | Raw w -> Words.faa w (i * stride) d

let[@inline] swap t i v =
  match t.store with
  | Cells a -> Backend.swap t.backend a.(i) v
  | Raw w -> Words.swap w (i * stride) v

(* Fused fragments: one stub crossing under [Raw]; the [Cells] arms
   execute the same per-word ops individually — under [Sim], the same
   scheduling points in the same order as the callers always issued. *)

(* A4's collect: read, and take with an exchange only if non-zero. *)
let[@inline] take t i =
  match t.store with
  | Cells a ->
      if Backend.read t.backend a.(i) = 0 then 0
      else Backend.swap t.backend a.(i) 0
  | Raw w -> Words.take w (i * stride)

(* F1-F2 / the helpCurrent advance: read, one CAS attempt to
   [(v + 1) mod n], return the value read. *)
let[@inline] bump_mod t i n =
  match t.store with
  | Cells a ->
      let cur = Backend.read t.backend a.(i) in
      ignore (Backend.cas t.backend a.(i) ~old:cur ~nw:((cur + 1) mod n));
      cur
  | Raw w -> Words.bump_mod w (i * stride) n

(* Raw access for cross-store fusions (F3's donate spans an arena and
   a hot vector): the backing block and the physical word of a slot. *)
let raw t = match t.store with Raw w -> Some w | Cells _ -> None
let word_of_slot i = i * stride
