(** Bounded exponential backoff for the lock-free baselines' retry
    loops. The wait-free algorithms never use it. *)

type t

val create : ?backend:Backend.t -> ?min:int -> ?max:int -> unit -> t
(** [create ~min ~max ()] starts at [min] spin iterations, doubling up
    to [max]. Defaults: [backend = Sim], [min = 1], [max = 256]. Under
    the [Native] backend, {!once} never consults {!Schedpoint}. *)

val reset : t -> unit
(** Reset the spin budget to its minimum (call after a success). *)

val once : t -> unit
(** Spin for the current budget and double it. Under the deterministic
    scheduler this collapses to a single scheduling point. *)

val current : t -> int
(** Current spin budget (for tests). *)
