(** Bounded exponential backoff for the lock-free baselines' retry
    loops, with an optional park/unpark tail under [Native]. The
    wait-free algorithms never use it. *)

type t

val create :
  ?backend:Backend.t ->
  ?min:int ->
  ?max:int ->
  ?park:Park.t ->
  ?on_park:(unit -> unit) ->
  unit ->
  t
(** [create ~min ~max ()] starts at [min] spin iterations, doubling up
    to [max]. Defaults: [backend = Sim], [min = 1], [max = 256]. Under
    the [Native] backend, {!once} never consults {!Schedpoint}.

    [park] arms {!once_waiting}'s blocking tail; [on_park] runs just
    before each actual sleep (callers count [Park_wait] there). *)

val reset : t -> unit
(** Reset the spin budget to its minimum (call after a success). *)

val once : t -> unit
(** Spin for the current budget and double it. Under the deterministic
    scheduler this collapses to a single scheduling point. *)

val once_waiting : t -> ready:(unit -> bool) -> unit
(** Like {!once} while the budget grows; once it saturates — [Native]
    with a [park] spot only — register as a waiter, re-check [ready],
    and sleep until the waker's {!Park.wake}. The waker must call
    {!Park.wake} after every publish of the awaited condition (e.g. on
    every unlock), or the sleep is unbounded. Under [Sim] this is
    exactly {!once}: one scheduling point, [ready] never called. *)

val current : t -> int
(** Current spin budget (for tests). *)
