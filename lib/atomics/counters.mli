(** Per-thread event counters for the memory managers and experiments.

    Each thread increments only its own padded row, so increments are
    plain stores with no cross-thread contention; totals are intended
    to be read after the worker threads have joined. *)

type event =
  | Cas_attempt      (** every CAS issued by an algorithm *)
  | Cas_failure      (** CAS that returned [false] *)
  | Faa
  | Swap
  | Read
  | Write
  | Deref            (** completed [DeRefLink]-style operations *)
  | Deref_retry      (** re-read loops in lock-free deref (Valois/HP) *)
  | Deref_helped     (** WFRC derefs whose answer came from a helper *)
  | Help_scan        (** [HelpDeRef] announcement rows inspected *)
  | Help_answered    (** successful H6 answer CASes *)
  | Help_refused     (** H6 CAS failed; answer discarded *)
  | Alloc            (** completed allocations *)
  | Alloc_retry      (** A3 loop iterations beyond the first *)
  | Alloc_helped     (** allocations satisfied via [annAlloc] (A4) *)
  | Alloc_gave_help  (** nodes donated to another thread (A12) *)
  | Free             (** completed frees *)
  | Free_retry       (** F7 loop iterations beyond the first *)
  | Free_gave_help   (** frees satisfied by donating the node (F3) *)
  | Release          (** completed [ReleaseRef]-style operations *)
  | Node_reclaimed   (** nodes actually returned to a free-list *)
  | Hp_scan          (** hazard-pointer scan passes *)
  | Epoch_advance    (** successful global-epoch advances *)
  | Lock_acquire     (** mutex acquisitions in the lock-based scheme *)
  | Cache_refill     (** domain-local allocation-cache refills (sharded) *)
  | Cache_spill      (** cache overflow spills back to a stripe *)
  | Free_remote      (** frees routed through a remote stripe's buffer *)
  | Steal            (** refill probes of a non-home stripe *)
  | Park_wait        (** threads that parked (futex/condvar wait) *)
  | Park_wake        (** wakes delivered to at least one parked thread *)
  | Recovery_adopt   (** nodes adopted from a dead thread's custody *)
  | Recovery_release (** surplus references released on a dead thread's
                         behalf during recovery *)
  | Oom_backpressure (** allocations that gave up with [Out_of_nodes]
                         after bounded waiting + a recovery attempt *)
  | Rc_defer         (** rc mutations absorbed by a per-domain buffer
                         (a buffered decrement, or a deref whose
                         increment cancelled a buffered decrement) *)
  | Rc_flush         (** per-domain rc-buffer flushes (any trigger:
                         buffer-full, quiescence, [declare_dead],
                         recovery, or the allocator's OOM path) *)

val all_events : event list
val event_name : event -> string
val num_events : int

type t

val create : ?backend:Backend.t -> threads:int -> unit -> t
(** [create ~threads] makes a counter block with one row per thread id
    in [0..threads-1]. The backend (default [Sim]) selects the row
    padding stride: [Native] rows are padded to 256-byte multiples to
    defeat the adjacent-line prefetcher under real parallelism. *)

val incr : t -> tid:int -> event -> unit
val add : t -> tid:int -> event -> int -> unit
val get : t -> tid:int -> event -> int
val total : t -> event -> int
val reset : t -> unit
val threads : t -> int

val snapshot : t -> (event * int) list
(** Non-zero totals, in declaration order. *)

val pp : Format.formatter -> t -> unit
