(** The paper's Figure 2 primitives — FAA, CAS, SWAP — plus plain
    read/write, over [int Atomic.t] cells.

    Every function crosses exactly one {!Schedpoint} scheduling point,
    so under the deterministic scheduler each call is one atomic step,
    matching the granularity at which the paper's proofs reason. *)

type cell = int Atomic.t

val make : int -> cell
(** [make v] allocates a fresh cell holding [v]. *)

val read : cell -> int
(** Atomic read of a single word. *)

val write : cell -> int -> unit
(** Atomic write of a single word. *)

val cas : cell -> old:int -> nw:int -> bool
(** [cas c ~old ~nw] is the paper's [CAS]: atomically replaces the
    contents of [c] with [nw] iff it equals [old]; returns whether the
    replacement happened. *)

val faa : cell -> int -> int
(** [faa c delta] is the paper's [FAA]: atomically adds [delta] to [c].
    Returns the previous value (unused by the paper's algorithms but
    free to expose and convenient for assertions). *)

val swap : cell -> int -> int
(** [swap c v] is the paper's [SWAP]: atomically stores [v] in [c] and
    returns the previous value. *)

(** {1 Instrumented variants}

    Identical to the plain operations — exactly one scheduling
    crossing each — but the crossing is {!Schedpoint.hit_at}, carrying
    the cell's global arena address and the access kind to the
    installed validator. Used by [Shmem.Arena] for all arena words;
    cells without a stable address keep the plain entry points. *)

val read_at : addr:int -> cell -> int
val write_at : addr:int -> cell -> int -> unit
val cas_at : addr:int -> cell -> old:int -> nw:int -> bool
val faa_at : addr:int -> cell -> int -> int
val swap_at : addr:int -> cell -> int -> int
