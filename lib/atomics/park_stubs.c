/* Futex-backed parking for the Native backend (Linux).
 *
 * One 32-bit generation word per parking spot, allocated outside the
 * OCaml heap (the custom block stores a pointer, so GC moves never
 * invalidate the address the kernel watches). The OCaml side runs an
 * eventcount protocol on top: parkers register in an OCaml-side
 * waiter count, re-check their condition, then FUTEX_WAIT on the
 * generation they read; wakers bump the generation and FUTEX_WAKE.
 *
 * wait enters a blocking section (it can sleep), so it must NOT be
 * [@@noalloc]; get/bump/wake are straight-line and are. On non-Linux
 * hosts the futex syscalls degrade to no-ops and
 * caml_wfrc_futex_available reports false — the OCaml side then uses
 * its Mutex/Condition fallback and never calls wait/wake. */

#include <stdlib.h>
#include <stdint.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/custom.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/signals.h>

#ifdef __linux__
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#include <time.h>
#include <limits.h>
#define WFRC_HAVE_FUTEX 1
#else
#define WFRC_HAVE_FUTEX 0
#endif

typedef struct {
  uint32_t *word;
} wfrc_futex;

#define Futex_val(v) ((wfrc_futex *)Data_custom_val(v))

static void wfrc_futex_finalize(value v)
{
  wfrc_futex *f = Futex_val(v);
  if (f->word != NULL) {
    free(f->word);
    f->word = NULL;
  }
}

static struct custom_operations wfrc_futex_ops = {
  "wfrc.futex",
  wfrc_futex_finalize,
  custom_compare_default,
  custom_hash_default,
  custom_serialize_default,
  custom_deserialize_default,
  custom_compare_ext_default,
  custom_fixed_length_default
};

CAMLprim value caml_wfrc_futex_available(value unit)
{
  (void)unit;
  return Val_bool(WFRC_HAVE_FUTEX);
}

CAMLprim value caml_wfrc_futex_make(value unit)
{
  CAMLparam1(unit);
  CAMLlocal1(res);
  /* Own cache line: the generation word is hammered by wakers. */
  void *p = NULL;
  if (posix_memalign(&p, 64, 64) != 0) caml_raise_out_of_memory();
  *(uint32_t *)p = 0;
  res = caml_alloc_custom(&wfrc_futex_ops, sizeof(wfrc_futex), 0, 1);
  Futex_val(res)->word = (uint32_t *)p;
  CAMLreturn(res);
}

CAMLprim value caml_wfrc_futex_get(value vf)
{
  return Val_long(
      (intnat)__atomic_load_n(Futex_val(vf)->word, __ATOMIC_SEQ_CST));
}

CAMLprim value caml_wfrc_futex_bump(value vf)
{
  __atomic_add_fetch(Futex_val(vf)->word, 1, __ATOMIC_SEQ_CST);
  return Val_unit;
}

/* Wait until the generation word differs from [expected] or the
 * timeout elapses. timeout_ns < 0 means no timeout. The kernel
 * re-checks word == expected atomically, so a generation bump between
 * our read and the syscall is never a lost wakeup. */
CAMLprim value caml_wfrc_futex_wait(value vf, value vexpected, value vtmo)
{
#if WFRC_HAVE_FUTEX
  uint32_t *word = Futex_val(vf)->word;
  uint32_t expected = (uint32_t)Long_val(vexpected);
  intnat tmo = Long_val(vtmo);
  struct timespec ts;
  struct timespec *tsp = NULL;
  if (tmo >= 0) {
    ts.tv_sec = tmo / 1000000000;
    ts.tv_nsec = tmo % 1000000000;
    tsp = &ts;
  }
  caml_enter_blocking_section();
  syscall(SYS_futex, word, FUTEX_WAIT_PRIVATE, expected, tsp, NULL, 0);
  caml_leave_blocking_section();
#else
  (void)vf;
  (void)vexpected;
  (void)vtmo;
#endif
  return Val_unit;
}

CAMLprim value caml_wfrc_futex_wake(value vf)
{
#if WFRC_HAVE_FUTEX
  syscall(SYS_futex, Futex_val(vf)->word, FUTEX_WAKE_PRIVATE, INT_MAX, NULL,
          NULL, 0);
#else
  (void)vf;
#endif
  return Val_unit;
}
