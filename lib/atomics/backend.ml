(* Pluggable shared-memory backends.

   Every word of simulated shared memory is an [int Atomic.t] cell; the
   backend decides what one word operation *costs*:

   - [Sim] routes every primitive through {!Primitives}, i.e. across
     one {!Schedpoint} scheduling point. This is the representation the
     deterministic scheduler ([Sched.Engine]), the schedule explorer
     and the lincheck sweeps require: one scheduling decision per
     atomic primitive, the granularity at which the paper's
     interleavings are defined.

   - [Native] performs the [Atomic] operation directly, with zero hook
     dispatch — no hook-ref load, no indirect call — for
     [Domain]-parallel benchmark runs where the hook would be a pure
     tax. Native also pads designated hot cells to a cache-line pair
     ([make_contended]) so FAA-heavy words ([mm_ref], free-list heads,
     root links) do not false-share.

   Both backends share the cell representation, so a backend is a
   runtime value ([t] below) that the arena and the managers store and
   branch on — a predictable two-way branch on the hot path instead of
   the Sim-only indirect hook call. The [PRIMS] first-class-module view
   is provided for code that wants to abstract over a backend wholesale
   (benchmarks, tests).

   [make_contended]: OCaml 5.2 gained [Atomic.make_contended]; this
   tree builds on 5.1, so we reproduce it with [Obj]: an atomic cell is
   a one-field mutable block whose payload lives in field 0, and the
   atomic primitives only ever touch field 0, so a *larger* block with
   the payload in field 0 is observationally identical while forcing
   the allocator to give the cell a cache-line pair of its own. The
   spare fields hold immediate ints, so the GC scans them trivially. *)

type t = Sim | Native

let name = function Sim -> "sim" | Native -> "native"

let of_string = function
  | "sim" -> Sim
  | "native" -> Native
  | s -> invalid_arg (Printf.sprintf "Backend.of_string: %S" s)

let pp ppf b = Fmt.string ppf (name b)

(* Cell representation, orthogonal to the backend but constrained by
   it: [Sim] must stay [Boxed] (the instrumented primitives are what
   give the deterministic scheduler its per-access crossings), while
   [Native] defaults to [Unboxed] — one out-of-heap word block driven
   by C stubs ({!Words}) instead of an [int Atomic.t] box per cell.
   [Native]+[Boxed] is kept as a representation-ablation arm. *)
type rep = Boxed | Unboxed

let rep_name = function Boxed -> "boxed" | Unboxed -> "unboxed"

let rep_of_string = function
  | "boxed" -> Boxed
  | "unboxed" -> Unboxed
  | s -> invalid_arg (Printf.sprintf "Backend.rep_of_string: %S" s)

let pp_rep ppf r = Fmt.string ppf (rep_name r)

let default_rep = function Sim -> Boxed | Native -> Unboxed

(* 16 words = 128 bytes: a 64-byte line plus its prefetch partner,
   matching what [Atomic.make_contended] pads to on OCaml 5.2+. *)
let cache_line_words = 16

let make_padded (v : int) : int Atomic.t =
  let b = Obj.new_block 0 cache_line_words in
  Obj.set_field b 0 (Obj.repr v);
  (Obj.obj b : int Atomic.t)

(* The backend signature: Figure 2's word operations plus the two cell
   constructors (plain and contention-padded). *)
module type PRIMS = sig
  type cell = int Atomic.t

  val name : string

  val make : int -> cell

  val make_contended : int -> cell
  (** A cell padded to its own cache-line pair (Native); under [Sim]
      there is no cache to contend for and this is plain {!make}. *)

  val read : cell -> int
  val write : cell -> int -> unit
  val cas : cell -> old:int -> nw:int -> bool
  val faa : cell -> int -> int
  val swap : cell -> int -> int
end

module Sim_prims : PRIMS = struct
  type cell = int Atomic.t

  let name = "sim"
  let make = Primitives.make
  let make_contended = Primitives.make
  let read = Primitives.read
  let write = Primitives.write
  let cas = Primitives.cas
  let faa = Primitives.faa
  let swap = Primitives.swap
end

module Native_prims : PRIMS = struct
  type cell = int Atomic.t

  let name = "native"
  let make = Atomic.make
  let make_contended = make_padded
  let[@inline] read c = Atomic.get c
  let[@inline] write c v = Atomic.set c v
  let[@inline] cas c ~old ~nw = Atomic.compare_and_set c old nw
  let[@inline] faa c delta = Atomic.fetch_and_add c delta
  let[@inline] swap c v = Atomic.exchange c v
end

let prims : t -> (module PRIMS) = function
  | Sim -> (module Sim_prims)
  | Native -> (module Native_prims)

(* Direct dispatch used on hot paths: a two-way branch the compiler can
   inline, instead of a call through a first-class module. The [Sim]
   arm crosses the scheduling point; the [Native] arm never consults
   {!Schedpoint} at all. *)

let[@inline] make b v =
  match b with Sim -> Primitives.make v | Native -> Atomic.make v

let[@inline] make_contended b v =
  match b with Sim -> Primitives.make v | Native -> make_padded v

let[@inline] read b c =
  match b with Sim -> Primitives.read c | Native -> Atomic.get c

let[@inline] write b c v =
  match b with Sim -> Primitives.write c v | Native -> Atomic.set c v

let[@inline] cas b c ~old ~nw =
  match b with
  | Sim -> Primitives.cas c ~old ~nw
  | Native -> Atomic.compare_and_set c old nw

let[@inline] faa b c delta =
  match b with
  | Sim -> Primitives.faa c delta
  | Native -> Atomic.fetch_and_add c delta

let[@inline] swap b c v =
  match b with Sim -> Primitives.swap c v | Native -> Atomic.exchange c v
