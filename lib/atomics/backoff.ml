(* Bounded exponential backoff.

   Used only by baselines that spin (lock-free retry loops); the
   wait-free algorithms never need it, which is itself part of the
   paper's point. [once] spins with [Domain.cpu_relax] so it behaves
   sensibly both on real cores and under pure time slicing. *)

type t = { backend : Backend.t; min : int; max : int; mutable cur : int }

let create ?(backend = Backend.Sim) ?(min = 1) ?(max = 256) () =
  if min < 1 || max < min then invalid_arg "Backoff.create";
  { backend; min; max; cur = min }

let reset b = b.cur <- b.min

let spin b =
  for _ = 1 to b.cur do
    Domain.cpu_relax ()
  done

let once b =
  (match b.backend with
  | Backend.Sim ->
      (* Under the deterministic scheduler spinning would only lengthen
         traces without changing interleavings, so collapse to one
         yield. *)
      if Schedpoint.is_installed () then Schedpoint.hit () else spin b
  | Backend.Native ->
      (* Hook-free by construction: never consult the schedpoint. *)
      spin b);
  if b.cur < b.max then b.cur <- b.cur * 2

let current b = b.cur
