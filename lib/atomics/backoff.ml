(* Bounded exponential backoff, with an optional parking tail.

   Used only by baselines that spin (lock-free retry loops); the
   wait-free algorithms never need it, which is itself part of the
   paper's point. [once] spins with [Domain.cpu_relax] so it behaves
   sensibly both on real cores and under pure time slicing.

   [once_waiting] is the blocking-aware variant for waiters with a
   re-checkable condition (a lock word, a free-list head): it spins
   while the budget grows, then — Native only, when a {!Park} spot was
   supplied — parks until the owner's release wakes it. Under [Sim]
   it is byte-for-byte [once]: one scheduling point, no condition
   probe, so deterministic schedules are untouched. *)

type t = {
  backend : Backend.t;
  min : int;
  max : int;
  mutable cur : int;
  park : Park.t option;
  on_park : unit -> unit;
}

let nothing () = ()

let create ?(backend = Backend.Sim) ?(min = 1) ?(max = 256) ?park
    ?(on_park = nothing) () =
  if min < 1 || max < min then invalid_arg "Backoff.create";
  { backend; min; max; cur = min; park; on_park }

let reset b = b.cur <- b.min

let spin b =
  for _ = 1 to b.cur do
    Domain.cpu_relax ()
  done

let bump b = if b.cur < b.max then b.cur <- b.cur * 2

let once b =
  (match b.backend with
  | Backend.Sim ->
      (* Under the deterministic scheduler spinning would only lengthen
         traces without changing interleavings, so collapse to one
         yield. *)
      if Schedpoint.is_installed () then Schedpoint.hit () else spin b
  | Backend.Native ->
      (* Hook-free by construction: never consult the schedpoint. *)
      spin b);
  bump b

let once_waiting b ~ready =
  match b.backend with
  | Backend.Sim ->
      (* Identical to [once]: the deterministic scheduler sees exactly
         one crossing, and [ready] is never consulted — Sim schedules
         stay byte-for-byte those of the spin-only backoff. *)
      if Schedpoint.is_installed () then Schedpoint.hit () else spin b;
      bump b
  | Backend.Native -> (
      match b.park with
      | Some p when b.cur >= b.max ->
          (* Spin budget exhausted: sleep until the owner wakes us.
             The prepare / re-check / park order closes the race with
             a release that lands between our failed attempt and the
             sleep. *)
          let gen = Park.prepare p in
          if ready () then Park.cancel p
          else begin
            b.on_park ();
            Park.park p ~gen ~timeout_ns:(-1)
          end
      | _ ->
          spin b;
          bump b)

let current b = b.cur
