(* Park/unpark: blocking waits for the Native backend.

   Spin-only backoff burns a full time slice whenever the thread it
   waits for is descheduled — on an oversubscribed box that turns a
   microsecond handoff into a multi-millisecond stall. A parking spot
   lets a waiter sleep in the kernel and be woken by the releasing
   thread directly.

   The protocol is an eventcount:

     parker: incr waiters  (full fence)
             gen := prepare
             re-check the condition; if satisfied, cancel
             park ~gen            (sleeps only while gen unchanged)

     waker:  publish the condition (its own atomic op)
             bump gen
             if waiters > 0 then wake

   Sequential consistency of the waiter increment and the gen bump
   gives the usual eventcount guarantee: either the parker sees the
   published condition on its re-check, or the waker sees the waiter
   registration and wakes, or the gen moved and the sleep is a no-op.
   A lost wakeup would need the parker's re-check to miss the
   condition AND the waker to read a zero waiter count AND the gen the
   parker sleeps on to be current — mutually exclusive under SC.

   Implementation: a futex on Linux (one 32-bit generation word in
   malloc'd memory, FUTEX_WAIT/WAKE_PRIVATE via stubs), falling back
   to Mutex/Condition elsewhere. The fallback has no timed wait in the
   stdlib, so a timed park degrades to a bounded spin — only correct
   callers that also re-poll (the free store's OOM loop) use
   timeouts.

   This module never touches {!Schedpoint}: parking is a Native-only
   path, and the Sim backend's backoff collapses to one scheduling
   point exactly as before. *)

type futex

external futex_available : unit -> bool = "caml_wfrc_futex_available"
external futex_make : unit -> futex = "caml_wfrc_futex_make"
external futex_get : futex -> int = "caml_wfrc_futex_get" [@@noalloc]
external futex_bump : futex -> unit = "caml_wfrc_futex_bump" [@@noalloc]
external futex_wait : futex -> int -> int -> unit = "caml_wfrc_futex_wait"
external futex_wake : futex -> unit = "caml_wfrc_futex_wake" [@@noalloc]

let available = futex_available

type impl = Futex | Condvar

type state =
  | Fut of futex
  | Cond of { m : Mutex.t; c : Condition.t; mutable gen : int }

type t = { waiters : int Atomic.t; state : state }

let create () =
  let state =
    if futex_available () then Fut (futex_make ())
    else Cond { m = Mutex.create (); c = Condition.create (); gen = 0 }
  in
  { waiters = Atomic.make 0; state }

let impl t = match t.state with Fut _ -> Futex | Cond _ -> Condvar
let waiters t = Atomic.get t.waiters

let prepare t =
  Atomic.incr t.waiters;
  match t.state with
  | Fut f -> futex_get f
  | Cond c ->
      Mutex.lock c.m;
      let g = c.gen in
      Mutex.unlock c.m;
      g

let cancel t = Atomic.decr t.waiters

(* Bounded-spin stand-in for a timed condvar wait (no
   [Condition.timed_wait] in the stdlib). Callers using timeouts also
   re-poll their condition, so precision only costs latency. *)
let spin_a_while () =
  for _ = 1 to 4096 do
    Domain.cpu_relax ()
  done

let park t ~gen ~timeout_ns =
  (match t.state with
  | Fut f -> futex_wait f gen timeout_ns
  | Cond c ->
      Mutex.lock c.m;
      if timeout_ns < 0 then
        while c.gen = gen do
          Condition.wait c.c c.m
        done
      else if c.gen = gen then begin
        Mutex.unlock c.m;
        spin_a_while ();
        Mutex.lock c.m
      end;
      Mutex.unlock c.m);
  Atomic.decr t.waiters

let wake t =
  (match t.state with
  | Fut f -> futex_bump f
  | Cond c ->
      Mutex.lock c.m;
      c.gen <- c.gen + 1;
      Mutex.unlock c.m);
  if Atomic.get t.waiters > 0 then begin
    (match t.state with
    | Fut f -> futex_wake f
    | Cond c ->
        Mutex.lock c.m;
        Condition.broadcast c.c;
        Mutex.unlock c.m);
    true
  end
  else false
