(** Scheduling hook crossed by every shared-memory primitive.

    Native parallel executions leave the hook as [ignore]; the
    deterministic scheduler installs an effect-performing hook so that
    each atomic primitive becomes one scheduling decision. *)

val hit : unit -> unit
(** [hit ()] invokes the current hook. Called by {!Primitives} before
    each atomic sub-operation. *)

val install : (unit -> unit) -> unit
(** [install f] makes [f] the hook. Only meaningful from a
    single-domain context (the simulator). *)

val reset : unit -> unit
(** [reset ()] restores the default no-op hook. *)

val with_hook : (unit -> unit) -> (unit -> 'a) -> 'a
(** [with_hook f body] runs [body] with [f] installed, restoring the
    previous hook afterwards (also on exceptions). *)

val with_check : (unit -> unit) -> (unit -> 'a) -> 'a
(** [with_check f body] runs [body] with [f] installed as a secondary
    validation hook invoked before the scheduling hook on every
    primitive. The deterministic engine uses this for Sim-mode fault
    checks (asserting the executing fiber is the one it resumed);
    restores the previous check afterwards (also on exceptions). *)

val is_installed : unit -> bool
(** [is_installed ()] is [true] iff a non-default hook is active. *)
