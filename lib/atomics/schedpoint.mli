(** Scheduling hook crossed by every shared-memory primitive.

    Native parallel executions leave the hook as [ignore]; the
    deterministic scheduler installs an effect-performing hook so that
    each atomic primitive becomes one scheduling decision. *)

type kind = Read | Write | Cas | Faa | Swap
(** Access metadata carried by {!hit_at}: plain single-word operations
    ([Read]/[Write]) and the paper's Figure 2 RMW primitives
    ([Cas]/[Faa]/[Swap]). *)

val kind_name : kind -> string
(** Lower-case name of an access kind, for messages and reports. *)

val hit : unit -> unit
(** [hit ()] invokes the current hook. Called by {!Primitives} before
    each atomic sub-operation. *)

val hit_at : addr:int -> kind -> unit
(** [hit_at ~addr kind] is {!hit} plus one call to the installed
    access validator with the access metadata. [addr] is a global
    arena address (see [Shmem.Arena.addr_base]), or [-1] for cells
    outside any arena. The validator runs {e after} the scheduling
    hook: the atomic operation takes effect when the engine resumes
    the fiber, so the validator observes shared state as of the step
    at which the access really happens. With no validator installed
    the only cost over {!hit} is one indirect call to a no-op. *)

val install : (unit -> unit) -> unit
(** [install f] makes [f] the hook. Only meaningful from a
    single-domain context (the simulator). *)

val reset : unit -> unit
(** [reset ()] restores the default no-op hook. *)

val with_hook : (unit -> unit) -> (unit -> 'a) -> 'a
(** [with_hook f body] runs [body] with [f] installed, restoring the
    previous hook afterwards (also on exceptions). The secondary check
    and the access validator are saved and restored too, so a
    validator installed inside one deterministic run cannot leak into
    later runs. *)

val with_check : (unit -> unit) -> (unit -> 'a) -> 'a
(** [with_check f body] runs [body] with [f] installed as a secondary
    validation hook invoked before the scheduling hook on every
    primitive. The deterministic engine uses this for Sim-mode fault
    checks (asserting the executing fiber is the one it resumed);
    restores the previous check afterwards (also on exceptions). *)

val install_validator : (addr:int -> kind -> unit) -> unit
(** Unbracketed validator installation; prefer {!with_validator}.
    {!with_hook} (i.e. every engine run) restores the validator that
    was active when it started, so an installation leaked inside a
    run cannot survive it. *)

val reset_validator : unit -> unit
(** Restore the default no-op validator. *)

val with_validator : (addr:int -> kind -> unit) -> (unit -> 'a) -> 'a
(** [with_validator f body] runs [body] with [f] installed as the
    access validator invoked by {!hit_at} on every instrumented
    primitive, restoring the previous validator afterwards (also on
    exceptions). *)

val is_installed : unit -> bool
(** [is_installed ()] is [true] iff a non-default hook is active. *)

val validator_installed : unit -> bool
(** [validator_installed ()] is [true] iff a non-default access
    validator is active. *)
