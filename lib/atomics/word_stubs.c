/* Unboxed atomic word store for the Native backend.
 *
 * One page-aligned block of uintnat words, operated on with the GCC
 * __atomic builtins at SEQ_CST. The OCaml side sees a custom block
 * holding a *pointer* to the buffer — the custom block itself moves
 * with the GC, the buffer never does, so the word addresses handed to
 * the hardware are stable for the lifetime of the store. The
 * finalizer frees the buffer.
 *
 * Every word holds an OCaml immediate in untagged form (the wrapper
 * passes plain ints through Long_val/Val_long), so values here are
 * machine integers, never heap pointers — the GC never scans the
 * buffer. All entry points except futex-style waiting are [@@noalloc]
 * on the OCaml side: they must not allocate, raise, or enter a
 * blocking section, so bounds checks live in the OCaml wrapper. */

#include <stdlib.h>
#include <string.h>
#include <stdint.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/custom.h>
#include <caml/fail.h>
#include <caml/memory.h>

typedef struct {
  uintnat *base;
  uintnat len; /* in words */
} wfrc_words;

#define Words_val(v) ((wfrc_words *)Data_custom_val(v))

static void wfrc_words_finalize(value v)
{
  wfrc_words *w = Words_val(v);
  if (w->base != NULL) {
    free(w->base);
    w->base = NULL;
  }
}

static struct custom_operations wfrc_words_ops = {
  "wfrc.words",
  wfrc_words_finalize,
  custom_compare_default,
  custom_hash_default,
  custom_serialize_default,
  custom_deserialize_default,
  custom_compare_ext_default,
  custom_fixed_length_default
};

CAMLprim value caml_wfrc_words_make(value vlen)
{
  CAMLparam1(vlen);
  CAMLlocal1(res);
  uintnat len = (uintnat)Long_val(vlen);
  uintnat bytes = len * sizeof(uintnat);
  void *base = NULL;
  if (posix_memalign(&base, 4096, bytes ? bytes : sizeof(uintnat)) != 0)
    caml_raise_out_of_memory();
  memset(base, 0, bytes ? bytes : sizeof(uintnat));
  res = caml_alloc_custom(&wfrc_words_ops, sizeof(wfrc_words), 0, 1);
  Words_val(res)->base = (uintnat *)base;
  Words_val(res)->len = len;
  CAMLreturn(res);
}

CAMLprim value caml_wfrc_words_get(value vw, value vi)
{
  return Val_long(
      (intnat)__atomic_load_n(Words_val(vw)->base + Long_val(vi),
                              __ATOMIC_SEQ_CST));
}

CAMLprim value caml_wfrc_words_set(value vw, value vi, value vx)
{
  __atomic_store_n(Words_val(vw)->base + Long_val(vi),
                   (uintnat)Long_val(vx), __ATOMIC_SEQ_CST);
  return Val_unit;
}

CAMLprim value caml_wfrc_words_cas(value vw, value vi, value vold, value vnew)
{
  uintnat expected = (uintnat)Long_val(vold);
  int ok = __atomic_compare_exchange_n(
      Words_val(vw)->base + Long_val(vi), &expected, (uintnat)Long_val(vnew),
      0, __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST);
  return Val_bool(ok);
}

CAMLprim value caml_wfrc_words_faa(value vw, value vi, value vd)
{
  return Val_long((intnat)__atomic_fetch_add(
      Words_val(vw)->base + Long_val(vi), (uintnat)Long_val(vd),
      __ATOMIC_SEQ_CST));
}

CAMLprim value caml_wfrc_words_swap(value vw, value vi, value vx)
{
  return Val_long((intnat)__atomic_exchange_n(
      Words_val(vw)->base + Long_val(vi), (uintnat)Long_val(vx),
      __ATOMIC_SEQ_CST));
}

/* ---- Fused protocol fragments ------------------------------------
 *
 * Each of these performs a short fixed sequence of atomic operations
 * that the OCaml side would otherwise issue as 2-3 separate stub
 * calls. The per-word operations and their order are EXACTLY those of
 * the unfused sequence (the Sim/boxed arms still execute them
 * individually), so behaviour is identical — only the number of
 * OCaml-to-C crossings changes, which is what dominates the native
 * hot path. */

/* ReleaseRef lines R1-R2 on one mm_ref word: FAA(-2), then claim with
 * CAS(0 -> 1) if the count dropped to zero. Returns 1 if this caller
 * claimed the node. */
CAMLprim value caml_wfrc_words_release_ref(value vw, value vi)
{
  uintnat *p = Words_val(vw)->base + Long_val(vi);
  uintnat expected = 0;
  (void)__atomic_fetch_sub(p, 2, __ATOMIC_SEQ_CST);            /* R1 */
  if (__atomic_load_n(p, __ATOMIC_SEQ_CST) != 0) return Val_false;
  return Val_bool(__atomic_compare_exchange_n(                 /* R2 */
      p, &expected, 1, 0, __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST));
}

/* AllocNode line A4's collect: load the annAlloc word; if non-null,
 * take it with an atomic exchange. Returns the taken word or 0. */
CAMLprim value caml_wfrc_words_take(value vw, value vi)
{
  uintnat *p = Words_val(vw)->base + Long_val(vi);
  if (__atomic_load_n(p, __ATOMIC_SEQ_CST) == 0) return Val_long(0);
  return Val_long((intnat)__atomic_exchange_n(p, 0, __ATOMIC_SEQ_CST));
}

/* The helpCurrent advance of F1-F2 / A16: read the word, try once to
 * CAS it to (value + 1) mod n, return the value read regardless. */
CAMLprim value caml_wfrc_words_bump_mod(value vw, value vi, value vn)
{
  uintnat *p = Words_val(vw)->base + Long_val(vi);
  uintnat cur = __atomic_load_n(p, __ATOMIC_SEQ_CST);
  uintnat expected = cur;
  (void)__atomic_compare_exchange_n(p, &expected,
                                    (cur + 1) % (uintnat)Long_val(vn), 0,
                                    __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST);
  return Val_long((intnat)cur);
}

/* ReleaseRef line R3's per-link collect: load the link word, then
 * store 0. The node is exclusively owned here (R2 claimed it), so the
 * load/store pair needs no atomicity beyond the individual ops. */
CAMLprim value caml_wfrc_words_read_clear(value vw, value vi)
{
  uintnat *p = Words_val(vw)->base + Long_val(vi);
  uintnat v = __atomic_load_n(p, __ATOMIC_SEQ_CST);
  __atomic_store_n(p, 0, __ATOMIC_SEQ_CST);
  return Val_long((intnat)v);
}

/* ReleaseRef lines R1-R3 whole: FAA(-2) and claim as in release_ref;
 * if claimed, read-and-clear the node's [nl] contiguous link words,
 * depositing the non-null ones in order into [vout] (an OCaml int
 * array — immediates need no write barrier). Returns the number
 * deposited, or -1 when the node was not claimed. */
CAMLprim value caml_wfrc_words_release_collect(value vw, value vref,
                                               value vlinks, value vnl,
                                               value vout)
{
  uintnat *base = Words_val(vw)->base;
  uintnat *refp = base + Long_val(vref);
  uintnat expected = 0;
  intnat links = Long_val(vlinks), nl = Long_val(vnl);
  intnat count = 0, i;
  (void)__atomic_fetch_sub(refp, 2, __ATOMIC_SEQ_CST);           /* R1 */
  if (__atomic_load_n(refp, __ATOMIC_SEQ_CST) != 0) return Val_long(-1);
  if (!__atomic_compare_exchange_n(refp, &expected, 1, 0,        /* R2 */
                                   __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST))
    return Val_long(-1);
  for (i = 0; i < nl; i++) {                                     /* R3 */
    uintnat *lp = base + links + i;
    uintnat v = __atomic_load_n(lp, __ATOMIC_SEQ_CST);
    __atomic_store_n(lp, 0, __ATOMIC_SEQ_CST);
    if (v != 0) Field(vout, count++) = Val_long((intnat)v);
  }
  return Val_long(count);
}

/* AllocNode line A4 whole: collect the annAlloc word as in take and,
 * if a node was taken, apply FixRef(node, -1) to its mm_ref in the
 * arena block. geom = [| nodes_base; node_stride |] (the arena's
 * physical node geometry; mm_ref is word 0 of a node block). */
CAMLprim value caml_wfrc_take_fix(value vhw, value vslot, value vaw,
                                  value vgeom)
{
  uintnat *annp = Words_val(vhw)->base + Long_val(vslot);
  wfrc_words *aw = Words_val(vaw);
  uintnat node, ref;
  if (__atomic_load_n(annp, __ATOMIC_SEQ_CST) == 0) return Val_long(0);
  node = __atomic_exchange_n(annp, 0, __ATOMIC_SEQ_CST);
  if (node == 0) return Val_long(0);
  ref = (uintnat)Long_val(Field(vgeom, 0))
        + (((node >> 1) - 1) * (uintnat)Long_val(Field(vgeom, 1)));
  if (ref < aw->len)
    (void)__atomic_fetch_sub(aw->base + ref, 1, __ATOMIC_SEQ_CST);
  return Val_long((intnat)node);
}

/* FreeNode lines F1-F3 whole: advance helpCurrent (read + one CAS to
 * (cur + 1) mod n), then attempt the donation into annAlloc[cur] with
 * the donation-count correction — inflate the node's mm_ref (arena
 * block) by 2, CAS the node into the hot block's annAlloc word,
 * deflate on failure. geom = [| help_word; ann_base; slot_stride;
 * n |] (word offsets into the hot block). Returns 1 iff donated; a
 * corrupt helpCurrent (outside [0, n)) refuses defensively. */
CAMLprim value caml_wfrc_free_donate(value vhw, value vaw, value vref,
                                     value vnode, value vgeom)
{
  uintnat *hbase = Words_val(vhw)->base;
  uintnat *refp = Words_val(vaw)->base + Long_val(vref);
  uintnat *helpp = hbase + Long_val(Field(vgeom, 0));
  uintnat n = (uintnat)Long_val(Field(vgeom, 3));
  uintnat cur = __atomic_load_n(helpp, __ATOMIC_SEQ_CST);        /* F1 */
  uintnat expected = cur;
  uintnat *annp;
  if (cur >= n) return Val_false;
  (void)__atomic_compare_exchange_n(helpp, &expected, (cur + 1) % n, 0,
                                    __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST);
                                                                 /* F2 */
  annp = hbase + Long_val(Field(vgeom, 1))
         + (cur * (uintnat)Long_val(Field(vgeom, 2)));
  expected = 0;
  (void)__atomic_fetch_add(refp, 2, __ATOMIC_SEQ_CST);           /* F3 */
  if (__atomic_compare_exchange_n(annp, &expected, (uintnat)Long_val(vnode),
                                  0, __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST))
    return Val_true;
  (void)__atomic_fetch_sub(refp, 2, __ATOMIC_SEQ_CST);
  return Val_false;
}

/* Batched rc-buffer flush: ReleaseRef lines R1-R2 applied to a whole
 * per-domain decrement buffer in one crossing. vnodes is an OCaml int
 * array whose first [vn] entries are node handles with a pending
 * buffered decrement; geom = [| nodes_base; node_stride |] as in
 * take_fix (mm_ref is word 0 of a node block). For each entry:
 * FAA(-2) on its mm_ref, and if the count is now zero, claim with
 * CAS(0 -> 1). Claimed handles are compacted to the front of vnodes
 * (immediates — no write barrier); the caller finishes R3/FreeNode
 * for those in OCaml. Returns the number claimed. A ref offset
 * outside the buffer skips the entry defensively, as in take_fix. */
CAMLprim value caml_wfrc_rc_flush(value vaw, value vnodes, value vn,
                                  value vgeom)
{
  wfrc_words *aw = Words_val(vaw);
  uintnat nodes_base = (uintnat)Long_val(Field(vgeom, 0));
  uintnat node_stride = (uintnat)Long_val(Field(vgeom, 1));
  intnat n = Long_val(vn);
  intnat claimed = 0, i;
  for (i = 0; i < n; i++) {
    uintnat node = (uintnat)Long_val(Field(vnodes, i));
    uintnat ref = nodes_base + (((node >> 1) - 1) * node_stride);
    uintnat expected = 0;
    if (ref >= aw->len) continue;
    (void)__atomic_fetch_sub(aw->base + ref, 2, __ATOMIC_SEQ_CST); /* R1 */
    if (__atomic_load_n(aw->base + ref, __ATOMIC_SEQ_CST) != 0) continue;
    if (__atomic_compare_exchange_n(aw->base + ref, &expected, 1, 0, /* R2 */
                                    __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST))
      Field(vnodes, claimed++) = Val_long((intnat)node);
  }
  return Val_long(claimed);
}

/* Batched announcement scan (the H2/H3 read pass of CleanUp/HelpDeRef
 * done in one call). geom = [| idx_base; idx_stride; ra_base;
 * row_stride; slot_stride; n |], all in words. For each row id in
 * [from, n): load index[id], then row id's announced word at slot
 * index[id]; return the first id whose announced word equals target,
 * or -1. A corrupt slot index (outside [0, n)) skips the row; a word
 * offset outside the buffer stops the scan — both are defensive, the
 * wrapper always passes a well-formed geometry. */
CAMLprim value caml_wfrc_ann_scan(value vw, value vgeom, value vfrom,
                                  value vtarget)
{
  wfrc_words *w = Words_val(vw);
  intnat idx_base = Long_val(Field(vgeom, 0));
  intnat idx_stride = Long_val(Field(vgeom, 1));
  intnat ra_base = Long_val(Field(vgeom, 2));
  intnat row_stride = Long_val(Field(vgeom, 3));
  intnat slot_stride = Long_val(Field(vgeom, 4));
  intnat n = Long_val(Field(vgeom, 5));
  uintnat target = (uintnat)Long_val(vtarget);
  intnat id;
  for (id = Long_val(vfrom); id < n; id++) {
    uintnat iw = (uintnat)(idx_base + id * idx_stride);
    intnat slot;
    uintnat aw;
    if (iw >= w->len) break;
    slot = (intnat)__atomic_load_n(w->base + iw, __ATOMIC_SEQ_CST);
    if (slot < 0 || slot >= n) continue;
    aw = (uintnat)(ra_base + id * row_stride + slot * slot_stride);
    if (aw >= w->len) break;
    if (__atomic_load_n(w->base + aw, __ATOMIC_SEQ_CST) == target)
      return Val_long(id);
  }
  return Val_long(-1);
}
