(** Pluggable shared-memory backends.

    [Sim] routes every word operation through {!Primitives}, crossing
    one {!Schedpoint} scheduling point per primitive — required by the
    deterministic scheduler, the schedule explorer and the lincheck
    sweeps. [Native] performs the [Atomic] operation directly with
    zero hook dispatch, and pads designated hot cells
    ({!make_contended}) so FAA-heavy words do not false-share under
    real [Domain] parallelism.

    Both backends share the [int Atomic.t] cell representation, so the
    backend is a runtime value stored by the arena and the managers
    and dispatched with a two-way branch on the hot path. *)

type t = Sim | Native

val name : t -> string
(** ["sim"] / ["native"]. *)

val of_string : string -> t
(** Inverse of {!name}; raises [Invalid_argument] otherwise. *)

val pp : Format.formatter -> t -> unit

type rep = Boxed | Unboxed
(** Cell representation. [Boxed]: one [int Atomic.t] per word (the
    only representation [Sim] admits — instrumentation needs it).
    [Unboxed]: an out-of-heap word block driven by {!Words} stubs,
    [Native]-only; the default there. *)

val rep_name : rep -> string
(** ["boxed"] / ["unboxed"]. *)

val rep_of_string : string -> rep
val pp_rep : Format.formatter -> rep -> unit

val default_rep : t -> rep
(** [Boxed] for [Sim], [Unboxed] for [Native]. *)

val cache_line_words : int
(** Padding granularity of {!make_contended} cells, in words (16 =
    128 bytes: one cache line plus its prefetch partner, matching
    OCaml 5.2's [Atomic.make_contended]). *)

(** First-class backend view, for code that abstracts over a backend
    wholesale (benchmarks, equivalence tests). *)
module type PRIMS = sig
  type cell = int Atomic.t

  val name : string
  val make : int -> cell

  val make_contended : int -> cell
  (** A cell padded to its own cache-line pair (Native); plain
      {!make} under [Sim], where there is no cache to contend for. *)

  val read : cell -> int
  val write : cell -> int -> unit
  val cas : cell -> old:int -> nw:int -> bool
  val faa : cell -> int -> int
  val swap : cell -> int -> int
end

module Sim_prims : PRIMS
module Native_prims : PRIMS

val prims : t -> (module PRIMS)

(** {1 Direct dispatch}

    Branch-dispatched word operations used on hot paths. The [Sim] arm
    crosses a scheduling point; the [Native] arm never consults
    {!Schedpoint}. *)

val make : t -> int -> int Atomic.t
val make_contended : t -> int -> int Atomic.t
val read : t -> int Atomic.t -> int
val write : t -> int Atomic.t -> int -> unit
val cas : t -> int Atomic.t -> old:int -> nw:int -> bool
val faa : t -> int Atomic.t -> int -> int
val swap : t -> int Atomic.t -> int -> int
