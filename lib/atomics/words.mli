(** Unboxed atomic word store for the [Native] backend.

    A page-aligned out-of-heap block of machine words accessed through
    C stubs compiling to single [__atomic] SEQ_CST operations. Values
    are OCaml immediates (untagged in the buffer); the block never
    moves, so word addresses are stable for the store's lifetime. The
    buffer is freed by a GC finalizer.

    This is a raw-memory primitive on the same trust tier as
    {!Primitives}: only the [atomics]/[shmem]/[core] layers may touch
    it directly (enforced by [wfrc_lint]); everything else goes
    through {!Shmem.Arena} or {!Hot}. *)

type t

val make : int -> t
(** [make len] allocates [len] zeroed words. Raises on [len < 1] or
    allocation failure. *)

val length : t -> int

val get : t -> int -> int
val set : t -> int -> int -> unit
val cas : t -> int -> old:int -> nw:int -> bool

val faa : t -> int -> int -> int
(** Fetch-and-add, returning the previous value. *)

val swap : t -> int -> int -> int
(** Atomic exchange, returning the previous value. *)

(** {1 Fused protocol fragments}

    Each call performs a short fixed sequence of atomic operations in
    one stub crossing — per-word behaviour identical to issuing the
    ops individually, which is what the Sim/boxed representations do.
    These exist because call overhead, not the atomics, dominates the
    native hot path. *)

val release_ref : t -> int -> bool
(** [release_ref t i]: FAA the word at [i] by [-2], then, if it then
    reads 0, claim it with CAS(0 → 1). True iff claimed (the paper's
    R1–R2 on an [mm_ref] word). *)

val take : t -> int -> int
(** [take t i]: load the word; if non-zero, atomically exchange it
    with 0 and return the taken value, else return 0 (the paper's A4
    collect on an annAlloc word). *)

val bump_mod : t -> int -> int -> int
(** [bump_mod t i n]: load the word, try once to CAS it to
    [(v + 1) mod n], return the loaded value regardless (the paper's
    helpCurrent advance, F1–F2/A16). *)

val read_clear : t -> int -> int
(** [read_clear t i]: load the word, store 0, return the loaded value
    (R3's per-link collect; the caller must own the enclosing node). *)

val release_collect : t -> ref_addr:int -> links:int -> nl:int ->
  out:int array -> int
(** [release_collect t ~ref_addr ~links ~nl ~out]: R1–R3 whole.
    As {!release_ref} on [ref_addr]; if claimed, read-and-clear the
    [nl] contiguous link words at [links], depositing the non-null
    values in order into [out] (length ≥ [nl]) and returning how many;
    [-1] when not claimed. *)

val take_fix : t -> int -> arena:t -> geom:int array -> int
(** [take_fix t slot ~arena ~geom]: A4 whole. As {!take} on [slot];
    if a node was taken, FixRef(node, -1) on its [mm_ref] word in
    [arena]. [geom] is [| nodes_base; node_stride |] — the arena's
    physical node geometry ([mm_ref] at word 0 of a block). *)

val free_donate : t -> arena:t -> ref_addr:int -> node:int ->
  geom:int array -> bool
(** [free_donate t ~arena ~ref_addr ~node ~geom]: F1–F3 whole on hot
    block [t]. Advance [helpCurrent] ({!bump_mod} semantics), then FAA
    the node's [mm_ref] at [ref_addr] (in [arena]) by [+2], CAS [node]
    into [annAlloc[cur]], undoing the FAA on failure — the
    donation-count correction. True iff donated. [geom] is
    [| help_word; ann_base; slot_stride; n |] (word offsets into
    [t]). *)

val rc_flush : t -> nodes:int array -> n:int -> geom:int array -> int
(** [rc_flush t ~nodes ~n ~geom]: batched rc-buffer flush — R1–R2
    applied to each of the first [n] node handles in [nodes] (each one
    buffered decrement): FAA its [mm_ref] by [-2] and, if the count is
    then zero, claim with CAS(0 → 1). Claimed handles are compacted to
    the front of [nodes]; returns how many. The caller finishes R3 and
    FreeNode for the claimed nodes. [geom] is
    [| nodes_base; node_stride |] as in {!take_fix}. *)

val ann_scan : t -> geom:int array -> from:int -> int -> int
(** [ann_scan t ~geom ~from target] is the batched announcement-row
    scan: for each row [id] in [from..n-1] it loads the row's slot
    index then the announced word at that slot, returning the first
    [id] whose announced word equals [target], or [-1]. One stub call
    replaces [2*(n-from)] boxed atomic reads. [geom] is
    [| idx_base; idx_stride; ra_base; row_stride; slot_stride; n |]
    (word offsets/strides into the store). *)
