(** A vector of contention-padded global hot words, dispatched on the
    backend's cell representation.

    [Boxed] slots are padded [int Atomic.t] cells (plain {!Primitives}
    cells under [Sim], preserving one scheduling point per access);
    [Unboxed] slots live in one {!Words} block, one cache-line pair
    per slot. The managers put their cross-thread globals — free-list
    heads, [currentFreeList], [helpCurrent], [annAlloc] — on one of
    these. Same trust tier as {!Primitives}/{!Words}: client layers go
    through the managers, not this module. *)

type t

val create : backend:Backend.t -> rep:Backend.rep -> int -> init:(int -> int) -> t
(** [create ~backend ~rep n ~init] builds [n] slots, slot [i] holding
    [init i]. [Sim] + [Unboxed] is rejected. *)

val length : t -> int
val read : t -> int -> int
val write : t -> int -> int -> unit
val cas : t -> int -> old:int -> nw:int -> bool
val faa : t -> int -> int -> int
val swap : t -> int -> int -> int

(** {1 Fused fragments}

    One stub crossing under [Unboxed]; identical per-word op sequence
    issued individually under [Boxed] (and one scheduling point per op
    under [Sim], as ever). *)

val take : t -> int -> int
(** [take t i]: read slot [i]; if non-zero, exchange it with 0 and
    return the taken value, else 0. *)

val bump_mod : t -> int -> int -> int
(** [bump_mod t i n]: read slot [i], try once to CAS it to
    [(v + 1) mod n], return the value read. *)

val raw : t -> Words.t option
(** The backing {!Words} block ([Unboxed] only) — for fusions spanning
    two stores (see {!Words.donate}). *)

val word_of_slot : int -> int
(** Physical word offset of slot [i] inside {!raw}'s block. *)
