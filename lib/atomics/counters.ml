(* Per-thread event counters.

   Each thread increments only its own row, so increments are plain
   (non-atomic) stores with no cross-thread races on the same index;
   aggregation happens after the threads have joined (or is read as an
   approximate live snapshot). Rows are padded to keep threads on
   separate cache lines. *)

type event =
  | Cas_attempt
  | Cas_failure
  | Faa
  | Swap
  | Read
  | Write
  | Deref
  | Deref_retry
  | Deref_helped
  | Help_scan
  | Help_answered
  | Help_refused
  | Alloc
  | Alloc_retry
  | Alloc_helped
  | Alloc_gave_help
  | Free
  | Free_retry
  | Free_gave_help
  | Release
  | Node_reclaimed
  | Hp_scan
  | Epoch_advance
  | Lock_acquire
  | Cache_refill
  | Cache_spill
  | Free_remote
  | Steal
  | Park_wait
  | Park_wake
  | Recovery_adopt
  | Recovery_release
  | Oom_backpressure
  | Rc_defer
  | Rc_flush

let all_events =
  [ Cas_attempt; Cas_failure; Faa; Swap; Read; Write; Deref; Deref_retry;
    Deref_helped; Help_scan; Help_answered; Help_refused; Alloc;
    Alloc_retry; Alloc_helped; Alloc_gave_help; Free; Free_retry;
    Free_gave_help; Release; Node_reclaimed; Hp_scan; Epoch_advance;
    Lock_acquire; Cache_refill; Cache_spill; Free_remote; Steal;
    Park_wait; Park_wake; Recovery_adopt; Recovery_release;
    Oom_backpressure; Rc_defer; Rc_flush ]

let event_index = function
  | Cas_attempt -> 0
  | Cas_failure -> 1
  | Faa -> 2
  | Swap -> 3
  | Read -> 4
  | Write -> 5
  | Deref -> 6
  | Deref_retry -> 7
  | Deref_helped -> 8
  | Help_scan -> 9
  | Help_answered -> 10
  | Help_refused -> 11
  | Alloc -> 12
  | Alloc_retry -> 13
  | Alloc_helped -> 14
  | Alloc_gave_help -> 15
  | Free -> 16
  | Free_retry -> 17
  | Free_gave_help -> 18
  | Release -> 19
  | Node_reclaimed -> 20
  | Hp_scan -> 21
  | Epoch_advance -> 22
  | Lock_acquire -> 23
  | Cache_refill -> 24
  | Cache_spill -> 25
  | Free_remote -> 26
  | Steal -> 27
  | Park_wait -> 28
  | Park_wake -> 29
  | Recovery_adopt -> 30
  | Recovery_release -> 31
  | Oom_backpressure -> 32
  | Rc_defer -> 33
  | Rc_flush -> 34

let num_events = List.length all_events

let event_name = function
  | Cas_attempt -> "cas_attempt"
  | Cas_failure -> "cas_failure"
  | Faa -> "faa"
  | Swap -> "swap"
  | Read -> "read"
  | Write -> "write"
  | Deref -> "deref"
  | Deref_retry -> "deref_retry"
  | Deref_helped -> "deref_helped"
  | Help_scan -> "help_scan"
  | Help_answered -> "help_answered"
  | Help_refused -> "help_refused"
  | Alloc -> "alloc"
  | Alloc_retry -> "alloc_retry"
  | Alloc_helped -> "alloc_helped"
  | Alloc_gave_help -> "alloc_gave_help"
  | Free -> "free"
  | Free_retry -> "free_retry"
  | Free_gave_help -> "free_gave_help"
  | Release -> "release"
  | Node_reclaimed -> "node_reclaimed"
  | Hp_scan -> "hp_scan"
  | Epoch_advance -> "epoch_advance"
  | Lock_acquire -> "lock_acquire"
  | Cache_refill -> "cache_refill"
  | Cache_spill -> "cache_spill"
  | Free_remote -> "free_remote"
  | Steal -> "steal"
  | Park_wait -> "park_wait"
  | Park_wake -> "park_wake"
  | Recovery_adopt -> "recovery_adopt"
  | Recovery_release -> "recovery_release"
  | Oom_backpressure -> "oom_backpressure"
  | Rc_defer -> "rc_defer"
  | Rc_flush -> "rc_flush"

(* Row stride, per backend: events rounded up to a multiple of 16
   words under [Sim] (the historical padding — keeps rows line-pair
   separated even when a simulated config is later run on Domains),
   and to a multiple of 32 words under [Native], where the adjacent-
   line prefetcher makes 256-byte separation the safe distance for
   rows that real cores hammer in parallel. *)
let round_up n m = (n + m - 1) / m * m

let stride_for = function
  | Backend.Sim -> round_up num_events 16
  | Backend.Native -> round_up num_events 32

type t = { threads : int; stride : int; slots : int array }

let create ?(backend = Backend.Sim) ~threads () =
  if threads <= 0 then invalid_arg "Counters.create: threads must be > 0";
  let stride = stride_for backend in
  { threads; stride; slots = Array.make (threads * stride) 0 }

let check_tid t tid =
  if tid < 0 || tid >= t.threads then invalid_arg "Counters: bad tid"

(* [check_tid] bounds the row and [event_index ev < stride] bounds the
   column, so the flat index needs no further checks — this is the
   hottest non-atomic store in every manager. *)
let add t ~tid ev n =
  check_tid t tid;
  let i = (tid * t.stride) + event_index ev in
  Array.unsafe_set t.slots i (Array.unsafe_get t.slots i + n)

let incr t ~tid ev = add t ~tid ev 1

let get t ~tid ev =
  check_tid t tid;
  t.slots.((tid * t.stride) + event_index ev)

let total t ev =
  let acc = ref 0 in
  for tid = 0 to t.threads - 1 do
    acc := !acc + t.slots.((tid * t.stride) + event_index ev)
  done;
  !acc

let reset t = Array.fill t.slots 0 (Array.length t.slots) 0

let threads t = t.threads

(* Snapshot as an association list of non-zero totals, for reports. *)
let snapshot t =
  List.filter_map
    (fun ev ->
      let n = total t ev in
      if n = 0 then None else Some (ev, n))
    all_events

let pp ppf t =
  let rows = snapshot t in
  if rows = [] then Fmt.string ppf "(no events)"
  else
    Fmt.list ~sep:Fmt.comma
      (fun ppf (ev, n) -> Fmt.pf ppf "%s=%d" (event_name ev) n)
      ppf rows
