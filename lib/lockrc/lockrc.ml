[@@@wfrc.progress "blocking"] (* static progress contract; checked by `wfrc_lint --pass progress` *)

(* The blocking strawman of the paper's §1: reference counting with
   every memory-management operation serialised by one test-and-set
   spinlock. Correct and simple, but a preempted lock holder stalls
   every other thread — the priority-inversion/convoying behaviour
   real-time systems cannot accept, and the reason the paper insists
   on non-blocking schemes.

   The lock is a CAS spinlock on an atomic cell (not an OS mutex) so
   the scheme also runs under the deterministic scheduler, where the
   blocking shows up as unbounded victim step counts in E2.

   Reference-count conventions match [Wfrc]: two units per reference,
   free nodes carry mm_ref = 1. *)

module P = Atomics.Primitives
module B = Atomics.Backend
module C = Atomics.Counters
module Park = Atomics.Park
module Value = Shmem.Value
module Layout = Shmem.Layout
module Arena = Shmem.Arena
module Freestore = Shmem.Freestore

type t = {
  cfg : Mm_intf.config;
  backend : B.t;
  arena : Arena.t;
  ctr : C.t;
  lock : P.cell;
  park : Park.t; (* parking spot for lock waiters (Native only) *)
  free_head : P.cell;
  store : Freestore.t option; (* sharded Native free store (else legacy) *)
  dead : bool array; (* tids declared permanently stopped *)
}

let name = "lockrc"
let refcounted = true
let config t = t.cfg
let arena t = t.arena
let counters t = t.ctr

let create (cfg : Mm_intf.config) =
  let backend = cfg.backend in
  let layout =
    Layout.create ~num_links:cfg.num_links ~num_data:cfg.num_data
  in
  let arena =
    Arena.create ~backend ~rep:cfg.rep ~layout ~capacity:cfg.capacity
      ~num_roots:cfg.num_roots ()
  in
  for h = 1 to cfg.capacity do
    let p = Value.of_handle h in
    Arena.write_mm_next arena p
      (if h < cfg.capacity then Value.of_handle (h + 1) else Value.null);
    Arena.write arena (Arena.mm_ref_addr arena p) 1
  done;
  let ctr = C.create ~backend ~threads:cfg.threads () in
  let store =
    if Mm_intf.sharded cfg then
      Some
        (Freestore.create ~backend ~rep:cfg.rep ~arena ~counters:ctr
           ~shards:cfg.shards ~batch:cfg.batch ~threads:cfg.threads ())
    else None
  in
  {
    cfg;
    backend;
    arena;
    ctr;
    (* every thread spins on the lock word; keep it and the free head
       on separate padded lines so the spin does not slow the holder *)
    lock = B.make_contended backend 0;
    park = Park.create ();
    free_head =
      B.make_contended backend
        (if store = None then Value.of_handle 1 else Value.null);
    store;
    dead = Array.make cfg.threads false;
  }

let declare_dead t ~tid =
  if tid < 0 || tid >= t.cfg.threads then invalid_arg "Lockrc.declare_dead";
  t.dead.(tid) <- true

let dead t =
  let acc = ref [] in
  for id = t.cfg.threads - 1 downto 0 do
    if t.dead.(id) then acc := id :: !acc
  done;
  !acc

(* Release the lock and deliver a wake to any parked waiter. Under
   [Sim] nobody ever parks (the backoff arm is a scheduling point), so
   the wake is a few process-local atomic ops and no counter moves. *)
let unlock t ~tid =
  B.write t.backend t.lock 0;
  if Park.wake t.park then C.incr t.ctr ~tid Park_wake

let with_lock t ~tid f =
  (* Spin-then-park: once the exponential backoff saturates, the
     waiter parks on the scheme's one parking spot; every [unlock]
     wakes, which keeps the sleep sound (see Backoff.once_waiting). *)
  let b =
    Atomics.Backoff.create ~backend:t.backend ~park:t.park
      ~on_park:(fun () -> C.incr t.ctr ~tid Park_wait)
      ()
  in
  let rec acquire () =
    if not (B.cas t.backend t.lock ~old:0 ~nw:1) then begin
      Atomics.Backoff.once_waiting b ~ready:(fun () ->
          B.read t.backend t.lock = 0);
      acquire ()
    end
  in
  acquire ();
  C.incr t.ctr ~tid Lock_acquire;
  match f () with
  | v ->
      unlock t ~tid;
      v
  | exception e ->
      unlock t ~tid;
      raise e

let enter_op _t ~tid:_ = ()
let exit_op _t ~tid:_ = ()

(* All bodies below run under the lock, so plain sequential reasoning
   applies; the arena operations are atomic anyway. *)

let reclaim t ~tid node0 =
  let nl = Layout.num_links (Arena.layout t.arena) in
  let rec drop node =
    Arena.faa_mm_ref t.arena node (-2);
    if Arena.read_mm_ref t.arena node = 0 then begin
      Arena.write t.arena (Arena.mm_ref_addr t.arena node) 1;
      let held = ref [] in
      for i = 0 to nl - 1 do
        let v = Arena.read_link t.arena node i in
        Arena.write_link t.arena node i 0;
        if not (Value.is_null v) then held := Value.unmark v :: !held
      done;
      C.incr t.ctr ~tid Node_reclaimed;
      Mm_intf.Events.emit ~tid node Mm_intf.Events.Free;
      C.incr t.ctr ~tid Free;
      (match t.store with
      | Some fs -> Freestore.free fs ~tid node
      | None ->
          Arena.write_mm_next t.arena node (B.read t.backend t.free_head);
          B.write t.backend t.free_head node);
      List.iter drop !held
    end
  in
  drop node0

let release t ~tid p =
  if not (Value.is_null p) then begin
    C.incr t.ctr ~tid Release;
    with_lock t ~tid (fun () -> reclaim t ~tid (Value.unmark p))
  end

let alloc t ~tid =
  C.incr t.ctr ~tid Alloc;
  with_lock t ~tid (fun () ->
      match t.store with
      | Some fs -> begin
          (* Every store operation runs under the one lock, so one
             full pass is conclusive: nobody can free concurrently.
             One more pass is owed after adopting declared-dead peers'
             caches; failing that, typed backpressure. *)
          let claim () =
            match Freestore.alloc fs ~tid with
            | Some node ->
                Arena.write t.arena (Arena.mm_ref_addr t.arena node) 2;
                Mm_intf.Events.emit ~tid node Mm_intf.Events.Alloc;
                Some node
            | None -> None
          in
          match claim () with
          | Some node -> node
          | None ->
              if Freestore.adopt fs ~tid ~dead:(dead t) > 0 then
                match claim () with
                | Some node -> node
                | None ->
                    C.incr t.ctr ~tid Oom_backpressure;
                    raise (Mm_intf.Out_of_nodes { retries = 2; waits = 0 })
              else begin
                C.incr t.ctr ~tid Oom_backpressure;
                raise (Mm_intf.Out_of_nodes { retries = 1; waits = 0 })
              end
        end
      | None ->
          let node = B.read t.backend t.free_head in
          if Value.is_null node then raise Mm_intf.Out_of_memory;
          B.write t.backend t.free_head (Arena.read_mm_next t.arena node);
          Arena.write t.arena (Arena.mm_ref_addr t.arena node) 2;
          Mm_intf.Events.emit ~tid node Mm_intf.Events.Alloc;
          node)

let deref t ~tid link =
  C.incr t.ctr ~tid Deref;
  with_lock t ~tid (fun () ->
      let w = Arena.read t.arena link in
      if not (Value.is_null w) then Arena.faa_mm_ref t.arena w 2;
      w)

let copy_ref t ~tid p =
  if not (Value.is_null p) then
    with_lock t ~tid (fun () -> Arena.faa_mm_ref t.arena p 2);
  p

let cas_link t ~tid link ~old ~nw =
  C.incr t.ctr ~tid Cas_attempt;
  with_lock t ~tid (fun () ->
      if Arena.read t.arena link = old then begin
        if not (Value.is_null nw) then Arena.faa_mm_ref t.arena nw 2;
        Arena.write t.arena link nw;
        if not (Value.is_null old) then reclaim t ~tid (Value.unmark old);
        true
      end
      else begin
        C.incr t.ctr ~tid Cas_failure;
        false
      end)

(* No-race contexts only (§3.2): re-point the link, moving its share. *)
let store_link t ~tid link p =
  with_lock t ~tid (fun () ->
      let old = Arena.read t.arena link in
      if not (Value.is_null p) then Arena.faa_mm_ref t.arena p 2;
      Arena.write t.arena link p;
      if not (Value.is_null old) then reclaim t ~tid (Value.unmark old))
let terminate _t ~tid:_ _p = ()

(* Quiescent inspection (same shape as the other RC schemes). *)
let free_set t =
  let cap = t.cfg.capacity in
  let seen = Array.make (cap + 1) false in
  let record p =
    let h = Value.handle p in
    if seen.(h) then failwith "Lockrc: node reachable twice";
    seen.(h) <- true;
    let r = Arena.read_mm_ref t.arena p in
    if r <> 1 then
      failwith (Printf.sprintf "Lockrc: free node #%d has mm_ref=%d" h r)
  in
  (match t.store with
  | Some fs -> Freestore.iter_free fs ~violation:failwith ~f:record
  | None ->
      let rec walk p steps =
        if steps > cap then failwith "Lockrc: cycle in free-list"
        else if not (Value.is_null p) then begin
          record p;
          walk (Arena.read_mm_next t.arena p) (steps + 1)
        end
      in
      walk (B.read t.backend t.free_head) 0);
  seen

let free_count t =
  let seen = free_set t in
  let c = ref 0 in
  Array.iter (fun b -> if b then incr c) seen;
  !c

(* Tolerant snapshot for the auditor. A crashed thread may have died
   holding the lock; that is a liveness disaster for survivors but not
   custody of any node, so it surfaces as a violation string only. *)
let custody t =
  let cap = t.cfg.capacity in
  let free = Array.make (cap + 1) false in
  let violations = ref [] in
  if B.read t.backend t.lock <> 0 then
    violations := "lock held at quiescence" :: !violations;
  (match t.store with
  | Some fs ->
      (* Stripe chains, return buffers and caches are all [free]
         custody for the auditor's partition. *)
      Freestore.iter_free fs
        ~violation:(fun s -> violations := s :: !violations)
        ~f:(fun p ->
          let h = Value.handle p in
          if free.(h) then
            violations :=
              Printf.sprintf "node #%d on the free-list twice" h :: !violations
          else free.(h) <- true)
  | None ->
      let rec walk p steps =
        if steps > cap then violations := "cycle in free-list" :: !violations
        else if not (Value.is_null p) then begin
          let h = Value.handle p in
          if free.(h) then
            violations :=
              Printf.sprintf "node #%d on the free-list twice" h :: !violations
          else begin
            free.(h) <- true;
            walk (Arena.read_mm_next t.arena p) (steps + 1)
          end
        end
      in
      walk (B.read t.backend t.free_head) 0);
  Mm_intf.
    {
      free;
      pending = [];
      pinned = [];
      deferred = [];
      violations = List.rev !violations;
    }

(* Crash recovery. Finish the free a crashed holder never completed:
   clear the links (dropping their targets' shares through [reclaim]),
   restore the free-node claim and push the node back to the pool. *)
let revive t ~tid node =
  with_lock t ~tid (fun () ->
      let nl = Layout.num_links (Arena.layout t.arena) in
      for i = 0 to nl - 1 do
        let v = Arena.read_link t.arena node i in
        Arena.write_link t.arena node i 0;
        if not (Value.is_null v) then reclaim t ~tid (Value.unmark v)
      done;
      Arena.write t.arena (Arena.mm_ref_addr t.arena node) 1;
      C.incr t.ctr ~tid Node_reclaimed;
      Mm_intf.Events.emit ~tid node Mm_intf.Events.Free;
      C.incr t.ctr ~tid Free;
      match t.store with
      | Some fs -> Freestore.free fs ~tid node
      | None ->
          Arena.write_mm_next t.arena node (B.read t.backend t.free_head);
          B.write t.backend t.free_head node)

let recover t ~tid =
  if not (Array.exists Fun.id t.dead) then Mm_intf.no_recovery
  else begin
    let cleared = ref 0 in
    (* At quiescence, with the survivors drained, a non-zero lock word
       can only be a dead holder's. Break it and wake any parked
       waiter — this is the step that turns the scheme's liveness
       disaster back into mere lost work. *)
    if B.read t.backend t.lock <> 0 then begin
      B.write t.backend t.lock 0;
      if Park.wake t.park then C.incr t.ctr ~tid Park_wake;
      incr cleared
    end;
    let revived, drops =
      Mm_intf.Rc_anomaly.run ~arena:t.arena
        ~custody:(fun () -> custody t)
        ~release:(fun p ->
          C.incr t.ctr ~tid Recovery_release;
          release t ~tid p)
        ~revive:(fun p ->
          C.incr t.ctr ~tid Recovery_adopt;
          revive t ~tid p)
    in
    let cached =
      match t.store with
      | Some fs -> Freestore.adopt fs ~tid ~dead:(dead t)
      | None -> 0
    in
    { Mm_intf.adopted = revived + cached; released = drops; cleared = !cleared }
  end

let validate t =
  if B.read t.backend t.lock <> 0 then
    failwith "Lockrc: lock held at quiescence";
  let seen = free_set t in
  Arena.iter_nodes t.arena (fun p ->
      if not seen.(Value.handle p) then begin
        let r = Arena.read_mm_ref t.arena p in
        if r < 0 || r land 1 = 1 then
          failwith
            (Printf.sprintf "Lockrc: allocated node #%d has bad mm_ref=%d"
               (Value.handle p) r)
      end)

(* Sentinels need no special handling under reference counting: the
   creator simply keeps the allocation reference forever. *)
let make_immortal _t ~tid:_ _p = ()
