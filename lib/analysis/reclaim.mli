(** The reclamation-safety oracle: an online use-after-free /
    double-free / stale-reference detector for Sim-backend runs.

    It consumes two streams:
    - every instrumented arena access, via the
      {!Atomics.Schedpoint.hit_at} validator hook (installed by
      {!with_oracle});
    - every node lifecycle transition, via {!Mm_intf.Events} (all five
      managers emit [Alloc]/[Free]/[Retire]).

    Rules (paper Lemma 5 / §4): an access to a FREE node outside the
    [mm_ref]/[mm_next] header words is a use-after-free; an access to
    a LIVE node must happen-after (per {!Hb}) the free that ended the
    node's previous life; freeing a FREE node is a double-free;
    allocating a non-free node, or allocating without happening-after
    the last free, is allocator corruption; retiring a non-LIVE node
    is a protocol violation. RETIRED nodes (HP/EBR limbo) stay
    accessible by design.

    Violations raise {!Violation} at the offending scheduling step, so
    [Sched.Explore] captures a deterministic choice trace replayable
    with [Explore.replay]. *)

type state = Free | Live | Retired

val state_name : state -> string

exception Violation of string

type t

val create :
  ?counters:Atomics.Counters.t ->
  arena:Shmem.Arena.t ->
  threads:int ->
  unit ->
  t
(** Fresh detector for [arena]. All nodes start FREE. [counters], when
    given, receives one [Read]/[Write]/[Cas_attempt]/[Faa]/[Swap]
    increment per instrumented arena access (per accessing tid). *)

val on_access : t -> tid:int -> addr:int -> Atomics.Schedpoint.kind -> unit
(** Feed one instrumented access ([addr] is global). Out-of-engine
    tids ([-1]) still get the FREE-node check but order nothing. *)

val on_event : t -> tid:int -> Shmem.Value.ptr -> Mm_intf.Events.lifecycle -> unit
(** Feed one lifecycle event. *)

val leaked : t -> int list
(** Handles still LIVE — unreleased references if the program was
    balanced. *)

val check_all_free : ?reserved:int -> t -> unit
(** Raise {!Violation} if more than [reserved] nodes are still LIVE. *)

val violations : t -> string list
(** All violations recorded by this detector, oldest first (each was
    also raised at its occurrence). *)

val accesses : t -> int
(** Number of instrumented accesses that landed in this detector's
    arena window. *)

val with_oracle : (unit -> 'a) -> 'a
(** Install the oracle's validator and event listener around [body]
    (typically one whole [Sched.Explore] call over an {!instrument}ed
    factory), restoring both hooks afterwards — a detector can never
    leak into later tests, even when a schedule dies mid-run. *)

val instrument :
  ?counters:Atomics.Counters.t ->
  ?expect_all_free:bool ->
  ?reserved:int ->
  threads:int ->
  (unit -> Shmem.Arena.t * (unit -> (int -> unit) * (unit -> unit))) ->
  unit ->
  (int -> unit) * (unit -> unit)
(** [instrument ~threads mk] adapts a two-stage exploration factory:
    [mk ()] builds the manager and returns its arena plus an [init]
    continuation performing the program's setup. A fresh detector is
    created in between, so setup-time allocations are observed (the
    program's initial nodes must be LIVE in the oracle). With
    [expect_all_free], the post-run check additionally fails if more
    than [reserved] nodes are still LIVE (a dropped release). Use
    inside {!with_oracle}. *)
