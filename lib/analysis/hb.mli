(** FastTrack-style vector-clock happens-before over the simulated
    shared memory.

    Each thread carries a clock; each location carries the clock of
    its last release. The simulated machine is sequentially
    consistent, so every primitive is modelled as the strongest
    barrier it could be: reads acquire, writes release, RMWs do both.
    The over-approximation only adds edges SC executions really have,
    so checks built on it produce no false positives.

    Arena words are keyed by their global address
    ([Shmem.Arena.addr_base]); all non-arena cells (free-list heads,
    announcement slots, epoch words — address [-1] at the hook) share
    one coarse channel, which is again only edge-adding. *)

type clock = int array

type t

val create : threads:int -> t

val on_access : t -> tid:int -> addr:int -> Atomics.Schedpoint.kind -> unit
(** Advance the relation by one instrumented access. A [tid] outside
    [0, threads) (code running outside the engine) orders nothing. *)

val snapshot : t -> tid:int -> clock
(** Copy of [tid]'s current clock (all-zero for out-of-engine tids). *)

val dominated : clock -> clock -> bool
(** [dominated a b]: pointwise [a <= b] — the event that recorded [a]
    happens-before (or equals) the point holding [b]. *)

val hb_after : t -> tid:int -> clock -> bool
(** [hb_after t ~tid past]: is [tid]'s current point ordered after the
    recorded clock [past]? [false] for out-of-engine tids. *)

val pp_clock : Format.formatter -> clock -> unit
