(* The reclamation-safety oracle.

   The paper's central safety property (Lemma 5, §4): a reclaimed node
   may only ever be touched through its indefinitely-present header
   words — every other access to a FREE node is a use-after-free. The
   oracle tracks each node's lifecycle from the managers'
   [Mm_intf.Events] stream and checks every instrumented arena access
   (delivered by [Atomics.Schedpoint.hit_at] through the Sim backend)
   against it:

     R1  an access to a FREE node outside the header words
         (mm_ref/mm_next, the allocator's custody channel) is a
         use-after-free;
     R2  an access to a LIVE node must be ordered, in the
         happens-before relation of {!Hb}, after the free that ended
         the node's previous life — otherwise a stale reference from
         before the reclamation survived into the node's next life
         (the ABA shape state checking alone cannot see);
     R3  lifecycle sanity: freeing a FREE node is a double-free,
         allocating a non-free node is corruption, retiring anything
         but a LIVE node is a protocol violation; an allocation must
         itself be ordered after the last free (R2 applied to the
         allocator).

   Violations raise {!Violation} at the exact scheduling step of the
   offending access, inside the engine, so [Sched.Explore] records the
   failing choice trace and the counterexample replays with
   [Explore.replay]. RETIRED nodes (HP/EBR custody between [terminate]
   and the actual free) stay accessible: protected readers may still
   hold them — that is the point of deferred reclamation. *)

module Value = Shmem.Value
module Layout = Shmem.Layout
module Arena = Shmem.Arena
module C = Atomics.Counters

type state = Free | Live | Retired

let state_name = function
  | Free -> "FREE"
  | Live -> "LIVE"
  | Retired -> "RETIRED"

exception Violation of string

let () =
  Printexc.register_printer (function
    | Violation msg -> Some (Printf.sprintf "Reclaim.Violation(%s)" msg)
    | _ -> None)

type t = {
  arena : Arena.t;
  base : int; (* global address window of [arena] *)
  ncells : int;
  threads : int;
  hb : Hb.t;
  states : state array; (* indexed by handle, slot 0 unused *)
  free_clock : Hb.clock option array; (* clock at the last Free event *)
  freed_by : int array; (* tid of the last Free event *)
  counters : C.t option; (* optional per-kind access tally *)
  mutable accesses : int; (* instrumented arena accesses seen *)
  mutable violations : string list; (* newest first; raised too *)
}

let create ?counters ~arena ~threads () =
  let cap = Arena.capacity arena in
  {
    arena;
    base = Arena.addr_base arena;
    ncells = Arena.num_cells arena;
    threads;
    hb = Hb.create ~threads;
    states = Array.make (cap + 1) Free;
    free_clock = Array.make (cap + 1) None;
    freed_by = Array.make (cap + 1) (-1);
    counters;
    accesses = 0;
    violations = [];
  }

let violations t = List.rev t.violations
let accesses t = t.accesses

let violate t msg =
  t.violations <- msg :: t.violations;
  raise (Violation msg)

let tally t ~tid (kind : Atomics.Schedpoint.kind) =
  match t.counters with
  | Some c when tid >= 0 && tid < t.threads ->
      C.incr c ~tid
        (match kind with
        | Read -> C.Read
        | Write -> C.Write
        | Cas -> C.Cas_attempt
        | Faa -> C.Faa
        | Swap -> C.Swap)
  | _ -> ()

(* One instrumented access, from the validator hook. Runs after the
   scheduling decision, i.e. at the step where the primitive takes
   effect, so every free interleaved before this point has been
   recorded. *)
let on_access t ~tid ~addr kind =
  Hb.on_access t.hb ~tid ~addr kind;
  if addr >= t.base && addr < t.base + t.ncells then begin
    t.accesses <- t.accesses + 1;
    tally t ~tid kind;
    match Arena.owner_of t.arena (addr - t.base) with
    | `Root _ -> ()
    | `Node (h, off) ->
        if off >= Layout.header_size then begin
          match t.states.(h) with
          | Retired -> ()
          | Free ->
              violate t
                (Printf.sprintf
                   "use-after-free: %s of node #%d offset %d by tid %d, \
                    freed by tid %d"
                   (Atomics.Schedpoint.kind_name kind)
                   h off tid t.freed_by.(h))
          | Live -> (
              match t.free_clock.(h) with
              | Some fc when tid >= 0 && not (Hb.hb_after t.hb ~tid fc) ->
                  violate t
                    (Printf.sprintf
                       "unordered access: %s of node #%d offset %d by tid %d \
                        is not happens-after the free by tid %d that ended \
                        the node's previous life (stale reference across \
                        reclamation)"
                       (Atomics.Schedpoint.kind_name kind)
                       h off tid t.freed_by.(h))
              | _ -> ())
        end
  end

(* One lifecycle event, from the [Mm_intf.Events] listener. *)
let on_event t ~tid node (lc : Mm_intf.Events.lifecycle) =
  let h = Value.handle node in
  if h >= 1 && h < Array.length t.states then
    match lc with
    | Free ->
        if t.states.(h) = Free then
          violate t
            (Printf.sprintf "double-free: node #%d freed by tid %d, already \
                             freed by tid %d"
               h tid t.freed_by.(h));
        t.states.(h) <- Free;
        t.freed_by.(h) <- tid;
        t.free_clock.(h) <- Some (Hb.snapshot t.hb ~tid)
    | Alloc ->
        (if t.states.(h) <> Free then
           violate t
             (Printf.sprintf
                "corrupt allocation: node #%d allocated by tid %d while %s"
                h tid (state_name t.states.(h))));
        (match t.free_clock.(h) with
        | Some fc when tid >= 0 && tid < t.threads
                       && not (Hb.hb_after t.hb ~tid fc) ->
            violate t
              (Printf.sprintf
                 "unordered allocation: node #%d allocated by tid %d without \
                  happening-after the free by tid %d"
                 h tid t.freed_by.(h))
        | _ -> ());
        t.states.(h) <- Live
    | Retire ->
        if t.states.(h) <> Live then
          violate t
            (Printf.sprintf "bad retire: node #%d retired by tid %d while %s"
               h tid (state_name t.states.(h)));
        t.states.(h) <- Retired

(* Quiescent leak check: nodes still LIVE at the end of a balanced
   program mark an unreleased reference (a dropped release_ref).
   RETIRED nodes are not leaks here — the client did its part; the
   manager is merely deferring — and [reserved] accounts for immortal
   sentinels the program keeps alive by design. *)
let leaked t =
  let out = ref [] in
  for h = Array.length t.states - 1 downto 1 do
    if t.states.(h) = Live then out := h :: !out
  done;
  !out

let check_all_free ?(reserved = 0) t =
  let l = leaked t in
  if List.length l > reserved then
    violate t
      (Printf.sprintf "leak: %d node(s) still LIVE at quiescence (%s)%s"
         (List.length l)
         (String.concat "," (List.map (Printf.sprintf "#%d") l))
         (if reserved > 0 then Printf.sprintf " with %d reserved" reserved
          else ""))

(* ---------------- Global installation ----------------------------- *)

(* The oracle dispatches through one mutable slot so that a bracketing
   [with_oracle] installs the (validator, listener) pair exactly once
   around a whole exploration, while [instrument] swaps in a fresh
   detector for every schedule the explorer runs. Nothing global
   outlives the bracket: [Schedpoint.with_validator] and
   [Events.with_listener] restore on the way out even when a schedule
   dies mid-run with a pending violation. *)

let current : t option ref = ref None

let dispatch_access ~addr kind =
  match !current with
  | Some det -> on_access det ~tid:(Sched.Engine.current_tid ()) ~addr kind
  | None -> ()

let dispatch_event ~tid node lc =
  match !current with Some det -> on_event det ~tid node lc | None -> ()

let with_oracle body =
  Atomics.Schedpoint.with_validator dispatch_access @@ fun () ->
  Mm_intf.Events.with_listener dispatch_event @@ fun () ->
  Fun.protect ~finally:(fun () -> current := None) body

(* Wrap an exploration factory. The inner factory is two-stage:
   [mk ()] builds the manager/arena and returns it together with an
   [init] continuation that performs the program's setup (initial
   allocations, root links) and yields the body/check pair. The
   wrapper slots a fresh detector in between, so setup-time
   allocations are already observed — a program's initial nodes must
   be LIVE in the oracle, or their first use would be a false
   use-after-free. Must run inside {!with_oracle}; outside it the
   hooks are not installed and the oracle sees nothing. *)
let instrument ?counters ?(expect_all_free = false) ?(reserved = 0) ~threads
    mk () =
  let arena, init = mk () in
  let det = create ?counters ~arena ~threads () in
  current := Some det;
  let body, check = init () in
  ( body,
    fun () ->
      check ();
      if expect_all_free then check_all_free ~reserved det )
