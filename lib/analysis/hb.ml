(* Vector-clock happens-before over the simulated shared memory, in
   the style of FastTrack's full-clock representation.

   Every thread [t] carries a clock C_t; every memory location carries
   a "last release" clock L. The simulated machine is sequentially
   consistent (each primitive is one atomic step of the deterministic
   scheduler), so we model every primitive as the strongest barrier it
   could be under SC:

     Read          acquire            C_t := C_t ⊔ L
     Write         release            L := L ⊔ C_t, then C_t[t]++
     Cas/Faa/Swap  acquire + release  both of the above

   Reads must acquire: the pointer-publication chains the managers
   rely on (free → push → pop → publish in a link → deref) close
   through plain reads of links and free-list heads, and the oracle's
   "ordered after the reclaiming free" rule (Analysis.Reclaim) is
   only sound with those edges present. The over-approximation (a
   failed CAS also releases, any read acquires) can only add HB edges
   that SC executions indeed have, so it produces no false positives;
   it can hide genuinely racy orderings behind incidental edges, which
   is the usual price of a dynamic HB tool.

   Locations are keyed by global arena address ([Shmem.Arena]'s
   process-wide address space). All cells outside any arena — scheme
   globals like free-list heads, announcement slots, epoch words —
   share one coarse channel: they are exactly the rendezvous points
   through which the managers synchronise, so merging them only adds
   edges (conservative, same argument as above). *)

type clock = int array

type t = {
  threads : int;
  clocks : clock array; (* C_t, indexed by engine tid *)
  locs : (int, clock) Hashtbl.t; (* L, keyed by global arena address *)
  coarse : clock; (* shared L for every non-arena cell *)
}

let create ~threads =
  if threads < 1 then invalid_arg "Hb.create: threads";
  {
    threads;
    clocks = Array.init threads (fun _ -> Array.make threads 0);
    locs = Hashtbl.create 256;
    coarse = Array.make threads 0;
  }

let join dst src =
  for i = 0 to Array.length dst - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let loc_clock t addr =
  if addr < 0 then t.coarse
  else
    match Hashtbl.find_opt t.locs addr with
    | Some l -> l
    | None ->
        let l = Array.make t.threads 0 in
        Hashtbl.add t.locs addr l;
        l

(* One instrumented access. [tid] outside [0, threads) — accesses from
   setup/teardown code running outside the engine — order nothing. *)
let on_access t ~tid ~addr (kind : Atomics.Schedpoint.kind) =
  if tid >= 0 && tid < t.threads then begin
    let c = t.clocks.(tid) in
    let l = loc_clock t addr in
    match kind with
    | Read -> join c l
    | Write ->
        join l c;
        c.(tid) <- c.(tid) + 1
    | Cas | Faa | Swap ->
        join c l;
        join l c;
        c.(tid) <- c.(tid) + 1
  end

let snapshot t ~tid =
  if tid >= 0 && tid < t.threads then Array.copy t.clocks.(tid)
  else Array.make t.threads 0

(* [dominated a b]: every component of [a] is ≤ the one in [b], i.e.
   the event that recorded [a] happens-before (or equals) the point
   that holds [b]. *)
let dominated a b =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

(* [hb_after t ~tid past]: is [tid]'s current point ordered after the
   recorded clock [past]? Conservatively false for out-of-engine tids
   (callers skip the check there). *)
let hb_after t ~tid past =
  tid >= 0 && tid < t.threads && dominated past t.clocks.(tid)

let pp_clock ppf c =
  Fmt.pf ppf "[%s]"
    (String.concat ","
       (Array.to_list (Array.map string_of_int c)))
