(** Timer wheel over {!Structures.Pqueue}: (deadline, payload) pairs
    popped in deadline order. Inherits the skiplist's scheme
    restriction — reference-counting managers only ({!create} rejects
    hp/ebr, as {!Structures.Pqueue.create} does).

    Time is whatever monotonic int the caller uses: wall-clock
    nanoseconds on the native backend, a virtual tick counter under
    Sim. *)

type t

val deadline : now_ns:int -> timeout_ns:int -> int
(** Saturating [now_ns + timeout_ns], clamped into the key range the
    priority queue accepts ((min_int, max_int - 1]). Overflow past
    max_int degrades to "effectively never" instead of the
    [Invalid_argument] that a raw sum fed to
    {!Structures.Pqueue.insert} would raise. *)

val create : Mm_intf.instance -> anchor_root:int -> seed:int -> tid:int -> t
(** Builds the wheel and anchors its head sentinel in arena root cell
    [anchor_root], so root-based audits classify wheel nodes as
    reachable. *)

val schedule : t -> tid:int -> deadline:int -> int -> unit
(** [schedule t ~tid ~deadline payload] arms a timer. Compute
    [deadline] with {!deadline} — raw keys outside the valid range
    raise. *)

val due : t -> tid:int -> now:int -> (int * int) option
(** Pop one (deadline, payload) pair with deadline <= [now], if any.
    (The skiplist has no peek: a non-ripe minimum is popped and
    reinserted.) Call in a loop until [None] to fire everything due. *)

val drain : t -> tid:int -> (int * int) list
(** Pop everything, ripe or not. Quiescent teardown helper. *)
