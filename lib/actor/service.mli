(** Actor/mailbox runtime over the WFRC structures: each actor owns a
    {!Structures.Queue} as its MPSC mailbox, the registry is an
    {!Structures.Hmap} keyed by actor id, and a {!Timer} wheel (RC
    schemes only) drives timeouts — all drawing nodes from one
    {!Mm_intf} manager, so spawn/send/receive/retire exercise the
    memory scheme as the service's real allocator.

    Ids encode slot + generation (id = slot + max_actors * gen): a
    recycled slot never resurrects a dead id. [send] to a dead id is a
    counted drop, never a use-after-free — the slot-state/inflight
    guard protocol (see service.ml) makes mailbox destruction safe
    against concurrent senders, and parks a slot as a {e zombie} when
    the guard window never clears (e.g. a sender crashed inside it);
    zombie mailboxes are adopted by {!teardown}.

    Thread discipline: [spawn]/[retire]/[receive] may run from any
    thread; each free slot belongs to exactly one thread's list (a
    retired slot migrates to the retiring thread). [create],
    [teardown], [probe], [live] and [totals] are quiescent. *)

type t

type totals = {
  spawned : int;
  spawn_fail : int;     (** out of slots, or allocator exhausted *)
  sent : int;
  send_drop : int;      (** dead/unknown destination, or allocator exhausted *)
  received : int;
  recv_empty : int;
  retired : int;
  zombied : int;        (** slots parked closing; adopted at teardown *)
  discarded : int;      (** undelivered messages destroyed with mailboxes *)
}

val mm_config :
  ?backend:Atomics.Backend.t ->
  ?rep:Atomics.Backend.rep ->
  ?shards:int ->
  ?batch:int ->
  ?defer:int ->
  ?levels:int ->
  threads:int ->
  capacity:int ->
  max_actors:int ->
  buckets:int ->
  unit ->
  Mm_intf.config
(** Manager layout for a service of [max_actors] slots and [buckets]
    registry buckets: [2*max_actors + buckets + 1] root cells (mailbox
    head/tail pairs, registry anchors, wheel anchor), 3 data words,
    [levels] links (the timer skiplist's maximum level; default 4).
    [capacity] must additionally cover 2 sentinels per bucket, 2 for
    the wheel, 1 sentinel + 1 registry node per live actor, plus
    in-flight messages and armed timers. *)

val create :
  Mm_intf.instance -> max_actors:int -> buckets:int -> seed:int -> tid:int -> t
(** Builds the registry (anchoring every bucket sentinel in a root
    cell) and, on reference-counting schemes, the timer wheel; hp/ebr
    get [wheel t = None] — the paper's §1 applicability gap surfacing
    at the service level. Raises [Invalid_argument] if the manager's
    layout lacks the root cells {!mm_config} provisions. *)

val spawn : ?deadline:int -> t -> tid:int -> int option
(** Claim a slot from this thread's free list, build the mailbox and
    register a fresh id. [?deadline] (from {!Timer.deadline}) arms a
    retire-at timer when the scheme has a wheel; it is silently
    ignored otherwise. [None] when out of slots or nodes. *)

val send : t -> tid:int -> dst:int -> int -> bool
(** Registry lookup, then guarded enqueue. [false] — counted in
    {!totals}.send_drop — when [dst] is dead or the allocator is
    exhausted. *)

val receive : t -> tid:int -> self:int -> int option
(** Guarded dequeue from [self]'s mailbox ([None] when empty or
    dead). Any thread may run an actor; concurrent receives on one
    actor are safe but break FIFO delivery order per sender. *)

val retire : t -> tid:int -> int -> bool
(** Kill an actor: unregister, wait (bounded) for in-flight
    senders, destroy the mailbox (discarding undelivered messages) and
    recycle the slot onto this thread's free list. [false] if already
    dead. A guard window that never clears parks the slot as a zombie
    instead of blocking. *)

val tick : t -> tid:int -> now:int -> int
(** Fire every ripe ttl timer (retiring its actor); returns how many
    actors were retired. No-op without a wheel. *)

val wheel : t -> Timer.t option
(** The raw wheel, for driver-scheduled cohort timers. Do not mix
    cohort payloads with [spawn ?deadline] ids on the same wheel —
    {!tick} interprets every payload as an actor id. *)

val live : t -> int
(** Slots currently live (quiescent snapshot). *)

val probe : t -> tid:int -> Structures.Hmap.probe
(** Registry health: entries, longest bucket chain, load factor
    (quiescent). Surfaces silent degradation of the fixed-size
    registry — see the sizing note in hmap.mli. *)

val teardown : t -> tid:int -> int
(** Quiescent teardown: destroy every mailbox (live, closing or
    zombie), drain the wheel and clear the registry, leaving only the
    anchored sentinels allocated. Returns the number of undelivered
    messages discarded. Run the custody auditor on the manager
    afterwards. *)

val totals : t -> totals
(** Summed per-thread counters (quiescent). *)
