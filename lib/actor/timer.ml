(* Timer wheel over the skiplist priority queue: (deadline, payload)
   pairs ordered by deadline, popped as virtual or wall-clock time
   passes. The wheel inherits the skiplist's scheme restriction — it
   exists only on reference-counting managers (the paper's §1
   applicability gap); the service layer degrades to no timers on
   hp/ebr.

   Deadline arithmetic saturates: [Pqueue.insert] reserves max_int and
   min_int as sentinel keys (and its deletion pass probes key + 1, so
   max_int - 1 is the largest usable key), and a deadline computed as
   now + timeout can overflow past max_int for large timeouts. The
   service must degrade to "effectively never" rather than die on
   Invalid_argument. *)

module Mm = Mm_intf
module Pq = Structures.Pqueue

type t = { pq : Pq.t }

(* Saturating now + timeout, clamped into the valid key range
   (min_int, max_int - 1]. Native-int addition wraps, so overflow is
   detected by sign: a non-negative timeout can never legitimately
   move the deadline below [now_ns], nor a negative one above it. *)
let deadline ~now_ns ~timeout_ns =
  let d = now_ns + timeout_ns in
  if timeout_ns >= 0 && d < now_ns then max_int - 1
  else if timeout_ns < 0 && d > now_ns then min_int + 1
  else if d = max_int then max_int - 1
  else if d = min_int then min_int + 1
  else d

let create mm ~anchor_root ~seed ~tid =
  let pq = Pq.create mm ~seed ~tid in
  (* Anchor the immortal head sentinel in an arena root cell so
     root-based audits see the wheel's nodes as reachable. *)
  let arena = Mm.arena mm in
  Mm.store_link mm ~tid (Shmem.Arena.root_addr arena anchor_root)
    (Pq.head_ptr pq);
  { pq }

let schedule t ~tid ~deadline payload = Pq.insert t.pq ~tid deadline payload

let due t ~tid ~now =
  match Pq.delete_min t.pq ~tid with
  | None -> None
  | Some (d, payload) when d <= now -> Some (d, payload)
  | Some (d, payload) ->
      (* Not ripe yet: put it back. *)
      Pq.insert t.pq ~tid d payload;
      None

let drain t ~tid = Pq.drain t.pq ~tid
