(* Actor/mailbox runtime over the WFRC structures — the "millions of
   users" service scenario. Every actor owns a Michael–Scott queue as
   its MPSC mailbox, the actor registry is the lock-free hash map, and
   a skiplist timer wheel (RC schemes only) drives timeouts — all
   drawing nodes from ONE memory manager, so spawn/send/receive/retire
   exercise the paper's scheme as the service's real allocator.

   Slot protocol. The service owns [max_actors] slots; slot [s] claims
   arena root cells 2s (mailbox head) and 2s+1 (mailbox tail). An
   actor id encodes its slot and a generation: id = slot +
   max_actors * gen, so a recycled slot never resurrects an old id
   (the registry lookup for a dead id simply misses). Each slot
   carries two service-level atomics:

     state    0 = free | id+1 = live | -(id+1) = closing
     inflight  number of threads inside the send/receive guard window

   A sender increments [inflight] BEFORE reading [state]; the retirer
   CASes state live -> closing and then waits for [inflight] = 0
   before destroying the mailbox. Sequential consistency of the two
   atomics gives the usual flag/flag argument: if the sender read
   [live], its increment precedes the retirer's CAS, so the retirer's
   wait sees it and the destroy cannot race the enqueue; if the sender
   read [closing], it never touches the queue. The wait is bounded
   (under Sim a spinning fiber would never yield to the thread it
   waits for): on timeout the slot is parked as a zombie — out of
   circulation, destroyed at quiescent teardown. A sender that
   crashes inside the guard window leaves [inflight] raised forever,
   which turns that slot into a zombie by construction; its mailbox
   nodes stay reachable from the slot roots until teardown adopts
   them, which is exactly the custody story the audit checks.

   Slot ownership. Free slots live on plain per-thread lists (a slot
   freed by a retire migrates to the retiring thread's list), so
   spawn/retire touch no shared service state beyond the two slot
   atomics and the manager itself. Stats are per-thread plain counters
   summed at quiescent points. *)

module Mm = Mm_intf
module Q = Structures.Queue
module Hmap = Structures.Hmap

type counters = {
  spawned : int array;
  spawn_fail : int array;
  sent : int array;
  send_drop : int array;
  received : int array;
  recv_empty : int array;
  retired : int array;
  zombied : int array;
  discarded : int array;
}

type totals = {
  spawned : int;
  spawn_fail : int;
  sent : int;
  send_drop : int;
  received : int;
  recv_empty : int;
  retired : int;
  zombied : int;
  discarded : int;
}

type t = {
  mm : Mm.instance;
  threads : int;
  max_actors : int;
  registry : Hmap.t;
  wheel : Timer.t option;
  state : int Atomic.t array;
  inflight : int Atomic.t array;
  mailbox : Q.t option array;
  gen : int array; (* written only by the slot's current owner *)
  free : int list array; (* per-thread free-slot lists *)
  c : counters;
}

(* Layout helper: root cells 0 .. 2*max_actors-1 are the mailbox
   head/tail pairs, then one anchor per registry bucket, then one for
   the timer wheel. Three data words and [levels] links satisfy every
   structure involved (queue: 1 link + 1 data; oset: 1 link + 2 data;
   skiplist: [levels] links + 3 data). *)
let mm_config ?(backend = Atomics.Backend.Native) ?rep ?(shards = 1)
    ?(batch = 1) ?defer ?(levels = 4) ~threads ~capacity ~max_actors ~buckets
    () =
  Mm.config ~backend ?rep ~shards ~batch ?defer ~threads ~capacity
    ~num_links:(max 1 levels) ~num_data:3
    ~num_roots:((2 * max_actors) + buckets + 1) ()

let create mm ~max_actors ~buckets ~seed ~tid =
  if max_actors < 1 then invalid_arg "Service.create: max_actors < 1";
  let cfg = Mm.conf mm in
  let threads = cfg.Mm.threads in
  if cfg.Mm.num_roots < (2 * max_actors) + buckets + 1 then
    invalid_arg
      "Service.create: layout needs 2*max_actors + buckets + 1 root cells \
       (use Service.mm_config)";
  let registry = Hmap.create mm ~buckets ~tid in
  (* Anchor the registry's immortal bucket sentinels in root cells so
     root-based audits see registry nodes as reachable. *)
  let arena = Mm.arena mm in
  Array.iteri
    (fun i head ->
      Mm.store_link mm ~tid
        (Shmem.Arena.root_addr arena ((2 * max_actors) + i))
        head)
    (Hmap.heads registry);
  (* The timer wheel needs reference counting (skiplist); hp/ebr run
     the service without timeouts — the §1 applicability gap at the
     service level. *)
  let wheel =
    if Mm.refcounted mm then
      Some
        (Timer.create mm
           ~anchor_root:((2 * max_actors) + buckets)
           ~seed ~tid)
    else None
  in
  let free = Array.make threads [] in
  for slot = max_actors - 1 downto 0 do
    let owner = slot mod threads in
    free.(owner) <- slot :: free.(owner)
  done;
  let zeros () = Array.make threads 0 in
  {
    mm;
    threads;
    max_actors;
    registry;
    wheel;
    state = Array.init max_actors (fun _ -> Atomic.make 0);
    inflight = Array.init max_actors (fun _ -> Atomic.make 0);
    mailbox = Array.make max_actors None;
    gen = Array.make max_actors 0;
    free;
    c =
      {
        spawned = zeros ();
        spawn_fail = zeros ();
        sent = zeros ();
        send_drop = zeros ();
        received = zeros ();
        recv_empty = zeros ();
        retired = zeros ();
        zombied = zeros ();
        discarded = zeros ();
      };
  }

let wheel t = t.wheel
let slot_of t id = id mod t.max_actors
let bump a tid = a.(tid) <- a.(tid) + 1

(* Spawn: claim a slot from this thread's free list, build the
   mailbox, register the id, arm the optional ttl timer, then publish
   via the state atomic (the mailbox write precedes the publication,
   so any sender that passes the guard sees it). Runs out of slots or
   nodes gracefully: [None], with the slot returned on rollback. *)
let spawn ?deadline t ~tid =
  match t.free.(tid) with
  | [] ->
      bump t.c.spawn_fail tid;
      None
  | slot :: rest -> (
      t.free.(tid) <- rest;
      let g = t.gen.(slot) + 1 in
      t.gen.(slot) <- g;
      let id = slot + (t.max_actors * g) in
      let rollback () =
        t.free.(tid) <- slot :: t.free.(tid);
        bump t.c.spawn_fail tid;
        None
      in
      match Q.create t.mm ~head_root:(2 * slot) ~tail_root:((2 * slot) + 1) ~tid with
      | exception (Mm.Out_of_memory | Mm.Out_of_nodes _) -> rollback ()
      | q -> (
          match
            (match (deadline, t.wheel) with
            | Some d, Some w -> Timer.schedule w ~tid ~deadline:d id
            | _ -> ());
            Hmap.insert t.registry ~tid id slot
          with
          | exception (Mm.Out_of_memory | Mm.Out_of_nodes _) ->
              ignore (Q.destroy q ~tid);
              rollback ()
          | _inserted ->
              t.mailbox.(slot) <- Some q;
              Atomic.set t.state.(slot) (id + 1);
              bump t.c.spawned tid;
              Some id))

(* The guard window: inflight up, check state, touch the queue,
   inflight down. Deliberately NOT exception-protected — a chaos
   crash inside the window must leave [inflight] raised, zombifying
   the slot, so its nodes stay in the audited custody classes instead
   of racing a concurrent destroy. *)
let send t ~tid ~dst v =
  match Hmap.lookup t.registry ~tid dst with
  | None ->
      bump t.c.send_drop tid;
      false
  | Some slot ->
      Atomic.incr t.inflight.(slot);
      let ok =
        if Atomic.get t.state.(slot) = dst + 1 then
          match t.mailbox.(slot) with
          | Some q -> (
              try
                Q.enqueue q ~tid v;
                true
              with Mm.Out_of_memory | Mm.Out_of_nodes _ -> false)
          | None -> false
        else false
      in
      Atomic.decr t.inflight.(slot);
      bump (if ok then t.c.sent else t.c.send_drop) tid;
      ok

let receive t ~tid ~self =
  let slot = slot_of t self in
  Atomic.incr t.inflight.(slot);
  let res =
    if Atomic.get t.state.(slot) = self + 1 then
      match t.mailbox.(slot) with Some q -> Q.dequeue q ~tid | None -> None
    else None
  in
  Atomic.decr t.inflight.(slot);
  bump (match res with Some _ -> t.c.received | None -> t.c.recv_empty) tid;
  res

(* Bounded wait for the guard window to clear. Under Sim a spinning
   fiber never yields to the fiber it waits for (the service atomics
   carry no scheduling points), so an unbounded spin would livelock;
   the zombie path is the escape hatch on both backends. *)
let spin_budget = 128

let retire t ~tid id =
  let slot = slot_of t id in
  if Atomic.compare_and_set t.state.(slot) (id + 1) (-(id + 1)) then begin
    ignore (Hmap.remove t.registry ~tid id);
    let rec wait n =
      if Atomic.get t.inflight.(slot) = 0 then begin
        (match t.mailbox.(slot) with
        | Some q ->
            let leftover = Q.destroy q ~tid in
            t.c.discarded.(tid) <- t.c.discarded.(tid) + leftover
        | None -> ());
        t.mailbox.(slot) <- None;
        Atomic.set t.state.(slot) 0;
        t.free.(tid) <- slot :: t.free.(tid);
        bump t.c.retired tid
      end
      else if n >= spin_budget then
        (* Park the slot: still closing, mailbox intact, out of
           circulation until teardown. *)
        bump t.c.zombied tid
      else begin
        Domain.cpu_relax ();
        wait (n + 1)
      end
    in
    wait 0;
    true
  end
  else false

(* Fire every ripe ttl timer. Payloads are actor ids armed by [spawn
   ?deadline]; a timer that outlives its actor (manual retire first)
   is a no-op. Do not mix with driver-scheduled cohort payloads on the
   same wheel. *)
let tick t ~tid ~now =
  match t.wheel with
  | None -> 0
  | Some w ->
      let rec go n =
        match Timer.due w ~tid ~now with
        | None -> n
        | Some (_, id) -> go (if retire t ~tid id then n + 1 else n)
      in
      go 0

let live t =
  Array.fold_left (fun a s -> if Atomic.get s > 0 then a + 1 else a) 0 t.state

(* Quiescent teardown: adopt every slot — live, closing or zombie —
   destroy its mailbox and drain the wheel, leaving only anchored
   sentinels allocated. Callers then run the auditor on the manager. *)
let teardown t ~tid =
  let discarded = ref 0 in
  for slot = 0 to t.max_actors - 1 do
    (match t.mailbox.(slot) with
    | Some q -> discarded := !discarded + Q.destroy q ~tid
    | None -> ());
    t.mailbox.(slot) <- None;
    (match Atomic.get t.state.(slot) with
    | 0 -> ()
    | s ->
        if s > 0 then ignore (Hmap.remove t.registry ~tid (s - 1));
        Atomic.set t.state.(slot) 0);
    Atomic.set t.inflight.(slot) 0
  done;
  (match t.wheel with Some w -> ignore (Timer.drain w ~tid) | None -> ());
  ignore (Hmap.clear t.registry ~tid);
  !discarded

let probe t ~tid = Hmap.probe t.registry ~tid

let totals t =
  let sum a = Array.fold_left ( + ) 0 a in
  {
    spawned = sum t.c.spawned;
    spawn_fail = sum t.c.spawn_fail;
    sent = sum t.c.sent;
    send_drop = sum t.c.send_drop;
    received = sum t.c.received;
    recv_empty = sum t.c.recv_empty;
    retired = sum t.c.retired;
    zombied = sum t.c.zombied;
    discarded = sum t.c.discarded;
  }
