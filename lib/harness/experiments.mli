(** The experiment suite — one entry point per experiment id of
    DESIGN.md §4 / EXPERIMENTS.md, aggregated from the family modules
    ({!Exp_throughput}, {!Exp_contention}, {!Exp_steps},
    {!Exp_lincheck}, {!Exp_ratio}, {!Exp_fault}, {!Exp_shard}). Every
    function
    returns a typed {!Report.t} (render it with {!Sink}); all
    randomness is seeded. *)

val specs : Exp.spec list
(** Every registered experiment, in canonical display order. *)

val ids : string list
(** All experiment ids accepted by {!run}. *)

val run : ?quick:bool -> string -> Report.t
(** Run an experiment by id; [quick] uses reduced parameters and is
    recorded in the report metadata. Raises [Invalid_argument] for an
    unknown id. *)

val e1 :
  ?schemes:string list ->
  ?threads_list:int list ->
  ?ops:int ->
  ?capacity:int ->
  ?key_range:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Priority-queue throughput per scheme and thread count — the
    paper's §5 experiment. *)

val e2 :
  ?schemes:string list ->
  ?budgets:int list ->
  ?seeds:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Max victim steps for one DeRefLink vs adversary link-flip budget,
    under the deterministic scheduler: the wait-freedom evidence
    (Lemmas 6–10 vs the Valois unbounded retry). *)

val e3 :
  ?schemes:string list ->
  ?threads_list:int list ->
  ?ops:int ->
  ?capacity:int ->
  ?max_burst:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Alloc/free churn: the wait-free [2N]-list free-list vs the single
    Treiber list (§3.1). *)

val e4 :
  ?threads_list:int list ->
  ?ops:int ->
  ?runs:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Helping-mechanism accounting under the deterministic scheduler. *)

val e5 :
  ?schemes:string list ->
  ?threads:int ->
  ?ops:int ->
  ?capacity:int ->
  ?key_range:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Per-operation latency tails — the real-time argument of §5. *)

val e7 : ?runs:int -> ?seed:int -> unit -> Report.t
(** Linearizability sweeps (Wing–Gong check per schedule) for link
    semantics, the alloc multiset, stack, queue and priority queue. *)

val e7d : ?runs:int -> ?seed:int -> unit -> Report.t
(** E7's full bed matrix over [wfrc_deferred] (separate report id so
    E7's seeded output stays bit-identical). *)

val e8 : ?threads_list:int list -> ?capacity:int -> unit -> Report.t
(** Exhaustion behaviour: OOM detection (footnote 4) and node
    conservation. *)

val e9 :
  ?schemes:string list ->
  ?threads_list:int list ->
  ?ops:int ->
  ?capacity:int ->
  ?key_range:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Ordered-set throughput on {e all} schemes — the applicability
    boundary of §1 in numbers (contrast with E1). *)

val e10 :
  ?schemes:string list ->
  ?runs:int ->
  ?ops:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Crash tolerance under the deterministic scheduler: a peer thread
    is crashed mid-operation; non-blocking schemes must still let the
    workers finish (the §1 blocking-vs-non-blocking argument, plus the
    announcement-pool sizing under a crashed helper). *)

val e11 : ?threads_list:int list -> unit -> Report.t
(** Scheme metadata space (words) vs thread count: the O(N{^2})
    announcement-pool cost of wait-freedom, made explicit. *)

val e12 :
  ?schemes:string list ->
  ?ops_list:int list ->
  ?seeds:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Bounded loss under a crashed thread ({!Sched.Fault} + {!Audit}):
    one thread is crashed mid-operation without unwinding; after the
    survivors drain, the auditor partitions every node. WFRC strands a
    flat, envelope-bounded set; EBR's loss grows with survivor work
    until the arena is exhausted. *)

val e13 :
  ?schemes:string list ->
  ?ks:int list ->
  ?ops:int ->
  ?seeds:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Stall storm: k of N threads freeze for a fixed window; survivors'
    per-operation own-step costs are metered ({!Audit.Steps}) and the
    run is audited once everyone resumes and finishes. The empirical
    wait-freedom-bound experiment. *)

val e14 :
  ?schemes:string list ->
  ?shards_list:int list ->
  ?threads_list:int list ->
  ?ops:int ->
  ?capacity:int ->
  ?batch:int ->
  ?max_burst:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Sharded free store: alloc/free churn throughput and free-list CAS
    retries vs shard count × domain count (Native). lfrc is the
    subject (its single Treiber list is what the striping replaces);
    wfrc rides along as a flat control. *)

val e15 :
  ?schemes:string list ->
  ?reps:Atomics.Backend.rep list ->
  ?threads_list:int list ->
  ?ops:int ->
  ?capacity:int ->
  ?shards:int ->
  ?batch:int ->
  unit ->
  Report.t
(** Native scaling sweep: alloc/release churn throughput across cell
    representation × domain count × free-store configuration
    (legacy vs sharded). The boxed→unboxed delta per row is the
    portable signal; multi-domain rows need multi-core hardware to
    rise. *)

val e16 :
  ?schemes:string list ->
  ?ops:int ->
  ?native_ops:int ->
  ?seeds:int ->
  ?native_seeds:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Crash recovery: after E12-style crashes on both backends
    (deterministic Sim faults; {!Chaos} mid-fragment injection on real
    Domains), a survivor adopts the dead thread's state
    ({!Recovery.run}) and the audit's [recovered] class measures what
    came back — target >= 90% of [crash_held] with zero leaks. A third
    leg exhausts the sharded store against a crashed holder:
    allocation must surface typed [Mm_intf.Out_of_nodes] backpressure,
    and dead-cache adoption alone must unblock it. *)

val e17 :
  ?schemes:string list ->
  ?reads_list:int list ->
  ?threads:int ->
  ?capacity:int ->
  ?ops:int ->
  ?seeds:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Read-heavy rc traffic: arena FAA counts for eager wfrc vs
    wfrc_deferred under the reclamation oracle (DESIGN.md §6.3). The
    [bench --check-scaling] gate holds the eager/deferred ratio at
    the read-heaviest mix to >= 5x via {!Exp_deferred.faa_traffic}. *)

val e18 :
  ?schemes:string list ->
  ?threads_list:int list ->
  ?actors:int ->
  ?ops:int ->
  ?chaos_seeds:int ->
  ?chaos_threads:int ->
  ?chaos_actors:int ->
  ?chaos_ops:int ->
  ?sim_seeds:int ->
  ?million_actors:int ->
  ?million_traffic:int ->
  ?waves:int ->
  ?million_schemes:string list ->
  ?seed:int ->
  unit ->
  Report.t
(** Actor service: {!Actor.Service} mailbox runtime (queue mailboxes,
    Hmap registry, Pqueue timer wheel, one manager) under mixed
    spawn/send/receive/retire traffic. Legs: Native scheme × threads
    sweep with send-latency percentiles and a registry-degradation
    probe; {!Chaos} crash-mid-send plus {!Recovery} (zero leaks
    within the bounded-loss envelope); a deterministic Sim miniature
    with virtual-time ttl timers; and a full-run-only million-actor
    leg ([million_schemes] empty disables it) with wave retirement
    through the timer wheel. *)

val a1 : ?threads_list:int list -> ?seeds:int -> ?seed:int -> unit -> Report.t
(** Ablation: deref step bound vs thread count (O(N) scans). *)

val a2 :
  ?threads_list:int list ->
  ?ops:int ->
  ?capacity:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Ablation: FreeNode placement heuristic (F5–F6) vs own-index. *)

val a3 :
  ?threads_list:int list ->
  ?ops:int ->
  ?capacity:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Ablation: allocation helping (A11–A15/F3) on vs off. *)

val a4 :
  ?schemes:string list ->
  ?churn_schedules:int ->
  ?contend_schedules:int ->
  ?hunt_runs:int ->
  ?seed:int ->
  unit ->
  Report.t
(** Reclamation-safety detector sweep ({!Analysis.Reclaim} over
    {!Sched.Explore}): every scheme explored clean over two small
    contended programs, then three seeded protocol mutations (HP
    validation skip, double release, dropped release) each caught with
    a replayable choice trace. *)
