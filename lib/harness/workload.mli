(** Deterministic workload generation (all randomness seeded, so every
    experiment is reproducible). *)

type op =
  | Produce of int  (** push / enqueue / insert with this key *)
  | Consume         (** pop / dequeue / delete-min *)

val mixed :
  rng:Sched.Rng.t -> n:int -> produce_pct:int -> key_range:int -> op array
(** [n] operations, [produce_pct]% producers, keys uniform in
    [\[0, key_range)]. *)

val churn_bursts : rng:Sched.Rng.t -> n:int -> max_burst:int -> int array
(** Alloc/free burst sizes in [\[1, max_burst\]]. *)

val per_thread : threads:int -> seed:int -> (Sched.Rng.t -> 'a) -> 'a array
(** Independent per-thread streams derived from [seed]. *)

val split_ops : threads:int -> ops:int -> int array
(** Exact per-thread split of an op budget: [threads] counts summing
    to [ops], the remainder spread one-per-thread over the low tids —
    completed always equals requested, unlike a truncating
    [ops / threads]. *)

val count_produces : op array -> int
