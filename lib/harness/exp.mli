(** Declarative experiment specs: the registry and CLI are derived
    from these records, never hand-maintained. *)

type params = { quick : bool }

type spec = {
  id : string;     (** registry key, lowercase: ["e1"], ["a2"], … *)
  descr : string;  (** one-liner for [wfrc_bench list] / [--help] *)
  run : params -> Report.t;
}

val spec : id:string -> descr:string -> (params -> Report.t) -> spec

val sort : spec list -> spec list
(** Canonical display order: e-experiments by number, then the
    ablations — derived from the ids. *)

val ids : spec list -> string list

val find : spec list -> string -> spec option
(** Case-insensitive id lookup. *)

val run : spec list -> ?quick:bool -> string -> Report.t
(** Raises [Invalid_argument] listing the known ids on an unknown
    id. *)
