(** Pluggable renderers over {!Report.t}: aligned console table (the
    historical CLI output), CSV, JSON Lines, and the per-report JSON
    file ([REPORT_<id>.json]) that feeds the bench trajectory. *)

type t = Table | Csv | Jsonl

val all : (string * t) list
(** Name → sink, for CLI flag parsing. *)

val render : t -> Report.t -> string
(** The report body in the given format (no banner, no notes). *)

val print : t -> Report.t -> unit
(** [Table]/[Csv]: banner ([== id: title ==]), body, then [note:]
    lines — byte-identical to the historical CLI output for [Table].
    [Jsonl]: bare JSON lines only. *)

val to_json : Report.t -> string
(** The whole report as one JSON document: id, title, meta (seed,
    quick, backend, params), columns (name/role/unit), rows (one
    object per row keyed by column name), counters, notes. Non-finite
    floats serialise as [null]. *)

val jsonl : Report.t -> string
(** One JSON object per row, each tagged with [{"report": id}]. *)

val report_filename : Report.t -> string
(** ["REPORT_<id>.json"]. *)

val write_json : dir:string -> Report.t -> string
(** Write {!to_json} to [dir/REPORT_<id>.json] (creating [dir] if
    missing) and return the path. *)
