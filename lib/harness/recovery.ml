(* Dead-slot adoption driver (the quiescent-survivors protocol of
   DESIGN.md §7): audit the crash damage, declare the dead set to the
   scheme, run its recovery pass from one survivor, re-audit. The
   free-count delta across the pass is the [recovered] class E16
   reports — measured externally, so a scheme cannot grade its own
   homework by over-counting adoptions. *)

module Mm = Mm_intf

type outcome = {
  pre : Audit.report;   (* damage before recovery *)
  post : Audit.report;  (* after; [recovered] = free-count delta *)
  stats : Mm.recovery;  (* the scheme's own accounting of the pass *)
}

let run ?loss_bound ~dead ~by (inst : Mm.instance) =
  (match dead with
  | [] -> invalid_arg "Recovery.run: empty dead set"
  | _ -> ());
  if List.mem by dead then invalid_arg "Recovery.run: adopter is dead";
  let pre = Audit.run ~crashed:dead ?loss_bound inst in
  List.iter (fun tid -> Mm.declare_dead inst ~tid) dead;
  let stats = Mm.recover inst ~tid:by in
  let post = Audit.run ~crashed:dead ?loss_bound inst in
  let post =
    { post with Audit.recovered = max 0 (post.Audit.free - pre.Audit.free) }
  in
  { pre; post; stats }
