(** Typed experiment reports — the single currency of the
    harness→CLI pipeline (see {!Sink} for the renderers).

    A report is a table of typed cells under typed columns
    (dimensions, i.e. sweep coordinates, then measures with units),
    plus run metadata (seed, quick/full, backend, parameters) and the
    scheme's {!Atomics.Counters} deltas captured by the
    instrumentation spine ({!Exp_support.Spine}). *)

type cell =
  | Int of int
  | Float of float  (** rendered ["%.1f"] in the table sink *)
  | Pct of float    (** rendered ["%.2f%%"] *)
  | Ops of float    (** rendered via {!Metrics.ops_to_string} *)
  | Ns of int       (** rendered via {!Metrics.ns_to_string} *)
  | Str of string

type role = Dim | Measure

type col = { name : string; role : role; unit_ : string option }

val dim : string -> col
(** A dimension column: a sweep coordinate (scheme, threads, …). *)

val measure : ?unit_:string -> string -> col
(** A measure column, optionally carrying a unit (["ops/s"], ["ns"],
    ["steps"], …). *)

type meta = {
  seed : int option;
  quick : bool;
  backend : string option;
  params : (string * string) list;
      (** remaining describable parameters, as [key, value] strings *)
}

val meta :
  ?seed:int ->
  ?quick:bool ->
  ?backend:Atomics.Backend.t ->
  ?params:(string * string) list ->
  unit ->
  meta

val no_meta : meta

type t = {
  id : string;
  title : string;
  cols : col list;
  rows : cell list list;
  counters : (string * int) list;
      (** counter-event deltas observed during the run, by event name *)
  meta : meta;
  notes : string list;
}

val make :
  id:string ->
  title:string ->
  cols:col list ->
  ?notes:string list ->
  ?counters:(string * int) list ->
  ?meta:meta ->
  cell list list ->
  t
(** Raises [Invalid_argument] on rows whose arity does not match
    [cols]. *)

val cell_to_string : cell -> string
(** The table/CSV rendering of one cell (the historical console
    formatting). *)

val headers : t -> string list
val row_strings : t -> string list list
val dims : t -> col list
val measures : t -> col list

val cols_of_sweep : dim:string -> ?unit_:string -> string list -> col list
(** [cols_of_sweep ~dim points]: one dimension column followed by one
    measure column per sweep point (e.g. per thread count). *)
