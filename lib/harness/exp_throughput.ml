(* Throughput/space family: E1 (priority-queue throughput, paper §5),
   E9 (ordered set on all five schemes — the §1 applicability
   boundary), E11 (metadata space vs thread count). *)

module Mm = Mm_intf
module Rng = Sched.Rng
open Exp_support

(* ------------------------------------------------------------------ *)
(* E1: priority-queue throughput, WFRC vs baselines (paper §5).       *)
(* ------------------------------------------------------------------ *)

let e1 ?(schemes = Registry.rc_names) ?(threads_list = [ 1; 2; 4; 8 ])
    ?(ops = 40_000) ?(capacity = 1 lsl 14) ?(key_range = 1 lsl 16)
    ?(seed = 42_001) () =
  let spine = Spine.create () in
  let rows =
    List.map
      (fun scheme ->
        Report.Str scheme
        :: List.map
             (fun threads ->
               let mm, pq, streams, total_ops =
                 pq_setup ~scheme ~threads ~ops ~capacity ~key_range ~seed
               in
               let result =
                 Spine.wrap spine mm (fun () ->
                     Runner.run ~threads (fun ~tid ->
                         pq_worker pq ~tid streams.(tid)))
               in
               Report.Ops (Runner.throughput ~ops:total_ops result))
             threads_list)
      schemes
  in
  Report.make ~id:"E1"
    ~title:"priority-queue throughput (ops/s), 50/50 insert/delete-min"
    ~cols:
      (Report.cols_of_sweep ~dim:"scheme" ~unit_:"ops/s"
         (List.map (fun t -> Printf.sprintf "%dT" t) threads_list))
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed ~backend:Atomics.Backend.Native
         ~params:
           [
             ("ops", string_of_int ops);
             ("capacity", string_of_int capacity);
             ("key_range", string_of_int key_range);
           ]
         ())
    ~notes:
      [
        "paper §5: WFRC is asymptotically similar to the default \
         lock-free (Valois) scheme on this workload";
        "single hardware core: threads interleave by preemption; compare \
         ratios across schemes, not absolute scaling";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E9: the applicability boundary in numbers — the ordered set runs   *)
(* on all five schemes (Michael's unlink-then-retire discipline),     *)
(* while the skiplist cannot leave reference counting (§1).           *)
(* ------------------------------------------------------------------ *)

let e9 ?(schemes = Registry.names) ?(threads_list = [ 1; 2; 4 ])
    ?(ops = 30_000) ?(capacity = 4096) ?(key_range = 512) ?(seed = 19_000) ()
    =
  let spine = Spine.create () in
  let rows =
    List.map
      (fun scheme ->
        Report.Str scheme
        :: List.map
             (fun threads ->
               let cfg =
                 Mm.config ~backend:Atomics.Backend.Native ~threads
                   ~capacity ~num_links:1 ~num_data:2 ~num_roots:0 ()
               in
               let mm = Registry.instantiate scheme cfg in
               let set = Structures.Oset.create mm ~tid:0 in
               (* prefill to ~half the key range *)
               let rng = Rng.create (seed + 1) in
               for _ = 1 to key_range / 2 do
                 ignore
                   (Structures.Oset.insert set ~tid:0
                      (1 + Rng.int rng key_range)
                      0)
               done;
               let counts = Workload.split_ops ~threads ~ops in
               let result =
                 Spine.wrap spine mm (fun () ->
                     Runner.run ~threads (fun ~tid ->
                         let rng = Rng.create (seed + 2 + tid) in
                         for _ = 1 to counts.(tid) do
                           let k = 1 + Rng.int rng key_range in
                           match Rng.int rng 10 with
                           | 0 | 1 -> (
                               try
                                 ignore
                                   (Structures.Oset.insert set ~tid k tid)
                               with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ())
                           | 2 | 3 ->
                               ignore (Structures.Oset.remove set ~tid k)
                           | _ -> ignore (Structures.Oset.mem set ~tid k)
                         done))
               in
               Report.Ops (Runner.throughput ~ops result))
             threads_list)
      schemes
  in
  Report.make ~id:"E9"
    ~title:"ordered-set throughput, ALL schemes (20% ins / 20% del / 60% mem)"
    ~cols:
      (Report.cols_of_sweep ~dim:"scheme" ~unit_:"ops/s"
         (List.map (fun t -> Printf.sprintf "%dT" t) threads_list))
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed ~backend:Atomics.Backend.Native
         ~params:
           [
             ("ops", string_of_int ops);
             ("capacity", string_of_int capacity);
             ("key_range", string_of_int key_range);
           ]
         ())
    ~notes:
      [
        "the set follows Michael's unlink-then-retire discipline, so \
         hazard pointers and epochs run it too — contrast with E1's \
         skiplist, which only reference counting supports (§1)";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E11: metadata space cost per scheme as the thread count grows.     *)
(* The paper's wait-freedom is bought with an O(N^2) announcement     *)
(* pool and 2N free-lists; the baselines are O(N) or O(1). This       *)
(* table makes the trade explicit (words of scheme metadata,          *)
(* excluding the arena itself, which is identical for all).           *)
(* ------------------------------------------------------------------ *)

let e11 ?(threads_list = [ 2; 4; 8; 16; 32; 64 ]) () =
  (* Word counts by construction (see each scheme's [create]):
     wfrc : annReadAddr N^2 + annBusy N^2 + annIndex N
            + freeList 2N + annAlloc N + currentFreeList + helpCurrent
     lfrc : stamped head = 1
     hp   : K slots/thread (K = max 16 (2*links+8); links=1 here)
            + head = K*N + 1  (retired lists are transient)
     ebr  : global + head + per-thread (active + epoch) = 2N + 2
     lockrc: lock + head = 2 *)
  let rows =
    List.map
      (fun n ->
        let k = 16 in
        [
          Report.Int n;
          Report.Int ((2 * n * n) + n + (2 * n) + n + 2);
          Report.Int 1;
          Report.Int ((k * n) + 1);
          Report.Int ((2 * n) + 2);
          Report.Int 2;
        ])
      threads_list
  in
  Report.make ~id:"E11" ~title:"scheme metadata (words) vs thread count N"
    ~cols:
      [
        Report.dim "N";
        Report.measure ~unit_:"words" "wfrc";
        Report.measure ~unit_:"words" "lfrc";
        Report.measure ~unit_:"words" "hp(K=16)";
        Report.measure ~unit_:"words" "ebr";
        Report.measure ~unit_:"words" "lockrc";
      ]
    ~notes:
      [
        "wfrc's wait-freedom costs O(N^2) announcement cells (Figure 4) \
         plus 2N free-lists (Figure 5); at N=64 that is ~8.6k words — \
         negligible next to any real arena, but the asymptotic trade \
         is worth stating";
        "counts derive from each scheme's create(); the arena itself \
         (capacity x node_size cells) is identical for every scheme \
         and excluded";
      ]
    rows

let specs =
  [
    Exp.spec ~id:"e1" ~descr:"priority-queue throughput per scheme (paper §5)"
      (fun { Exp.quick } ->
        if quick then e1 ~threads_list:[ 1; 2 ] ~ops:4_000 ~capacity:2048 ()
        else e1 ());
    Exp.spec ~id:"e9"
      ~descr:"ordered-set throughput on all schemes (the §1 boundary)"
      (fun { Exp.quick } ->
        if quick then e9 ~threads_list:[ 1; 2 ] ~ops:6_000 ~capacity:1024 ()
        else e9 ());
    Exp.spec ~id:"e11"
      ~descr:"metadata space vs thread count (the O(N^2) pool)"
      (fun { Exp.quick } ->
        if quick then e11 ~threads_list:[ 2; 4; 8 ] () else e11 ());
  ]
