(* Contention family: E2 (bounded de-reference steps under an
   adversarial updater) and E3 (the wait-free free-list vs the single
   Treiber free-list). *)

module Mm = Mm_intf
module Value = Shmem.Value
open Exp_support

(* ------------------------------------------------------------------ *)
(* E2: bounded de-reference steps under an adversarial updater.       *)
(* ------------------------------------------------------------------ *)

(* One victim de-reference racing [budget] link flips by an adversary,
   under a biased deterministic schedule. Returns the maximum number
   of scheduler steps the victim needed over [seeds] schedules. *)
let e2_one ~spine ~scheme ~budget ~seeds ~seed =
  let victim_max = ref 0 in
  for s = 0 to seeds - 1 do
    let cfg =
      Mm.config ~threads:2 ~capacity:64 ~num_links:1 ~num_data:1
        ~num_roots:1 ()
    in
    let mm = Registry.instantiate scheme cfg in
    let arena = Mm.arena mm in
    let root = Shmem.Arena.root_addr arena 0 in
    let a = Mm.alloc mm ~tid:0 in
    Mm.store_link mm ~tid:0 root a;
    Mm.release mm ~tid:0 a;
    let body tid =
      if tid = 0 then begin
        let p = Mm.deref mm ~tid root in
        if not (Value.is_null p) then Mm.release mm ~tid p
      end
      else
        for _ = 1 to budget do
          let b = Mm.alloc mm ~tid in
          let rec flip () =
            let old = Mm.deref mm ~tid root in
            let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
            if not (Value.is_null old) then Mm.release mm ~tid old;
            if not ok then flip ()
          in
          flip ();
          Mm.release mm ~tid b
        done
    in
    let policy = Sched.Policy.biased ~seed:(seed + s) ~victim:0 ~weight:6 in
    let outcome =
      Spine.wrap spine mm (fun () -> Sched.Engine.run ~threads:2 ~policy body)
    in
    if outcome.steps.(0) > !victim_max then victim_max := outcome.steps.(0)
  done;
  !victim_max

let e2 ?(schemes = [ "wfrc"; "lfrc"; "lockrc" ]) ?(budgets = [ 0; 4; 16; 64 ])
    ?(seeds = 25) ?(seed = 7_000) () =
  let spine = Spine.create () in
  let rows =
    List.map
      (fun budget ->
        Report.Int budget
        :: List.map
             (fun scheme ->
               Report.Int (e2_one ~spine ~scheme ~budget ~seeds ~seed))
             schemes)
      budgets
  in
  Report.make ~id:"E2"
    ~title:
      "max victim steps for one DeRefLink vs adversary link-flip budget \
       (deterministic scheduler)"
    ~cols:(Report.cols_of_sweep ~dim:"flips" ~unit_:"steps" schemes)
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed
         ~params:[ ("seeds", string_of_int seeds) ]
         ())
    ~notes:
      [
        "wfrc: bounded regardless of budget (Lemma 6 wait-freedom)";
        "lfrc: retries grow with adversary budget (Valois unbounded \
         retry, paper §3)";
        "lockrc: victim spins while the preempted adversary holds the \
         lock";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E3: the wait-free free-list vs the single Treiber free-list.       *)
(* ------------------------------------------------------------------ *)

let e3 ?(schemes = [ "wfrc"; "lfrc"; "lockrc" ])
    ?(threads_list = [ 1; 2; 4; 8 ]) ?(ops = 60_000) ?(capacity = 1 lsl 13)
    ?(max_burst = 8) ?(seed = 11_000) () =
  let spine = Spine.create () in
  let rows = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun threads ->
          let cfg =
            list_layout ~backend:Atomics.Backend.Native ~threads ~capacity
          in
          let mm = Registry.instantiate scheme cfg in
          let counts = Workload.split_ops ~threads ~ops in
          let bursts =
            Workload.per_thread ~threads ~seed (fun rng -> rng)
            |> Array.mapi (fun tid rng ->
                   Workload.churn_bursts ~rng ~n:counts.(tid) ~max_burst)
          in
          let row_spine = Spine.create () in
          let result =
            Spine.wrap row_spine mm (fun () ->
                Runner.run ~threads (fun ~tid ->
                    let held = Array.make max_burst Value.null in
                    Array.iter
                      (fun burst ->
                        let got = ref 0 in
                        (try
                           for i = 0 to burst - 1 do
                             held.(i) <- Mm.alloc mm ~tid;
                             incr got
                           done
                         with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ());
                        for i = 0 to !got - 1 do
                          Mm.release mm ~tid held.(i)
                        done)
                      bursts.(tid)))
          in
          let allocs = Spine.total row_spine Alloc in
          let per1k ev =
            if allocs = 0 then 0.0
            else
              1000.0
              *. float_of_int (Spine.total row_spine ev)
              /. float_of_int allocs
          in
          Spine.merge_into spine row_spine;
          let tput = Runner.throughput ~ops:allocs result in
          rows :=
            [
              Report.Str scheme;
              Report.Int threads;
              Report.Ops tput;
              Report.Float (per1k Alloc_retry);
              Report.Float (per1k Free_retry);
              Report.Float (per1k Alloc_helped);
              Report.Float (per1k Free_gave_help);
            ]
            :: !rows)
        threads_list)
    schemes;
  Report.make ~id:"E3" ~title:"alloc/free churn: throughput and retry/help rates"
    ~cols:
      [
        Report.dim "scheme";
        Report.dim "threads";
        Report.measure ~unit_:"ops/s" "allocs/s";
        Report.measure ~unit_:"per_1k_allocs" "aretry/1k";
        Report.measure ~unit_:"per_1k_allocs" "fretry/1k";
        Report.measure ~unit_:"per_1k_allocs" "helped/1k";
        Report.measure ~unit_:"per_1k_allocs" "donated/1k";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed ~backend:Atomics.Backend.Native
         ~params:
           [
             ("ops", string_of_int ops);
             ("capacity", string_of_int capacity);
             ("max_burst", string_of_int max_burst);
           ]
         ())
    ~notes:
      [
        "wfrc splits traffic over 2N free-lists and helps round-robin \
         (§3.1); lfrc contends on one stamped Treiber head";
      ]
    (List.rev !rows)

let specs =
  [
    Exp.spec ~id:"e2"
      ~descr:"bounded DeRefLink steps vs adversary budget (Lemmas 6-10)"
      (fun { Exp.quick } ->
        if quick then e2 ~budgets:[ 0; 4; 16 ] ~seeds:8 () else e2 ());
    Exp.spec ~id:"e3"
      ~descr:"wait-free free-list vs Treiber free-list churn (§3.1)"
      (fun { Exp.quick } ->
        if quick then e3 ~threads_list:[ 1; 2 ] ~ops:8_000 ~capacity:1024 ()
        else e3 ());
  ]
