(* Typed experiment reports: the single currency of the harness→CLI
   pipeline. Every experiment (and the backend benchmark) produces a
   [t]; the sinks (Sink: aligned table, CSV, JSON Lines, JSON file)
   render it. Cells carry their value, not a pre-rendered string, so
   machine-readable sinks emit numbers while the table sink reproduces
   the historical console formatting exactly. *)

type cell =
  | Int of int
  | Float of float (* rendered "%.1f" *)
  | Pct of float   (* rendered "%.2f%%" *)
  | Ops of float   (* rendered via Metrics.ops_to_string *)
  | Ns of int      (* rendered via Metrics.ns_to_string *)
  | Str of string

type role = Dim | Measure

type col = { name : string; role : role; unit_ : string option }

let dim name = { name; role = Dim; unit_ = None }
let measure ?unit_ name = { name; role = Measure; unit_ }

type meta = {
  seed : int option;
  quick : bool;
  backend : string option;
  params : (string * string) list;
}

let meta ?seed ?(quick = false) ?backend ?(params = []) () =
  {
    seed;
    quick;
    backend = Option.map Atomics.Backend.name backend;
    params;
  }

let no_meta = { seed = None; quick = false; backend = None; params = [] }

type t = {
  id : string;
  title : string;
  cols : col list;
  rows : cell list list;
  counters : (string * int) list;
  meta : meta;
  notes : string list;
}

let make ~id ~title ~cols ?(notes = []) ?(counters = []) ?(meta = no_meta)
    rows =
  let arity = List.length cols in
  List.iter
    (fun row ->
      if List.length row <> arity then
        invalid_arg
          (Printf.sprintf "Report.make %s: row arity %d <> %d columns" id
             (List.length row) arity))
    rows;
  { id; title; cols; rows; counters; meta; notes }

let cell_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.1f" f
  | Pct f -> Printf.sprintf "%.2f%%" f
  | Ops f -> Metrics.ops_to_string f
  | Ns n -> Metrics.ns_to_string n
  | Str s -> s

let headers t = List.map (fun c -> c.name) t.cols
let row_strings t = List.map (List.map cell_to_string) t.rows

let dims t = List.filter (fun c -> c.role = Dim) t.cols
let measures t = List.filter (fun c -> c.role = Measure) t.cols

(* Convenience for sweep-style tables: one dim column followed by one
   measure per sweep point. *)
let cols_of_sweep ~dim:d ?unit_ points =
  dim d :: List.map (fun p -> measure ?unit_ p) points
