(* Machine-readable backend benchmark: the alloc/release churn loop
   (the managers' hottest path) timed per scheme × backend × thread
   count, with per-op latency percentiles.

   Per-op times are measured over batches of [batch_pairs] pairs —
   [Runner.now_ns] is gettimeofday-based (microsecond granularity),
   so timing individual sub-microsecond operations would quantize to
   nothing. Each histogram sample is batch wall time divided by the
   batch size, recorded once per batch. *)

module B = Atomics.Backend
module Mm = Mm_intf

type point = {
  scheme : string;
  backend : B.t;
  threads : int;
  ops : int;            (* completed alloc+release pairs *)
  wall_ns : int;
  ops_per_sec : float;
  mean_ns : float;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  max_ns : int;
}

let batch_pairs = 64

let run_point ~scheme ~backend ~threads ~ops ~capacity =
  let cfg =
    Mm.config ~backend ~threads ~capacity ~num_links:1 ~num_data:1
      ~num_roots:0 ()
  in
  let mm = Registry.instantiate scheme cfg in
  let per_thread = ops / threads in
  let batches = per_thread / batch_pairs in
  let hists = Array.init threads (fun _ -> Metrics.Hist.create ()) in
  let result =
    Runner.run ~threads (fun ~tid ->
        let h = hists.(tid) in
        for _ = 1 to batches do
          let t0 = Runner.now_ns () in
          for _ = 1 to batch_pairs do
            Mm.enter_op mm ~tid;
            (try
               let p = Mm.alloc mm ~tid in
               Mm.release mm ~tid p;
               Mm.terminate mm ~tid p
             with Mm.Out_of_memory -> ());
            Mm.exit_op mm ~tid
          done;
          Metrics.Hist.add h ((Runner.now_ns () - t0) / batch_pairs)
        done)
  in
  let hist = Metrics.Hist.create () in
  Array.iter (fun h -> Metrics.Hist.merge_into hist h) hists;
  let done_ops = batches * batch_pairs * threads in
  {
    scheme;
    backend;
    threads;
    ops = done_ops;
    wall_ns = result.Runner.wall_ns;
    ops_per_sec = Runner.throughput ~ops:done_ops result;
    mean_ns = Metrics.Hist.mean hist;
    p50_ns = Metrics.Hist.percentile hist 0.50;
    p90_ns = Metrics.Hist.percentile hist 0.90;
    p99_ns = Metrics.Hist.percentile hist 0.99;
    max_ns = Metrics.Hist.max_value hist;
  }

let run_suite ?(schemes = [ "wfrc" ]) ?(backends = [ B.Sim; B.Native ])
    ?(threads_list = [ 1; 2; 4 ]) ?(ops = 50_000) ?(capacity = 4096) () =
  List.concat_map
    (fun scheme ->
      List.concat_map
        (fun threads ->
          List.map
            (fun backend ->
              run_point ~scheme ~backend ~threads ~ops ~capacity)
            backends)
        threads_list)
    schemes

(* JSON (hand-rolled: no JSON library in the build closure). All
   fields are numbers or plain [a-z_] strings, so no escaping is
   needed. *)

let json_of_point p =
  Printf.sprintf
    "    {\"scheme\": %S, \"backend\": %S, \"threads\": %d, \"ops\": %d, \
     \"wall_ns\": %d, \"ops_per_sec\": %.1f, \"mean_ns\": %.1f, \
     \"p50_ns\": %d, \"p90_ns\": %d, \"p99_ns\": %d, \"max_ns\": %d}"
    p.scheme (B.name p.backend) p.threads p.ops p.wall_ns p.ops_per_sec
    p.mean_ns p.p50_ns p.p90_ns p.p99_ns p.max_ns

let to_json points =
  String.concat "\n"
    ([ "{"; "  \"bench\": \"alloc_release_churn\","
     ; "  \"latency_unit\": \"ns_per_op\","; "  \"points\": [" ]
    @ [ String.concat ",\n" (List.map json_of_point points) ]
    @ [ "  ]"; "}"; "" ])

let write_json ~path points =
  let oc = open_out path in
  output_string oc (to_json points);
  close_out oc

let report points =
  {
    Experiments.id = "BENCH";
    title = "alloc/release churn: sim vs native backend";
    headers =
      [ "scheme"; "backend"; "threads"; "ops/s"; "p50"; "p90"; "p99" ];
    rows =
      List.map
        (fun p ->
          [
            p.scheme; B.name p.backend; string_of_int p.threads;
            Metrics.ops_to_string p.ops_per_sec;
            Metrics.ns_to_string p.p50_ns; Metrics.ns_to_string p.p90_ns;
            Metrics.ns_to_string p.p99_ns;
          ])
        points;
    notes =
      [
        "per-op latencies are batch-averaged (64 pairs per sample); \
         native drops the Schedpoint dispatch and pads hot words";
      ];
  }
