(* Machine-readable backend benchmark: the alloc/release churn loop
   (the managers' hottest path) timed per scheme × backend × thread
   count, with per-op latency percentiles.

   Per-op times are measured over batches of [batch_pairs] pairs.
   [Runner.now_ns] is monotonic with nanosecond resolution
   (CLOCK_MONOTONIC), but a single alloc/release pair runs in tens of
   nanoseconds — the same order as the clock read itself — so timing
   individual operations would mostly measure the timer. Each
   histogram sample is batch wall time divided by the batch size,
   recorded once per batch. *)

module B = Atomics.Backend
module Mm = Mm_intf

type point = {
  rev : string;         (* git revision the point was measured at *)
  scheme : string;
  backend : B.t;
  rep : B.rep;          (* cell representation (boxed / unboxed) *)
  threads : int;
  shards : int;         (* free-store stripes (1 = legacy list) *)
  batch : int;          (* allocation-cache batch size *)
  ops : int;            (* completed alloc+release pairs *)
  wall_ns : int;
  ops_per_sec : float;
  mean_ns : float;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  max_ns : int;
  neg_samples : int;    (* negative timer samples — 0 unless broken *)
}

let batch_pairs = 64

(* The current git revision (7-hex short form), so BENCH points from
   different commits can coexist in one file. Reads .git directly —
   no subprocess — and degrades to "unknown" outside a checkout. *)
let git_rev () =
  let read_line path =
    try
      let ic = open_in path in
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      Some (String.trim line)
    with Sys_error _ -> None
  in
  let resolve_ref r =
    match read_line (".git/" ^ r) with
    | Some sha when String.length sha >= 7 -> Some sha
    | _ -> (
        (* packed refs: lines of the form "<sha> <refname>" *)
        try
          let ic = open_in ".git/packed-refs" in
          let rec scan () =
            match input_line ic with
            | line ->
                if
                  String.length line > 41
                  && line.[0] <> '#'
                  && String.sub line 41 (String.length line - 41) = r
                then Some (String.sub line 0 40)
                else scan ()
            | exception End_of_file -> None
          in
          let res = scan () in
          close_in ic;
          res
        with Sys_error _ -> None)
  in
  let sha =
    match read_line ".git/HEAD" with
    | Some head when String.length head > 5 && String.sub head 0 5 = "ref: "
      ->
        resolve_ref (String.sub head 5 (String.length head - 5))
    | Some sha when String.length sha >= 7 -> Some sha
    | _ -> None
  in
  match sha with
  | Some sha when String.length sha >= 7 -> String.sub sha 0 7
  | _ -> "unknown"

let run_point ?spine ?rep ?(shards = 1) ?(batch = 1) ?(oracle = false) ~scheme
    ~backend ~threads ~ops ~capacity () =
  if oracle && (backend <> B.Sim || threads <> 1) then
    invalid_arg
      "Bench.run_point: the oracle point is Sim-only and single-threaded \
       (the detector is not domain-safe, and Native has no Schedpoint \
       dispatch to measure)";
  let cfg =
    Mm.config ~backend ?rep ~shards ~batch ~threads ~capacity ~num_links:1
      ~num_data:1 ~num_roots:0 ()
  in
  let mm = Registry.instantiate scheme cfg in
  (* Exact per-thread split: completed always equals requested. Full
     [batch_pairs]-sized batches plus one short trailing batch for the
     remainder (its histogram sample is averaged over its own size). *)
  let counts = Workload.split_ops ~threads ~ops in
  let done_ops = ops in
  let hists = Array.init threads (fun _ -> Metrics.Hist.create ()) in
  let run () =
    Runner.run ~threads (fun ~tid ->
        let h = hists.(tid) in
        let batch size =
          let t0 = Runner.now_ns () in
          for _ = 1 to size do
            Mm.enter_op mm ~tid;
            (try
               let p = Mm.alloc mm ~tid in
               Mm.release mm ~tid p;
               Mm.terminate mm ~tid p
             with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ());
            Mm.exit_op mm ~tid
          done;
          Metrics.Hist.add h ((Runner.now_ns () - t0) / size)
        in
        let n = counts.(tid) in
        for _ = 1 to n / batch_pairs do
          batch batch_pairs
        done;
        if n mod batch_pairs > 0 then batch (n mod batch_pairs))
  in
  (* The analysis-overhead point: the same loop with the full
     {!Analysis.Reclaim} oracle armed — every instrumented Sim access
     dispatches through the hit_at validator into the detector, every
     alloc/free crosses the Events listener. The delta against the
     plain Sim point is the whole cost of the analysis layer; Native
     rows are untouched by construction (the hook stays [ignore]
     there, so there is nothing to switch off). *)
  let run =
    if not oracle then run
    else fun () ->
      let det =
        Analysis.Reclaim.create ~arena:(Mm.arena mm) ~threads:1 ()
      in
      Atomics.Schedpoint.with_validator
        (fun ~addr kind -> Analysis.Reclaim.on_access det ~tid:0 ~addr kind)
        (fun () ->
          Mm.Events.with_listener
            (fun ~tid node lc -> Analysis.Reclaim.on_event det ~tid node lc)
            run)
  in
  let result =
    match spine with
    | None -> run ()
    | Some s -> Exp_support.Spine.wrap s mm run
  in
  let hist = Metrics.Hist.create () in
  Array.iter (fun h -> Metrics.Hist.merge_into hist h) hists;
  {
    rev = git_rev ();
    scheme = (if oracle then scheme ^ "+oracle" else scheme);
    backend;
    rep = cfg.Mm.rep;
    threads;
    shards;
    batch;
    ops = done_ops;
    wall_ns = result.Runner.wall_ns;
    ops_per_sec = Runner.throughput ~ops:done_ops result;
    mean_ns = Metrics.Hist.mean hist;
    p50_ns = Metrics.Hist.percentile hist 0.50;
    p90_ns = Metrics.Hist.percentile hist 0.90;
    p99_ns = Metrics.Hist.percentile hist 0.99;
    max_ns = Metrics.Hist.max_value hist;
    neg_samples = Metrics.Hist.negatives hist;
  }

let run_suite ?spine ?(schemes = [ "wfrc" ]) ?(backends = [ B.Sim; B.Native ])
    ?(threads_list = [ 1; 2; 4 ]) ?(ops = 50_000) ?(capacity = 4096) () =
  let base =
    List.concat_map
      (fun scheme ->
        List.concat_map
          (fun threads ->
            List.concat_map
              (fun backend ->
                (* Native runs under both cell representations so the
                   boxed/unboxed delta is always on record; Sim is
                   boxed by construction. *)
                let reps =
                  match backend with
                  | B.Sim -> [ B.Boxed ]
                  | B.Native -> [ B.Boxed; B.Unboxed ]
                in
                List.map
                  (fun rep ->
                    run_point ?spine ~scheme ~backend ~rep ~threads ~ops
                      ~capacity ())
                  reps)
              backends)
          threads_list)
      schemes
  in
  (* The sharded hot path: one extra Native point per scheme at the
     highest thread count, with the striped free store and the
     domain-local cache switched on. *)
  let sharded =
    if not (List.mem B.Native backends) then []
    else
      let threads = List.fold_left max 1 threads_list in
      List.map
        (fun scheme ->
          run_point ?spine ~scheme ~backend:B.Native
            ~shards:(min 4 capacity) ~batch:8 ~threads ~ops ~capacity ())
        schemes
  in
  (* The analysis-layer cost: one single-threaded Sim point per scheme
     with the Reclaim oracle armed, to set against the plain 1T Sim
     row. *)
  let oracle =
    if not (List.mem B.Sim backends) then []
    else
      List.map
        (fun scheme ->
          run_point ?spine ~oracle:true ~scheme ~backend:B.Sim ~threads:1
            ~ops ~capacity ())
        schemes
  in
  base @ sharded @ oracle

(* The actor-service point: the same point shape measured over
   Actor.Service send/receive traffic instead of raw alloc/release
   churn — every message is an enqueue (alloc + two CASes) against a
   registry lookup, so this is the managers' hot path as a real
   service drives it (E18's steady-state mix, minus spawn/retire
   churn so ops are comparable run to run). Keyed into the JSON as
   "<scheme>+actor". *)
let run_actor_point ?spine ?(threads = 4) ?(actors = 10_000)
    ?(ops = 200_000) ~scheme () =
  let rec pow2 p n = if p >= n then p else pow2 (2 * p) n in
  let buckets = pow2 1 (max 64 (actors / 8)) in
  let capacity =
    (2 * buckets) + 2 + (2 * actors) + max 4_096 (ops / 8)
  in
  let cfg =
    Actor.Service.mm_config ~backend:B.Native ~threads ~capacity
      ~max_actors:actors ~buckets ()
  in
  let mm = Registry.instantiate scheme cfg in
  let run () =
    let svc =
      Actor.Service.create mm ~max_actors:actors ~buckets ~seed:67_000 ~tid:0
    in
    let ids = Array.make actors (-1) in
    let counts = Workload.split_ops ~threads ~ops:actors in
    ignore
      (Runner.run ~threads (fun ~tid ->
           for _ = 1 to counts.(tid) do
             match Actor.Service.spawn svc ~tid with
             | Some id -> ids.(id mod actors) <- id
             | None -> ()
           done));
    let counts = Workload.split_ops ~threads ~ops in
    let hists = Array.init threads (fun _ -> Metrics.Hist.create ()) in
    let rngs =
      Workload.per_thread ~threads ~seed:67_001 (fun rng -> rng)
    in
    let result =
      Runner.run ~threads (fun ~tid ->
          let rng = rngs.(tid) and h = hists.(tid) in
          let batch size =
            let t0 = Runner.now_ns () in
            for _ = 1 to size do
              if Sched.Rng.int rng 100 < 60 then
                ignore
                  (Actor.Service.send svc ~tid
                     ~dst:(ids.(Sched.Rng.int rng actors))
                     (Sched.Rng.int rng 1_000_000))
              else
                let self = ids.(Sched.Rng.int rng actors) in
                let drained = ref 0 in
                while
                  !drained < 8 && Actor.Service.receive svc ~tid ~self <> None
                do
                  incr drained
                done
            done;
            Metrics.Hist.add h ((Runner.now_ns () - t0) / size)
          in
          let n = counts.(tid) in
          for _ = 1 to n / batch_pairs do
            batch batch_pairs
          done;
          if n mod batch_pairs > 0 then batch (n mod batch_pairs))
    in
    ignore (Actor.Service.teardown svc ~tid:0);
    let audit = Audit.run mm in
    if audit.Audit.leaked > 0 then
      Printf.eprintf "bench: actor point (%s): %d nodes leaked\n" scheme
        audit.Audit.leaked;
    (result, hists)
  in
  let result, hists =
    match spine with
    | None -> run ()
    | Some s -> Exp_support.Spine.wrap s mm run
  in
  let hist = Metrics.Hist.create () in
  Array.iter (fun h -> Metrics.Hist.merge_into hist h) hists;
  {
    rev = git_rev ();
    scheme = scheme ^ "+actor";
    backend = B.Native;
    rep = cfg.Mm.rep;
    threads;
    shards = cfg.Mm.shards;
    batch = cfg.Mm.batch;
    ops;
    wall_ns = result.Runner.wall_ns;
    ops_per_sec = Runner.throughput ~ops result;
    mean_ns = Metrics.Hist.mean hist;
    p50_ns = Metrics.Hist.percentile hist 0.50;
    p90_ns = Metrics.Hist.percentile hist 0.90;
    p99_ns = Metrics.Hist.percentile hist 0.99;
    max_ns = Metrics.Hist.max_value hist;
    neg_samples = Metrics.Hist.negatives hist;
  }

(* Legacy flat JSON for the point list (BENCH_wfrc.json, consumed by
   CI plots). All fields are numbers or plain [a-z_] strings, so no
   escaping is needed. The typed-report document is produced by
   {!Sink} from {!report} instead. *)

let json_of_point p =
  Printf.sprintf
    "    {\"rev\": %S, \"scheme\": %S, \"backend\": %S, \"rep\": %S, \
     \"threads\": %d, \"shards\": %d, \"batch\": %d, \"ops\": %d, \
     \"wall_ns\": %d, \"ops_per_sec\": %.1f, \"mean_ns\": %.1f, \
     \"p50_ns\": %d, \"p90_ns\": %d, \"p99_ns\": %d, \"max_ns\": %d, \
     \"neg_samples\": %d}"
    p.rev p.scheme (B.name p.backend) (B.rep_name p.rep) p.threads p.shards
    p.batch p.ops p.wall_ns p.ops_per_sec p.mean_ns p.p50_ns p.p90_ns
    p.p99_ns p.max_ns p.neg_samples

(* Identity of a point within the file: same (rev, scheme, backend,
   rep, threads, shards, batch) = same measurement, latest run wins.
   Works on the serialised line so foreign points (older formats,
   other writers) can be carried through untouched. *)
let line_field line name =
  match
    let pat = Printf.sprintf "\"%s\": " name in
    let plen = String.length pat in
    let rec find i =
      if i + plen > String.length line then None
      else if String.sub line i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    find 0
  with
  | None -> ""
  | Some start ->
      let stop = ref start in
      while
        !stop < String.length line
        && (match line.[!stop] with ',' | '}' -> false | _ -> true)
      do
        incr stop
      done;
      String.trim (String.sub line start (!stop - start))

let point_key_of_line line =
  List.map (line_field line)
    [ "rev"; "scheme"; "backend"; "rep"; "threads"; "shards"; "batch" ]

(* A point line from an older writer may predate one of the key
   fields (e.g. "rep" or "batch" before those knobs existed):
   [line_field] then returns "" and an exact key comparison would
   never match, so the stale line would survive every re-measure of
   the same configuration and duplicate it forever. An empty field in
   the existing line therefore matches any fresh value. *)
let key_matches ~old_key ~fresh_key =
  List.length old_key = List.length fresh_key
  && List.for_all2 (fun o f -> o = "" || o = f) old_key fresh_key

let to_json point_lines =
  String.concat "\n"
    ([ "{"; "  \"bench\": \"alloc_release_churn\","
     ; "  \"latency_unit\": \"ns_per_op\","; "  \"points\": [" ]
    @ [ String.concat ",\n" point_lines ]
    @ [ "  ]"; "}"; "" ])

(* Merge-write: BENCH_wfrc.json accumulates points across runs and
   revisions instead of being clobbered. Points already in the file
   survive unless the new run re-measured the same key. *)
let write_json ~path points =
  let fresh = List.map json_of_point points in
  let fresh_keys = List.map point_key_of_line fresh in
  let kept =
    if not (Sys.file_exists path) then []
    else begin
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      List.rev !lines
      |> List.filter_map (fun line ->
             let t = String.trim line in
             if String.length t > 1 && t.[0] = '{' && line_field line "scheme" <> ""
             then
               let line =
                 if t.[String.length t - 1] = ',' then
                   String.sub line 0 (String.rindex line ',')
                 else line
               in
               let old_key = point_key_of_line line in
               if
                 List.exists
                   (fun fresh_key -> key_matches ~old_key ~fresh_key)
                   fresh_keys
               then None
               else Some line
             else None)
    end
  in
  let oc = open_out path in
  output_string oc (to_json (kept @ fresh));
  close_out oc

let report ?(counters = []) points =
  let negs = List.fold_left (fun a p -> a + p.neg_samples) 0 points in
  Report.make ~id:"BENCH"
    ~title:"alloc/release churn: sim vs native backend"
    ~cols:
      [
        Report.dim "scheme";
        Report.dim "backend";
        Report.dim "rep";
        Report.dim "threads";
        Report.dim "shards";
        Report.dim "batch";
        Report.measure ~unit_:"ops/s" "ops/s";
        Report.measure ~unit_:"ns" "p50";
        Report.measure ~unit_:"ns" "p90";
        Report.measure ~unit_:"ns" "p99";
      ]
    ~counters
    ~notes:
      ([
         "per-op latencies are batch-averaged (64 pairs per sample); \
          native drops the Schedpoint dispatch and pads hot words";
         "shards/batch > 1 = sharded free store with domain-local caches";
         "<scheme>+oracle = the same Sim loop with the Analysis.Reclaim \
          detector armed (hit_at validator + Events listener): the delta \
          against the plain 1T Sim row bounds the analysis layer's cost; \
          Native rows carry no detector because the hook stays ignore \
          there";
       ]
      @
      if negs > 0 then
        [
          Printf.sprintf
            "WARNING: %d negative timer samples dropped — non-monotonic \
             clock?"
            negs;
        ]
      else [])
    (List.map
       (fun p ->
         [
           Report.Str p.scheme;
           Report.Str (B.name p.backend);
           Report.Str (B.rep_name p.rep);
           Report.Int p.threads;
           Report.Int p.shards;
           Report.Int p.batch;
           Report.Ops p.ops_per_sec;
           Report.Ns p.p50_ns;
           Report.Ns p.p90_ns;
           Report.Ns p.p99_ns;
         ])
       points)
