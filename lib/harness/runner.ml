(* Native parallel runner: one Domain per thread id, released together
   by a spin barrier so measurement windows line up.

   On this container there is a single hardware core, so "parallel"
   means OS-preemptive time slicing of the domains; contention,
   retries and helping still occur (see EXPERIMENTS.md for how results
   are interpreted under time slicing). *)

type result = {
  wall_ns : int;              (* barrier release to last join *)
  per_thread_ns : int array;  (* per-thread busy time *)
}

(* Monotonic, nanosecond-resolution (clock_gettime CLOCK_MONOTONIC via
   clock_stubs.c); immune to wall-clock steps, unlike the former
   gettimeofday-based timer whose effective granularity was 1 µs. *)
external now_ns : unit -> int = "wfrc_monotonic_ns" [@@noalloc]

let run ~threads body =
  if threads < 1 then invalid_arg "Runner.run";
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let per_thread_ns = Array.make threads 0 in
  let worker tid () =
    Atomic.incr ready;
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    let t0 = now_ns () in
    body ~tid;
    per_thread_ns.(tid) <- now_ns () - t0
  in
  let domains =
    Array.init (threads - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  (* tid 0 runs on the current domain. *)
  Atomic.incr ready;
  while Atomic.get ready < threads do
    Domain.cpu_relax ()
  done;
  let t0 = now_ns () in
  Atomic.set go true;
  let t0' = now_ns () in
  per_thread_ns.(0) <- 0;
  let s0 = now_ns () in
  body ~tid:0;
  per_thread_ns.(0) <- now_ns () - s0;
  Array.iter Domain.join domains;
  let wall = now_ns () - t0 in
  ignore t0';
  { wall_ns = wall; per_thread_ns }

(* Convenience: ops/second given a total operation count. *)
let throughput ~ops result =
  if result.wall_ns = 0 then infinity
  else float_of_int ops /. (float_of_int result.wall_ns /. 1e9)
