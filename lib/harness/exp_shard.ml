(* E14: the sharded native free store — alloc/free churn throughput
   and free-list CAS retries vs shard count × domain count.

   The shards = 1 row is the unsharded baseline — the legacy
   allocator the sharded store replaces (for lfrc the single stamped
   Treiber list, batch = 1, one head CAS per alloc and per free).
   Sharded rows (shards ≥ 2) run the striped store with the
   domain-local cache, so head CASes happen once per batch transfer,
   and at shards = threads each domain owns its home stripe outright
   and the heads see no cross-domain traffic at all. The free-list
   retry counters (Alloc_retry / Free_retry — failed head-CAS
   attempts, plus empty full passes on the alloc side) are the direct
   measure of that head contention; Steal and Free_remote count the
   cross-stripe traffic striping introduces.

   lfrc is the interesting subject: its legacy allocator is exactly
   that single Treiber list. wfrc rides along as a control — its 2N
   per-thread free-lists already shard the traffic (§3.1), so
   [shards] barely moves its rows.

   [max_burst] must exceed the cache capacity (2 × [batch]): a burst
   that fits in the cache is absorbed entirely by it and the stripe
   heads are never touched, which would make every sharded row look
   identical. With bursts of up to 4 × [batch], each burst forces
   batch-sized refills and spills through the heads.

   On a single-core host the retry counts are preemption-driven (a
   head CAS only fails if the OS switches domains inside the
   read→CAS window), so they sit orders of magnitude below a true
   multi-core run and scale with the fraction of runtime spent inside
   such windows: per-op head CASes (shards = 1) spend several times
   more time in windows than per-batch ones, and private stripes
   (shards = threads) eliminate cross-domain head traffic entirely —
   so the counters still order 1 > 2 > 4, which is the structural
   signal this experiment is after. [ops] defaults high to keep the
   counts well clear of noise. *)

module Mm = Mm_intf
module Value = Shmem.Value
open Exp_support

let churn mm ~threads ~ops ~max_burst ~seed =
  let counts = Workload.split_ops ~threads ~ops in
  let bursts =
    Workload.per_thread ~threads ~seed (fun rng -> rng)
    |> Array.mapi (fun tid rng ->
           Workload.churn_bursts ~rng ~n:counts.(tid) ~max_burst)
  in
  Runner.run ~threads (fun ~tid ->
      let held = Array.make max_burst Value.null in
      Array.iter
        (fun burst ->
          let got = ref 0 in
          (try
             for i = 0 to burst - 1 do
               held.(i) <- Mm.alloc mm ~tid;
               incr got
             done
           with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ());
          for i = 0 to !got - 1 do
            Mm.release mm ~tid held.(i)
          done)
        bursts.(tid))

let e14 ?(schemes = [ "lfrc"; "wfrc" ]) ?(shards_list = [ 1; 2; 4 ])
    ?(threads_list = [ 2; 4 ]) ?(ops = 2_400_000) ?(capacity = 1 lsl 13)
    ?(batch = 8) ?(max_burst = 32) ?(seed = 14_000) () =
  let spine = Spine.create () in
  let rows = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun threads ->
          List.iter
            (fun shards ->
              (* shards = 1 is the unsharded baseline: legacy list,
                 no cache. *)
              let batch = if shards = 1 then 1 else batch in
              let cfg =
                Mm.config ~backend:Atomics.Backend.Native ~shards ~batch
                  ~threads ~capacity ~num_links:1 ~num_data:1 ~num_roots:0 ()
              in
              let mm = Registry.instantiate scheme cfg in
              let row_spine = Spine.create () in
              let result =
                Spine.wrap row_spine mm (fun () ->
                    churn mm ~threads ~ops ~max_burst ~seed)
              in
              let allocs = Spine.total row_spine Alloc in
              Spine.merge_into spine row_spine;
              rows :=
                [
                  Report.Str scheme;
                  Report.Int threads;
                  Report.Int shards;
                  Report.Int batch;
                  Report.Ops (Runner.throughput ~ops:allocs result);
                  Report.Int (Spine.total row_spine Alloc_retry);
                  Report.Int (Spine.total row_spine Free_retry);
                  Report.Int (Spine.total row_spine Steal);
                  Report.Int (Spine.total row_spine Free_remote);
                ]
                :: !rows)
            shards_list)
        threads_list)
    schemes;
  Report.make ~id:"E14"
    ~title:
      "sharded free store: churn throughput and free-list CAS retries vs \
       shard count x domains (native)"
    ~cols:
      [
        Report.dim "scheme";
        Report.dim "threads";
        Report.dim "shards";
        Report.dim "batch";
        Report.measure ~unit_:"ops/s" "allocs/s";
        Report.measure ~unit_:"count" "aretry";
        Report.measure ~unit_:"count" "fretry";
        Report.measure ~unit_:"count" "steal";
        Report.measure ~unit_:"count" "remote";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed ~backend:Atomics.Backend.Native
         ~params:
           [
             ("ops", string_of_int ops);
             ("capacity", string_of_int capacity);
             ("batch", string_of_int batch);
             ("max_burst", string_of_int max_burst);
           ]
         ())
    ~notes:
      [
        "retries are failed free-list head CASes (+ empty alloc \
         passes); shards=1 is the unsharded baseline (legacy list, \
         batch=1, one head CAS per op), shards=threads gives each \
         domain a private stripe with batched transfers";
        "wfrc is a control: its 2N per-thread lists already shard the \
         free traffic, so the shards knob is inert there and its rows \
         stay flat";
        "single-core hosts show preemption-driven (small) retry counts; \
         the cross-shard ordering is the signal, not the magnitude";
      ]
    (List.rev !rows)

let specs =
  [
    Exp.spec ~id:"e14"
      ~descr:"sharded free store: churn retries vs shards x domains"
      (fun { Exp.quick } ->
        if quick then
          e14 ~schemes:[ "lfrc" ] ~threads_list:[ 2; 4 ] ~ops:400_000
            ~capacity:2048 ()
        else e14 ());
  ]
