/* Monotonic clock for the harness timers.

   CLOCK_MONOTONIC never jumps (NTP slews it but cannot step it), so
   interval measurements survive wall-clock adjustments that would
   corrupt a gettimeofday-based timer. The value is returned as
   nanoseconds since an arbitrary epoch (boot) in an OCaml immediate
   int: 63 bits of nanoseconds is ~292 years, so no boxing is needed
   and the primitive can be [@@noalloc]. */

#include <time.h>
#include <caml/mlvalues.h>

CAMLprim value wfrc_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
