(* Latency/step-count statistics.

   [Hist] is a log-bucketed histogram (16 sub-buckets per power of
   two): good for ns-scale latencies across nine orders of magnitude
   with bounded memory; exact min/max/mean ride along. Per-thread
   histograms are merged after a run, so recording is
   contention-free. *)

module Hist = struct
  let sub_bits = 4
  let subs = 1 lsl sub_bits
  let buckets = 63 * subs

  type t = {
    counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable min : int;
    mutable max : int;
    mutable negatives : int;
        (* negative samples seen: counted here, excluded from the
           distribution. A negative duration is always a measurement
           bug (e.g. a non-monotonic clock) — silently clamping it to
           0 would mask exactly that, so it is surfaced instead. *)
  }

  let create () =
    {
      counts = Array.make buckets 0;
      n = 0;
      sum = 0.0;
      min = max_int;
      max = 0;
      negatives = 0;
    }

  let log2_floor v =
    let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
    go v 0

  let bucket_of v =
    if v < subs then max v 0
    else begin
      let exp = log2_floor v in
      let sub = (v lsr (exp - sub_bits)) land (subs - 1) in
      (exp * subs) + sub
    end

  (* Upper bound of the values mapping to bucket [b]. *)
  let bucket_value b =
    if b < subs then b
    else begin
      let exp = b / subs and sub = b mod subs in
      ((subs + sub + 1) lsl (exp - sub_bits)) - 1
    end

  let add t v =
    if v < 0 then t.negatives <- t.negatives + 1
    else begin
      let b = bucket_of v in
      t.counts.(b) <- t.counts.(b) + 1;
      t.n <- t.n + 1;
      t.sum <- t.sum +. float_of_int v;
      if v < t.min then t.min <- v;
      if v > t.max then t.max <- v
    end

  let merge_into dst src =
    Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
    dst.n <- dst.n + src.n;
    dst.sum <- dst.sum +. src.sum;
    if src.min < dst.min then dst.min <- src.min;
    if src.max > dst.max then dst.max <- src.max;
    dst.negatives <- dst.negatives + src.negatives

  let count t = t.n
  let negatives t = t.negatives
  let max_value t = if t.n = 0 then 0 else t.max
  let min_value t = if t.n = 0 then 0 else t.min
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

  (* Approximate upper bound of the value at quantile [q] in [0, 1]. *)
  let percentile t q =
    if t.n = 0 then 0
    else begin
      let target =
        let x = int_of_float (ceil (q *. float_of_int t.n)) in
        if x < 1 then 1 else if x > t.n then t.n else x
      in
      let acc = ref 0 and res = ref t.max and found = ref false in
      for b = 0 to buckets - 1 do
        if not !found then begin
          acc := !acc + t.counts.(b);
          if !acc >= target then begin
            res := min (bucket_value b) t.max;
            found := true
          end
        end
      done;
      !res
    end
end

(* Pretty duration: ns with unit scaling. *)
let pp_ns ppf ns =
  if ns < 1_000 then Fmt.pf ppf "%dns" ns
  else if ns < 1_000_000 then Fmt.pf ppf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then Fmt.pf ppf "%.1fms" (float_of_int ns /. 1e6)
  else Fmt.pf ppf "%.2fs" (float_of_int ns /. 1e9)

let ns_to_string ns = Fmt.str "%a" pp_ns ns

(* Compact ops/s rendering for throughput tables. *)
let ops_to_string ops =
  if ops >= 1e6 then Printf.sprintf "%.2fM" (ops /. 1e6)
  else if ops >= 1e3 then Printf.sprintf "%.1fk" (ops /. 1e3)
  else Printf.sprintf "%.0f" ops
