(* Native chaos injection: interpret a [Sched.Fault] plan on real
   Domains. The Sim engine fires faults at scheduling points; Native
   code has none, so the countdown unit here is the manager's
   lifecycle events ([Mm_intf.Events]) — each Alloc/Free/Retire a
   thread emits ticks its budget down, and the fault fires at an
   emission, i.e. at a stub-crossing boundary in the middle of an
   operation fragment:

   - a Crash raises a private exception that nothing between the
     emission point and the worker body handles, so the victim
     abandons the operation with its announcements, hazards,
     reference counts and half-pushed nodes exactly as they were —
     the stopped-process model of the paper's §2. (Exception: lockrc
     funnels every operation through an unlock-on-exception wrapper,
     so a Native crash there cannot die holding the lock the way a
     Sim crash can.)
   - a Stall parks on a spot nobody ever wakes, with a timeout: the
     thread sleeps through the window mid-operation like a
     de-scheduled reader, then resumes as if nothing happened.

   The per-tid countdown arrays are only ever touched from their own
   thread (the emitting tid), so the interpreter needs no atomics. *)

module Fault = Sched.Fault
module Park = Atomics.Park

exception Crashed of int

type t = {
  threads : int;
  crash_in : int array;  (* events until crash; -1 = no crash planned *)
  stall_in : int array;  (* events until stall; -1 = none *)
  stall_ns : int array;
  crashed : bool array;  (* fault actually fired (victim was active) *)
  stalled : bool array;
  park : Park.t;         (* private spot: timed parks, never woken *)
}

let of_plan ?(ns_per_step = 1_000) ~threads plan =
  Fault.validate ~threads plan;
  let t =
    {
      threads;
      crash_in = Array.make threads (-1);
      stall_in = Array.make threads (-1);
      stall_ns = Array.make threads 0;
      crashed = Array.make threads false;
      stalled = Array.make threads false;
      park = Park.create ();
    }
  in
  List.iter
    (function
      | Fault.Crash { tid; at_step } -> t.crash_in.(tid) <- at_step
      | Fault.Stall { tid; from_step; duration } ->
          t.stall_in.(tid) <- from_step;
          t.stall_ns.(tid) <- duration * ns_per_step)
    plan;
  t

let crashed t =
  let acc = ref [] in
  for tid = t.threads - 1 downto 0 do
    if t.crashed.(tid) then acc := tid :: !acc
  done;
  !acc

let survivors t =
  let acc = ref [] in
  for tid = t.threads - 1 downto 0 do
    if not t.crashed.(tid) then acc := tid :: !acc
  done;
  !acc

let listener t ~tid (_ : Shmem.Value.ptr) (_ : Mm_intf.Events.lifecycle) =
  if tid >= 0 && tid < t.threads then begin
    (match t.stall_in.(tid) with
    | 0 ->
        t.stall_in.(tid) <- -1;
        t.stalled.(tid) <- true;
        let gen = Park.prepare t.park in
        Park.park t.park ~gen ~timeout_ns:t.stall_ns.(tid)
    | n when n > 0 -> t.stall_in.(tid) <- n - 1
    | _ -> ());
    match t.crash_in.(tid) with
    | 0 ->
        t.crash_in.(tid) <- -1;
        t.crashed.(tid) <- true;
        raise (Crashed tid)
    | n when n > 0 -> t.crash_in.(tid) <- n - 1
    | _ -> ()
  end

(* Run [body] on [threads] Domains with the plan armed. Each worker's
   crash is absorbed at the body boundary — everything below it is
   abandoned in place. Returns the Runner timing result; query
   {!crashed} afterwards for which victims actually fired (a plan
   countdown larger than the victim's event budget never fires). *)
let run t body =
  Mm_intf.Events.with_listener (listener t) @@ fun () ->
  Runner.run ~threads:t.threads (fun ~tid ->
      try body ~tid with Crashed id when id = tid -> ())
