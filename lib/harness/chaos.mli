(** Native fault injection: interprets a {!Sched.Fault} plan on real
    Domains, with the manager's lifecycle events
    ({!Mm_intf.Events}) as the countdown clock — a fault fires at a
    stub-crossing boundary mid-operation, not between operations.
    Crash victims abandon the operation in place (stopped-process
    model); stall victims sleep through a timed park nobody wakes,
    then resume. *)

type t

exception Crashed of int
(** Raised inside a victim at its crash point; absorbed by {!run} at
    the worker-body boundary. Nothing between the two handles it, so
    the victim's manager state is left exactly as the crash found
    it. *)

val of_plan : ?ns_per_step:int -> threads:int -> Sched.Fault.plan -> t
(** Compile a plan. [at_step]/[from_step] count the victim's own
    lifecycle events (0 = its first event); a Stall's [duration] is
    scaled by [ns_per_step] (default 1000, i.e. steps are µs) into
    the park timeout. Raises [Invalid_argument] on an ill-formed plan
    (via {!Sched.Fault.validate}). *)

val run : t -> (tid:int -> unit) -> Runner.result
(** Run one body per thread with the plan armed (installs the
    process-global {!Mm_intf.Events} listener for the duration).
    One-shot: a [t] tracks fired faults, so build a fresh one per
    run. *)

val crashed : t -> int list
(** Tids whose crash actually fired, ascending — a countdown larger
    than the victim's event budget never fires, so this can be a
    strict subset of the plan's victims. *)

val survivors : t -> int list
(** Complement of {!crashed}, ascending. *)
