(* Plain-text table rendering for the experiment reports (aligned
   ASCII for the console, CSV for post-processing). *)

let render ~headers ~rows =
  let cols = List.length headers in
  List.iter
    (fun r ->
      if List.length r <> cols then invalid_arg "Table.render: ragged row")
    rows;
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (List.iteri (fun i cell ->
         if String.length cell > widths.(i) then
           widths.(i) <- String.length cell))
    rows;
  let buf = Buffer.create 256 in
  let pad i s =
    let w = widths.(i) in
    let missing = w - String.length s in
    (* Right-align numeric-looking cells, left-align the rest. *)
    let numeric =
      s <> ""
      && String.for_all
           (fun c ->
             (c >= '0' && c <= '9')
             || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'x'
             || c = 'k' || c = 'M' || c = '%' || c = 'n' || c = 'u'
             || c = 'm' || c = 's')
           s
      && s.[0] >= '0' && s.[0] <= '9'
      || (String.length s > 1 && s.[0] = '-' && s.[1] >= '0' && s.[1] <= '9')
    in
    if numeric then String.make missing ' ' ^ s else s ^ String.make missing ' '
  in
  let emit_row cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_string buf " |\n"
  in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  sep ();
  emit_row headers;
  sep ();
  List.iter emit_row rows;
  sep ();
  Buffer.contents buf

(* RFC 4180: a cell containing a comma, quote, CR or LF is wrapped in
   quotes, with embedded quotes doubled. *)
let csv ~headers ~rows =
  let quote s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
    then "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let line cells = String.concat "," (List.map quote cells) in
  String.concat "\n" (line headers :: List.map line rows) ^ "\n"
