(* Shared machinery for the experiment family modules: arena layouts,
   canonical workers, the survivor-drain protocol of the fault
   experiments, and the instrumentation spine — one bracketing
   combinator that captures Atomics.Counters deltas for every report
   instead of each experiment hand-reading counters. *)

module Mm = Mm_intf
module Rng = Sched.Rng
module Value = Shmem.Value
module Counters = Atomics.Counters

(* ------------------------------------------------------------------ *)
(* Instrumentation spine.                                             *)
(* ------------------------------------------------------------------ *)

(* Accumulates counter-event deltas across the (many) manager
   instances an experiment creates — one instance per sweep cell or
   per seeded run. [bracket] snapshots totals around a section and
   adds the differences; the result lands verbatim in
   [Report.counters], so every report uniformly carries the scheme's
   CAS/FAA/SWAP counts, help events and alloc/free traffic. *)
module Spine = struct
  type t = (Counters.event, int) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let add t ev n =
    if n <> 0 then
      Hashtbl.replace t ev (n + Option.value ~default:0 (Hashtbl.find_opt t ev))

  let bracket t ctr f =
    let before =
      List.map (fun ev -> (ev, Counters.total ctr ev)) Counters.all_events
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun (ev, b) -> add t ev (Counters.total ctr ev - b)) before)
      f

  (* Bracket over a manager instance's counter block. *)
  let wrap t mm f = bracket t (Mm.counters mm) f

  (* Fold a freshly-created-and-finished instance's totals in without
     bracketing (for runs driven inside Sched.Explore, where the
     instance is born and dies inside the sweep callback). *)
  let absorb t ctr =
    List.iter (fun (ev, n) -> add t ev n) (Counters.snapshot ctr)

  let total t ev = Option.value ~default:0 (Hashtbl.find_opt t ev)

  let merge_into dst src = Hashtbl.iter (fun ev n -> add dst ev n) src

  (* Non-zero totals in event-declaration order, ready for
     [Report.make ~counters]. *)
  let totals t =
    List.filter_map
      (fun ev ->
        match Hashtbl.find_opt t ev with
        | None | Some 0 -> None
        | Some n -> Some (Counters.event_name ev, n))
      Counters.all_events
end

(* ------------------------------------------------------------------ *)
(* Layouts. Each experiment states its backend explicitly: [Native]   *)
(* for the Domain-parallel throughput/latency runs (driven by         *)
(* [Runner.run], where no deterministic scheduler is installed and    *)
(* hook-free padded cells measure the real machine), [Sim] wherever   *)
(* [Sched.Engine] or [Sched.Explore] drives the interleaving — those  *)
(* threads only yield at scheduling points, so a [Native] manager     *)
(* would never hand control back.                                     *)
(* ------------------------------------------------------------------ *)

let pq_layout ~backend ~threads ~capacity =
  Mm.config ~backend ~threads ~capacity ~num_links:6 ~num_data:3 ~num_roots:1
    ()

let list_layout ~backend ~threads ~capacity =
  Mm.config ~backend ~threads ~capacity ~num_links:1 ~num_data:1 ~num_roots:4
    ()

(* ------------------------------------------------------------------ *)
(* Canonical workers.                                                 *)
(* ------------------------------------------------------------------ *)

let pq_worker pq ~tid ops =
  Array.iter
    (fun op ->
      match op with
      | Workload.Produce k -> (
          try Structures.Pqueue.insert pq ~tid (k + 1) tid
          with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ())
      | Workload.Consume -> ignore (Structures.Pqueue.delete_min pq ~tid))
    ops

(* The E1/E5 bench bed: a prefilled skiplist priority queue plus
   per-thread 50/50 operation streams. *)
let pq_setup ~scheme ~threads ~ops ~capacity ~key_range ~seed =
  let cfg = pq_layout ~backend:Atomics.Backend.Native ~threads ~capacity in
  let mm = Registry.instantiate scheme cfg in
  let pq = Structures.Pqueue.create mm ~seed ~tid:0 in
  (* Prefill to steady state. *)
  let rng = Rng.create (seed + 1) in
  for _ = 1 to capacity / 8 do
    Structures.Pqueue.insert pq ~tid:0 (1 + Rng.int rng key_range) 0
  done;
  let counts = Workload.split_ops ~threads ~ops in
  let streams =
    Workload.per_thread ~threads ~seed:(seed + 2) (fun rng -> rng)
    |> Array.mapi (fun tid rng ->
           Workload.mixed ~rng ~n:counts.(tid) ~produce_pct:50 ~key_range)
  in
  (mm, pq, streams, ops)

(* One root-churn operation (E12/E13): allocate, CAS into the root,
   retire the displaced node — and also retire the fresh node when the
   CAS fails, so HP/EBR do not leak on the failure path and every node
   the auditor finds stranded is stranded by the crash alone. *)
let churn_op mm ~root ~oom ~tid =
  Mm.enter_op mm ~tid;
  (match Mm.alloc mm ~tid with
  | b ->
      let old = Mm.deref mm ~tid root in
      let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
      if not (Value.is_null old) then begin
        Mm.release mm ~tid old;
        if ok then Mm.terminate mm ~tid old
      end;
      if not ok then Mm.terminate mm ~tid b;
      Mm.release mm ~tid b
  | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> oom := true);
  Mm.exit_op mm ~tid

(* Post-run drain: give every survivor a few empty operation brackets
   (EBR epoch advances/collections, nothing for the others), then for
   RC schemes one alloc/release round to pull in any annAlloc
   donation parked for a survivor (A4). *)
let drain_survivors mm ~survivors =
  List.iter
    (fun tid ->
      for _ = 1 to 8 do
        Mm.enter_op mm ~tid;
        Mm.exit_op mm ~tid
      done)
    survivors;
  if Mm.refcounted mm then
    List.iter
      (fun tid ->
        match Mm.alloc mm ~tid with
        | p -> Mm.release mm ~tid p
        | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ())
      survivors

(* Churn throughput/retry for a Gc variant — shared by the A2/A3
   ablations. *)
let churn_gc gc ~threads ~ops ~max_burst ~seed =
  let counts = Workload.split_ops ~threads ~ops in
  let bursts =
    Workload.per_thread ~threads ~seed (fun rng -> rng)
    |> Array.mapi (fun tid rng ->
           Workload.churn_bursts ~rng ~n:counts.(tid) ~max_burst)
  in
  let result =
    Runner.run ~threads (fun ~tid ->
        let held = Array.make max_burst Value.null in
        Array.iter
          (fun burst ->
            let got = ref 0 in
            (try
               for i = 0 to burst - 1 do
                 held.(i) <- Wfrc.Gc.alloc gc ~tid;
                 incr got
               done
             with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ());
            for i = 0 to !got - 1 do
              Wfrc.Gc.release gc ~tid held.(i)
            done)
          bursts.(tid))
  in
  let ctr = Wfrc.Gc.counters gc in
  let allocs = Counters.total ctr Alloc in
  let per1k ev =
    if allocs = 0 then 0.0
    else
      1000.0 *. float_of_int (Counters.total ctr ev) /. float_of_int allocs
  in
  (Runner.throughput ~ops:allocs result, per1k Alloc_retry, per1k Free_retry)
