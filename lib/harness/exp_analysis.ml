(* A4 — the reclamation-safety detector sweep. Two halves:

   1. every manager is swept (bounded-exhaustive) over two small
      contended programs with the {!Analysis.Reclaim} oracle armed —
      the clean half, certifying the schemes against rules R1–R3 over
      the whole schedule space at this scope;
   2. three seeded protocol mutations (the classic HP validation
      skip, a double release, a dropped release) are swept the same
      way — the non-vacuity half, showing the detector actually fires
      and reports a replayable schedule.

   Deterministic: exploration is DFS or seed-indexed policy sweeps,
   so the whole table is a function of [seed]. *)

module Mm = Mm_intf
module Arena = Shmem.Arena
module Value = Shmem.Value
module C = Atomics.Counters
module Reclaim = Analysis.Reclaim
open Exp_support

(* ---- the two clean programs (same shapes as test/t_analysis.ml) -- *)

(* Private-node churn: alloc, touch, release, terminate — exercises
   alloc/free ordering (R2/R3) through the free store. *)
let churn_factory scheme () =
  let cfg =
    Mm.config ~threads:2 ~capacity:8 ~num_links:1 ~num_data:1 ~num_roots:1 ()
  in
  let mm = Registry.instantiate scheme cfg in
  let arena = Mm.arena mm in
  ( arena,
    fun () ->
      let body tid =
        Mm.enter_op mm ~tid;
        let a = Mm.alloc mm ~tid in
        Arena.write_data arena a 0 (100 + tid);
        ignore (Arena.read_data arena a 0);
        Mm.release mm ~tid a;
        Mm.terminate mm ~tid a;
        Mm.exit_op mm ~tid
      in
      (body, fun () -> Mm.validate mm) )

(* One contended root link: winner unlinks and reclaims the old node
   while the loser may still hold a reference — rules R1/R2. *)
let contend_factory scheme () =
  let cfg =
    Mm.config ~threads:2 ~capacity:8 ~num_links:1 ~num_data:1 ~num_roots:1 ()
  in
  let mm = Registry.instantiate scheme cfg in
  let arena = Mm.arena mm in
  ( arena,
    fun () ->
      let root = Arena.root_addr arena 0 in
      let x = Mm.alloc mm ~tid:0 in
      Arena.write_data arena x 0 99;
      Mm.store_link mm ~tid:0 root x;
      Mm.release mm ~tid:0 x;
      let body tid =
        Mm.enter_op mm ~tid;
        let a = Mm.alloc mm ~tid in
        Arena.write_data arena a 0 (10 + tid);
        let old = Mm.deref mm ~tid root in
        if Mm.cas_link mm ~tid root ~old ~nw:a then begin
          if not (Value.is_null old) then Mm.terminate mm ~tid old
        end
        else Mm.terminate mm ~tid a;
        if not (Value.is_null old) then Mm.release mm ~tid old;
        Mm.release mm ~tid a;
        Mm.exit_op mm ~tid
      in
      let check () =
        Mm.enter_op mm ~tid:0;
        let w = Mm.deref mm ~tid:0 root in
        Mm.store_link mm ~tid:0 root Value.null;
        if not (Value.is_null w) then begin
          Mm.terminate mm ~tid:0 w;
          Mm.release mm ~tid:0 w
        end;
        Mm.exit_op mm ~tid:0;
        Mm.validate mm
      in
      (body, check) )

(* ---- the three seeded mutations ---------------------------------- *)

(* HP with hazard revalidation disabled: the slot is published but
   the link is never re-read. Needs the reader parked across a whole
   retirement scan, so it is hunted with a biased sweep starving the
   reader thread. *)
let hp_factory mutated () =
  let cfg =
    Mm.config ~threads:2 ~capacity:16 ~num_links:1 ~num_data:1 ~num_roots:1 ()
  in
  let h = Hazard.create cfg in
  if mutated then Hazard.unsafe_skip_validation h;
  let arena = Hazard.arena h in
  ( arena,
    fun () ->
      let root = Arena.root_addr arena 0 in
      let x0 = Hazard.alloc h ~tid:0 in
      Arena.write_data arena x0 0 1;
      Hazard.store_link h ~tid:0 root x0;
      Hazard.release h ~tid:0 x0;
      let body tid =
        if tid = 0 then
          for _ = 1 to 10 do
            let w = Hazard.deref h ~tid root in
            if not (Value.is_null w) then begin
              ignore (Arena.read_data arena (Value.unmark w) 0);
              Hazard.release h ~tid w
            end
          done
        else
          for i = 1 to 8 do
            let n = Hazard.alloc h ~tid in
            Arena.write_data arena n 0 (i + 1);
            let old = Hazard.deref h ~tid root in
            if Hazard.cas_link h ~tid root ~old ~nw:n then begin
              if not (Value.is_null old) then Hazard.terminate h ~tid old
            end;
            if not (Value.is_null old) then Hazard.release h ~tid old;
            Hazard.release h ~tid n
          done
      in
      (body, fun () -> ()) )

(* wfrc client releasing the same reference twice: the node is
   reclaimed while the root still links it (premature free). *)
let overrelease_factory extra () =
  let cfg =
    Mm.config ~threads:2 ~capacity:8 ~num_links:1 ~num_data:1 ~num_roots:1 ()
  in
  let mm = Registry.instantiate "wfrc" cfg in
  let arena = Mm.arena mm in
  ( arena,
    fun () ->
      let root = Arena.root_addr arena 0 in
      let x = Mm.alloc mm ~tid:0 in
      Arena.write_data arena x 0 5;
      Mm.store_link mm ~tid:0 root x;
      Mm.release mm ~tid:0 x;
      let body tid =
        if tid = 0 then begin
          let v = Mm.deref mm ~tid root in
          if not (Value.is_null v) then begin
            Mm.release mm ~tid v;
            if extra then Mm.release mm ~tid v
          end
        end
        else begin
          let w = Mm.deref mm ~tid root in
          if not (Value.is_null w) then begin
            ignore (Arena.read_data arena (Value.unmark w) 0);
            Mm.release mm ~tid w
          end
        end
      in
      (body, fun () -> ()) )

(* wfrc client dropping a release: the node stays LIVE forever. *)
let leak_factory dropped () =
  let cfg =
    Mm.config ~threads:2 ~capacity:8 ~num_links:1 ~num_data:1 ~num_roots:1 ()
  in
  let mm = Registry.instantiate "wfrc" cfg in
  let arena = Mm.arena mm in
  ( arena,
    fun () ->
      let body tid =
        Mm.enter_op mm ~tid;
        let a = Mm.alloc mm ~tid in
        Arena.write_data arena a 0 tid;
        (* the mutated sink drops the reference on the floor: a
           lint-visible hand-off, so wfrc_lint stays clean on this
           tree while the runtime oracle still sees the leak *)
        let sink = if dropped then fun _ -> () else fun p -> Mm.release mm ~tid p in
        sink a;
        Mm.exit_op mm ~tid
      in
      (body, fun () -> ()) )

(* ---- result classification --------------------------------------- *)

let rule_names =
  [
    "use-after-free"; "unordered access"; "double-free"; "corrupt allocation";
    "unordered allocation"; "bad retire"; "leak";
  ]

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let classify (r : Sched.Explore.result) =
  match r.failure with
  | None -> (Report.Str "clean", Report.Str "-", Report.Str "-")
  | Some f ->
      let msg = Printexc.to_string f.Sched.Explore.exn in
      let rule =
        match List.find_opt (contains msg) rule_names with
        | Some r -> r
        | None -> "other"
      in
      ( Report.Str "CAUGHT",
        Report.Str (string_of_int (Array.length f.Sched.Explore.schedule)),
        Report.Str rule )

(* ---- the experiment ---------------------------------------------- *)

let a4 ?(schemes = Registry.names) ?(churn_schedules = 1_500)
    ?(contend_schedules = 1_000) ?(hunt_runs = 200) ?(seed = 51_000) () =
  let spine = Spine.create () in
  let rows = ref [] in
  let sweep ~scheme ~program ~mutation ?(expect_all_free = false) ~explore
      factory =
    let ctr = C.create ~threads:2 () in
    let r =
      Reclaim.with_oracle (fun () ->
          explore
            (Reclaim.instrument ~counters:ctr ~expect_all_free ~threads:2
               factory))
    in
    Spine.absorb spine ctr;
    let verdict, at, rule = classify r in
    rows :=
      [
        Report.Str scheme;
        Report.Str program;
        Report.Str mutation;
        Report.Int r.Sched.Explore.schedules_run;
        Report.Int (C.total ctr C.Read + C.total ctr C.Write
                   + C.total ctr C.Cas_attempt + C.total ctr C.Faa
                   + C.total ctr C.Swap);
        verdict;
        at;
        rule;
      ]
      :: !rows
  in
  (* clean half: every scheme, both programs, expect quiescent-free *)
  List.iter
    (fun scheme ->
      sweep ~scheme ~program:"churn" ~mutation:"none" ~expect_all_free:true
        ~explore:(Sched.Explore.exhaustive ~max_schedules:churn_schedules
                    ~threads:2)
        (churn_factory scheme);
      sweep ~scheme ~program:"contend" ~mutation:"none" ~expect_all_free:true
        ~explore:(Sched.Explore.exhaustive ~max_schedules:contend_schedules
                    ~threads:2)
        (contend_factory scheme))
    schemes;
  (* non-vacuity half: control + seeded mutation, three bug classes *)
  let starved i =
    Sched.Policy.biased ~seed:(seed + 7_000 + i) ~victim:0 ~weight:24
  in
  List.iter
    (fun mutated ->
      sweep ~scheme:"hp"
        ~program:"hp-starved-reader"
        ~mutation:(if mutated then "skip-validation" else "none")
        ~explore:(Sched.Explore.policy_sweep ~threads:2 ~runs:hunt_runs
                    ~policy:starved)
        (hp_factory mutated))
    [ false; true ];
  List.iter
    (fun extra ->
      sweep ~scheme:"wfrc" ~program:"root-handoff"
        ~mutation:(if extra then "double-release" else "none")
        ~explore:(Sched.Explore.exhaustive ~max_schedules:400 ~threads:2)
        (overrelease_factory extra))
    [ false; true ];
  List.iter
    (fun dropped ->
      sweep ~scheme:"wfrc" ~program:"alloc-only"
        ~mutation:(if dropped then "dropped-release" else "none")
        ~expect_all_free:true
        ~explore:(Sched.Explore.exhaustive ~max_schedules:60 ~threads:2)
        (leak_factory dropped))
    [ false; true ];
  Report.make ~id:"A4"
    ~title:
      "reclamation-safety detector sweep: all schemes clean under the \
       oracle, every seeded protocol mutation caught with a replayable \
       schedule"
    ~cols:
      [
        Report.dim "scheme";
        Report.dim "program";
        Report.dim "mutation";
        Report.measure ~unit_:"schedules" "explored";
        Report.measure ~unit_:"accesses" "instrumented";
        Report.measure "verdict";
        Report.measure ~unit_:"steps" "trace-len";
        Report.measure "rule";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed
         ~params:
           [
             ("churn_schedules", string_of_int churn_schedules);
             ("contend_schedules", string_of_int contend_schedules);
             ("hunt_runs", string_of_int hunt_runs);
           ]
         ())
    ~notes:
      [
        "clean half: bounded-exhaustive DFS over two 2-thread programs \
         with the Analysis.Reclaim oracle armed (R1 use-after-free, R2 \
         HB-unordered access/allocation, R3 double-free/bad-retire) \
         plus the quiescent leak check — every scheme must come out \
         clean over the whole schedule space at this scope";
        "mutation half: each seeded bug is paired with its clean \
         control; CAUGHT rows report the rule that fired and the length \
         of the deterministic choice trace (replayable with \
         Explore.replay)";
        "the skip-validation hunt uses a biased policy that starves the \
         reader (weight 24 against tid 0): the HP race needs the reader \
         parked across a whole retirement scan, which uniform random \
         or shallow DFS essentially never does";
        "instrumented = arena accesses tallied by the detector through \
         the Schedpoint counters hook, accumulated over every schedule \
         in the sweep";
      ]
    (List.rev !rows)

let specs =
  [
    Exp.spec ~id:"a4"
      ~descr:"detector sweep: schemes clean, seeded mutations caught"
      (fun { Exp.quick } ->
        if quick then
          a4 ~churn_schedules:300 ~contend_schedules:200 ~hunt_runs:120 ()
        else a4 ());
  ]
