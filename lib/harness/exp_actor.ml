(* E18: the million-mailbox actor service — the ROADMAP's end-to-end
   "millions of users" scenario. Every actor owns a Michael–Scott
   queue as its MPSC mailbox, the registry is the lock-free hash map,
   and the skiplist timer wheel drives ttl retirement — all drawing
   nodes from ONE manager, so the service's spawn/send/receive/retire
   churn IS the memory-scheme workload (Actor.Service).

   Four legs share one report:

     service  Native sweep, scheme x threads: pre-spawn [actors],
              then heavy mixed traffic (spawn/retire/send/receive/
              tick) with send latency sampled per-op; quiescent
              teardown must audit clean (leaked = 0).
     chaos    Native, real Domains: Chaos crashes one thread mid-send
              at a lifecycle-event boundary; survivors drain, the
              service tears down (adopting zombie mailboxes), and
              Recovery.run must reclaim the victim's stranded nodes
              with nothing leaked — bounded loss at service scale.
     sim      deterministic-scheduler miniature of the same protocol
              (Sched.Fault crash mid-traffic), with virtual-time ttl
              timers; audited + recovered like the chaos leg.
     million  full runs only: >= 1M actors on the native backend,
              send/receive traffic, wave retirement driven through
              the Pqueue timer wheel (one cohort timer per wave, not
              one per actor), registry-degradation probe, audit.

   Send targets come from a published-id table indexed by slot: a
   sender reads the latest published id for a random slot and fires;
   if that actor retired meanwhile the send is a counted drop — the
   service's graceful path, not an error. *)

module Mm = Mm_intf
module Rng = Sched.Rng
module B = Atomics.Backend
module Service = Actor.Service
module Timer = Actor.Timer
open Exp_support

(* Per-thread bag of ids this thread spawned and still believes live
   (retire may have raced a ttl timer; stale ids are harmless). *)
module Bag = struct
  type t = { mutable buf : int array; mutable len : int }

  let create () = { buf = Array.make 64 0; len = 0 }

  let push b id =
    if b.len = Array.length b.buf then begin
      let nb = Array.make (2 * b.len) 0 in
      Array.blit b.buf 0 nb 0 b.len;
      b.buf <- nb
    end;
    b.buf.(b.len) <- id;
    b.len <- b.len + 1

  let pop b =
    if b.len = 0 then None
    else begin
      b.len <- b.len - 1;
      Some b.buf.(b.len)
    end
end

let pow2_ceil n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

(* Capacity for a service of [actors] slots and [buckets] registry
   buckets: bucket + wheel sentinels, one mailbox sentinel and one
   registry node per live actor, plus headroom for in-flight messages
   and armed timers. *)
let svc_capacity ~actors ~buckets ~headroom =
  (2 * buckets) + 2 + (2 * actors) + headroom

(* One mixed-traffic worker: 6% spawn (a quarter with a ttl, including
   the occasional max_int timeout that must saturate, not die), 6%
   retire (own spawns only — the bag), 2% timer tick, 48% send
   (latency-sampled when [hist] is given), the rest receive-and-drain
   on a random published actor (any thread may run any actor). The
   receive share is what keeps the in-flight message population — and
   so the allocator — in steady state; sends to ids retired meanwhile
   are counted drops. *)
let traffic svc ~tid ~rng ~n ~published ~max_actors ?hist ~clock () =
  let bag = Bag.create () in
  let has_wheel = Service.wheel svc <> None in
  for _ = 1 to n do
    let r = Rng.int rng 100 in
    if r < 6 then begin
      let deadline =
        if has_wheel && Rng.int rng 4 = 0 then
          let timeout_ns =
            if Rng.int rng 8 = 0 then max_int
            else 1 lsl (10 + Rng.int rng 20)
          in
          Some (Timer.deadline ~now_ns:(clock ()) ~timeout_ns)
        else None
      in
      match Service.spawn ?deadline svc ~tid with
      | Some id ->
          Atomic.set published.(id mod max_actors) id;
          Bag.push bag id
      | None -> ()
    end
    else if r < 12 then (
      match Bag.pop bag with
      | Some id -> ignore (Service.retire svc ~tid id)
      | None -> ())
    else if r < 14 then ignore (Service.tick svc ~tid ~now:(clock ()))
    else if r < 62 then begin
      let dst = Atomic.get published.(Rng.int rng max_actors) in
      if dst >= 0 then
        match hist with
        | Some h ->
            let t0 = Runner.now_ns () in
            ignore (Service.send svc ~tid ~dst (Rng.int rng 1_000_000));
            Metrics.Hist.add h (Runner.now_ns () - t0)
        | None -> ignore (Service.send svc ~tid ~dst (Rng.int rng 1_000_000))
    end
    else begin
      let self = Atomic.get published.(Rng.int rng max_actors) in
      if self >= 0 then begin
        let drained = ref 0 in
        while
          !drained < 8 && Service.receive svc ~tid ~self <> None
        do
          incr drained
        done
      end
    end
  done

(* Pre-spawn [count] actors striped across threads (each thread's
   free-slot list serves its share), publishing every id. Legs with
   spawn/retire churn pre-spawn only a fraction of the slots, so the
   churn has free slots to work with. *)
let spawn_phase svc ~threads ~count ~actors ~published ~ids_by_slot =
  let counts = Workload.split_ops ~threads ~ops:count in
  Runner.run ~threads (fun ~tid ->
      for _ = 1 to counts.(tid) do
        match Service.spawn svc ~tid with
        | Some id ->
            let slot = id mod actors in
            ids_by_slot.(slot) <- id;
            Atomic.set published.(slot) id
        | None -> ()
      done)

let audit_cell ok = Report.Str (if ok then "ok" else "FAIL")

(* ------------------------------------------------------------------ *)
(* service leg: Native sweep, scheme x threads.                       *)
(* ------------------------------------------------------------------ *)

let service_leg spine ~scheme ~threads ~actors ~ops ~seed =
  let buckets = pow2_ceil (max 64 (actors / 8)) in
  let capacity =
    svc_capacity ~actors ~buckets ~headroom:(max 4_096 (ops / 8))
  in
  let cfg =
    Service.mm_config ~backend:B.Native ~threads ~capacity ~max_actors:actors
      ~buckets ()
  in
  let mm = Registry.instantiate scheme cfg in
  Spine.wrap spine mm @@ fun () ->
  let svc = Service.create mm ~max_actors:actors ~buckets ~seed ~tid:0 in
  let published = Array.init actors (fun _ -> Atomic.make (-1)) in
  let ids_by_slot = Array.make actors (-1) in
  let prespawn = max 1 (actors * 3 / 5) in
  let spawn_res =
    spawn_phase svc ~threads ~count:prespawn ~actors ~published ~ids_by_slot
  in
  let counts = Workload.split_ops ~threads ~ops in
  let hists = Array.init threads (fun _ -> Metrics.Hist.create ()) in
  let rngs = Workload.per_thread ~threads ~seed:(seed + 1) (fun rng -> rng) in
  let result =
    Runner.run ~threads (fun ~tid ->
        traffic svc ~tid ~rng:rngs.(tid) ~n:counts.(tid) ~published
          ~max_actors:actors ~hist:hists.(tid) ~clock:Runner.now_ns ())
  in
  (* Flush per-thread residue (deferred decrement buffers, epoch
     advances) before the audit — the workers are gone. *)
  drain_survivors mm ~survivors:(List.init threads Fun.id);
  let probe = Service.probe svc ~tid:0 in
  let t = Service.totals svc in
  let discarded = Service.teardown svc ~tid:0 in
  let audit = Audit.run mm in
  let h = Metrics.Hist.create () in
  Array.iter (fun h' -> Metrics.Hist.merge_into h h') hists;
  [
    Report.Str scheme;
    Report.Str "service";
    Report.Int threads;
    Report.Int actors;
    Report.Ops (Runner.throughput ~ops:prespawn spawn_res);
    Report.Ops (Runner.throughput ~ops result);
    Report.Ns (Metrics.Hist.percentile h 0.50);
    Report.Ns (Metrics.Hist.percentile h 0.99);
    Report.Int probe.Structures.Hmap.max_chain;
    Report.Float probe.Structures.Hmap.load;
    Report.Int t.Service.zombied;
    Report.Int (t.Service.send_drop + t.Service.spawn_fail);
    Report.Int (discarded + t.Service.discarded);
    Report.Int 0;
    Report.Pct 100.;
    Report.Int audit.Audit.leaked;
    audit_cell (Audit.ok audit);
  ]

(* ------------------------------------------------------------------ *)
(* chaos leg: crash one thread mid-send on real Domains, recover.     *)
(* ------------------------------------------------------------------ *)

let chaos_leg spine ~scheme ~seeds ~threads ~actors ~ops ~seed:_ =
  let victim = threads - 1 in
  let buckets = pow2_ceil (max 32 (actors / 8)) in
  let capacity =
    svc_capacity ~actors ~buckets ~headroom:(max 2_048 (ops / 8))
  in
  let runs = ref 0
  and skipped = ref 0
  and held_pre = ref 0
  and held_post = ref 0
  and leaked = ref 0
  and pct_min = ref max_int
  and zombied = ref 0
  and drops = ref 0
  and discarded = ref 0
  and audited = ref 0
  and audits_ok = ref 0
  and msgs = ref 0.
  and chain = ref 0
  and load = ref 0. in
  for s = 0 to seeds - 1 do
    incr runs;
    let cfg =
      Service.mm_config ~backend:B.Native ~threads ~capacity
        ~max_actors:actors ~buckets ()
    in
    let mm = Registry.instantiate scheme cfg in
    Spine.wrap spine mm @@ fun () ->
    let svc =
      Service.create mm ~max_actors:actors ~buckets ~seed:(71_000 + s) ~tid:0
    in
    let published = Array.init actors (fun _ -> Atomic.make (-1)) in
    let ids_by_slot = Array.make actors (-1) in
    ignore
      (spawn_phase svc ~threads
         ~count:(max 1 (actors * 3 / 5))
         ~actors ~published ~ids_by_slot);
    let plan =
      [ Sched.Fault.crash ~tid:victim ~at_step:(60 + (37 * s)) ]
    in
    let chaos = Chaos.of_plan ~threads plan in
    let counts = Workload.split_ops ~threads ~ops in
    let rngs =
      Workload.per_thread ~threads ~seed:(72_000 + s) (fun rng -> rng)
    in
    let result =
      Chaos.run chaos (fun ~tid ->
          traffic svc ~tid ~rng:rngs.(tid) ~n:counts.(tid) ~published
            ~max_actors:actors ~clock:Runner.now_ns ())
    in
    msgs := max !msgs (Runner.throughput ~ops result);
    let probe = Service.probe svc ~tid:0 in
    chain := max !chain probe.Structures.Hmap.max_chain;
    load := max !load probe.Structures.Hmap.load;
    match Chaos.crashed chaos with
    | [] -> incr skipped
    | dead ->
        let by = List.hd (Chaos.survivors chaos) in
        drain_survivors mm ~survivors:(Chaos.survivors chaos);
        let disc = Service.teardown svc ~tid:by in
        let t = Service.totals svc in
        zombied := !zombied + t.Service.zombied;
        drops := !drops + t.Service.send_drop;
        discarded := !discarded + disc + t.Service.discarded;
        let o = Recovery.run ~dead ~by mm in
        held_pre := max !held_pre o.Recovery.pre.Audit.crash_held;
        held_post := max !held_post o.Recovery.post.Audit.crash_held;
        leaked := max !leaked o.Recovery.post.Audit.leaked;
        let pct =
          if o.Recovery.pre.Audit.crash_held = 0 then 100
          else
            100 * o.Recovery.post.Audit.recovered
            / o.Recovery.pre.Audit.crash_held
        in
        pct_min := min !pct_min pct;
        incr audited;
        if Audit.ok o.Recovery.post then incr audits_ok
  done;
  [
    Report.Str scheme;
    Report.Str "chaos";
    Report.Int threads;
    Report.Int actors;
    Report.Ops 0.;
    Report.Ops !msgs;
    Report.Ns 0;
    Report.Ns 0;
    Report.Int !chain;
    Report.Float !load;
    Report.Int !zombied;
    Report.Int !drops;
    Report.Int !discarded;
    Report.Int !held_pre;
    Report.Pct (if !pct_min = max_int then 100. else float_of_int !pct_min);
    Report.Int !leaked;
    Report.Str
      (if !audited = 0 then "n/a"
       else if !audits_ok = !audited then "ok"
       else Printf.sprintf "FAIL(%d/%d)" !audits_ok !audited);
  ]

(* ------------------------------------------------------------------ *)
(* sim leg: the same protocol, miniature, on the deterministic        *)
(* scheduler with virtual-time ttl timers.                            *)
(* ------------------------------------------------------------------ *)

let sim_leg spine ~scheme ~seeds ~seed =
  let threads = 3 and actors = 12 and ops = 50 in
  let victim = threads - 1 in
  let buckets = 16 in
  let capacity = svc_capacity ~actors ~buckets ~headroom:256 in
  let runs = ref 0
  and skipped = ref 0
  and held_pre = ref 0
  and leaked = ref 0
  and pct_min = ref max_int
  and zombied = ref 0
  and drops = ref 0
  and audited = ref 0
  and audits_ok = ref 0 in
  for s = 0 to seeds - 1 do
    incr runs;
    let cfg =
      Service.mm_config ~backend:B.Sim ~threads ~capacity ~max_actors:actors
        ~buckets ()
    in
    let mm = Registry.instantiate scheme cfg in
    Spine.wrap spine mm @@ fun () ->
    let svc =
      Service.create mm ~max_actors:actors ~buckets ~seed:(seed + s) ~tid:0
    in
    let published = Array.init actors (fun _ -> Atomic.make (-1)) in
    let vclock = ref 0 in
    let clock () =
      incr vclock;
      !vclock
    in
    let rngs =
      Workload.per_thread ~threads ~seed:(seed + (s * 13) + 1) (fun rng ->
          rng)
    in
    let body tid =
      (* The victim churns forever, so the crash always fires (or the
         run hits the step cap and is skipped) — the E12 protocol. *)
      let n = if tid = victim then max_int else ops in
      traffic svc ~tid ~rng:rngs.(tid) ~n ~published ~max_actors:actors
        ~clock ()
    in
    let rng = Rng.create (seed + (s * 17) + 2) in
    let faults =
      [ Sched.Fault.crash ~tid:victim ~at_step:(200 + Rng.int rng 400) ]
    in
    let policy = Sched.Policy.random ~seed:(seed + (s * 7) + 3) in
    match
      Sched.Engine.run ~max_steps:600_000 ~faults ~threads ~policy body
    with
    | _ ->
        let survivors =
          List.filter (fun t -> t <> victim) (List.init threads Fun.id)
        in
        drain_survivors mm ~survivors;
        let disc = Service.teardown svc ~tid:0 in
        ignore disc;
        let t = Service.totals svc in
        zombied := !zombied + t.Service.zombied;
        drops := !drops + t.Service.send_drop;
        let o = Recovery.run ~dead:[ victim ] ~by:0 mm in
        held_pre := max !held_pre o.Recovery.pre.Audit.crash_held;
        leaked := max !leaked o.Recovery.post.Audit.leaked;
        let pct =
          if o.Recovery.pre.Audit.crash_held = 0 then 100
          else
            100 * o.Recovery.post.Audit.recovered
            / o.Recovery.pre.Audit.crash_held
        in
        pct_min := min !pct_min pct;
        incr audited;
        if Audit.ok o.Recovery.post then incr audits_ok
    | exception Sched.Engine.Out_of_steps -> incr skipped
  done;
  [
    Report.Str scheme;
    Report.Str "sim";
    Report.Int threads;
    Report.Int actors;
    Report.Ops 0.;
    Report.Ops 0.;
    Report.Ns 0;
    Report.Ns 0;
    Report.Int 0;
    Report.Float 0.;
    Report.Int !zombied;
    Report.Int !drops;
    Report.Int 0;
    Report.Int !held_pre;
    Report.Pct (if !pct_min = max_int then 100. else float_of_int !pct_min);
    Report.Int !leaked;
    Report.Str
      (if !audited = 0 then "n/a"
       else if !audits_ok = !audited then "ok"
       else Printf.sprintf "FAIL(%d/%d)" !audits_ok !audited);
  ]

(* ------------------------------------------------------------------ *)
(* million leg: >= 1M actors, wave retirement through the timer       *)
(* wheel (one cohort timer per wave — the wheel at its real job,      *)
(* without a million timer nodes).                                    *)
(* ------------------------------------------------------------------ *)

let million_leg spine ~scheme ~threads ~actors ~traffic_ops ~waves ~seed =
  let buckets = 1 lsl 17 in
  let capacity = svc_capacity ~actors ~buckets ~headroom:(1 lsl 19) in
  let cfg =
    Service.mm_config ~backend:B.Native ~shards:4 ~batch:32 ~threads
      ~capacity ~max_actors:actors ~buckets ()
  in
  let mm = Registry.instantiate scheme cfg in
  Spine.wrap spine mm @@ fun () ->
  let svc = Service.create mm ~max_actors:actors ~buckets ~seed ~tid:0 in
  let published = Array.init actors (fun _ -> Atomic.make (-1)) in
  let ids_by_slot = Array.make actors (-1) in
  let spawn_res =
    spawn_phase svc ~threads ~count:actors ~actors ~published ~ids_by_slot
  in
  (* One cohort timer per wave; wave w owns slots congruent to w. *)
  (match Service.wheel svc with
  | Some w ->
      for wv = 0 to waves - 1 do
        Timer.schedule w ~tid:0 ~deadline:wv wv
      done
  | None -> ());
  (* Send/receive-only traffic: ids are stable, so senders target the
     spawn-time id table directly. *)
  let counts = Workload.split_ops ~threads ~ops:traffic_ops in
  let hists = Array.init threads (fun _ -> Metrics.Hist.create ()) in
  let rngs = Workload.per_thread ~threads ~seed:(seed + 1) (fun rng -> rng) in
  let result =
    Runner.run ~threads (fun ~tid ->
        let rng = rngs.(tid) and h = hists.(tid) in
        for _ = 1 to counts.(tid) do
          if Rng.int rng 100 < 60 then begin
            let dst = ids_by_slot.(Rng.int rng actors) in
            let t0 = Runner.now_ns () in
            ignore (Service.send svc ~tid ~dst (Rng.int rng 1_000_000));
            Metrics.Hist.add h (Runner.now_ns () - t0)
          end
          else
            let self = ids_by_slot.(Rng.int rng actors) in
            let drained = ref 0 in
            while
              !drained < 8 && Service.receive svc ~tid ~self <> None
            do
              incr drained
            done
        done)
  in
  let probe = Service.probe svc ~tid:0 in
  (* Retirement driven by the wheel: pop each due wave, retire its
     cohort. *)
  let t0 = Runner.now_ns () in
  let retired = ref 0 in
  (match Service.wheel svc with
  | Some w ->
      let rec drive () =
        match Timer.due w ~tid:0 ~now:waves with
        | None -> ()
        | Some (_, wv) ->
            let slot = ref wv in
            while !slot < actors do
              if Service.retire svc ~tid:0 ids_by_slot.(!slot) then
                incr retired;
              slot := !slot + waves
            done;
            drive ()
      in
      drive ()
  | None ->
      for slot = 0 to actors - 1 do
        if Service.retire svc ~tid:0 ids_by_slot.(slot) then incr retired
      done);
  let retire_ns = Runner.now_ns () - t0 in
  let t = Service.totals svc in
  let discarded = Service.teardown svc ~tid:0 in
  let audit = Audit.run mm in
  let h = Metrics.Hist.create () in
  Array.iter (fun h' -> Metrics.Hist.merge_into h h') hists;
  [
    Report.Str scheme;
    Report.Str
      (Printf.sprintf "million(ret %.2gM/s)"
         (float_of_int !retired /. (float_of_int (max 1 retire_ns) /. 1e9)
         /. 1e6));
    Report.Int threads;
    Report.Int actors;
    Report.Ops (Runner.throughput ~ops:actors spawn_res);
    Report.Ops (Runner.throughput ~ops:traffic_ops result);
    Report.Ns (Metrics.Hist.percentile h 0.50);
    Report.Ns (Metrics.Hist.percentile h 0.99);
    Report.Int probe.Structures.Hmap.max_chain;
    Report.Float probe.Structures.Hmap.load;
    Report.Int t.Service.zombied;
    Report.Int (t.Service.send_drop + t.Service.spawn_fail);
    Report.Int (discarded + t.Service.discarded);
    Report.Int 0;
    Report.Pct 100.;
    Report.Int audit.Audit.leaked;
    audit_cell (Audit.ok audit);
  ]

(* ------------------------------------------------------------------ *)

let e18 ?(schemes = Registry.names) ?(threads_list = [ 2; 4 ])
    ?(actors = 10_000) ?(ops = 200_000) ?(chaos_seeds = 2)
    ?(chaos_threads = 4) ?(chaos_actors = 512) ?(chaos_ops = 24_000)
    ?(sim_seeds = 2) ?(million_actors = 1_000_000)
    ?(million_traffic = 2_000_000) ?(waves = 64)
    ?(million_schemes = [ "wfrc" ]) ?(seed = 61_000) () =
  let spine = Spine.create () in
  let rows = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun threads ->
          rows :=
            service_leg spine ~scheme ~threads ~actors ~ops ~seed :: !rows)
        threads_list;
      rows :=
        chaos_leg spine ~scheme ~seeds:chaos_seeds ~threads:chaos_threads
          ~actors:chaos_actors ~ops:chaos_ops ~seed
        :: !rows;
      rows := sim_leg spine ~scheme ~seeds:sim_seeds ~seed :: !rows)
    schemes;
  List.iter
    (fun scheme ->
      rows :=
        million_leg spine ~scheme ~threads:4 ~actors:million_actors
          ~traffic_ops:million_traffic ~waves ~seed
        :: !rows)
    million_schemes;
  Report.make ~id:"E18"
    ~title:
      (Printf.sprintf
         "actor service: mailbox runtime on the WFRC structures (%d-actor \
          sweep, chaos crash-mid-send, %s)"
         actors
         (match million_schemes with
         | [] -> "million leg off"
         | _ -> Printf.sprintf "%d-actor million leg" million_actors))
    ~cols:
      [
        Report.dim "scheme";
        Report.dim "leg";
        Report.dim "threads";
        Report.dim "actors";
        Report.measure ~unit_:"ops/s" "spawn/s";
        Report.measure ~unit_:"ops/s" "traffic/s";
        Report.measure ~unit_:"ns" "send p50";
        Report.measure ~unit_:"ns" "send p99";
        Report.measure ~unit_:"nodes" "chain(max)";
        Report.measure "load";
        Report.measure ~unit_:"slots" "zombied";
        Report.measure ~unit_:"msgs" "drops";
        Report.measure ~unit_:"msgs" "discarded";
        Report.measure ~unit_:"nodes" "crash_held(pre)";
        Report.measure ~unit_:"%" "recovered(min)";
        Report.measure ~unit_:"nodes" "leaked";
        Report.measure "audit";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed ~backend:B.Native
         ~params:
           [
             ("actors", string_of_int actors);
             ("ops", string_of_int ops);
             ("chaos_seeds", string_of_int chaos_seeds);
             ("sim_seeds", string_of_int sim_seeds);
             ( "million_actors",
               match million_schemes with
               | [] -> "0"
               | _ -> string_of_int million_actors );
           ]
         ())
    ~notes:
      [
        "service leg: traffic/s counts mixed ops (6% spawn, 6% retire, 2% \
         tick, 48% send, 38% receive-drain); send p50/p99 are per-op \
         latencies; teardown must audit clean (leaked = 0)";
        "chain(max)/load: the registry-degradation probe (Hmap.probe) — \
         the bucket count is fixed at create, so a chain far above the \
         load factor means hash clumping and load far above ~4 means the \
         map was undersized (see hmap.mli)";
        "drops: sends to already-retired ids (counted, never \
         use-after-free) plus allocator-exhausted sends/spawns; \
         discarded: undelivered messages destroyed with their mailbox";
        "zombied: slots whose retire found senders still in the guard \
         window (e.g. crashed there) — parked, then adopted at teardown; \
         the chaos/sim legs rely on this for crash-mid-send custody";
        "chaos leg: one thread crashes mid-send at a lifecycle-event \
         boundary (Chaos); after teardown, Recovery.run must return the \
         stranded nodes — recovered(min) is the worst-case share of \
         pre-recovery crash_held reclaimed, audit requires leaked = 0";
        "sim leg: the same protocol on the deterministic scheduler with \
         virtual-time ttl timers (spawn ?deadline / tick)";
        "timers need reference counting (the skiplist wheel — the \
         paper's §1 gap): hp/ebr run the service without ttl/cohort \
         timers; the million leg's wave retirement walks slots directly \
         there";
        "million leg: spawn/s covers the pre-spawn of every actor; \
         retirement is driven by one cohort timer per wave through the \
         Pqueue wheel (rate shown in the leg label)";
      ]
    (List.rev !rows)

let specs =
  [
    Exp.spec ~id:"e18"
      ~descr:"actor service: million mailboxes over one manager (+chaos)"
      (fun { Exp.quick } ->
        if quick then
          e18
            ~schemes:[ "wfrc"; "hp"; "wfrc_deferred" ]
            ~threads_list:[ 2 ] ~ops:60_000 ~chaos_seeds:1 ~chaos_threads:3
            ~chaos_actors:256 ~chaos_ops:8_000 ~sim_seeds:1
            ~million_schemes:[] ()
        else e18 ());
  ]
