(* E15: native scaling sweep — alloc/release churn throughput across
   cell representation × domain count × free-store configuration.

   The boxed rows are PR-1's padded [int Atomic.t] arena; the unboxed
   rows are the raw word store (one C stub crossing per protocol
   fragment, no per-cell box, no GC card traffic). The legacy rows
   (shards = 1) run the paper's allocator verbatim; the sharded rows
   add the striped free store with domain-local caches. Park_wait /
   Park_wake count the futex-parked backoff path — zero in a pure
   churn loop unless a domain actually drains a stripe and blocks,
   which is itself a signal worth recording.

   On a single-core host the multi-domain rows time-share one core, so
   absolute throughput *decreases* with domains regardless of the
   memory layer; the structural signal there is the boxed→unboxed
   delta within each row and the sharded rows' recovery at 4 domains.
   On real multi-core hardware the unboxed+sharded curve is the one
   the CI scaling gate (bench --check-scaling) enforces to be
   non-inverting. *)

module Mm = Mm_intf
module B = Atomics.Backend
open Exp_support

let churn mm ~threads ~ops =
  let counts = Workload.split_ops ~threads ~ops in
  Runner.run ~threads (fun ~tid ->
      for _ = 1 to counts.(tid) do
        try
          let p = Mm.alloc mm ~tid in
          Mm.release mm ~tid p;
          Mm.terminate mm ~tid p
        with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ()
      done)

let e15 ?(schemes = [ "wfrc" ]) ?(reps = [ B.Boxed; B.Unboxed ])
    ?(threads_list = [ 1; 2; 4 ]) ?(ops = 2_000_000) ?(capacity = 1 lsl 13)
    ?(shards = 4) ?(batch = 8) () =
  let spine = Spine.create () in
  let rows = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun rep ->
          List.iter
            (fun threads ->
              List.iter
                (fun sharded ->
                  let shards = if sharded then shards else 1 in
                  let batch = if sharded then batch else 1 in
                  let cfg =
                    Mm.config ~backend:B.Native ~rep ~shards ~batch ~threads
                      ~capacity ~num_links:1 ~num_data:1 ~num_roots:0 ()
                  in
                  let mm = Registry.instantiate scheme cfg in
                  let row_spine = Spine.create () in
                  let result =
                    Spine.wrap row_spine mm (fun () ->
                        churn mm ~threads ~ops)
                  in
                  let pairs = Spine.total row_spine Alloc in
                  Spine.merge_into spine row_spine;
                  rows :=
                    [
                      Report.Str scheme;
                      Report.Str (B.rep_name rep);
                      Report.Int threads;
                      Report.Int shards;
                      Report.Int batch;
                      Report.Ops (Runner.throughput ~ops:pairs result);
                      Report.Int (Spine.total row_spine Alloc_retry);
                      Report.Int (Spine.total row_spine Park_wait);
                      Report.Int (Spine.total row_spine Park_wake);
                    ]
                    :: !rows)
                [ false; true ])
            threads_list)
        reps)
    schemes;
  Report.make ~id:"E15"
    ~title:
      "native scaling sweep: churn throughput vs cell representation x \
       domains x free store"
    ~cols:
      [
        Report.dim "scheme";
        Report.dim "rep";
        Report.dim "threads";
        Report.dim "shards";
        Report.dim "batch";
        Report.measure ~unit_:"ops/s" "pairs/s";
        Report.measure ~unit_:"count" "aretry";
        Report.measure ~unit_:"count" "park";
        Report.measure ~unit_:"count" "wake";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~backend:B.Native
         ~params:
           [
             ("ops", string_of_int ops);
             ("capacity", string_of_int capacity);
             ("shards", string_of_int shards);
             ("batch", string_of_int batch);
           ]
         ())
    ~notes:
      [
        "boxed = padded int Atomic.t arena; unboxed = raw word store \
         driven by fused __atomic stubs (see DESIGN.md §6)";
        "shards=1/batch=1 is the paper's allocator verbatim; sharded \
         rows add the striped free store with domain-local caches";
        "on a single-core host multi-domain rows time-share the core \
         and absolute throughput drops with domains; the in-row \
         boxed->unboxed delta is the portable signal (the CI scaling \
         gate runs on multi-core runners)";
      ]
    (List.rev !rows)

let specs =
  [
    Exp.spec ~id:"e15"
      ~descr:"native scaling: churn vs representation x domains"
      (fun { Exp.quick } ->
        if quick then
          e15 ~threads_list:[ 1; 2 ] ~ops:200_000 ~capacity:2048 ()
        else e15 ());
  ]
