(* Crash-tolerance classification and the ablation family: E10 (the
   non-blocking hierarchy, demonstrated), A1 (deref step bound vs N),
   A2 (FreeNode placement heuristic), A3 (allocation helping on/off). *)

module Mm = Mm_intf
module Rng = Sched.Rng
module Value = Shmem.Value
open Exp_support

(* ------------------------------------------------------------------ *)
(* E10: crash tolerance — the non-blocking hierarchy, demonstrated.   *)
(* A third thread crashes (is never scheduled again) at a random      *)
(* point; two workers must still finish their operations.             *)
(*   wait-free / lock-free schemes: workers always complete;          *)
(*   EBR: workers complete ops but allocation starves (the crashed    *)
(*        thread pins the epoch) -> "degraded";                       *)
(*   lockrc: the crash can happen inside the critical section ->      *)
(*        workers spin forever -> "stalled".                          *)
(* ------------------------------------------------------------------ *)

let e10 ?(schemes = Registry.names) ?(runs = 40) ?(ops = 20) ?(seed = 41_000)
    () =
  let spine = Spine.create () in
  let rows =
    List.map
      (fun scheme ->
        let completed = ref 0 and degraded = ref 0 and stalled = ref 0 in
        for r = 0 to runs - 1 do
          let cfg =
            Mm.config ~threads:3 ~capacity:24 ~num_links:1 ~num_data:1
              ~num_roots:1 ()
          in
          let mm = Registry.instantiate scheme cfg in
          Spine.wrap spine mm @@ fun () ->
          let arena = Mm.arena mm in
          let root = Shmem.Arena.root_addr arena 0 in
          let a = Mm.alloc mm ~tid:0 in
          Mm.store_link mm ~tid:0 root a;
          Mm.release mm ~tid:0 a;
          let oom_seen = ref false in
          let one_op mm ~tid =
            Mm.enter_op mm ~tid;
            (match Mm.alloc mm ~tid with
            | b ->
                let old = Mm.deref mm ~tid root in
                let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
                if not (Value.is_null old) then begin
                  Mm.release mm ~tid old;
                  if ok then Mm.terminate mm ~tid old
                end;
                Mm.release mm ~tid b
            | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> oom_seen := true);
            Mm.exit_op mm ~tid
          in
          let body tid =
            if tid = 2 then
              (* the future crash victim churns forever *)
              while true do
                one_op mm ~tid
              done
            else
              for _ = 1 to ops do
                one_op mm ~tid;
                Mm.enter_op mm ~tid;
                let p = Mm.deref mm ~tid root in
                if not (Value.is_null p) then Mm.release mm ~tid p;
                Mm.exit_op mm ~tid
              done
          in
          let rng = Rng.create (seed + r) in
          let crash_at = 20 + Rng.int rng 150 in
          let policy =
            Sched.Policy.crashed ~dead:[ 2 ] ~after:crash_at
              (Sched.Policy.random ~seed:(seed + (r * 7)))
          in
          match
            Sched.Engine.run ~max_steps:300_000 ~quorum:[ 0; 1 ] ~threads:3
              ~policy body
          with
          | _ -> if !oom_seen then incr degraded else incr completed
          | exception Sched.Engine.Out_of_steps -> incr stalled
        done;
        [
          Report.Str scheme;
          Report.Int !completed;
          Report.Int !degraded;
          Report.Int !stalled;
        ])
      schemes
  in
  Report.make ~id:"E10"
    ~title:
      (Printf.sprintf
         "crash tolerance: a peer crashes mid-operation; do %d-op workers \
          finish? (%d runs)"
         ops runs)
    ~cols:
      [
        Report.dim "scheme";
        Report.measure ~unit_:"runs" "completed";
        Report.measure ~unit_:"runs" "degraded(OOM)";
        Report.measure ~unit_:"runs" "stalled";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed
         ~params:
           [ ("runs", string_of_int runs); ("ops", string_of_int ops) ]
         ())
    ~notes:
      [
        "non-blocking schemes complete regardless of where the peer \
         dies (for wfrc even a helper crashed inside H4..H8 only \
         retires one announcement slot — the pool has N of them)";
        "ebr: the crashed thread pins the epoch, so reclamation stops \
         and allocation starves";
        "lockrc: a crash inside the critical section stalls everyone — \
         the §1 argument against mutual exclusion";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablations.                                                         *)
(* ------------------------------------------------------------------ *)

(* E-A1: deref step bound vs thread count (the D1 slot scan and the
   helping scan are both O(N); the bound must grow linearly, not
   explode). *)
let a1 ?(threads_list = [ 2; 4; 8; 16 ]) ?(seeds = 15) ?(seed = 29_000) () =
  let spine = Spine.create () in
  let rows =
    List.map
      (fun threads ->
        let worst = ref 0 in
        for s = 0 to seeds - 1 do
          let cfg =
            Mm.config ~threads ~capacity:(4 * threads) ~num_links:1
              ~num_data:1 ~num_roots:1 ()
          in
          let mm = Registry.instantiate "wfrc" cfg in
          Spine.wrap spine mm @@ fun () ->
          let arena = Mm.arena mm in
          let root = Shmem.Arena.root_addr arena 0 in
          let a = Mm.alloc mm ~tid:0 in
          Mm.store_link mm ~tid:0 root a;
          Mm.release mm ~tid:0 a;
          let body tid =
            if tid = threads - 1 then begin
              (* one updater creates helping traffic *)
              for _ = 1 to 2 do
                let b = Mm.alloc mm ~tid in
                let rec flip () =
                  let old = Mm.deref mm ~tid root in
                  let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
                  if not (Value.is_null old) then Mm.release mm ~tid old;
                  if not ok then flip ()
                in
                flip ();
                Mm.release mm ~tid b
              done
            end
            else begin
              let p = Mm.deref mm ~tid root in
              if not (Value.is_null p) then Mm.release mm ~tid p
            end
          in
          let policy = Sched.Policy.random ~seed:(seed + s) in
          let outcome = Sched.Engine.run ~threads ~policy body in
          for tid = 0 to threads - 2 do
            if outcome.steps.(tid) > !worst then worst := outcome.steps.(tid)
          done
        done;
        [ Report.Int threads; Report.Int !worst ])
      threads_list
  in
  Report.make ~id:"E-A1"
    ~title:"WFRC deref step bound vs thread count (announcement scans)"
    ~cols:
      [ Report.dim "threads"; Report.measure ~unit_:"steps" "max reader steps" ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed ~params:[ ("seeds", string_of_int seeds) ] ())
    ~notes:
      [ "the wait-free bound is O(N) in the thread count, by design (D1/H1)" ]
    rows

let a2 ?(threads_list = [ 2; 4; 8 ]) ?(ops = 40_000) ?(capacity = 4096)
    ?(seed = 31_000) () =
  let spine = Spine.create () in
  let rows = ref [] in
  List.iter
    (fun threads ->
      List.iter
        (fun (label, placement) ->
          let cfg =
            list_layout ~backend:Atomics.Backend.Native ~threads ~capacity
          in
          let gc = Wfrc.Gc.create ~placement cfg in
          let tput, ar, fr =
            Spine.bracket spine (Wfrc.Gc.counters gc) (fun () ->
                churn_gc gc ~threads ~ops ~max_burst:8 ~seed)
          in
          rows :=
            [
              Report.Int threads;
              Report.Str label;
              Report.Ops tput;
              Report.Float ar;
              Report.Float fr;
            ]
            :: !rows)
        [ ("paper(F5-F6)", `Paper); ("own-index", `Own_index) ])
    threads_list;
  Report.make ~id:"E-A2"
    ~title:"FreeNode placement heuristic ablation (alloc/free churn)"
    ~cols:
      [
        Report.dim "threads";
        Report.dim "placement";
        Report.measure ~unit_:"ops/s" "allocs/s";
        Report.measure ~unit_:"per_1k_allocs" "aretry/1k";
        Report.measure ~unit_:"per_1k_allocs" "fretry/1k";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed ~backend:Atomics.Backend.Native
         ~params:
           [ ("ops", string_of_int ops); ("capacity", string_of_int capacity) ]
         ())
    ~notes:
      [
        "F5-F6 steers frees away from the list allocators are hitting \
         (Lemma 10's conflict-avoidance argument)";
      ]
    (List.rev !rows)

let a3 ?(threads_list = [ 2; 4; 8 ]) ?(ops = 40_000) ?(capacity = 4096)
    ?(seed = 37_000) () =
  let spine = Spine.create () in
  let rows = ref [] in
  List.iter
    (fun threads ->
      List.iter
        (fun (label, help_alloc) ->
          let cfg =
            list_layout ~backend:Atomics.Backend.Native ~threads ~capacity
          in
          let gc = Wfrc.Gc.create ~help_alloc cfg in
          let tput, ar, fr =
            Spine.bracket spine (Wfrc.Gc.counters gc) (fun () ->
                churn_gc gc ~threads ~ops ~max_burst:8 ~seed)
          in
          let ctr = Wfrc.Gc.counters gc in
          let helped = Atomics.Counters.total ctr Alloc_helped in
          rows :=
            [
              Report.Int threads;
              Report.Str label;
              Report.Ops tput;
              Report.Float ar;
              Report.Float fr;
              Report.Int helped;
            ]
            :: !rows)
        [ ("help-on(wait-free)", true); ("help-off(lock-free)", false) ])
    threads_list;
  Report.make ~id:"E-A3"
    ~title:"allocation-helping ablation (A11-A15/F3 on vs off)"
    ~cols:
      [
        Report.dim "threads";
        Report.dim "variant";
        Report.measure ~unit_:"ops/s" "allocs/s";
        Report.measure ~unit_:"per_1k_allocs" "aretry/1k";
        Report.measure ~unit_:"per_1k_allocs" "fretry/1k";
        Report.measure "helped";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed ~backend:Atomics.Backend.Native
         ~params:
           [ ("ops", string_of_int ops); ("capacity", string_of_int capacity) ]
         ())
    ~notes:
      [
        "with helping off, AllocNode can starve (lock-free only); \
         average throughput is similar — the paper's point that \
         wait-freedom costs little on average";
      ]
    (List.rev !rows)

let specs =
  [
    Exp.spec ~id:"e10"
      ~descr:"crash tolerance: blocking vs non-blocking (§1)"
      (fun { Exp.quick } -> if quick then e10 ~runs:12 ~ops:10 () else e10 ());
    Exp.spec ~id:"a1" ~descr:"ablation: deref step bound vs thread count"
      (fun { Exp.quick } ->
        if quick then a1 ~threads_list:[ 2; 4 ] ~seeds:5 () else a1 ());
    Exp.spec ~id:"a2" ~descr:"ablation: FreeNode placement heuristic (F5-F6)"
      (fun { Exp.quick } ->
        if quick then a2 ~threads_list:[ 2 ] ~ops:8_000 ~capacity:1024 ()
        else a2 ());
    Exp.spec ~id:"a3" ~descr:"ablation: allocation helping on/off (A11-A15)"
      (fun { Exp.quick } ->
        if quick then a3 ~threads_list:[ 2 ] ~ops:8_000 ~capacity:1024 ()
        else a3 ());
  ]
