(** Shared machinery for the experiment family modules: the
    instrumentation spine, arena layouts, canonical workers and the
    fault-experiment drain protocol. *)

(** Counter-delta accumulator — the instrumentation spine. Bracket
    every measured section with {!Spine.wrap} (or {!Spine.bracket});
    {!Spine.totals} then feeds [Report.make ~counters], so every
    report uniformly carries the scheme's CAS/FAA/SWAP counts, help
    events and alloc/free traffic without hand-read counters. *)
module Spine : sig
  type t

  val create : unit -> t

  val bracket : t -> Atomics.Counters.t -> (unit -> 'a) -> 'a
  (** Snapshot totals around [f] (exception-safe) and accumulate the
      deltas. *)

  val wrap : t -> Mm_intf.instance -> (unit -> 'a) -> 'a
  (** {!bracket} over the instance's counter block. *)

  val absorb : t -> Atomics.Counters.t -> unit
  (** Fold a finished instance's totals in without bracketing (for
      instances born and dying inside a {!Sched.Explore} sweep). *)

  val total : t -> Atomics.Counters.event -> int
  val merge_into : t -> t -> unit

  val totals : t -> (string * int) list
  (** Non-zero totals by event name, in declaration order. *)
end

val pq_layout :
  backend:Atomics.Backend.t -> threads:int -> capacity:int -> Mm_intf.config
(** Skiplist priority-queue layout (6 links, 3 data, 1 root). *)

val list_layout :
  backend:Atomics.Backend.t -> threads:int -> capacity:int -> Mm_intf.config
(** Linked-list layout (1 link, 1 data, 4 roots). *)

val pq_worker :
  Structures.Pqueue.t -> tid:int -> Workload.op array -> unit

val pq_setup :
  scheme:string ->
  threads:int ->
  ops:int ->
  capacity:int ->
  key_range:int ->
  seed:int ->
  Mm_intf.instance * Structures.Pqueue.t * Workload.op array array * int
(** The E1/E5 bench bed: instance, prefilled priority queue,
    per-thread 50/50 streams, and the per-thread op count. *)

val churn_op :
  Mm_intf.instance -> root:Shmem.Value.addr -> oom:bool ref -> tid:int -> unit
(** One root-churn operation (E12/E13), leak-free on the CAS-failure
    path so audits attribute stranded nodes to the crash alone. *)

val drain_survivors : Mm_intf.instance -> survivors:int list -> unit
(** Post-run drain: empty operation brackets (EBR collection), then
    for RC schemes one alloc/release round to retrieve parked
    donations (A4). *)

val churn_gc :
  Wfrc.Gc.t ->
  threads:int ->
  ops:int ->
  max_burst:int ->
  seed:int ->
  float * float * float
(** Alloc/free churn over a raw [Wfrc.Gc] variant (A2/A3):
    [(allocs_per_sec, alloc_retries_per_1k, free_retries_per_1k)]. *)
