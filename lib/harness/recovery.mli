(** Dead-slot adoption driver: pre-audit, declare the dead set, run
    the scheme's {!Mm_intf.S.recover} pass from one survivor,
    post-audit. See DESIGN.md §7 for the quiescent-survivors
    protocol and its soundness argument. *)

type outcome = {
  pre : Audit.report;
      (** crash damage before recovery (its [crash_held] is what the
          pass is asked to reclaim) *)
  post : Audit.report;
      (** state after the pass, with [recovered] patched to the
          free-count delta [post.free - pre.free] — an external
          measurement, independent of the scheme's own accounting *)
  stats : Mm_intf.recovery;  (** the scheme's accounting of the pass *)
}

val run :
  ?loss_bound:int -> dead:int list -> by:int -> Mm_intf.instance -> outcome
(** [run ~dead ~by inst] recovers [inst] from the crash of the [dead]
    tids, adopting into survivor [by]. The instance must be quiescent
    with every survivor drained ({!Exp_support.drain_survivors}).
    Raises [Invalid_argument] on an empty dead set or a dead adopter;
    [loss_bound] is forwarded to both audits. *)
