(* Declarative experiment specs. Each experiment family module
   (Exp_throughput, Exp_contention, …) exports a [spec list]; the
   registry, the CLI argument docs and the `list` subcommand are all
   derived from those specs, so adding an experiment is one record in
   one family module. *)

type params = { quick : bool }

type spec = {
  id : string;    (* registry key, lowercase: "e1", "a2", … *)
  descr : string; (* one-liner for `wfrc_bench list` / --help *)
  run : params -> Report.t;
}

let spec ~id ~descr run = { id; descr; run }

(* Display/registry order: e-experiments by number, then ablations.
   Derived from the ids so family grouping does not dictate CLI
   order. *)
let order_key id =
  let n =
    match int_of_string_opt (String.sub id 1 (String.length id - 1)) with
    | Some n -> n
    | None -> max_int
  in
  ((if String.length id > 0 && id.[0] = 'a' then 1 else 0), n, id)

let sort specs =
  List.sort (fun a b -> compare (order_key a.id) (order_key b.id)) specs

let ids specs = List.map (fun s -> s.id) specs

let find specs id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun s -> s.id = id) specs

let run specs ?(quick = false) id =
  match find specs id with
  | Some s ->
      (* Stamp the mode into the report metadata centrally, so no
         experiment has to thread the flag through. *)
      let r = s.run { quick } in
      { r with Report.meta = { r.Report.meta with Report.quick = quick } }
  | None ->
      invalid_arg
        (Printf.sprintf "unknown experiment %S (known: %s)" id
           (String.concat ", " (ids specs)))
