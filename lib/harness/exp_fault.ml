(* Fault-injection family: E12 (bounded loss under crashes) and E13
   (stall storm) — the auditor-backed quantification of what E10 only
   classified. *)

module Mm = Mm_intf
module Rng = Sched.Rng
open Exp_support

(* ------------------------------------------------------------------ *)
(* E12: bounded loss under crashes — the fault-injection layer plus   *)
(* the auditor. One thread is crashed mid-operation by a Fault plan   *)
(* (left unwound: its announcements, hazards and references stay in   *)
(* place); survivors finish and drain, and the auditor partitions     *)
(* every node. The paper's claim: a crashed thread strands at most an *)
(* O(N^2)-envelope of nodes under WFRC, independent of how long the   *)
(* survivors keep running — while under EBR the crashed thread pins   *)
(* the epoch and the loss grows with survivor work until the arena    *)
(* is exhausted.                                                      *)
(* ------------------------------------------------------------------ *)

let e12 ?(schemes = Registry.names) ?(ops_list = [ 8; 24; 72 ]) ?(seeds = 10)
    ?(seed = 43_000) () =
  let threads = 3 and capacity = 48 in
  let victim = threads - 1 in
  let spine = Spine.create () in
  let rows = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun ops ->
          let completed = ref 0
          and oom_runs = ref 0
          and stalled = ref 0
          and audited = ref 0
          and audits_ok = ref 0
          and max_lost = ref 0
          and max_crash_held = ref 0
          and max_leaked = ref 0
          and bound = ref 0 in
          for s = 0 to seeds - 1 do
            let cfg =
              Mm.config ~threads ~capacity ~num_links:1 ~num_data:1
                ~num_roots:1 ()
            in
            let mm = Registry.instantiate scheme cfg in
            Spine.wrap spine mm @@ fun () ->
            let arena = Mm.arena mm in
            let root = Shmem.Arena.root_addr arena 0 in
            let a = Mm.alloc mm ~tid:0 in
            Mm.store_link mm ~tid:0 root a;
            Mm.release mm ~tid:0 a;
            let oom = ref false in
            let body tid =
              if tid = victim then
                while true do
                  churn_op mm ~root ~oom ~tid
                done
              else
                for _ = 1 to ops do
                  churn_op mm ~root ~oom ~tid
                done
            in
            let rng = Rng.create (seed + s) in
            let faults =
              [ Sched.Fault.crash ~tid:victim ~at_step:(30 + Rng.int rng 200) ]
            in
            let policy = Sched.Policy.random ~seed:(seed + (s * 7) + 1) in
            match
              Sched.Engine.run ~max_steps:120_000 ~faults ~threads ~policy
                body
            with
            | _ ->
                if !oom then incr oom_runs else incr completed;
                drain_survivors mm ~survivors:[ 0; 1 ];
                let r = Audit.run ~crashed:[ victim ] mm in
                incr audited;
                if Audit.ok r then incr audits_ok;
                max_lost := max !max_lost r.Audit.lost;
                max_crash_held := max !max_crash_held r.Audit.crash_held;
                max_leaked := max !max_leaked r.Audit.leaked;
                bound := r.Audit.loss_bound
            | exception Sched.Engine.Out_of_steps ->
                (* survivors never reached quiescence (lockrc: the
                   victim died holding the lock) — nothing to audit *)
                incr stalled
          done;
          rows :=
            [
              Report.Str scheme;
              Report.Int ops;
              Report.Int !completed;
              Report.Int !oom_runs;
              Report.Int !stalled;
              Report.Int !max_lost;
              Report.Int !max_crash_held;
              Report.Int !bound;
              Report.Int !max_leaked;
              Report.Str
                (if !audited = 0 then "n/a"
                 else if !audits_ok = !audited then "ok"
                 else Printf.sprintf "FAIL(%d/%d)" !audits_ok !audited);
            ]
            :: !rows)
        ops_list)
    schemes;
  Report.make ~id:"E12"
    ~title:
      (Printf.sprintf
         "bounded loss under a crashed thread (N=%d, capacity=%d, %d seeds): \
          nodes stranded vs survivor work"
         threads capacity seeds)
    ~cols:
      [
        Report.dim "scheme";
        Report.dim "ops/worker";
        Report.measure ~unit_:"runs" "completed";
        Report.measure ~unit_:"runs" "oom";
        Report.measure ~unit_:"runs" "stalled";
        Report.measure ~unit_:"nodes" "lost(max)";
        Report.measure ~unit_:"nodes" "crash_held(max)";
        Report.measure ~unit_:"nodes" "bound";
        Report.measure ~unit_:"nodes" "leaked(max)";
        Report.measure "audit";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed
         ~params:
           [
             ("seeds", string_of_int seeds);
             ("threads", string_of_int threads);
             ("capacity", string_of_int capacity);
           ]
         ())
    ~notes:
      [
        "lost = capacity - free - reachable after survivors drain; \
         crash_held of it is attributed to the crashed thread by the \
         auditor, leaked is attributable to nothing (a real failure)";
        "wfrc: lost stays flat as survivor work grows and within the \
         N(N+1)-per-crash envelope (Theorem 1's per-thread reference \
         bound) — the crash costs a constant, not a rate";
        "ebr: the crashed thread pins the epoch, so every survivor \
         limbo bag jams and lost grows with ops until the arena is \
         exhausted (oom) — unbounded loss, the §1 contrast";
        "ebr can also leak outright (audit FAIL): a crash between \
         emptying a limbo bag and repooling its nodes strands them \
         outside any custody record, invisible to the scheme itself";
        "lockrc: runs where the victim died inside the critical \
         section stall the survivors (no audit possible)";
      ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E13: stall storm — k of N threads freeze for a window, then        *)
(* resume. Survivors' operations are step-metered: under WFRC each    *)
(* survivor op completes within its own-step bound no matter how      *)
(* many peers are frozen (wait-freedom); under lockrc a survivor op   *)
(* blocks for the whole stall window if a frozen thread holds the     *)
(* lock. The auditor confirms nothing is lost once the stall ends.    *)
(* ------------------------------------------------------------------ *)

let e13 ?(schemes = Registry.names) ?(ks = [ 1; 2 ]) ?(ops = 12) ?(seeds = 8)
    ?(seed = 47_000) () =
  let threads = 4 and capacity = 32 in
  let duration = 600 in
  let spine = Spine.create () in
  let rows = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun k ->
          let completed = ref 0
          and oom_runs = ref 0
          and stalled = ref 0
          and audits_ok = ref 0
          and audited = ref 0
          and max_op = ref 0
          and max_lost = ref 0 in
          for s = 0 to seeds - 1 do
            let cfg =
              Mm.config ~threads ~capacity ~num_links:1 ~num_data:1
                ~num_roots:1 ()
            in
            let mm = Registry.instantiate scheme cfg in
            Spine.wrap spine mm @@ fun () ->
            let arena = Mm.arena mm in
            let root = Shmem.Arena.root_addr arena 0 in
            let a = Mm.alloc mm ~tid:0 in
            Mm.store_link mm ~tid:0 root a;
            Mm.release mm ~tid:0 a;
            let faults =
              Sched.Fault.random_stalls ~seed:(seed + s) ~threads ~victims:k
                ~window:(40, 120) ~duration ()
            in
            let frozen = List.map Sched.Fault.tid_of faults in
            let movers =
              List.filter
                (fun tid -> not (List.mem tid frozen))
                (List.init threads (fun i -> i))
            in
            let storm =
              let froms =
                List.filter_map
                  (function
                    | Sched.Fault.Stall { from_step; _ } -> Some from_step
                    | Sched.Fault.Crash _ -> None)
                  faults
              in
              ( List.fold_left min max_int froms,
                List.fold_left max 0 froms + duration )
            in
            let rec_ = Audit.Steps.create ~threads in
            let oom = ref false in
            let body tid =
              for _ = 1 to ops do
                Audit.Steps.around rec_ ~tid (fun () ->
                    churn_op mm ~root ~oom ~tid)
              done
            in
            let policy = Sched.Policy.random ~seed:(seed + (s * 11) + 2) in
            match
              Sched.Engine.run ~max_steps:200_000 ~faults ~threads ~policy
                body
            with
            | _ ->
                if !oom then incr oom_runs else incr completed;
                let m =
                  Audit.Steps.max_own_steps ~window:storm rec_ ~tids:movers
                in
                max_op := max !max_op m;
                drain_survivors mm
                  ~survivors:(List.init threads (fun i -> i));
                let r = Audit.run mm in
                incr audited;
                if Audit.ok r then incr audits_ok;
                max_lost := max !max_lost r.Audit.lost
            | exception Sched.Engine.Out_of_steps -> incr stalled
          done;
          rows :=
            [
              Report.Str scheme;
              Report.Int k;
              Report.Int !completed;
              Report.Int !oom_runs;
              Report.Int !stalled;
              Report.Int !max_op;
              Report.Int !max_lost;
              Report.Str
                (if !audited = 0 then "n/a"
                 else if !audits_ok = !audited then "ok"
                 else Printf.sprintf "FAIL(%d/%d)" !audits_ok !audited);
            ]
            :: !rows)
        ks)
    schemes;
  Report.make ~id:"E13"
    ~title:
      (Printf.sprintf
         "stall storm (N=%d, %d-step freeze, %d seeds): survivor op cost \
          while k peers are frozen"
         threads duration seeds)
    ~cols:
      [
        Report.dim "scheme";
        Report.dim "k";
        Report.measure ~unit_:"runs" "completed";
        Report.measure ~unit_:"runs" "oom";
        Report.measure ~unit_:"runs" "stalled";
        Report.measure ~unit_:"steps" "max-op-steps";
        Report.measure ~unit_:"nodes" "lost(max)";
        Report.measure "audit";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed
         ~params:
           [
             ("seeds", string_of_int seeds);
             ("threads", string_of_int threads);
             ("capacity", string_of_int capacity);
             ("duration", string_of_int duration);
           ]
         ())
    ~notes:
      [
        "max-op-steps = the most *own* scheduling steps any survivor \
         operation took while overlapping the storm (Audit.Steps); \
         wait-free ops stay near their solo cost, lockrc ops absorb \
         the whole stall window when a frozen thread holds the lock";
        "stalled threads resume after the window and finish, so every \
         run ends quiescent and audits with no crashed threads: \
         nothing may be lost (lost counts only transient limbo \
         backlogs, e.g. ebr bags not yet collected)";
        "ebr during the storm: a frozen in-bracket thread blocks epoch \
         advance, so allocation can exhaust the arena (oom column) — \
         the blocking-reclamation cost even a *temporary* stall \
         inflicts";
      ]
    (List.rev !rows)

let specs =
  [
    Exp.spec ~id:"e12"
      ~descr:"crash tolerance: audited bounded loss vs unbounded leak"
      (fun { Exp.quick } ->
        if quick then e12 ~ops_list:[ 6; 18 ] ~seeds:4 () else e12 ());
    Exp.spec ~id:"e13" ~descr:"stall storm: survivor own-step bounds (wait-freedom)"
      (fun { Exp.quick } ->
        if quick then e13 ~ks:[ 1 ] ~ops:8 ~seeds:3 () else e13 ());
  ]
