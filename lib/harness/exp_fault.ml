(* Fault-injection family: E12 (bounded loss under crashes) and E13
   (stall storm) — the auditor-backed quantification of what E10 only
   classified. *)

module Mm = Mm_intf
module Rng = Sched.Rng
open Exp_support

(* ------------------------------------------------------------------ *)
(* E12: bounded loss under crashes — the fault-injection layer plus   *)
(* the auditor. One thread is crashed mid-operation by a Fault plan   *)
(* (left unwound: its announcements, hazards and references stay in   *)
(* place); survivors finish and drain, and the auditor partitions     *)
(* every node. The paper's claim: a crashed thread strands at most an *)
(* O(N^2)-envelope of nodes under WFRC, independent of how long the   *)
(* survivors keep running — while under EBR the crashed thread pins   *)
(* the epoch and the loss grows with survivor work until the arena    *)
(* is exhausted.                                                      *)
(* ------------------------------------------------------------------ *)

(* E12/E13 default to the seeded scheme set: their reports embed
   cross-scheme Spine totals, so adding a scheme to the default sweep
   would perturb the seeded baselines. wfrc_deferred is audited under
   crashes by E16, the chaos tests and E17 instead. *)
let e12 ?(schemes = Registry.seeded_names) ?(ops_list = [ 8; 24; 72 ])
    ?(seeds = 10)
    ?(seed = 43_000) () =
  let threads = 3 and capacity = 48 in
  let victim = threads - 1 in
  let spine = Spine.create () in
  let rows = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun ops ->
          let completed = ref 0
          and oom_runs = ref 0
          and stalled = ref 0
          and audited = ref 0
          and audits_ok = ref 0
          and max_lost = ref 0
          and max_crash_held = ref 0
          and max_leaked = ref 0
          and bound = ref 0 in
          for s = 0 to seeds - 1 do
            let cfg =
              Mm.config ~threads ~capacity ~num_links:1 ~num_data:1
                ~num_roots:1 ()
            in
            let mm = Registry.instantiate scheme cfg in
            Spine.wrap spine mm @@ fun () ->
            let arena = Mm.arena mm in
            let root = Shmem.Arena.root_addr arena 0 in
            let a = Mm.alloc mm ~tid:0 in
            Mm.store_link mm ~tid:0 root a;
            Mm.release mm ~tid:0 a;
            let oom = ref false in
            let body tid =
              if tid = victim then
                while true do
                  churn_op mm ~root ~oom ~tid
                done
              else
                for _ = 1 to ops do
                  churn_op mm ~root ~oom ~tid
                done
            in
            let rng = Rng.create (seed + s) in
            let faults =
              [ Sched.Fault.crash ~tid:victim ~at_step:(30 + Rng.int rng 200) ]
            in
            let policy = Sched.Policy.random ~seed:(seed + (s * 7) + 1) in
            match
              Sched.Engine.run ~max_steps:120_000 ~faults ~threads ~policy
                body
            with
            | _ ->
                if !oom then incr oom_runs else incr completed;
                drain_survivors mm ~survivors:[ 0; 1 ];
                let r = Audit.run ~crashed:[ victim ] mm in
                incr audited;
                if Audit.ok r then incr audits_ok;
                max_lost := max !max_lost r.Audit.lost;
                max_crash_held := max !max_crash_held r.Audit.crash_held;
                max_leaked := max !max_leaked r.Audit.leaked;
                bound := r.Audit.loss_bound
            | exception Sched.Engine.Out_of_steps ->
                (* survivors never reached quiescence (lockrc: the
                   victim died holding the lock) — nothing to audit *)
                incr stalled
          done;
          rows :=
            [
              Report.Str scheme;
              Report.Int ops;
              Report.Int !completed;
              Report.Int !oom_runs;
              Report.Int !stalled;
              Report.Int !max_lost;
              Report.Int !max_crash_held;
              Report.Int !bound;
              Report.Int !max_leaked;
              Report.Str
                (if !audited = 0 then "n/a"
                 else if !audits_ok = !audited then "ok"
                 else Printf.sprintf "FAIL(%d/%d)" !audits_ok !audited);
            ]
            :: !rows)
        ops_list)
    schemes;
  Report.make ~id:"E12"
    ~title:
      (Printf.sprintf
         "bounded loss under a crashed thread (N=%d, capacity=%d, %d seeds): \
          nodes stranded vs survivor work"
         threads capacity seeds)
    ~cols:
      [
        Report.dim "scheme";
        Report.dim "ops/worker";
        Report.measure ~unit_:"runs" "completed";
        Report.measure ~unit_:"runs" "oom";
        Report.measure ~unit_:"runs" "stalled";
        Report.measure ~unit_:"nodes" "lost(max)";
        Report.measure ~unit_:"nodes" "crash_held(max)";
        Report.measure ~unit_:"nodes" "bound";
        Report.measure ~unit_:"nodes" "leaked(max)";
        Report.measure "audit";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed
         ~params:
           [
             ("seeds", string_of_int seeds);
             ("threads", string_of_int threads);
             ("capacity", string_of_int capacity);
           ]
         ())
    ~notes:
      [
        "lost = capacity - free - reachable after survivors drain; \
         crash_held of it is attributed to the crashed thread by the \
         auditor, leaked is attributable to nothing (a real failure)";
        "wfrc: lost stays flat as survivor work grows and within the \
         N(N+1)-per-crash envelope (Theorem 1's per-thread reference \
         bound) — the crash costs a constant, not a rate";
        "ebr: the crashed thread pins the epoch, so every survivor \
         limbo bag jams and lost grows with ops until the arena is \
         exhausted (oom) — unbounded loss, the §1 contrast";
        "ebr can also leak outright (audit FAIL): a crash between \
         emptying a limbo bag and repooling its nodes strands them \
         outside any custody record, invisible to the scheme itself";
        "lockrc: runs where the victim died inside the critical \
         section stall the survivors (no audit possible)";
      ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E13: stall storm — k of N threads freeze for a window, then        *)
(* resume. Survivors' operations are step-metered: under WFRC each    *)
(* survivor op completes within its own-step bound no matter how      *)
(* many peers are frozen (wait-freedom); under lockrc a survivor op   *)
(* blocks for the whole stall window if a frozen thread holds the     *)
(* lock. The auditor confirms nothing is lost once the stall ends.    *)
(* ------------------------------------------------------------------ *)

let e13 ?(schemes = Registry.seeded_names) ?(ks = [ 1; 2 ]) ?(ops = 12)
    ?(seeds = 8)
    ?(seed = 47_000) () =
  let threads = 4 and capacity = 32 in
  let duration = 600 in
  let spine = Spine.create () in
  let rows = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun k ->
          let completed = ref 0
          and oom_runs = ref 0
          and stalled = ref 0
          and audits_ok = ref 0
          and audited = ref 0
          and max_op = ref 0
          and max_lost = ref 0 in
          for s = 0 to seeds - 1 do
            let cfg =
              Mm.config ~threads ~capacity ~num_links:1 ~num_data:1
                ~num_roots:1 ()
            in
            let mm = Registry.instantiate scheme cfg in
            Spine.wrap spine mm @@ fun () ->
            let arena = Mm.arena mm in
            let root = Shmem.Arena.root_addr arena 0 in
            let a = Mm.alloc mm ~tid:0 in
            Mm.store_link mm ~tid:0 root a;
            Mm.release mm ~tid:0 a;
            let faults =
              Sched.Fault.random_stalls ~seed:(seed + s) ~threads ~victims:k
                ~window:(40, 120) ~duration ()
            in
            let frozen = List.map Sched.Fault.tid_of faults in
            let movers =
              List.filter
                (fun tid -> not (List.mem tid frozen))
                (List.init threads (fun i -> i))
            in
            let storm =
              let froms =
                List.filter_map
                  (function
                    | Sched.Fault.Stall { from_step; _ } -> Some from_step
                    | Sched.Fault.Crash _ -> None)
                  faults
              in
              ( List.fold_left min max_int froms,
                List.fold_left max 0 froms + duration )
            in
            let rec_ = Audit.Steps.create ~threads in
            let oom = ref false in
            let body tid =
              for _ = 1 to ops do
                Audit.Steps.around rec_ ~tid (fun () ->
                    churn_op mm ~root ~oom ~tid)
              done
            in
            let policy = Sched.Policy.random ~seed:(seed + (s * 11) + 2) in
            match
              Sched.Engine.run ~max_steps:200_000 ~faults ~threads ~policy
                body
            with
            | _ ->
                if !oom then incr oom_runs else incr completed;
                let m =
                  Audit.Steps.max_own_steps ~window:storm rec_ ~tids:movers
                in
                max_op := max !max_op m;
                drain_survivors mm
                  ~survivors:(List.init threads (fun i -> i));
                let r = Audit.run mm in
                incr audited;
                if Audit.ok r then incr audits_ok;
                max_lost := max !max_lost r.Audit.lost
            | exception Sched.Engine.Out_of_steps -> incr stalled
          done;
          rows :=
            [
              Report.Str scheme;
              Report.Int k;
              Report.Int !completed;
              Report.Int !oom_runs;
              Report.Int !stalled;
              Report.Int !max_op;
              Report.Int !max_lost;
              Report.Str
                (if !audited = 0 then "n/a"
                 else if !audits_ok = !audited then "ok"
                 else Printf.sprintf "FAIL(%d/%d)" !audits_ok !audited);
            ]
            :: !rows)
        ks)
    schemes;
  Report.make ~id:"E13"
    ~title:
      (Printf.sprintf
         "stall storm (N=%d, %d-step freeze, %d seeds): survivor op cost \
          while k peers are frozen"
         threads duration seeds)
    ~cols:
      [
        Report.dim "scheme";
        Report.dim "k";
        Report.measure ~unit_:"runs" "completed";
        Report.measure ~unit_:"runs" "oom";
        Report.measure ~unit_:"runs" "stalled";
        Report.measure ~unit_:"steps" "max-op-steps";
        Report.measure ~unit_:"nodes" "lost(max)";
        Report.measure "audit";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed
         ~params:
           [
             ("seeds", string_of_int seeds);
             ("threads", string_of_int threads);
             ("capacity", string_of_int capacity);
             ("duration", string_of_int duration);
           ]
         ())
    ~notes:
      [
        "max-op-steps = the most *own* scheduling steps any survivor \
         operation took while overlapping the storm (Audit.Steps); \
         wait-free ops stay near their solo cost, lockrc ops absorb \
         the whole stall window when a frozen thread holds the lock";
        "stalled threads resume after the window and finish, so every \
         run ends quiescent and audits with no crashed threads: \
         nothing may be lost (lost counts only transient limbo \
         backlogs, e.g. ebr bags not yet collected)";
        "ebr during the storm: a frozen in-bracket thread blocks epoch \
         advance, so allocation can exhaust the arena (oom column) — \
         the blocking-reclamation cost even a *temporary* stall \
         inflicts";
      ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E16: crash recovery — dead-slot adoption. Where E12 measures what  *)
(* a crash strands, E16 measures what a survivor can take back: after *)
(* the E12 protocol (crash, drain, audit) one survivor declares the   *)
(* victim dead and runs the scheme's recovery pass; the re-audit's    *)
(* free-count delta is the [recovered] class. Three legs:             *)
(*   sim     deterministic-scheduler crashes (the E12 bed)            *)
(*   native  real Domains, faults injected mid-fragment by Chaos at   *)
(*           lifecycle-event boundaries, sharded store                *)
(*   oom     free-store exhaustion with a dead holder: allocation     *)
(*           must surface typed Out_of_nodes backpressure (bounded    *)
(*           wait), dead-cache adoption must unblock allocation, and  *)
(*           full recovery must return the held nodes                 *)
(* ------------------------------------------------------------------ *)

type e16_acc = {
  mutable runs : int;
  mutable skipped : int;     (* stalled / fault never fired / no damage *)
  mutable held_pre : int;    (* max pre-recovery crash_held *)
  mutable held_post : int;   (* max post-recovery crash_held *)
  mutable leaked : int;      (* max post-recovery leaked *)
  mutable pct_min : int;     (* min recovered*100/crash_held over runs *)
  mutable oon : int;         (* runs that saw typed Out_of_nodes *)
  mutable audited : int;
  mutable audits_ok : int;
}

let e16_acc () =
  {
    runs = 0;
    skipped = 0;
    held_pre = 0;
    held_post = 0;
    leaked = 0;
    pct_min = max_int;
    oon = 0;
    audited = 0;
    audits_ok = 0;
  }

let e16_absorb acc (o : Recovery.outcome) =
  acc.held_pre <- max acc.held_pre o.pre.Audit.crash_held;
  acc.held_post <- max acc.held_post o.post.Audit.crash_held;
  acc.leaked <- max acc.leaked o.post.Audit.leaked;
  let pct =
    if o.pre.Audit.crash_held = 0 then 100
    else 100 * o.post.Audit.recovered / o.pre.Audit.crash_held
  in
  acc.pct_min <- min acc.pct_min pct;
  acc.audited <- acc.audited + 1;
  if Audit.ok o.post then acc.audits_ok <- acc.audits_ok + 1

let e16_row scheme leg acc =
  [
    Report.Str scheme;
    Report.Str leg;
    Report.Int acc.runs;
    Report.Int acc.skipped;
    Report.Int acc.held_pre;
    Report.Int (if acc.pct_min = max_int then 0 else acc.pct_min);
    Report.Int acc.held_post;
    Report.Int acc.leaked;
    Report.Int acc.oon;
    Report.Str
      (if acc.audited = 0 then "n/a"
       else if acc.audits_ok = acc.audited then "ok"
       else Printf.sprintf "FAIL(%d/%d)" acc.audits_ok acc.audited);
  ]

(* Sim leg: the E12 bed plus a recovery pass. *)
let e16_sim spine scheme ~ops ~seeds ~seed =
  let threads = 3 and capacity = 48 in
  let victim = threads - 1 in
  let acc = e16_acc () in
  for s = 0 to seeds - 1 do
    acc.runs <- acc.runs + 1;
    let cfg =
      Mm.config ~threads ~capacity ~num_links:1 ~num_data:1 ~num_roots:1 ()
    in
    let mm = Registry.instantiate scheme cfg in
    Spine.wrap spine mm @@ fun () ->
    let arena = Mm.arena mm in
    let root = Shmem.Arena.root_addr arena 0 in
    let a = Mm.alloc mm ~tid:0 in
    Mm.store_link mm ~tid:0 root a;
    Mm.release mm ~tid:0 a;
    let oom = ref false in
    let body tid =
      if tid = victim then
        while true do
          churn_op mm ~root ~oom ~tid
        done
      else
        for _ = 1 to ops do
          churn_op mm ~root ~oom ~tid
        done
    in
    let rng = Rng.create (seed + s) in
    let faults =
      [ Sched.Fault.crash ~tid:victim ~at_step:(30 + Rng.int rng 200) ]
    in
    let policy = Sched.Policy.random ~seed:(seed + (s * 7) + 1) in
    match
      Sched.Engine.run ~max_steps:120_000 ~faults ~threads ~policy body
    with
    | _ ->
        drain_survivors mm ~survivors:[ 0; 1 ];
        e16_absorb acc (Recovery.run ~dead:[ victim ] ~by:0 mm)
    | exception Sched.Engine.Out_of_steps -> acc.skipped <- acc.skipped + 1
  done;
  acc

(* Native leg: real Domains; Chaos fires the same plan shape at
   lifecycle-event boundaries. One victim crashes mid-fragment and one
   thread stalls through a window and resumes, all against the
   sharded store. *)
let e16_native spine scheme ~ops ~seeds =
  let threads = 4 and capacity = 96 in
  let victim = threads - 1 in
  let acc = e16_acc () in
  for s = 0 to seeds - 1 do
    acc.runs <- acc.runs + 1;
    let cfg =
      Mm.config ~backend:Atomics.Backend.Native ~shards:4 ~batch:4 ~threads
        ~capacity ~num_links:1 ~num_data:1 ~num_roots:1 ()
    in
    let mm = Registry.instantiate scheme cfg in
    Spine.wrap spine mm @@ fun () ->
    let arena = Mm.arena mm in
    let root = Shmem.Arena.root_addr arena 0 in
    let a = Mm.alloc mm ~tid:0 in
    Mm.store_link mm ~tid:0 root a;
    Mm.release mm ~tid:0 a;
    let plan =
      [
        Sched.Fault.crash ~tid:victim ~at_step:(40 + (17 * s));
        Sched.Fault.stall ~tid:(victim - 1) ~from_step:(25 + (11 * s))
          ~duration:2_000;
      ]
    in
    let chaos = Chaos.of_plan ~threads plan in
    let oom = ref false in
    ignore
      (Chaos.run chaos (fun ~tid ->
           for _ = 1 to ops do
             churn_op mm ~root ~oom ~tid
           done));
    if !oom then acc.oon <- acc.oon + 1;
    match Chaos.crashed chaos with
    | [] -> acc.skipped <- acc.skipped + 1
    | dead ->
        let survivors = Chaos.survivors chaos in
        drain_survivors mm ~survivors;
        e16_absorb acc (Recovery.run ~dead ~by:(List.hd survivors) mm)
  done;
  acc

(* OOM leg (refcounted sharded schemes): exhaust the store while a
   crashed peer holds the last nodes. Allocation must terminate with
   typed backpressure, not an unbounded park; declaring the peer dead
   must let the A7-style adoption path serve from its stranded cache;
   full recovery must return everything. Driven from the main domain
   with tid indices — manager ops need no engine. *)
let e16_oom spine scheme ~seed:_ =
  let threads = 2 and capacity = 24 in
  let acc = e16_acc () in
  acc.runs <- 1;
  let cfg =
    Mm.config ~backend:Atomics.Backend.Native ~shards:2 ~batch:4 ~threads
      ~capacity ~num_links:1 ~num_data:1 ~num_roots:0 ()
  in
  let mm = Registry.instantiate scheme cfg in
  Spine.wrap spine mm @@ fun () ->
  let hold tid =
    let held = ref [] and typed = ref false in
    (try
       for _ = 1 to capacity + 1 do
         held := Mm.alloc mm ~tid :: !held
       done
     with
    | Mm.Out_of_nodes _ -> typed := true
    | Mm.Out_of_memory -> ());
    (!held, !typed)
  in
  (* The doomed peer takes everything it can, parks a cache-full back
     (those are the nodes only adoption can reach), then crashes. *)
  let held1, _ = hold 1 in
  let parked, kept =
    let rec split n acc = function
      | p :: rest when n > 0 -> split (n - 1) (p :: acc) rest
      | rest -> (acc, rest)
    in
    split 8 [] held1
  in
  List.iter (fun p -> Mm.release mm ~tid:1 p) parked;
  ignore kept;
  (* Survivor: exhaustion must surface as typed backpressure, after a
     bounded number of scans/parks. *)
  let held0, typed = hold 0 in
  if typed then acc.oon <- acc.oon + 1;
  List.iter (fun p -> Mm.release mm ~tid:0 p) held0;
  (* Declaring the peer dead unblocks allocation through dead-cache
     adoption alone (the in-alloc A7 path), before any full pass. *)
  Mm.declare_dead mm ~tid:1;
  (match Mm.alloc mm ~tid:0 with
  | p -> Mm.release mm ~tid:0 p
  | exception (Mm.Out_of_nodes _ | Mm.Out_of_memory) ->
      acc.skipped <- acc.skipped + 1);
  (* Full recovery returns the crashed holder's references too. *)
  e16_absorb acc (Recovery.run ~dead:[ 1 ] ~by:0 mm);
  (match Mm.alloc mm ~tid:0 with
  | p -> Mm.release mm ~tid:0 p
  | exception (Mm.Out_of_nodes _ | Mm.Out_of_memory) ->
      acc.skipped <- acc.skipped + 1);
  acc

let e16 ?(schemes = Registry.names) ?(ops = 24) ?(native_ops = 2_000)
    ?(seeds = 6) ?(native_seeds = 3) ?(seed = 53_000) () =
  let spine = Spine.create () in
  let rows = ref [] in
  let oom_schemes = [ "wfrc"; "lfrc"; "lockrc"; "wfrc_deferred" ] in
  List.iter
    (fun scheme ->
      rows := e16_row scheme "sim" (e16_sim spine scheme ~ops ~seeds ~seed)
              :: !rows;
      rows :=
        e16_row scheme "native"
          (e16_native spine scheme ~ops:native_ops ~seeds:native_seeds)
        :: !rows;
      if List.mem scheme oom_schemes then
        rows := e16_row scheme "oom" (e16_oom spine scheme ~seed) :: !rows)
    schemes;
  Report.make ~id:"E16"
    ~title:
      (Printf.sprintf
         "crash recovery: dead-slot adoption (%d sim + %d native seeds) and \
          bounded OOM degradation"
         seeds native_seeds)
    ~cols:
      [
        Report.dim "scheme";
        Report.dim "leg";
        Report.measure ~unit_:"runs" "runs";
        Report.measure ~unit_:"runs" "skipped";
        Report.measure ~unit_:"nodes" "crash_held(pre,max)";
        Report.measure ~unit_:"%" "recovered(min)";
        Report.measure ~unit_:"nodes" "crash_held(post,max)";
        Report.measure ~unit_:"nodes" "leaked(max)";
        Report.measure ~unit_:"runs" "oon";
        Report.measure "audit";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed
         ~params:
           [
             ("seeds", string_of_int seeds);
             ("native_seeds", string_of_int native_seeds);
             ("ops", string_of_int ops);
             ("native_ops", string_of_int native_ops);
           ]
         ())
    ~notes:
      [
        "recovered(min) = worst-case share of pre-recovery crash_held \
         returned to the free store by one Recovery.run pass (can exceed \
         100: the pass also drains the adopter's own backlog); the \
         target is >= 90 with leaked = 0 on every leg";
        "sim leg: the E12 bed (N=3, cap=48) plus recovery; skipped \
         counts runs that never quiesced (lockrc: victim died holding \
         the lock — its Sim recovery is exercised in test/t_fault.ml \
         instead)";
        "native leg: real Domains over the sharded store; Chaos fires \
         the crash mid-fragment at a lifecycle-event boundary and \
         stalls one thread through a 2 ms window (it resumes and \
         finishes); oon counts runs where churn saw typed Out_of_nodes \
         backpressure";
        "oom leg: a peer takes the whole arena, parks one cache-full \
         and crashes; the survivor's exhausted alloc must raise typed \
         Out_of_nodes (oon = 1), declaring the peer dead must unblock \
         alloc via dead-cache adoption alone, and full recovery must \
         return the held nodes (recovered ~ 100)";
      ]
    (List.rev !rows)

let specs =
  [
    Exp.spec ~id:"e12"
      ~descr:"crash tolerance: audited bounded loss vs unbounded leak"
      (fun { Exp.quick } ->
        if quick then e12 ~ops_list:[ 6; 18 ] ~seeds:4 () else e12 ());
    Exp.spec ~id:"e13" ~descr:"stall storm: survivor own-step bounds (wait-freedom)"
      (fun { Exp.quick } ->
        if quick then e13 ~ks:[ 1 ] ~ops:8 ~seeds:3 () else e13 ());
    Exp.spec ~id:"e16"
      ~descr:"crash recovery: dead-slot adoption and bounded OOM degradation"
      (fun { Exp.quick } ->
        if quick then
          e16 ~ops:12 ~seeds:3 ~native_ops:800 ~native_seeds:2 ()
        else e16 ());
  ]
