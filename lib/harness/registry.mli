(** Registry of the memory-management schemes (the paper's §1
    comparison space). *)

val all : (string * (module Mm_intf.S)) list

val names : string list
(** ["wfrc"; "lfrc"; "hp"; "ebr"; "lockrc"; "wfrc_deferred"]. *)

val seeded_names : string list
(** The legacy five (no ["wfrc_deferred"]): the scheme set the seeded
    experiment baselines were recorded with. Used as the default by
    experiments whose reports aggregate across schemes, so adding a
    scheme cannot perturb their bit-identical outputs. *)

val rc_names : string list
(** The reference-counting subset — the schemes that support arbitrary
    structures (used by the priority queue). *)

val find : string -> (module Mm_intf.S)
(** Raises [Invalid_argument] listing the known names. *)

val instantiate : string -> Mm_intf.config -> Mm_intf.instance
