(** Post-run invariant auditor over any {!Mm_intf.S} instance.

    Partitions every node of a quiescent instance into
    free / reachable-from-roots / pending under a live thread /
    held by a crashed thread / leaked, checks refcount conservation
    and use-after-free on the way, and compares the crash-held count
    against the paper's Theorem-1-style per-crash envelope. Built for
    the fault-injection experiments (E12/E13): it needs no cooperation
    from crashed threads — attribution works from the scheme's custody
    records and, for RC schemes, from reference surpluses alone.

    See DESIGN.md §7 for the fault model and the exact invariants. *)

type report = {
  scheme : string;
  capacity : int;
  threads : int;
  crashed : int list;       (** sorted tids the caller declared crashed *)
  free : int;               (** allocatable now *)
  reachable : int;          (** reachable from the arena's root links *)
  pending_live : int;
      (** parked under a surviving thread (retired list, limbo bag);
          reclaimable by that thread later *)
  crash_held : int;
      (** stranded by a crashed thread: its custody entries, its
          published pins, its surplus references, and everything those
          nodes link to *)
  deferred : int;
      (** kept allocated only by decrements still parked in surviving
          threads' rc buffers (DESIGN.md §6.3), plus — closed over
          link slots like [crash_held] — everything those nodes still
          link to: the claiming flush cascades through the whole
          region, so it is reclaimable at the owners' next flush, not
          a failure *)
  leaked : int;             (** none of the above — an audit failure *)
  lost : int;               (** [capacity - free - reachable] *)
  loss_bound : int;
      (** envelope [crash_held] is judged against; 0 with no crashes *)
  recovered : int;
      (** nodes a {!Recovery} pass returned to the free store; always
          0 from {!run} itself — patched in by [Recovery.run] as the
          free-count delta across the recovery pass *)
  violations : string list; (** conservation/UAF/custody violations *)
}

val run :
  ?crashed:int list -> ?loss_bound:int -> Mm_intf.instance -> report
(** Audit a quiescent instance. [crashed] (default none) declares
    which tids were crashed by the fault plan; [loss_bound] overrides
    the default envelope of [|crashed| * N * (N+1)] nodes. Never
    raises on damaged instances — damage lands in [violations]. *)

val ok : report -> bool
(** No violations, nothing leaked, crash-held within the bound. *)

val envelope :
  ?defer:int -> scheme:string -> threads:int -> crashes:int -> unit ->
  int option
(** Tighter per-scheme crash-loss envelopes, calibrated on the seeded
    E12 grid and pinned as regressions in test/t_fault.ml — e.g. wfrc
    strands at most [2N-1] nodes per crash there, far under the
    default Theorem-1 envelope. For ["wfrc_deferred"] pass [defer]
    (the scheme's rc-buffer capacity, default 0): a crashed thread
    additionally strands at most one node per buffered decrement.
    [None] when the scheme's loss is unbounded by design (ebr).
    Opt-in: pass as [run]'s [loss_bound]. *)

val check : report -> unit
(** Raise [Failure] with the rendered report unless [ok]. *)

val to_string : report -> string
(** Deterministic one-line rendering; two runs of the same schedule
    must produce identical strings (used by the replay tests). *)

(** Per-operation step recorder: empirical wait-freedom bounds.

    Wrap each client operation in {!Steps.around} while running under
    {!Sched.Engine}; afterwards {!Steps.max_own_steps} gives the
    maximum number of {e own} scheduling steps any one operation took,
    optionally restricted to operations overlapping a global-step
    window (e.g. a stall storm). *)
module Steps : sig
  type t

  val create : threads:int -> t

  val around : t -> tid:int -> (unit -> 'a) -> 'a
  (** Record one operation (also on exception). Must run inside an
      engine run on the fiber [tid]. *)

  val ops : t -> tid:int -> (int * int * int) list
  (** Chronological [(global_start, global_stop, own_steps)]. *)

  val max_own_steps : ?window:int * int -> t -> tids:int list -> int
  (** Max own-step cost over the recorded operations of [tids],
      restricted to operations overlapping [window] if given. 0 if
      nothing matches. *)
end
