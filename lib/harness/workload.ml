(* Deterministic workload generation: every experiment derives its
   operation streams from seeds, so runs are reproducible and each
   thread's stream is independent. *)

module Rng = Sched.Rng

type op =
  | Produce of int  (* push / enqueue / insert(key) *)
  | Consume         (* pop / dequeue / delete-min *)

(* A mixed stream of [n] operations with the given produce ratio (in
   percent). Keys/values are uniform in [0, key_range). *)
let mixed ~rng ~n ~produce_pct ~key_range =
  Array.init n (fun _ ->
      if Rng.int rng 100 < produce_pct then Produce (Rng.int rng key_range)
      else Consume)

(* Alloc/free churn descriptor: each step allocates [burst] nodes then
   frees them; used for the free-list experiments. *)
let churn_bursts ~rng ~n ~max_burst =
  Array.init n (fun _ -> 1 + Rng.int rng max_burst)

(* Pre-seeded per-thread streams, split off one root. The old scheme
   seeded thread [tid] with [seed + tid * 1_000_003], so two
   experiments whose seeds differ by that stride shared thread
   streams (seed s, tid 1 = seed s + 1_000_003, tid 0). Splitting
   derives every stream from the root's output sequence instead, so
   distinct root seeds give unrelated stream families. The split
   order is pinned by an explicit loop ([Array.init]'s evaluation
   order is unspecified). *)
let per_thread ~threads ~seed f =
  let root = Rng.create seed in
  let rngs = Array.make threads root in
  for tid = 0 to threads - 1 do
    rngs.(tid) <- Rng.split root
  done;
  Array.map f rngs

(* Exact per-thread split of an op budget: [threads] counts summing to
   [ops], with the remainder spread one-per-thread over the low tids.
   Replaces the truncating [ops / threads] pattern that made BENCH
   rows report 199936 completed ops against a 200000 request. *)
let split_ops ~threads ~ops =
  if threads < 1 then invalid_arg "Workload.split_ops: threads < 1";
  if ops < 0 then invalid_arg "Workload.split_ops: ops < 0";
  let base = ops / threads and extra = ops mod threads in
  Array.init threads (fun tid -> if tid < extra then base + 1 else base)

let count_produces ops =
  Array.fold_left
    (fun acc op -> match op with Produce _ -> acc + 1 | Consume -> acc)
    0 ops
