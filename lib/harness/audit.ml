(* Post-run invariant auditor.

   Takes a quiescent memory-manager instance — possibly one in which
   some threads crashed mid-operation under a [Sched.Fault] plan — and
   partitions every node in the arena into six classes:

     Free          in the scheme's free store, allocatable now
     Reachable     live: reachable from the arena's root links
     Pending_live  parked under a surviving thread (retired list,
                   limbo bag): reclaimable by that thread later
     Crash_held    stranded by a crashed thread: pinned by its
                   published protections, parked under it, or kept
                   alive only by references it still holds
     Deferred      kept above zero only by decrements still sitting in
                   a surviving thread's rc buffer (DESIGN.md §6.3):
                   reclaimable at that thread's next flush. Closed
                   transitively over link slots, like [Crash_held]:
                   the flush that claims the buffered node cascades
                   through everything it still links to, so a dead
                   chain hanging off one parked decrement is
                   flush-reclaimable end to end, not leaked.
     Leaked        none of the above — unreachable, unattributable,
                   and irrecoverable: an audit failure

   For reference-counting schemes it additionally checks refcount
   conservation: every allocated node's [mm_ref] must be even and at
   least the 2-units-per-reference contribution of the links and roots
   that point at it (a deficit means a premature free is possible);
   free/donated nodes must carry the odd claimed-by-allocator value.

   Crash attribution works without any cooperation from the crashed
   thread, exactly as an external observer of the paper's
   stopped-process model: the seeds are the scheme's own custody
   records (pinned/pending entries owned by a crashed tid) plus, for
   refcounted schemes, unreachable nodes whose count exceeds its
   link-inbound contribution — a reference surplus only a crashed
   thread can still hold once the survivors have drained. Seeds are
   closed transitively over link slots, since a node held by a crashed
   thread keeps everything it links to alive too.

   The paper's Theorem 1 bounds what a crashed thread can strand: at
   most N+1 references per thread of its own plus the announcements it
   never retracted — an O(N^2)-per-crash envelope overall. [run]'s
   [loss_bound] defaults to |crashed| * N * (N+1) nodes, a deliberately
   loose reading of that envelope; E12 reports the measured
   [crash_held] against it. *)

module Value = Shmem.Value
module Arena = Shmem.Arena
module Mm = Mm_intf

type report = {
  scheme : string;
  capacity : int;
  threads : int;
  crashed : int list;
  free : int;
  reachable : int;
  pending_live : int;
  crash_held : int;
  deferred : int;
  leaked : int;
  lost : int;          (* capacity - free - reachable *)
  loss_bound : int;    (* 0 when no thread crashed *)
  recovered : int;     (* nodes returned to free by a recovery pass *)
  violations : string list;
}

let ok r =
  r.violations = [] && r.leaked = 0 && r.crash_held <= r.loss_bound

let to_string r =
  Printf.sprintf
    "audit[%s] cap=%d threads=%d crashed=[%s] free=%d reachable=%d \
     pending=%d crash_held=%d deferred=%d leaked=%d lost=%d bound=%d \
     recovered=%d violations=[%s] %s"
    r.scheme r.capacity r.threads
    (String.concat "," (List.map string_of_int r.crashed))
    r.free r.reachable r.pending_live r.crash_held r.deferred r.leaked
    r.lost r.loss_bound r.recovered
    (String.concat "; " r.violations)
    (if ok r then "OK" else "FAIL")

let check r = if not (ok r) then failwith ("Audit: " ^ to_string r)

let run ?(crashed = []) ?loss_bound (inst : Mm.instance) =
  let cfg = Mm.conf inst in
  let arena = Mm.arena inst in
  let cap = cfg.Mm.capacity in
  let threads = cfg.Mm.threads in
  let crashed = List.sort_uniq compare crashed in
  List.iter
    (fun tid ->
      if tid < 0 || tid >= threads then invalid_arg "Audit.run: crashed tid")
    crashed;
  let is_crashed tid = List.mem tid crashed in
  let c = Mm.custody inst in
  let violations = ref (List.rev c.Mm.violations) in
  let violation fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  if Array.length c.Mm.free <> cap + 1 then
    violation "custody free array has length %d, expected %d"
      (Array.length c.Mm.free) (cap + 1);
  let free h = h >= 1 && h <= cap && c.Mm.free.(h) in
  let pending = List.sort_uniq compare c.Mm.pending in
  let pinned = List.sort_uniq compare c.Mm.pinned in
  (* Custody owner per node; a node parked under two threads is
     structural damage. *)
  let pending_owner = Array.make (cap + 1) (-1) in
  List.iter
    (fun (tid, h) ->
      if h < 1 || h > cap then violation "pending handle #%d out of range" h
      else if pending_owner.(h) >= 0 then
        violation "node #%d in custody of threads %d and %d" h
          pending_owner.(h) tid
      else pending_owner.(h) <- tid)
    pending;
  let is_pending h = pending_owner.(h) >= 0 in
  (* Decrements parked in per-thread rc buffers (DESIGN.md §6.3). Each
     entry keeps the node's shared count inflated by exactly 2 units
     until the owning thread flushes; duplicates are legal (the same
     node released twice from one thread before a flush). *)
  let deferred_count = Array.make (cap + 1) 0 in
  let deferred_crashed = Array.make (cap + 1) false in
  List.iter
    (fun (tid, h) ->
      if h < 1 || h > cap then violation "deferred handle #%d out of range" h
      else begin
        deferred_count.(h) <- deferred_count.(h) + 1;
        if is_crashed tid then deferred_crashed.(h) <- true
      end)
    c.Mm.deferred;
  (* --- Reachability from the root links ----------------------------- *)
  let reach = Array.make (cap + 1) false in
  let num_links = Shmem.Layout.num_links (Arena.layout arena) in
  let uaf_reported = Array.make (cap + 1) false in
  let rec visit h =
    if h >= 1 && h <= cap then
      if free h then begin
        (* use-after-free: the structure still links to a node the
           allocator considers free *)
        if not uaf_reported.(h) then begin
          uaf_reported.(h) <- true;
          violation "free node #%d reachable from the structure" h
        end
      end
      else if not reach.(h) then begin
        reach.(h) <- true;
        let p = Value.of_handle h in
        for i = 0 to num_links - 1 do
          let v = Arena.read_link arena p i in
          if not (Value.is_null v) then visit (Value.handle (Value.unmark v))
        done
      end
  in
  for r = 0 to Arena.num_roots arena - 1 do
    let v = Arena.read arena (Arena.root_addr arena r) in
    if not (Value.is_null v) then visit (Value.handle (Value.unmark v))
  done;
  List.iter
    (fun (tid, h) ->
      if h >= 1 && h <= cap && reach.(h) then
        violation "node #%d retired by thread %d but still reachable" h tid)
    pending;
  (* Survivors are fully drained by audit time, so any surviving pin is
     a protocol violation (unretracted announcement, leaked hazard). *)
  List.iter
    (fun (tid, h) ->
      if not (is_crashed tid) then
        violation "live thread %d still pins node #%d" tid h)
    pinned;
  (* --- Refcount conservation (RC schemes only) ---------------------- *)
  let refcounted = Mm.refcounted inst in
  (* For each allocated node: is its count odd (claimed), and how far
     does it exceed the 2-per-link inbound contribution? A crashed
     thread can leave an unreachable node in any of three states an
     external observer must attribute to it rather than flag:
       odd count        crashed inside ReleaseRef/FreeNode after the
                        R2 claim (or holding the F3 donation inflation)
       positive excess  still holding references it acquired
       zero count,      crashed between the R1 decrement and the R2
       zero inbound     claim — fully released, never reclaimed
     Everything else odd/deficient is a conservation violation. *)
  let excess = Array.make (cap + 1) 0 in
  let odd = Array.make (cap + 1) false in
  let zombie = Array.make (cap + 1) false in
  if refcounted then begin
    let inbound = Array.make (cap + 1) 0 in
    let count v =
      if not (Value.is_null v) then begin
        let h = Value.handle (Value.unmark v) in
        if h >= 1 && h <= cap then inbound.(h) <- inbound.(h) + 2
      end
    in
    for r = 0 to Arena.num_roots arena - 1 do
      count (Arena.read arena (Arena.root_addr arena r))
    done;
    for h = 1 to cap do
      (* free/donated nodes had their links cleared on reclamation *)
      if not (free h || is_pending h) then
        let p = Value.of_handle h in
        for i = 0 to num_links - 1 do
          count (Arena.read_link arena p i)
        done
    done;
    for h = 1 to cap do
      let r = Arena.read_mm_ref arena (Value.of_handle h) in
      if free h || is_pending h then begin
        if r land 1 = 0 then
          violation "claimed node #%d has even mm_ref=%d" h r
      end
      else begin
        (* A buffered decrement keeps the shared count inflated by 2
           units it no longer deserves; discount them before the
           conservation checks so a node awaiting a flush is neither a
           surplus nor masks a genuine deficit. *)
        let r = r - (2 * deferred_count.(h)) in
        if r < 0 then
          violation
            "node #%d mm_ref=%d below its %d buffered decrement(s)" h
            (r + (2 * deferred_count.(h)))
            deferred_count.(h);
        excess.(h) <- r - inbound.(h);
        odd.(h) <- r land 1 = 1;
        zombie.(h) <- r = 0 && inbound.(h) = 0;
        let attributable = crashed <> [] && not reach.(h) in
        if odd.(h) then begin
          if not attributable then
            violation "allocated node #%d has odd mm_ref=%d" h r
        end
        else if excess.(h) < 0 then
          violation
            "node #%d mm_ref=%d below its inbound share %d (premature free \
             possible)"
            h r inbound.(h)
      end
    done
  end;
  (* --- Crash attribution -------------------------------------------- *)
  let crash_held = Array.make (cap + 1) false in
  if crashed <> [] then begin
    let seeds = ref [] in
    let seed h =
      if
        h >= 1 && h <= cap
        && (not (free h))
        && (not reach.(h))
        && not crash_held.(h)
      then begin
        crash_held.(h) <- true;
        seeds := h :: !seeds
      end
    in
    List.iter (fun (tid, h) -> if is_crashed tid then seed h) pinned;
    List.iter (fun (tid, h) -> if is_crashed tid then seed h) pending;
    (* Decrements stranded in a crashed thread's rc buffer hold their
       nodes exactly like references it still owns. *)
    for h = 1 to cap do
      if deferred_crashed.(h) then seed h
    done;
    if refcounted then
      for h = 1 to cap do
        if
          (not (free h))
          && (not (is_pending h))
          && (excess.(h) > 0 || odd.(h) || zombie.(h))
        then seed h
      done;
    (* Everything a stranded node links to is stranded with it. *)
    let rec close = function
      | [] -> ()
      | h :: rest ->
          let next = ref rest in
          if not (is_pending h) then begin
            let p = Value.of_handle h in
            for i = 0 to num_links - 1 do
              let v = Arena.read_link arena p i in
              if not (Value.is_null v) then begin
                let h' = Value.handle (Value.unmark v) in
                if
                  h' >= 1 && h' <= cap
                  && (not (free h'))
                  && (not reach.(h'))
                  && not crash_held.(h')
                then begin
                  crash_held.(h') <- true;
                  next := h' :: !next
                end
              end
            done
          end;
          close !next
    in
    close !seeds
  end;
  (* --- Deferred closure ---------------------------------------------- *)
  (* A node whose reclamation waits on a buffered decrement keeps its
     whole link-successor region waiting with it: the flush that
     finally claims it cascades through every link it still holds
     (R3), so those successors are flush-reclaimable too, not leaked.
     Close the class over link slots exactly like the crash closure
     above (crash attribution wins: a node already stranded by a
     crashed thread stays [Crash_held]). *)
  let deferred_held = Array.make (cap + 1) false in
  if c.Mm.deferred <> [] then begin
    let seeds = ref [] in
    for h = 1 to cap do
      if
        deferred_count.(h) > 0
        && (not (free h))
        && (not reach.(h))
        && not crash_held.(h)
      then begin
        deferred_held.(h) <- true;
        seeds := h :: !seeds
      end
    done;
    let rec close = function
      | [] -> ()
      | h :: rest ->
          let next = ref rest in
          if not (is_pending h) then begin
            let p = Value.of_handle h in
            for i = 0 to num_links - 1 do
              let v = Arena.read_link arena p i in
              if not (Value.is_null v) then begin
                let h' = Value.handle (Value.unmark v) in
                if
                  h' >= 1 && h' <= cap
                  && (not (free h'))
                  && (not reach.(h'))
                  && (not crash_held.(h'))
                  && not deferred_held.(h')
                then begin
                  deferred_held.(h') <- true;
                  next := h' :: !next
                end
              end
            done
          end;
          close !next
    in
    close !seeds
  end;
  (* --- Partition ----------------------------------------------------- *)
  let n_free = ref 0
  and n_reach = ref 0
  and n_pending = ref 0
  and n_crash = ref 0
  and n_deferred = ref 0
  and n_leaked = ref 0 in
  for h = 1 to cap do
    if free h then incr n_free
    else if reach.(h) then incr n_reach
    else if crash_held.(h) then incr n_crash
    else if is_pending h then incr n_pending
    else if deferred_held.(h) then incr n_deferred
    else incr n_leaked
  done;
  let loss_bound =
    match loss_bound with
    | Some b -> b
    | None -> List.length crashed * threads * (threads + 1)
  in
  {
    scheme = Mm.name inst;
    capacity = cap;
    threads;
    crashed;
    free = !n_free;
    reachable = !n_reach;
    pending_live = !n_pending;
    crash_held = !n_crash;
    deferred = !n_deferred;
    leaked = !n_leaked;
    lost = cap - !n_free - !n_reach;
    loss_bound;
    recovered = 0;
    violations = List.rev !violations;
  }

(* Tighter, empirically-calibrated per-scheme crash-loss envelopes,
   measured over the seeded E12 grid and pinned as regressions in
   test/t_fault.ml. The default Theorem-1 reading
   (|crashed| * N * (N+1)) stays [run]'s contract; these are opt-in
   via [run ~loss_bound:...]. [None] for schemes whose loss is
   unbounded by design (ebr: the crashed thread pins the epoch and
   the stranding grows with survivor work). *)
let envelope ?(defer = 0) ~scheme ~threads ~crashes () =
  let per_crash =
    match scheme with
    | "wfrc" -> Some ((2 * threads) - 1)
    (* eager wfrc envelope plus up to [defer] decrements stranded in
       the crashed thread's rc buffer, each holding one node *)
    | "wfrc_deferred" -> Some ((2 * threads) - 1 + defer)
    | "lfrc" | "lockrc" -> Some (2 * threads)
    | "hp" -> Some (threads * (threads + 1))
    | _ -> None
  in
  Option.map (fun b -> crashes * b) per_crash

(* ---- Empirical wait-freedom bound recorder -------------------------- *)

(* Wraps individual operations run under the deterministic engine and
   records, per operation, the window of global steps it spanned and
   the number of the owning thread's *own* scheduling steps it took —
   the unit of the paper's wait-freedom bounds. E13 uses this to show
   that a survivor's operations stay within a constant own-step bound
   even while other threads are stalled, while the lock-based scheme's
   do not. *)
module Steps = struct
  type op = { g_start : int; g_stop : int; own : int }

  type t = { per_tid : op list ref array }

  let create ~threads =
    if threads < 1 then invalid_arg "Audit.Steps.create";
    { per_tid = Array.init threads (fun _ -> ref []) }

  let around t ~tid f =
    let g0 = Sched.Engine.now () and s0 = Sched.Engine.steps_of tid in
    let record () =
      let g1 = Sched.Engine.now () and s1 = Sched.Engine.steps_of tid in
      t.per_tid.(tid) :=
        { g_start = g0; g_stop = g1; own = s1 - s0 } :: !(t.per_tid.(tid))
    in
    match f () with
    | v ->
        record ();
        v
    | exception e ->
        record ();
        raise e

  let ops t ~tid =
    List.rev_map (fun o -> (o.g_start, o.g_stop, o.own)) !(t.per_tid.(tid))

  let max_own_steps ?window t ~tids =
    let overlaps o =
      match window with
      | None -> true
      | Some (lo, hi) -> o.g_stop > lo && o.g_start < hi
    in
    List.fold_left
      (fun acc tid ->
        List.fold_left
          (fun acc o -> if overlaps o then max acc o.own else acc)
          acc
          !(t.per_tid.(tid)))
      0 tids
end
