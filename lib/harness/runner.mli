(** Native parallel runner: one Domain per thread id, released by a
    spin barrier so measurement windows align. *)

type result = {
  wall_ns : int;              (** barrier release to last join *)
  per_thread_ns : int array;  (** per-thread busy time *)
}

val now_ns : unit -> int
(** Monotonic nanoseconds since an arbitrary epoch
    ([clock_gettime(CLOCK_MONOTONIC)]): nanosecond resolution, never
    stepped by wall-clock adjustments. Only differences are
    meaningful. *)

val run : threads:int -> (tid:int -> unit) -> result
(** [run ~threads body] executes [body ~tid] for every tid in
    [0..threads-1]; tid 0 runs on the calling domain. *)

val throughput : ops:int -> result -> float
(** Operations per second over the wall time. *)
