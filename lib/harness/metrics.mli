(** Latency/step statistics: log-bucketed histograms with exact
    min/max/mean, plus duration and rate formatting. *)

module Hist : sig
  type t

  val create : unit -> t

  val add : t -> int -> unit
  (** Record one sample. Negative samples are not folded into the
      distribution (they always indicate a measurement bug, e.g. a
      non-monotonic clock): they are tallied in {!negatives} so
      reports can surface them. *)

  val merge_into : t -> t -> unit
  (** [merge_into dst src] folds [src] into [dst] (per-thread
      histograms are merged after a run). *)

  val count : t -> int
  (** Non-negative samples recorded (excludes {!negatives}). *)

  val negatives : t -> int
  (** Negative samples seen by {!add}; non-zero means a measurement
      bug upstream. *)

  val max_value : t -> int
  val min_value : t -> int
  val mean : t -> float

  val percentile : t -> float -> int
  (** [percentile t q] for [q] in [0,1]: an upper bound on the value
      at that quantile, exact within one log sub-bucket (~6%). *)

  val bucket_of : int -> int
  (** The bucket index a (non-negative) sample lands in: identity
      below 16, then 16 log sub-buckets per power of two. Exposed for
      the precision tests. *)

  val bucket_value : int -> int
  (** Upper bound of the values mapping to a bucket — the value
      {!percentile} reports for samples from that bucket. For any [b]
      in the image of {!bucket_of}, [bucket_of (bucket_value b) = b],
      and for [v >= 0], [v <= bucket_value (bucket_of v)] with at most
      one sub-bucket (~1/16) of relative slack. (The index space has a
      gap: values below 16 use buckets 0-15, larger values start at
      bucket 64; [bucket_value] is unspecified on the gap.) *)
end

val pp_ns : Format.formatter -> int -> unit
val ns_to_string : int -> string
(** ["999ns"], ["1.5us"], ["2.0ms"], ["3.00s"]. *)

val ops_to_string : float -> string
(** ["2.50M"], ["3.2k"], ["42"]. *)
