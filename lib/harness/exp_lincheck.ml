(* Correctness family: E7 (linearizability sweeps, Definition 1 /
   Lemmas 2–5) and E8 (exhaustion behaviour, paper footnote 4). *)

module Mm = Mm_intf
module Value = Shmem.Value
open Exp_support

module Link_check = Lincheck.Checker.Make (Lincheck.Specs.Link_ops)
module Alloc_check = Lincheck.Checker.Make (Lincheck.Specs.Alloc_ops)
module Stack_check = Lincheck.Checker.Make (Lincheck.Specs.Stack_ops)
module Queue_check = Lincheck.Checker.Make (Lincheck.Specs.Queue_ops)
module Pq_check = Lincheck.Checker.Make (Lincheck.Specs.Pqueue_ops)
module Set_check = Lincheck.Checker.Make (Lincheck.Specs.Set_ops)

exception Not_linearizable

(* Shared-link semantics on a given scheme: two readers + one updater
   over two links. *)
let e7_links ~spine ~scheme ~runs ~seed =
  let mk () =
    let cfg =
      Mm.config ~threads:3 ~capacity:32 ~num_links:1 ~num_data:1 ~num_roots:2
        ()
    in
    let mm = Registry.instantiate scheme cfg in
    let arena = Mm.arena mm in
    let l0 = Shmem.Arena.root_addr arena 0 in
    let l1 = Shmem.Arena.root_addr arena 1 in
    let a = Mm.alloc mm ~tid:0 and b = Mm.alloc mm ~tid:0 in
    Mm.store_link mm ~tid:0 l0 a;
    Mm.store_link mm ~tid:0 l1 b;
    Lincheck.Specs.Link_ops.set_initial [ (l0, a); (l1, b) ];
    Mm.release mm ~tid:0 a;
    Mm.release mm ~tid:0 b;
    let hist = Lincheck.History.create ~threads:3 in
    let deref tid l =
      let w =
        Lincheck.History.record hist ~tid (Lincheck.Specs.Link_ops.Deref l)
          (fun () -> Lincheck.Specs.Link_ops.Word (Mm.deref mm ~tid l))
      in
      match w with
      | Lincheck.Specs.Link_ops.Word p ->
          if not (Value.is_null p) then Mm.release mm ~tid p
      | _ -> ()
    in
    let body tid =
      match tid with
      | 0 | 1 ->
          deref tid l0;
          deref tid l1
      | _ ->
          (* updater: move a fresh node into l0 *)
          let n = Mm.alloc mm ~tid in
          let old = Mm.deref mm ~tid l0 in
          let _ =
            Lincheck.History.record hist ~tid
              (Lincheck.Specs.Link_ops.Cas (l0, old, n)) (fun () ->
                Lincheck.Specs.Link_ops.Bool
                  (Mm.cas_link mm ~tid l0 ~old ~nw:n))
          in
          if not (Value.is_null old) then Mm.release mm ~tid old;
          Mm.release mm ~tid n
    in
    let check () =
      Spine.absorb spine (Mm.counters mm);
      let events = Lincheck.History.events hist in
      if not (Link_check.check events) then raise Not_linearizable
    in
    (body, check)
  in
  Sched.Explore.random_sweep ~threads:3 ~runs ~seed mk

(* AllocNode/FreeNode multiset semantics: concurrent alloc/release
   cycles must never hand the same node to two holders. *)
let e7_alloc ~spine ~scheme ~runs ~seed =
  let mk () =
    let cfg =
      Mm.config ~threads:3 ~capacity:8 ~num_links:0 ~num_data:1 ~num_roots:0
        ()
    in
    let mm = Registry.instantiate scheme cfg in
    let hist = Lincheck.History.create ~threads:3 in
    let body tid =
      for _ = 1 to 2 do
        match
          Lincheck.History.record hist ~tid Lincheck.Specs.Alloc_ops.Alloc
            (fun () ->
              Lincheck.Specs.Alloc_ops.Node (Value.handle (Mm.alloc mm ~tid)))
        with
        | Lincheck.Specs.Alloc_ops.Node h ->
            Lincheck.History.record hist ~tid
              (Lincheck.Specs.Alloc_ops.Free h) (fun () ->
                Mm.release mm ~tid (Value.of_handle h);
                Lincheck.Specs.Alloc_ops.Unit)
            |> ignore
        | _ -> ()
        | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ()
      done
    in
    let check () =
      Spine.absorb spine (Mm.counters mm);
      let events = Lincheck.History.events hist in
      if not (Alloc_check.check events) then raise Not_linearizable;
      Mm.validate mm
    in
    (body, check)
  in
  Sched.Explore.random_sweep ~threads:3 ~runs ~seed mk

(* A one-event sequential prehistory entry, prepended by the structure
   sweeps so the prefill is part of the checked history. *)
let prehistory op res =
  [| { Lincheck.History.tid = 0; op; res; invoke = -2; return = -1 } |]

let e7_stack ~spine ~scheme ~runs ~seed =
  let mk () =
    let cfg = list_layout ~backend:Atomics.Backend.Sim ~threads:2 ~capacity:16 in
    let mm = Registry.instantiate scheme cfg in
    let s = Structures.Stack.create mm ~root:0 in
    Structures.Stack.push s ~tid:0 100;
    let hist = Lincheck.History.create ~threads:2 in
    let body tid =
      let push v =
        ignore
          (Lincheck.History.record hist ~tid (Lincheck.Specs.Stack_ops.Push v)
             (fun () ->
               Structures.Stack.push s ~tid v;
               Lincheck.Specs.Stack_ops.Unit))
      in
      let pop () =
        ignore
          (Lincheck.History.record hist ~tid Lincheck.Specs.Stack_ops.Pop
             (fun () ->
               match Structures.Stack.pop s ~tid with
               | Some v -> Lincheck.Specs.Stack_ops.Value v
               | None -> Lincheck.Specs.Stack_ops.Empty))
      in
      if tid = 0 then begin
        push 1;
        pop ();
        pop ()
      end
      else begin
        pop ();
        push 2
      end
    in
    let check () =
      Spine.absorb spine (Mm.counters mm);
      let events =
        Array.append
          (prehistory (Lincheck.Specs.Stack_ops.Push 100)
             Lincheck.Specs.Stack_ops.Unit)
          (Lincheck.History.events hist)
      in
      if not (Stack_check.check events) then raise Not_linearizable
    in
    (body, check)
  in
  Sched.Explore.random_sweep ~threads:2 ~runs ~seed mk

let e7_queue ~spine ~scheme ~runs ~seed =
  let mk () =
    let cfg = list_layout ~backend:Atomics.Backend.Sim ~threads:2 ~capacity:16 in
    let mm = Registry.instantiate scheme cfg in
    let q = Structures.Queue.create mm ~head_root:0 ~tail_root:1 ~tid:0 in
    Structures.Queue.enqueue q ~tid:0 100;
    let hist = Lincheck.History.create ~threads:2 in
    let body tid =
      let enq v =
        ignore
          (Lincheck.History.record hist ~tid (Lincheck.Specs.Queue_ops.Enq v)
             (fun () ->
               Structures.Queue.enqueue q ~tid v;
               Lincheck.Specs.Queue_ops.Unit))
      in
      let deq () =
        ignore
          (Lincheck.History.record hist ~tid Lincheck.Specs.Queue_ops.Deq
             (fun () ->
               match Structures.Queue.dequeue q ~tid with
               | Some v -> Lincheck.Specs.Queue_ops.Value v
               | None -> Lincheck.Specs.Queue_ops.Empty))
      in
      if tid = 0 then begin
        enq 1;
        deq ()
      end
      else begin
        deq ();
        enq 2;
        deq ()
      end
    in
    let check () =
      Spine.absorb spine (Mm.counters mm);
      let events =
        Array.append
          (prehistory (Lincheck.Specs.Queue_ops.Enq 100)
             Lincheck.Specs.Queue_ops.Unit)
          (Lincheck.History.events hist)
      in
      if not (Queue_check.check events) then raise Not_linearizable
    in
    (body, check)
  in
  Sched.Explore.random_sweep ~threads:2 ~runs ~seed mk

let e7_pqueue ~spine ~scheme ~runs ~seed =
  let mk () =
    let cfg =
      Mm.config ~threads:2 ~capacity:32 ~num_links:3 ~num_data:3 ~num_roots:1
        ()
    in
    let mm = Registry.instantiate scheme cfg in
    let pq = Structures.Pqueue.create mm ~seed ~tid:0 in
    Structures.Pqueue.insert pq ~tid:0 50 0;
    let hist = Lincheck.History.create ~threads:2 in
    let body tid =
      let ins k =
        ignore
          (Lincheck.History.record hist ~tid
             (Lincheck.Specs.Pqueue_ops.Insert k) (fun () ->
               Structures.Pqueue.insert pq ~tid k tid;
               Lincheck.Specs.Pqueue_ops.Unit))
      in
      let delmin () =
        ignore
          (Lincheck.History.record hist ~tid Lincheck.Specs.Pqueue_ops.DelMin
             (fun () ->
               match Structures.Pqueue.delete_min pq ~tid with
               | Some (k, _) -> Lincheck.Specs.Pqueue_ops.Key k
               | None -> Lincheck.Specs.Pqueue_ops.Empty))
      in
      if tid = 0 then begin
        ins 10;
        delmin ()
      end
      else begin
        delmin ();
        ins 20
      end
    in
    let check () =
      Spine.absorb spine (Mm.counters mm);
      let events =
        Array.append
          (prehistory (Lincheck.Specs.Pqueue_ops.Insert 50)
             Lincheck.Specs.Pqueue_ops.Unit)
          (Lincheck.History.events hist)
      in
      if not (Pq_check.check events) then raise Not_linearizable
    in
    (body, check)
  in
  Sched.Explore.random_sweep ~threads:2 ~runs ~seed mk

let e7_oset ~spine ~scheme ~runs ~seed =
  let mk () =
    let cfg =
      Mm.config ~threads:2 ~capacity:24 ~num_links:1 ~num_data:2 ~num_roots:0
        ()
    in
    let mm = Registry.instantiate scheme cfg in
    let set = Structures.Oset.create mm ~tid:0 in
    ignore (Structures.Oset.insert set ~tid:0 10 0);
    let hist = Lincheck.History.create ~threads:2 in
    let rec_op tid op f =
      ignore
        (Lincheck.History.record hist ~tid op (fun () ->
             Lincheck.Specs.Set_ops.Bool (f ())))
    in
    let body tid =
      if tid = 0 then begin
        rec_op tid (Lincheck.Specs.Set_ops.Insert 5) (fun () ->
            Structures.Oset.insert set ~tid 5 0);
        rec_op tid (Lincheck.Specs.Set_ops.Remove 10) (fun () ->
            Structures.Oset.remove set ~tid 10)
      end
      else begin
        rec_op tid (Lincheck.Specs.Set_ops.Mem 10) (fun () ->
            Structures.Oset.mem set ~tid 10);
        rec_op tid (Lincheck.Specs.Set_ops.Insert 5) (fun () ->
            Structures.Oset.insert set ~tid 5 1);
        rec_op tid (Lincheck.Specs.Set_ops.Remove 5) (fun () ->
            Structures.Oset.remove set ~tid 5)
      end
    in
    let check () =
      Spine.absorb spine (Mm.counters mm);
      let events =
        Array.append
          (prehistory (Lincheck.Specs.Set_ops.Insert 10)
             (Lincheck.Specs.Set_ops.Bool true))
          (Lincheck.History.events hist)
      in
      if not (Set_check.check events) then raise Not_linearizable
    in
    (body, check)
  in
  Sched.Explore.random_sweep ~threads:2 ~runs ~seed mk

let describe name scheme (r : Sched.Explore.result) =
  [
    Report.Str name;
    Report.Str scheme;
    Report.Int r.schedules_run;
    Report.Str
      (match r.failure with
      | None -> "none"
      | Some f ->
          Printf.sprintf "VIOLATION%s at schedule [%s]"
            (match f.seed with
            | Some s -> Printf.sprintf " (seed %d)" s
            | None -> "")
            (String.concat ";"
               (List.map string_of_int (Array.to_list f.schedule))));
  ]

let e7 ?(runs = 300) ?(seed = 23_000) () =
  let spine = Spine.create () in
  let rows =
    [
      describe "link-semantics" "wfrc"
        (e7_links ~spine ~scheme:"wfrc" ~runs ~seed);
      describe "link-semantics" "lfrc"
        (e7_links ~spine ~scheme:"lfrc" ~runs ~seed);
      describe "alloc-multiset" "wfrc"
        (e7_alloc ~spine ~scheme:"wfrc" ~runs ~seed);
      describe "alloc-multiset" "lfrc"
        (e7_alloc ~spine ~scheme:"lfrc" ~runs ~seed);
      describe "stack-LIFO" "wfrc" (e7_stack ~spine ~scheme:"wfrc" ~runs ~seed);
      describe "stack-LIFO" "lfrc" (e7_stack ~spine ~scheme:"lfrc" ~runs ~seed);
      describe "stack-LIFO" "hp" (e7_stack ~spine ~scheme:"hp" ~runs ~seed);
      describe "queue-FIFO" "wfrc" (e7_queue ~spine ~scheme:"wfrc" ~runs ~seed);
      describe "queue-FIFO" "ebr" (e7_queue ~spine ~scheme:"ebr" ~runs ~seed);
      describe "pqueue-min" "wfrc"
        (e7_pqueue ~spine ~scheme:"wfrc" ~runs ~seed);
      describe "oset" "wfrc" (e7_oset ~spine ~scheme:"wfrc" ~runs ~seed);
      describe "oset" "hp" (e7_oset ~spine ~scheme:"hp" ~runs ~seed);
      describe "oset" "ebr" (e7_oset ~spine ~scheme:"ebr" ~runs ~seed);
    ]
  in
  Report.make ~id:"E7"
    ~title:
      "linearizability sweeps under the deterministic scheduler \
       (Wing–Gong check per schedule)"
    ~cols:
      [
        Report.dim "object";
        Report.dim "scheme";
        Report.measure "schedules";
        Report.measure "violations";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed ~params:[ ("runs", string_of_int runs) ] ())
    ~notes:
      [
        "checks Definition 1 / Lemmas 2–5 operationally: every recorded \
         history must have a legal sequential witness";
      ]
    rows

(* E7D: the full E7 bed matrix over wfrc_deferred. A separate report
   id — not extra E7 rows — so E7's seeded output stays bit-identical
   while the deferred variant earns the same linearizability evidence
   on every bed (the buffered release/cancel fast paths replace the
   shared-count R1/D5 crossings; Definition 1 must survive that). *)
let e7d ?(runs = 300) ?(seed = 23_000) () =
  let spine = Spine.create () in
  let s = "wfrc_deferred" in
  let rows =
    [
      describe "link-semantics" s (e7_links ~spine ~scheme:s ~runs ~seed);
      describe "alloc-multiset" s (e7_alloc ~spine ~scheme:s ~runs ~seed);
      describe "stack-LIFO" s (e7_stack ~spine ~scheme:s ~runs ~seed);
      describe "queue-FIFO" s (e7_queue ~spine ~scheme:s ~runs ~seed);
      describe "pqueue-min" s (e7_pqueue ~spine ~scheme:s ~runs ~seed);
      describe "oset" s (e7_oset ~spine ~scheme:s ~runs ~seed);
    ]
  in
  Report.make ~id:"E7D"
    ~title:
      "linearizability sweeps for wfrc_deferred (all E7 beds under \
       the deferred-buffer protocol)"
    ~cols:
      [
        Report.dim "object";
        Report.dim "scheme";
        Report.measure "schedules";
        Report.measure "violations";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed ~params:[ ("runs", string_of_int runs) ] ())
    ~notes:
      [
        "same Wing–Gong check as E7; the deferred fast paths add no \
         scheduling points of their own, so any violation here is a \
         protocol bug, not a schedule-coverage artifact";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E8: exhaustion behaviour (paper footnote 4).                       *)
(* ------------------------------------------------------------------ *)

let e8 ?(threads_list = [ 1; 2; 4 ]) ?(capacity = 32) () =
  let spine = Spine.create () in
  let rows =
    List.map
      (fun threads ->
        let cfg =
          Mm.config ~backend:Atomics.Backend.Native ~threads ~capacity
            ~num_links:0 ~num_data:1 ~num_roots:0 ()
        in
        let mm = Registry.instantiate "wfrc" cfg in
        Spine.wrap spine mm @@ fun () ->
        let held = Array.make threads [] in
        let oom = Array.make threads 0 in
        ignore
          (Runner.run ~threads (fun ~tid ->
               try
                 while true do
                   held.(tid) <- Mm.alloc mm ~tid :: held.(tid)
                 done
               with Mm.Out_of_memory | Mm.Out_of_nodes _ -> oom.(tid) <- 1));
        let allocated =
          Array.fold_left (fun a l -> a + List.length l) 0 held
        in
        let parked = capacity - allocated - Mm.free_count mm in
        (* free_count counts annAlloc-parked nodes as free. *)
        let parked_in_ann = Mm.free_count mm in
        Array.iteri
          (fun tid l -> List.iter (fun p -> Mm.release mm ~tid p) l)
          held;
        (* A donation parked in annAlloc[tid] is retrieved by that
           thread's next allocation (A4) — demonstrate the recovery
           with one bounded alloc/release round per thread. *)
        for tid = 0 to threads - 1 do
          match Mm.alloc mm ~tid with
          | p -> Mm.release mm ~tid p
          | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ()
        done;
        let final_free = Mm.free_count mm in
        Mm.validate mm;
        [
          Report.Int threads;
          Report.Int capacity;
          Report.Int allocated;
          Report.Int parked_in_ann;
          Report.Int parked;
          Report.Int final_free;
          Report.Str (if final_free = capacity then "ok" else "LEAK");
        ])
      threads_list
  in
  Report.make ~id:"E8"
    ~title:"allocation at exhaustion: OOM detection and conservation"
    ~cols:
      [
        Report.dim "threads";
        Report.measure ~unit_:"nodes" "capacity";
        Report.measure ~unit_:"nodes" "allocated@OOM";
        Report.measure ~unit_:"nodes" "parked";
        Report.measure ~unit_:"nodes" "lost";
        Report.measure ~unit_:"nodes" "free-after-drain";
        Report.measure "conservation";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~backend:Atomics.Backend.Native
         ~params:[ ("capacity", string_of_int capacity) ]
         ())
    ~notes:
      [
        "footnote 4: OOM is detected by a bounded retry budget";
        "up to N-1 nodes can be parked in annAlloc donations at OOM \
         time; they are recovered by later allocations";
      ]
    rows

let specs =
  [
    Exp.spec ~id:"e7"
      ~descr:"linearizability sweeps (Definition 1, Lemmas 2-5)"
      (fun { Exp.quick } -> if quick then e7 ~runs:60 () else e7 ());
    Exp.spec ~id:"e7d"
      ~descr:"linearizability sweeps for wfrc_deferred (all E7 beds)"
      (fun { Exp.quick } -> if quick then e7d ~runs:60 () else e7d ());
    Exp.spec ~id:"e8" ~descr:"exhaustion/OOM behaviour (footnote 4)"
      (fun { Exp.quick } ->
        if quick then e8 ~threads_list:[ 1; 2 ] () else e8 ());
  ]
