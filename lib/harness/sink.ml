(* Pluggable renderers over Report.t: the aligned console table (the
   historical CLI output), CSV, JSON Lines, and a JSON file writer
   (one REPORT_<id>.json per report, the machine-readable record every
   experiment now feeds the bench trajectory through).

   JSON is hand-rolled (no JSON library in the build closure); strings
   are escaped, non-finite floats become null. *)

type t = Table | Csv | Jsonl

let all = [ ("table", Table); ("csv", Csv); ("jsonl", Jsonl) ]

(* ---------------- JSON helpers ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = "\"" ^ json_escape s ^ "\""

let json_float f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | _ -> Printf.sprintf "%g" f

let json_of_cell = function
  | Report.Int i -> string_of_int i
  | Report.Ns n -> string_of_int n
  | Report.Float f | Report.Pct f | Report.Ops f -> json_float f
  | Report.Str s -> json_str s

let json_obj fields =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> json_str k ^ ": " ^ v) fields)
  ^ "}"

let json_arr items = "[" ^ String.concat ", " items ^ "]"

let json_of_meta (m : Report.meta) =
  json_obj
    [
      ("quick", if m.quick then "true" else "false");
      ("seed", match m.seed with None -> "null" | Some s -> string_of_int s);
      ("backend", match m.backend with None -> "null" | Some b -> json_str b);
      ("params", json_obj (List.map (fun (k, v) -> (k, json_str v)) m.params));
    ]

let json_of_col (c : Report.col) =
  json_obj
    (("name", json_str c.name)
     :: ("role", json_str (match c.role with Report.Dim -> "dim" | Report.Measure -> "measure"))
     :: (match c.unit_ with None -> [] | Some u -> [ ("unit", json_str u) ]))

let json_of_row (r : Report.t) row =
  json_obj (List.map2 (fun (c : Report.col) v -> (c.name, json_of_cell v)) r.cols row)

let to_json (r : Report.t) =
  let b = Buffer.create 1024 in
  let field ?(last = false) k v =
    Buffer.add_string b "  ";
    Buffer.add_string b (json_str k);
    Buffer.add_string b ": ";
    Buffer.add_string b v;
    if not last then Buffer.add_char b ',';
    Buffer.add_char b '\n'
  in
  Buffer.add_string b "{\n";
  field "id" (json_str r.id);
  field "title" (json_str r.title);
  field "meta" (json_of_meta r.meta);
  field "columns" (json_arr (List.map json_of_col r.cols));
  field "rows"
    ("[\n    "
    ^ String.concat ",\n    " (List.map (json_of_row r) r.rows)
    ^ "\n  ]");
  field "counters"
    (json_obj (List.map (fun (k, n) -> (k, string_of_int n)) r.counters));
  field ~last:true "notes" (json_arr (List.map json_str r.notes));
  Buffer.add_string b "}\n";
  Buffer.contents b

(* One JSON object per row, each tagged with the report id: the
   concatenation-friendly format for trajectory tooling. *)
let jsonl (r : Report.t) =
  String.concat ""
    (List.map
       (fun row ->
         json_obj (("report", json_str r.id)
                   :: List.map2
                        (fun (c : Report.col) v -> (c.name, json_of_cell v))
                        r.cols row)
         ^ "\n")
       r.rows)

(* ---------------- rendering ---------------- *)

let render sink (r : Report.t) =
  match sink with
  | Table -> Table.render ~headers:(Report.headers r) ~rows:(Report.row_strings r)
  | Csv -> Table.csv ~headers:(Report.headers r) ~rows:(Report.row_strings r)
  | Jsonl -> jsonl r

(* The historical console output: banner, body, notes. The JSONL sink
   is bare lines (machine-consumed), so it gets no banner. *)
let print sink (r : Report.t) =
  (match sink with
  | Table | Csv ->
      Printf.printf "== %s: %s ==\n" r.id r.title;
      print_string (render sink r);
      List.iter (fun n -> Printf.printf "note: %s\n" n) r.notes;
      print_newline ()
  | Jsonl -> print_string (render Jsonl r))

let report_filename (r : Report.t) = Printf.sprintf "REPORT_%s.json" r.id

let write_json ~dir (r : Report.t) =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir (report_filename r) in
  let oc = open_out path in
  output_string oc (to_json r);
  close_out oc;
  path
