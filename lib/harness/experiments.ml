(* The experiment suite, aggregated from the family modules. Each
   family exports an [Exp.spec list]; this module derives the
   registry, the id list and the by-id runner, and re-exports the
   individual entry points for direct (test) use. Every experiment
   returns a typed {!Report.t}; all randomness flows from explicit
   seeds. *)

let all : Exp.spec list =
  Exp.sort
    (Exp_throughput.specs @ Exp_contention.specs @ Exp_steps.specs
   @ Exp_lincheck.specs @ Exp_ratio.specs @ Exp_fault.specs
   @ Exp_shard.specs @ Exp_native.specs @ Exp_analysis.specs
   @ Exp_deferred.specs @ Exp_actor.specs)

let ids = Exp.ids all
let specs = all
let run ?quick id = Exp.run all ?quick id

(* Direct entry points (full-size defaults), family by family. *)
let e1 = Exp_throughput.e1
let e2 = Exp_contention.e2
let e3 = Exp_contention.e3
let e4 = Exp_steps.e4
let e5 = Exp_steps.e5
let e7 = Exp_lincheck.e7
let e7d = Exp_lincheck.e7d
let e8 = Exp_lincheck.e8
let e9 = Exp_throughput.e9
let e10 = Exp_ratio.e10
let e11 = Exp_throughput.e11
let e12 = Exp_fault.e12
let e13 = Exp_fault.e13
let e14 = Exp_shard.e14
let e15 = Exp_native.e15
let e16 = Exp_fault.e16
let e17 = Exp_deferred.e17
let e18 = Exp_actor.e18
let a1 = Exp_ratio.a1
let a2 = Exp_ratio.a2
let a3 = Exp_ratio.a3
let a4 = Exp_analysis.a4
