(* The experiment suite: one entry point per experiment id of
   DESIGN.md §4 / EXPERIMENTS.md. Every experiment returns a [report]
   (title, table, notes) that the CLI prints and the tests probe for
   shape. All randomness flows from explicit seeds. *)

module Mm = Mm_intf
module Rng = Sched.Rng
module Value = Shmem.Value

type report = {
  id : string;
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

let print ?(csv = false) r =
  Printf.printf "== %s: %s ==\n" r.id r.title;
  if csv then print_string (Table.csv ~headers:r.headers ~rows:r.rows)
  else print_string (Table.render ~headers:r.headers ~rows:r.rows);
  List.iter (fun n -> Printf.printf "note: %s\n" n) r.notes;
  print_newline ()

let f1 x = Printf.sprintf "%.1f" x

(* Layouts. Each experiment states its backend explicitly: [Native]
   for the Domain-parallel throughput/latency runs (driven by
   [Runner.run], where no deterministic scheduler is installed and
   hook-free padded cells measure the real machine), [Sim] wherever
   [Sched.Engine] or [Sched.Explore] drives the interleaving — those
   threads only yield at scheduling points, so a [Native] manager
   would never hand control back. *)
let pq_layout ~backend ~threads ~capacity =
  Mm.config ~backend ~threads ~capacity ~num_links:6 ~num_data:3 ~num_roots:1
    ()

let list_layout ~backend ~threads ~capacity =
  Mm.config ~backend ~threads ~capacity ~num_links:1 ~num_data:1 ~num_roots:4
    ()

(* ------------------------------------------------------------------ *)
(* E1: priority-queue throughput, WFRC vs baselines (paper §5).       *)
(* ------------------------------------------------------------------ *)

let pq_worker pq ~tid ops =
  Array.iter
    (fun op ->
      match op with
      | Workload.Produce k -> (
          try Structures.Pqueue.insert pq ~tid (k + 1) tid
          with Mm.Out_of_memory -> ())
      | Workload.Consume -> ignore (Structures.Pqueue.delete_min pq ~tid))
    ops

let e1 ?(schemes = Registry.rc_names) ?(threads_list = [ 1; 2; 4; 8 ])
    ?(ops = 40_000) ?(capacity = 1 lsl 14) ?(key_range = 1 lsl 16)
    ?(seed = 42_001) () =
  let rows =
    List.map
      (fun scheme ->
        scheme
        :: List.map
             (fun threads ->
               let cfg =
                 pq_layout ~backend:Atomics.Backend.Native ~threads ~capacity
               in
               let mm = Registry.instantiate scheme cfg in
               let pq = Structures.Pqueue.create mm ~seed ~tid:0 in
               (* Prefill to steady state. *)
               let rng = Rng.create (seed + 1) in
               for _ = 1 to capacity / 8 do
                 Structures.Pqueue.insert pq ~tid:0
                   (1 + Rng.int rng key_range)
                   0
               done;
               let per_thread = ops / threads in
               let streams =
                 Workload.per_thread ~threads ~seed:(seed + 2) (fun rng ->
                     Workload.mixed ~rng ~n:per_thread ~produce_pct:50
                       ~key_range)
               in
               let result =
                 Runner.run ~threads (fun ~tid ->
                     pq_worker pq ~tid streams.(tid))
               in
               Metrics.ops_to_string
                 (Runner.throughput ~ops:(per_thread * threads) result))
             threads_list)
      schemes
  in
  {
    id = "E1";
    title = "priority-queue throughput (ops/s), 50/50 insert/delete-min";
    headers =
      "scheme" :: List.map (fun t -> Printf.sprintf "%dT" t) threads_list;
    rows;
    notes =
      [
        "paper §5: WFRC is asymptotically similar to the default \
         lock-free (Valois) scheme on this workload";
        "single hardware core: threads interleave by preemption; compare \
         ratios across schemes, not absolute scaling";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E2: bounded de-reference steps under an adversarial updater.       *)
(* ------------------------------------------------------------------ *)

(* One victim de-reference racing [budget] link flips by an adversary,
   under a biased deterministic schedule. Returns the maximum number
   of scheduler steps the victim needed over [seeds] schedules. *)
let e2_one ~scheme ~budget ~seeds ~seed =
  let victim_max = ref 0 in
  for s = 0 to seeds - 1 do
    let cfg =
      Mm.config ~threads:2 ~capacity:64 ~num_links:1 ~num_data:1
        ~num_roots:1 ()
    in
    let mm = Registry.instantiate scheme cfg in
    let arena = Mm.arena mm in
    let root = Shmem.Arena.root_addr arena 0 in
    let a = Mm.alloc mm ~tid:0 in
    Mm.store_link mm ~tid:0 root a;
    Mm.release mm ~tid:0 a;
    let body tid =
      if tid = 0 then begin
        let p = Mm.deref mm ~tid root in
        if not (Value.is_null p) then Mm.release mm ~tid p
      end
      else
        for _ = 1 to budget do
          let b = Mm.alloc mm ~tid in
          let rec flip () =
            let old = Mm.deref mm ~tid root in
            let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
            if not (Value.is_null old) then Mm.release mm ~tid old;
            if not ok then flip ()
          in
          flip ();
          Mm.release mm ~tid b
        done
    in
    let policy = Sched.Policy.biased ~seed:(seed + s) ~victim:0 ~weight:6 in
    let outcome = Sched.Engine.run ~threads:2 ~policy body in
    if outcome.steps.(0) > !victim_max then victim_max := outcome.steps.(0)
  done;
  !victim_max

let e2 ?(schemes = [ "wfrc"; "lfrc"; "lockrc" ]) ?(budgets = [ 0; 4; 16; 64 ])
    ?(seeds = 25) ?(seed = 7_000) () =
  let rows =
    List.map
      (fun budget ->
        string_of_int budget
        :: List.map
             (fun scheme ->
               string_of_int (e2_one ~scheme ~budget ~seeds ~seed))
             schemes)
      budgets
  in
  {
    id = "E2";
    title =
      "max victim steps for one DeRefLink vs adversary link-flip budget \
       (deterministic scheduler)";
    headers = "flips" :: schemes;
    rows;
    notes =
      [
        "wfrc: bounded regardless of budget (Lemma 6 wait-freedom)";
        "lfrc: retries grow with adversary budget (Valois unbounded \
         retry, paper §3)";
        "lockrc: victim spins while the preempted adversary holds the \
         lock";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E3: the wait-free free-list vs the single Treiber free-list.       *)
(* ------------------------------------------------------------------ *)

let e3 ?(schemes = [ "wfrc"; "lfrc"; "lockrc" ])
    ?(threads_list = [ 1; 2; 4; 8 ]) ?(ops = 60_000) ?(capacity = 1 lsl 13)
    ?(max_burst = 8) ?(seed = 11_000) () =
  let rows = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun threads ->
          let cfg =
            list_layout ~backend:Atomics.Backend.Native ~threads ~capacity
          in
          let mm = Registry.instantiate scheme cfg in
          let per_thread = ops / threads in
          let bursts =
            Workload.per_thread ~threads ~seed (fun rng ->
                Workload.churn_bursts ~rng ~n:per_thread ~max_burst)
          in
          let result =
            Runner.run ~threads (fun ~tid ->
                let held = Array.make max_burst Value.null in
                Array.iter
                  (fun burst ->
                    let got = ref 0 in
                    (try
                       for i = 0 to burst - 1 do
                         held.(i) <- Mm.alloc mm ~tid;
                         incr got
                       done
                     with Mm.Out_of_memory -> ());
                    for i = 0 to !got - 1 do
                      Mm.release mm ~tid held.(i)
                    done)
                  bursts.(tid))
          in
          let ctr = Mm.counters mm in
          let allocs = Atomics.Counters.total ctr Alloc in
          let per1k ev =
            if allocs = 0 then 0.0
            else
              1000.0
              *. float_of_int (Atomics.Counters.total ctr ev)
              /. float_of_int allocs
          in
          let tput = Runner.throughput ~ops:allocs result in
          rows :=
            [
              scheme;
              string_of_int threads;
              Metrics.ops_to_string tput;
              f1 (per1k Alloc_retry);
              f1 (per1k Free_retry);
              f1 (per1k Alloc_helped);
              f1 (per1k Free_gave_help);
            ]
            :: !rows)
        threads_list)
    schemes;
  {
    id = "E3";
    title = "alloc/free churn: throughput and retry/help rates";
    headers =
      [
        "scheme"; "threads"; "allocs/s"; "aretry/1k"; "fretry/1k";
        "helped/1k"; "donated/1k";
      ];
    rows = List.rev !rows;
    notes =
      [
        "wfrc splits traffic over 2N free-lists and helps round-robin \
         (§3.1); lfrc contends on one stamped Treiber head";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E4: helping-rate accounting for the wait-free scheme.              *)
(* ------------------------------------------------------------------ *)

let e4 ?(threads_list = [ 2; 4; 8 ]) ?(ops = 24) ?(runs = 80)
    ?(seed = 13_000) () =
  (* Native time slicing almost never preempts inside the tiny D1–D6
     window, so helping would look inert; the deterministic scheduler
     interleaves at primitive granularity, where helping actually
     fires — the regime the paper's proofs quantify over. *)
  let rows =
    List.map
      (fun threads ->
        let totals = Hashtbl.create 16 in
        let add ev n =
          Hashtbl.replace totals ev
            (n + Option.value ~default:0 (Hashtbl.find_opt totals ev))
        in
        for r = 0 to runs - 1 do
          let cfg =
            Mm.config ~threads ~capacity:(8 * threads) ~num_links:1
              ~num_data:1 ~num_roots:2 ()
          in
          let mm = Registry.instantiate "wfrc" cfg in
          let arena = Mm.arena mm in
          let roots =
            Array.init 2 (fun i -> Shmem.Arena.root_addr arena i)
          in
          Array.iter
            (fun root ->
              let a = Mm.alloc mm ~tid:0 in
              Mm.store_link mm ~tid:0 root a;
              Mm.release mm ~tid:0 a)
            roots;
          let body tid =
            let rng = Rng.create (seed + (r * 131) + tid) in
            for _ = 1 to ops do
              let root = roots.(Rng.int rng 2) in
              if Rng.int rng 100 < 60 then begin
                let p = Mm.deref mm ~tid root in
                if not (Value.is_null p) then Mm.release mm ~tid p
              end
              else begin
                match Mm.alloc mm ~tid with
                | b ->
                    let old = Mm.deref mm ~tid root in
                    ignore (Mm.cas_link mm ~tid root ~old ~nw:b);
                    if not (Value.is_null old) then Mm.release mm ~tid old;
                    Mm.release mm ~tid b
                | exception Mm.Out_of_memory -> ()
              end
            done
          in
          let policy = Sched.Policy.random ~seed:(seed + r) in
          ignore (Sched.Engine.run ~threads ~policy body);
          let ctr = Mm.counters mm in
          List.iter
            (fun ev -> add ev (Atomics.Counters.total ctr ev))
            Atomics.Counters.all_events
        done;
        let tot ev = Option.value ~default:0 (Hashtbl.find_opt totals ev) in
        let derefs = tot Deref in
        let pct a b =
          if b = 0 then "0.0%"
          else Printf.sprintf "%.2f%%" (100.0 *. float_of_int a /. float_of_int b)
        in
        [
          string_of_int threads;
          string_of_int derefs;
          pct (tot Deref_helped) derefs;
          string_of_int (tot Help_answered);
          string_of_int (tot Help_refused);
          pct (tot Alloc_helped) (tot Alloc);
          pct (tot Free_gave_help) (tot Free);
        ])
      threads_list
  in
  {
    id = "E4";
    title =
      "WFRC helping-mechanism accounting (60% deref / 40% update mix, \
       deterministic scheduler)";
    headers =
      [
        "threads"; "derefs"; "deref-helped"; "answers"; "refused";
        "alloc-helped"; "free-donated";
      ];
    rows;
    notes =
      [
        "helping is the price of wait-freedom: rates grow with \
         contention but each op stays bounded";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E5: per-operation latency distribution (the real-time argument).   *)
(* ------------------------------------------------------------------ *)

let e5 ?(schemes = Registry.rc_names) ?(threads = 4) ?(ops = 40_000)
    ?(capacity = 1 lsl 14) ?(key_range = 1 lsl 16) ?(seed = 17_000) () =
  let rows =
    List.map
      (fun scheme ->
        let cfg =
          pq_layout ~backend:Atomics.Backend.Native ~threads ~capacity
        in
        let mm = Registry.instantiate scheme cfg in
        let pq = Structures.Pqueue.create mm ~seed ~tid:0 in
        let rng = Rng.create (seed + 1) in
        for _ = 1 to capacity / 8 do
          Structures.Pqueue.insert pq ~tid:0 (1 + Rng.int rng key_range) 0
        done;
        let per_thread = ops / threads in
        let streams =
          Workload.per_thread ~threads ~seed:(seed + 2) (fun rng ->
              Workload.mixed ~rng ~n:per_thread ~produce_pct:50 ~key_range)
        in
        let hists = Array.init threads (fun _ -> Metrics.Hist.create ()) in
        ignore
          (Runner.run ~threads (fun ~tid ->
               let h = hists.(tid) in
               Array.iter
                 (fun op ->
                   let t0 = Runner.now_ns () in
                   (match op with
                   | Workload.Produce k -> (
                       try Structures.Pqueue.insert pq ~tid (k + 1) tid
                       with Mm.Out_of_memory -> ())
                   | Workload.Consume ->
                       ignore (Structures.Pqueue.delete_min pq ~tid));
                   Metrics.Hist.add h (Runner.now_ns () - t0))
                 streams.(tid)));
        let h = Metrics.Hist.create () in
        Array.iter (fun h' -> Metrics.Hist.merge_into h h') hists;
        [
          scheme;
          Metrics.ns_to_string (Metrics.Hist.percentile h 0.50);
          Metrics.ns_to_string (Metrics.Hist.percentile h 0.99);
          Metrics.ns_to_string (Metrics.Hist.percentile h 0.999);
          Metrics.ns_to_string (Metrics.Hist.max_value h);
        ])
      schemes
  in
  {
    id = "E5";
    title =
      Printf.sprintf
        "priority-queue per-op latency at %d threads (p50/p99/p99.9/max)"
        threads;
    headers = [ "scheme"; "p50"; "p99"; "p99.9"; "max" ];
    rows;
    notes =
      [
        "paper §5: the wait-free scheme's strength is the execution-time \
         guarantee (tail), not the average";
        "on one preemptive core the max column is dominated by \
         time-slice effects; lockrc additionally convoys behind a \
         preempted lock holder";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E7: linearizability sweeps (Definition 1, Lemmas 2–5).             *)
(* ------------------------------------------------------------------ *)

module Link_check = Lincheck.Checker.Make (Lincheck.Specs.Link_ops)
module Alloc_check = Lincheck.Checker.Make (Lincheck.Specs.Alloc_ops)
module Stack_check = Lincheck.Checker.Make (Lincheck.Specs.Stack_ops)
module Queue_check = Lincheck.Checker.Make (Lincheck.Specs.Queue_ops)
module Pq_check = Lincheck.Checker.Make (Lincheck.Specs.Pqueue_ops)
module Set_check = Lincheck.Checker.Make (Lincheck.Specs.Set_ops)

exception Not_linearizable

(* Shared-link semantics on a given scheme: two readers + one updater
   over two links. *)
let e7_links ~scheme ~runs ~seed =
  let mk () =
    let cfg =
      Mm.config ~threads:3 ~capacity:32 ~num_links:1 ~num_data:1 ~num_roots:2
        ()
    in
    let mm = Registry.instantiate scheme cfg in
    let arena = Mm.arena mm in
    let l0 = Shmem.Arena.root_addr arena 0 in
    let l1 = Shmem.Arena.root_addr arena 1 in
    let a = Mm.alloc mm ~tid:0 and b = Mm.alloc mm ~tid:0 in
    Mm.store_link mm ~tid:0 l0 a;
    Mm.store_link mm ~tid:0 l1 b;
    Lincheck.Specs.Link_ops.set_initial [ (l0, a); (l1, b) ];
    Mm.release mm ~tid:0 a;
    Mm.release mm ~tid:0 b;
    let hist = Lincheck.History.create ~threads:3 in
    let deref tid l =
      let w =
        Lincheck.History.record hist ~tid (Lincheck.Specs.Link_ops.Deref l)
          (fun () -> Lincheck.Specs.Link_ops.Word (Mm.deref mm ~tid l))
      in
      match w with
      | Lincheck.Specs.Link_ops.Word p ->
          if not (Value.is_null p) then Mm.release mm ~tid p
      | _ -> ()
    in
    let body tid =
      match tid with
      | 0 | 1 ->
          deref tid l0;
          deref tid l1
      | _ ->
          (* updater: move a fresh node into l0 *)
          let n = Mm.alloc mm ~tid in
          let old = Mm.deref mm ~tid l0 in
          let _ =
            Lincheck.History.record hist ~tid
              (Lincheck.Specs.Link_ops.Cas (l0, old, n)) (fun () ->
                Lincheck.Specs.Link_ops.Bool
                  (Mm.cas_link mm ~tid l0 ~old ~nw:n))
          in
          if not (Value.is_null old) then Mm.release mm ~tid old;
          Mm.release mm ~tid n
    in
    let check () =
      let events = Lincheck.History.events hist in
      if not (Link_check.check events) then raise Not_linearizable
    in
    (body, check)
  in
  Sched.Explore.random_sweep ~threads:3 ~runs ~seed mk

(* AllocNode/FreeNode multiset semantics: concurrent alloc/release
   cycles must never hand the same node to two holders. *)
let e7_alloc ~scheme ~runs ~seed =
  let mk () =
    let cfg =
      Mm.config ~threads:3 ~capacity:8 ~num_links:0 ~num_data:1 ~num_roots:0
        ()
    in
    let mm = Registry.instantiate scheme cfg in
    let hist = Lincheck.History.create ~threads:3 in
    let body tid =
      for _ = 1 to 2 do
        match
          Lincheck.History.record hist ~tid Lincheck.Specs.Alloc_ops.Alloc
            (fun () ->
              Lincheck.Specs.Alloc_ops.Node (Value.handle (Mm.alloc mm ~tid)))
        with
        | Lincheck.Specs.Alloc_ops.Node h ->
            Lincheck.History.record hist ~tid
              (Lincheck.Specs.Alloc_ops.Free h) (fun () ->
                Mm.release mm ~tid (Value.of_handle h);
                Lincheck.Specs.Alloc_ops.Unit)
            |> ignore
        | _ -> ()
        | exception Mm.Out_of_memory -> ()
      done
    in
    let check () =
      let events = Lincheck.History.events hist in
      if not (Alloc_check.check events) then raise Not_linearizable;
      Mm.validate mm
    in
    (body, check)
  in
  Sched.Explore.random_sweep ~threads:3 ~runs ~seed mk

let e7_stack ~scheme ~runs ~seed =
  let mk () =
    let cfg = list_layout ~backend:Atomics.Backend.Sim ~threads:2 ~capacity:16 in
    let mm = Registry.instantiate scheme cfg in
    let s = Structures.Stack.create mm ~root:0 in
    Structures.Stack.push s ~tid:0 100;
    let hist = Lincheck.History.create ~threads:2 in
    let body tid =
      let push v =
        ignore
          (Lincheck.History.record hist ~tid (Lincheck.Specs.Stack_ops.Push v)
             (fun () ->
               Structures.Stack.push s ~tid v;
               Lincheck.Specs.Stack_ops.Unit))
      in
      let pop () =
        ignore
          (Lincheck.History.record hist ~tid Lincheck.Specs.Stack_ops.Pop
             (fun () ->
               match Structures.Stack.pop s ~tid with
               | Some v -> Lincheck.Specs.Stack_ops.Value v
               | None -> Lincheck.Specs.Stack_ops.Empty))
      in
      if tid = 0 then begin
        push 1;
        pop ();
        pop ()
      end
      else begin
        pop ();
        push 2
      end
    in
    let check () =
      (* The prefill push is part of the sequential prehistory. *)
      let events = Lincheck.History.events hist in
      let events =
        Array.append
          [|
            {
              Lincheck.History.tid = 0;
              op = Lincheck.Specs.Stack_ops.Push 100;
              res = Lincheck.Specs.Stack_ops.Unit;
              invoke = -2;
              return = -1;
            };
          |]
          events
      in
      if not (Stack_check.check events) then raise Not_linearizable
    in
    (body, check)
  in
  Sched.Explore.random_sweep ~threads:2 ~runs ~seed mk

let e7_queue ~scheme ~runs ~seed =
  let mk () =
    let cfg = list_layout ~backend:Atomics.Backend.Sim ~threads:2 ~capacity:16 in
    let mm = Registry.instantiate scheme cfg in
    let q = Structures.Queue.create mm ~head_root:0 ~tail_root:1 ~tid:0 in
    Structures.Queue.enqueue q ~tid:0 100;
    let hist = Lincheck.History.create ~threads:2 in
    let body tid =
      let enq v =
        ignore
          (Lincheck.History.record hist ~tid (Lincheck.Specs.Queue_ops.Enq v)
             (fun () ->
               Structures.Queue.enqueue q ~tid v;
               Lincheck.Specs.Queue_ops.Unit))
      in
      let deq () =
        ignore
          (Lincheck.History.record hist ~tid Lincheck.Specs.Queue_ops.Deq
             (fun () ->
               match Structures.Queue.dequeue q ~tid with
               | Some v -> Lincheck.Specs.Queue_ops.Value v
               | None -> Lincheck.Specs.Queue_ops.Empty))
      in
      if tid = 0 then begin
        enq 1;
        deq ()
      end
      else begin
        deq ();
        enq 2;
        deq ()
      end
    in
    let check () =
      let events = Lincheck.History.events hist in
      let events =
        Array.append
          [|
            {
              Lincheck.History.tid = 0;
              op = Lincheck.Specs.Queue_ops.Enq 100;
              res = Lincheck.Specs.Queue_ops.Unit;
              invoke = -2;
              return = -1;
            };
          |]
          events
      in
      if not (Queue_check.check events) then raise Not_linearizable
    in
    (body, check)
  in
  Sched.Explore.random_sweep ~threads:2 ~runs ~seed mk

let e7_pqueue ~scheme ~runs ~seed =
  let mk () =
    let cfg =
      Mm.config ~threads:2 ~capacity:32 ~num_links:3 ~num_data:3 ~num_roots:1
        ()
    in
    let mm = Registry.instantiate scheme cfg in
    let pq = Structures.Pqueue.create mm ~seed ~tid:0 in
    Structures.Pqueue.insert pq ~tid:0 50 0;
    let hist = Lincheck.History.create ~threads:2 in
    let body tid =
      let ins k =
        ignore
          (Lincheck.History.record hist ~tid
             (Lincheck.Specs.Pqueue_ops.Insert k) (fun () ->
               Structures.Pqueue.insert pq ~tid k tid;
               Lincheck.Specs.Pqueue_ops.Unit))
      in
      let delmin () =
        ignore
          (Lincheck.History.record hist ~tid Lincheck.Specs.Pqueue_ops.DelMin
             (fun () ->
               match Structures.Pqueue.delete_min pq ~tid with
               | Some (k, _) -> Lincheck.Specs.Pqueue_ops.Key k
               | None -> Lincheck.Specs.Pqueue_ops.Empty))
      in
      if tid = 0 then begin
        ins 10;
        delmin ()
      end
      else begin
        delmin ();
        ins 20
      end
    in
    let check () =
      let events = Lincheck.History.events hist in
      let events =
        Array.append
          [|
            {
              Lincheck.History.tid = 0;
              op = Lincheck.Specs.Pqueue_ops.Insert 50;
              res = Lincheck.Specs.Pqueue_ops.Unit;
              invoke = -2;
              return = -1;
            };
          |]
          events
      in
      if not (Pq_check.check events) then raise Not_linearizable
    in
    (body, check)
  in
  Sched.Explore.random_sweep ~threads:2 ~runs ~seed mk

let e7_oset ~scheme ~runs ~seed =
  let mk () =
    let cfg =
      Mm.config ~threads:2 ~capacity:24 ~num_links:1 ~num_data:2 ~num_roots:0
        ()
    in
    let mm = Registry.instantiate scheme cfg in
    let set = Structures.Oset.create mm ~tid:0 in
    ignore (Structures.Oset.insert set ~tid:0 10 0);
    let hist = Lincheck.History.create ~threads:2 in
    let rec_op tid op f =
      ignore
        (Lincheck.History.record hist ~tid op (fun () ->
             Lincheck.Specs.Set_ops.Bool (f ())))
    in
    let body tid =
      if tid = 0 then begin
        rec_op tid (Lincheck.Specs.Set_ops.Insert 5) (fun () ->
            Structures.Oset.insert set ~tid 5 0);
        rec_op tid (Lincheck.Specs.Set_ops.Remove 10) (fun () ->
            Structures.Oset.remove set ~tid 10)
      end
      else begin
        rec_op tid (Lincheck.Specs.Set_ops.Mem 10) (fun () ->
            Structures.Oset.mem set ~tid 10);
        rec_op tid (Lincheck.Specs.Set_ops.Insert 5) (fun () ->
            Structures.Oset.insert set ~tid 5 1);
        rec_op tid (Lincheck.Specs.Set_ops.Remove 5) (fun () ->
            Structures.Oset.remove set ~tid 5)
      end
    in
    let check () =
      let events = Lincheck.History.events hist in
      let events =
        Array.append
          [|
            {
              Lincheck.History.tid = 0;
              op = Lincheck.Specs.Set_ops.Insert 10;
              res = Lincheck.Specs.Set_ops.Bool true;
              invoke = -2;
              return = -1;
            };
          |]
          events
      in
      if not (Set_check.check events) then raise Not_linearizable
    in
    (body, check)
  in
  Sched.Explore.random_sweep ~threads:2 ~runs ~seed mk

let e7 ?(runs = 300) ?(seed = 23_000) () =
  let describe name scheme (r : Sched.Explore.result) =
    [
      name;
      scheme;
      string_of_int r.schedules_run;
      (match r.failure with
      | None -> "none"
      | Some f ->
          Printf.sprintf "VIOLATION at schedule [%s]"
            (String.concat ";"
               (List.map string_of_int (Array.to_list f.schedule))));
    ]
  in
  let rows =
    [
      describe "link-semantics" "wfrc" (e7_links ~scheme:"wfrc" ~runs ~seed);
      describe "link-semantics" "lfrc" (e7_links ~scheme:"lfrc" ~runs ~seed);
      describe "alloc-multiset" "wfrc" (e7_alloc ~scheme:"wfrc" ~runs ~seed);
      describe "alloc-multiset" "lfrc" (e7_alloc ~scheme:"lfrc" ~runs ~seed);
      describe "stack-LIFO" "wfrc" (e7_stack ~scheme:"wfrc" ~runs ~seed);
      describe "stack-LIFO" "lfrc" (e7_stack ~scheme:"lfrc" ~runs ~seed);
      describe "stack-LIFO" "hp" (e7_stack ~scheme:"hp" ~runs ~seed);
      describe "queue-FIFO" "wfrc" (e7_queue ~scheme:"wfrc" ~runs ~seed);
      describe "queue-FIFO" "ebr" (e7_queue ~scheme:"ebr" ~runs ~seed);
      describe "pqueue-min" "wfrc" (e7_pqueue ~scheme:"wfrc" ~runs ~seed);
      describe "oset" "wfrc" (e7_oset ~scheme:"wfrc" ~runs ~seed);
      describe "oset" "hp" (e7_oset ~scheme:"hp" ~runs ~seed);
      describe "oset" "ebr" (e7_oset ~scheme:"ebr" ~runs ~seed);
    ]
  in
  {
    id = "E7";
    title =
      "linearizability sweeps under the deterministic scheduler \
       (Wing–Gong check per schedule)";
    headers = [ "object"; "scheme"; "schedules"; "violations" ];
    rows;
    notes =
      [
        "checks Definition 1 / Lemmas 2–5 operationally: every recorded \
         history must have a legal sequential witness";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E9: the applicability boundary in numbers — the ordered set runs   *)
(* on all five schemes (Michael's unlink-then-retire discipline),     *)
(* while the skiplist cannot leave reference counting (§1).           *)
(* ------------------------------------------------------------------ *)

let e9 ?(schemes = Registry.names) ?(threads_list = [ 1; 2; 4 ])
    ?(ops = 30_000) ?(capacity = 4096) ?(key_range = 512) ?(seed = 19_000) ()
    =
  let rows =
    List.map
      (fun scheme ->
        scheme
        :: List.map
             (fun threads ->
               let cfg =
                 Mm.config ~backend:Atomics.Backend.Native ~threads
                   ~capacity ~num_links:1 ~num_data:2 ~num_roots:0 ()
               in
               let mm = Registry.instantiate scheme cfg in
               let set = Structures.Oset.create mm ~tid:0 in
               (* prefill to ~half the key range *)
               let rng = Rng.create (seed + 1) in
               for _ = 1 to key_range / 2 do
                 ignore
                   (Structures.Oset.insert set ~tid:0
                      (1 + Rng.int rng key_range)
                      0)
               done;
               let per_thread = ops / threads in
               let result =
                 Runner.run ~threads (fun ~tid ->
                     let rng = Rng.create (seed + 2 + tid) in
                     for _ = 1 to per_thread do
                       let k = 1 + Rng.int rng key_range in
                       match Rng.int rng 10 with
                       | 0 | 1 -> (
                           try ignore (Structures.Oset.insert set ~tid k tid)
                           with Mm.Out_of_memory -> ())
                       | 2 | 3 -> ignore (Structures.Oset.remove set ~tid k)
                       | _ -> ignore (Structures.Oset.mem set ~tid k)
                     done)
               in
               Metrics.ops_to_string
                 (Runner.throughput ~ops:(per_thread * threads) result))
             threads_list)
      schemes
  in
  {
    id = "E9";
    title =
      "ordered-set throughput, ALL schemes (20% ins / 20% del / 60% mem)";
    headers =
      "scheme" :: List.map (fun t -> Printf.sprintf "%dT" t) threads_list;
    rows;
    notes =
      [
        "the set follows Michael's unlink-then-retire discipline, so \
         hazard pointers and epochs run it too — contrast with E1's \
         skiplist, which only reference counting supports (§1)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E8: exhaustion behaviour (paper footnote 4).                       *)
(* ------------------------------------------------------------------ *)

let e8 ?(threads_list = [ 1; 2; 4 ]) ?(capacity = 32) () =
  let rows =
    List.map
      (fun threads ->
        let cfg =
          Mm.config ~backend:Atomics.Backend.Native ~threads ~capacity
            ~num_links:0 ~num_data:1 ~num_roots:0 ()
        in
        let mm = Registry.instantiate "wfrc" cfg in
        let held = Array.make threads [] in
        let oom = Array.make threads 0 in
        ignore
          (Runner.run ~threads (fun ~tid ->
               try
                 while true do
                   held.(tid) <- Mm.alloc mm ~tid :: held.(tid)
                 done
               with Mm.Out_of_memory -> oom.(tid) <- 1));
        let allocated =
          Array.fold_left (fun a l -> a + List.length l) 0 held
        in
        let parked = capacity - allocated - Mm.free_count mm in
        (* free_count counts annAlloc-parked nodes as free. *)
        let parked_in_ann = Mm.free_count mm in
        Array.iteri
          (fun tid l -> List.iter (fun p -> Mm.release mm ~tid p) l)
          held;
        (* A donation parked in annAlloc[tid] is retrieved by that
           thread's next allocation (A4) — demonstrate the recovery
           with one bounded alloc/release round per thread. *)
        for tid = 0 to threads - 1 do
          match Mm.alloc mm ~tid with
          | p -> Mm.release mm ~tid p
          | exception Mm.Out_of_memory -> ()
        done;
        let final_free = Mm.free_count mm in
        Mm.validate mm;
        [
          string_of_int threads;
          string_of_int capacity;
          string_of_int allocated;
          string_of_int parked_in_ann;
          string_of_int parked;
          string_of_int final_free;
          (if final_free = capacity then "ok" else "LEAK");
        ])
      threads_list
  in
  {
    id = "E8";
    title = "allocation at exhaustion: OOM detection and conservation";
    headers =
      [
        "threads"; "capacity"; "allocated@OOM"; "parked"; "lost";
        "free-after-drain"; "conservation";
      ];
    rows;
    notes =
      [
        "footnote 4: OOM is detected by a bounded retry budget";
        "up to N-1 nodes can be parked in annAlloc donations at OOM \
         time; they are recovered by later allocations";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E10: crash tolerance — the non-blocking hierarchy, demonstrated.   *)
(* A third thread crashes (is never scheduled again) at a random      *)
(* point; two workers must still finish their operations.             *)
(*   wait-free / lock-free schemes: workers always complete;          *)
(*   EBR: workers complete ops but allocation starves (the crashed    *)
(*        thread pins the epoch) -> "degraded";                       *)
(*   lockrc: the crash can happen inside the critical section ->      *)
(*        workers spin forever -> "stalled".                          *)
(* ------------------------------------------------------------------ *)

let e10 ?(schemes = Registry.names) ?(runs = 40) ?(ops = 20) ?(seed = 41_000)
    () =
  let rows =
    List.map
      (fun scheme ->
        let completed = ref 0 and degraded = ref 0 and stalled = ref 0 in
        for r = 0 to runs - 1 do
          let cfg =
            Mm.config ~threads:3 ~capacity:24 ~num_links:1 ~num_data:1
              ~num_roots:1 ()
          in
          let mm = Registry.instantiate scheme cfg in
          let arena = Mm.arena mm in
          let root = Shmem.Arena.root_addr arena 0 in
          let a = Mm.alloc mm ~tid:0 in
          Mm.store_link mm ~tid:0 root a;
          Mm.release mm ~tid:0 a;
          let oom_seen = ref false in
          let one_op mm ~tid =
            Mm.enter_op mm ~tid;
            (match Mm.alloc mm ~tid with
            | b ->
                let old = Mm.deref mm ~tid root in
                let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
                if not (Value.is_null old) then begin
                  Mm.release mm ~tid old;
                  if ok then Mm.terminate mm ~tid old
                end;
                Mm.release mm ~tid b
            | exception Mm.Out_of_memory -> oom_seen := true);
            Mm.exit_op mm ~tid
          in
          let body tid =
            if tid = 2 then
              (* the future crash victim churns forever *)
              while true do
                one_op mm ~tid
              done
            else
              for _ = 1 to ops do
                one_op mm ~tid;
                Mm.enter_op mm ~tid;
                let p = Mm.deref mm ~tid root in
                if not (Value.is_null p) then Mm.release mm ~tid p;
                Mm.exit_op mm ~tid
              done
          in
          let rng = Rng.create (seed + r) in
          let crash_at = 20 + Rng.int rng 150 in
          let policy =
            Sched.Policy.crashed ~dead:[ 2 ] ~after:crash_at
              (Sched.Policy.random ~seed:(seed + (r * 7)))
          in
          match
            Sched.Engine.run ~max_steps:300_000 ~quorum:[ 0; 1 ] ~threads:3
              ~policy body
          with
          | _ -> if !oom_seen then incr degraded else incr completed
          | exception Sched.Engine.Out_of_steps -> incr stalled
        done;
        [
          scheme;
          string_of_int !completed;
          string_of_int !degraded;
          string_of_int !stalled;
        ])
      schemes
  in
  {
    id = "E10";
    title =
      Printf.sprintf
        "crash tolerance: a peer crashes mid-operation; do %d-op workers \
         finish? (%d runs)"
        ops runs;
    headers = [ "scheme"; "completed"; "degraded(OOM)"; "stalled" ];
    rows;
    notes =
      [
        "non-blocking schemes complete regardless of where the peer \
         dies (for wfrc even a helper crashed inside H4..H8 only \
         retires one announcement slot — the pool has N of them)";
        "ebr: the crashed thread pins the epoch, so reclamation stops \
         and allocation starves";
        "lockrc: a crash inside the critical section stalls everyone — \
         the §1 argument against mutual exclusion";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E11: metadata space cost per scheme as the thread count grows.     *)
(* The paper's wait-freedom is bought with an O(N^2) announcement     *)
(* pool and 2N free-lists; the baselines are O(N) or O(1). This       *)
(* table makes the trade explicit (words of scheme metadata,          *)
(* excluding the arena itself, which is identical for all).           *)
(* ------------------------------------------------------------------ *)

let e11 ?(threads_list = [ 2; 4; 8; 16; 32; 64 ]) () =
  (* Word counts by construction (see each scheme's [create]):
     wfrc : annReadAddr N^2 + annBusy N^2 + annIndex N
            + freeList 2N + annAlloc N + currentFreeList + helpCurrent
     lfrc : stamped head = 1
     hp   : K slots/thread (K = max 16 (2*links+8); links=1 here)
            + head = K*N + 1  (retired lists are transient)
     ebr  : global + head + per-thread (active + epoch) = 2N + 2
     lockrc: lock + head = 2 *)
  let rows =
    List.map
      (fun n ->
        let k = 16 in
        [
          string_of_int n;
          string_of_int ((2 * n * n) + n + (2 * n) + n + 2);
          "1";
          string_of_int ((k * n) + 1);
          string_of_int ((2 * n) + 2);
          "2";
        ])
      threads_list
  in
  {
    id = "E11";
    title = "scheme metadata (words) vs thread count N";
    headers = [ "N"; "wfrc"; "lfrc"; "hp(K=16)"; "ebr"; "lockrc" ];
    rows;
    notes =
      [
        "wfrc's wait-freedom costs O(N^2) announcement cells (Figure 4) \
         plus 2N free-lists (Figure 5); at N=64 that is ~8.6k words — \
         negligible next to any real arena, but the asymptotic trade \
         is worth stating";
        "counts derive from each scheme's create(); the arena itself \
         (capacity x node_size cells) is identical for every scheme \
         and excluded";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E12: bounded loss under crashes — the fault-injection layer plus   *)
(* the auditor, quantifying what E10 only classified. One thread is   *)
(* crashed mid-operation by a Fault plan (left unwound: its           *)
(* announcements, hazards and references stay in place); survivors    *)
(* finish and drain, and the auditor partitions every node. The       *)
(* paper's claim: a crashed thread strands at most an                 *)
(* O(N^2)-envelope of nodes under WFRC, independent of how long the   *)
(* survivors keep running — while under EBR the crashed thread pins   *)
(* the epoch and the loss grows with survivor work until the arena    *)
(* is exhausted.                                                      *)
(* ------------------------------------------------------------------ *)

(* One root-churn operation; unlike E10's this one also retires the
   fresh node when the CAS fails, so HP/EBR do not leak on the failure
   path and every node the auditor finds stranded is stranded by the
   crash alone. *)
let churn_op mm ~root ~oom ~tid =
  Mm.enter_op mm ~tid;
  (match Mm.alloc mm ~tid with
  | b ->
      let old = Mm.deref mm ~tid root in
      let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
      if not (Value.is_null old) then begin
        Mm.release mm ~tid old;
        if ok then Mm.terminate mm ~tid old
      end;
      if not ok then Mm.terminate mm ~tid b;
      Mm.release mm ~tid b
  | exception Mm.Out_of_memory -> oom := true);
  Mm.exit_op mm ~tid

(* Post-run drain: give every survivor a few empty operation brackets
   (EBR epoch advances/collections, nothing for the others), then for
   RC schemes one alloc/release round to pull in any annAlloc
   donation parked for a survivor (A4). *)
let drain_survivors mm ~survivors =
  List.iter
    (fun tid ->
      for _ = 1 to 8 do
        Mm.enter_op mm ~tid;
        Mm.exit_op mm ~tid
      done)
    survivors;
  if Mm.refcounted mm then
    List.iter
      (fun tid ->
        match Mm.alloc mm ~tid with
        | p -> Mm.release mm ~tid p
        | exception Mm.Out_of_memory -> ())
      survivors

let e12 ?(schemes = Registry.names) ?(ops_list = [ 8; 24; 72 ]) ?(seeds = 10)
    ?(seed = 43_000) () =
  let threads = 3 and capacity = 48 in
  let victim = threads - 1 in
  let rows = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun ops ->
          let completed = ref 0
          and oom_runs = ref 0
          and stalled = ref 0
          and audited = ref 0
          and audits_ok = ref 0
          and max_lost = ref 0
          and max_crash_held = ref 0
          and max_leaked = ref 0
          and bound = ref 0 in
          for s = 0 to seeds - 1 do
            let cfg =
              Mm.config ~threads ~capacity ~num_links:1 ~num_data:1
                ~num_roots:1 ()
            in
            let mm = Registry.instantiate scheme cfg in
            let arena = Mm.arena mm in
            let root = Shmem.Arena.root_addr arena 0 in
            let a = Mm.alloc mm ~tid:0 in
            Mm.store_link mm ~tid:0 root a;
            Mm.release mm ~tid:0 a;
            let oom = ref false in
            let body tid =
              if tid = victim then
                while true do
                  churn_op mm ~root ~oom ~tid
                done
              else
                for _ = 1 to ops do
                  churn_op mm ~root ~oom ~tid
                done
            in
            let rng = Rng.create (seed + s) in
            let faults =
              [ Sched.Fault.crash ~tid:victim ~at_step:(30 + Rng.int rng 200) ]
            in
            let policy = Sched.Policy.random ~seed:(seed + (s * 7) + 1) in
            match
              Sched.Engine.run ~max_steps:120_000 ~faults ~threads ~policy
                body
            with
            | _ ->
                if !oom then incr oom_runs else incr completed;
                drain_survivors mm ~survivors:[ 0; 1 ];
                let r = Audit.run ~crashed:[ victim ] mm in
                incr audited;
                if Audit.ok r then incr audits_ok;
                max_lost := max !max_lost r.Audit.lost;
                max_crash_held := max !max_crash_held r.Audit.crash_held;
                max_leaked := max !max_leaked r.Audit.leaked;
                bound := r.Audit.loss_bound
            | exception Sched.Engine.Out_of_steps ->
                (* survivors never reached quiescence (lockrc: the
                   victim died holding the lock) — nothing to audit *)
                incr stalled
          done;
          rows :=
            [
              scheme;
              string_of_int ops;
              string_of_int !completed;
              string_of_int !oom_runs;
              string_of_int !stalled;
              string_of_int !max_lost;
              string_of_int !max_crash_held;
              string_of_int !bound;
              string_of_int !max_leaked;
              (if !audited = 0 then "n/a"
               else if !audits_ok = !audited then "ok"
               else Printf.sprintf "FAIL(%d/%d)" !audits_ok !audited);
            ]
            :: !rows)
        ops_list)
    schemes;
  {
    id = "E12";
    title =
      Printf.sprintf
        "bounded loss under a crashed thread (N=%d, capacity=%d, %d seeds): \
         nodes stranded vs survivor work"
        threads capacity seeds;
    headers =
      [
        "scheme"; "ops/worker"; "completed"; "oom"; "stalled"; "lost(max)";
        "crash_held(max)"; "bound"; "leaked(max)"; "audit";
      ];
    rows = List.rev !rows;
    notes =
      [
        "lost = capacity - free - reachable after survivors drain; \
         crash_held of it is attributed to the crashed thread by the \
         auditor, leaked is attributable to nothing (a real failure)";
        "wfrc: lost stays flat as survivor work grows and within the \
         N(N+1)-per-crash envelope (Theorem 1's per-thread reference \
         bound) — the crash costs a constant, not a rate";
        "ebr: the crashed thread pins the epoch, so every survivor \
         limbo bag jams and lost grows with ops until the arena is \
         exhausted (oom) — unbounded loss, the §1 contrast";
        "ebr can also leak outright (audit FAIL): a crash between \
         emptying a limbo bag and repooling its nodes strands them \
         outside any custody record, invisible to the scheme itself";
        "lockrc: runs where the victim died inside the critical \
         section stall the survivors (no audit possible)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E13: stall storm — k of N threads freeze for a window, then        *)
(* resume. Survivors' operations are step-metered: under WFRC each    *)
(* survivor op completes within its own-step bound no matter how      *)
(* many peers are frozen (wait-freedom); under lockrc a survivor op   *)
(* blocks for the whole stall window if a frozen thread holds the     *)
(* lock. The auditor confirms nothing is lost once the stall ends.    *)
(* ------------------------------------------------------------------ *)

let e13 ?(schemes = Registry.names) ?(ks = [ 1; 2 ]) ?(ops = 12) ?(seeds = 8)
    ?(seed = 47_000) () =
  let threads = 4 and capacity = 32 in
  let duration = 600 in
  let rows = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun k ->
          let completed = ref 0
          and oom_runs = ref 0
          and stalled = ref 0
          and audits_ok = ref 0
          and audited = ref 0
          and max_op = ref 0
          and max_lost = ref 0 in
          for s = 0 to seeds - 1 do
            let cfg =
              Mm.config ~threads ~capacity ~num_links:1 ~num_data:1
                ~num_roots:1 ()
            in
            let mm = Registry.instantiate scheme cfg in
            let arena = Mm.arena mm in
            let root = Shmem.Arena.root_addr arena 0 in
            let a = Mm.alloc mm ~tid:0 in
            Mm.store_link mm ~tid:0 root a;
            Mm.release mm ~tid:0 a;
            let faults =
              Sched.Fault.random_stalls ~seed:(seed + s) ~threads ~victims:k
                ~window:(40, 120) ~duration ()
            in
            let frozen = List.map Sched.Fault.tid_of faults in
            let movers =
              List.filter
                (fun tid -> not (List.mem tid frozen))
                (List.init threads (fun i -> i))
            in
            let storm =
              let froms =
                List.filter_map
                  (function
                    | Sched.Fault.Stall { from_step; _ } -> Some from_step
                    | Sched.Fault.Crash _ -> None)
                  faults
              in
              ( List.fold_left min max_int froms,
                List.fold_left max 0 froms + duration )
            in
            let rec_ = Audit.Steps.create ~threads in
            let oom = ref false in
            let body tid =
              for _ = 1 to ops do
                Audit.Steps.around rec_ ~tid (fun () ->
                    churn_op mm ~root ~oom ~tid)
              done
            in
            let policy = Sched.Policy.random ~seed:(seed + (s * 11) + 2) in
            match
              Sched.Engine.run ~max_steps:200_000 ~faults ~threads ~policy
                body
            with
            | _ ->
                if !oom then incr oom_runs else incr completed;
                let m =
                  Audit.Steps.max_own_steps ~window:storm rec_ ~tids:movers
                in
                max_op := max !max_op m;
                drain_survivors mm
                  ~survivors:(List.init threads (fun i -> i));
                let r = Audit.run mm in
                incr audited;
                if Audit.ok r then incr audits_ok;
                max_lost := max !max_lost r.Audit.lost
            | exception Sched.Engine.Out_of_steps -> incr stalled
          done;
          rows :=
            [
              scheme;
              string_of_int k;
              string_of_int !completed;
              string_of_int !oom_runs;
              string_of_int !stalled;
              string_of_int !max_op;
              string_of_int !max_lost;
              (if !audited = 0 then "n/a"
               else if !audits_ok = !audited then "ok"
               else Printf.sprintf "FAIL(%d/%d)" !audits_ok !audited);
            ]
            :: !rows)
        ks)
    schemes;
  {
    id = "E13";
    title =
      Printf.sprintf
        "stall storm (N=%d, %d-step freeze, %d seeds): survivor op cost \
         while k peers are frozen"
        threads duration seeds;
    headers =
      [
        "scheme"; "k"; "completed"; "oom"; "stalled"; "max-op-steps";
        "lost(max)"; "audit";
      ];
    rows = List.rev !rows;
    notes =
      [
        "max-op-steps = the most *own* scheduling steps any survivor \
         operation took while overlapping the storm (Audit.Steps); \
         wait-free ops stay near their solo cost, lockrc ops absorb \
         the whole stall window when a frozen thread holds the lock";
        "stalled threads resume after the window and finish, so every \
         run ends quiescent and audits with no crashed threads: \
         nothing may be lost (lost counts only transient limbo \
         backlogs, e.g. ebr bags not yet collected)";
        "ebr during the storm: a frozen in-bracket thread blocks epoch \
         advance, so allocation can exhaust the arena (oom column) — \
         the blocking-reclamation cost even a *temporary* stall \
         inflicts";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Ablations.                                                         *)
(* ------------------------------------------------------------------ *)

(* E-A1: deref step bound vs thread count (the D1 slot scan and the
   helping scan are both O(N); the bound must grow linearly, not
   explode). *)
let a1 ?(threads_list = [ 2; 4; 8; 16 ]) ?(seeds = 15) ?(seed = 29_000) () =
  let rows =
    List.map
      (fun threads ->
        let worst = ref 0 in
        for s = 0 to seeds - 1 do
          let cfg =
            Mm.config ~threads ~capacity:(4 * threads) ~num_links:1
              ~num_data:1 ~num_roots:1 ()
          in
          let mm = Registry.instantiate "wfrc" cfg in
          let arena = Mm.arena mm in
          let root = Shmem.Arena.root_addr arena 0 in
          let a = Mm.alloc mm ~tid:0 in
          Mm.store_link mm ~tid:0 root a;
          Mm.release mm ~tid:0 a;
          let body tid =
            if tid = threads - 1 then begin
              (* one updater creates helping traffic *)
              for _ = 1 to 2 do
                let b = Mm.alloc mm ~tid in
                let rec flip () =
                  let old = Mm.deref mm ~tid root in
                  let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
                  if not (Value.is_null old) then Mm.release mm ~tid old;
                  if not ok then flip ()
                in
                flip ();
                Mm.release mm ~tid b
              done
            end
            else begin
              let p = Mm.deref mm ~tid root in
              if not (Value.is_null p) then Mm.release mm ~tid p
            end
          in
          let policy = Sched.Policy.random ~seed:(seed + s) in
          let outcome = Sched.Engine.run ~threads ~policy body in
          for tid = 0 to threads - 2 do
            if outcome.steps.(tid) > !worst then worst := outcome.steps.(tid)
          done
        done;
        [ string_of_int threads; string_of_int !worst ])
      threads_list
  in
  {
    id = "E-A1";
    title = "WFRC deref step bound vs thread count (announcement scans)";
    headers = [ "threads"; "max reader steps" ];
    rows;
    notes =
      [ "the wait-free bound is O(N) in the thread count, by design (D1/H1)" ];
  }

(* Churn throughput/retry for a Gc variant — shared by A2/A3. *)
let churn_gc gc ~threads ~ops ~max_burst ~seed =
  let bursts =
    Workload.per_thread ~threads ~seed (fun rng ->
        Workload.churn_bursts ~rng ~n:(ops / threads) ~max_burst)
  in
  let result =
    Runner.run ~threads (fun ~tid ->
        let held = Array.make max_burst Value.null in
        Array.iter
          (fun burst ->
            let got = ref 0 in
            (try
               for i = 0 to burst - 1 do
                 held.(i) <- Wfrc.Gc.alloc gc ~tid;
                 incr got
               done
             with Mm.Out_of_memory -> ());
            for i = 0 to !got - 1 do
              Wfrc.Gc.release gc ~tid held.(i)
            done)
          bursts.(tid))
  in
  let ctr = Wfrc.Gc.counters gc in
  let allocs = Atomics.Counters.total ctr Alloc in
  let per1k ev =
    if allocs = 0 then 0.0
    else
      1000.0
      *. float_of_int (Atomics.Counters.total ctr ev)
      /. float_of_int allocs
  in
  (Runner.throughput ~ops:allocs result, per1k Alloc_retry, per1k Free_retry)

let a2 ?(threads_list = [ 2; 4; 8 ]) ?(ops = 40_000) ?(capacity = 4096)
    ?(seed = 31_000) () =
  let rows = ref [] in
  List.iter
    (fun threads ->
      List.iter
        (fun (label, placement) ->
          let cfg =
            list_layout ~backend:Atomics.Backend.Native ~threads ~capacity
          in
          let gc = Wfrc.Gc.create ~placement cfg in
          let tput, ar, fr =
            churn_gc gc ~threads ~ops ~max_burst:8 ~seed
          in
          rows :=
            [
              string_of_int threads; label; Metrics.ops_to_string tput;
              f1 ar; f1 fr;
            ]
            :: !rows)
        [ ("paper(F5-F6)", `Paper); ("own-index", `Own_index) ])
    threads_list;
  {
    id = "E-A2";
    title = "FreeNode placement heuristic ablation (alloc/free churn)";
    headers = [ "threads"; "placement"; "allocs/s"; "aretry/1k"; "fretry/1k" ];
    rows = List.rev !rows;
    notes =
      [
        "F5-F6 steers frees away from the list allocators are hitting \
         (Lemma 10's conflict-avoidance argument)";
      ];
  }

let a3 ?(threads_list = [ 2; 4; 8 ]) ?(ops = 40_000) ?(capacity = 4096)
    ?(seed = 37_000) () =
  let rows = ref [] in
  List.iter
    (fun threads ->
      List.iter
        (fun (label, help_alloc) ->
          let cfg =
            list_layout ~backend:Atomics.Backend.Native ~threads ~capacity
          in
          let gc = Wfrc.Gc.create ~help_alloc cfg in
          let tput, ar, fr =
            churn_gc gc ~threads ~ops ~max_burst:8 ~seed
          in
          let ctr = Wfrc.Gc.counters gc in
          let helped = Atomics.Counters.total ctr Alloc_helped in
          rows :=
            [
              string_of_int threads; label; Metrics.ops_to_string tput;
              f1 ar; f1 fr; string_of_int helped;
            ]
            :: !rows)
        [ ("help-on(wait-free)", true); ("help-off(lock-free)", false) ])
    threads_list;
  {
    id = "E-A3";
    title = "allocation-helping ablation (A11-A15/F3 on vs off)";
    headers =
      [ "threads"; "variant"; "allocs/s"; "aretry/1k"; "fretry/1k"; "helped" ];
    rows = List.rev !rows;
    notes =
      [
        "with helping off, AllocNode can starve (lock-free only); \
         average throughput is similar — the paper's point that \
         wait-freedom costs little on average";
      ];
  }

(* ------------------------------------------------------------------ *)

(* Quick variants for `run all --quick` and the test-suite shape checks. *)
let registry : (string * (?quick:bool -> unit -> report)) list =
  [
    ( "e1",
      fun ?(quick = false) () ->
        if quick then e1 ~threads_list:[ 1; 2 ] ~ops:4_000 ~capacity:2048 ()
        else e1 () );
    ( "e2",
      fun ?(quick = false) () ->
        if quick then e2 ~budgets:[ 0; 4; 16 ] ~seeds:8 () else e2 () );
    ( "e3",
      fun ?(quick = false) () ->
        if quick then e3 ~threads_list:[ 1; 2 ] ~ops:8_000 ~capacity:1024 ()
        else e3 () );
    ( "e4",
      fun ?(quick = false) () ->
        if quick then e4 ~threads_list:[ 2; 4 ] ~ops:12 ~runs:25 ()
        else e4 () );
    ( "e5",
      fun ?(quick = false) () ->
        if quick then e5 ~threads:2 ~ops:6_000 ~capacity:2048 () else e5 () );
    ( "e7",
      fun ?(quick = false) () -> if quick then e7 ~runs:60 () else e7 () );
    ( "e8",
      fun ?(quick = false) () ->
        if quick then e8 ~threads_list:[ 1; 2 ] () else e8 () );
    ( "e9",
      fun ?(quick = false) () ->
        if quick then e9 ~threads_list:[ 1; 2 ] ~ops:6_000 ~capacity:1024 ()
        else e9 () );
    ( "e10",
      fun ?(quick = false) () ->
        if quick then e10 ~runs:12 ~ops:10 () else e10 () );
    ( "e11",
      fun ?(quick = false) () ->
        if quick then e11 ~threads_list:[ 2; 4; 8 ] () else e11 () );
    ( "e12",
      fun ?(quick = false) () ->
        if quick then e12 ~ops_list:[ 6; 18 ] ~seeds:4 () else e12 () );
    ( "e13",
      fun ?(quick = false) () ->
        if quick then e13 ~ks:[ 1 ] ~ops:8 ~seeds:3 () else e13 () );
    ( "a1",
      fun ?(quick = false) () ->
        if quick then a1 ~threads_list:[ 2; 4 ] ~seeds:5 () else a1 () );
    ( "a2",
      fun ?(quick = false) () ->
        if quick then a2 ~threads_list:[ 2 ] ~ops:8_000 ~capacity:1024 ()
        else a2 () );
    ( "a3",
      fun ?(quick = false) () ->
        if quick then a3 ~threads_list:[ 2 ] ~ops:8_000 ~capacity:1024 ()
        else a3 () );
  ]

let ids = List.map fst registry

let run ?quick id =
  match List.assoc_opt (String.lowercase_ascii id) registry with
  | Some f -> f ?quick ()
  | None ->
      invalid_arg
        (Printf.sprintf "unknown experiment %S (known: %s)" id
           (String.concat ", " ids))
