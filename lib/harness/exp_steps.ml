(* Step/latency family: E4 (helping-rate accounting for the wait-free
   scheme) and E5 (per-operation latency distribution — the real-time
   argument). *)

module Mm = Mm_intf
module Rng = Sched.Rng
module Value = Shmem.Value
open Exp_support

(* ------------------------------------------------------------------ *)
(* E4: helping-rate accounting for the wait-free scheme.              *)
(* ------------------------------------------------------------------ *)

let e4 ?(threads_list = [ 2; 4; 8 ]) ?(ops = 24) ?(runs = 80)
    ?(seed = 13_000) () =
  (* Native time slicing almost never preempts inside the tiny D1–D6
     window, so helping would look inert; the deterministic scheduler
     interleaves at primitive granularity, where helping actually
     fires — the regime the paper's proofs quantify over. *)
  let spine = Spine.create () in
  let rows =
    List.map
      (fun threads ->
        let row_spine = Spine.create () in
        for r = 0 to runs - 1 do
          let cfg =
            Mm.config ~threads ~capacity:(8 * threads) ~num_links:1
              ~num_data:1 ~num_roots:2 ()
          in
          let mm = Registry.instantiate "wfrc" cfg in
          (* The bracket opens before the root setup: the historical
             accounting included those allocations in the totals. *)
          Spine.wrap row_spine mm @@ fun () ->
          let arena = Mm.arena mm in
          let roots =
            Array.init 2 (fun i -> Shmem.Arena.root_addr arena i)
          in
          Array.iter
            (fun root ->
              let a = Mm.alloc mm ~tid:0 in
              Mm.store_link mm ~tid:0 root a;
              Mm.release mm ~tid:0 a)
            roots;
          let body tid =
            let rng = Rng.create (seed + (r * 131) + tid) in
            for _ = 1 to ops do
              let root = roots.(Rng.int rng 2) in
              if Rng.int rng 100 < 60 then begin
                let p = Mm.deref mm ~tid root in
                if not (Value.is_null p) then Mm.release mm ~tid p
              end
              else begin
                match Mm.alloc mm ~tid with
                | b ->
                    let old = Mm.deref mm ~tid root in
                    ignore (Mm.cas_link mm ~tid root ~old ~nw:b);
                    if not (Value.is_null old) then Mm.release mm ~tid old;
                    Mm.release mm ~tid b
                | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ()
              end
            done
          in
          let policy = Sched.Policy.random ~seed:(seed + r) in
          ignore (Sched.Engine.run ~threads ~policy body)
        done;
        let tot ev = Spine.total row_spine ev in
        Spine.merge_into spine row_spine;
        let derefs = tot Deref in
        let pct a b =
          if b = 0 then Report.Str "0.0%"
          else Report.Pct (100.0 *. float_of_int a /. float_of_int b)
        in
        [
          Report.Int threads;
          Report.Int derefs;
          pct (tot Deref_helped) derefs;
          Report.Int (tot Help_answered);
          Report.Int (tot Help_refused);
          pct (tot Alloc_helped) (tot Alloc);
          pct (tot Free_gave_help) (tot Free);
        ])
      threads_list
  in
  Report.make ~id:"E4"
    ~title:
      "WFRC helping-mechanism accounting (60% deref / 40% update mix, \
       deterministic scheduler)"
    ~cols:
      [
        Report.dim "threads";
        Report.measure "derefs";
        Report.measure ~unit_:"pct" "deref-helped";
        Report.measure "answers";
        Report.measure "refused";
        Report.measure ~unit_:"pct" "alloc-helped";
        Report.measure ~unit_:"pct" "free-donated";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed
         ~params:
           [ ("ops", string_of_int ops); ("runs", string_of_int runs) ]
         ())
    ~notes:
      [
        "helping is the price of wait-freedom: rates grow with \
         contention but each op stays bounded";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E5: per-operation latency distribution (the real-time argument).   *)
(* ------------------------------------------------------------------ *)

let e5 ?(schemes = Registry.rc_names) ?(threads = 4) ?(ops = 40_000)
    ?(capacity = 1 lsl 14) ?(key_range = 1 lsl 16) ?(seed = 17_000) () =
  let spine = Spine.create () in
  let rows =
    List.map
      (fun scheme ->
        let mm, pq, streams, _per_thread =
          pq_setup ~scheme ~threads ~ops ~capacity ~key_range ~seed
        in
        let hists = Array.init threads (fun _ -> Metrics.Hist.create ()) in
        Spine.wrap spine mm (fun () ->
            ignore
              (Runner.run ~threads (fun ~tid ->
                   let h = hists.(tid) in
                   Array.iter
                     (fun op ->
                       let t0 = Runner.now_ns () in
                       (match op with
                       | Workload.Produce k -> (
                           try Structures.Pqueue.insert pq ~tid (k + 1) tid
                           with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ())
                       | Workload.Consume ->
                           ignore (Structures.Pqueue.delete_min pq ~tid));
                       Metrics.Hist.add h (Runner.now_ns () - t0))
                     streams.(tid))));
        let h = Metrics.Hist.create () in
        Array.iter (fun h' -> Metrics.Hist.merge_into h h') hists;
        [
          Report.Str scheme;
          Report.Ns (Metrics.Hist.percentile h 0.50);
          Report.Ns (Metrics.Hist.percentile h 0.99);
          Report.Ns (Metrics.Hist.percentile h 0.999);
          Report.Ns (Metrics.Hist.max_value h);
        ])
      schemes
  in
  Report.make ~id:"E5"
    ~title:
      (Printf.sprintf
         "priority-queue per-op latency at %d threads (p50/p99/p99.9/max)"
         threads)
    ~cols:
      [
        Report.dim "scheme";
        Report.measure ~unit_:"ns" "p50";
        Report.measure ~unit_:"ns" "p99";
        Report.measure ~unit_:"ns" "p99.9";
        Report.measure ~unit_:"ns" "max";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed ~backend:Atomics.Backend.Native
         ~params:
           [
             ("threads", string_of_int threads);
             ("ops", string_of_int ops);
             ("capacity", string_of_int capacity);
             ("key_range", string_of_int key_range);
           ]
         ())
    ~notes:
      [
        "paper §5: the wait-free scheme's strength is the execution-time \
         guarantee (tail), not the average";
        "on one preemptive core the max column is dominated by \
         time-slice effects; lockrc additionally convoys behind a \
         preempted lock holder";
      ]
    rows

let specs =
  [
    Exp.spec ~id:"e4" ~descr:"WFRC helping-rate accounting (§3)"
      (fun { Exp.quick } ->
        if quick then e4 ~threads_list:[ 2; 4 ] ~ops:12 ~runs:25 ()
        else e4 ());
    Exp.spec ~id:"e5"
      ~descr:"per-op latency tails (the real-time argument, §5)"
      (fun { Exp.quick } ->
        if quick then e5 ~threads:2 ~ops:6_000 ~capacity:2048 () else e5 ());
  ]
