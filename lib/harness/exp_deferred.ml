(* E17: the deferred-rc payoff — shared-counter FAA traffic on a
   read-heavy workload, eager wfrc vs wfrc_deferred (DESIGN.md §6.3).

   A reader's steady state under deferral is buffer-local: release
   parks the decrement (no FAA), and the next deref of the same node
   cancels it out of the buffer (no FAA on either side). Eager wfrc
   pays two shared FAAs per read. The experiment counts every
   instrumented arena FAA through the reclamation oracle's access
   tally — measured at the atomics layer, so a scheme cannot
   under-report its own traffic — while the oracle simultaneously
   checks the runs for use-after-free/double-free: the FAAs saved must
   not come at the cost of reclamation safety.

   [faa_traffic] is the measurement core shared with the
   `bench --check-scaling` gate, which requires the eager/deferred
   FAA ratio at the most read-heavy mix to stay >= 5x. *)

module Mm = Mm_intf
module Rng = Sched.Rng
module Value = Shmem.Value
module C = Atomics.Counters
open Exp_support

(* One seeded Sim run: [reads_pct]% of operations deref+release the
   root, the rest churn it. Returns the arena FAA count plus the
   scheme's own defer/flush tallies. *)
let run_one ?spine ~scheme ~threads ~capacity ~reads_pct ~ops ~seed () =
  let cfg =
    Mm.config ~threads ~capacity ~num_links:1 ~num_data:1 ~num_roots:1 ()
  in
  let faa = C.create ~threads () in
  let mm = Registry.instantiate scheme cfg in
  let wrap f =
    match spine with Some s -> Spine.wrap s mm f | None -> f ()
  in
  wrap @@ fun () ->
  Analysis.Reclaim.with_oracle @@ fun () ->
  let body, check =
    Analysis.Reclaim.instrument ~counters:faa ~expect_all_free:true
      ~reserved:1 ~threads
      (fun () ->
        ( Mm.arena mm,
          fun () ->
            let root = Shmem.Arena.root_addr (Mm.arena mm) 0 in
            let a = Mm.alloc mm ~tid:0 in
            Mm.store_link mm ~tid:0 root a;
            Mm.release mm ~tid:0 a;
            let rngs =
              Array.init threads (fun t -> Rng.create (seed + (31 * t)))
            in
            let body tid =
              let rng = rngs.(tid) in
              for _ = 1 to ops do
                Mm.enter_op mm ~tid;
                if Rng.int rng 100 < reads_pct then begin
                  let p = Mm.deref mm ~tid root in
                  if not (Value.is_null p) then Mm.release mm ~tid p
                end
                else begin
                  match Mm.alloc mm ~tid with
                  | b ->
                      let old = Mm.deref mm ~tid root in
                      let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
                      if not (Value.is_null old) then begin
                        Mm.release mm ~tid old;
                        if ok then Mm.terminate mm ~tid old
                      end;
                      Mm.release mm ~tid b
                  | exception (Mm.Out_of_memory | Mm.Out_of_nodes _) -> ()
                end;
                Mm.exit_op mm ~tid
              done
            in
            (* quiescence drain inside the oracle bracket, so the
               buffered frees are observed before the all-free check *)
            (body, fun () -> ignore (Mm.free_count mm)) ))
      ()
  in
  ignore
    (Sched.Engine.run ~max_steps:5_000_000 ~threads
       ~policy:(Sched.Policy.random ~seed:(seed + 7)) body);
  check ();
  let ctr = Mm.counters mm in
  ( C.total faa Faa,
    C.total ctr Atomics.Counters.Rc_defer,
    C.total ctr Atomics.Counters.Rc_flush )

(* The gate's measurement: total arena FAAs for (wfrc, wfrc_deferred)
   at one read percentage, summed over [seeds] seeded runs. *)
let faa_traffic ?(threads = 3) ?(capacity = 32) ?(reads_pct = 99)
    ?(ops = 160) ?(seeds = 3) ?(seed = 53_000) () =
  let total scheme =
    let acc = ref 0 in
    for s = 0 to seeds - 1 do
      let f, _, _ =
        run_one ~scheme ~threads ~capacity ~reads_pct ~ops
          ~seed:(seed + (101 * s)) ()
      in
      acc := !acc + f
    done;
    !acc
  in
  (total "wfrc", total "wfrc_deferred")

let e17 ?(schemes = [ "wfrc"; "wfrc_deferred" ])
    ?(reads_list = [ 50; 90; 99 ]) ?(threads = 3) ?(capacity = 32)
    ?(ops = 160) ?(seeds = 3) ?(seed = 53_000) () =
  let spine = Spine.create () in
  let rows =
    List.concat_map
      (fun reads_pct ->
        List.map
          (fun scheme ->
            let faas = ref 0 and defers = ref 0 and flushes = ref 0 in
            for s = 0 to seeds - 1 do
              let f, d, fl =
                run_one ~spine ~scheme ~threads ~capacity ~reads_pct ~ops
                  ~seed:(seed + (101 * s)) ()
              in
              faas := !faas + f;
              defers := !defers + d;
              flushes := !flushes + fl
            done;
            [
              Report.Int reads_pct;
              Report.Str scheme;
              Report.Int !faas;
              Report.Int !defers;
              Report.Int !flushes;
            ])
          schemes)
      reads_list
  in
  Report.make ~id:"E17"
    ~title:
      (Printf.sprintf
         "read-heavy rc traffic: arena FAAs under deferred decrement \
          buffers (%d threads, %d ops/thread, %d seeds)"
         threads ops seeds)
    ~cols:
      [
        Report.dim "reads%";
        Report.dim "scheme";
        Report.measure ~unit_:"faa" "arena FAAs";
        Report.measure "defer hits";
        Report.measure "flushes";
      ]
    ~counters:(Spine.totals spine)
    ~meta:
      (Report.meta ~seed
         ~params:
           [
             ("threads", string_of_int threads);
             ("capacity", string_of_int capacity);
             ("ops", string_of_int ops);
             ("seeds", string_of_int seeds);
           ]
         ())
    ~notes:
      [
        "FAAs are counted at the atomics layer by the reclamation \
         oracle's access tally; every run is simultaneously checked \
         for use-after-free/double-free and drains to all-free";
        "the deferred reader's steady state is buffer-local: release \
         parks the decrement, the next deref cancels it — the \
         bench --check-scaling gate holds the eager/deferred FAA \
         ratio at the read-heaviest mix to >= 5x";
      ]
    rows

let specs =
  [
    Exp.spec ~id:"e17"
      ~descr:"read-heavy FAA traffic: eager vs deferred rc buffers (§6.3)"
      (fun { Exp.quick } ->
        if quick then e17 ~reads_list:[ 90 ] ~ops:60 ~seeds:2 ()
        else e17 ());
  ]
