(** Backend benchmark: the alloc/release churn loop per
    scheme × backend × thread count, with batch-averaged per-op
    latency percentiles, exportable as JSON ([BENCH_wfrc.json]). *)

type point = {
  scheme : string;
  backend : Atomics.Backend.t;
  threads : int;
  ops : int;            (** completed alloc+release pairs *)
  wall_ns : int;
  ops_per_sec : float;
  mean_ns : float;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  max_ns : int;
}

val run_point :
  scheme:string ->
  backend:Atomics.Backend.t ->
  threads:int ->
  ops:int ->
  capacity:int ->
  point

val run_suite :
  ?schemes:string list ->
  ?backends:Atomics.Backend.t list ->
  ?threads_list:int list ->
  ?ops:int ->
  ?capacity:int ->
  unit ->
  point list
(** Defaults: wfrc only, both backends, 1/2/4 threads, 50k pairs. *)

val to_json : point list -> string
val write_json : path:string -> point list -> unit

val report : point list -> Experiments.report
(** The suite as a printable table. *)
