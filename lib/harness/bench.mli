(** Backend benchmark: the alloc/release churn loop per
    scheme × backend × thread count, with batch-averaged per-op
    latency percentiles. Timing uses the monotonic {!Runner.now_ns}
    (nanosecond resolution); single operations are still batched
    because one alloc/release pair costs about as much as the clock
    read itself. Exportable as flat JSON ([BENCH_wfrc.json]) or, via
    {!report} and {!Sink}, as a typed report document. *)

type point = {
  rev : string;
      (** the 7-hex git revision the point was measured at ("unknown"
          outside a checkout) — part of the point's identity in the
          accumulated JSON *)
  scheme : string;
  backend : Atomics.Backend.t;
  rep : Atomics.Backend.rep;  (** cell representation (boxed/unboxed) *)
  threads : int;
  shards : int;  (** free-store stripes (1 = legacy global free list) *)
  batch : int;  (** allocation-cache batch size (1 = cache disabled) *)
  ops : int;
      (** alloc+release pairs actually completed — the request rounds
          down to whole batches; a drop of more than 10% is warned
          about on stderr *)
  wall_ns : int;
  ops_per_sec : float;
  mean_ns : float;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  max_ns : int;
  neg_samples : int;
      (** negative timer samples dropped by {!Metrics.Hist.add} —
          always 0 unless the clock is broken *)
}

val git_rev : unit -> string
(** The current checkout's short (7-hex) revision, read straight from
    [.git] (HEAD, loose refs, packed-refs); ["unknown"] when not in a
    git checkout. *)

val run_point :
  ?spine:Exp_support.Spine.t ->
  ?rep:Atomics.Backend.rep ->
  ?shards:int ->
  ?batch:int ->
  ?oracle:bool ->
  scheme:string ->
  backend:Atomics.Backend.t ->
  threads:int ->
  ops:int ->
  capacity:int ->
  unit ->
  point
(** One cell of the suite. [spine] accumulates the instance's
    {!Atomics.Counters} deltas (see {!Exp_support.Spine}).
    [rep] (default {!Atomics.Backend.default_rep}) picks the cell
    representation. [shards]/[batch] (default 1/1) select the sharded
    free store — Native backend only. [oracle] (Sim, single-threaded
    only) arms the full {!Analysis.Reclaim} detector for the measured
    loop and labels the point's scheme ["<scheme>+oracle"] — the delta
    against the plain Sim point is the analysis layer's whole cost;
    Native points cannot carry it because the hook there stays
    [ignore]. *)

val run_suite :
  ?spine:Exp_support.Spine.t ->
  ?schemes:string list ->
  ?backends:Atomics.Backend.t list ->
  ?threads_list:int list ->
  ?ops:int ->
  ?capacity:int ->
  unit ->
  point list
(** Defaults: wfrc only, both backends, 1/2/4 threads, 50k pairs.
    When Native is among the backends, one extra sharded point per
    scheme (shards 4, batch 8, highest thread count) tracks the
    sharded hot path; when Sim is among them, one extra
    single-threaded oracle-armed point per scheme tracks the analysis
    layer's Sim cost. *)

val run_actor_point :
  ?spine:Exp_support.Spine.t ->
  ?threads:int ->
  ?actors:int ->
  ?ops:int ->
  scheme:string ->
  unit ->
  point
(** The actor-service point (Native only): [ops] send/receive
    operations (60/40 mix, batch-timed like {!run_point}) against an
    {!Actor.Service} of [actors] pre-spawned mailboxes — the managers'
    hot path as the E18 service drives it, steady-state (no
    spawn/retire churn, so runs are comparable op for op). Labelled
    ["<scheme>+actor"] so it lands rev-keyed next to the churn points
    in [BENCH_wfrc.json]. Defaults: 4 threads, 10k actors, 200k ops.
    The service is torn down and audited after the measured phase; a
    leak is reported on stderr but does not fail the run. *)

val json_of_point : point -> string
(** One point as its flat-JSON line (the unit {!write_json} merges
    by). *)

val to_json : string list -> string
(** Assemble serialised point lines (see {!write_json}) into the flat
    JSON document. *)

val write_json : path:string -> point list -> unit
(** Merge-write: points already in the file at [path] are preserved
    unless this run re-measured the same
    (rev, scheme, backend, rep, threads, shards, batch) key — the
    file accumulates measurements across runs and revisions instead
    of being overwritten. *)

val report : ?counters:(string * int) list -> point list -> Report.t
(** The suite as a typed report (id ["BENCH"]); render or export it
    with {!Sink}. *)
