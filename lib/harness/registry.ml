(* Scheme registry: the paper's §1 comparison space, instantiable by
   name from experiments, tests and the CLI. *)

let all : (string * (module Mm_intf.S)) list =
  [
    ("wfrc", (module Wfrc));     (* the paper's wait-free scheme *)
    ("lfrc", (module Lfrc));     (* Valois/Michael–Scott lock-free RC *)
    ("hp", (module Hazard));     (* Michael's hazard pointers *)
    ("ebr", (module Epoch));     (* epoch-based reclamation *)
    ("lockrc", (module Lockrc)); (* spinlock-serialised RC *)
    ("wfrc_deferred", (module Wfrc.Deferred));
    (* wfrc + per-domain rc-decrement buffers (DESIGN.md §6.3) *)
  ]

let names = List.map fst all

(* The five schemes present when the seeded experiment baselines were
   recorded. Experiments whose reports mix per-scheme rows with
   cross-scheme aggregates (E12/E13's shared Spine totals) default to
   this list so their seeded outputs stay bit-identical; newer schemes
   opt in via an explicit [~schemes]. *)
let seeded_names = [ "wfrc"; "lfrc"; "hp"; "ebr"; "lockrc" ]

(* Schemes that support arbitrary (multi-link) structures — the
   reference-counting ones; see the paper's §1 and Pqueue's doc.
   Derived from each scheme's own flag so a new scheme cannot fall out
   of sync with the structure-compatibility lists. *)
let rc_names =
  List.filter_map
    (fun (n, (module M : Mm_intf.S)) -> if M.refcounted then Some n else None)
    all

let find name =
  match List.assoc_opt name all with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "unknown scheme %S (known: %s)" name
           (String.concat ", " names))

let instantiate name cfg = Mm_intf.instantiate (find name) cfg
