(* Declarative fault plans for the deterministic scheduler.

   The paper's system model (§2) assumes fully asynchronous threads:
   any thread may be delayed indefinitely — or die — between any two
   of its atomic primitives, and the wait-free bounds are quantified
   over exactly those schedules. A fault plan makes that adversary a
   first-class, replayable input:

     Crash {tid; at_step}            the thread is permanently removed
                                     from the runnable set once the
                                     global step clock reaches
                                     [at_step]; it is *not* unwound,
                                     so its announcements, hazard
                                     slots and held references stay
                                     in place — a stopped process.
     Stall {tid; from_step; duration} a finite freeze: the thread is
                                     unschedulable during
                                     [from_step, from_step+duration)
                                     and resumes afterwards.

   Plans are plain data, so they compose with [Explore]'s schedule
   enumeration and counterexample replay: the same plan plus the same
   recorded schedule reproduces the same execution bit-for-bit.
   [Engine.run ?faults] interprets plans; the helpers here are pure. *)

type event =
  | Crash of { tid : int; at_step : int }
  | Stall of { tid : int; from_step : int; duration : int }

type plan = event list

let crash ~tid ~at_step =
  if tid < 0 then invalid_arg "Fault.crash: negative tid";
  if at_step < 0 then invalid_arg "Fault.crash: negative at_step";
  Crash { tid; at_step }

let stall ~tid ~from_step ~duration =
  if tid < 0 then invalid_arg "Fault.stall: negative tid";
  if from_step < 0 then invalid_arg "Fault.stall: negative from_step";
  if duration < 1 then invalid_arg "Fault.stall: duration must be positive";
  Stall { tid; from_step; duration }

let tid_of = function Crash { tid; _ } | Stall { tid; _ } -> tid

let validate ~threads plan =
  List.iter
    (fun ev ->
      let tid = tid_of ev in
      if tid < 0 || tid >= threads then
        invalid_arg
          (Printf.sprintf "Fault.validate: tid %d out of range [0,%d)" tid
             threads))
    plan

let crashed_tids plan =
  List.sort_uniq compare
    (List.filter_map
       (function Crash { tid; _ } -> Some tid | Stall _ -> None)
       plan)

let survivors ~threads plan =
  let dead = crashed_tids plan in
  List.filter (fun t -> not (List.mem t dead)) (List.init threads Fun.id)

let dead_at plan ~step ~tid =
  List.exists
    (function
      | Crash { tid = t; at_step } -> t = tid && at_step <= step
      | Stall _ -> false)
    plan

let stalled_at plan ~step ~tid =
  List.exists
    (function
      | Stall { tid = t; from_step; duration } ->
          t = tid && from_step <= step && step < from_step + duration
      | Crash _ -> false)
    plan

(* ---------------- Seeded generators -------------------------------- *)

let pick_victims rng ~threads ~victims ~avoid =
  let candidates =
    List.filter (fun t -> not (List.mem t avoid)) (List.init threads Fun.id)
  in
  if victims < 0 || victims > List.length candidates then
    invalid_arg "Fault: victim count exceeds eligible threads";
  let rec draw acc pool = function
    | 0 -> List.rev acc
    | k ->
        let i = Rng.int rng (List.length pool) in
        let v = List.nth pool i in
        draw (v :: acc) (List.filter (fun t -> t <> v) pool) (k - 1)
  in
  draw [] candidates victims

let check_window (lo, hi) =
  if lo < 0 || hi < lo then invalid_arg "Fault: bad step window"

let random_crashes ?(avoid = []) ~seed ~threads ~victims ~window () =
  check_window window;
  let lo, hi = window in
  let rng = Rng.create seed in
  List.map
    (fun tid -> crash ~tid ~at_step:(lo + Rng.int rng (hi - lo + 1)))
    (pick_victims rng ~threads ~victims ~avoid)

let random_stalls ?(avoid = []) ~seed ~threads ~victims ~window ~duration () =
  check_window window;
  if duration < 1 then invalid_arg "Fault.random_stalls: duration";
  let lo, hi = window in
  let rng = Rng.create seed in
  List.map
    (fun tid ->
      stall ~tid ~from_step:(lo + Rng.int rng (hi - lo + 1)) ~duration)
    (pick_victims rng ~threads ~victims ~avoid)

let to_string = function
  | [] -> "none"
  | plan ->
      String.concat "+"
        (List.map
           (function
             | Crash { tid; at_step } ->
                 Printf.sprintf "crash(t%d@%d)" tid at_step
             | Stall { tid; from_step; duration } ->
                 Printf.sprintf "stall(t%d@%d+%d)" tid from_step duration)
           plan)
