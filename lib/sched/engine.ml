(* Deterministic cooperative scheduler.

   Thread bodies run as effect-based fibers on a single domain. Every
   shared-memory primitive crosses [Atomics.Schedpoint], whose hook we
   replace with a [Yield] effect for the duration of the run; each
   resumption therefore executes the fiber up to (and including) its
   next atomic primitive — one "step" in the sense of the paper's
   wait-freedom bounds. The policy picks which runnable fiber performs
   the next step, so any interleaving of primitives can be produced
   and reproduced exactly.

   Fault plans ([Fault.plan]) are interpreted here:
   - a crashed fiber's state becomes [Dead] at its crash step: it is
     dropped from the runnable set *without being unwound*, so
     whatever announcements/hazards/references it held stay in place
     (the paper's stopped-process model). Crashed tids are removed
     from the quorum automatically.
   - a stalled fiber is withheld from the policy during its window;
     if every live fiber is stalled at once, the engine lets the step
     clock tick idly (no fiber runs, nothing is recorded in the
     schedule) until a window expires. Idle ticks count against
     [max_steps].
   When a plan is active the engine additionally installs a
   [Schedpoint] check asserting that the fiber executing a primitive
   is the one it resumed — a cheap Sim-mode guard that the fault
   bookkeeping and the policy agree.

   Only one run may be active at a time (single global hook); this is
   enforced with [running]. *)

open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t

exception Fiber_failed of int * exn
exception Out_of_steps

(* Without a printer the default formatter hides the nested exception
   ("Fiber_failed(2, _)"), which is exactly the part a counterexample
   report needs. *)
let () =
  Printexc.register_printer (function
    | Fiber_failed (tid, e) ->
        Some
          (Printf.sprintf "Fiber_failed(tid %d: %s)" tid
             (Printexc.to_string e))
    | _ -> None)

type state =
  | Not_started of (unit -> unit)
  | Suspended of (unit, unit) continuation
  | Running
  | Finished
  | Failed of exn
  | Dead
      (* crashed by a fault plan: never resumed, never unwound, its
         continuation dropped with all its shared-memory footprint
         left as-is *)

type outcome = {
  steps : int array;
  total_steps : int;
  schedule : int array;
}

let cur_tid = ref (-1)
let cur_step = ref 0
let running = ref false
let live_steps = ref [||]

let current_tid () = !cur_tid
let now () = !cur_step
let active () = !running

let steps_of tid =
  let s = !live_steps in
  if tid < 0 || tid >= Array.length s then
    invalid_arg "Engine.steps_of: tid out of range"
  else s.(tid)

(* [quorum] (default: everyone) is the set of fibers whose completion
   ends the run; the rest may be abandoned mid-operation. Crashed tids
   from [faults] are always excluded from the quorum. The pre-fault
   way to model crashes — [Policy.crashed] plus an explicit partial
   [quorum] — still works and is kept for the older experiments. *)
let run ?(max_steps = 2_000_000) ?quorum ?(faults = []) ~threads ~policy body
    =
  if threads <= 0 then invalid_arg "Engine.run: threads";
  if !running then invalid_arg "Engine.run: nested runs are not supported";
  Fault.validate ~threads faults;
  let states = Array.init threads (fun i -> Not_started (fun () -> body i)) in
  let steps = Array.make threads 0 in
  live_steps := steps;
  let sched_rev = ref [] in
  let handler tid =
    {
      retc = (fun () -> states.(tid) <- Finished);
      exnc = (fun e -> states.(tid) <- Failed e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  states.(tid) <- Suspended k)
          | _ -> None);
    }
  in
  let quorum =
    match quorum with
    | None -> Array.make threads true
    | Some tids ->
        let q = Array.make threads false in
        List.iter
          (fun tid ->
            if tid < 0 || tid >= threads then
              invalid_arg "Engine.run: quorum tid out of range";
            q.(tid) <- true)
          tids;
        q
  in
  List.iter (fun tid -> quorum.(tid) <- false) (Fault.crashed_tids faults);
  let quorum_done () =
    let all = ref true in
    for i = 0 to threads - 1 do
      if quorum.(i) then
        match states.(i) with
        | Finished | Failed _ | Dead -> ()
        | Not_started _ | Suspended _ | Running -> all := false
    done;
    !all
  in
  (* Mark fibers whose crash step has been reached: drop them from the
     runnable set without resuming (= without unwinding) them. *)
  let mark_dead () =
    for tid = 0 to threads - 1 do
      if Fault.dead_at faults ~step:!cur_step ~tid then
        match states.(tid) with
        | Not_started _ | Suspended _ -> states.(tid) <- Dead
        | Running -> assert false
        | Finished | Failed _ | Dead -> ()
    done
  in
  let runnable () =
    let acc = ref [] in
    for i = threads - 1 downto 0 do
      match states.(i) with
      | Not_started _ | Suspended _ -> acc := i :: !acc
      | Running -> assert false
      | Finished | Failed _ | Dead -> ()
    done;
    !acc
  in
  let yield () = perform Yield in
  (* Sim-mode fault check: a primitive must only ever be executed by
     the fiber the engine just resumed. Catches fault-bookkeeping or
     policy-wrapper bugs at the earliest possible point. *)
  let fault_check () =
    if !cur_tid >= 0 then
      match states.(!cur_tid) with
      | Running -> ()
      | _ ->
          failwith
            (Printf.sprintf
               "Engine: fiber %d executed a primitive while not Running"
               !cur_tid)
  in
  (* All argument validation is done; from here on, [running] is
     always reset on every exit path. *)
  running := true;
  cur_step := 0;
  cur_tid := -1;
  let finish () =
    running := false;
    cur_tid := -1
  in
  let with_fault_check body =
    if faults = [] then body ()
    else Atomics.Schedpoint.with_check fault_check body
  in
  (try
     with_fault_check (fun () ->
         Atomics.Schedpoint.with_hook yield (fun () ->
             let rec loop () =
               if quorum_done () then ()
               else begin
                 if faults <> [] then mark_dead ();
                 match runnable () with
                 | [] -> ()
                 | rs -> (
                     if !cur_step >= max_steps then raise Out_of_steps;
                     let avail =
                       if faults = [] then rs
                       else
                         List.filter
                           (fun tid ->
                             not
                               (Fault.stalled_at faults ~step:!cur_step ~tid))
                           rs
                     in
                     match avail with
                     | [] ->
                         (* Every live fiber is inside a stall window:
                            nothing can run, but time still passes —
                            tick the clock until a window expires. *)
                         incr cur_step;
                         loop ()
                     | avail ->
                         let tid =
                           Policy.next policy ~runnable:avail ~step:!cur_step
                         in
                         if not (List.mem tid avail) then
                           invalid_arg
                             "Engine.run: policy chose a non-runnable tid";
                         cur_tid := tid;
                         incr cur_step;
                         steps.(tid) <- steps.(tid) + 1;
                         sched_rev := tid :: !sched_rev;
                         (match states.(tid) with
                         | Not_started f ->
                             states.(tid) <- Running;
                             match_with f () (handler tid)
                         | Suspended k ->
                             states.(tid) <- Running;
                             continue k ()
                         | Running | Finished | Failed _ | Dead ->
                             assert false);
                         cur_tid := -1;
                         loop ())
               end
             in
             loop ()))
   with e ->
     finish ();
     raise e);
  finish ();
  Array.iteri
    (fun i s -> match s with Failed e -> raise (Fiber_failed (i, e)) | _ -> ())
    states;
  {
    steps;
    total_steps = !cur_step;
    schedule = Array.of_list (List.rev !sched_rev);
  }
