(* SplitMix64: a small, fast, splittable PRNG with independent streams
   per seed. Used by scheduling policies and (via this module) by the
   harness workload generators, so every experiment is reproducible
   from its printed seed. *)

type t = { mutable s : int64 }

let create seed = { s = Int64.of_int seed }

let copy t = { s = t.s }

let golden = 0x9E3779B97F4A7C15L

let next64 t =
  t.s <- Int64.add t.s golden;
  let z = t.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A non-negative 62-bit int. *)
let next_int t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

(* Uniform in [0, bound) by rejection sampling. [next_int] is uniform
   on [0, 2^62) = [0, max_int]; plain [mod bound] over-weights the
   first [2^62 mod bound] residues. Draws above [cutoff] (the largest
   multiple-of-bound boundary) are redrawn — with 62-bit draws the
   rejection probability is ~bound/2^62, so in practice streams are
   unchanged and the fix costs nothing. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let cutoff = max_int - (((max_int mod bound) + 1) mod bound) in
  let rec draw () =
    let v = next_int t in
    if v > cutoff then draw () else v mod bound
  in
  draw ()

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  (* 53 uniform bits in [0, 1). *)
  Int64.to_float (Int64.shift_right_logical (next64 t) 11) /. 9007199254740992.0

let split t = create (Int64.to_int (next64 t))

(* Fisher–Yates shuffle in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
