(* Schedule exploration on top of the deterministic engine.

   [exhaustive] enumerates interleavings by stateless replay: each
   pending prefix is re-run from a fresh instance of the program, the
   policy follows the prefix and then always picks the first runnable
   thread, pushing every alternative branch point it passes. This is a
   plain DFS over the schedule tree — exponential, so callers bound it
   with [max_schedules]; it is meant for 2–3 thread micro-programs
   around a handful of primitives, which is exactly the granularity of
   the paper's lemmas.

   [random_sweep] runs many seeds of the uniform random policy, which
   scales to larger programs at the price of completeness. *)

type failure = {
  schedule : int array;
  seed : int option; (* RNG seed of the failing run (random_sweep) *)
  exn : exn;
}

(* Everything a human (or a regression test) needs to re-run the
   counterexample: the exception, the policy seed when the run came
   from a random sweep, and the full choice trace in a form that can
   be pasted back into [replay ~schedule]. *)
let failure_message f =
  let trace =
    String.concat ";" (List.map string_of_int (Array.to_list f.schedule))
  in
  Printf.sprintf
    "%s%s\n  choice trace (%d decisions): [%s]\n  replay with \
     Explore.replay ~schedule:[|%s|]"
    (Printexc.to_string f.exn)
    (match f.seed with
    | Some s -> Printf.sprintf "\n  random policy seed: %d" s
    | None -> "")
    (Array.length f.schedule) trace trace

let pp_failure ppf f = Format.pp_print_string ppf (failure_message f)

type result = {
  schedules_run : int;
  exhausted : bool;       (* every schedule up to the bounds was run *)
  failure : failure option;
}

let record taken policy =
  Policy.make ~name:(Policy.name policy) (fun ~runnable ~step ->
      let c = Policy.next policy ~runnable ~step in
      taken := c :: !taken;
      c)

let run_one ?(faults = []) ?seed ~max_steps ~threads ~policy mk =
  let taken = ref [] in
  let body, check = mk () in
  let fail e = Some { schedule = Array.of_list (List.rev !taken); seed; exn = e } in
  match
    Engine.run ~max_steps ~faults ~threads ~policy:(record taken policy) body
  with
  | _outcome -> (
      match check () with () -> None | exception e -> fail e)
  | exception e -> fail e

let exhaustive ?(max_steps = 100_000) ?(max_schedules = 100_000)
    ?(faults = []) ~threads mk =
  let pending = Stack.create () in
  Stack.push [] pending;
  let count = ref 0 in
  let failure = ref None in
  let truncated = ref false in
  while (not (Stack.is_empty pending)) && !failure = None && not !truncated do
    if !count >= max_schedules then truncated := true
    else begin
      let prefix = Array.of_list (Stack.pop pending) in
      incr count;
      let taken = ref [] in
      let pos = ref 0 in
      let policy =
        Policy.make ~name:"dfs" (fun ~runnable ~step:_ ->
            let i = !pos in
            incr pos;
            let choice =
              if i < Array.length prefix then
                (* Replays are deterministic, so the recorded choice is
                   still runnable; fall back defensively if a body is
                   not deterministic. *)
                if List.mem prefix.(i) runnable then prefix.(i)
                else List.hd runnable
              else
                match runnable with
                | c :: rest ->
                    List.iter
                      (fun r -> Stack.push (List.rev (r :: !taken)) pending)
                      rest;
                    c
                | [] -> assert false
            in
            taken := choice :: !taken;
            choice)
      in
      let body, check = mk () in
      let fail e =
        failure :=
          Some
            { schedule = Array.of_list (List.rev !taken); seed = None; exn = e }
      in
      match Engine.run ~max_steps ~faults ~threads ~policy body with
      | _outcome -> (
          match check () with () -> () | exception e -> fail e)
      | exception e -> fail e
    end
  done;
  {
    schedules_run = !count;
    exhausted = Stack.is_empty pending && !failure = None && not !truncated;
    failure = !failure;
  }

let random_sweep ?(max_steps = 2_000_000) ?(faults = []) ~threads ~runs ~seed
    mk =
  let failure = ref None in
  let i = ref 0 in
  while !i < runs && !failure = None do
    let policy = Policy.random ~seed:(seed + !i) in
    failure := run_one ~faults ~seed:(seed + !i) ~max_steps ~threads ~policy mk;
    incr i
  done;
  { schedules_run = !i; exhausted = false; failure = !failure }

(* Like [random_sweep] but with a caller-supplied policy per run —
   typically [Policy.biased] to starve one thread, which surfaces
   races that need a long stall (a reader parked across a whole
   reclamation scan, say) and are vanishingly rare under the uniform
   policy. The recorded [seed] of a failure is the index of the
   failing run, i.e. what [policy] was applied to. *)
let policy_sweep ?(max_steps = 2_000_000) ?(faults = []) ~threads ~runs
    ~policy mk =
  let failure = ref None in
  let i = ref 0 in
  while !i < runs && !failure = None do
    failure :=
      run_one ~faults ~seed:!i ~max_steps ~threads ~policy:(policy !i) mk;
    incr i
  done;
  { schedules_run = !i; exhausted = false; failure = !failure }

let replay ?(max_steps = 2_000_000) ?(faults = []) ~threads ~schedule mk =
  run_one ~faults ~max_steps ~threads ~policy:(Policy.replay schedule) mk

(* Counterexample minimisation: delta-debug a failing schedule down to
   a locally minimal one. Works because the replay policy falls back
   to the first runnable fiber when the recording runs out, so every
   subsequence of a schedule is itself a complete, runnable schedule.
   Each candidate is verified by a full replay, so the result is a
   real failing schedule, just shorter. *)
let shrink ?(max_steps = 2_000_000) ?(faults = []) ~threads ~schedule mk =
  let fails sched =
    run_one ~faults ~max_steps ~threads ~policy:(Policy.replay sched) mk
    <> None
  in
  if not (fails schedule) then None
  else begin
    let cur = ref schedule in
    let improved = ref true in
    while !improved do
      improved := false;
      let chunk = ref (max 1 (Array.length !cur / 4)) in
      while !chunk >= 1 do
        let i = ref 0 in
        while !i + !chunk <= Array.length !cur do
          let n = Array.length !cur in
          let cand =
            Array.append (Array.sub !cur 0 !i)
              (Array.sub !cur (!i + !chunk) (n - !i - !chunk))
          in
          if fails cand then begin
            cur := cand;
            improved := true
          end
          else i := !i + !chunk
        done;
        chunk := !chunk / 2
      done
    done;
    Some !cur
  end
