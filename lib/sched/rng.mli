(** SplitMix64 PRNG — deterministic, seedable, splittable. All
    randomness in schedules and workloads flows through this so runs
    are reproducible from their seeds. *)

type t

val create : int -> t
val copy : t -> t
val next64 : t -> int64
val next_int : t -> int
(** Non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] (rejection-sampled, no
    modulo bias); [bound > 0]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [\[0, 1)]. *)

val split : t -> t
(** An independent stream derived from this one. *)

val shuffle : t -> 'a array -> unit
