(** Declarative fault plans: the paper's asynchronous-adversary model
    (threads may be delayed or die between any two primitives) as a
    first-class, replayable scheduler input.

    A plan is interpreted by [Engine.run ?faults]: a crashed thread is
    removed from the runnable set at its crash step {e without being
    unwound} — its announcements, hazard slots and held references
    stay in place, exactly like a stopped process — and a stalled
    thread is frozen for a finite window and then resumes. Plans are
    plain data, so they compose with {!Explore}'s enumeration, random
    sweeps and counterexample replay. *)

type event =
  | Crash of { tid : int; at_step : int }
      (** Permanently unschedulable once the global step clock reaches
          [at_step]. *)
  | Stall of { tid : int; from_step : int; duration : int }
      (** Unschedulable during [from_step, from_step + duration);
          resumes afterwards. *)

type plan = event list

val crash : tid:int -> at_step:int -> event
val stall : tid:int -> from_step:int -> duration:int -> event

val tid_of : event -> int
(** The thread the event applies to. *)

val validate : threads:int -> plan -> unit
(** Raises [Invalid_argument] if any event names a tid outside
    [0, threads). *)

val crashed_tids : plan -> int list
(** Sorted, deduplicated tids that crash at some point. *)

val survivors : threads:int -> plan -> int list
(** Tids that never crash (stalled threads are survivors). *)

val dead_at : plan -> step:int -> tid:int -> bool
(** Has [tid] crashed by global step [step]? *)

val stalled_at : plan -> step:int -> tid:int -> bool
(** Is [tid] inside a stall window at global step [step]? *)

val random_crashes :
  ?avoid:int list ->
  seed:int ->
  threads:int ->
  victims:int ->
  window:int * int ->
  unit ->
  plan
(** [victims] distinct threads (never from [avoid]) each crash at a
    seeded-random step within the inclusive [window]. *)

val random_stalls :
  ?avoid:int list ->
  seed:int ->
  threads:int ->
  victims:int ->
  window:int * int ->
  duration:int ->
  unit ->
  plan
(** Like {!random_crashes}, but each victim stalls for [duration]
    steps starting within [window]. *)

val to_string : plan -> string
(** Compact deterministic rendering, e.g. ["crash(t2@137)+stall(t1@50+200)"];
    ["none"] for the empty plan. Used in reports and replay logs. *)
