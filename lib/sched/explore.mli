(** Schedule exploration: bounded-exhaustive DFS and random sweeps.

    Programs are supplied as a factory [mk : unit -> body * check] so
    each schedule runs against a fresh instance; [check] is called
    after the run and signals a violation by raising.

    Every entry point accepts a [?faults] plan ({!Fault.plan}),
    interpreted by the engine on each run: exploration then quantifies
    over the schedules of the {e surviving} threads, and a recorded
    counterexample replayed under the same plan reproduces the same
    execution exactly (fault timing is keyed to the global step clock,
    which replays deterministically). *)

type failure = {
  schedule : int array;
  seed : int option;
      (** RNG seed of the failing run when it came from
          {!random_sweep}; [None] for DFS/replay failures. *)
  exn : exn;
}

val failure_message : failure -> string
(** Human-readable counterexample report: the exception, the random
    seed (when any), and the full choice trace, formatted so it can be
    pasted back into {!replay} for deterministic reproduction. *)

val pp_failure : Format.formatter -> failure -> unit

type result = {
  schedules_run : int;
  exhausted : bool;
      (** [true] iff the whole schedule tree was covered (no failure,
          no truncation by [max_schedules]). *)
  failure : failure option;
}

val exhaustive :
  ?max_steps:int ->
  ?max_schedules:int ->
  ?faults:Fault.plan ->
  threads:int ->
  (unit -> (int -> unit) * (unit -> unit)) ->
  result
(** Depth-first enumeration of every interleaving (up to the bounds)
    of a small program. Stops at the first failure. *)

val random_sweep :
  ?max_steps:int ->
  ?faults:Fault.plan ->
  threads:int ->
  runs:int ->
  seed:int ->
  (unit -> (int -> unit) * (unit -> unit)) ->
  result
(** [runs] runs under the uniform random policy with seeds
    [seed, seed+1, ...]; stops at the first failure. *)

val policy_sweep :
  ?max_steps:int ->
  ?faults:Fault.plan ->
  threads:int ->
  runs:int ->
  policy:(int -> Policy.t) ->
  (unit -> (int -> unit) * (unit -> unit)) ->
  result
(** [runs] runs, run [i] under [policy i] — e.g. [Policy.biased] to
    starve one thread, surfacing long-stall races the uniform policy
    essentially never hits; stops at the first failure. A failure's
    [seed] field records the index of the failing run. *)

val replay :
  ?max_steps:int ->
  ?faults:Fault.plan ->
  threads:int ->
  schedule:int array ->
  (unit -> (int -> unit) * (unit -> unit)) ->
  failure option
(** Re-run one recorded schedule (e.g. a counterexample). *)

val shrink :
  ?max_steps:int ->
  ?faults:Fault.plan ->
  threads:int ->
  schedule:int array ->
  (unit -> (int -> unit) * (unit -> unit)) ->
  int array option
(** Delta-debug a failing schedule to a locally minimal failing one
    (every candidate is verified by replay). [None] if the given
    schedule does not reproduce a failure. *)
