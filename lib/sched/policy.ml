(* Scheduling policies for the deterministic engine.

   A policy is asked, at each step, to pick one of the currently
   runnable thread ids. The engine validates the choice, so a policy
   may be sloppy about threads that have already finished — but every
   built-in policy fails loudly (descriptive [Invalid_argument], not
   [Failure "hd"]) if it is ever consulted with an empty runnable
   list, which can only mean a driver bug. *)

type t = {
  name : string;
  next : runnable:int list -> step:int -> int;
}

let name t = t.name
let next t = t.next

let make ~name next = { name; next }

let no_runnable policy =
  invalid_arg (Printf.sprintf "Policy.%s: empty runnable list" policy)

let round_robin () =
  let last = ref (-1) in
  let next ~runnable ~step:_ =
    let pick =
      match List.find_opt (fun i -> i > !last) runnable with
      | Some i -> i
      | None -> (
          match runnable with
          | [] -> no_runnable "round_robin"
          | i :: _ -> i)
    in
    last := pick;
    pick
  in
  { name = "round_robin"; next }

let random ~seed =
  let rng = Rng.create seed in
  let next ~runnable ~step:_ =
    match List.length runnable with
    | 0 -> no_runnable "random"
    | len -> List.nth runnable (Rng.int rng len)
  in
  { name = Printf.sprintf "random(seed=%d)" seed; next }

(* Follow a recorded schedule; fall back to the lowest runnable thread
   once the recording is exhausted or names a finished thread. Used to
   replay counterexamples from Explore. *)
let replay schedule =
  let pos = ref 0 in
  let next ~runnable ~step:_ =
    let fallback () =
      match runnable with [] -> no_runnable "replay" | i :: _ -> i
    in
    if !pos >= Array.length schedule then fallback ()
    else begin
      let tid = schedule.(!pos) in
      incr pos;
      if List.mem tid runnable then tid else fallback ()
    end
  in
  { name = "replay"; next }

(* Starve [victim]: run any other runnable thread first. This is the
   adversary of experiment E2 — against a lock-free de-reference the
   other threads' link updates force retries; against the paper's
   wait-free one the victim still finishes in a bounded number of its
   own steps once it runs. Deterministic: the engine supplies
   [runnable] in ascending tid order, so the pick is always the lowest
   non-victim — and the victim itself exactly when it alone is
   runnable. *)
let others_first ~victim =
  let next ~runnable ~step:_ =
    match runnable with
    | [] -> no_runnable "others_first"
    | _ -> (
        match List.filter (fun i -> i <> victim) runnable with
        | [] -> victim
        | i :: _ -> i)
  in
  { name = Printf.sprintf "others_first(victim=%d)" victim; next }

(* Probabilistic starvation: pick the victim with probability
   1/(weight+1) whenever someone else is runnable. Interleaves the
   victim's steps with adversary steps, which is what actually triggers
   the Valois retry loop. *)
let biased ~seed ~victim ~weight =
  if weight < 0 then invalid_arg "Policy.biased";
  let rng = Rng.create seed in
  let next ~runnable ~step:_ =
    if runnable = [] then no_runnable "biased";
    let others = List.filter (fun i -> i <> victim) runnable in
    if others = [] then victim
    else if not (List.mem victim runnable) then
      List.nth others (Rng.int rng (List.length others))
    else if Rng.int rng (weight + 1) = 0 then victim
    else List.nth others (Rng.int rng (List.length others))
  in
  { name = Printf.sprintf "biased(victim=%d,weight=%d)" victim weight; next }

(* Crash modelling: fibers in [dead] are never scheduled (after an
   optional [after] step count at which they die), so they stall at
   whatever primitive they had reached — a stopped/crashed process.
   Use together with [Engine.run ~quorum]. Superseded by the richer
   [Engine.run ?faults] / [Fault.plan] mechanism, but kept as the
   policy-level variant. *)
let crashed ~dead ?(after = 0) inner =
  let next ~runnable ~step =
    let alive =
      if step < after then runnable
      else List.filter (fun i -> not (List.mem i dead)) runnable
    in
    match alive with
    | [] -> (
        (* nothing else left; let it run out *)
        match runnable with [] -> no_runnable "crashed" | i :: _ -> i)
    | alive -> next inner ~runnable:alive ~step
  in
  {
    name = Printf.sprintf "crashed(%s)@%d+%s"
        (String.concat "," (List.map string_of_int dead))
        after (name inner);
    next;
  }
