(** Scheduling policies for the deterministic engine.

    Every built-in policy raises a descriptive [Invalid_argument] if
    consulted with an empty runnable list (a driver bug by
    definition). *)

type t

val name : t -> string
val next : t -> runnable:int list -> step:int -> int

val make : name:string -> (runnable:int list -> step:int -> int) -> t

val round_robin : unit -> t
(** Fair rotation over runnable threads. *)

val random : seed:int -> t
(** Uniform choice among runnable threads, reproducible from [seed]. *)

val replay : int array -> t
(** Follow a recorded schedule (e.g. a counterexample from
    {!Explore}), falling back to the lowest runnable id when the
    recording runs out. *)

val others_first : victim:int -> t
(** Run the victim only when nothing else is runnable — maximal
    starvation of one thread. Deterministic: always the lowest
    non-victim tid, and the victim itself exactly when it alone is
    runnable. *)

val biased : seed:int -> victim:int -> weight:int -> t
(** Run the victim with probability [1/(weight+1)] when others are
    runnable: interleaves victim steps with adversary steps, the
    schedule shape that forces lock-free retry loops (experiment E2). *)

val crashed : dead:int list -> ?after:int -> t -> t
(** [crashed ~dead ~after inner]: schedule with [inner], but never
    pick a fiber in [dead] once [after] steps have elapsed — those
    fibers stall at their current primitive forever, modelling crashed
    processes. Use with [Engine.run ~quorum]. *)
