(** Deterministic cooperative scheduler over OCaml effects.

    Runs [threads] fibers on one domain; each fiber is advanced one
    atomic primitive at a time (via the {!Atomics.Schedpoint} hook),
    with a {!Policy} choosing who steps next. This reproduces, exactly
    and reproducibly, the interleavings the paper's proofs quantify
    over, and counts each thread's steps — the unit of the paper's
    wait-freedom bounds. *)

exception Fiber_failed of int * exn
(** A fiber raised: carries its tid and the original exception. *)

exception Out_of_steps
(** The run exceeded [max_steps] with fibers still runnable. *)

type outcome = {
  steps : int array;       (** scheduling steps granted to each tid *)
  total_steps : int;
      (** all clock ticks, including idle ticks spent while every live
          fiber was stalled by a fault plan *)
  schedule : int array;    (** the tid chosen at each step, replayable;
                               idle ticks are not recorded *)
}

val run :
  ?max_steps:int ->
  ?quorum:int list ->
  ?faults:Fault.plan ->
  threads:int ->
  policy:Policy.t ->
  (int -> unit) ->
  outcome
(** [run ~threads ~policy body] executes [body 0 .. body (threads-1)]
    as fibers under [policy]. Runs until every fiber in [quorum]
    (default: all) has completed; the rest may be abandoned
    mid-operation — the crashed-process model of the fault-tolerance
    experiments. Raises {!Fiber_failed} if any scheduled fiber raised.
    Not reentrant.

    [faults] (default: none) is interpreted by the engine: a crashed
    fiber is marked dead at its crash step without being unwound (its
    shared-memory footprint stays in place) and is automatically
    excluded from the quorum; a stalled fiber is withheld from the
    policy during its window, with the step clock ticking idly if
    every live fiber is stalled at once. The pre-fault idiom —
    {!Policy.crashed} plus an explicit partial [quorum] — remains
    supported. *)

val current_tid : unit -> int
(** The tid of the fiber currently executing (valid inside a run). *)

val now : unit -> int
(** The current global step number (valid inside a run); used as the
    logical clock for history recording. *)

val steps_of : int -> int
(** Scheduling steps granted to one tid so far in the current (or most
    recent) run — the unit of the paper's per-thread wait-freedom
    bounds, as sampled mid-run by {!Harness.Audit.Steps}. *)

val active : unit -> bool
(** Whether a run is in progress. *)
