(** The simulated shared memory: a flat array of atomic cells holding
    root links followed by fixed-size node blocks.

    Cells live for the lifetime of the arena, so the [mm_ref] word of
    a reclaimed node stays accessible — the paper's §3 assumption. All
    word operations are atomic and cross one scheduling point each. *)

type t

val create :
  ?backend:Atomics.Backend.t ->
  layout:Layout.t ->
  capacity:int ->
  num_roots:int ->
  unit ->
  t
(** [create ~layout ~capacity ~num_roots] builds an arena of
    [capacity] nodes (handles [1..capacity]) preceded by [num_roots]
    root link cells. All cells start at 0 (= null pointer).

    [backend] (default [Sim]) selects the word-operation cost model:
    [Sim] crosses one {!Atomics.Schedpoint} per primitive (the
    deterministic scheduler's granularity); [Native] is hook-free
    direct [Atomic] ops, with root links and each node's
    [mm_ref]/[mm_next] padded to a cache-line pair and node blocks
    allocated in one batch. *)

val backend : t -> Atomics.Backend.t
val layout : t -> Layout.t
val capacity : t -> int
val num_roots : t -> int
val num_cells : t -> int

val addr_base : t -> int
(** Global address of this arena's cell 0. Each arena claims a
    contiguous window of a process-wide address space, so
    [addr_base t + local] identifies one cell uniquely across arenas;
    these are the addresses a {!Atomics.Schedpoint} validator
    receives. Under [Sim] every word operation reports
    [addr_base + local addr]; [Native] reports nothing. *)

(** {1 Addressing} *)

val root_addr : t -> int -> Value.addr
val node_base : t -> int -> Value.addr
val mm_ref_addr : t -> Value.ptr -> Value.addr
val mm_next_addr : t -> Value.ptr -> Value.addr
val link_addr : t -> Value.ptr -> int -> Value.addr
val data_addr : t -> Value.ptr -> int -> Value.addr

val owner_of : t -> Value.addr -> [ `Root of int | `Node of int * int ]
(** Inverse mapping: root index, or (node handle, cell offset). *)

(** {1 Atomic word operations (paper Figure 2)} *)

val cell : t -> Value.addr -> Atomics.Primitives.cell
val read : t -> Value.addr -> int
val write : t -> Value.addr -> int -> unit
val cas : t -> Value.addr -> old:int -> nw:int -> bool
val faa : t -> Value.addr -> int -> int
val swap : t -> Value.addr -> int -> int

(** {1 mm-field conveniences} *)

val read_mm_ref : t -> Value.ptr -> int
val faa_mm_ref : t -> Value.ptr -> int -> unit
val cas_mm_ref : t -> Value.ptr -> old:int -> nw:int -> bool
val read_mm_next : t -> Value.ptr -> Value.ptr
val write_mm_next : t -> Value.ptr -> Value.ptr -> unit
val read_link : t -> Value.ptr -> int -> int
val write_link : t -> Value.ptr -> int -> int -> unit
val read_data : t -> Value.ptr -> int -> int
val write_data : t -> Value.ptr -> int -> int -> unit

(** {1 Iteration and debugging} *)

val iter_nodes : t -> (Value.ptr -> unit) -> unit
(** Apply to every node pointer, in handle order. Not atomic; for
    quiescent checks only. *)

val dump_node : Format.formatter -> t -> Value.ptr -> unit
