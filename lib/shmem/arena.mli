(** The simulated shared memory: root link cells followed by
    fixed-size node blocks, behind a backend- and representation-
    dispatched facade.

    Cells live for the lifetime of the arena, so the [mm_ref] word of
    a reclaimed node stays accessible — the paper's §3 assumption. All
    word operations are atomic; under [Sim] each crosses one
    scheduling point. *)

type t

val create :
  ?backend:Atomics.Backend.t ->
  ?rep:Atomics.Backend.rep ->
  layout:Layout.t ->
  capacity:int ->
  num_roots:int ->
  unit ->
  t
(** [create ~layout ~capacity ~num_roots] builds an arena of
    [capacity] nodes (handles [1..capacity]) preceded by [num_roots]
    root link cells. All cells start at 0 (= null pointer).

    [backend] (default [Sim]) selects the word-operation cost model:
    [Sim] crosses one {!Atomics.Schedpoint} per primitive (the
    deterministic scheduler's granularity); [Native] is hook-free.

    [rep] (default {!Atomics.Backend.default_rep}) selects the store:
    [Boxed] is the dense [int Atomic.t] array (under [Native], roots
    and each node's [mm_ref]/[mm_next] padded to a cache-line pair and
    node blocks allocated in one batch); [Unboxed] ([Native] only) is
    a single page-aligned out-of-heap {!Atomics.Words} block with the
    same padding discipline laid out physically. The two reps have
    different physical geometries — always address through the
    functions below. *)

val backend : t -> Atomics.Backend.t
val rep : t -> Atomics.Backend.rep
val layout : t -> Layout.t
val capacity : t -> int
val num_roots : t -> int

val num_cells : t -> int
(** Logical cell count, [num_roots + capacity * node_size] —
    independent of physical padding. *)

val addr_base : t -> int
(** Global address of this arena's cell 0. Each arena claims a
    contiguous window of a process-wide address space, so
    [addr_base t + local] identifies one cell uniquely across arenas;
    these are the addresses a {!Atomics.Schedpoint} validator
    receives. Under [Sim] every word operation reports
    [addr_base + local addr]; [Native] reports nothing. *)

(** {1 Addressing}

    All functions return {e physical} addresses valid only for this
    arena's representation. *)

val root_addr : t -> int -> Value.addr
val node_base : t -> int -> Value.addr
val mm_ref_addr : t -> Value.ptr -> Value.addr
val mm_next_addr : t -> Value.ptr -> Value.addr
val link_addr : t -> Value.ptr -> int -> Value.addr
val data_addr : t -> Value.ptr -> int -> Value.addr

val owner_of : t -> Value.addr -> [ `Root of int | `Node of int * int ]
(** Inverse mapping: root index, or (node handle, {e logical} cell
    offset: 0 = [mm_ref], 1 = [mm_next], then links and data) —
    uniform across representations. Rejects out-of-range addresses and
    ([Unboxed]) padding words. *)

(** {1 Atomic word operations (paper Figure 2)} *)

val read : t -> Value.addr -> int
val write : t -> Value.addr -> int -> unit
val cas : t -> Value.addr -> old:int -> nw:int -> bool
val faa : t -> Value.addr -> int -> int
val swap : t -> Value.addr -> int -> int

(** {1 mm-field conveniences} *)

val read_mm_ref : t -> Value.ptr -> int
val faa_mm_ref : t -> Value.ptr -> int -> unit
val cas_mm_ref : t -> Value.ptr -> old:int -> nw:int -> bool
val read_mm_next : t -> Value.ptr -> Value.ptr
val write_mm_next : t -> Value.ptr -> Value.ptr -> unit
val read_link : t -> Value.ptr -> int -> int
val write_link : t -> Value.ptr -> int -> int -> unit
val read_data : t -> Value.ptr -> int -> int
val write_data : t -> Value.ptr -> int -> int -> unit

(** {1 Fused reference-count fragments}

    One stub crossing under [Unboxed]; the boxed arms issue the same
    per-word ops individually (one scheduling point each under
    [Sim]). *)

val release_mm_ref : t -> Value.ptr -> bool
(** ReleaseRef R1–R2: FAA the node's [mm_ref] by [-2]; true iff it
    then read 0 and this caller claimed it with CAS(0 → 1). *)

val read_clear_link : t -> Value.ptr -> int -> int
(** R3's per-link collect: read link [i] and store 0. Caller must own
    the node exclusively (post-R2). *)

val release_collect : t -> Value.ptr -> out:int array -> int
(** R1–R3 whole: {!release_mm_ref}, and if the node was claimed,
    read-and-clear every link word, depositing the non-null values in
    slot order into [out] (length ≥ the layout's [num_links]).
    Returns the deposit count, or [-1] when not claimed. *)

val raw : t -> Atomics.Words.t option
(** The backing {!Atomics.Words} block ([Unboxed] only) — for fusions
    spanning the arena and a hot vector (see
    {!Atomics.Words.take_fix} and {!Atomics.Words.free_donate}).
    Address it with the {e physical} addresses from the addressing
    section above. *)

val node_geom : t -> int array
(** [[| nodes_base; node_stride |]] — the physical node geometry the
    cross-store fusion stubs need ([mm_ref] is word 0 of a node
    block). *)

(** {1 Iteration and debugging} *)

val iter_nodes : t -> (Value.ptr -> unit) -> unit
(** Apply to every node pointer, in handle order. Not atomic; for
    quiescent checks only. *)

val dump_node : Format.formatter -> t -> Value.ptr -> unit
