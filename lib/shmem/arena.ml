[@@@wfrc.progress "wait_free"] (* static progress contract; checked by `wfrc_lint --pass progress` *)

(* The simulated shared memory.

   One flat store of atomic words plays the role of the machine's
   shared memory (paper §2). The first [num_roots] cells are "root
   links" — the global link variables a data structure needs (queue
   head/tail, skiplist head links, ...). Nodes follow, each occupying
   a fixed block of cells. Node handle [h] (1-based) maps to base cell
   [nodes_base + (h-1) * node_stride].

   Cells are never deallocated, so the [mm_ref] word of a reclaimed
   node remains readable and FAA-able forever — precisely the
   "indefinitely present mm_ref field" assumption of paper §3.

   The arena is a facade over two concrete representations:

   - [Cells]: the historical dense [int Atomic.t] array. Under [Sim]
     every word operation crosses one scheduling point through the
     instrumented {!Atomics.Primitives} (the deterministic scheduler's
     granularity) — byte-for-byte the original behaviour, oracle hooks
     intact. Under [Native]+[Boxed] it is direct [Atomic] ops with the
     contention hot spots (roots, [mm_ref]/[mm_next]) padded to a
     cache-line pair each.

   - [Raw]: a single page-aligned out-of-heap {!Atomics.Words} block
     ([Native]+[Unboxed], the Native default). No box per cell, no GC
     traffic, stable addresses; C stubs compile each access to one
     [__atomic] SEQ_CST instruction. The padding discipline carries
     over physically: every root and every node's [mm_ref]/[mm_next]
     sit on their own cache-line pair, with the node's link and data
     words packed contiguously after the header.

   The two representations have different *physical* geometries, so
   all addressing goes through the geometry fields below; [Value.addr]
   values from one arena are meaningless in another (they always
   were — each arena also claims its own global address window). *)

module P = Atomics.Primitives
module Backend = Atomics.Backend
module Words = Atomics.Words

type store = Cells of P.cell array | Raw of Words.t

type t = {
  backend : Backend.t;
  rep : Backend.rep;
  layout : Layout.t;
  capacity : int;
  num_roots : int;
  store : store;
  (* Physical geometry: where things live inside the store. *)
  root_stride : int; (* words per root slot *)
  nodes_base : int; (* physical address of node 1 *)
  node_stride : int; (* words per node block *)
  next_off : int; (* mm_next's offset inside a node block *)
  body_off : int; (* link 0's offset inside a node block *)
  size : int; (* total physical words *)
  base : int; (* global address of cell 0, see [next_base] *)
}

(* Global address space: every arena claims a contiguous window of
   addresses, so [base + local addr] identifies one cell uniquely
   across all arenas alive in the process. The access validator
   ([Atomics.Schedpoint.hit_at]) receives these global addresses and
   can tell its own arena's words from everything else without any
   per-cell table. The counter is an [Atomic] only for safety if two
   domains ever create arenas concurrently; allocation order does not
   affect behaviour. *)
let next_base = Atomic.make 0

let line = Backend.cache_line_words
let round_up_line n = (n + line - 1) / line * line

let create ?(backend = Backend.Sim) ?rep ~layout ~capacity ~num_roots () =
  if capacity < 1 then invalid_arg "Arena.create: capacity";
  if num_roots < 0 then invalid_arg "Arena.create: num_roots";
  let rep =
    match rep with Some r -> r | None -> Backend.default_rep backend
  in
  if backend = Backend.Sim && rep = Backend.Unboxed then
    invalid_arg "Arena.create: Sim is boxed-only";
  let node_size = Layout.node_size layout in
  let root_stride, nodes_base, node_stride, next_off, body_off =
    match rep with
    | Backend.Boxed ->
        (1, num_roots, node_size, Layout.mm_next_offset, Layout.header_size)
    | Backend.Unboxed ->
        (* Padded physical layout: each root and each node's two header
           words get a cache-line pair; the body is packed after. *)
        let body = node_size - Layout.header_size in
        (line, num_roots * line, round_up_line ((2 * line) + body), line,
         2 * line)
  in
  let size = nodes_base + (capacity * node_stride) in
  let store =
    match (backend, rep) with
    | _, Backend.Unboxed -> Raw (Words.make size)
    | Backend.Sim, Backend.Boxed ->
        (* Deterministic simulation: no cache to manage, keep cells
           dense. *)
        Cells (Array.init size (fun _ -> P.make 0))
    | Backend.Native, Backend.Boxed ->
        let cells = Array.make size (Atomic.make 0) in
        for r = 0 to num_roots - 1 do
          cells.(r) <- Backend.make_contended backend 0
        done;
        for h = 0 to capacity - 1 do
          let base = num_roots + (h * node_size) in
          (* Hot header words first, padded; then the node's link and
             data words as one contiguous batch. *)
          cells.(base + Layout.mm_ref_offset) <-
            Backend.make_contended backend 0;
          cells.(base + Layout.mm_next_offset) <-
            Backend.make_contended backend 0;
          for off = Layout.header_size to node_size - 1 do
            cells.(base + off) <- Atomic.make 0
          done
        done;
        Cells cells
  in
  let base = Atomic.fetch_and_add next_base size in
  {
    backend;
    rep;
    layout;
    capacity;
    num_roots;
    store;
    root_stride;
    nodes_base;
    node_stride;
    next_off;
    body_off;
    size;
    base;
  }

let backend t = t.backend
let rep t = t.rep
let layout t = t.layout
let capacity t = t.capacity
let num_roots t = t.num_roots

(* Logical cell count (roots + capacity * node_size), independent of
   the physical padding — what the Sim-side analyzers iterate over. *)
let num_cells t = t.num_roots + (t.capacity * Layout.node_size t.layout)
let addr_base t = t.base

(* Addressing ------------------------------------------------------- *)

let root_addr t r =
  if r < 0 || r >= t.num_roots then invalid_arg "Arena.root_addr";
  r * t.root_stride

let check_handle t h =
  if h < 1 || h > t.capacity then invalid_arg "Arena.check_handle"

let node_base t h =
  check_handle t h;
  t.nodes_base + ((h - 1) * t.node_stride)

let mm_ref_addr t p = node_base t (Value.handle p)
let mm_next_addr t p = node_base t (Value.handle p) + t.next_off

let link_addr t p i =
  let logical = Layout.link_offset t.layout i in
  node_base t (Value.handle p) + t.body_off + (logical - Layout.header_size)

let data_addr t p j =
  let logical = Layout.data_offset t.layout j in
  node_base t (Value.handle p) + t.body_off + (logical - Layout.header_size)

(* [owner_of addr] inverts the mapping: which node (if any) contains
   this cell, and at which *logical* offset (0 = [mm_ref], 1 =
   [mm_next], then links and data) — uniform across representations.
   Padding words have no owner and are rejected. Used by invariant
   checkers. *)
let owner_of t addr =
  if addr < 0 || addr >= t.size then invalid_arg "Arena.owner_of"
  else if addr < t.nodes_base then
    if addr mod t.root_stride = 0 then `Root (addr / t.root_stride)
    else invalid_arg "Arena.owner_of: padding word"
  else begin
    let off = addr - t.nodes_base in
    let h = 1 + (off / t.node_stride) in
    let w = off mod t.node_stride in
    if w = 0 then `Node (h, Layout.mm_ref_offset)
    else if w = t.next_off then `Node (h, Layout.mm_next_offset)
    else if
      w >= t.body_off
      && w < t.body_off + Layout.node_size t.layout - Layout.header_size
    then `Node (h, Layout.header_size + (w - t.body_off))
    else invalid_arg "Arena.owner_of: padding word"
  end

(* Word operations: dispatched on the stored representation ---------

   The [Sim] arm uses the instrumented primitives so the scheduling
   crossing carries this cell's global address and access kind —
   scheduling behaviour is identical to the plain primitives (one
   crossing per operation), and with no validator installed the
   metadata costs one no-op call. [Native]+[Boxed] stays a direct
   [Atomic] operation: no hook, no validator, no metadata. [Raw] is
   one C stub call per access — a single [__atomic] instruction on the
   out-of-heap block. *)

let read t addr =
  match t.store with
  | Raw w -> Words.get w addr
  | Cells cells -> (
      match t.backend with
      | Backend.Sim -> P.read_at ~addr:(t.base + addr) cells.(addr)
      | Backend.Native -> Atomic.get cells.(addr))

let write t addr v =
  match t.store with
  | Raw w -> Words.set w addr v
  | Cells cells -> (
      match t.backend with
      | Backend.Sim -> P.write_at ~addr:(t.base + addr) cells.(addr) v
      | Backend.Native -> Atomic.set cells.(addr) v)

let cas t addr ~old ~nw =
  match t.store with
  | Raw w -> Words.cas w addr ~old ~nw
  | Cells cells -> (
      match t.backend with
      | Backend.Sim -> P.cas_at ~addr:(t.base + addr) cells.(addr) ~old ~nw
      | Backend.Native -> Atomic.compare_and_set cells.(addr) old nw)

let faa t addr delta =
  match t.store with
  | Raw w -> Words.faa w addr delta
  | Cells cells -> (
      match t.backend with
      | Backend.Sim -> P.faa_at ~addr:(t.base + addr) cells.(addr) delta
      | Backend.Native -> Atomic.fetch_and_add cells.(addr) delta)

let swap t addr v =
  match t.store with
  | Raw w -> Words.swap w addr v
  | Cells cells -> (
      match t.backend with
      | Backend.Sim -> P.swap_at ~addr:(t.base + addr) cells.(addr) v
      | Backend.Native -> Atomic.exchange cells.(addr) v)

(* mm-field conveniences (all atomic word ops on the cells above). *)

let read_mm_ref t p = read t (mm_ref_addr t p)
let faa_mm_ref t p delta = ignore (faa t (mm_ref_addr t p) delta)
let cas_mm_ref t p ~old ~nw = cas t (mm_ref_addr t p) ~old ~nw
let read_mm_next t p = read t (mm_next_addr t p)
let write_mm_next t p v = write t (mm_next_addr t p) v

let read_link t p i = read t (link_addr t p i)
let write_link t p i v = write t (link_addr t p i) v
let read_data t p j = read t (data_addr t p j)
let write_data t p j v = write t (data_addr t p j) v

(* Fused reference-count fragments. The [Raw] arms collapse the
   sequence into one stub crossing; the [Cells] arms execute the same
   ops through the per-word entry points — under [Sim] that means the
   same scheduling points in the same order as ever. *)

(* ReleaseRef R1-R2: drop a reference; true iff the count hit zero and
   this caller claimed the node with the CAS(0 -> 1). *)
let release_mm_ref t p =
  match t.store with
  | Raw w -> Words.release_ref w (mm_ref_addr t p)
  | Cells _ ->
      faa_mm_ref t p (-2);
      read_mm_ref t p = 0 && cas_mm_ref t p ~old:0 ~nw:1

(* R3's per-link collect: read the link word and clear it. Only valid
   while the caller owns the node exclusively (post-R2). *)
let read_clear_link t p i =
  match t.store with
  | Raw w -> Words.read_clear w (link_addr t p i)
  | Cells _ ->
      let v = read_link t p i in
      write_link t p i 0;
      v

(* R1-R3 whole: release, and when this caller claimed the node,
   read-and-clear every link word, depositing the non-null values in
   slot order into [out] (length >= num_links). Returns the deposit
   count, or -1 when not claimed. One stub crossing under [Raw] — the
   node's links are physically contiguous from [body_off]. *)
let release_collect t p ~out =
  let nl = Layout.num_links t.layout in
  match t.store with
  | Raw w ->
      let nb = node_base t (Value.handle p) in
      Words.release_collect w ~ref_addr:nb ~links:(nb + t.body_off) ~nl ~out
  | Cells _ ->
      if release_mm_ref t p then begin
        let count = ref 0 in
        for i = 0 to nl - 1 do
          let v = read_link t p i in
          write_link t p i 0;
          if not (Value.is_null v) then begin
            out.(!count) <- v;
            incr count
          end
        done;
        !count
      end
      else -1

(* The raw word block (unboxed rep only) and the physical node
   geometry, for fusions that span the arena and a manager's hot
   vector (see {!Atomics.Words.take_fix}/[free_donate]). Addressing
   uses the same physical [Value.addr] values as [read]/[write]
   above. *)
let raw t = match t.store with Raw w -> Some w | Cells _ -> None
let node_geom t = [| t.nodes_base; t.node_stride |]

(* Iteration and debug ---------------------------------------------- *)

let iter_nodes t f =
  for h = 1 to t.capacity do
    f (Value.of_handle h)
  done

let dump_node ppf t p =
  let h = Value.handle p in
  Fmt.pf ppf "node #%d: ref=%d next=%a" h (read_mm_ref t p) Value.pp_ptr
    (read_mm_next t p);
  for i = 0 to Layout.num_links t.layout - 1 do
    Fmt.pf ppf " l%d=%a" i Value.pp_word (read_link t p i)
  done;
  for j = 0 to Layout.num_data t.layout - 1 do
    Fmt.pf ppf " d%d=%d" j (read_data t p j)
  done
