(* The simulated shared memory.

   One flat array of atomic cells plays the role of the machine's
   shared memory (paper §2). The first [num_roots] cells are "root
   links" — the global link variables a data structure needs (queue
   head/tail, skiplist head links, ...). Nodes follow, each occupying
   [Layout.node_size] consecutive cells. Node handle [h] (1-based) maps
   to base cell [num_roots + (h-1) * node_size].

   Cells are never deallocated, so the [mm_ref] word of a reclaimed
   node remains readable and FAA-able forever — precisely the
   "indefinitely present mm_ref field" assumption of paper §3.

   The arena stores its [Atomics.Backend.t] and dispatches every word
   operation through it: under [Sim] each primitive crosses one
   scheduling point (the deterministic scheduler's granularity); under
   [Native] it is a direct [Atomic] operation with zero hook dispatch.
   A [Native] arena additionally pads the contention hot spots — the
   root links and each node's [mm_ref]/[mm_next] header words — to a
   cache-line pair each, and allocates every node's block of cells in
   one batch so a node's words are heap-adjacent (allocation order is
   address order on the minor heap), instead of interleaving all cells
   through one [Array.init] closure. *)

module P = Atomics.Primitives
module Backend = Atomics.Backend

type t = {
  backend : Backend.t;
  layout : Layout.t;
  capacity : int;
  num_roots : int;
  cells : P.cell array;
  base : int; (* global address of cell 0, see [next_base] *)
}

(* Global address space: every arena claims a contiguous window of
   addresses, so [base + local addr] identifies one cell uniquely
   across all arenas alive in the process. The access validator
   ([Atomics.Schedpoint.hit_at]) receives these global addresses and
   can tell its own arena's words from everything else without any
   per-cell table. The counter is an [Atomic] only for safety if two
   domains ever create arenas concurrently; allocation order does not
   affect behaviour. *)
let next_base = Atomic.make 0

let create ?(backend = Backend.Sim) ~layout ~capacity ~num_roots () =
  if capacity < 1 then invalid_arg "Arena.create: capacity";
  if num_roots < 0 then invalid_arg "Arena.create: num_roots";
  let node_size = Layout.node_size layout in
  let size = num_roots + (capacity * node_size) in
  let cells =
    match backend with
    | Backend.Sim ->
        (* Deterministic simulation: no cache to manage, keep cells
           dense. *)
        Array.init size (fun _ -> P.make 0)
    | Backend.Native ->
        let cells = Array.make size (Atomic.make 0) in
        for r = 0 to num_roots - 1 do
          cells.(r) <- Backend.make_contended backend 0
        done;
        for h = 0 to capacity - 1 do
          let base = num_roots + (h * node_size) in
          (* Hot header words first, padded; then the node's link and
             data words as one contiguous batch. *)
          cells.(base + Layout.mm_ref_offset) <-
            Backend.make_contended backend 0;
          cells.(base + Layout.mm_next_offset) <-
            Backend.make_contended backend 0;
          for off = Layout.header_size to node_size - 1 do
            cells.(base + off) <- Atomic.make 0
          done
        done;
        cells
  in
  let base = Atomic.fetch_and_add next_base size in
  { backend; layout; capacity; num_roots; cells; base }

let backend t = t.backend
let layout t = t.layout
let capacity t = t.capacity
let num_roots t = t.num_roots
let num_cells t = Array.length t.cells
let addr_base t = t.base

(* Addressing ------------------------------------------------------- *)

let root_addr t r =
  if r < 0 || r >= t.num_roots then invalid_arg "Arena.root_addr";
  r

let check_handle t h =
  if h < 1 || h > t.capacity then invalid_arg "Arena.check_handle"

let node_base t h =
  check_handle t h;
  t.num_roots + ((h - 1) * Layout.node_size t.layout)

let mm_ref_addr t p = node_base t (Value.handle p) + Layout.mm_ref_offset
let mm_next_addr t p = node_base t (Value.handle p) + Layout.mm_next_offset

let link_addr t p i =
  node_base t (Value.handle p) + Layout.link_offset t.layout i

let data_addr t p j =
  node_base t (Value.handle p) + Layout.data_offset t.layout j

(* [owner_of addr] inverts the mapping: which node (if any) contains
   this cell, and at which offset. Used by invariant checkers. *)
let owner_of t addr =
  if addr < 0 || addr >= Array.length t.cells then
    invalid_arg "Arena.owner_of"
  else if addr < t.num_roots then `Root addr
  else
    let off = addr - t.num_roots in
    let size = Layout.node_size t.layout in
    `Node (1 + (off / size), off mod size)

(* Word operations: dispatched on the stored backend ---------------

   The [Sim] arm uses the instrumented primitives so the scheduling
   crossing carries this cell's global address and access kind —
   scheduling behaviour is identical to the plain primitives (one
   crossing per operation), and with no validator installed the
   metadata costs one no-op call. [Native] stays a direct [Atomic]
   operation: no hook, no validator, no metadata. *)

let cell t addr = t.cells.(addr)

let read t addr =
  match t.backend with
  | Backend.Sim -> P.read_at ~addr:(t.base + addr) t.cells.(addr)
  | Backend.Native -> Atomic.get t.cells.(addr)

let write t addr v =
  match t.backend with
  | Backend.Sim -> P.write_at ~addr:(t.base + addr) t.cells.(addr) v
  | Backend.Native -> Atomic.set t.cells.(addr) v

let cas t addr ~old ~nw =
  match t.backend with
  | Backend.Sim -> P.cas_at ~addr:(t.base + addr) t.cells.(addr) ~old ~nw
  | Backend.Native -> Atomic.compare_and_set t.cells.(addr) old nw

let faa t addr delta =
  match t.backend with
  | Backend.Sim -> P.faa_at ~addr:(t.base + addr) t.cells.(addr) delta
  | Backend.Native -> Atomic.fetch_and_add t.cells.(addr) delta

let swap t addr v =
  match t.backend with
  | Backend.Sim -> P.swap_at ~addr:(t.base + addr) t.cells.(addr) v
  | Backend.Native -> Atomic.exchange t.cells.(addr) v

(* mm-field conveniences (all atomic word ops on the cells above). *)

let read_mm_ref t p = read t (mm_ref_addr t p)
let faa_mm_ref t p delta = ignore (faa t (mm_ref_addr t p) delta)
let cas_mm_ref t p ~old ~nw = cas t (mm_ref_addr t p) ~old ~nw
let read_mm_next t p = read t (mm_next_addr t p)
let write_mm_next t p v = write t (mm_next_addr t p) v

let read_link t p i = read t (link_addr t p i)
let write_link t p i v = write t (link_addr t p i) v
let read_data t p j = read t (data_addr t p j)
let write_data t p j v = write t (data_addr t p j) v

(* Iteration and debug ---------------------------------------------- *)

let iter_nodes t f =
  for h = 1 to t.capacity do
    f (Value.of_handle h)
  done

let dump_node ppf t p =
  let h = Value.handle p in
  let base = node_base t h in
  Fmt.pf ppf "node #%d: ref=%d next=%a" h
    (read t (base + Layout.mm_ref_offset))
    Value.pp_ptr
    (read t (base + Layout.mm_next_offset));
  for i = 0 to Layout.num_links t.layout - 1 do
    Fmt.pf ppf " l%d=%a" i Value.pp_word (read_link t p i)
  done;
  for j = 0 to Layout.num_data t.layout - 1 do
    Fmt.pf ppf " d%d=%d" j (read_data t p j)
  done
