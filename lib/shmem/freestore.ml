[@@@wfrc.progress "lock_free"] (* static progress contract; checked by `wfrc_lint --pass progress` *)

(* Sharded free store for the [Native] backend.

   The managers' legacy free-lists funnel every allocation and free
   through one stamped Treiber head — a single global hot word that
   stops scaling past a couple of domains. Following Blelloch & Wei
   (concurrent fixed-size allocation) and the paper's own 2N-list
   design, this module splits the node range into [shards] contiguous
   stripes, each with its own cache-line-padded stamped head, and puts
   a small unsynchronised per-thread cache in front of them:

   - a thread allocates from its cache and refills it [batch] nodes at
     a time from its home stripe ([tid mod shards]);
   - frees go into the cache; on overflow the oldest [batch] nodes are
     spilled — nodes whose home is the thread's own stripe are pushed
     back as one chain with a single CAS, nodes that belong to another
     stripe are routed through that stripe's MPSC return buffer so
     cross-domain frees do not CAS-hammer a remote head;
   - an empty home stripe steals round-robin from the other stripes.

   The stripe heads, return-buffer slots and producer cursors all live
   on one {!Atomics.Hot} vector, so under the [Unboxed] representation
   they share the arena's raw-word regime: no boxes, no GC traffic,
   each word on its own cache-line pair.

   ABA safety: every successful head CAS increments the stamp, so a
   successful batch pop (read head, walk [batch] nodes, CAS the head
   past the cut point) proves the list head was untouched for the
   whole walk — on-list nodes' [mm_next] words are only written while
   the node is privately owned, and cells live forever, so the stale
   reads a failed attempt may have made are harmless.

   Reference counts are never touched here: the RC schemes keep their
   "free node carries mm_ref = 1" convention across the cache and the
   buffers, and hand nodes out with a FAA (stale deref FAA pairs can
   still land on a cached node, so a plain store would be lost-update
   racy — the managers own that protocol, not the store).

   Parking: a thread that finds the whole store empty can register on
   the store's {!Atomics.Park} spot ({!wait_free}) instead of
   spinning; every push that makes nodes *visible* (a chain push or a
   return-buffer install — cache-local frees are invisible by design)
   wakes the parkers. Parks are timed: nodes parked in other threads'
   caches generate no wake, so the waiter re-polls.

   The [Sim] backend never constructs one of these: sharding is a
   Native-only path, keeping the deterministic scheduler's and
   lincheck's per-primitive schedules byte-for-byte unchanged. *)

module B = Atomics.Backend
module C = Atomics.Counters
module Hot = Atomics.Hot
module Park = Atomics.Park

type cache = {
  slots : int array; (* Value.ptr; length 2*batch; thread-local *)
  mutable len : int;
}

type t = {
  backend : B.t;
  arena : Arena.t;
  capacity : int;
  shards : int;
  batch : int;
  threads : int;
  rbuf_size : int;
  ctr : C.t;
  hot : Hot.t; (* stamped stripe heads, return slots, producer cursors *)
  caches : cache array; (* [threads] *)
  park : Park.t; (* woken by every visible push; see [wait_free] *)
  adopt_lock : int Atomic.t; (* single-adopter guard for [adopt] *)
}

let shards t = t.shards
let batch t = t.batch

(* Hot-vector slot map: stripe [s]'s head at [s], its producer cursor
   at [shards + s], return slot [i] of stripe [s] at
   [2*shards + s*rbuf_size + i]. *)
let hw_head s = s
let hw_rtail t s = t.shards + s
let hw_rbuf t s i = (2 * t.shards) + (s * t.rbuf_size) + i

(* Stripes partition the handle range contiguously, so a node's home
   stripe is a pure function of its handle. *)
let stripe_of t p = (Value.handle p - 1) * t.shards / t.capacity
let home_of t ~tid = tid mod t.shards

let create ~backend ?rep ~arena ~counters ~shards ~batch ~threads () =
  if shards < 1 then invalid_arg "Freestore.create: shards";
  if batch < 1 then invalid_arg "Freestore.create: batch";
  let rep = match rep with Some r -> r | None -> B.default_rep backend in
  let capacity = Arena.capacity arena in
  if shards > capacity then invalid_arg "Freestore.create: shards > capacity";
  (* Chain each stripe's handle range, low handle first. *)
  let firsts = Array.make shards Value.null in
  for h = capacity downto 1 do
    let p = Value.of_handle h in
    let s = (h - 1) * shards / capacity in
    Arena.write_mm_next arena p firsts.(s);
    firsts.(s) <- p
  done;
  let rbuf_size = max 4 (2 * batch) in
  let hot =
    Hot.create ~backend ~rep
      ((2 * shards) + (shards * rbuf_size))
      ~init:(fun i ->
        if i < shards then Value.pack_stamped ~stamp:0 ~ptr:firsts.(i) else 0)
  in
  {
    backend;
    arena;
    capacity;
    shards;
    batch;
    threads;
    rbuf_size;
    ctr = counters;
    hot;
    caches =
      Array.init threads (fun _ ->
          { slots = Array.make (2 * batch) Value.null; len = 0 });
    park = Park.create ();
    adopt_lock = Atomic.make 0;
  }

(* Every push that makes nodes visible to other threads wakes the
   store's parkers. Cache-local frees never wake — they are invisible
   until spilled, which routes through here. *)
let wake t ~tid = if Park.wake t.park then C.incr t.ctr ~tid Park_wake

(* Push a privately-owned chain [first .. last] onto stripe [s]. *)
let push_chain t ~tid s ~first ~last =
  let rec go () =
    let hv = Hot.read t.hot (hw_head s) in
    Arena.write_mm_next t.arena last (Value.stamped_ptr hv);
    let nw =
      Value.pack_stamped ~stamp:(Value.stamped_stamp hv + 1) ~ptr:first
    in
    if not (Hot.cas t.hot (hw_head s) ~old:hv ~nw) then begin
      C.incr t.ctr ~tid Free_retry;
      go ()
    end
  in
  go ();
  wake t ~tid

(* Pop up to [max] nodes from stripe [s] as one chain cut. Returns the
   chain's first node and its length (null, 0 when the stripe is
   empty). The walk may read stale [mm_next] words if the head moves
   under us, but it is bounded by [max] and the CAS then fails. *)
let pop_chain t ~tid s ~max =
  let rec go () =
    let hv = Hot.read t.hot (hw_head s) in
    let first = Value.stamped_ptr hv in
    if Value.is_null first then (Value.null, 0)
    else begin
      let last = ref first and n = ref 1 in
      let walking = ref true in
      while !walking && !n < max do
        let nx = Arena.read_mm_next t.arena !last in
        if Value.is_null nx then walking := false
        else begin
          last := nx;
          incr n
        end
      done;
      let next_head = Arena.read_mm_next t.arena !last in
      let nw =
        Value.pack_stamped ~stamp:(Value.stamped_stamp hv + 1) ~ptr:next_head
      in
      if Hot.cas t.hot (hw_head s) ~old:hv ~nw then (first, !n)
      else begin
        C.incr t.ctr ~tid Alloc_retry;
        go ()
      end
    end
  in
  go ()

(* Route one free through stripe [s]'s return buffer: claim a slot by
   FAA, install with a 0 -> node CAS. A full/contended slot falls back
   to a direct head push — the buffer is an optimisation, not custody:
   nodes are never parked outside a stripe, a cache or a slot. *)
let push_remote t ~tid s node =
  C.incr t.ctr ~tid Free_remote;
  let i = Hot.faa t.hot (hw_rtail t s) 1 mod t.rbuf_size in
  if Hot.cas t.hot (hw_rbuf t s i) ~old:0 ~nw:node then wake t ~tid
  else push_chain t ~tid s ~first:node ~last:node

(* Drain stripe [s]'s return buffer into this thread's cache; anything
   beyond the cache's space is re-chained onto the stripe head. Safe
   for any thread (slots are swapped out atomically). *)
let drain_rbuf t ~tid s =
  let c = t.caches.(tid) in
  let over_first = ref Value.null and over_last = ref Value.null in
  for i = 0 to t.rbuf_size - 1 do
    let v = Hot.swap t.hot (hw_rbuf t s i) 0 in
    if v <> 0 then
      if c.len < Array.length c.slots then begin
        c.slots.(c.len) <- v;
        c.len <- c.len + 1
      end
      else begin
        Arena.write_mm_next t.arena v !over_first;
        if Value.is_null !over_first then over_last := v;
        over_first := v
      end
  done;
  if not (Value.is_null !over_first) then
    push_chain t ~tid s ~first:!over_first ~last:!over_last

let fill_from_chain t ~tid chain n =
  let c = t.caches.(tid) in
  let p = ref chain in
  for _ = 1 to n do
    c.slots.(c.len) <- !p;
    c.len <- c.len + 1;
    p := Arena.read_mm_next t.arena !p
  done

(* One full refill pass: own return buffer, then the home stripe, then
   a round-robin steal over the other stripes (head first, then their
   return buffers). Returns [true] when the cache is non-empty. *)
let refill t ~tid =
  C.incr t.ctr ~tid Cache_refill;
  let c = t.caches.(tid) in
  let home = home_of t ~tid in
  drain_rbuf t ~tid home;
  if c.len = 0 then begin
    let chain, n = pop_chain t ~tid home ~max:t.batch in
    if n > 0 then fill_from_chain t ~tid chain n
  end;
  let k = ref 1 in
  while c.len = 0 && !k < t.shards do
    let s = (home + !k) mod t.shards in
    C.incr t.ctr ~tid Steal;
    let chain, n = pop_chain t ~tid s ~max:t.batch in
    if n > 0 then fill_from_chain t ~tid chain n
    else drain_rbuf t ~tid s;
    incr k
  done;
  c.len > 0

let alloc t ~tid =
  let c = t.caches.(tid) in
  if c.len > 0 || refill t ~tid then begin
    c.len <- c.len - 1;
    Some c.slots.(c.len)
  end
  else None

let free t ~tid node =
  let c = t.caches.(tid) in
  c.slots.(c.len) <- node;
  c.len <- c.len + 1;
  if c.len = Array.length c.slots then begin
    C.incr t.ctr ~tid Cache_spill;
    let home = home_of t ~tid in
    let hfirst = ref Value.null and hlast = ref Value.null in
    for _ = 1 to t.batch do
      c.len <- c.len - 1;
      let p = c.slots.(c.len) in
      let s = stripe_of t p in
      if s = home then begin
        Arena.write_mm_next t.arena p !hfirst;
        if Value.is_null !hfirst then hlast := p;
        hfirst := p
      end
      else push_remote t ~tid s p
    done;
    if not (Value.is_null !hfirst) then
      push_chain t ~tid home ~first:!hfirst ~last:!hlast
  end

(* Recovery --------------------------------------------------------- *)

(* Drain declared-dead threads' private caches back onto the shared
   stripes. The caches are unsynchronised single-owner state, so this
   is only sound once the owners are permanently stopped (the
   quiescent-survivors declaration contract of [Mm_intf.declare_dead]);
   the CAS guard serialises concurrent adopters — the loser returns 0
   and simply retries its allocation, since the winner's pushes wake
   the store's parkers anyway. Returns the number of nodes returned to
   circulation. *)
let adopt t ~tid ~dead =
  if not (Atomic.compare_and_set t.adopt_lock 0 1) then 0
  else begin
    let n = ref 0 in
    List.iter
      (fun id ->
        if id >= 0 && id < t.threads && id <> tid then begin
          let c = t.caches.(id) in
          while c.len > 0 do
            c.len <- c.len - 1;
            let p = c.slots.(c.len) in
            C.incr t.ctr ~tid Recovery_adopt;
            incr n;
            push_chain t ~tid (stripe_of t p) ~first:p ~last:p
          done
        end)
      dead;
    Atomic.set t.adopt_lock 0;
    !n
  end

(* Parking --------------------------------------------------------- *)

(* Any node visible outside a thread cache: a non-null stripe head or
   an occupied return slot. *)
let any_visible t =
  let rec heads s =
    s < t.shards
    && ((not (Value.is_null (Value.stamped_ptr (Hot.read t.hot (hw_head s)))))
       || heads (s + 1))
  in
  let rec bufs s i =
    s < t.shards
    && (if i < t.rbuf_size then
          Hot.read t.hot (hw_rbuf t s i) <> 0 || bufs s (i + 1)
        else bufs (s + 1) 0)
  in
  heads 0 || bufs 0 0

let wait_free t ~tid ~timeout_ns =
  let gen = Park.prepare t.park in
  if any_visible t then Park.cancel t.park
  else begin
    C.incr t.ctr ~tid Park_wait;
    Park.park t.park ~gen ~timeout_ns
  end

let waiters t = Park.waiters t.park

(* Quiescent inspection. *)

let cached t ~tid = t.caches.(tid).len

let buffered t =
  let n = ref 0 in
  for s = 0 to t.shards - 1 do
    for i = 0 to t.rbuf_size - 1 do
      if Hot.read t.hot (hw_rbuf t s i) <> 0 then incr n
    done
  done;
  !n

let iter_free t ~violation ~f =
  for s = 0 to t.shards - 1 do
    let rec walk p steps =
      if steps > t.capacity then
        violation (Printf.sprintf "cycle in stripe %d" s)
      else if not (Value.is_null p) then begin
        f p;
        walk (Arena.read_mm_next t.arena p) (steps + 1)
      end
    in
    walk (Value.stamped_ptr (Hot.read t.hot (hw_head s))) 0
  done;
  for s = 0 to t.shards - 1 do
    for i = 0 to t.rbuf_size - 1 do
      let v = Hot.read t.hot (hw_rbuf t s i) in
      if v <> 0 then f v
    done
  done;
  Array.iter
    (fun c ->
      for i = 0 to c.len - 1 do
        f c.slots.(i)
      done)
    t.caches
