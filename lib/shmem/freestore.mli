(** Sharded free store for the [Native] backend: per-domain stripes of
    the node range behind padded stamped heads, fronted by
    unsynchronised per-thread caches that grab/return nodes [batch] at
    a time, with remote frees routed through per-stripe MPSC return
    buffers. The managers keep their reference-count conventions
    (free RC nodes carry [mm_ref = 1] throughout); this module only
    moves node pointers. Never constructed under the [Sim] backend —
    its schedules must stay byte-for-byte identical. *)

type t

val create :
  backend:Atomics.Backend.t ->
  ?rep:Atomics.Backend.rep ->
  arena:Arena.t ->
  counters:Atomics.Counters.t ->
  shards:int ->
  batch:int ->
  threads:int ->
  unit ->
  t
(** Builds the store over [arena] with every node free: the handle
    range is split into [shards] contiguous stripes and chained. The
    caller's prior free-list initialisation of [mm_next] is
    overwritten; [mm_ref] words are untouched. [rep] (default
    {!Atomics.Backend.default_rep}) picks where the stripe heads,
    return slots and cursors live: padded boxed cells, or one raw
    {!Atomics.Hot} word block. Counter events
    ([Cache_refill]/[Cache_spill]/[Free_remote]/[Steal], plus
    [Alloc_retry]/[Free_retry] on head-CAS failures and
    [Park_wait]/[Park_wake] around {!wait_free}) are recorded in
    [counters]. *)

val shards : t -> int
val batch : t -> int

val alloc : t -> tid:int -> Value.ptr option
(** Pop from the cache, refilling it with one full pass (own return
    buffer, home stripe, round-robin steal) when empty. [None] when
    the pass found nothing — the caller owns the out-of-memory retry
    policy, since nodes may still be parked in other threads' caches. *)

val free : t -> tid:int -> Value.ptr -> unit
(** Return a privately-owned node (its [mm_next] is overwritten). On
    cache overflow, [batch] nodes are spilled: home nodes as one
    chain-push, others through their stripe's return buffer. *)

val adopt : t -> tid:int -> dead:int list -> int
(** Recovery: drain the [dead] threads' private caches back onto the
    shared stripes, returning the number of nodes recirculated (each
    also counts a [Recovery_adopt] event). Only sound once the owners
    are permanently stopped ({!Mm_intf.declare_dead} contract): the
    caches are unsynchronised. Concurrent adopters are serialised by a
    CAS guard — the loser returns 0 immediately. The winner's stripe
    pushes wake any {!wait_free} parkers. *)

(** {1 Parking} *)

val wait_free : t -> tid:int -> timeout_ns:int -> unit
(** Park until some thread publishes free nodes (a stripe-head push or
    return-slot install — the wakes ride on those operations), the
    timeout elapses, or nodes were already visible (returns at once).
    Callers must re-poll {!alloc} on return: nodes parked in other
    threads' caches are invisible and generate no wake, so use a
    finite timeout. [alloc] itself never blocks. *)

val waiters : t -> int
(** Threads currently registered on the store's parking spot
    (approximate under concurrency; for tests). *)

(** {1 Quiescent inspection} *)

val cached : t -> tid:int -> int
(** Nodes currently parked in [tid]'s cache. *)

val buffered : t -> int
(** Nodes currently parked in return-buffer slots. *)

val iter_free : t -> violation:(string -> unit) -> f:(Value.ptr -> unit) -> unit
(** Apply [f] to every node in the store — stripe chains, return
    buffers, caches. Cycles are reported through [violation];
    duplicate detection is the caller's job. Quiescent only. *)
