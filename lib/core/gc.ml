[@@@wfrc.progress "wait_free"] (* static progress contract; checked by `wfrc_lint --pass progress` *)

(* The paper's algorithms, lines quoted by label:

   - Figure 4: DeRefLink (D1–D10), ReleaseRef (R1–R4), HelpDeRef
     (H1–H8), over the announcement pool in [Ann].
   - Figure 5: AllocNode (A1–A18), FreeNode (F1–F10), FixRef, over
     [2N] free-lists, [currentFreeList], [helpCurrent] and
     [annAlloc[N]].

   ReleaseRef, FreeNode and AllocNode are mutually entangled (R4 calls
   FreeNode, A18 calls ReleaseRef), so they live in one module; the
   user-facing assembly conforming to [Mm_intf.S] is in [Wfrc].

   One deliberate deviation from the pseudocode, documented in
   DESIGN.md §6: on the F3 donation path, FreeNode inflates the node's
   reference count by 2 before the CAS into [annAlloc] (and deflates on
   failure). Without this, a FreeNode-donated node reaches the A4
   recipient with mm_ref = 1, and A4's FixRef(-1) would hand the user a
   node with zero references, while the A12 path hands out mm_ref = 2.
   The inflation makes both donation paths deliver mm_ref = 3, so A4 is
   uniform — this matches the semantics (1) of Definition 1 and the
   reference-count reasoning in Lemma 4, which only considers the A12
   path. The node is exclusively owned at F3 (it was just claimed by
   R2's CAS), so the transient inflation is unobservable.

   Hot-path discipline: the operations below allocate nothing on the
   OCaml heap — the scheme's globals live on one {!Atomics.Hot}
   vector, the R3 recursion runs on a reusable per-thread int-array
   stack, and AllocNode's loop state travels as immediate arguments.
   Per-op allocation is what used to drag multi-domain Native runs
   into minor-GC stop-the-world barriers; the word-for-word order of
   shared-memory operations is unchanged, so Sim schedules (and the
   seeded experiment outputs) are bit-identical to the list-based
   code. *)

module B = Atomics.Backend
module C = Atomics.Counters
module Hot = Atomics.Hot
module Words = Atomics.Words
module Value = Shmem.Value
module Layout = Shmem.Layout
module Arena = Shmem.Arena

(* Ablation knobs (experiments E-A2/E-A3; the defaults are the paper's
   algorithm):
   - [placement]: [`Paper] follows F5–F6 (pick the free-list the
     allocator is not near); [`Own_index] always uses freeList[tid].
   - [help_alloc]: [false] skips A11–A15 and F3's donation, degrading
     AllocNode from wait-free to lock-free. *)
type placement = [ `Paper | `Own_index ]

(* Domain-local allocation cache for the sharded Native configuration
   (Mm_intf.sharded): the paper's 2N free-lists already play the role
   of stripes, so WFRC adopts only the cache layer. Unsynchronised:
   each thread touches exactly its own entry. *)
type tcache = { cslots : int array; mutable clen : int }

(* Cross-store fusion context ([Unboxed] only): the raw arena and
   hot-vector blocks plus the geometry arrays the fused stubs need
   ({!Atomics.Words.take_fix} / [free_donate]). *)
type fused = {
  aw : Words.t; (* the arena's raw block *)
  hw : Words.t; (* the hot vector's raw block *)
  node_geom : int array; (* [| nodes_base; node_stride |] *)
  free_geom : int array; (* [| help_word; ann_base; slot_stride; n |] *)
}

type t = {
  cfg : Mm_intf.config;
  backend : B.t;
  arena : Arena.t;
  ann : Ann.t;
  ctr : C.t;
  n : int; (* NR_THREADS *)
  hot : Hot.t;
  (* one padded slot per scheme global — see the hw_* map below *)
  fused : fused option;
  (* cross-store fusion context when arena and hot vector are both
     unboxed — see the [fused] type above *)
  oom_scan_limit : int;
  placement : placement;
  help_alloc : bool;
  caches : tcache array option; (* per-thread caches when sharded *)
  batch : int;
  defer : Rcbuf.t option;
  (* per-thread rc-decrement buffers ([cfg.defer] > 0): the
     deferred-rc variant parks ReleaseRef decrements locally and only
     touches the shared mm_ref words at flush time (buffer-full, the
     A7 OOM path, [declare_dead], recovery, or quiescent inspection).
     [None] — every eager scheme — keeps the legacy code byte-exact. *)
  dead : bool array;
  (* tids declared permanently stopped (Mm_intf.declare_dead); set by
     the harness/supervisor, consulted by [recover] and the A7
     bounded-wait OOM path *)
  mutable recovering : bool;
  (* donation (F1-F3) suppressed while a recovery pass runs, so
     reclaimed nodes land in allocator custody, not a live annAlloc *)
  adopt_lock : int Atomic.t;
  (* single-adopter guard for dead-cache draining under pressure *)
  work : int array array;
  (* per-thread R3 work stacks (reusable, grown on demand) *)
  scratch : int array array;
      (* per-thread link-collect buffers (num_links wide) for
         [Arena.release_collect] *)
}

(* Hot-vector slot map: [currentFreeList] at 0, [helpCurrent] at 1,
   [freeList[i]] at [2+i] (i in 0..2N-1), [annAlloc[id]] at
   [2+2N+id]. *)
let hw_current = 0
let hw_help = 1
let hw_free i = 2 + i
let hw_ann t id = 2 + (2 * t.n) + id

let arena t = t.arena
let counters t = t.ctr
let config t = t.cfg
let announcements t = t.ann

let create ?(placement = `Paper) ?(help_alloc = true) (cfg : Mm_intf.config) =
  let backend = cfg.backend in
  let layout =
    Layout.create ~num_links:cfg.num_links ~num_data:cfg.num_data
  in
  let arena =
    Arena.create ~backend ~rep:cfg.rep ~layout ~capacity:cfg.capacity
      ~num_roots:cfg.num_roots ()
  in
  (* Initial free state: all nodes chained into freeList[0], each with
     mm_ref = 1 (paper: "Initially 1", interpreted as in Valois — odd
     means claimed-by-allocator, count 0). *)
  for h = 1 to cfg.capacity do
    let p = Value.of_handle h in
    Arena.write_mm_next arena p
      (if h < cfg.capacity then Value.of_handle (h + 1) else Value.null);
    Arena.write arena (Arena.mm_ref_addr arena p) 1
  done;
  let n = cfg.threads in
  (* The scheme's globals are all FAA/CAS rendezvous points for every
     thread, so each gets its own cache-line pair on the hot vector. *)
  let hot =
    Hot.create ~backend ~rep:cfg.rep
      (2 + (3 * n))
      ~init:(fun i -> if i = hw_free 0 then Value.of_handle 1 else 0)
  in
  let fused =
    match (Arena.raw arena, Hot.raw hot) with
    | Some aw, Some hw ->
        Some
          {
            aw;
            hw;
            node_geom = Arena.node_geom arena;
            free_geom =
              [|
                Hot.word_of_slot hw_help;
                Hot.word_of_slot (2 + (2 * n));
                Hot.word_of_slot 1;
                n;
              |];
          }
    | _ -> None
  in
  {
    cfg;
    backend;
    arena;
    ann = Ann.create ~backend ~rep:cfg.rep ~threads:n ();
    ctr = C.create ~backend ~threads:n ();
    n;
    hot;
    fused;
    oom_scan_limit = (16 * n) + 16;
    placement;
    help_alloc;
    caches =
      (if Mm_intf.sharded cfg then
         Some
           (Array.init n (fun _ ->
                { cslots = Array.make (2 * cfg.batch) Value.null; clen = 0 }))
       else None);
    batch = cfg.batch;
    defer =
      (if cfg.defer > 0 then Some (Rcbuf.create ~threads:n ~cap:cfg.defer)
       else None);
    dead = Array.make n false;
    recovering = false;
    adopt_lock = Atomic.make 0;
    work =
      Array.init n (fun _ ->
          Array.make (max 64 (4 * (cfg.num_links + 1))) 0);
    scratch = Array.init n (fun _ -> Array.make (max 1 cfg.num_links) 0);
  }

(* Push onto thread [tid]'s work stack, growing it when a reclamation
   cascade outruns the current capacity (rare; the stack is reused
   across calls, so steady state never allocates). *)
let work_push t ~tid sp v =
  let stack = t.work.(tid) in
  let stack =
    if sp < Array.length stack then stack
    else begin
      let bigger = Array.make (2 * Array.length stack) 0 in
      Array.blit stack 0 bigger 0 (Array.length stack);
      t.work.(tid) <- bigger;
      bigger
    end
  in
  stack.(sp) <- v;
  sp + 1

(* ---------------- ReleaseRef (R1–R4) + FreeNode (F1–F10) ----------- *)

(* The R3 recursion ("recursively call ReleaseRef for all held
   references") runs as an explicit work stack so cascaded reclamation
   of long chains uses constant space and allocates nothing. The pop
   order matches the historical list-based worklist exactly (links
   high-to-low, then the remaining pending nodes), so the
   shared-memory op sequence — and with it every Sim schedule — is
   unchanged. *)
let rec release t ~tid node =
  C.incr t.ctr ~tid Release;
  match t.defer with
  | Some b when not t.recovering ->
      (* Deferred variant: R1 becomes a local append — the shared
         mm_ref keeps an over-approximation (2 per buffered entry), so
         the R2 claim point can only be postponed, never forged. The
         engine below stays eager for flushes, cascades and the
         recovery callbacks. *)
      C.incr t.ctr ~tid Rc_defer;
      if Rcbuf.defer_release b ~tid (Value.unmark node) then flush t ~tid
  | _ -> release_work t ~tid (work_push t ~tid 0 (Value.unmark node))

(* Flush one thread's rc buffer through the R1–R4 engine, oldest entry
   first. The [Unboxed] arm batches every R1–R2 into one stub crossing
   ({!Atomics.Words.rc_flush}) and finishes R3/FreeNode here; the
   boxed/Sim arm issues the identical per-word sequence through
   [release_collect]. Claim outcomes and free-push order agree between
   the arms (all of a flush's decrements land before any claimed
   node's cascade can re-examine a count), so traces and counter
   totals are backend-independent. *)
and flush t ~tid =
  match t.defer with
  | Some b when Rcbuf.len b ~tid > 0 -> (
      C.incr t.ctr ~tid Rc_flush;
      let row = Rcbuf.row b ~tid in
      let n = Rcbuf.clear b ~tid in
      match t.fused with
      | Some f ->
          let claimed = Words.rc_flush f.aw ~nodes:row ~n ~geom:f.node_geom in
          flush_claimed t ~tid ~row ~claimed 0
      | None -> flush_seq t ~tid ~row ~n 0)
  | _ -> ()

and flush_seq t ~tid ~row ~n i =
  if i < n then begin
    release_work t ~tid (work_push t ~tid 0 row.(i));
    flush_seq t ~tid ~row ~n (i + 1)
  end

(* Finish the claimed nodes of a batched flush: R3's collect-and-clear
   (mirroring [release_collect]'s link order), then R4's FreeNode and
   the reclamation cascade — the same per-node steps [release_work]
   runs on its claimed branch. *)
and flush_claimed t ~tid ~row ~claimed i =
  if i < claimed then begin
    let node = row.(i) in
    let nl = t.cfg.num_links in
    let collected = ref 0 in
    for j = 0 to nl - 1 do
      let v = Arena.read_clear_link t.arena node j in
      if not (Value.is_null v) then begin
        t.scratch.(tid).(!collected) <- v;
        incr collected
      end
    done;
    let sp = push_collected t ~tid ~k:0 ~collected:!collected 0 in
    C.incr t.ctr ~tid Node_reclaimed;
    free_node t ~tid node;
    release_work t ~tid sp;
    flush_claimed t ~tid ~row ~claimed (i + 1)
  end

and release_work t ~tid sp =
  if sp > 0 then begin
    let sp = sp - 1 in
    let node = t.work.(tid).(sp) in
    (* R1-R3: release and, when we claimed the node, collect-and-clear
       the references its link slots held — one crossing under the
       unboxed rep. *)
    let collected = Arena.release_collect t.arena node ~out:t.scratch.(tid) in
    if collected >= 0 then begin
      let sp = push_collected t ~tid ~k:0 ~collected sp in
      C.incr t.ctr ~tid Node_reclaimed;
      free_node t ~tid node;                                        (* R4 *)
      release_work t ~tid sp
    end
    else release_work t ~tid sp
  end
[@@wfrc.bounded
  "work-stack cascade: each iteration pops one claimed node and pushes only \
   that node's collected link targets, so the stack drains after at most \
   one entry per transitively reclaimed node (Lemma 7's bounded release \
   recursion, exercised to 20k nodes in t_core)"]

and push_collected t ~tid ~k ~collected sp =
  if k >= collected then sp
  else
    push_collected t ~tid ~k:(k + 1) ~collected
      (work_push t ~tid sp (Value.unmark t.scratch.(tid).(k)))

and free_node t ~tid node =
  (* Pre-condition: mm_ref = 1 (claimed), as established by R2 or by
     the initial chaining. From here the node is allocator custody —
     donation (F3), cache parking and the F4–F10 pushes only ever
     touch its mm_ref/mm_next words — so this is the lifecycle [Free]
     point for the reclamation oracle. *)
  Mm_intf.Events.emit ~tid node Mm_intf.Events.Free;
  C.incr t.ctr ~tid Free;
  let n = t.n in
  let donated =
    match t.fused with
    | Some f when t.help_alloc && not t.recovering ->
        (* F1-F3 in one crossing, with the donation-count correction
           (see module comment). *)
        Words.free_donate f.hw ~arena:f.aw
          ~ref_addr:(Arena.mm_ref_addr t.arena node)
          ~node ~geom:f.free_geom
    | _ ->
        let help_id = Hot.bump_mod t.hot hw_help n in            (* F1–F2 *)
        (* F3 with the donation-count correction (see module
           comment). *)
        t.help_alloc
        && (not t.recovering)
        && begin
             Arena.faa_mm_ref t.arena node 2;
             if Hot.cas t.hot (hw_ann t help_id) ~old:Value.null ~nw:node
             then true
             else begin
               Arena.faa_mm_ref t.arena node (-2);
               false
             end
           end
  in
  if donated then C.incr t.ctr ~tid Free_gave_help
  else
    match t.caches with
    | Some caches ->
        (* Sharded config: park the claimed node (mm_ref stays 1) in
           the domain-local cache; on overflow, spill [batch] nodes
           through the ordinary F4–F10 pushes. Donation was already
           attempted above, so the helping channel that makes
           AllocNode wait-free is untouched by the caching. *)
        let c = caches.(tid) in
        c.cslots.(c.clen) <- node;
        c.clen <- c.clen + 1;
        if c.clen = Array.length c.cslots then begin
          C.incr t.ctr ~tid Cache_spill;
          for _ = 1 to t.batch do
            c.clen <- c.clen - 1;
            free_push t ~tid c.cslots.(c.clen)
          done
        end
    | None -> free_push t ~tid node

(* F4–F10: push a claimed node onto one of the 2N free-lists. *)
and free_push t ~tid node =
  let n = t.n in
  let current = Hot.read t.hot hw_current in                        (* F4 *)
  let index =                                                       (* F5 *)
    match t.placement with
    | `Own_index -> tid (* ablation E-A2 *)
    | `Paper ->
        if current <= tid || current > n + tid then n + tid         (* F6 *)
        else tid
  in
  let rec push index =                                              (* F7 *)
    let head = Hot.read t.hot (hw_free index) in
    Arena.write_mm_next t.arena node head;                          (* F8 *)
    if not (Hot.cas t.hot (hw_free index) ~old:head ~nw:node) then begin
                                                                    (* F9 *)
      C.incr t.ctr ~tid Free_retry;
      push ((index + n) mod (2 * n))                                (* F10 *)
    end
  [@@wfrc.bounded
    "F9-F10 two-list placement: a push CAS on freeList[i] only fails to an \
     AllocNode taking the whole list, and F5-F6 placed us on a list the \
     current allocator is not near, so the hop alternates between the two \
     candidate lists at most a bounded number of times (Lemma 10)"]
  in
  push index

(* Bounded-wait OOM degradation (sharded config only): before giving
   up, drain any declared-dead peers' domain-local caches back onto
   the shared free-lists — those nodes are invisible to A5/A6 scans
   and their owners will never return them. Serialised by a CAS guard;
   the loser reports 0 and falls through to backpressure. *)
let adopt_dead_caches t ~tid =
  match t.caches with
  | None -> 0
  | Some caches ->
      if not (Atomic.compare_and_set t.adopt_lock 0 1) then 0
      else begin
        let n = ref 0 in
        for id = 0 to t.n - 1 do
          if t.dead.(id) && id <> tid then begin
            let c = caches.(id) in
            while c.clen > 0 do
              c.clen <- c.clen - 1;
              C.incr t.ctr ~tid Recovery_adopt;
              incr n;
              free_push t ~tid c.cslots.(c.clen)
            done
          end
        done;
        Atomic.set t.adopt_lock 0;
        !n
      end

(* ---------------- AllocNode (A1–A18) ------------------------------- *)

(* The A3 loop, with its state — [helped] (A1), the helpee read at A2,
   and the consecutive-empty-scan count — as immediate arguments. The
   shared-memory op order is exactly the historical while-loop's. *)
let rec alloc_loop t ~tid ~help_id ~helped ~empty_scans =
  let taken =                                                       (* A4 *)
    match t.fused with
    | Some f ->
        (* A4 + FixRef(-1) in one crossing. *)
        Words.take_fix f.hw (Hot.word_of_slot (hw_ann t tid)) ~arena:f.aw
          ~geom:f.node_geom
    | None ->
        let v = Hot.take t.hot (hw_ann t tid) in
        if not (Value.is_null v) then
          Arena.faa_mm_ref t.arena v (-1);          (* FixRef(node, -1) *)
        v
  in
  if not (Value.is_null taken) then begin
    C.incr t.ctr ~tid Alloc_helped;
    Mm_intf.Events.emit ~tid taken Mm_intf.Events.Alloc;
    taken
  end
  else
    match t.caches with
    | Some caches when caches.(tid).clen > 0 ->
        (* Sharded config: serve from the domain-local cache with no
           shared-word traffic at all. The cached node carries
           mm_ref = 1; FAA (not a store) it to 2, because a stale D5
           may still land a transient +2/-2 pair on it. Donations
           (A4 above) keep priority so helped allocations are
           collected promptly. *)
        let c = caches.(tid) in
        c.clen <- c.clen - 1;
        let node = c.cslots.(c.clen) in
        Arena.faa_mm_ref t.arena node 1;
        Mm_intf.Events.emit ~tid node Mm_intf.Events.Alloc;
        node
    | _ ->
        (* Deferred A2 (unboxed native only; see [alloc]): the first
           pass that can use the helpee reads it here, then the choice
           stays fixed for the call, as the pseudocode prescribes. *)
        let help_id =
          if help_id >= 0 then help_id else Hot.read t.hot hw_help  (* A2 *)
        in
        let current = Hot.read t.hot hw_current in                  (* A5 *)
        let node = Hot.read t.hot (hw_free current) in              (* A6 *)
        if Value.is_null node then begin                            (* A7 *)
          ignore
            (Hot.cas t.hot hw_current ~old:current
               ~nw:((current + 1) mod (2 * t.n)));
          if empty_scans + 1 > t.oom_scan_limit then begin
            (* Exhausted every list [oom_scan_limit] times over. The
               deferred variant first flushes its own rc buffer —
               pending decrements may be holding reclaimable nodes
               hostage — and rescans; the buffer is empty after one
               flush, so this retries at most once per refill. Then
               the legacy/Sim config keeps the hard stop; the sharded
               config first adopts dead peers' caches, then surfaces
               typed backpressure instead of an unbounded spin. *)
            match t.defer with
            | Some b when Rcbuf.len b ~tid > 0 ->
                flush t ~tid;
                C.incr t.ctr ~tid Alloc_retry;
                alloc_loop t ~tid ~help_id ~helped ~empty_scans:0
            | _ -> (
            match t.caches with
            | Some _ when adopt_dead_caches t ~tid > 0 ->
                C.incr t.ctr ~tid Alloc_retry;
                alloc_loop t ~tid ~help_id ~helped ~empty_scans:0
            | Some _ ->
                C.incr t.ctr ~tid Oom_backpressure;
                raise
                  (Mm_intf.Out_of_nodes
                     { retries = empty_scans + 1; waits = 0 })
            | None -> raise Mm_intf.Out_of_memory)
          end
          else begin
            C.incr t.ctr ~tid Alloc_retry;
            alloc_loop t ~tid ~help_id ~helped ~empty_scans:(empty_scans + 1)
          end
        end
        else begin
          Arena.faa_mm_ref t.arena node 2;                          (* A9 *)
          let next = Arena.read_mm_next t.arena node in
          if Hot.cas t.hot (hw_free current) ~old:node ~nw:next then begin
                                                                   (* A10 *)
            let gave =
              t.help_alloc
              && (not helped)
              && Hot.read t.hot (hw_ann t help_id) = Value.null     (* A11 *)
              && Hot.cas t.hot (hw_ann t help_id) ~old:Value.null ~nw:node
                                                                   (* A12 *)
            in
            if gave then begin
                                                                   (* A13 *)
              ignore
                (Hot.cas t.hot hw_help ~old:help_id
                   ~nw:((help_id + 1) mod t.n));                   (* A14 *)
              C.incr t.ctr ~tid Alloc_gave_help;
              C.incr t.ctr ~tid Alloc_retry;                       (* A15 *)
              alloc_loop t ~tid ~help_id ~helped:true ~empty_scans:0
            end
            else begin
              ignore
                (Hot.cas t.hot hw_help ~old:help_id
                   ~nw:((help_id + 1) mod t.n));                   (* A16 *)
              Arena.faa_mm_ref t.arena node (-1);   (* A17: FixRef(-1) *)
              Mm_intf.Events.emit ~tid node Mm_intf.Events.Alloc;
              node
            end
          end
          else begin
            release t ~tid node;                                   (* A18 *)
            C.incr t.ctr ~tid Alloc_retry;
            alloc_loop t ~tid ~help_id ~helped ~empty_scans:0
          end
        end

let alloc t ~tid =
  C.incr t.ctr ~tid Alloc;
  match t.fused with
  | None ->
      let help_id = Hot.read t.hot hw_help in                       (* A2 *)
      alloc_loop t ~tid ~help_id ~helped:false ~empty_scans:0  (* A1 / A3 *)
  | Some _ ->
      (* The A2 helpee read is deferred into the loop (sentinel -1):
         an A4 hit never consults it, and under the unboxed rep that
         read is a stub crossing on the hottest path. The choice is
         still made at most once per call. *)
      alloc_loop t ~tid ~help_id:(-1) ~helped:false ~empty_scans:0

(* ---------------- DeRefLink (D1–D10) / HelpDeRef (H1–H8) ----------- *)

let rec deref t ~tid link =
  C.incr t.ctr ~tid Deref;
  let slot = Ann.choose_slot t.ann ~tid in                          (* D1 *)
  Ann.set_index t.ann ~tid slot;                                    (* D2 *)
  Ann.announce t.ann ~tid ~slot link;                               (* D3 *)
  let node = Arena.read t.arena link in                             (* D4 *)
  (* D5, with increment sponging under the deferred variant: a +2
     whose target has a pending decrement in the CALLER'S OWN buffer
     annihilates that entry locally instead of touching the shared
     word — sound because the pending entry itself proves the shared
     count over-approximates by 2, so the node cannot have been
     claimed. A miss falls through to the eager FAA. *)
  (if not (Value.is_null node) then
     match t.defer with
     | Some b when Rcbuf.cancel b ~tid (Value.unmark node) ->
         C.incr t.ctr ~tid Rc_defer
     | _ -> Arena.faa_mm_ref t.arena node 2);                       (* D5 *)
  let n1 = Ann.retract t.ann ~tid ~slot in                          (* D6 *)
  if n1 <> Value.enc_link link then begin                           (* D7 *)
    C.incr t.ctr ~tid Deref_helped;
    if not (Value.is_null node) then release t ~tid node;           (* D8 *)
    n1                                                              (* D9 *)
  end
  else node                                                        (* D10 *)

(* The H1 row loop. Under [Sim] it is the historical per-row walk —
   one H2 read and one H3 read per row, each crossing its scheduling
   point, byte-for-byte. Under [Native] the H2+H3 sweep is batched
   through {!Ann.scan_announced} (one stub call per run of
   non-matching rows under the unboxed rep); a hit is re-read (H2/H3
   again) before helping, which the protocol requires anyway — the
   announcement may have moved. [Help_scan] accounting is kept
   row-exact: every call still adds exactly [n] regardless of
   batching. *)
and help_deref t ~tid link =
  match t.backend with
  | B.Sim ->
      for id = 0 to t.n - 1 do                                      (* H1 *)
        C.incr t.ctr ~tid Help_scan;
        let slot = Ann.read_index t.ann ~id in                      (* H2 *)
        if Ann.read_slot t.ann ~id ~slot = Value.enc_link link then
          help_one t ~tid link ~id ~slot                            (* H3 *)
      done
  | B.Native -> help_scan_from t ~tid link 0

and help_scan_from t ~tid link from =
  if from < t.n then begin
    let id = Ann.scan_announced t.ann ~from (Value.enc_link link) in
    if id < 0 then C.add t.ctr ~tid Help_scan (t.n - from)
    else begin
      C.add t.ctr ~tid Help_scan (id - from + 1);
      let slot = Ann.read_index t.ann ~id in                        (* H2 *)
      if Ann.read_slot t.ann ~id ~slot = Value.enc_link link then
        help_one t ~tid link ~id ~slot;                             (* H3 *)
      help_scan_from t ~tid link (id + 1)
    end
  end
[@@wfrc.bounded
  "scan cursor: Ann.scan_announced returns a row id >= from (or -1), so \
   the recursive call at id+1 strictly advances the cursor toward the H1 \
   bound t.n"]

and help_one t ~tid link ~id ~slot =
  Ann.busy_incr t.ann ~id ~slot;                                    (* H4 *)
  let node = deref t ~tid link in                                   (* H5 *)
  if Ann.answer_cas t.ann ~id ~slot ~link node then                 (* H6 *)
    C.incr t.ctr ~tid Help_answered
  else begin
    C.incr t.ctr ~tid Help_refused;
    if not (Value.is_null node) then release t ~tid node            (* H7 *)
  end;
  Ann.busy_decr t.ann ~id ~slot                                     (* H8 *)

(* FixRef of Figure 5, exposed for reference copying (§3.2 prescribes
   FixRef(node, 2) when duplicating a shared pointer). *)
let fix_ref t node fix =
  if not (Value.is_null node) then Arena.faa_mm_ref t.arena node fix;
  node

(* ---------------- Quiescent inspection ----------------------------- *)

(* Walk every free-list chain and [annAlloc], returning the set of
   free node handles. Only meaningful with no concurrent operations.
   Checks chain sanity as it goes. *)
let free_set t =
  (* Quiescence is a flush trigger: drain every thread's rc buffer so
     the chains below reflect the true counts (the walk expects
     mm_ref = 1 on every free node, which pending decrements would
     otherwise postpone). Quiescent-only, like the walk itself. *)
  (match t.defer with
  | Some _ ->
      for id = 0 to t.n - 1 do
        flush t ~tid:id
      done
  | None -> ());
  let cap = t.cfg.capacity in
  let seen = Array.make (cap + 1) false in
  let record ~where p ~expect_ref =
    let h = Value.handle p in
    if seen.(h) then
      failwith (Printf.sprintf "Gc: node #%d reachable twice (%s)" h where);
    seen.(h) <- true;
    let r = Arena.read_mm_ref t.arena p in
    if r <> expect_ref then
      failwith
        (Printf.sprintf "Gc: free node #%d has mm_ref=%d, expected %d (%s)" h
           r expect_ref where)
  in
  for i = 0 to (2 * t.n) - 1 do
    let where = Printf.sprintf "freeList[%d]" i in
    let rec walk p steps =
      if steps > cap then failwith ("Gc: cycle in " ^ where)
      else if not (Value.is_null p) then begin
        record ~where p ~expect_ref:1;
        walk (Arena.read_mm_next t.arena p) (steps + 1)
      end
    in
    walk (Hot.read t.hot (hw_free i)) 0
  done;
  for i = 0 to t.n - 1 do
    let p = Hot.read t.hot (hw_ann t i) in
    if not (Value.is_null p) then
      record ~where:(Printf.sprintf "annAlloc[%d]" i) p ~expect_ref:3
  done;
  (match t.caches with
  | Some caches ->
      Array.iteri
        (fun tid c ->
          for i = 0 to c.clen - 1 do
            record
              ~where:(Printf.sprintf "cache[%d]" tid)
              c.cslots.(i) ~expect_ref:1
          done)
        caches
  | None -> ());
  seen

let free_count t =
  let seen = free_set t in
  let c = ref 0 in
  Array.iter (fun b -> if b then incr c) seen;
  !c

(* Tolerant variant of [free_set] for the post-run auditor
   ([Mm_intf.custody]): never raises, reporting structural damage as
   violation strings instead. AnnAlloc donations are [pending] under
   the cell's owner (only that thread's A4 can collect them), and
   unretracted announcement answers are [pinned] by the announcing
   thread — both exactly what a crashed thread strands. *)
let custody t =
  let cap = t.cfg.capacity in
  let free = Array.make (cap + 1) false in
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  for i = 0 to (2 * t.n) - 1 do
    let rec walk p steps =
      if steps > cap then violation "cycle in freeList[%d]" i
      else if not (Value.is_null p) then begin
        let h = Value.handle p in
        if free.(h) then violation "node #%d on two free chains" h
        else begin
          free.(h) <- true;
          walk (Arena.read_mm_next t.arena p) (steps + 1)
        end
      end
    in
    walk (Hot.read t.hot (hw_free i)) 0
  done;
  let pending = ref [] in
  for i = 0 to t.n - 1 do
    let p = Hot.read t.hot (hw_ann t i) in
    if not (Value.is_null p) then begin
      let h = Value.handle p in
      if free.(h) then
        violation "annAlloc[%d] node #%d also on a free chain" i h
      else pending := (i, h) :: !pending
    end
  done;
  (* Domain-local caches count as [free] custody, like the free
     chains: the auditor's node partition must stay conservative when
     the run quiesced with populated caches. *)
  (match t.caches with
  | Some caches ->
      Array.iteri
        (fun tid c ->
          for i = 0 to c.clen - 1 do
            let h = Value.handle c.cslots.(i) in
            if free.(h) then
              violation "cache[%d] node #%d also on a free chain" tid h
            else free.(h) <- true
          done)
        caches
  | None -> ());
  let pinned =
    List.map (fun (tid, p) -> (tid, Value.handle p)) (Ann.answers t.ann)
  in
  (* In-buffer pending decrements are their own custody class — the
     snapshot must NOT flush (it is taken over crashed runs), so the
     auditor sees exactly what each thread still owes the shared
     counts. A buffered decrement on a free-chain node would mean the
     claim fired while a decrement was still owed: structural
     damage. *)
  let deferred =
    match t.defer with
    | None -> []
    | Some b ->
        List.map
          (fun (tid, p) ->
            let h = Value.handle p in
            if h >= 1 && h <= cap && free.(h) then
              violation "rc buffer[%d] entry #%d is on a free chain" tid h;
            (tid, h))
          (Rcbuf.entries b)
  in
  Mm_intf.
    {
      free;
      pending = !pending;
      pinned;
      deferred;
      violations = List.rev !violations;
    }

(* ---------------- Crash recovery (quiescent-survivors) ------------- *)

let declare_dead t ~tid =
  if tid < 0 || tid >= t.n then invalid_arg "Gc.declare_dead";
  t.dead.(tid) <- true;
  (* Adopt-and-drain the dead thread's rc buffer at once: its pending
     decrements can never flush themselves again, and leaving them
     parked would hold the over-approximated counts (and any
     reclaimable nodes behind them) hostage. The owner is stopped, so
     working on its row/stacks is single-writer; counters attribute
     the drain to the dead tid. Donation stays suppressed like in
     [recover]: the drained nodes must reach allocator custody
     (free-lists/caches), not sit pending in a live annAlloc cell. *)
  let was = t.recovering in
  t.recovering <- true;
  Fun.protect ~finally:(fun () -> t.recovering <- was) @@ fun () ->
  flush t ~tid

let dead t =
  let acc = ref [] in
  for id = t.n - 1 downto 0 do
    if t.dead.(id) then acc := id :: !acc
  done;
  !acc

(* Finish the free a crashed thread never ran: clear the links as R3
   would (releasing their targets), restore the claimed count, and
   hand the node back to allocator custody. Only called on nodes with
   zero inbound links ([Rc_anomaly]'s gate), so no later cascade can
   release the node a second time. *)
let revive t ~tid node =
  for i = 0 to t.cfg.num_links - 1 do
    let v = Arena.read_clear_link t.arena node i in
    if not (Value.is_null v) then release t ~tid (Value.unmark v)
  done;
  Arena.write t.arena (Arena.mm_ref_addr t.arena node) 1;
  C.incr t.ctr ~tid Node_reclaimed;
  free_node t ~tid node

let recover t ~tid =
  if not (Array.exists Fun.id t.dead) then Mm_intf.no_recovery
  else begin
    (* Donation (F1-F3/A11-A12 receipts) stays suppressed for the
       whole pass: recovered nodes must land on the free-lists or
       caches (allocator custody), not in a live thread's annAlloc
       cell where they would sit pending until its next A4. *)
    t.recovering <- true;
    Fun.protect ~finally:(fun () -> t.recovering <- false) @@ fun () ->
    let adopted = ref 0 and released = ref 0 and cleared = ref 0 in
    (* 0. Drain every rc buffer (dead rows were already drained by
       [declare_dead]; survivor rows must empty too) so the
       [Rc_anomaly] fixpoint below analyses true counts — a pending
       decrement would read as crash-held surplus on a live node. *)
    (match t.defer with
    | Some _ ->
        for id = 0 to t.n - 1 do
          flush t ~tid:id
        done
    | None -> ());
    (* 1. Dead announcement rows first: an un-retracted answer holds a
       reference acquired on the dead announcer's behalf (H6), which
       would read as surplus on a live node in step 2. *)
    for id = 0 to t.n - 1 do
      if t.dead.(id) then begin
        let slots, answers = Ann.clear_row t.ann ~tid:id in
        cleared := !cleared + slots;
        List.iter
          (fun p ->
            C.incr t.ctr ~tid Recovery_release;
            incr released;
            release t ~tid p)
          answers
      end
    done;
    cleared := !cleared + Ann.clear_busy t.ann;
    (* 2. Reference-count anomalies, to the fixpoint. *)
    let revived, drops =
      Mm_intf.Rc_anomaly.run ~arena:t.arena
        ~custody:(fun () -> custody t)
        ~release:(fun p ->
          C.incr t.ctr ~tid Recovery_release;
          release t ~tid p)
        ~revive:(fun p ->
          C.incr t.ctr ~tid Recovery_adopt;
          revive t ~tid p)
    in
    adopted := !adopted + revived;
    released := !released + drops;
    (* 3. Dead threads' parked custody last — nothing above can have
       donated into a dead annAlloc cell (suppressed), so one pass
       drains each for good. Donations carry the F3 inflation
       (mm_ref 3): restore the free-node claim of 1 before pushing. *)
    for id = 0 to t.n - 1 do
      if t.dead.(id) then begin
        let v = Hot.take t.hot (hw_ann t id) in
        if not (Value.is_null v) then begin
          Arena.faa_mm_ref t.arena v (-2);
          C.incr t.ctr ~tid Recovery_adopt;
          incr adopted;
          free_push t ~tid v
        end
      end
    done;
    adopted := !adopted + adopt_dead_caches t ~tid;
    { Mm_intf.adopted = !adopted; released = !released; cleared = !cleared }
  end

let validate t =
  Ann.validate t.ann;
  let seen = free_set t in
  (* Allocated nodes must carry an even (unclaimed) reference count. *)
  Arena.iter_nodes t.arena (fun p ->
      if not seen.(Value.handle p) then begin
        let r = Arena.read_mm_ref t.arena p in
        if r < 0 || r land 1 = 1 then
          failwith
            (Printf.sprintf "Gc: allocated node #%d has bad mm_ref=%d"
               (Value.handle p) r)
      end);
  let cur = Hot.read t.hot hw_current in
  if cur < 0 || cur >= 2 * t.n then
    failwith (Printf.sprintf "Gc: currentFreeList=%d out of range" cur);
  let hc = Hot.read t.hot hw_help in
  if hc < 0 || hc >= t.n then
    failwith (Printf.sprintf "Gc: helpCurrent=%d out of range" hc)
