(* The paper's algorithms, lines quoted by label:

   - Figure 4: DeRefLink (D1–D10), ReleaseRef (R1–R4), HelpDeRef
     (H1–H8), over the announcement pool in [Ann].
   - Figure 5: AllocNode (A1–A18), FreeNode (F1–F10), FixRef, over
     [2N] free-lists, [currentFreeList], [helpCurrent] and
     [annAlloc[N]].

   ReleaseRef, FreeNode and AllocNode are mutually entangled (R4 calls
   FreeNode, A18 calls ReleaseRef), so they live in one module; the
   user-facing assembly conforming to [Mm_intf.S] is in [Wfrc].

   One deliberate deviation from the pseudocode, documented in
   DESIGN.md §6: on the F3 donation path, FreeNode inflates the node's
   reference count by 2 before the CAS into [annAlloc] (and deflates on
   failure). Without this, a FreeNode-donated node reaches the A4
   recipient with mm_ref = 1, and A4's FixRef(-1) would hand the user a
   node with zero references, while the A12 path hands out mm_ref = 2.
   The inflation makes both donation paths deliver mm_ref = 3, so A4 is
   uniform — this matches the semantics (1) of Definition 1 and the
   reference-count reasoning in Lemma 4, which only considers the A12
   path. The node is exclusively owned at F3 (it was just claimed by
   R2's CAS), so the transient inflation is unobservable. *)

module P = Atomics.Primitives
module B = Atomics.Backend
module C = Atomics.Counters
module Value = Shmem.Value
module Layout = Shmem.Layout
module Arena = Shmem.Arena

(* Ablation knobs (experiments E-A2/E-A3; the defaults are the paper's
   algorithm):
   - [placement]: [`Paper] follows F5–F6 (pick the free-list the
     allocator is not near); [`Own_index] always uses freeList[tid].
   - [help_alloc]: [false] skips A11–A15 and F3's donation, degrading
     AllocNode from wait-free to lock-free. *)
type placement = [ `Paper | `Own_index ]

(* Domain-local allocation cache for the sharded Native configuration
   (Mm_intf.sharded): the paper's 2N free-lists already play the role
   of stripes, so WFRC adopts only the cache layer. Unsynchronised:
   each thread touches exactly its own entry. *)
type tcache = { cslots : int array; mutable clen : int }

type t = {
  cfg : Mm_intf.config;
  backend : B.t;
  arena : Arena.t;
  ann : Ann.t;
  ctr : C.t;
  n : int;                          (* NR_THREADS *)
  current_free_list : P.cell;       (* currentFreeList *)
  free_list : P.cell array;         (* freeList[2N]: head pointers *)
  help_current : P.cell;            (* helpCurrent *)
  ann_alloc : P.cell array;         (* annAlloc[N]: 0 = ⊥ *)
  oom_scan_limit : int;
  placement : placement;
  help_alloc : bool;
  caches : tcache array option; (* per-thread caches when sharded *)
  batch : int;
}

let arena t = t.arena
let counters t = t.ctr
let config t = t.cfg
let announcements t = t.ann

let create ?(placement = `Paper) ?(help_alloc = true) (cfg : Mm_intf.config) =
  let backend = cfg.backend in
  let layout =
    Layout.create ~num_links:cfg.num_links ~num_data:cfg.num_data
  in
  let arena =
    Arena.create ~backend ~layout ~capacity:cfg.capacity
      ~num_roots:cfg.num_roots ()
  in
  (* Initial free state: all nodes chained into freeList[0], each with
     mm_ref = 1 (paper: "Initially 1", interpreted as in Valois — odd
     means claimed-by-allocator, count 0). *)
  for h = 1 to cfg.capacity do
    let p = Value.of_handle h in
    Arena.write_mm_next arena p
      (if h < cfg.capacity then Value.of_handle (h + 1) else Value.null);
    Arena.write arena (Arena.mm_ref_addr arena p) 1
  done;
  let n = cfg.threads in
  (* The scheme's globals are all FAA/CAS rendezvous points for every
     thread, so under [Native] each gets its own cache-line pair. *)
  {
    cfg;
    backend;
    arena;
    ann = Ann.create ~backend ~threads:n ();
    ctr = C.create ~backend ~threads:n ();
    n;
    current_free_list = B.make_contended backend 0;
    free_list =
      Array.init (2 * n) (fun i ->
          B.make_contended backend
            (if i = 0 then Value.of_handle 1 else Value.null));
    help_current = B.make_contended backend 0;
    ann_alloc = Array.init n (fun _ -> B.make_contended backend 0);
    oom_scan_limit = (16 * n) + 16;
    placement;
    help_alloc;
    caches =
      (if Mm_intf.sharded cfg then
         Some
           (Array.init n (fun _ ->
                { cslots = Array.make (2 * cfg.batch) Value.null; clen = 0 }))
       else None);
    batch = cfg.batch;
  }

(* ---------------- ReleaseRef (R1–R4) + FreeNode (F1–F10) ----------- *)

(* The R3 recursion ("recursively call ReleaseRef for all held
   references") runs as an explicit work list so cascaded reclamation
   of long chains uses constant stack. *)
let rec release t ~tid node =
  C.incr t.ctr ~tid Release;
  release_loop t ~tid [ Value.unmark node ]

and release_loop t ~tid = function
  | [] -> ()
  | node :: rest ->
      Arena.faa_mm_ref t.arena node (-2);                           (* R1 *)
      if
        Arena.read_mm_ref t.arena node = 0
        && Arena.cas_mm_ref t.arena node ~old:0 ~nw:1               (* R2 *)
      then begin
        (* R3: we own the node exclusively now; collect and clear the
           references held by its link slots. *)
        let held = ref rest in
        let nl = Layout.num_links (Arena.layout t.arena) in
        for i = 0 to nl - 1 do
          let v = Arena.read_link t.arena node i in
          Arena.write_link t.arena node i 0;
          if not (Value.is_null v) then held := Value.unmark v :: !held
        done;
        C.incr t.ctr ~tid Node_reclaimed;
        free_node t ~tid node;                                      (* R4 *)
        release_loop t ~tid !held
      end
      else release_loop t ~tid rest

and free_node t ~tid node =
  (* Pre-condition: mm_ref = 1 (claimed), as established by R2 or by
     the initial chaining. From here the node is allocator custody —
     donation (F3), cache parking and the F4–F10 pushes only ever
     touch its mm_ref/mm_next words — so this is the lifecycle [Free]
     point for the reclamation oracle. *)
  Mm_intf.Events.emit ~tid node Mm_intf.Events.Free;
  C.incr t.ctr ~tid Free;
  let n = t.n in
  let help_id = B.read t.backend t.help_current in                  (* F1 *)
  ignore
    (B.cas t.backend t.help_current ~old:help_id ~nw:((help_id + 1) mod n));
                                                                    (* F2 *)
  (* F3 with the donation-count correction (see module comment). *)
  let donated =
    t.help_alloc
    && begin
         Arena.faa_mm_ref t.arena node 2;
         if B.cas t.backend t.ann_alloc.(help_id) ~old:Value.null ~nw:node
         then true
         else begin
           Arena.faa_mm_ref t.arena node (-2);
           false
         end
       end
  in
  if donated then C.incr t.ctr ~tid Free_gave_help
  else
    match t.caches with
    | Some caches ->
        (* Sharded config: park the claimed node (mm_ref stays 1) in
           the domain-local cache; on overflow, spill [batch] nodes
           through the ordinary F4–F10 pushes. Donation was already
           attempted above, so the helping channel that makes
           AllocNode wait-free is untouched by the caching. *)
        let c = caches.(tid) in
        c.cslots.(c.clen) <- node;
        c.clen <- c.clen + 1;
        if c.clen = Array.length c.cslots then begin
          C.incr t.ctr ~tid Cache_spill;
          for _ = 1 to t.batch do
            c.clen <- c.clen - 1;
            free_push t ~tid c.cslots.(c.clen)
          done
        end
    | None -> free_push t ~tid node

(* F4–F10: push a claimed node onto one of the 2N free-lists. *)
and free_push t ~tid node =
  let n = t.n in
  let current = B.read t.backend t.current_free_list in             (* F4 *)
  let index =                                                       (* F5 *)
    match t.placement with
    | `Own_index -> tid (* ablation E-A2 *)
    | `Paper ->
        if current <= tid || current > n + tid then n + tid         (* F6 *)
        else tid
  in
  let rec push index =                                              (* F7 *)
    let head = B.read t.backend t.free_list.(index) in
    Arena.write_mm_next t.arena node head;                          (* F8 *)
    if not (B.cas t.backend t.free_list.(index) ~old:head ~nw:node)
    then begin
                                                                    (* F9 *)
      C.incr t.ctr ~tid Free_retry;
      push ((index + n) mod (2 * n))                                (* F10 *)
    end
  in
  push index

(* ---------------- AllocNode (A1–A18) ------------------------------- *)

let alloc t ~tid =
  C.incr t.ctr ~tid Alloc;
  let n = t.n in
  let helped = ref false in                                         (* A1 *)
  let help_id = B.read t.backend t.help_current in                  (* A2 *)
  let empty_scans = ref 0 in
  let result = ref Value.null in
  let finished = ref false in
  while not !finished do                                            (* A3 *)
    if B.read t.backend t.ann_alloc.(tid) <> Value.null then begin  (* A4 *)
      let node = B.swap t.backend t.ann_alloc.(tid) Value.null in
      Arena.faa_mm_ref t.arena node (-1);         (* FixRef(node, -1) *)
      C.incr t.ctr ~tid Alloc_helped;
      Mm_intf.Events.emit ~tid node Mm_intf.Events.Alloc;
      result := node;
      finished := true
    end
    else begin
      match t.caches with
      | Some caches when caches.(tid).clen > 0 ->
          (* Sharded config: serve from the domain-local cache with no
             shared-word traffic at all. The cached node carries
             mm_ref = 1; FAA (not a store) it to 2, because a stale D5
             may still land a transient +2/-2 pair on it. Donations
             (A4 above) keep priority so helped allocations are
             collected promptly. *)
          let c = caches.(tid) in
          c.clen <- c.clen - 1;
          let node = c.cslots.(c.clen) in
          Arena.faa_mm_ref t.arena node 1;
          Mm_intf.Events.emit ~tid node Mm_intf.Events.Alloc;
          result := node;
          finished := true
      | _ ->
      let current = B.read t.backend t.current_free_list in         (* A5 *)
      let node = B.read t.backend t.free_list.(current) in          (* A6 *)
      if Value.is_null node then begin                              (* A7 *)
        ignore
          (B.cas t.backend t.current_free_list ~old:current
             ~nw:((current + 1) mod (2 * n)));
        incr empty_scans;
        if !empty_scans > t.oom_scan_limit then raise Mm_intf.Out_of_memory;
        C.incr t.ctr ~tid Alloc_retry
      end
      else begin
        empty_scans := 0;
        Arena.faa_mm_ref t.arena node 2;                            (* A9 *)
        let next = Arena.read_mm_next t.arena node in
        if B.cas t.backend t.free_list.(current) ~old:node ~nw:next then begin
                                                                   (* A10 *)
          let gave =
            t.help_alloc
            && (not !helped)
            && B.read t.backend t.ann_alloc.(help_id) = Value.null  (* A11 *)
            && B.cas t.backend t.ann_alloc.(help_id) ~old:Value.null
                 ~nw:node                                           (* A12 *)
          in
          if gave then begin
            helped := true;                                         (* A13 *)
            ignore
              (B.cas t.backend t.help_current ~old:help_id
                 ~nw:((help_id + 1) mod n));                        (* A14 *)
            C.incr t.ctr ~tid Alloc_gave_help;
            C.incr t.ctr ~tid Alloc_retry                           (* A15 *)
          end
          else begin
            ignore
              (B.cas t.backend t.help_current ~old:help_id
                 ~nw:((help_id + 1) mod n));                        (* A16 *)
            Arena.faa_mm_ref t.arena node (-1);   (* A17: FixRef(-1) *)
            Mm_intf.Events.emit ~tid node Mm_intf.Events.Alloc;
            result := node;
            finished := true
          end
        end
        else begin
          release t ~tid node;                                      (* A18 *)
          C.incr t.ctr ~tid Alloc_retry
        end
      end
    end
  done;
  !result

(* ---------------- DeRefLink (D1–D10) / HelpDeRef (H1–H8) ----------- *)

let rec deref t ~tid link =
  C.incr t.ctr ~tid Deref;
  let slot = Ann.choose_slot t.ann ~tid in                          (* D1 *)
  Ann.set_index t.ann ~tid slot;                                    (* D2 *)
  Ann.announce t.ann ~tid ~slot link;                               (* D3 *)
  let node = Arena.read t.arena link in                             (* D4 *)
  if not (Value.is_null node) then Arena.faa_mm_ref t.arena node 2; (* D5 *)
  let n1 = Ann.retract t.ann ~tid ~slot in                          (* D6 *)
  if n1 <> Value.enc_link link then begin                           (* D7 *)
    C.incr t.ctr ~tid Deref_helped;
    if not (Value.is_null node) then release t ~tid node;           (* D8 *)
    n1                                                              (* D9 *)
  end
  else node                                                        (* D10 *)

and help_deref t ~tid link =
  for id = 0 to t.n - 1 do                                          (* H1 *)
    C.incr t.ctr ~tid Help_scan;
    let slot = Ann.read_index t.ann ~id in                          (* H2 *)
    if Ann.read_slot t.ann ~id ~slot = Value.enc_link link then begin
                                                                    (* H3 *)
      Ann.busy_incr t.ann ~id ~slot;                                (* H4 *)
      let node = deref t ~tid link in                               (* H5 *)
      if Ann.answer_cas t.ann ~id ~slot ~link node then             (* H6 *)
        C.incr t.ctr ~tid Help_answered
      else begin
        C.incr t.ctr ~tid Help_refused;
        if not (Value.is_null node) then release t ~tid node        (* H7 *)
      end;
      Ann.busy_decr t.ann ~id ~slot                                 (* H8 *)
    end
  done

(* FixRef of Figure 5, exposed for reference copying (§3.2 prescribes
   FixRef(node, 2) when duplicating a shared pointer). *)
let fix_ref t node fix =
  if not (Value.is_null node) then Arena.faa_mm_ref t.arena node fix;
  node

(* ---------------- Quiescent inspection ----------------------------- *)

(* Walk every free-list chain and [annAlloc], returning the set of
   free node handles. Only meaningful with no concurrent operations.
   Checks chain sanity as it goes. *)
let free_set t =
  let cap = t.cfg.capacity in
  let seen = Array.make (cap + 1) false in
  let record ~where p ~expect_ref =
    let h = Value.handle p in
    if seen.(h) then
      failwith (Printf.sprintf "Gc: node #%d reachable twice (%s)" h where);
    seen.(h) <- true;
    let r = Arena.read_mm_ref t.arena p in
    if r <> expect_ref then
      failwith
        (Printf.sprintf "Gc: free node #%d has mm_ref=%d, expected %d (%s)" h
           r expect_ref where)
  in
  Array.iteri
    (fun i head ->
      let where = Printf.sprintf "freeList[%d]" i in
      let rec walk p steps =
        if steps > cap then failwith ("Gc: cycle in " ^ where)
        else if not (Value.is_null p) then begin
          record ~where p ~expect_ref:1;
          walk (Arena.read_mm_next t.arena p) (steps + 1)
        end
      in
      walk (B.read t.backend head) 0)
    t.free_list;
  Array.iteri
    (fun i cell ->
      let p = B.read t.backend cell in
      if not (Value.is_null p) then
        record ~where:(Printf.sprintf "annAlloc[%d]" i) p ~expect_ref:3)
    t.ann_alloc;
  (match t.caches with
  | Some caches ->
      Array.iteri
        (fun tid c ->
          for i = 0 to c.clen - 1 do
            record
              ~where:(Printf.sprintf "cache[%d]" tid)
              c.cslots.(i) ~expect_ref:1
          done)
        caches
  | None -> ());
  seen

let free_count t =
  let seen = free_set t in
  let c = ref 0 in
  Array.iter (fun b -> if b then incr c) seen;
  !c

(* Tolerant variant of [free_set] for the post-run auditor
   ([Mm_intf.custody]): never raises, reporting structural damage as
   violation strings instead. AnnAlloc donations are [pending] under
   the cell's owner (only that thread's A4 can collect them), and
   unretracted announcement answers are [pinned] by the announcing
   thread — both exactly what a crashed thread strands. *)
let custody t =
  let cap = t.cfg.capacity in
  let free = Array.make (cap + 1) false in
  let violations = ref [] in
  let violation fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  Array.iteri
    (fun i head ->
      let rec walk p steps =
        if steps > cap then violation "cycle in freeList[%d]" i
        else if not (Value.is_null p) then begin
          let h = Value.handle p in
          if free.(h) then violation "node #%d on two free chains" h
          else begin
            free.(h) <- true;
            walk (Arena.read_mm_next t.arena p) (steps + 1)
          end
        end
      in
      walk (B.read t.backend head) 0)
    t.free_list;
  let pending = ref [] in
  Array.iteri
    (fun i cell ->
      let p = B.read t.backend cell in
      if not (Value.is_null p) then begin
        let h = Value.handle p in
        if free.(h) then violation "annAlloc[%d] node #%d also on a free chain" i h
        else pending := (i, h) :: !pending
      end)
    t.ann_alloc;
  (* Domain-local caches count as [free] custody, like the free
     chains: the auditor's node partition must stay conservative when
     the run quiesced with populated caches. *)
  (match t.caches with
  | Some caches ->
      Array.iteri
        (fun tid c ->
          for i = 0 to c.clen - 1 do
            let h = Value.handle c.cslots.(i) in
            if free.(h) then
              violation "cache[%d] node #%d also on a free chain" tid h
            else free.(h) <- true
          done)
        caches
  | None -> ());
  let pinned =
    List.map (fun (tid, p) -> (tid, Value.handle p)) (Ann.answers t.ann)
  in
  Mm_intf.
    { free; pending = !pending; pinned; violations = List.rev !violations }

let validate t =
  Ann.validate t.ann;
  let seen = free_set t in
  (* Allocated nodes must carry an even (unclaimed) reference count. *)
  Arena.iter_nodes t.arena (fun p ->
      if not seen.(Value.handle p) then begin
        let r = Arena.read_mm_ref t.arena p in
        if r < 0 || r land 1 = 1 then
          failwith
            (Printf.sprintf "Gc: allocated node #%d has bad mm_ref=%d"
               (Value.handle p) r)
      end);
  let cur = B.read t.backend t.current_free_list in
  if cur < 0 || cur >= 2 * t.n then
    failwith (Printf.sprintf "Gc: currentFreeList=%d out of range" cur);
  let hc = B.read t.backend t.help_current in
  if hc < 0 || hc >= t.n then
    failwith (Printf.sprintf "Gc: helpCurrent=%d out of range" hc)
