[@@@wfrc.progress "wait_free"] (* static progress contract; checked by `wfrc_lint --pass progress` *)

(* The paper's scheme packaged behind the generic memory-manager
   signature, as a functor over the rc-buffering policy: the eager
   instance ([Wfrc], defer 0) is the paper's WFRC verbatim, and the
   deferred instance ([Wfrc.Deferred]) routes ReleaseRef decrements
   through per-domain buffers (Gc's [defer] machinery) with the same
   engine underneath. [cas_link] is Figure 6's CompareAndSwapLink. *)

module C = Atomics.Counters
module Value = Shmem.Value

module type POLICY = sig
  val name : string

  val default_defer : int
  (** Per-domain rc-buffer capacity applied when the caller's config
      leaves [defer] at 0. The eager scheme uses 0: never buffer. *)
end

module Make (P : POLICY) : Mm_intf.S with type t = Gc.t = struct
  type t = Gc.t

  let name = P.name
  let refcounted = true

  let create (cfg : Mm_intf.config) =
    let cfg =
      if P.default_defer > 0 && cfg.defer = 0 then
        { cfg with defer = P.default_defer }
      else cfg
    in
    Gc.create cfg

  let config = Gc.config
  let arena = Gc.arena
  let counters = Gc.counters

  (* Reference counting needs no per-operation bracket. *)
  let enter_op _t ~tid:_ = ()
  let exit_op _t ~tid:_ = ()

  let alloc t ~tid = Gc.alloc t ~tid
  let deref t ~tid link = Gc.deref t ~tid link
  let release t ~tid p = if not (Value.is_null p) then Gc.release t ~tid p

  let copy_ref t ~tid:_ p = if Value.is_null p then p else Gc.fix_ref t p 2

  let cas_link t ~tid link ~old ~nw =
    let ctr = Gc.counters t in
    C.incr ctr ~tid Cas_attempt;
    (* The link's share on the new target must exist before the link
       can be observed pointing at it, so FixRef(+2) precedes the CAS
       and is undone on failure. (Deferral never applies here: the +2
       is an increment, and only decrements buffer — the shared count
       may over-approximate, never under.) *)
    if not (Value.is_null nw) then ignore (Gc.fix_ref t nw 2);
    if Shmem.Arena.cas (Gc.arena t) link ~old ~nw then begin
      (* Figure 6: a successful link update must help pending
         de-references of this link before the old target can lose its
         reference. *)
      Gc.help_deref t ~tid link;
      if not (Value.is_null old) then Gc.release t ~tid old;
      true
    end
    else begin
      if not (Value.is_null nw) then Gc.release t ~tid nw;
      C.incr ctr ~tid Cas_failure;
      false
    end

  (* No-race contexts only (§3.2): re-point the link, moving its
     share. *)
  let store_link t ~tid link p =
    let arena = Gc.arena t in
    let old = Shmem.Arena.read arena link in
    if not (Value.is_null p) then ignore (Gc.fix_ref t p 2);
    Shmem.Arena.write arena link p;
    if not (Value.is_null old) then Gc.release t ~tid old

  (* Reclamation is driven entirely by reference counts. *)
  let terminate _t ~tid:_ _p = ()

  let validate = Gc.validate
  let free_count = Gc.free_count
  let custody = Gc.custody

  (* Crash recovery: dead-slot adoption (quiescent-survivors). *)
  let declare_dead = Gc.declare_dead
  let dead = Gc.dead
  let recover = Gc.recover

  (* Sentinels need no special handling under reference counting: the
     creator simply keeps the allocation reference forever. *)
  let make_immortal _t ~tid:_ _p = ()
end
