(** The paper's wait-free memory-management scheme, packaged behind
    the scheme-independent {!Mm_intf.S} signature.

    - [deref] is [DeRefLink] (Figure 4): wait-free safe de-reference
      via announcement + helping.
    - [release] is [ReleaseRef]: wait-free reference drop with
      recursive reclamation (R3).
    - [alloc] is [AllocNode] (Figure 5): wait-free allocation from the
      [2N]-list free-list with round-robin helping.
    - [cas_link] is [CompareAndSwapLink] (Figure 6): CAS + the
      mandatory [HelpDeRef] + internal link-share transfer.

    The line-level engine (and the ablation knobs) live in {!Gc}; the
    announcement pool in {!Ann}. *)

module Gc : module type of Gc
module Ann : module type of Ann

include Mm_intf.S with type t = Gc.t

module Deferred : Mm_intf.S with type t = Gc.t
(** The deferred-rc variant ([wfrc_deferred]): the same engine with
    per-domain decrement buffers on the ReleaseRef fast path and
    increment sponging in DeRefLink, flushed at buffer-full,
    quiescence, [declare_dead], recovery and the allocator's OOM path
    (DESIGN.md §6.3). Configs leaving [defer] at 0 get a per-thread
    buffer of 16 decrements; an explicit [defer] overrides it. *)
