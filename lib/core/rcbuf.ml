[@@@wfrc.progress "wait_free"] (* static progress contract; checked by `wfrc_lint --pass progress` *)

(* Per-domain rc-decrement buffers for the deferred-rc variant
   (Anderson-Blelloch-Wei, arXiv 2204.05985, adapted to the paper's
   2-units-per-reference counts).

   Each thread owns one fixed-capacity row and touches only that row
   on the fast path, so appends and cancel scans are plain array ops
   with no atomicity: a row is written by its owner while the owner is
   alive, and by exactly one adopter (under the manager's adopt lock,
   or at recovery quiescence) afterwards. Entries are unmarked node
   handles, one per pending ReleaseRef decrement — duplicates are
   legal and mean several outstanding decrements on the same node.

   The safety argument for buffering ONLY decrements: while an entry
   sits in a row the shared mm_ref over-approximates the true count by
   2, so no node can reach the R2 claim point early — the claim can
   only be deferred, never forged. A deref that finds its target in
   the caller's own row cancels the entry instead of issuing the +2
   FAA (increment sponging): the pair annihilates locally and the
   shared word is never touched. *)

type t = {
  bufs : int array array; (* one row per tid, owner-written *)
  lens : int array;       (* live entry count per row *)
  cap : int;              (* row capacity = the config's [defer] knob *)
}

let create ~threads ~cap =
  if threads < 1 then invalid_arg "Rcbuf.create: threads";
  if cap < 1 then invalid_arg "Rcbuf.create: cap";
  {
    bufs = Array.init threads (fun _ -> Array.make cap 0);
    lens = Array.make threads 0;
    cap;
  }

let capacity t = t.cap
let len t ~tid = t.lens.(tid)

(* Append a pending decrement; true when the row is now full and the
   caller must flush before the next defer. Callers never append to a
   full row (the buffer-full flush empties it first). *)
let defer_release t ~tid handle =
  let n = t.lens.(tid) in
  t.bufs.(tid).(n) <- handle;
  t.lens.(tid) <- n + 1;
  n + 1 = t.cap

(* Increment sponging: cancel one pending decrement on [handle] in the
   caller's own row, newest first (the common release-then-re-deref
   pattern). True iff an entry was annihilated. *)
let cancel t ~tid handle =
  let row = t.bufs.(tid) and n = t.lens.(tid) in
  let rec scan i =
    if i < 0 then false
    else if row.(i) = handle then begin
      row.(i) <- row.(n - 1);
      t.lens.(tid) <- n - 1;
      true
    end
    else scan (i - 1)
  in
  scan (n - 1)

(* The flusher works directly on the row, oldest entry first (both
   backends must process in the same order — free-list push order is
   part of the observable trace). [clear] empties the row BEFORE the
   entries are processed: a thread killed mid-flush therefore strands
   its unprocessed decrements as plain over-approximation anomalies
   (excess even counts) that the recovery fixpoint drops — it can
   never double-process an entry. *)
let row t ~tid = t.bufs.(tid)

let clear t ~tid =
  let n = t.lens.(tid) in
  t.lens.(tid) <- 0;
  n

(* Accounting snapshot for [custody]: every (tid, handle) pending
   decrement, owner-tagged, duplicates included. Does not flush. *)
let entries t =
  let acc = ref [] in
  for tid = Array.length t.lens - 1 downto 0 do
    for i = t.lens.(tid) - 1 downto 0 do
      acc := (tid, t.bufs.(tid).(i)) :: !acc
    done
  done;
  !acc

let total t = Array.fold_left ( + ) 0 t.lens
