(* The announcement pool of Figure 4:

     annReadAddr[NR_THREADS][NR_THREADS] : LinkOrPointer
     annIndex[NR_THREADS]                : integer
     annBusy[NR_THREADS][NR_THREADS]     : integer

   Row [tid] belongs to thread [tid]; it announces a pending
   de-reference by storing the link (encoded negatively, see
   [Shmem.Value]) into a slot whose busy count is zero. Helpers answer
   by CASing the link value into a node pointer. The busy counts are
   the paper's defence against stale answers: a slot is reused only
   when no helper holds a pending CAS against it (§3, D1).

   The cells are algorithm globals, not user memory, so they live
   outside the arena — but they are the same atomic word cells and
   cross the same scheduling points. *)

module P = Atomics.Primitives
module B = Atomics.Backend
module Value = Shmem.Value

type t = {
  backend : B.t;
  n : int;
  read_addr : P.cell array array;  (* annReadAddr; 0 = ⊥ *)
  index : P.cell array;            (* annIndex *)
  busy : P.cell array array;       (* annBusy *)
}

(* Every announcement cell is by definition a cross-thread hot word
   (the owner publishes, every helper scans and CASes), so under the
   [Native] backend all of them are contention-padded; the pool is
   O(N^2) cells for N threads, which stays tiny next to any arena. *)
let create ?(backend = B.Sim) ~threads () =
  if threads < 1 then invalid_arg "Ann.create";
  let mk _ = B.make_contended backend 0 in
  {
    backend;
    n = threads;
    read_addr = Array.init threads (fun _ -> Array.init threads mk);
    index = Array.init threads mk;
    busy = Array.init threads (fun _ -> Array.init threads mk);
  }

let threads t = t.n

(* D1: find a slot with busy = 0. The scan is bounded: at most [n-1]
   helpers can hold a busy claim on this row at any time, and no new
   claim can be acquired while the row has no live announcement, so at
   least one slot reads 0 within one pass (see the Lemma 9/10-style
   argument in DESIGN.md). *)
let choose_slot t ~tid =
  let rec scan i =
    if i >= t.n then
      failwith "Ann.choose_slot: no free slot — busy-count invariant broken"
    else if B.read t.backend t.busy.(tid).(i) = 0 then i
    else scan (i + 1)
  in
  scan 0

(* D2 *)
let set_index t ~tid slot = B.write t.backend t.index.(tid) slot

(* D3: publish the link. *)
let announce t ~tid ~slot link =
  B.write t.backend t.read_addr.(tid).(slot) (Value.enc_link link)

(* D6: atomically clear the announcement, returning what was there —
   either our own link encoding (not helped) or a helper's answer. *)
let retract t ~tid ~slot = B.swap t.backend t.read_addr.(tid).(slot) 0

(* H2 *)
let read_index t ~id = B.read t.backend t.index.(id)

(* H3 *)
let read_slot t ~id ~slot = B.read t.backend t.read_addr.(id).(slot)

(* H4 / H8 *)
let busy_incr t ~id ~slot = ignore (B.faa t.backend t.busy.(id).(slot) 1)
let busy_decr t ~id ~slot = ignore (B.faa t.backend t.busy.(id).(slot) (-1))

(* H6: answer the announcement — replace the link encoding with the
   freshly de-referenced node pointer. *)
let answer_cas t ~id ~slot ~link node =
  B.cas t.backend t.read_addr.(id).(slot) ~old:(Value.enc_link link) ~nw:node

(* Tolerant sweep for the post-run auditor: every slot still holding a
   helper's node-pointer answer. A crashed owner never retracts, so
   the answer keeps a +1 mm_ref contribution alive (H6 gave the node a
   reference on the announcer's behalf) — the auditor attributes such
   nodes to the crashed thread. Announcement encodings (negative) and
   empty slots are skipped; never raises. *)
let answers t =
  let acc = ref [] in
  for id = t.n - 1 downto 0 do
    for s = t.n - 1 downto 0 do
      let v = Atomic.get t.read_addr.(id).(s) in
      if v > 0 then acc := (id, Value.unmark v) :: !acc
    done
  done;
  !acc

(* Quiescent checks ------------------------------------------------- *)

let validate t =
  for id = 0 to t.n - 1 do
    for s = 0 to t.n - 1 do
      let b = Atomic.get t.busy.(id).(s) in
      if b <> 0 then
        failwith
          (Printf.sprintf "Ann: busy[%d][%d] = %d at quiescence" id s b);
      let v = Atomic.get t.read_addr.(id).(s) in
      if v <> 0 then
        failwith
          (Printf.sprintf "Ann: readAddr[%d][%d] = %d at quiescence" id s v)
    done
  done
