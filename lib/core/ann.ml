[@@@wfrc.progress "wait_free"] (* static progress contract; checked by `wfrc_lint --pass progress` *)

(* The announcement pool of Figure 4:

     annReadAddr[NR_THREADS][NR_THREADS] : LinkOrPointer
     annIndex[NR_THREADS]                : integer
     annBusy[NR_THREADS][NR_THREADS]     : integer

   Row [tid] belongs to thread [tid]; it announces a pending
   de-reference by storing the link (encoded negatively, see
   [Shmem.Value]) into a slot whose busy count is zero. Helpers answer
   by CASing the link value into a node pointer. The busy counts are
   the paper's defence against stale answers: a slot is reused only
   when no helper holds a pending CAS against it (§3, D1).

   The cells are algorithm globals, not user memory, so they live
   outside the arena — but they are the same atomic word cells and
   follow the same representation choice. [Boxed] is the historical
   array-of-padded-cells pool (and under [Sim] they cross the same
   scheduling points as arena words). [Unboxed] lays the pool out on
   one raw {!Atomics.Words} block — index words first, then the
   announcement matrix, then the busy matrix, every word on its own
   cache-line pair — which is what lets {!scan_announced} sweep a
   whole helping pass in one C stub call. *)

module P = Atomics.Primitives
module B = Atomics.Backend
module W = Atomics.Words
module Value = Shmem.Value

type store =
  | Cells of {
      read_addr : P.cell array array; (* annReadAddr; 0 = ⊥ *)
      index : P.cell array; (* annIndex *)
      busy : P.cell array array; (* annBusy *)
    }
  | Raw of { w : W.t; geom : int array }

type t = { backend : B.t; rep : B.rep; n : int; store : store }

let line = B.cache_line_words

(* Unboxed word map (all offsets in words, one line pair per cell):
   index[i] at [i*line]; read_addr[i][s] at [ra_base + (i*n + s)*line];
   busy[i][s] at [busy_base + (i*n + s)*line]. [geom] packages the
   index/read_addr part for the scan stub. *)
let idx_w i = i * line
let ra_base t = t.n * line
let ra_w t i s = ra_base t + (((i * t.n) + s) * line)
let busy_w t i s = ((t.n * line) + (t.n * t.n * line)) + (((i * t.n) + s) * line)

(* Every announcement cell is by definition a cross-thread hot word
   (the owner publishes, every helper scans and CASes), so under the
   [Native] backend all of them are contention-padded; the pool is
   O(N^2) cells for N threads, which stays tiny next to any arena. *)
let create ?(backend = B.Sim) ?rep ~threads () =
  if threads < 1 then invalid_arg "Ann.create";
  let rep = match rep with Some r -> r | None -> B.default_rep backend in
  if backend = B.Sim && rep = B.Unboxed then
    invalid_arg "Ann.create: Sim is boxed-only";
  let n = threads in
  let store =
    match rep with
    | B.Boxed ->
        let mk _ = B.make_contended backend 0 in
        Cells
          {
            read_addr = Array.init n (fun _ -> Array.init n mk);
            index = Array.init n mk;
            busy = Array.init n (fun _ -> Array.init n mk);
          }
    | B.Unboxed ->
        let w = W.make ((n + (2 * n * n)) * line) in
        let geom = [| 0; line; n * line; n * line; line; n |] in
        Raw { w; geom }
  in
  { backend; rep; n; store }

let threads t = t.n
let rep t = t.rep

(* D1: find a slot with busy = 0. The scan is bounded: at most [n-1]
   helpers can hold a busy claim on this row at any time, and no new
   claim can be acquired while the row has no live announcement, so at
   least one slot reads 0 within one pass (see the Lemma 9/10-style
   argument in DESIGN.md). *)
let choose_slot t ~tid =
  let busy_at i =
    match t.store with
    | Cells c -> B.read t.backend c.busy.(tid).(i)
    | Raw r -> W.get r.w (busy_w t tid i)
  in
  let rec scan i =
    if i >= t.n then
      failwith "Ann.choose_slot: no free slot — busy-count invariant broken"
    else if busy_at i = 0 then i
    else scan (i + 1)
  in
  scan 0

(* D2 *)
let set_index t ~tid slot =
  match t.store with
  | Cells c -> B.write t.backend c.index.(tid) slot
  | Raw r -> W.set r.w (idx_w tid) slot

(* D3: publish the link. *)
let announce t ~tid ~slot link =
  match t.store with
  | Cells c -> B.write t.backend c.read_addr.(tid).(slot) (Value.enc_link link)
  | Raw r -> W.set r.w (ra_w t tid slot) (Value.enc_link link)

(* D6: atomically clear the announcement, returning what was there —
   either our own link encoding (not helped) or a helper's answer. *)
let retract t ~tid ~slot =
  match t.store with
  | Cells c -> B.swap t.backend c.read_addr.(tid).(slot) 0
  | Raw r -> W.swap r.w (ra_w t tid slot) 0

(* H2 *)
let read_index t ~id =
  match t.store with
  | Cells c -> B.read t.backend c.index.(id)
  | Raw r -> W.get r.w (idx_w id)

(* H3 *)
let read_slot t ~id ~slot =
  match t.store with
  | Cells c -> B.read t.backend c.read_addr.(id).(slot)
  | Raw r -> W.get r.w (ra_w t id slot)

(* H4 / H8 *)
let busy_incr t ~id ~slot =
  match t.store with
  | Cells c -> ignore (B.faa t.backend c.busy.(id).(slot) 1)
  | Raw r -> ignore (W.faa r.w (busy_w t id slot) 1)

let busy_decr t ~id ~slot =
  match t.store with
  | Cells c -> ignore (B.faa t.backend c.busy.(id).(slot) (-1))
  | Raw r -> ignore (W.faa r.w (busy_w t id slot) (-1))

(* H6: answer the announcement — replace the link encoding with the
   freshly de-referenced node pointer. *)
let answer_cas t ~id ~slot ~link node =
  match t.store with
  | Cells c ->
      B.cas t.backend c.read_addr.(id).(slot) ~old:(Value.enc_link link)
        ~nw:node
  | Raw r ->
      W.cas r.w (ra_w t id slot) ~old:(Value.enc_link link) ~nw:node

(* Batched H2+H3 sweep for a helping pass: the first row [id >= from]
   whose currently-indexed slot announces exactly [target] (a
   [Value.enc_link] encoding), or -1. Unboxed rows are scanned by one
   C stub call over the raw block; boxed rows fall back to the
   per-word loop with identical reads. The result is a hint — the
   announcement can move between the scan and the caller's own H3
   re-read, which the helping protocol already tolerates. *)
let scan_announced t ~from target =
  match t.store with
  | Raw r -> W.ann_scan r.w ~geom:r.geom ~from target
  | Cells c ->
      let rec go id =
        if id >= t.n then -1
        else
          let slot = B.read t.backend c.index.(id) in
          if
            slot >= 0 && slot < t.n
            && B.read t.backend c.read_addr.(id).(slot) = target
          then id
          else go (id + 1)
      in
      go from

(* Tolerant sweep for the post-run auditor: every slot still holding a
   helper's node-pointer answer. A crashed owner never retracts, so
   the answer keeps a +1 mm_ref contribution alive (H6 gave the node a
   reference on the announcer's behalf) — the auditor attributes such
   nodes to the crashed thread. Announcement encodings (negative) and
   empty slots are skipped; never raises. *)
let raw_slot t id s =
  match t.store with
  | Cells c -> Atomic.get c.read_addr.(id).(s)
  | Raw r -> W.get r.w (ra_w t id s)

let answers t =
  let acc = ref [] in
  for id = t.n - 1 downto 0 do
    for s = t.n - 1 downto 0 do
      let v = raw_slot t id s in
      if v > 0 then acc := (id, Value.unmark v) :: !acc
    done
  done;
  !acc

(* Recovery (quiescent-survivors protocol) --------------------------- *)

(* Wipe a declared-dead owner's whole row: swap every slot to 0 and
   return [(slots_cleared, answers)], where [answers] are the
   node-pointer answers found — each still holds the reference H6
   acquired on the dead announcer's behalf, which the caller must
   release. Clearing the row also stops future helpers from answering
   into it (H3 re-reads the slot before the H6 CAS), so no new
   references can be stranded against the dead thread. *)
let clear_row t ~tid =
  let cleared = ref 0 and answers = ref [] in
  for s = t.n - 1 downto 0 do
    let v =
      match t.store with
      | Cells c -> B.swap t.backend c.read_addr.(tid).(s) 0
      | Raw r -> W.swap r.w (ra_w t tid s) 0
    in
    if v <> 0 then begin
      incr cleared;
      if v > 0 then answers := Value.unmark v :: !answers
    end
  done;
  (!cleared, !answers)

(* Reset stale busy claims. At quiescence with the survivors drained,
   no live thread is between H4 and H8, so any non-zero busy count was
   left by a helper that crashed mid-help; zeroing it makes the row's
   slots reusable again. Returns the number of claims cleared. *)
let clear_busy t =
  let cleared = ref 0 in
  for id = 0 to t.n - 1 do
    for s = 0 to t.n - 1 do
      let b =
        match t.store with
        | Cells c -> Atomic.get c.busy.(id).(s)
        | Raw r -> W.get r.w (busy_w t id s)
      in
      if b <> 0 then begin
        (match t.store with
        | Cells c -> Atomic.set c.busy.(id).(s) 0
        | Raw r -> W.set r.w (busy_w t id s) 0);
        incr cleared
      end
    done
  done;
  !cleared

(* Quiescent checks ------------------------------------------------- *)

let validate t =
  let raw_busy id s =
    match t.store with
    | Cells c -> Atomic.get c.busy.(id).(s)
    | Raw r -> W.get r.w (busy_w t id s)
  in
  for id = 0 to t.n - 1 do
    for s = 0 to t.n - 1 do
      let b = raw_busy id s in
      if b <> 0 then
        failwith
          (Printf.sprintf "Ann: busy[%d][%d] = %d at quiescence" id s b);
      let v = raw_slot t id s in
      if v <> 0 then
        failwith
          (Printf.sprintf "Ann: readAddr[%d][%d] = %d at quiescence" id s v)
    done
  done
