(** The announcement pool of the paper's Figure 4
    ([annReadAddr]/[annIndex]/[annBusy]).

    Thread [tid] owns row [tid]: it announces a pending de-reference
    in a busy-free slot, and helpers answer through {!answer_cas}.
    Busy counts prevent a slot from being reused while a helper still
    holds a pending answer CAS against it (the ABA defence of §3). *)

type t

val create :
  ?backend:Atomics.Backend.t ->
  ?rep:Atomics.Backend.rep ->
  threads:int ->
  unit ->
  t
(** [backend] (default [Sim]): under [Native], every announcement cell
    is contention-padded — they are cross-thread CAS targets by
    definition. [rep] (default {!Atomics.Backend.default_rep}) picks
    the pool's store: padded boxed cells, or one raw
    {!Atomics.Words} block that {!scan_announced} can sweep with a
    single stub call. *)

val threads : t -> int
val rep : t -> Atomics.Backend.rep

val choose_slot : t -> tid:int -> int
(** Line D1: index of a slot with busy count 0. Bounded single scan;
    fails only if the busy-count invariant is broken. *)

val set_index : t -> tid:int -> int -> unit
(** Line D2: publish which slot the next announcement uses. *)

val announce : t -> tid:int -> slot:int -> Shmem.Value.addr -> unit
(** Line D3: publish the link being de-referenced. *)

val retract : t -> tid:int -> slot:int -> int
(** Line D6: atomically clear the slot, returning the previous word —
    the link encoding if unhelped, a helper's node-pointer answer
    otherwise. *)

val read_index : t -> id:int -> int
(** Line H2. *)

val read_slot : t -> id:int -> slot:int -> int
(** Line H3 read. *)

val busy_incr : t -> id:int -> slot:int -> unit
(** Line H4. *)

val busy_decr : t -> id:int -> slot:int -> unit
(** Line H8. *)

val answer_cas : t -> id:int -> slot:int -> link:Shmem.Value.addr -> int -> bool
(** Line H6: try to replace the announced link with the answer. *)

val scan_announced : t -> from:int -> int -> int
(** [scan_announced t ~from target]: the first row [id >= from] whose
    currently-indexed slot holds exactly [target] (a
    [Shmem.Value.enc_link] word), or [-1] — the H2+H3 read pass of a
    helping sweep, batched. One C stub call under the unboxed rep; a
    per-word loop with the same reads under boxed. The result is a
    hint: callers must re-read the row (H2/H3) before acting, which
    the helping protocol requires anyway. *)

val answers : t -> (int * Shmem.Value.ptr) list
(** Tolerant sweep for the auditor: [(owner_tid, node)] for every slot
    still holding a helper's node-pointer answer (mark stripped). A
    crashed owner never retracts, leaving the answer's reference
    pinned. Never raises. *)

val clear_row : t -> tid:int -> int * Shmem.Value.ptr list
(** Recovery (quiescent-survivors protocol): wipe a declared-dead
    owner's row. Swaps every slot to 0; returns
    [(slots_cleared, answers)] where each answer node still holds the
    reference H6 acquired on the dead announcer's behalf — the caller
    must release it. Also prevents future helpers from answering into
    the row. *)

val clear_busy : t -> int
(** Recovery: zero every stale busy claim, returning how many were
    cleared. Sound only at quiescence with the survivors drained,
    when a non-zero count can only belong to a crashed helper. *)

val validate : t -> unit
(** Quiescent check: all busy counts and announcements cleared. *)
