[@@@wfrc.progress "wait_free"] (* static progress contract; checked by `wfrc_lint --pass progress` *)

(* The deferred-rc variant (exposed as [Wfrc.Deferred]): the same Gc
   engine with per-domain decrement buffers on the ReleaseRef fast
   path and increment sponging in DeRefLink — see Rcbuf and DESIGN.md
   §6.3. The default buffer capacity of 16 decrements per thread keeps
   the flush epoch short (reclamation stays prompt, DEBRA-style) while
   already collapsing the rc FAA storm on read-heavy workloads; a
   config with an explicit [defer] overrides it. *)

include Rc_policy.Make (struct
  let name = "wfrc_deferred"
  let default_defer = 16
end)
