(** The paper's wait-free reference counting (Figure 4) and wait-free
    free-list (Figure 5), line-for-line.

    This is the low-level engine; {!Wfrc} packages it behind the
    scheme-independent {!Mm_intf.S} signature. All operations are
    wait-free: each finishes in a number of atomic primitives bounded
    by a function of the thread count (Lemmas 6–10). *)

type t

type placement = [ `Paper | `Own_index ]
(** Free-list placement policy for {!create}: [`Paper] is the F5–F6
    heuristic; [`Own_index] always uses [freeList\[tid\]] (ablation
    E-A2). *)

val create : ?placement:placement -> ?help_alloc:bool -> Mm_intf.config -> t
(** Build the manager: arena, announcement pool, [2N] free-lists with
    every node initially chained into [freeList\[0\]] with
    [mm_ref = 1]. [help_alloc:false] disables the A11–A15/F3 helping
    (ablation E-A3: allocation becomes merely lock-free). Defaults are
    the paper's algorithm. *)

val arena : t -> Shmem.Arena.t
val counters : t -> Atomics.Counters.t
val config : t -> Mm_intf.config
val announcements : t -> Ann.t

val alloc : t -> tid:int -> Shmem.Value.ptr
(** [AllocNode] (A1–A18): returns a node with one reference
    ([mm_ref = 2]). Raises {!Mm_intf.Out_of_memory} after the bounded
    retry budget of the paper's footnote 4. *)

val free_node : t -> tid:int -> Shmem.Value.ptr -> unit
(** [FreeNode] (F1–F10). {b Internal}: per §3.2 user code must never
    call this directly — reclamation happens through {!release}.
    Exposed for the free-list experiments (E3) and tests. The node
    must be exclusively owned with [mm_ref = 1]. *)

val deref : t -> tid:int -> Shmem.Value.addr -> int
(** [DeRefLink] (D1–D10): read the link and acquire a reference on the
    target. Returns the raw word (null or a possibly-marked pointer). *)

val release : t -> tid:int -> Shmem.Value.ptr -> unit
(** [ReleaseRef] (R1–R4); cascade reclamation runs with constant
    stack. The pointer may be marked; must not be null. *)

val help_deref : t -> tid:int -> Shmem.Value.addr -> unit
(** [HelpDeRef] (H1–H8). Per §3.2, must be called after every
    successful CAS on a shared link, before releasing the old
    target. *)

val fix_ref : t -> Shmem.Value.ptr -> int -> Shmem.Value.ptr
(** [FixRef]: adjust the reference count by the given amount and
    return the node. [FixRef(node, 2)] duplicates a held reference. *)

val free_set : t -> bool array
(** Quiescent: which handles are currently free (reachable from a
    free-list head or parked in [annAlloc]); index 0 unused. Raises
    [Failure _] on malformed chains. *)

val free_count : t -> int

val custody : t -> Mm_intf.custody
(** Tolerant accounting snapshot for the auditor: free chains walked
    defensively (damage reported in [violations], never raised),
    [annAlloc] donations as [pending] under the cell owner,
    unretracted announcement answers as [pinned] by the announcer. *)

val validate : t -> unit
(** Quiescent structural invariants: announcement pool clear, free
    chains acyclic with [mm_ref = 1], donated nodes with [mm_ref = 3],
    allocated nodes with even non-negative counts, global indices in
    range. *)

(** {1 Crash recovery} *)

val declare_dead : t -> tid:int -> unit
(** Mark [tid] permanently stopped ({!Mm_intf.S.declare_dead}
    contract). Idempotent; consulted by {!recover} and by the sharded
    A7 exhaustion path, which adopts dead threads' caches before
    surfacing {!Mm_intf.Out_of_nodes}. *)

val dead : t -> int list
(** Declared-dead tids, ascending. *)

val recover : t -> tid:int -> Mm_intf.recovery
(** Quiescent-survivors recovery pass run by survivor [tid]: wipe the
    dead threads' announcement rows (releasing un-retracted helper
    answers) and stale busy counts, resolve reference-count anomalies
    to a fixpoint (excess drops released, stranded zero-inbound nodes
    revived onto the free-lists), then drain dead [annAlloc] cells and
    domain-local caches back into allocator custody. Donation is
    suppressed for the duration so every reclaimed node lands as
    [free], not [pending]. Idempotent; no-op when nothing is dead. *)
