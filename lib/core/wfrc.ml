[@@@wfrc.progress "wait_free"] (* static progress contract; checked by `wfrc_lint --pass progress` *)

(* The paper's scheme packaged behind the generic memory-manager
   signature, so the same data-structure code can run on it and on the
   baselines. The packaging itself (CompareAndSwapLink and friends)
   lives in [Rc_policy]; this eager instance — defer 0, every
   ReleaseRef hits the shared word at once — is the paper's WFRC. *)

(* Re-export the internals: [wfrc.ml] is the library's root module, so
   [Gc], [Ann] and the deferred variant are only reachable through
   it. *)
module Gc = Gc
module Ann = Ann

include Rc_policy.Make (struct
  let name = "wfrc"
  let default_defer = 0
end)

(* The deferred-rc variant: identical engine, per-domain decrement
   buffers on the ReleaseRef/DeRefLink fast paths. *)
module Deferred = Wfrc_deferred
