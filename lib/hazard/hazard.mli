(** Michael's hazard pointers [11, 12] behind the common MM signature
    — the §1 comparison point that protects only a {e fixed} number of
    references per thread.

    [deref] publishes the target in one of K per-thread slots and
    re-validates the link (lock-free, not wait-free); [terminate]
    retires the node; a scan frees retired nodes absent from every
    slot. [deref]/[copy_ref] raise [Failure _] when the K slots are
    exhausted — the applicability limit the paper's introduction
    criticises (and why {!Structures.Pqueue} refuses this scheme). *)

include Mm_intf.S

val slots_per_thread : t -> int
(** The K of this instance (derived from the node layout). *)

val scan : t -> tid:int -> unit
(** Force a retirement scan for [tid]'s retired list (normally
    triggered automatically past the retirement threshold). *)

val unsafe_skip_validation : t -> unit
(** Seed the classic hazard-pointer bug into this instance: [deref]
    still publishes the slot but skips the link re-validation, so a
    node retired-and-scanned between the read and the publish is used
    after reclamation. For detector non-vacuity tests only. *)
