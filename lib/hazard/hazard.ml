[@@@wfrc.progress "lock_free"] (* static progress contract; checked by `wfrc_lint --pass progress` *)

(* Michael's hazard pointers [11, 12], behind the common MM signature.

   This is the §1 comparison point the paper criticises for supporting
   only "a fixed number of references from process owned variables":
   each thread owns K hazard slots; [deref] publishes the target in a
   slot and re-validates the link; [terminate] retires the node, and a
   scan frees retired nodes not present in any thread's slots.

   Consequences faithfully reproduced here:
   - [deref] is lock-free, not wait-free (revalidation can retry
     forever under contention);
   - a thread can hold at most K references at a time ([deref] fails
     hard beyond that);
   - reclamation is driven by [terminate] — the client must guarantee
     the node is unreachable from the structure, which is why the
     multi-level skiplist (lib/structures/pqueue.ml) does not run on
     this scheme. That restriction is the paper's point.

   The free pool is a stamp-tagged Treiber stack. Reference-count
   fields exist in the arena but are not used by this scheme. *)

module P = Atomics.Primitives
module B = Atomics.Backend
module C = Atomics.Counters
module Value = Shmem.Value
module Layout = Shmem.Layout
module Arena = Shmem.Arena
module Freestore = Shmem.Freestore

type per_thread = {
  slots : P.cell array;   (* shared: scanners read these *)
  counts : int array;     (* local: references held per slot *)
  mutable retired : Value.ptr list;
  mutable retired_len : int;
}

type t = {
  cfg : Mm_intf.config;
  backend : B.t;
  arena : Arena.t;
  ctr : C.t;
  head : P.cell;          (* stamped free-pool head *)
  store : Freestore.t option; (* sharded Native free store (else legacy) *)
  threads : per_thread array;
  k : int;
  threshold : int;
  dead : bool array; (* tids declared permanently stopped *)
  mutable validate_deref : bool;
  (* [true] in every real configuration. [unsafe_skip_validation]
     clears it to seed the classic hazard-pointer bug — publishing the
     slot without re-validating the link — for detector non-vacuity
     tests. *)
}

let name = "hp"
let refcounted = false
let config t = t.cfg
let arena t = t.arena
let counters t = t.ctr
let slots_per_thread t = t.k

let create (cfg : Mm_intf.config) =
  let backend = cfg.backend in
  let layout =
    Layout.create ~num_links:cfg.num_links ~num_data:cfg.num_data
  in
  let arena =
    Arena.create ~backend ~rep:cfg.rep ~layout ~capacity:cfg.capacity
      ~num_roots:cfg.num_roots ()
  in
  for h = 1 to cfg.capacity do
    let p = Value.of_handle h in
    Arena.write_mm_next arena p
      (if h < cfg.capacity then Value.of_handle (h + 1) else Value.null)
  done;
  (* Enough slots for the deepest structure we ship plus slack. *)
  let k = max 16 ((2 * cfg.num_links) + 8) in
  (* Per-thread retirement threshold: bounded both by the classic
     2KN rule and by a fraction of the pool divided across threads, so
     the aggregate retired backlog cannot starve a small arena. *)
  let threshold =
    max 2
      (min (2 * k * cfg.threads) ((cfg.capacity / (4 * cfg.threads)) + 1))
  in
  let ctr = C.create ~backend ~threads:cfg.threads () in
  let store =
    if Mm_intf.sharded cfg then
      Some
        (Freestore.create ~backend ~rep:cfg.rep ~arena ~counters:ctr
           ~shards:cfg.shards ~batch:cfg.batch ~threads:cfg.threads ())
    else None
  in
  {
    cfg;
    backend;
    arena;
    ctr;
    head =
      B.make_contended backend
        (Value.pack_stamped ~stamp:0
           ~ptr:(if store = None then Value.of_handle 1 else Value.null));
    store;
    threads =
      Array.init cfg.threads (fun _ ->
          {
            (* hazard slots are owner-written, scanner-read: pad them
               so a scan does not invalidate the owner's lines *)
            slots = Array.init k (fun _ -> B.make_contended backend 0);
            counts = Array.make k 0;
            retired = [];
            retired_len = 0;
          });
    k;
    threshold;
    dead = Array.make cfg.threads false;
    validate_deref = true;
  }

let declare_dead t ~tid =
  if tid < 0 || tid >= t.cfg.threads then invalid_arg "Hazard.declare_dead";
  t.dead.(tid) <- true

let dead t =
  let acc = ref [] in
  for id = t.cfg.threads - 1 downto 0 do
    if t.dead.(id) then acc := id :: !acc
  done;
  !acc

let unsafe_skip_validation t = t.validate_deref <- false

let enter_op _t ~tid:_ = ()
let exit_op _t ~tid:_ = ()

let find_slot pt u =
  (* [counts] is thread-local; only the publish in [slots] is shared,
     and reading our own slot needs no scheduling point. *)
  let rec go i =
    if i >= Array.length pt.counts then None
    else if pt.counts.(i) > 0 && Atomic.get pt.slots.(i) = u then Some i
    else go (i + 1)
  in
  go 0

let find_empty pt =
  let rec go i =
    if i >= Array.length pt.counts then
      failwith "Hazard: out of hazard slots (fixed-reference limit hit)"
    else if pt.counts.(i) = 0 then i
    else go (i + 1)
  in
  go 0

(* Free-pool push: the node is certainly private here. *)
let pool_push t ~tid node =
  Mm_intf.Events.emit ~tid node Mm_intf.Events.Free;
  C.incr t.ctr ~tid Free;
  match t.store with
  | Some fs -> Freestore.free fs ~tid node
  | None ->
      let rec push () =
        let hv = B.read t.backend t.head in
        Arena.write_mm_next t.arena node (Value.stamped_ptr hv);
        let nw =
          Value.pack_stamped ~stamp:(Value.stamped_stamp hv + 1) ~ptr:node
        in
        if not (B.cas t.backend t.head ~old:hv ~nw) then begin
          C.incr t.ctr ~tid Free_retry;
          push ()
        end
      in
      push ()

(* Forward declaration: [scan] is defined below but alloc needs it for
   pressure-driven reclamation. *)
let scan_ref :
    (t -> tid:int -> unit) ref =
  ref (fun _ ~tid:_ -> ())

let alloc t ~tid =
  C.incr t.ctr ~tid Alloc;
  (* Register the fresh node in a hazard slot so the uniform "every
     acquired reference is released" discipline of Mm_intf applies to
     allocations too. The node is exclusively owned, so no validation
     is needed. *)
  let register node =
    let pt = t.threads.(tid) in
    let s = find_empty pt in
    B.write t.backend pt.slots.(s) node;
    pt.counts.(s) <- 1;
    Mm_intf.Events.emit ~tid node Mm_intf.Events.Alloc;
    node
  in
  let scanned = ref false in
  match t.store with
  | Some fs ->
      (* Pool pressure: first reclaim our own retired backlog, then
         retry bounded full passes — an empty pass may just mean the
         free nodes are parked in other threads' caches. *)
      let limit = (16 * t.cfg.threads) + 16 in
      let rec claim rounds ~waits ~adopted =
        match Freestore.alloc fs ~tid with
        | Some node -> register node
        | None ->
            if not !scanned then begin
              scanned := true;
              !scan_ref t ~tid;
              claim rounds ~waits ~adopted
            end
            else if rounds >= limit then begin
              (* Bounded wait: adopt declared-dead peers' caches once,
                 then surface typed backpressure rather than parking
                 forever on nodes nobody will ever return. *)
              if (not adopted) && Freestore.adopt fs ~tid ~dead:(dead t) > 0
              then claim 0 ~waits ~adopted:true
              else begin
                C.incr t.ctr ~tid Oom_backpressure;
                raise (Mm_intf.Out_of_nodes { retries = rounds; waits })
              end
            end
            else begin
              C.incr t.ctr ~tid Alloc_retry;
              (* Park until a remote free publishes nodes; bounded
                 timeout because other domains' caches are invisible
                 to the store and produce no wake. *)
              Freestore.wait_free fs ~tid ~timeout_ns:200_000;
              claim (rounds + 1) ~waits:(waits + 1) ~adopted
            end
      [@@wfrc.bounded
        "round counter: rounds advances toward limit at every pass; the \
         scan retry and the adopt reset are each gated by a one-shot \
         flag, so at most 2*limit+1 rounds before typed Out_of_nodes"]
      in
      claim 0 ~waits:0 ~adopted:false
  | None ->
      let rec pop () =
        let hv = B.read t.backend t.head in
        let node = Value.stamped_ptr hv in
        if Value.is_null node then
          if not !scanned then begin
            (* pool pressure: reclaim our own retired backlog and retry *)
            scanned := true;
            !scan_ref t ~tid;
            pop ()
          end
          else raise Mm_intf.Out_of_memory
        else
          let next = Arena.read_mm_next t.arena node in
          let nw =
            Value.pack_stamped ~stamp:(Value.stamped_stamp hv + 1) ~ptr:next
          in
          if B.cas t.backend t.head ~old:hv ~nw then register node
          else begin
            C.incr t.ctr ~tid Alloc_retry;
            pop ()
          end
      [@@wfrc.expect_unbounded
        "stamped Treiber pop: the head CAS can lose to concurrent \
         pushes/pops indefinitely (plus a one-shot scan-and-retry on \
         pool pressure) — the legacy lock-free allocation path"]
      in
      pop ()

let rec deref t ~tid link =
  C.incr t.ctr ~tid Deref;
  let pt = t.threads.(tid) in
  let w = Arena.read t.arena link in
  if Value.is_null w then w
  else begin
    let u = Value.unmark w in
    match find_slot pt u with
    | Some s ->
        (* Already hazarded by us: protected, no revalidation needed. *)
        pt.counts.(s) <- pt.counts.(s) + 1;
        w
    | None ->
        let s = find_empty pt in
        B.write t.backend pt.slots.(s) u;
        if (not t.validate_deref) || Arena.read t.arena link = w then begin
          pt.counts.(s) <- 1;
          w
        end
        else begin
          B.write t.backend pt.slots.(s) 0;
          C.incr t.ctr ~tid Deref_retry;
          deref t ~tid link
        end
  end
[@@wfrc.expect_unbounded
  "hazard-pointer publish-validate retry: a concurrent link update \
   between the slot write and the re-read invalidates the hazard \
   indefinitely — the lock-free baseline the paper compares against"]

let release t ~tid p =
  if not (Value.is_null p) then begin
    C.incr t.ctr ~tid Release;
    let pt = t.threads.(tid) in
    let u = Value.unmark p in
    match find_slot pt u with
    | Some s ->
        pt.counts.(s) <- pt.counts.(s) - 1;
        if pt.counts.(s) = 0 then B.write t.backend pt.slots.(s) 0
    | None -> failwith "Hazard.release: pointer not held by this thread"
  end

(* Duplicate a reference. The caller holds the node (a hazard slot or
   an immortal sentinel), so publishing an extra slot without
   revalidation is safe. *)
let copy_ref t ~tid p =
  if not (Value.is_null p) then begin
    let pt = t.threads.(tid) in
    let u = Value.unmark p in
    match find_slot pt u with
    | Some s -> pt.counts.(s) <- pt.counts.(s) + 1
    | None ->
        let s = find_empty pt in
        B.write t.backend pt.slots.(s) u;
        pt.counts.(s) <- 1
  end;
  p

let cas_link t ~tid link ~old ~nw =
  C.incr t.ctr ~tid Cas_attempt;
  if Arena.cas t.arena link ~old ~nw then true
  else begin
    C.incr t.ctr ~tid Cas_failure;
    false
  end

let store_link t ~tid:_ link p = Arena.write t.arena link p

let scan t ~tid =
  C.incr t.ctr ~tid Hp_scan;
  let hazards = Hashtbl.create 64 in
  Array.iter
    (fun pt ->
      Array.iter
        (fun cell ->
          let v = B.read t.backend cell in
          if not (Value.is_null v) then Hashtbl.replace hazards v ())
        pt.slots)
    t.threads;
  let pt = t.threads.(tid) in
  let keep, free =
    List.partition (fun p -> Hashtbl.mem hazards p) pt.retired
  in
  pt.retired <- keep;
  pt.retired_len <- List.length keep;
  List.iter
    (fun p ->
      C.incr t.ctr ~tid Node_reclaimed;
      pool_push t ~tid p)
    free

let terminate t ~tid p =
  Mm_intf.Events.emit ~tid (Value.unmark p) Mm_intf.Events.Retire;
  let pt = t.threads.(tid) in
  pt.retired <- Value.unmark p :: pt.retired;
  pt.retired_len <- pt.retired_len + 1;
  if pt.retired_len >= t.threshold then scan t ~tid

(* Quiescent inspection. *)
let free_set t =
  let cap = t.cfg.capacity in
  let seen = Array.make (cap + 1) false in
  let record where p =
    let h = Value.handle p in
    if seen.(h) then failwith ("Hazard: node reachable twice (" ^ where ^ ")");
    seen.(h) <- true
  in
  (match t.store with
  | Some fs ->
      Freestore.iter_free fs ~violation:failwith ~f:(fun p -> record "pool" p)
  | None ->
      let rec walk p steps =
        if steps > cap then failwith "Hazard: cycle in free pool"
        else if not (Value.is_null p) then begin
          record "pool" p;
          walk (Arena.read_mm_next t.arena p) (steps + 1)
        end
      in
      walk (Value.stamped_ptr (B.read t.backend t.head)) 0);
  Array.iter
    (fun pt -> List.iter (fun p -> record "retired" p) pt.retired)
    t.threads;
  seen

let free_count t =
  let seen = free_set t in
  let c = ref 0 in
  Array.iter (fun b -> if b then incr c) seen;
  !c

(* Tolerant snapshot for the auditor. [free] covers only the pool:
   retired nodes are [pending] under their retiring thread (a crashed
   owner strands its whole backlog — exactly the hazard-pointer
   failure mode the paper contrasts with); published hazard slots are
   [pinned] (a crashed thread never clears them, blocking every
   scanner forever). *)
let custody t =
  let cap = t.cfg.capacity in
  let free = Array.make (cap + 1) false in
  let violations = ref [] in
  let record p =
    let h = Value.handle p in
    if free.(h) then
      violations := Printf.sprintf "node #%d in the pool twice" h :: !violations
    else free.(h) <- true
  in
  (match t.store with
  | Some fs ->
      (* Stripe chains, return buffers and caches are all [free]
         custody for the auditor's partition. *)
      Freestore.iter_free fs
        ~violation:(fun s -> violations := s :: !violations)
        ~f:record
  | None ->
      let rec walk p steps =
        if steps > cap then violations := "cycle in free pool" :: !violations
        else if not (Value.is_null p) then begin
          let h = Value.handle p in
          if free.(h) then
            violations :=
              Printf.sprintf "node #%d in the pool twice" h :: !violations
          else begin
            free.(h) <- true;
            walk (Arena.read_mm_next t.arena p) (steps + 1)
          end
        end
      in
      walk (Value.stamped_ptr (B.read t.backend t.head)) 0);
  let pending = ref [] and pinned = ref [] in
  Array.iteri
    (fun tid pt ->
      List.iter
        (fun p ->
          let h = Value.handle p in
          if free.(h) then
            violations :=
              Printf.sprintf "retired node #%d also in the pool" h
              :: !violations
          else pending := (tid, h) :: !pending)
        pt.retired;
      Array.iter
        (fun cell ->
          let v = B.read t.backend cell in
          if not (Value.is_null v) then
            pinned := (tid, Value.handle v) :: !pinned)
        pt.slots)
    t.threads;
  Mm_intf.
    {
      free;
      pending = !pending;
      pinned = !pinned;
      deferred = [];
      violations = List.rev !violations;
    }

(* Crash recovery: clear the dead threads' published hazard slots (a
   crashed reader pins its targets for every scanner, forever), adopt
   their stranded retired backlogs, then run one scan — with the dead
   pins gone it frees everything whose only blocker was the crash.
   Finally sweep orphans: a victim that crashed between unlinking a
   node and retiring it strands the node outside every custody
   record, where only a root-marking pass can find it. *)
let recover t ~tid =
  if not (Array.exists Fun.id t.dead) then Mm_intf.no_recovery
  else begin
    let adopted = ref 0 and cleared = ref 0 in
    let me = t.threads.(tid) in
    for id = 0 to t.cfg.threads - 1 do
      if t.dead.(id) && id <> tid then begin
        let pt = t.threads.(id) in
        for s = 0 to t.k - 1 do
          if not (Value.is_null (B.read t.backend pt.slots.(s))) then begin
            B.write t.backend pt.slots.(s) 0;
            incr cleared
          end;
          pt.counts.(s) <- 0
        done;
        List.iter
          (fun p ->
            C.incr t.ctr ~tid Recovery_adopt;
            incr adopted;
            me.retired <- p :: me.retired;
            me.retired_len <- me.retired_len + 1)
          pt.retired;
        pt.retired <- [];
        pt.retired_len <- 0
      end
    done;
    scan t ~tid;
    let cached =
      match t.store with
      | Some fs -> Freestore.adopt fs ~tid ~dead:(dead t)
      | None -> 0
    in
    let c = custody t in
    let kept = Array.make (t.cfg.capacity + 1) false in
    List.iter (fun (_, h) -> kept.(h) <- true) c.Mm_intf.pending;
    List.iter (fun (_, h) -> kept.(h) <- true) c.Mm_intf.pinned;
    let swept =
      Mm_intf.Orphan.sweep ~arena:t.arena ~free:c.Mm_intf.free
        ~keep:(fun h -> kept.(h))
        ~reclaim:(fun p ->
          C.incr t.ctr ~tid Recovery_adopt;
          C.incr t.ctr ~tid Node_reclaimed;
          pool_push t ~tid p)
    in
    {
      Mm_intf.adopted = !adopted + cached + swept;
      released = 0;
      cleared = !cleared;
    }
  end

let validate t =
  ignore (free_set t);
  Array.iteri
    (fun tid pt ->
      Array.iteri
        (fun s c ->
          if c <> 0 then
            failwith
              (Printf.sprintf "Hazard: thread %d slot %d still holds %d refs"
                 tid s c);
          let v = Atomic.get pt.slots.(s) in
          if v <> 0 then
            failwith
              (Printf.sprintf "Hazard: thread %d slot %d not cleared" tid s))
        pt.counts)
    t.threads

let () = scan_ref := scan

(* Sentinels are never unlinked or retired, so they need no hazard:
   drop the allocation's slot. *)
let make_immortal t ~tid p = release t ~tid p
