[@@@wfrc.progress "lock_free"] (* static progress contract; checked by `wfrc_lint --pass progress` *)

(* The "default lock-free memory management scheme" the paper compares
   against (§5): reference counting in the style of Valois [19] as
   corrected by Michael & Scott [14].

   - [deref] is the unbounded-retry loop the paper's §3 describes:
     read the link, FAA the target's count, re-read the link; if it
     changed, undo and try again. Lock-free, not wait-free — a
     concurrent updater can force any number of retries (experiment
     E2 measures exactly this against the paper's bounded scheme).
   - The free-list is a single Treiber stack whose head carries a
     modification stamp (tagged pointer), the classic ABA fix; the
     pop is additionally protected by the reference count, as in §3.1.

   Reference-count conventions are identical to [Wfrc]: two units per
   reference, odd value = claimed by the allocator. *)

module B = Atomics.Backend
module C = Atomics.Counters
module Hot = Atomics.Hot
module Value = Shmem.Value
module Layout = Shmem.Layout
module Arena = Shmem.Arena
module Freestore = Shmem.Freestore

type t = {
  cfg : Mm_intf.config;
  backend : B.t;
  arena : Arena.t;
  ctr : C.t;
  hot : Hot.t; (* one slot: the stamped free-list head *)
  store : Freestore.t option; (* sharded Native free store (else legacy) *)
  work : int array array; (* per-thread release work stacks *)
  scratch : int array array; (* per-thread link-collect buffers *)
  dead : bool array; (* tids declared permanently stopped *)
}

let hw_head = 0

let name = "lfrc"
let refcounted = true
let config t = t.cfg
let arena t = t.arena
let counters t = t.ctr

let create (cfg : Mm_intf.config) =
  let backend = cfg.backend in
  let layout =
    Layout.create ~num_links:cfg.num_links ~num_data:cfg.num_data
  in
  let arena =
    Arena.create ~backend ~rep:cfg.rep ~layout ~capacity:cfg.capacity
      ~num_roots:cfg.num_roots ()
  in
  for h = 1 to cfg.capacity do
    let p = Value.of_handle h in
    Arena.write_mm_next arena p
      (if h < cfg.capacity then Value.of_handle (h + 1) else Value.null);
    Arena.write arena (Arena.mm_ref_addr arena p) 1
  done;
  let ctr = C.create ~backend ~threads:cfg.threads () in
  let store =
    if Mm_intf.sharded cfg then
      Some
        (Freestore.create ~backend ~rep:cfg.rep ~arena ~counters:ctr
           ~shards:cfg.shards ~batch:cfg.batch ~threads:cfg.threads ())
    else None
  in
  {
    cfg;
    backend;
    arena;
    ctr;
    (* the single Treiber head is the scheme's one global hot word;
       under the sharded store it is unused and stays null *)
    hot =
      Hot.create ~backend ~rep:cfg.rep 1 ~init:(fun _ ->
          Value.pack_stamped ~stamp:0
            ~ptr:(if Mm_intf.sharded cfg then Value.null else Value.of_handle 1));
    store;
    work =
      Array.init cfg.threads (fun _ ->
          Array.make (max 64 (4 * (cfg.num_links + 1))) 0);
    scratch =
      Array.init cfg.threads (fun _ -> Array.make (max 1 cfg.num_links) 0);
    dead = Array.make cfg.threads false;
  }

let declare_dead t ~tid =
  if tid < 0 || tid >= t.cfg.threads then invalid_arg "Lfrc.declare_dead";
  t.dead.(tid) <- true

let dead t =
  let acc = ref [] in
  for id = t.cfg.threads - 1 downto 0 do
    if t.dead.(id) then acc := id :: !acc
  done;
  !acc

let enter_op _t ~tid:_ = ()
let exit_op _t ~tid:_ = ()

(* Release / reclaim: same R1–R2 agreement as the wait-free scheme
   (this part of Valois' scheme is already wait-free; the lock-freedom
   gap is in deref and alloc). As in [Core.Gc], the link recursion runs
   on a reusable per-thread int-array stack so the hot path allocates
   nothing; the pop order — and so the shared-memory op sequence —
   matches the historical list worklist exactly. *)
let work_push t ~tid sp v =
  let stack = t.work.(tid) in
  let stack =
    if sp < Array.length stack then stack
    else begin
      let bigger = Array.make (2 * Array.length stack) 0 in
      Array.blit stack 0 bigger 0 (Array.length stack);
      t.work.(tid) <- bigger;
      bigger
    end
  in
  stack.(sp) <- v;
  sp + 1

let rec release t ~tid p =
  C.incr t.ctr ~tid Release;
  release_work t ~tid (work_push t ~tid 0 (Value.unmark p))

and release_work t ~tid sp =
  if sp > 0 then begin
    let sp = sp - 1 in
    let node = t.work.(tid).(sp) in
    let collected = Arena.release_collect t.arena node ~out:t.scratch.(tid) in
    if collected >= 0 then begin
      let sp = push_collected t ~tid ~k:0 ~collected sp in
      C.incr t.ctr ~tid Node_reclaimed;
      free_node t ~tid node;
      release_work t ~tid sp
    end
    else release_work t ~tid sp
  end
[@@wfrc.bounded
  "work-stack cascade: each iteration pops one claimed node and pushes only \
   that node's collected link targets, so the stack drains after at most \
   one entry per transitively reclaimed node (Valois's bounded release \
   recursion)"]

and push_collected t ~tid ~k ~collected sp =
  if k >= collected then sp
  else
    push_collected t ~tid ~k:(k + 1) ~collected
      (work_push t ~tid sp (Value.unmark t.scratch.(tid).(k)))

and free_node t ~tid node =
  Mm_intf.Events.emit ~tid node Mm_intf.Events.Free;
  C.incr t.ctr ~tid Free;
  match t.store with
  | Some fs ->
      (* The node was just claimed (mm_ref = 1) and keeps that count
         throughout its stay in the cache/stripes. *)
      Freestore.free fs ~tid node
  | None ->
      let rec push () =
        let hv = Hot.read t.hot hw_head in
        Arena.write_mm_next t.arena node (Value.stamped_ptr hv);
        let nw =
          Value.pack_stamped ~stamp:(Value.stamped_stamp hv + 1) ~ptr:node
        in
        if not (Hot.cas t.hot hw_head ~old:hv ~nw) then begin
          C.incr t.ctr ~tid Free_retry;
          push ()
        end
      in
      push ()

let alloc t ~tid =
  C.incr t.ctr ~tid Alloc;
  match t.store with
  | Some fs ->
      (* An empty pass is not yet out-of-memory: nodes may be parked
         in other threads' caches, so retry a bounded number of full
         passes (same envelope as WFRC's A7 scan limit). The cached
         node carries mm_ref = 1; FAA (not a store) to 2, because a
         stale Valois deref may still land a transient +2/-2 pair on
         it concurrently. *)
      let limit = (16 * t.cfg.threads) + 16 in
      let rec claim rounds ~waits ~adopted =
        match Freestore.alloc fs ~tid with
        | Some node ->
            Arena.faa_mm_ref t.arena node 1;
            Mm_intf.Events.emit ~tid node Mm_intf.Events.Alloc;
            node
        | None ->
            if rounds >= limit then begin
              (* Bounded wait: before surfacing backpressure, adopt
                 declared-dead peers' caches once — those nodes are
                 invisible to the store and generate no wake. Failing
                 that, a typed [Out_of_nodes] (never an unbounded
                 park): the caller owns the back-off policy. *)
              if (not adopted) && Freestore.adopt fs ~tid ~dead:(dead t) > 0
              then claim 0 ~waits ~adopted:true
              else begin
                C.incr t.ctr ~tid Oom_backpressure;
                raise (Mm_intf.Out_of_nodes { retries = rounds; waits })
              end
            end
            else begin
              C.incr t.ctr ~tid Alloc_retry;
              (* Park instead of spinning: a remote free's stripe push
                 or return-slot install wakes us. Bounded, because
                 nodes parked in other domains' caches are invisible
                 to the store and produce no wake. *)
              Freestore.wait_free fs ~tid ~timeout_ns:200_000;
              claim (rounds + 1) ~waits:(waits + 1) ~adopted
            end
      [@@wfrc.bounded
        "round counter: rounds advances toward limit at every pass; the \
         single reset is gated by the one-shot adopted flag, so at most \
         2*limit rounds before typed Out_of_nodes backpressure"]
      in
      claim 0 ~waits:0 ~adopted:false
  | None ->
      let rec pop () =
        let hv = Hot.read t.hot hw_head in
        let node = Value.stamped_ptr hv in
        if Value.is_null node then raise Mm_intf.Out_of_memory;
        (* §3.1: raise the count before reading mm_next so the node
           cannot be reclaimed (and thus re-pushed with a different
           next). *)
        Arena.faa_mm_ref t.arena node 2;
        let next = Arena.read_mm_next t.arena node in
        let nw =
          Value.pack_stamped ~stamp:(Value.stamped_stamp hv + 1) ~ptr:next
        in
        if Hot.cas t.hot hw_head ~old:hv ~nw then begin
          Arena.faa_mm_ref t.arena node (-1);
          Mm_intf.Events.emit ~tid node Mm_intf.Events.Alloc;
          node
        end
        else begin
          C.incr t.ctr ~tid Alloc_retry;
          release t ~tid node;
          pop ()
        end
      in
      pop ()

(* The Valois de-reference: unbounded retries under contention. *)
let deref t ~tid link =
  C.incr t.ctr ~tid Deref;
  let rec attempt () =
    let node = Arena.read t.arena link in
    if Value.is_null node then node
    else begin
      Arena.faa_mm_ref t.arena node 2;
      if Arena.read t.arena link = node then node
      else begin
        C.incr t.ctr ~tid Deref_retry;
        release t ~tid node;
        attempt ()
      end
    end
  in
  attempt ()
[@@wfrc.expect_unbounded
  "the Valois read-FAA-validate retry: under contention a concurrent \
   link update invalidates the snapshot indefinitely — this is exactly \
   the unbounded baseline the paper's D1-D10 is measured against"]

let copy_ref t ~tid:_ p =
  if not (Value.is_null p) then Arena.faa_mm_ref t.arena p 2;
  p

let cas_link t ~tid link ~old ~nw =
  C.incr t.ctr ~tid Cas_attempt;
  (* Pre-add the link's share on [nw] so no window exists in which the
     link points at a node whose count omits it. *)
  if not (Value.is_null nw) then Arena.faa_mm_ref t.arena nw 2;
  if Arena.cas t.arena link ~old ~nw then begin
    if not (Value.is_null old) then release t ~tid old;
    true
  end
  else begin
    if not (Value.is_null nw) then release t ~tid nw;
    C.incr t.ctr ~tid Cas_failure;
    false
  end

(* No-race contexts only (§3.2): re-point the link, moving its share. *)
let store_link t ~tid link p =
  let old = Arena.read t.arena link in
  if not (Value.is_null p) then Arena.faa_mm_ref t.arena p 2;
  Arena.write t.arena link p;
  if not (Value.is_null old) then release t ~tid old
let terminate _t ~tid:_ _p = ()

(* Quiescent inspection. *)
let free_set t =
  let cap = t.cfg.capacity in
  let seen = Array.make (cap + 1) false in
  let record p =
    let h = Value.handle p in
    if seen.(h) then failwith "Lfrc: node reachable twice";
    seen.(h) <- true;
    let r = Arena.read_mm_ref t.arena p in
    if r <> 1 then
      failwith (Printf.sprintf "Lfrc: free node #%d has mm_ref=%d" h r)
  in
  (match t.store with
  | Some fs -> Freestore.iter_free fs ~violation:failwith ~f:record
  | None ->
      let rec walk p steps =
        if steps > cap then failwith "Lfrc: cycle in free-list"
        else if not (Value.is_null p) then begin
          record p;
          walk (Arena.read_mm_next t.arena p) (steps + 1)
        end
      in
      walk (Value.stamped_ptr (Hot.read t.hot hw_head)) 0);
  seen

let free_count t =
  let seen = free_set t in
  let c = ref 0 in
  Array.iter (fun b -> if b then incr c) seen;
  !c

(* Tolerant snapshot for the auditor: same walk as [free_set] but
   damage goes to [violations] instead of raising. The scheme has no
   per-thread custody (no retired lists, no announcements). *)
let custody t =
  let cap = t.cfg.capacity in
  let free = Array.make (cap + 1) false in
  let violations = ref [] in
  let violation s = violations := s :: !violations in
  let record p =
    let h = Value.handle p in
    if free.(h) then
      violation (Printf.sprintf "node #%d on the free-list twice" h)
    else free.(h) <- true
  in
  (match t.store with
  | Some fs ->
      (* Stripe chains, return-buffer slots and per-thread caches are
         all allocator custody: they count as [free] so the auditor's
         node partition stays conservative with a populated store. *)
      Freestore.iter_free fs ~violation ~f:record
  | None ->
      let rec walk p steps =
        if steps > cap then violation "cycle in free-list"
        else if not (Value.is_null p) then begin
          let h = Value.handle p in
          if free.(h) then
            violation (Printf.sprintf "node #%d on the free-list twice" h)
          else begin
            free.(h) <- true;
            walk (Arena.read_mm_next t.arena p) (steps + 1)
          end
        end
      in
      walk (Value.stamped_ptr (Hot.read t.hot hw_head)) 0);
  Mm_intf.
    {
      free;
      pending = [];
      pinned = [];
      deferred = [];
      violations = List.rev !violations;
    }

(* Crash recovery: the scheme has no announcement/retired custody, so
   recovery is the reference-count anomaly fixpoint (crashed derefs
   and cas_links strand +2 surpluses; crashed reclamations strand
   zero-inbound nodes) plus adoption of dead threads' store caches. *)
let revive t ~tid node =
  for i = 0 to t.cfg.num_links - 1 do
    let v = Arena.read_clear_link t.arena node i in
    if not (Value.is_null v) then release t ~tid (Value.unmark v)
  done;
  Arena.write t.arena (Arena.mm_ref_addr t.arena node) 1;
  C.incr t.ctr ~tid Node_reclaimed;
  free_node t ~tid node

let recover t ~tid =
  if not (Array.exists Fun.id t.dead) then Mm_intf.no_recovery
  else begin
    let revived, drops =
      Mm_intf.Rc_anomaly.run ~arena:t.arena
        ~custody:(fun () -> custody t)
        ~release:(fun p ->
          C.incr t.ctr ~tid Recovery_release;
          release t ~tid p)
        ~revive:(fun p ->
          C.incr t.ctr ~tid Recovery_adopt;
          revive t ~tid p)
    in
    let cached =
      match t.store with
      | Some fs -> Freestore.adopt fs ~tid ~dead:(dead t)
      | None -> 0
    in
    { Mm_intf.adopted = revived + cached; released = drops; cleared = 0 }
  end

let validate t =
  let seen = free_set t in
  Arena.iter_nodes t.arena (fun p ->
      if not seen.(Value.handle p) then begin
        let r = Arena.read_mm_ref t.arena p in
        if r < 0 || r land 1 = 1 then
          failwith
            (Printf.sprintf "Lfrc: allocated node #%d has bad mm_ref=%d"
               (Value.handle p) r)
      end)

(* Sentinels need no special handling under reference counting: the
   creator simply keeps the allocation reference forever. *)
let make_immortal _t ~tid:_ _p = ()
