(** Michael–Scott FIFO queue over any {!Mm_intf.S} scheme.

    Layout requirements: at least one link slot and one data word; two
    arena root cells (head and tail links). The queue permanently
    holds one sentinel node. *)

type t

val create : Mm_intf.instance -> head_root:int -> tail_root:int -> tid:int -> t
(** Allocates the sentinel from the manager (so an empty queue holds
    one node). *)

val enqueue : t -> tid:int -> int -> unit
val dequeue : t -> tid:int -> int option
val is_empty : t -> tid:int -> bool

val drain : t -> tid:int -> int list
(** Dequeue until empty, in FIFO order. Quiescent teardown helper. *)

val destroy : t -> tid:int -> int
(** Quiescent teardown: drain any leftover messages, free the sentinel
    and null both root cells (they may host a fresh queue afterwards).
    Returns the number of discarded messages. The queue must not be
    used again. Idempotent: if the roots are already (partially)
    nulled — an earlier destroy, or one that crashed between the two
    root stores — the call finishes the clearing and returns 0, so
    crash-adopting teardown may destroy unconditionally. *)
