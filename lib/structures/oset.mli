(** Lock-free ordered set / dictionary — Michael's list-based set
    (PODC 2002), scheme-generic.

    Runs on {e every} registered scheme, including hazard pointers and
    epochs: traversal never follows a marked link, and a node is
    retired exactly once, by the thread whose CAS unlinked it.
    Contrast with {!Pqueue}, which requires reference counting — the
    two structures together demonstrate the applicability boundary the
    paper's §1 describes.

    Layout requirements: ≥1 link slot, ≥2 data words (key, value).
    Keys strictly between [min_int] and [max_int]; at most one binding
    per key. Two nodes are permanently consumed as sentinels. *)

type t

val create : Mm_intf.instance -> tid:int -> t

val head : t -> Shmem.Value.ptr
(** The immortal head sentinel. Sentinels are not stored in arena root
    cells, so they (and everything they reach) are invisible to
    root-based reachability scans; long-lived services should anchor
    this pointer in a root cell ([Mm_intf.store_link]) if they want
    {!Harness.Audit}-style audits to classify the set's nodes as
    reachable rather than leaked. *)

val insert : t -> tid:int -> int -> int -> bool
(** [insert t ~tid k v] binds [k -> v]; [false] if [k] present. *)

val remove : t -> tid:int -> int -> bool
(** [remove t ~tid k] unbinds [k]; [false] if absent. *)

val mem : t -> tid:int -> int -> bool
val lookup : t -> tid:int -> int -> int option

val to_list : t -> tid:int -> (int * int) list
(** Ascending (key, value) snapshot; quiescent use only. *)

val size : t -> tid:int -> int

val clear : t -> tid:int -> int
(** Remove everything (quiescent); returns how many were removed. *)
