(** Lock-free hash map: a fixed power-of-two array of {!Oset} buckets
    sharing one memory manager (Michael's hash-map construction).
    Scheme-generic like {!Oset}. Each map consumes two sentinel nodes
    per bucket.

    {b Sizing.} The bucket count is fixed forever at {!create} — there
    is no rehashing — so every operation on a map holding [n] entries
    walks a chain of [n / buckets] nodes on average. Size for the
    expected {e peak} population: keep the load factor ([n / buckets])
    below ~4 for O(1)-ish operations, and remember each bucket costs
    two sentinel nodes up front (so [buckets] also trades arena
    capacity against chain length). A million-entry registry wants
    2{^15}–2{^18} buckets, not the low hundreds. {!probe} reports the
    realised load factor and worst chain so services can surface
    degradation instead of silently crawling. *)

type t

val create : Mm_intf.instance -> buckets:int -> tid:int -> t
(** [buckets] must be a positive power of two. *)

val num_buckets : t -> int

val heads : t -> Shmem.Value.ptr array
(** The immortal head sentinel of every bucket, in bucket order. As
    with {!Oset.head}: anchor these in arena root cells if root-based
    audits must see the map's nodes as reachable. *)

type probe = { entries : int; max_chain : int; load : float }

val probe : t -> tid:int -> probe
(** Quiescent health probe: total entries, longest bucket chain, and
    load factor (entries per bucket). See the sizing note above. *)

val insert : t -> tid:int -> int -> int -> bool
val remove : t -> tid:int -> int -> bool
val mem : t -> tid:int -> int -> bool
val lookup : t -> tid:int -> int -> int option

val size : t -> tid:int -> int
(** Quiescent count (sums bucket snapshots). *)

val to_list : t -> tid:int -> (int * int) list
(** Quiescent ascending (key, value) snapshot. *)

val clear : t -> tid:int -> int
