(* Lock-free skiplist priority queue in the style of Sundell & Tsigas
   [18] — the workload the paper's §5 evaluation plugged the wait-free
   memory manager into.

   Deletion protocol: delete-min claims the first live node by setting
   the mark bit on its level-0 next link (the linearisation of the
   deletion), then marks the upper levels, then physically unlinks via
   a search pass. Traversals help by unlinking any marked node they
   pass (the link CASes move the links' reference shares internally).

   Scheme restriction: this structure relies on reference counting —
   a marked node can transiently remain reachable after its unlink
   pass (a racing unlink of its predecessor can re-expose it), which
   reference counts tolerate but [terminate]-driven schemes (hazard
   pointers, epochs) do not. That is precisely the applicability gap
   the paper's §1 describes for fixed-reference schemes; [create]
   therefore refuses non-RC managers. [terminate] is never called.

   Node layout: links 0..max_level-1 = next pointers; data 0 = key,
   data 1 = value, data 2 = level. Keys must be < max_int (the search
   pass for physical deletion probes key+1). Duplicate keys are
   allowed; equal keys are delivered in arbitrary relative order. *)

module Mm = Mm_intf
module Value = Shmem.Value
module Arena = Shmem.Arena

exception Restart

type t = {
  mm : Mm.instance;
  max_level : int;
  head : Value.ptr; (* immortal sentinel, key = min_int *)
  tail : Value.ptr; (* immortal sentinel, key = max_int *)
  rngs : Sched.Rng.t array;
}

let rc_schemes = [ "wfrc"; "wfrc_deferred"; "lfrc"; "lockrc" ]

let create mm ~seed ~tid =
  if not (List.mem (Mm.name mm) rc_schemes) then
    invalid_arg
      ("Pqueue.create: scheme '" ^ Mm.name mm
     ^ "' does not support arbitrary structures (needs reference counting)");
  let arena = Mm.arena mm in
  let layout = Arena.layout arena in
  let max_level = Shmem.Layout.num_links layout in
  if max_level < 1 then invalid_arg "Pqueue.create: layout needs links";
  if Shmem.Layout.num_data layout < 3 then
    invalid_arg "Pqueue.create: layout needs key/value/level data words";
  let cfg = Mm.conf mm in
  let head = Mm.alloc mm ~tid in
  let tail = Mm.alloc mm ~tid in
  Arena.write_data arena head 0 min_int;
  Arena.write_data arena head 2 max_level;
  Arena.write_data arena tail 0 max_int;
  Arena.write_data arena tail 2 max_level;
  for i = 0 to max_level - 1 do
    Mm.store_link mm ~tid (Arena.link_addr arena tail i) Value.null;
    Mm.store_link mm ~tid (Arena.link_addr arena head i) tail
  done;
  Mm.make_immortal mm ~tid head;
  Mm.make_immortal mm ~tid tail;
  (* head/tail keep their allocation references forever: immortal. *)
  {
    mm;
    max_level;
    head;
    tail;
    rngs = Array.init cfg.threads (fun i -> Sched.Rng.create (seed + (i * 7919)));
  }

let head_ptr t = t.head

let key t p = Arena.read_data (Mm.arena t.mm) (Value.unmark p) 0
let level_of t p = Arena.read_data (Mm.arena t.mm) (Value.unmark p) 2
let next_addr t p i = Arena.link_addr (Mm.arena t.mm) (Value.unmark p) i

(* Geometric level in [1, max_level]. *)
let random_level t ~tid =
  let rng = t.rngs.(tid) in
  let rec go l = if l < t.max_level && Sched.Rng.bool rng then go (l + 1) else l in
  go 1

let release t ~tid p = if not (Value.is_null p) then Mm.release t.mm ~tid p

(* Walk level [i] from [pred] (whose reference we consume) to the
   first live node with key >= k, unlinking marked nodes en route.
   Returns references on both (pred', succ). Raises [Restart] (with
   everything released) if the walk loses its footing. *)
let rec walk_level t ~tid i k pred =
  let w = Mm.deref t.mm ~tid (next_addr t pred i) in
  if Value.is_marked w then begin
    (* pred itself has been deleted at this level. *)
    release t ~tid w;
    release t ~tid pred;
    raise Restart
  end
  else begin
    let x = w in
    (* Level-i successors are never null: tail bounds every level. *)
    if x = t.tail || key t x >= k then (pred, x)
    else begin
      let xn = Mm.deref t.mm ~tid (next_addr t x i) in
      if Value.is_marked xn then begin
        (* x is deleted: unlink it at this level. *)
        let ok =
          Mm.cas_link t.mm ~tid (next_addr t pred i) ~old:x
            ~nw:(Value.unmark xn)
        in
        release t ~tid xn;
        release t ~tid x;
        if ok then walk_level t ~tid i k pred
        else begin
          release t ~tid pred;
          raise Restart
        end
      end
      else begin
        release t ~tid xn;
        release t ~tid pred;
        walk_level t ~tid i k x
      end
    end
  end

(* Full search: per-level (pred, succ) pairs with references held on
   every entry. The caller must release all 2*max_level references. *)
let search t ~tid k =
  let l = t.max_level in
  let preds = Array.make l Value.null in
  let succs = Array.make l Value.null in
  let release_filled from =
    for i = from to l - 1 do
      release t ~tid preds.(i);
      release t ~tid succs.(i);
      preds.(i) <- Value.null;
      succs.(i) <- Value.null
    done
  in
  let rec attempt () =
    match
      let pred = ref (Mm.copy_ref t.mm ~tid t.head) in
      for i = l - 1 downto 0 do
        let p, s = walk_level t ~tid i k !pred in
        preds.(i) <- p;
        succs.(i) <- s;
        if i > 0 then pred := Mm.copy_ref t.mm ~tid p
      done
    with
    | () -> (preds, succs)
    | exception Restart ->
        (* walk_level released its own references; drop the filled
           upper levels and start over. *)
        release_filled 0;
        attempt ()
  in
  attempt ()

let release_search t ~tid (preds, succs) =
  Array.iter (fun p -> release t ~tid p) preds;
  Array.iter (fun p -> release t ~tid p) succs

let insert t ~tid k v =
  if k = max_int || k = min_int then invalid_arg "Pqueue.insert: key reserved";
  Mm.enter_op t.mm ~tid;
  Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
  let arena = Mm.arena t.mm in
  let lvl = random_level t ~tid in
  let n = Mm.alloc t.mm ~tid in
  Arena.write_data arena n 0 k;
  Arena.write_data arena n 1 v;
  Arena.write_data arena n 2 lvl;
  for i = 0 to t.max_level - 1 do
    Mm.store_link t.mm ~tid (next_addr t n i) Value.null
  done;
  (* Link the bottom level; retry with a fresh search on conflict. *)
  let rec link_bottom () =
    let (preds, succs) = search t ~tid k in
    (* Initialise every level's next before the node becomes visible,
       so no link of a visible node is ever null (markable). *)
    for i = 0 to lvl - 1 do
      Mm.store_link t.mm ~tid (next_addr t n i) succs.(i)
    done;
    if Mm.cas_link t.mm ~tid (next_addr t preds.(0) 0) ~old:succs.(0) ~nw:n
    then (preds, succs)
    else begin
      release_search t ~tid (preds, succs);
      link_bottom ()
    end
  in
  let (preds, succs) = link_bottom () in
  let preds = ref preds and succs = ref succs in
  (* Link upper levels; abandon if the node gets deleted meanwhile or
     if a re-search runs into the node itself. Upper levels are a
     performance aid, not a correctness requirement. *)
  (try
     for i = 1 to lvl - 1 do
       let rec link_level () =
         if !preds.(i) = n || !succs.(i) = n then raise Exit;
         let cur = Mm.deref t.mm ~tid (next_addr t n i) in
         if Value.is_marked cur then begin
           release t ~tid cur;
           raise Exit (* node deleted: stop linking *)
         end;
         if cur <> !succs.(i) then begin
           (* Refresh our node's forward pointer first. *)
           let ok =
             Mm.cas_link t.mm ~tid (next_addr t n i) ~old:cur ~nw:(!succs).(i)
           in
           release t ~tid cur;
           if not ok then begin
             release_search t ~tid (!preds, !succs);
             let p, s = search t ~tid k in
             preds := p;
             succs := s;
             link_level ()
           end
           else if
             Mm.cas_link t.mm ~tid
               (next_addr t !preds.(i) i)
               ~old:(!succs).(i) ~nw:n
           then ()
           else begin
             release_search t ~tid (!preds, !succs);
             let p, s = search t ~tid k in
             preds := p;
             succs := s;
             link_level ()
           end
         end
         else begin
           release t ~tid cur;
           if
             Mm.cas_link t.mm ~tid
               (next_addr t !preds.(i) i)
               ~old:(!succs).(i) ~nw:n
           then ()
           else begin
             release_search t ~tid (!preds, !succs);
             let p, s = search t ~tid k in
             preds := p;
             succs := s;
             link_level ()
           end
         end
       in
       link_level ()
     done
   with Exit -> ());
  release_search t ~tid (!preds, !succs);
  Mm.release t.mm ~tid n

(* Mark level [i] of a claimed node (idempotent, helps racers). *)
let mark_level t ~tid x i =
  let rec go () =
    let w = Mm.deref t.mm ~tid (next_addr t x i) in
    if Value.is_marked w then release t ~tid w
    else begin
      let ok =
        Mm.cas_link t.mm ~tid (next_addr t x i) ~old:w ~nw:(Value.mark w)
      in
      release t ~tid w;
      if not ok then go ()
    end
  in
  go ()

let delete_min t ~tid =
  Mm.enter_op t.mm ~tid;
  Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
  let arena = Mm.arena t.mm in
  let rec attempt () =
    (* Hunt the first live node at the bottom level. *)
    let rec hunt pred =
      let w = Mm.deref t.mm ~tid (next_addr t pred 0) in
      if Value.is_marked w then begin
        release t ~tid w;
        release t ~tid pred;
        attempt () (* pred deleted under us *)
      end
      else begin
        let x = w in
        if x = t.tail then begin
          release t ~tid x;
          release t ~tid pred;
          None
        end
        else begin
          let xn = Mm.deref t.mm ~tid (next_addr t x 0) in
          if Value.is_marked xn then begin
            (* Already deleted: help unlink and move on. *)
            let ok =
              Mm.cas_link t.mm ~tid (next_addr t pred 0) ~old:x
                ~nw:(Value.unmark xn)
            in
            release t ~tid xn;
            release t ~tid x;
            if ok then hunt pred
            else begin
              release t ~tid pred;
              attempt ()
            end
          end
          else if
            (* Claim: mark the bottom link (deletion linearises here). *)
            Mm.cas_link t.mm ~tid (next_addr t x 0) ~old:xn
              ~nw:(Value.mark xn)
          then begin
            release t ~tid xn;
            release t ~tid pred;
            let k = Arena.read_data arena x 0 in
            let v = Arena.read_data arena x 1 in
            for i = 1 to level_of t x - 1 do
              mark_level t ~tid x i
            done;
            (* Physical deletion: a search past key k unlinks every
               marked node with key <= k it encounters, including x. *)
            release_search t ~tid (search t ~tid (k + 1));
            release t ~tid x;
            Some (k, v)
          end
          else begin
            release t ~tid xn;
            release t ~tid x;
            hunt pred (* claim race: re-examine from same pred *)
          end
        end
      end
    in
    hunt (Mm.copy_ref t.mm ~tid t.head)
  in
  attempt ()

let is_empty t ~tid =
  Mm.enter_op t.mm ~tid;
  Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
  (* Empty iff the first live bottom-level node is the tail. *)
  let rec go pred =
    let w = Mm.deref t.mm ~tid (next_addr t pred 0) in
    if Value.is_marked w then begin
      release t ~tid w;
      release t ~tid pred;
      go (Mm.copy_ref t.mm ~tid t.head)
    end
    else begin
      let x = w in
      if x = t.tail then begin
        release t ~tid x;
        release t ~tid pred;
        true
      end
      else begin
        let xn = Mm.deref t.mm ~tid (next_addr t x 0) in
        let deleted = Value.is_marked xn in
        release t ~tid xn;
        if deleted then begin
          (* Skip the logically deleted node and keep walking. *)
          release t ~tid pred;
          go x
        end
        else begin
          release t ~tid x;
          release t ~tid pred;
          false
        end
      end
    end
  in
  go (Mm.copy_ref t.mm ~tid t.head)

let drain t ~tid =
  let rec go acc = match delete_min t ~tid with
    | None -> List.rev acc
    | Some kv -> go (kv :: acc)
  in
  let out = go [] in
  (* Physical-deletion sweep: a node that lost the insert-vs-delete
     race can remain linked at an upper level until some traversal
     passes it; one full search unlinks every marked node at every
     level, releasing the last structure-held references. *)
  Mm.enter_op t.mm ~tid;
  (* k = max_int: only the tail sentinel satisfies key >= k, so the
     walk passes (and cleans) every user node, including key
     max_int - 1. *)
  release_search t ~tid (search t ~tid max_int);
  Mm.exit_op t.mm ~tid;
  out
