(** Lock-free skiplist priority queue (Sundell–Tsigas style [18]) —
    the workload of the paper's §5 evaluation.

    Runs only on reference-counting managers (wfrc, lfrc, lockrc): a
    logically deleted node can transiently be re-exposed by racing
    unlinks, which reference counts tolerate but retire-based schemes
    (hazard pointers, epochs) do not — the applicability gap the
    paper's §1 describes. {!create} rejects non-RC schemes.

    Layout requirements: [num_links] = maximum skiplist level,
    [num_data >= 3] (key, value, level). Two nodes are permanently
    consumed as sentinels. Keys must lie strictly between [min_int]
    and [max_int]; duplicates are allowed. *)

type t

val create : Mm_intf.instance -> seed:int -> tid:int -> t

val head_ptr : t -> Shmem.Value.ptr
(** The immortal head sentinel. Anchor it in an arena root cell if
    root-based audits must see the queue's nodes as reachable (see
    {!Oset.head}). *)

val insert : t -> tid:int -> int -> int -> unit
(** [insert t ~tid k v] inserts value [v] with priority [k]. *)

val delete_min : t -> tid:int -> (int * int) option
(** Remove and return a minimal (key, value) pair, or [None] when
    empty. *)

val is_empty : t -> tid:int -> bool

val drain : t -> tid:int -> (int * int) list
(** Delete-min until empty (ascending key order). Quiescent helper. *)
