(* Lock-free ordered set (dictionary) — Michael's list-based set
   (PODC 2002 [11]), written against the scheme-independent MM
   signature.

   Unlike the multi-level skiplist, this structure is safe on every
   scheme, including the retire-based ones, because it follows
   Michael's discipline exactly:

   - traversal never follows a marked next pointer: it either unlinks
     the marked node (becoming its owner, and thus the one to call
     [terminate]) or restarts from the head;
   - a node is retired precisely once, by the thread whose CAS
     physically unlinked it — at which point it is unreachable.

   That the same client code runs on reference counting, hazard
   pointers and epochs is the §3.2 compatibility story; that the
   skiplist cannot is the §1 applicability story. Together with
   [Pqueue] this repo demonstrates both.

   Node layout: link 0 = next, data 0 = key, data 1 = value. Keys in
   (min_int, max_int) exclusive; head/tail sentinels are immortal. *)

module Mm = Mm_intf
module Value = Shmem.Value
module Arena = Shmem.Arena

exception Restart

type t = {
  mm : Mm.instance;
  head : Value.ptr;
  tail : Value.ptr;
}

let create mm ~tid =
  let arena = Mm.arena mm in
  let layout = Arena.layout arena in
  if Shmem.Layout.num_links layout < 1 then
    invalid_arg "Oset.create: layout needs a next link";
  if Shmem.Layout.num_data layout < 2 then
    invalid_arg "Oset.create: layout needs key and value words";
  Mm.enter_op mm ~tid;
  let head = Mm.alloc mm ~tid in
  let tail = Mm.alloc mm ~tid in
  Arena.write_data arena head 0 min_int;
  Arena.write_data arena tail 0 max_int;
  Mm.store_link mm ~tid (Arena.link_addr arena tail 0) Value.null;
  Mm.store_link mm ~tid (Arena.link_addr arena head 0) tail;
  (* Sentinels are permanent: RC keeps the allocation reference, HP
     drops the hazard slot (they are never retired). *)
  Mm.make_immortal mm ~tid head;
  Mm.make_immortal mm ~tid tail;
  Mm.exit_op mm ~tid;
  { mm; head; tail }

let head t = t.head

let key t p = Arena.read_data (Mm.arena t.mm) (Value.unmark p) 0
let next_addr t p = Arena.link_addr (Mm.arena t.mm) (Value.unmark p) 0
let release t ~tid p = if not (Value.is_null p) then Mm.release t.mm ~tid p

(* Find the position for [k]: returns [(pred, cur, found)] with
   references held on both nodes; [cur] is the first node with
   key >= k. Unlinks (and terminates) marked nodes en route; raises
   [Restart] when the footing is lost. *)
let rec find_from t ~tid k pred =
  let cur = Mm.deref t.mm ~tid (next_addr t pred) in
  if Value.is_marked cur then begin
    (* pred itself is deleted *)
    release t ~tid cur;
    release t ~tid pred;
    raise Restart
  end
  else begin
    (* cur is never null: the tail sentinel bounds the list *)
    let w = Mm.deref t.mm ~tid (next_addr t cur) in
    if Value.is_marked w then begin
      (* cur is logically deleted: unlink it here, or restart *)
      let succ = Value.unmark w in
      if Mm.cas_link t.mm ~tid (next_addr t pred) ~old:cur ~nw:succ then begin
        (* we unlinked it: we own the retirement *)
        release t ~tid w;
        release t ~tid cur;
        Mm.terminate t.mm ~tid cur;
        find_from t ~tid k pred
      end
      else begin
        release t ~tid w;
        release t ~tid cur;
        release t ~tid pred;
        raise Restart
      end
    end
    else begin
      release t ~tid w;
      if cur = t.tail || key t cur >= k then (pred, cur)
      else begin
        release t ~tid pred;
        find_from t ~tid k cur
      end
    end
  end

let rec find t ~tid k =
  match find_from t ~tid k (Mm.copy_ref t.mm ~tid t.head) with
  | res -> res
  | exception Restart -> find t ~tid k

let mem t ~tid k =
  Mm.enter_op t.mm ~tid;
  Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
  let pred, cur = find t ~tid k in
  let found = cur <> t.tail && key t cur = k in
  release t ~tid cur;
  release t ~tid pred;
  found

let lookup t ~tid k =
  Mm.enter_op t.mm ~tid;
  Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
  let pred, cur = find t ~tid k in
  let res =
    if cur <> t.tail && key t cur = k then
      Some (Arena.read_data (Mm.arena t.mm) cur 1)
    else None
  in
  release t ~tid cur;
  release t ~tid pred;
  res

(* Insert [k -> v]; returns false if [k] is already present. *)
let insert t ~tid k v =
  if k = max_int || k = min_int then invalid_arg "Oset.insert: key reserved";
  Mm.enter_op t.mm ~tid;
  Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
  let arena = Mm.arena t.mm in
  let n = ref Value.null in
  let rec attempt () =
    let pred, cur = find t ~tid k in
    if cur <> t.tail && key t cur = k then begin
      release t ~tid cur;
      release t ~tid pred;
      (* undo the speculative allocation, if any *)
      if not (Value.is_null !n) then begin
        Mm.store_link t.mm ~tid (next_addr t !n) Value.null;
        Mm.release t.mm ~tid !n;
        Mm.terminate t.mm ~tid !n
      end;
      false
    end
    else begin
      if Value.is_null !n then begin
        n := Mm.alloc t.mm ~tid;
        Arena.write_data arena !n 0 k;
        Arena.write_data arena !n 1 v
      end;
      Mm.store_link t.mm ~tid (next_addr t !n) cur;
      let ok = Mm.cas_link t.mm ~tid (next_addr t pred) ~old:cur ~nw:!n in
      release t ~tid cur;
      release t ~tid pred;
      if ok then begin
        Mm.release t.mm ~tid !n;
        true
      end
      else attempt ()
    end
  in
  attempt ()

(* Remove [k]; returns false if absent. *)
let remove t ~tid k =
  Mm.enter_op t.mm ~tid;
  Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
  let rec attempt () =
    let pred, cur = find t ~tid k in
    if cur = t.tail || key t cur <> k then begin
      release t ~tid cur;
      release t ~tid pred;
      false
    end
    else begin
      let w = Mm.deref t.mm ~tid (next_addr t cur) in
      if Value.is_marked w then begin
        (* someone else is deleting it; let find clean up *)
        release t ~tid w;
        release t ~tid cur;
        release t ~tid pred;
        attempt ()
      end
      else if
        (* logical deletion: mark cur.next *)
        Mm.cas_link t.mm ~tid (next_addr t cur) ~old:w ~nw:(Value.mark w)
      then begin
        (* physical unlink: here, or by a later traversal *)
        if Mm.cas_link t.mm ~tid (next_addr t pred) ~old:cur ~nw:w then begin
          release t ~tid w;
          release t ~tid cur;
          release t ~tid pred;
          Mm.terminate t.mm ~tid cur
        end
        else begin
          release t ~tid w;
          release t ~tid cur;
          release t ~tid pred;
          (* a find pass adopts the unlink (and the terminate) *)
          let p', c' = find t ~tid k in
          release t ~tid c';
          release t ~tid p'
        end;
        true
      end
      else begin
        release t ~tid w;
        release t ~tid cur;
        release t ~tid pred;
        attempt ()
      end
    end
  in
  attempt ()

(* Quiescent ascending key list (sequential contexts only). *)
let to_list t ~tid =
  Mm.enter_op t.mm ~tid;
  Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
  let arena = Mm.arena t.mm in
  let rec go acc p =
    let w = Mm.deref t.mm ~tid (next_addr t p) in
    let u = Value.unmark w in
    if u = t.tail then begin
      release t ~tid w;
      release t ~tid p;
      List.rev acc
    end
    else begin
      (* a marked word means [p] is deleted, not [u]; include [u]
         unless [u] itself is logically deleted *)
      let un = Mm.deref t.mm ~tid (next_addr t u) in
      let deleted = Value.is_marked un in
      release t ~tid un;
      let acc =
        if deleted then acc
        else (Arena.read_data arena u 0, Arena.read_data arena u 1) :: acc
      in
      release t ~tid p;
      (* the deref reference on [u] (via [w]) transfers to the next
         iteration's [p] *)
      go acc u
    end
  in
  go [] (Mm.copy_ref t.mm ~tid t.head)

let size t ~tid = List.length (to_list t ~tid)

(* Remove every element (quiescent teardown helper). *)
let clear t ~tid =
  let rec go n =
    match to_list t ~tid with
    | [] -> n
    | kvs ->
        let removed =
          List.fold_left
            (fun acc (k, _) -> if remove t ~tid k then acc + 1 else acc)
            0 kvs
        in
        go (n + removed)
  in
  go 0
