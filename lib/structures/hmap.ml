(* Lock-free hash map: the classic construction over Michael's
   list-based sets [11] — a fixed array of ordered-set buckets, each
   an independent lock-free list, all drawing nodes from one shared
   memory manager.

   Inherits the ordered set's scheme-generality (runs on all five
   schemes) and its progress properties from the underlying manager:
   with the wait-free manager the memory operations inside every map
   operation are wait-free; the list traversal itself is lock-free, as
   in Michael's original.

   Keys are hashed with a Fibonacci multiplier; per-bucket key space
   is the full int range (the bucket stores the original key). *)

module Mm = Mm_intf

type t = {
  buckets : Oset.t array;
  mask : int;
}

(* Power-of-two bucket count. *)
let create mm ~buckets ~tid =
  if buckets < 1 || buckets land (buckets - 1) <> 0 then
    invalid_arg "Hmap.create: buckets must be a positive power of two";
  {
    buckets = Array.init buckets (fun _ -> Oset.create mm ~tid);
    mask = buckets - 1;
  }

let num_buckets t = t.mask + 1

let heads t = Array.map Oset.head t.buckets

(* Quiescent health probe: total entries, longest bucket chain and
   load factor. A chain much longer than the load factor means the
   hash is clumping; a load factor much above ~4 means the map was
   created with too few buckets for its population (the bucket count
   is fixed at [create]). *)
type probe = { entries : int; max_chain : int; load : float }

let probe t ~tid =
  let entries = ref 0 and max_chain = ref 0 in
  Array.iter
    (fun b ->
      let n = Oset.size b ~tid in
      entries := !entries + n;
      if n > !max_chain then max_chain := n)
    t.buckets;
  {
    entries = !entries;
    max_chain = !max_chain;
    load = float_of_int !entries /. float_of_int (t.mask + 1);
  }

(* Fibonacci hashing spreads consecutive keys across buckets. *)
let bucket t k =
  let h = k * 0x2545F4914F6CDD1D in
  t.buckets.((h lsr 17) land t.mask)

let insert t ~tid k v = Oset.insert (bucket t k) ~tid k v
let remove t ~tid k = Oset.remove (bucket t k) ~tid k
let mem t ~tid k = Oset.mem (bucket t k) ~tid k
let lookup t ~tid k = Oset.lookup (bucket t k) ~tid k

let size t ~tid =
  Array.fold_left (fun acc b -> acc + Oset.size b ~tid) 0 t.buckets

let to_list t ~tid =
  List.sort compare
    (Array.to_list t.buckets |> List.concat_map (fun b -> Oset.to_list b ~tid))

let clear t ~tid =
  Array.fold_left (fun acc b -> acc + Oset.clear b ~tid) 0 t.buckets
