(* Michael–Scott queue against the scheme-independent MM signature.

   Two root cells (head, tail) and a sentinel node. The dequeuer never
   moves head past tail (the standard first==last check), which keeps
   the tail link pointing at a node still in the queue — necessary for
   the HP/EBR schemes, whose safety derives from [terminate] being
   called only on unlinked nodes.

   Node layout: link 0 = next, data 0 = value. *)

module Mm = Mm_intf
module Value = Shmem.Value

type t = {
  mm : Mm.instance;
  head : Value.addr;
  tail : Value.addr;
}

let create mm ~head_root ~tail_root ~tid =
  let arena = Mm.arena mm in
  if Shmem.Layout.num_links (Shmem.Arena.layout arena) < 1 then
    invalid_arg "Queue.create: layout needs a next link";
  if Shmem.Layout.num_data (Shmem.Arena.layout arena) < 1 then
    invalid_arg "Queue.create: layout needs a value word";
  let head = Shmem.Arena.root_addr arena head_root in
  let tail = Shmem.Arena.root_addr arena tail_root in
  let dummy = Mm.alloc mm ~tid in
  Mm.store_link mm ~tid (Shmem.Arena.link_addr arena dummy 0) Value.null;
  Mm.store_link mm ~tid head dummy;
  Mm.store_link mm ~tid tail dummy;
  Mm.release mm ~tid dummy;
  { mm; head; tail }

let next_addr t p = Shmem.Arena.link_addr (Mm.arena t.mm) p 0

let enqueue t ~tid v =
  Mm.enter_op t.mm ~tid;
  Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
  let arena = Mm.arena t.mm in
  let n = Mm.alloc t.mm ~tid in
  Shmem.Arena.write_data arena n 0 v;
  Mm.store_link t.mm ~tid (next_addr t n) Value.null;
  let rec attempt () =
    let last = Mm.deref t.mm ~tid t.tail in
    let nextw = Mm.deref t.mm ~tid (next_addr t last) in
    if not (Value.is_null nextw) then begin
      (* Tail is lagging: help advance it, then retry. *)
      ignore (Mm.cas_link t.mm ~tid t.tail ~old:last ~nw:(Value.unmark nextw));
      Mm.release t.mm ~tid nextw;
      Mm.release t.mm ~tid last;
      attempt ()
    end
    else if Mm.cas_link t.mm ~tid (next_addr t last) ~old:Value.null ~nw:n
    then begin
      (* Linked; swing the tail (best effort). *)
      ignore (Mm.cas_link t.mm ~tid t.tail ~old:last ~nw:n);
      Mm.release t.mm ~tid last
    end
    else begin
      Mm.release t.mm ~tid last;
      attempt ()
    end
  in
  attempt ();
  Mm.release t.mm ~tid n

let dequeue t ~tid =
  Mm.enter_op t.mm ~tid;
  Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
  let arena = Mm.arena t.mm in
  let rec attempt () =
    let first = Mm.deref t.mm ~tid t.head in
    let last = Mm.deref t.mm ~tid t.tail in
    let nextw = Mm.deref t.mm ~tid (next_addr t first) in
    let release_all () =
      if not (Value.is_null nextw) then Mm.release t.mm ~tid nextw;
      Mm.release t.mm ~tid last;
      Mm.release t.mm ~tid first
    in
    if first = last then
      if Value.is_null nextw then begin
        release_all ();
        None
      end
      else begin
        (* Tail lagging behind a pending enqueue: help, retry. *)
        ignore
          (Mm.cas_link t.mm ~tid t.tail ~old:last ~nw:(Value.unmark nextw));
        release_all ();
        attempt ()
      end
    else if Value.is_null nextw then begin
      (* Transient: head moved under us; retry. *)
      release_all ();
      attempt ()
    end
    else begin
      let v = Shmem.Arena.read_data arena (Value.unmark nextw) 0 in
      if Mm.cas_link t.mm ~tid t.head ~old:first ~nw:(Value.unmark nextw)
      then begin
        release_all ();
        Mm.terminate t.mm ~tid first;
        Some v
      end
      else begin
        release_all ();
        attempt ()
      end
    end
  in
  attempt ()

let is_empty t ~tid =
  Mm.enter_op t.mm ~tid;
  Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
  let first = Mm.deref t.mm ~tid t.head in
  let nextw = Mm.deref t.mm ~tid (next_addr t first) in
  if not (Value.is_null nextw) then Mm.release t.mm ~tid nextw;
  Mm.release t.mm ~tid first;
  Value.is_null nextw

let drain t ~tid =
  let rec go acc = match dequeue t ~tid with
    | None -> List.rev acc
    | Some v -> go (v :: acc)
  in
  go []

(* Quiescent teardown: discard leftovers, then free the sentinel and
   null both root cells so they can host a fresh queue. After the
   drain the current sentinel is the only node left and both roots
   point at it; nulling them makes it unreachable, which licenses the
   terminate on every scheme (same ordering as [dequeue]).

   Idempotent, and tolerant of a destroyer that crashed between the
   two root stores: if the head root is already null, there is
   nothing to drain — the second call just finishes clearing the tail
   root (releasing the sentinel it may still pin) instead of
   dereferencing null. Crash-adopting teardown loops rely on being
   able to call this unconditionally. *)
let destroy t ~tid =
  let live =
    Mm.enter_op t.mm ~tid;
    Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
    let s = Mm.deref t.mm ~tid t.head in
    if Value.is_null s then false
    else begin
      Mm.release t.mm ~tid s;
      true
    end
  in
  if not live then begin
    Mm.enter_op t.mm ~tid;
    Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
    let s = Mm.deref t.mm ~tid t.tail in
    if not (Value.is_null s) then begin
      Mm.store_link t.mm ~tid t.tail Value.null;
      Mm.release t.mm ~tid s;
      Mm.terminate t.mm ~tid s
    end;
    0
  end
  else begin
    let leftovers = List.length (drain t ~tid) in
    Mm.enter_op t.mm ~tid;
    Fun.protect ~finally:(fun () -> Mm.exit_op t.mm ~tid) @@ fun () ->
    let s = Mm.deref t.mm ~tid t.head in
    Mm.store_link t.mm ~tid t.head Value.null;
    Mm.store_link t.mm ~tid t.tail Value.null;
    Mm.release t.mm ~tid s;
    Mm.terminate t.mm ~tid s;
    leftovers
  end
