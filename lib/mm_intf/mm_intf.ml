(* The common memory-manager contract.

   This is the paper's §3.2 user model, factored as a signature so the
   same data-structure code runs on the wait-free scheme (lib/core),
   the Valois-style lock-free baseline, hazard pointers, epochs and
   the lock-based strawman. The operations mirror the paper's API:

     alloc      = AllocNode          deref  = DeRefLink
     release    = ReleaseRef         copy   = FixRef(node, +2)
     cas_link   = CompareAndSwapLink (Figure 6: CAS + HelpDeRef duty)
     store_link = direct write, only valid when the old value is known
                  to be null and no update races (§3.2)
     terminate  = "this node is now fully unlinked": a no-op for
                  reference counting, the retire point for HP/EBR.

   Pointers may carry deletion-mark bits (as in the skiplist of [18]);
   managers ignore marks and operate on the underlying node. *)

exception Out_of_memory
(* Raised by [alloc] when the free-list is exhausted (paper fn. 4). *)

exception Out_of_nodes of { retries : int; waits : int }
(* Typed backpressure from the bounded-wait allocation path: the free
   store stayed empty through [retries] scan rounds and [waits]
   timed-out parks, a recovery attempt for declared-dead holders was
   made, and the caller should back off / shed load rather than block.
   Distinct from {!Out_of_memory}, which is the Sim/legacy hard
   exhaustion signal with unchanged semantics. *)

type config = {
  threads : int;      (* fixed number of participating threads (N) *)
  capacity : int;     (* number of nodes in the arena *)
  num_links : int;    (* link slots per node, released on reclaim (R3) *)
  num_data : int;     (* uninterpreted data words per node *)
  num_roots : int;    (* root link cells for the client structure *)
  backend : Atomics.Backend.t;
  (* shared-memory backend every layer below inherits: [Sim] for
     deterministic-scheduler/lincheck runs (one scheduling point per
     primitive), [Native] for hook-free Domain-parallel runs with
     contention padding. *)
  rep : Atomics.Backend.rep;
  (* cell representation every layer below inherits: [Boxed] is the
     dense [int Atomic.t] store (the only choice under [Sim]);
     [Unboxed] — the [Native] default — puts the arena, the managers'
     hot globals and the free-store heads on raw out-of-heap word
     blocks driven by C stubs. *)
  shards : int;
  (* free-store stripes for the [Native] backend. 1 = the single
     legacy free-list; > 1 splits the node range into per-domain
     stripes with padded heads and per-stripe remote-free buffers.
     Ignored (must be 1) under [Sim], whose byte-for-byte behaviour
     the deterministic scheduler and lincheck depend on. *)
  batch : int;
  (* domain-local allocation-cache batch size [B]: caches hold up to
     [2*B] nodes and grab/return them [B] at a time. 1 = no cache
     (every alloc/free goes straight to a stripe, the legacy path). *)
  defer : int;
  (* per-domain rc-buffer capacity for the deferred-rc variant: each
     thread may park up to [defer] decrements locally before a
     buffer-full flush touches the shared rc words. 0 — the default —
     is fully eager: every ReleaseRef hits the shared word at once,
     the legacy wfrc/lfrc/lockrc behaviour. *)
}

let config ?(num_links = 0) ?(num_data = 0) ?(num_roots = 0)
    ?(backend = Atomics.Backend.Sim) ?rep ?(shards = 1) ?(batch = 1)
    ?(defer = 0) ~threads ~capacity () =
  if threads < 1 then invalid_arg "Mm_intf.config: threads";
  if capacity < 1 then invalid_arg "Mm_intf.config: capacity";
  if shards < 1 then invalid_arg "Mm_intf.config: shards";
  if batch < 1 then invalid_arg "Mm_intf.config: batch";
  if defer < 0 then invalid_arg "Mm_intf.config: defer";
  if shards > capacity then invalid_arg "Mm_intf.config: shards > capacity";
  if backend = Atomics.Backend.Sim && (shards > 1 || batch > 1) then
    invalid_arg "Mm_intf.config: sharding requires the Native backend";
  let rep =
    match rep with
    | Some r -> r
    | None -> Atomics.Backend.default_rep backend
  in
  if backend = Atomics.Backend.Sim && rep = Atomics.Backend.Unboxed then
    invalid_arg "Mm_intf.config: the unboxed rep requires the Native backend";
  {
    threads;
    capacity;
    num_links;
    num_data;
    num_roots;
    backend;
    rep;
    shards;
    batch;
    defer;
  }

(* Whether a config opts into the sharded free store (stripes +
   domain-local caches). [shards = 1, batch = 1] — the default — keeps
   every manager on its legacy free-list code path. *)
let sharded cfg =
  cfg.backend = Atomics.Backend.Native && (cfg.shards > 1 || cfg.batch > 1)

(* Node lifecycle events. Every manager reports the three custody
   transitions the reclamation-safety oracle (Analysis.Reclaim) needs:

     Alloc  — the node left allocator custody: [alloc] is handing it
              to the caller (emitted after the manager has claimed it);
     Free   — the node entered allocator custody: the scheme decided
              its count/grace period allows reuse (emitted before it
              is pushed on any free store);
     Retire — the client promised the node unreachable ([terminate]
              under HP/EBR): not yet reusable, but no longer part of
              the structure.

   The listener is a process-global hook in the style of
   [Atomics.Schedpoint]: a named no-op closure by default, so the cost
   with no listener installed is one indirect call per alloc/free —
   nothing on any per-word path — and installation is detectable by
   physical equality. Listeners are installed only by Sim-side
   analysis; emission is unconditional but carries no shared state, so
   Native multi-domain runs just pay the no-op call. *)
module Events = struct
  type lifecycle = Alloc | Free | Retire

  let lifecycle_name = function
    | Alloc -> "alloc"
    | Free -> "free"
    | Retire -> "retire"

  let no_listener ~tid:(_ : int) (_ : Shmem.Value.ptr) (_ : lifecycle) = ()
  let listener = ref no_listener
  let emit ~tid node lc = !listener ~tid node lc

  let with_listener f body =
    let saved = !listener in
    listener := f;
    Fun.protect ~finally:(fun () -> listener := saved) body

  let installed () = !listener != no_listener
end

(* Fault-tolerant accounting snapshot for the post-run auditor
   (Harness.Audit). Unlike [validate]/[free_count] the [custody]
   accessor must never raise — structural damage is reported in
   [violations] — so it can be taken after a run in which threads
   crashed or were abandoned mid-operation and left announcements,
   hazard slots or half-pushed free-list nodes behind. *)
type custody = {
  free : bool array;
      (* indexed by node handle 1..capacity (slot 0 unused): the node
         is in a free store and immediately allocatable *)
  pending : (int * int) list;
      (* (tid, handle): in allocator custody but parked under that
         thread — annAlloc donations (wfrc), retired lists (hp),
         limbo bags (ebr). Reclaimable only through that thread, so a
         crashed owner strands them. *)
  pinned : (int * int) list;
      (* (tid, handle): protection published by that thread which
         blocks reclamation — hazard slots (hp), unretracted
         announcement answers (wfrc) *)
  deferred : (int * int) list;
      (* (tid, handle): a decrement parked in that thread's rc buffer
         (the deferred-rc variant). The shared count over-approximates
         the true count by 2 per entry until the owner flushes;
         duplicates are legal — one entry per outstanding decrement.
         Empty for eager schemes. *)
  violations : string list;
      (* structural damage found while walking (cycles, double
         custody); empty on a healthy snapshot *)
}

(* What one recovery pass over the declared-dead set accomplished.
   [adopted] counts nodes moved from dead-thread custody (annAlloc
   donations, retired lists, limbo bags, allocation caches) back into
   allocator circulation; [released] counts surplus references dropped
   on dead threads' behalf (each may cascade and reclaim several
   nodes); [cleared] counts per-thread metadata slots wiped
   (announcement-pool rows, hazard slots, epoch pins, a held lock). *)
type recovery = { adopted : int; released : int; cleared : int }

let no_recovery = { adopted = 0; released = 0; cleared = 0 }

(* Shared recovery analysis for the reference-counting schemes
   (wfrc/lfrc/lockrc). At quiescence, with the survivors drained and
   the dead threads' published metadata already cleared, every
   remaining reference anomaly is attributable to a crashed thread
   (the same attribution argument as Harness.Audit):

     even count above the 2-per-link inbound share
                      — the dead thread still holds references it
                        acquired; drop them one release at a time, so
                        the scheme's own reclamation cascade runs;
     odd count, unreachable, no inbound
                      — crashed inside ReleaseRef/FreeNode after the
                        R2 claim (possibly with the F3 donation
                        inflation); finish the free it never completed;
     zero count, unreachable, no inbound
                      — crashed between the R1 decrement and the R2
                        claim; same revival.

   [next] re-analyses from scratch and returns one action, or [None]
   at the fixpoint; [run] drives actions to the fixpoint with a
   budget. One action per analysis round keeps the walk sound while
   release cascades rewrite the free set underneath it — recovery is
   rare and quiescent, so the O(anomalies * capacity) cost is fine.
   Revival is gated on zero inbound links: forcing the claimed count
   while another (crash-held) node still links to the victim would
   corrupt the count when that linker is later reclaimed, so such
   nodes wait for their linkers' cascades to resolve first. *)
module Rc_anomaly = struct
  module Value = Shmem.Value
  module Arena = Shmem.Arena

  type action =
    | Drop_excess of Value.ptr (* release one surplus reference *)
    | Revive of Value.ptr      (* finish a crashed thread's free *)

  let next ~arena ~free ~is_pending =
    let cap = Arena.capacity arena in
    let num_links = Shmem.Layout.num_links (Arena.layout arena) in
    let is_free h = h >= 1 && h <= cap && free.(h) in
    let skip h = is_free h || is_pending h in
    let reach = Array.make (cap + 1) false in
    let rec visit h =
      if h >= 1 && h <= cap && (not (is_free h)) && not reach.(h) then begin
        reach.(h) <- true;
        let p = Value.of_handle h in
        for i = 0 to num_links - 1 do
          let v = Arena.read_link arena p i in
          if not (Value.is_null v) then visit (Value.handle (Value.unmark v))
        done
      end
    in
    let inbound = Array.make (cap + 1) 0 in
    let count v =
      if not (Value.is_null v) then begin
        let h = Value.handle (Value.unmark v) in
        if h >= 1 && h <= cap then inbound.(h) <- inbound.(h) + 2
      end
    in
    for r = 0 to Arena.num_roots arena - 1 do
      let v = Arena.read arena (Arena.root_addr arena r) in
      if not (Value.is_null v) then visit (Value.handle (Value.unmark v));
      count v
    done;
    for h = 1 to cap do
      if not (skip h) then
        let p = Value.of_handle h in
        for i = 0 to num_links - 1 do
          count (Arena.read_link arena p i)
        done
    done;
    let found = ref None in
    (try
       for h = 1 to cap do
         if not (skip h) then begin
           let r = Arena.read_mm_ref arena (Value.of_handle h) in
           if r land 1 = 0 && r > inbound.(h) then begin
             found := Some (Drop_excess (Value.of_handle h));
             raise Exit
           end
         end
       done;
       for h = 1 to cap do
         if (not (skip h)) && (not reach.(h)) && inbound.(h) = 0 then begin
           let r = Arena.read_mm_ref arena (Value.of_handle h) in
           if r land 1 = 1 || r = 0 then begin
             found := Some (Revive (Value.of_handle h));
             raise Exit
           end
         end
       done
     with Exit -> ());
    !found

  (* Drive to the fixpoint. [custody] must re-snapshot (the free set
     moves under the cascades); [release]/[revive] are the scheme's
     callbacks. Returns [(revived, releases)]. *)
  let run ~arena ~custody ~release ~revive =
    let cap = Arena.capacity arena in
    let budget = ref ((4 * cap) + 16) in
    let revived = ref 0 and releases = ref 0 in
    let continue_ = ref true in
    while !continue_ && !budget > 0 do
      decr budget;
      let (c : custody) = custody () in
      let pend = Array.make (cap + 1) false in
      List.iter
        (fun ((_ : int), h) -> if h >= 1 && h <= cap then pend.(h) <- true)
        c.pending;
      match next ~arena ~free:c.free ~is_pending:(fun h -> pend.(h)) with
      | None -> continue_ := false
      | Some (Drop_excess p) ->
          incr releases;
          release p
      | Some (Revive p) ->
          incr revived;
          revive p
    done;
    (!revived, !releases)
end

(* Orphan sweep for the non-refcounted schemes (hp/ebr). A thread
   that crashes between unlinking a node and retiring it leaves the
   node unreachable, in no custody record, and — with no reference
   count — carrying no anomaly that could flag it: normal operation
   can never reclaim it. At recovery time the premises are exactly
   the auditor's (quiescent instance, survivors drained, dead
   declared), so any node that is neither free, nor reachable from
   the roots, nor claimed by [keep] (retired lists, limbo bags,
   published pins) is unreclaimable garbage the adopter may free.
   [sweep] marks from the roots and hands each such node to
   [reclaim]; returns how many it freed. *)
module Orphan = struct
  module Value = Shmem.Value
  module Arena = Shmem.Arena

  let sweep ~arena ~free ~keep ~reclaim =
    let cap = Arena.capacity arena in
    let num_links = Shmem.Layout.num_links (Arena.layout arena) in
    let is_free h = h >= 1 && h <= cap && free.(h) in
    let reach = Array.make (cap + 1) false in
    let rec visit h =
      if h >= 1 && h <= cap && (not (is_free h)) && not reach.(h) then begin
        reach.(h) <- true;
        let p = Value.of_handle h in
        for i = 0 to num_links - 1 do
          let v = Arena.read_link arena p i in
          if not (Value.is_null v) then visit (Value.handle (Value.unmark v))
        done
      end
    in
    for r = 0 to Arena.num_roots arena - 1 do
      let v = Arena.read arena (Arena.root_addr arena r) in
      if not (Value.is_null v) then visit (Value.handle (Value.unmark v))
    done;
    let n = ref 0 in
    for h = 1 to cap do
      if (not (is_free h)) && (not reach.(h)) && not (keep h) then begin
        incr n;
        reclaim (Value.of_handle h)
      end
    done;
    !n
end

let recovery_add a b =
  {
    adopted = a.adopted + b.adopted;
    released = a.released + b.released;
    cleared = a.cleared + b.cleared;
  }

module type S = sig
  type t

  val name : string
  (** Short scheme identifier used in reports ("wfrc", "lfrc", ...). *)

  val refcounted : bool
  (** Whether the scheme tracks per-node reference counts in the
      arena's [mm_ref] word with the shared two-units-per-reference
      convention (wfrc/lfrc/lockrc). The auditor only runs refcount
      conservation checks on such schemes. *)

  val create : config -> t
  (** Build the manager; all [capacity] nodes start free. *)

  val config : t -> config
  val arena : t -> Shmem.Arena.t
  val counters : t -> Atomics.Counters.t

  val enter_op : t -> tid:int -> unit
  (** Bracket opening a client data-structure operation. No-op for
      reference-counting schemes; EBR pins its epoch here. *)

  val exit_op : t -> tid:int -> unit
  (** Bracket closing an operation; HP clears slots, EBR unpins. *)

  val alloc : t -> tid:int -> Shmem.Value.ptr
  (** The paper's [AllocNode]: a fresh node holding one reference owned
      by the caller. Raises {!Out_of_memory} when exhausted. *)

  val deref : t -> tid:int -> Shmem.Value.addr -> int
  (** The paper's [DeRefLink]: read link and acquire a guaranteed-safe
      reference to the node it points to. The result is the raw word
      (possibly null, possibly mark-tagged). *)

  val release : t -> tid:int -> Shmem.Value.ptr -> unit
  (** The paper's [ReleaseRef]; accepts null (no-op) and marked
      pointers (mark ignored). *)

  val copy_ref : t -> tid:int -> Shmem.Value.ptr -> Shmem.Value.ptr
  (** Duplicate a held reference (the paper's [FixRef(node, 2)]);
      returns its argument for convenience. Null is a no-op. *)

  val cas_link :
    t -> tid:int -> Shmem.Value.addr -> old:int -> nw:int -> bool
  (** The paper's [CompareAndSwapLink] (Figure 6): CAS the link and, on
      success, perform the scheme's post-update duty (for WFRC,
      [HelpDeRef]). The {e link's own} reference is managed internally:
      on success, reference-counting schemes transfer the link's share
      from [old] to [nw] (FixRef(+2) on [nw] before the CAS, release of
      [old]'s share after the help). The caller must hold its own
      reference on [nw] across the call and remains responsible only
      for the references it acquired itself via [alloc]/[deref]/
      [copy_ref]. *)

  val store_link : t -> tid:int -> Shmem.Value.addr -> Shmem.Value.ptr -> unit
  (** Plain link write, legal only when no concurrent update can race
      (private nodes, initialisation — §3.2). Manages the link's share
      like {!cas_link}: acquires a share on the new value and releases
      the share held through the previous value, so it can also be
      used to clear or re-point private link slots. *)

  val terminate : t -> tid:int -> Shmem.Value.ptr -> unit
  (** Client promise: the node is no longer reachable from the
      structure's links. Reference-counting schemes ignore this;
      HP/EBR use it as the retire point. *)

  val make_immortal : t -> tid:int -> Shmem.Value.ptr -> unit
  (** Declare a freshly allocated node a permanent sentinel: it will
      never be unlinked, released or terminated. Reference-counting
      schemes keep the allocation reference (no-op); hazard pointers
      drop the hazard slot (the node needs no protection since it is
      never retired). Call at structure-creation time only. *)

  val validate : t -> unit
  (** Quiescent invariant check (single-threaded): raises
      [Failure _] describing the first violated invariant. *)

  val free_count : t -> int
  (** Quiescent count of nodes currently free (reachable by the
      allocator). For conservation tests. *)

  val custody : t -> custody
  (** Quiescent custody snapshot for the auditor. Never raises, even
      when crashed threads left the scheme's metadata non-quiescent
      (live announcements, published hazards, a held lock). *)

  val declare_dead : t -> tid:int -> unit
  (** Declare thread [tid] permanently dead: it will never run another
      operation. Idempotent. The declaration is consulted by
      {!recover} and by the bounded-wait allocation path (which may
      adopt dead threads' allocation caches under pressure). Like the
      auditor protocol, the caller guarantees the tid really has
      stopped — this is a harness/supervisor-level declaration, not
      something the scheme can detect on its own. *)

  val dead : t -> int list
  (** Sorted tids declared dead so far. *)

  val recover : t -> tid:int -> recovery
  (** Adopt the declared-dead threads' state from surviving thread
      [tid]: clear their published metadata (announcement-pool rows,
      hazard slots, epoch pins, a held lock), re-run the scheme's
      release protocol on references they still held, and drain their
      parked nodes (annAlloc donations, retired lists, limbo bags,
      per-thread caches) back into circulation. Quiescent-survivors
      protocol, same as {!custody}/{!validate}: call it after the
      surviving threads have drained, from a single thread. Idempotent
      — a second pass finds nothing left to adopt. *)
end

(* First-class packaging so the harness can treat schemes uniformly. *)

module type INSTANCE = sig
  module M : S

  val it : M.t
end

type instance = (module INSTANCE)

let instantiate (module M : S) cfg : instance =
  (module struct
    module M = M

    let it = M.create cfg
  end)

let name (module I : INSTANCE) = I.M.name
let arena (module I : INSTANCE) = I.M.arena I.it
let counters (module I : INSTANCE) = I.M.counters I.it
let conf (module I : INSTANCE) = I.M.config I.it
let enter_op (module I : INSTANCE) ~tid = I.M.enter_op I.it ~tid
let exit_op (module I : INSTANCE) ~tid = I.M.exit_op I.it ~tid
let alloc (module I : INSTANCE) ~tid = I.M.alloc I.it ~tid
let deref (module I : INSTANCE) ~tid addr = I.M.deref I.it ~tid addr
let release (module I : INSTANCE) ~tid p = I.M.release I.it ~tid p
let copy_ref (module I : INSTANCE) ~tid p = I.M.copy_ref I.it ~tid p

let cas_link (module I : INSTANCE) ~tid addr ~old ~nw =
  I.M.cas_link I.it ~tid addr ~old ~nw

let store_link (module I : INSTANCE) ~tid addr p =
  I.M.store_link I.it ~tid addr p

let terminate (module I : INSTANCE) ~tid p = I.M.terminate I.it ~tid p
let declare_dead (module I : INSTANCE) ~tid = I.M.declare_dead I.it ~tid
let dead (module I : INSTANCE) = I.M.dead I.it
let recover (module I : INSTANCE) ~tid = I.M.recover I.it ~tid
let make_immortal (module I : INSTANCE) ~tid p = I.M.make_immortal I.it ~tid p
let validate (module I : INSTANCE) = I.M.validate I.it
let free_count (module I : INSTANCE) = I.M.free_count I.it
let custody (module I : INSTANCE) = I.M.custody I.it
let refcounted (module I : INSTANCE) = I.M.refcounted
