(* The common memory-manager contract.

   This is the paper's §3.2 user model, factored as a signature so the
   same data-structure code runs on the wait-free scheme (lib/core),
   the Valois-style lock-free baseline, hazard pointers, epochs and
   the lock-based strawman. The operations mirror the paper's API:

     alloc      = AllocNode          deref  = DeRefLink
     release    = ReleaseRef         copy   = FixRef(node, +2)
     cas_link   = CompareAndSwapLink (Figure 6: CAS + HelpDeRef duty)
     store_link = direct write, only valid when the old value is known
                  to be null and no update races (§3.2)
     terminate  = "this node is now fully unlinked": a no-op for
                  reference counting, the retire point for HP/EBR.

   Pointers may carry deletion-mark bits (as in the skiplist of [18]);
   managers ignore marks and operate on the underlying node. *)

exception Out_of_memory
(* Raised by [alloc] when the free-list is exhausted (paper fn. 4). *)

type config = {
  threads : int;      (* fixed number of participating threads (N) *)
  capacity : int;     (* number of nodes in the arena *)
  num_links : int;    (* link slots per node, released on reclaim (R3) *)
  num_data : int;     (* uninterpreted data words per node *)
  num_roots : int;    (* root link cells for the client structure *)
  backend : Atomics.Backend.t;
  (* shared-memory backend every layer below inherits: [Sim] for
     deterministic-scheduler/lincheck runs (one scheduling point per
     primitive), [Native] for hook-free Domain-parallel runs with
     contention padding. *)
  rep : Atomics.Backend.rep;
  (* cell representation every layer below inherits: [Boxed] is the
     dense [int Atomic.t] store (the only choice under [Sim]);
     [Unboxed] — the [Native] default — puts the arena, the managers'
     hot globals and the free-store heads on raw out-of-heap word
     blocks driven by C stubs. *)
  shards : int;
  (* free-store stripes for the [Native] backend. 1 = the single
     legacy free-list; > 1 splits the node range into per-domain
     stripes with padded heads and per-stripe remote-free buffers.
     Ignored (must be 1) under [Sim], whose byte-for-byte behaviour
     the deterministic scheduler and lincheck depend on. *)
  batch : int;
  (* domain-local allocation-cache batch size [B]: caches hold up to
     [2*B] nodes and grab/return them [B] at a time. 1 = no cache
     (every alloc/free goes straight to a stripe, the legacy path). *)
}

let config ?(num_links = 0) ?(num_data = 0) ?(num_roots = 0)
    ?(backend = Atomics.Backend.Sim) ?rep ?(shards = 1) ?(batch = 1) ~threads
    ~capacity () =
  if threads < 1 then invalid_arg "Mm_intf.config: threads";
  if capacity < 1 then invalid_arg "Mm_intf.config: capacity";
  if shards < 1 then invalid_arg "Mm_intf.config: shards";
  if batch < 1 then invalid_arg "Mm_intf.config: batch";
  if shards > capacity then invalid_arg "Mm_intf.config: shards > capacity";
  if backend = Atomics.Backend.Sim && (shards > 1 || batch > 1) then
    invalid_arg "Mm_intf.config: sharding requires the Native backend";
  let rep =
    match rep with
    | Some r -> r
    | None -> Atomics.Backend.default_rep backend
  in
  if backend = Atomics.Backend.Sim && rep = Atomics.Backend.Unboxed then
    invalid_arg "Mm_intf.config: the unboxed rep requires the Native backend";
  {
    threads;
    capacity;
    num_links;
    num_data;
    num_roots;
    backend;
    rep;
    shards;
    batch;
  }

(* Whether a config opts into the sharded free store (stripes +
   domain-local caches). [shards = 1, batch = 1] — the default — keeps
   every manager on its legacy free-list code path. *)
let sharded cfg =
  cfg.backend = Atomics.Backend.Native && (cfg.shards > 1 || cfg.batch > 1)

(* Node lifecycle events. Every manager reports the three custody
   transitions the reclamation-safety oracle (Analysis.Reclaim) needs:

     Alloc  — the node left allocator custody: [alloc] is handing it
              to the caller (emitted after the manager has claimed it);
     Free   — the node entered allocator custody: the scheme decided
              its count/grace period allows reuse (emitted before it
              is pushed on any free store);
     Retire — the client promised the node unreachable ([terminate]
              under HP/EBR): not yet reusable, but no longer part of
              the structure.

   The listener is a process-global hook in the style of
   [Atomics.Schedpoint]: a named no-op closure by default, so the cost
   with no listener installed is one indirect call per alloc/free —
   nothing on any per-word path — and installation is detectable by
   physical equality. Listeners are installed only by Sim-side
   analysis; emission is unconditional but carries no shared state, so
   Native multi-domain runs just pay the no-op call. *)
module Events = struct
  type lifecycle = Alloc | Free | Retire

  let lifecycle_name = function
    | Alloc -> "alloc"
    | Free -> "free"
    | Retire -> "retire"

  let no_listener ~tid:(_ : int) (_ : Shmem.Value.ptr) (_ : lifecycle) = ()
  let listener = ref no_listener
  let emit ~tid node lc = !listener ~tid node lc

  let with_listener f body =
    let saved = !listener in
    listener := f;
    Fun.protect ~finally:(fun () -> listener := saved) body

  let installed () = !listener != no_listener
end

(* Fault-tolerant accounting snapshot for the post-run auditor
   (Harness.Audit). Unlike [validate]/[free_count] the [custody]
   accessor must never raise — structural damage is reported in
   [violations] — so it can be taken after a run in which threads
   crashed or were abandoned mid-operation and left announcements,
   hazard slots or half-pushed free-list nodes behind. *)
type custody = {
  free : bool array;
      (* indexed by node handle 1..capacity (slot 0 unused): the node
         is in a free store and immediately allocatable *)
  pending : (int * int) list;
      (* (tid, handle): in allocator custody but parked under that
         thread — annAlloc donations (wfrc), retired lists (hp),
         limbo bags (ebr). Reclaimable only through that thread, so a
         crashed owner strands them. *)
  pinned : (int * int) list;
      (* (tid, handle): protection published by that thread which
         blocks reclamation — hazard slots (hp), unretracted
         announcement answers (wfrc) *)
  violations : string list;
      (* structural damage found while walking (cycles, double
         custody); empty on a healthy snapshot *)
}

module type S = sig
  type t

  val name : string
  (** Short scheme identifier used in reports ("wfrc", "lfrc", ...). *)

  val refcounted : bool
  (** Whether the scheme tracks per-node reference counts in the
      arena's [mm_ref] word with the shared two-units-per-reference
      convention (wfrc/lfrc/lockrc). The auditor only runs refcount
      conservation checks on such schemes. *)

  val create : config -> t
  (** Build the manager; all [capacity] nodes start free. *)

  val config : t -> config
  val arena : t -> Shmem.Arena.t
  val counters : t -> Atomics.Counters.t

  val enter_op : t -> tid:int -> unit
  (** Bracket opening a client data-structure operation. No-op for
      reference-counting schemes; EBR pins its epoch here. *)

  val exit_op : t -> tid:int -> unit
  (** Bracket closing an operation; HP clears slots, EBR unpins. *)

  val alloc : t -> tid:int -> Shmem.Value.ptr
  (** The paper's [AllocNode]: a fresh node holding one reference owned
      by the caller. Raises {!Out_of_memory} when exhausted. *)

  val deref : t -> tid:int -> Shmem.Value.addr -> int
  (** The paper's [DeRefLink]: read link and acquire a guaranteed-safe
      reference to the node it points to. The result is the raw word
      (possibly null, possibly mark-tagged). *)

  val release : t -> tid:int -> Shmem.Value.ptr -> unit
  (** The paper's [ReleaseRef]; accepts null (no-op) and marked
      pointers (mark ignored). *)

  val copy_ref : t -> tid:int -> Shmem.Value.ptr -> Shmem.Value.ptr
  (** Duplicate a held reference (the paper's [FixRef(node, 2)]);
      returns its argument for convenience. Null is a no-op. *)

  val cas_link :
    t -> tid:int -> Shmem.Value.addr -> old:int -> nw:int -> bool
  (** The paper's [CompareAndSwapLink] (Figure 6): CAS the link and, on
      success, perform the scheme's post-update duty (for WFRC,
      [HelpDeRef]). The {e link's own} reference is managed internally:
      on success, reference-counting schemes transfer the link's share
      from [old] to [nw] (FixRef(+2) on [nw] before the CAS, release of
      [old]'s share after the help). The caller must hold its own
      reference on [nw] across the call and remains responsible only
      for the references it acquired itself via [alloc]/[deref]/
      [copy_ref]. *)

  val store_link : t -> tid:int -> Shmem.Value.addr -> Shmem.Value.ptr -> unit
  (** Plain link write, legal only when no concurrent update can race
      (private nodes, initialisation — §3.2). Manages the link's share
      like {!cas_link}: acquires a share on the new value and releases
      the share held through the previous value, so it can also be
      used to clear or re-point private link slots. *)

  val terminate : t -> tid:int -> Shmem.Value.ptr -> unit
  (** Client promise: the node is no longer reachable from the
      structure's links. Reference-counting schemes ignore this;
      HP/EBR use it as the retire point. *)

  val make_immortal : t -> tid:int -> Shmem.Value.ptr -> unit
  (** Declare a freshly allocated node a permanent sentinel: it will
      never be unlinked, released or terminated. Reference-counting
      schemes keep the allocation reference (no-op); hazard pointers
      drop the hazard slot (the node needs no protection since it is
      never retired). Call at structure-creation time only. *)

  val validate : t -> unit
  (** Quiescent invariant check (single-threaded): raises
      [Failure _] describing the first violated invariant. *)

  val free_count : t -> int
  (** Quiescent count of nodes currently free (reachable by the
      allocator). For conservation tests. *)

  val custody : t -> custody
  (** Quiescent custody snapshot for the auditor. Never raises, even
      when crashed threads left the scheme's metadata non-quiescent
      (live announcements, published hazards, a held lock). *)
end

(* First-class packaging so the harness can treat schemes uniformly. *)

module type INSTANCE = sig
  module M : S

  val it : M.t
end

type instance = (module INSTANCE)

let instantiate (module M : S) cfg : instance =
  (module struct
    module M = M

    let it = M.create cfg
  end)

let name (module I : INSTANCE) = I.M.name
let arena (module I : INSTANCE) = I.M.arena I.it
let counters (module I : INSTANCE) = I.M.counters I.it
let conf (module I : INSTANCE) = I.M.config I.it
let enter_op (module I : INSTANCE) ~tid = I.M.enter_op I.it ~tid
let exit_op (module I : INSTANCE) ~tid = I.M.exit_op I.it ~tid
let alloc (module I : INSTANCE) ~tid = I.M.alloc I.it ~tid
let deref (module I : INSTANCE) ~tid addr = I.M.deref I.it ~tid addr
let release (module I : INSTANCE) ~tid p = I.M.release I.it ~tid p
let copy_ref (module I : INSTANCE) ~tid p = I.M.copy_ref I.it ~tid p

let cas_link (module I : INSTANCE) ~tid addr ~old ~nw =
  I.M.cas_link I.it ~tid addr ~old ~nw

let store_link (module I : INSTANCE) ~tid addr p =
  I.M.store_link I.it ~tid addr p

let terminate (module I : INSTANCE) ~tid p = I.M.terminate I.it ~tid p
let make_immortal (module I : INSTANCE) ~tid p = I.M.make_immortal I.it ~tid p
let validate (module I : INSTANCE) = I.M.validate I.it
let free_count (module I : INSTANCE) = I.M.free_count I.it
let custody (module I : INSTANCE) = I.M.custody I.it
let refcounted (module I : INSTANCE) = I.M.refcounted
