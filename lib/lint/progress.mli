(** Static progress analyzer: bounded-step (wait-freedom) checking.

    Files carrying a floating
    [[@@@wfrc.progress "wait_free"|"lock_free"|"blocking"]] attribute
    enter the analysis. Every loop and recursion cycle in them is
    classified (statically bounded, helping-bounded, cas-retry,
    unbounded), summaries propagate over the call graph, and any
    top-level function whose worst reachable cycle exceeds the file's
    declared contract is a violation.

    Per-binding annotations:
    - [[@@wfrc.bounded "evidence"]] — trusted axiom: the cycle is
      bounded for the stated reason (printed as evidence).
    - [[@@wfrc.expect_unbounded "reason"]] — asserts the function
      still contains an unbounded/retry cycle; a regression to
      bounded is itself a violation (the lock-free baselines must
      keep measuring what the paper compares against). *)

type level = Bounded | Helping | Retry | Unbounded
type contract = Wait_free | Lock_free | Blocking

val level_rank : level -> int
val level_name : level -> string
val contract_name : contract -> string

val contract_allows : contract -> level
(** The worst level a contract admits. *)

type cls = {
  c_file : string;
  c_func : string;
  c_line : int;
  c_kind : string;  (** "for" | "while" | "recursion" | "mutual-recursion" *)
  c_level : level;
  c_evidence : string;
}

type violation = { v_file : string; v_line : int; v_msg : string }

type report = {
  files : (string * contract) list;  (** analyzed files and contracts *)
  classifications : cls list;  (** every cycle, with evidence *)
  expectations : (string * string * bool) list;
      (** (file, function, satisfied) per [expect_unbounded] *)
  violations : violation list;
}

val analyze : roots:string list -> report
val pp_cls : cls -> string
