(** [wfrc_lint]: a parse-tree protocol checker for the reclamation
    API, run over the source tree in CI. Organised as a registry of
    passes (select with {!run_passes}, or run them all with {!run}).

    Passes and the rules they emit:
    - [protocol] —
      {ul
      {- [unbalanced-deref]: an identifier bound from
         [deref]/[alloc]/[copy_ref] must be discharged on every
         non-exceptional path: released ([release]/[terminate]/
         [make_immortal]), returned, stored, or handed to a
         {e consuming} function. Consumption is interprocedural:
         every function defined in the scanned tree carries a
         computed per-parameter consume/borrow summary (least
         fixpoint over the call graph), so handing a reference to an
         in-tree borrowing helper does {e not} discharge it. The
         accessor-name allowlist survives only as the fallback for
         callees outside the scan. The null-guard idiom
         [if not (is_null w) then ... release w ...] is understood.}
      {- [raw-primitives]: [Primitives], [Freestore] and [Words] may
         only be named inside the layers that own them; client code
         must go through [Mm_intf].}
      {- [parse]: a file that does not parse.}}
    - [counter-coverage] — every constructor of [Counters.event] must
      be constructed somewhere in the scanned tree ([.ml]
      constructors, or whole-word token occurrences in [.c] stubs —
      the park/futex paths may bump counters from C): a counter
      nobody can ever increment is dead telemetry.
    - [stub-ordering] — every [__atomic_*] call site in the scanned
      [.c] files must use memory orders the declared
      {!atomic_ordering_table} admits (today: [SEQ_CST]
      everywhere). Relaxing an ordering means editing the table —
      the contract any future perf work must touch explicitly.
    - [progress] — the static wait-freedom checker ({!Progress}):
      contract violations surface with rule ["progress"].

    The checks are purely syntactic (no typing), so they
    under-approximate: aliasing through data structures is not
    tracked. They are designed to be quiet on correct idiomatic code
    and loud on the protocol mistakes the paper's user model (§3.2)
    forbids. *)

module Progress = Progress
(** The static wait-freedom analyzer, re-exported ([lint] is a
    wrapped library: clients reach it as [Lint.Progress]). *)

type violation = { file : string; line : int; rule : string; msg : string }

val passes : (string * string) list
(** Registered pass names with one-line descriptions. *)

val pass_names : string list

val atomic_ordering_table : (string * string list) list
(** The declared ordering contract for the C stubs: builtin suffix
    (["*"] = default row) to admitted [__ATOMIC_*] tokens. *)

val run_passes :
  passes:string list -> roots:string list -> violation list
(** Run the selected passes over every [.ml]/[.c] file under [roots]
    (files or directories, recursively; [_build] and dot-directories
    are skipped) and return all violations, sorted by file and line.
    @raise Invalid_argument on an unknown pass name. *)

val run : roots:string list -> violation list
(** All registered passes. *)

val to_string : violation -> string
(** ["file:line: [rule] message"] — one line per violation. *)
