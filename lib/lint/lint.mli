(** [wfrc_lint]: a parse-tree protocol checker for the reclamation
    API, run over the source tree in CI.

    Rules:
    - [unbalanced-deref] — an identifier bound from
      [deref]/[alloc]/[copy_ref] must be discharged on every
      non-exceptional path: released ([release]/[terminate]/
      [make_immortal]), returned, stored, or handed to another
      function (ownership transfer). The null-guard idiom
      [if not (is_null w) then ... release w ...] is understood.
    - [raw-primitives] — [Primitives] and [Freestore] may only be
      named inside the memory managers and the shmem/atomics layers;
      client code must go through [Mm_intf].
    - [counter-coverage] — every constructor of [Counters.event] must
      be constructed somewhere in the scanned tree: a counter nobody
      can ever increment is dead telemetry.
    - [parse] — a file that does not parse.

    The checks are purely syntactic (no typing), so they
    under-approximate: aliases and flow through data structures are
    not tracked. They are designed to be quiet on correct idiomatic
    code and loud on the protocol mistakes the paper's user model
    (§3.2) forbids. *)

type violation = { file : string; line : int; rule : string; msg : string }

val run : roots:string list -> violation list
(** Scan every [.ml] file under [roots] (files or directories,
    recursively; [_build] and dot-directories are skipped) and return
    all violations, sorted by file and line. *)

val to_string : violation -> string
(** ["file:line: [rule] message"] — one line per violation. *)
