(* A parse-tree protocol checker for the reclamation API.

   The paper's user model (§3.2) imposes discipline the type system
   cannot see: every reference acquired through DeRefLink/AllocNode
   must be released, and clients must never reach around the manager
   to the raw shared-memory primitives. This library walks parsetrees
   (compiler-libs, no typing) and enforces the syntactic shadow of
   those rules.

   It is organised as a registry of passes:

   - [protocol]        — ownership balance (interprocedural) and the
                         raw-primitives layering rules.
   - [counter-coverage]— every Counters.event constructor is live
                         somewhere (.ml or the C stubs).
   - [stub-ordering]   — every __atomic_* call site in the C stubs
                         uses a memory order the declared table
                         admits (today: SEQ_CST everywhere).
   - [progress]        — the static wait-freedom checker (Progress).

   Ownership checking is interprocedural: every function defined in
   the scanned tree gets a per-parameter summary (does the callee
   consume the reference — release it, return it, store it — or
   merely borrow it?), computed as a least fixpoint over the call
   graph. A reference handed to an in-tree *borrowing* helper is NOT
   discharged; the old accessor-name allowlist survives only as the
   fallback for callees outside the scan (stdlib, other libraries). *)

open Parsetree

module Progress = Progress
(* re-export: [lint] is a wrapped library whose interface module is
   [Lint]; clients reach the analyzer as [Lint.Progress]. *)

type violation = { file : string; line : int; rule : string; msg : string }

let to_string v = Printf.sprintf "%s:%d: [%s] %s" v.file v.line v.rule v.msg

(* ---------------- Names ------------------------------------------- *)

let fn_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.last txt)
  | _ -> None

(* The acquiring operations of Mm_intf: their result carries a
   reference the caller owes back. *)
let acquire_fns = [ "deref"; "alloc"; "copy_ref" ]

(* Discharging operations: the reference obligation ends here. *)
let release_fns = [ "release"; "terminate"; "make_immortal"; "release_ref" ]

(* Buffered release (DESIGN.md §6.3): [defer_release] parks the
   decrement in a per-thread rc buffer, which discharges the caller's
   obligation — but only in a file that can also flush that buffer.
   A file that buffers without ever naming a flush site parks the
   decrement forever, so the reference is never actually returned. *)
let buffer_fns = [ "defer_release" ]
let flush_fns = [ "flush"; "flush_all"; "rc_flush" ]

(* CAS-publish hand-off points: on success the reference moves into a
   shared slot (the H6 answer CAS); on failure it stays with the
   caller, who must release on that branch (H7 does). A per-parameter
   consume/borrow bit cannot express outcome-conditional transfer, so
   these few audited sites are declared rather than inferred. *)
let transfer_fns = [ "answer_cas" ]

(* Read-through accessors: a reference passed to one of these is
   used, not consumed — the obligation stays with the caller. This
   includes cas_link/store_link, whose link share is managed
   internally by the scheme (Mm_intf): linking a node does NOT
   discharge the caller's own reference.

   Since the ownership pass went interprocedural this list is only
   the fallback for callees defined *outside* the scanned tree;
   in-tree helpers carry computed summaries instead. *)
let accessor_fns =
  [
    "read"; "write"; "cas"; "faa"; "swap"; "read_data"; "write_data";
    "read_link"; "write_link"; "read_mm_ref"; "faa_mm_ref"; "cas_mm_ref";
    "read_mm_next"; "write_mm_next"; "mm_ref_addr"; "mm_next_addr";
    "link_addr"; "data_addr"; "node_base"; "dump_node"; "cas_link";
    "store_link"; "is_null"; "is_marked"; "mark"; "unmark"; "handle";
    "same_node"; "pp_ptr"; "pp_word"; "ignore"; "not"; "incr"; "decr";
  ]

(* Calls that abort the path: the obligation is excused on
   exceptional exits. *)
let abort_fns = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "failf" ]

(* ---------------- Expression queries ------------------------------ *)

exception Found

let mentions v e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } when x = v ->
              raise Found
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  try
    it.expr it e;
    false
  with Found -> true

(* [if not (is_null v) then ...]: the null-guard idiom. The branch
   where [v] is null carries no obligation, so a release in either
   arm discharges. *)
let null_guard v cond =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args)
            when fn_name f = Some "is_null"
                 && List.exists (fun (_, a) -> mentions v a) args ->
              raise Found
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  try
    it.expr it cond;
    false
  with Found -> true

(* ---------------- Ownership summaries ------------------------------ *)

(* One scanned function: where it lives, its parameters (label +
   variable), its body, and the computed per-parameter consume flags.
   [consumes.(i)] starts false (borrowing) and monotonically flips to
   true as the fixpoint proves the body discharges parameter i. *)
type fsum = {
  f_params : (string option * string) list;
  f_body : expression;
  f_flushes : bool;
  f_consumes : bool array;
}

type summaries = {
  (* (file, function) -> summary *)
  by_key : (string * string, fsum) Hashtbl.t;
  (* Module name -> file, for cross-file resolution; modules whose
     basename is ambiguous in the scan are absent (fallback rules
     apply to them). *)
  mod_file : (string, string) Hashtbl.t;
}

let rec strip_params acc e =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, pat, body) ->
      let var =
        match pat.ppat_desc with
        | Ppat_var { txt; _ } -> txt
        | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> txt
        | _ -> "_"
      in
      let lbl =
        match lbl with
        | Asttypes.Nolabel -> None
        | Asttypes.Labelled l | Asttypes.Optional l -> Some l
      in
      strip_params ((lbl, var) :: acc) body
  | Pexp_newtype (_, body) -> strip_params acc body
  | _ -> (List.rev acc, e)

(* Resolve an applied function expression to an in-tree summary.
   [Lident f] resolves in the same file; [Ldot (M, f)] through the
   module map. *)
let resolve_callee summaries ~file f =
  match f.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } ->
      Hashtbl.find_opt summaries.by_key (file, n)
  | Pexp_ident { txt = Longident.Ldot (path, n); _ } -> (
      let rec last_mod = function
        | Longident.Lident m -> m
        | Longident.Ldot (_, m) -> m
        | Longident.Lapply (_, r) -> last_mod r
      in
      match Hashtbl.find_opt summaries.mod_file (last_mod path) with
      | Some f' -> Hashtbl.find_opt summaries.by_key (f', n)
      | None -> None)
  | _ -> None

(* Does the call [args] against [callee] consume [v]? Every argument
   mentioning [v] is matched to its parameter (by label, then by
   positional index); consumption happens iff some such parameter has
   a true consume flag, or [v] flows into an argument the parameter
   list cannot account for (over-application: conservative
   transfer). *)
let call_consumes (callee : fsum) args v =
  let positional_params =
    List.filteri
      (fun _ (lbl, _) -> lbl = None)
      (List.mapi (fun i (lbl, _) -> (lbl, i)) callee.f_params)
  in
  let param_index lbl ~pos =
    match lbl with
    | Some l ->
        let rec find i = function
          | [] -> None
          | (Some l', _) :: _ when l' = l -> Some i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 callee.f_params
    | None -> (
        match List.nth_opt positional_params pos with
        | Some (_, i) -> Some i
        | None -> None)
  in
  let pos = ref (-1) in
  List.exists
    (fun (al, a) ->
      let lbl =
        match al with
        | Asttypes.Nolabel ->
            incr pos;
            None
        | Asttypes.Labelled l | Asttypes.Optional l -> Some l
      in
      mentions v a
      &&
      match param_index lbl ~pos:!pos with
      | Some i -> callee.f_consumes.(i)
      | None -> true)
    args

(* Does [e] discharge the obligation on [v] along every
   non-exceptional path? "Discharge" is a release-ish call, a return,
   a store into any data structure, or a hand-off to a *consuming*
   function (in-tree summaries; unknown external callees count as
   ownership transfer unless they are known pure accessors).
   [flushes] says whether the surrounding file contains a flush site:
   a buffered release only discharges when it does. *)
let discharges ~summaries ~file ~flushes v e =
  let rec go v e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } when x = v ->
        true (* returned *)
    | Pexp_apply (f, args) -> (
        match fn_name f with
        | Some n when List.mem n release_fns ->
            List.exists (fun (_, a) -> mentions v a) args
        | Some n when List.mem n buffer_fns ->
            flushes && List.exists (fun (_, a) -> mentions v a) args
        | Some n when List.mem n abort_fns -> true
        | Some n when List.mem n transfer_fns ->
            List.exists (fun (_, a) -> mentions v a) args
        | _ -> (
            match resolve_callee summaries ~file f with
            | Some callee -> call_consumes callee args v
            | None -> (
                match fn_name f with
                | Some n when List.mem n accessor_fns -> false
                | _ -> List.exists (fun (_, a) -> mentions v a) args)))
    | Pexp_sequence (a, b) -> go v a || go v b
    | Pexp_let (_, vbs, body) ->
        List.exists (fun vb -> go v vb.pvb_expr) vbs
        || go v body
        (* [let u = Value.unmark v in ...]: [u] aliases the same node
           reference (mark/unmark only toggle the low bit), so
           discharging the alias discharges [v]. *)
        || List.exists
             (fun vb ->
               match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
               | Ppat_var { txt = a; _ }, Pexp_apply (f, args)
                 when (fn_name f = Some "mark" || fn_name f = Some "unmark")
                      && List.exists (fun (_, x) -> mentions v x) args ->
                   a <> v && go a body
               | _ -> false)
             vbs
    | Pexp_ifthenelse (c, th, el) ->
        go v c
        ||
        let el_d = match el with Some e -> go v e | None -> false in
        if null_guard v c then go v th || el_d
        else go v th && el_d
    | Pexp_match (scr, cases) | Pexp_try (scr, cases) ->
        go v scr
        || (cases <> [] && List.for_all (fun c -> go v c.pc_rhs) cases)
    | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> mentions v a
    | Pexp_tuple es | Pexp_array es -> List.exists (mentions v) es
    | Pexp_record (fields, base) ->
        List.exists (fun (_, a) -> mentions v a) fields
        || (match base with Some b -> mentions v b | None -> false)
    | Pexp_setfield (a, _, b) -> mentions v a || mentions v b
    | Pexp_fun (_, _, _, body) -> mentions v body (* captured by a closure *)
    | Pexp_function cases ->
        List.exists (fun c -> mentions v c.pc_rhs) cases
    | Pexp_while _ | Pexp_for _ -> mentions v e (* conservative on loops *)
    | Pexp_assert
        { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
      ->
        true (* assert false aborts the path *)
    | Pexp_constraint (a, _)
    | Pexp_coerce (a, _, _)
    | Pexp_open (_, a)
    | Pexp_letmodule (_, _, a)
    | Pexp_letexception (_, a) ->
        go v a
    | _ -> false
  in
  go v e

let acquire_rhs e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
      match fn_name f with
      | Some n when List.mem n acquire_fns -> Some n
      | _ -> None)
  | _ -> None

(* A flush site anywhere in the file licenses its buffered releases:
   per-file granularity matches the buffer's ownership (the module
   that buffers is the module responsible for flushing). *)
let has_flush_site str =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, _)
            when (match fn_name f with
                 | Some n -> List.mem n flush_fns
                 | None -> false) ->
              raise Found
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  try
    it.structure it str;
    false
  with Found -> true

(* Collect one file's top-level function bindings (including inside
   module/functor bodies) into the summary table. *)
let collect_functions summaries ~file ~flushes str =
  let rec scan_structure str =
    List.iter
      (fun it ->
        match it.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt = name; _ }
                  when (match vb.pvb_expr.pexp_desc with
                       | Pexp_fun _ | Pexp_newtype _ -> true
                       | _ -> false) ->
                    let params, body = strip_params [] vb.pvb_expr in
                    Hashtbl.replace summaries.by_key (file, name)
                      {
                        f_params = params;
                        f_body = body;
                        f_flushes = flushes;
                        f_consumes =
                          Array.make (List.length params) false;
                      }
                | _ -> ())
              vbs
        | Pstr_module mb -> scan_module mb.pmb_expr
        | Pstr_recmodule mbs ->
            List.iter (fun mb -> scan_module mb.pmb_expr) mbs
        | _ -> ())
      str
  and scan_module m =
    match m.pmod_desc with
    | Pmod_structure s -> scan_structure s
    | Pmod_functor (_, body) -> scan_module body
    | Pmod_constraint (m, _) -> scan_module m
    | _ -> ()
  in
  scan_structure str

let module_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

(* Least fixpoint: flip a parameter to consuming when the body
   provably discharges it under the current table. Monotone, so
   iteration terminates. *)
let build_summaries structures =
  let summaries =
    { by_key = Hashtbl.create 256; mod_file = Hashtbl.create 64 }
  in
  let ambiguous = Hashtbl.create 8 in
  List.iter
    (fun (f, s) ->
      let m = module_of_file f in
      (match Hashtbl.find_opt summaries.mod_file m with
      | Some f' when f' <> f -> Hashtbl.replace ambiguous m ()
      | _ -> Hashtbl.replace summaries.mod_file m f);
      collect_functions summaries ~file:f ~flushes:(has_flush_site s) s)
    structures;
  Hashtbl.iter (fun m () -> Hashtbl.remove summaries.mod_file m) ambiguous;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun (file, _) fs ->
        List.iteri
          (fun i (_, var) ->
            if (not fs.f_consumes.(i)) && var <> "_" then
              if
                discharges ~summaries ~file ~flushes:fs.f_flushes var
                  fs.f_body
              then begin
                fs.f_consumes.(i) <- true;
                changed := true
              end)
          fs.f_params)
      summaries.by_key
  done;
  summaries

(* ---------------- Protocol pass ----------------------------------- *)

let dir_of file = Filename.basename (Filename.dirname file)

(* Layers allowed to name the raw shared-memory primitives and the
   native free store: the managers themselves plus the layers below
   them. Everything else must go through Mm_intf. *)
let primitives_ok = [ "atomics"; "shmem"; "core"; "lfrc"; "hazard"; "epoch"; "lockrc" ]
let freestore_ok = [ "shmem"; "core"; "lfrc"; "hazard"; "epoch"; "lockrc" ]

(* The raw unboxed word store is one tier below even the managers:
   only the atomics layer itself, the arena/freestore facades and the
   core scheme (whose cross-store fusions need the raw blocks) may
   name it. The baseline managers address through Arena/Hot. *)
let words_ok = [ "atomics"; "shmem"; "core" ]

let restricted_module file comp =
  (comp = "Primitives" && not (List.mem (dir_of file) primitives_ok))
  || (comp = "Freestore" && not (List.mem (dir_of file) freestore_ok))
  || (comp = "Words" && not (List.mem (dir_of file) words_ok))

let check_lid add ~file lid (loc : Location.t) =
  List.iter
    (fun comp ->
      if restricted_module file comp then
        add ~file ~line:loc.loc_start.pos_lnum ~rule:"raw-primitives"
          (Printf.sprintf
             "%s is reserved to the managers and the shmem/atomics layers; \
              go through Mm_intf"
             comp))
    (Longident.flatten lid)

let check_structure add ~summaries ~file str =
  let flushes = has_flush_site str in
  let expr_hook self e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_lid add ~file txt loc
    | Pexp_let (_, vbs, cont) ->
        List.iter
          (fun vb ->
            match (vb.pvb_pat.ppat_desc, acquire_rhs vb.pvb_expr) with
            | Ppat_var { txt = v; _ }, Some fn ->
                if not (discharges ~summaries ~file ~flushes v cont) then
                  add ~file ~line:vb.pvb_loc.loc_start.pos_lnum
                    ~rule:"unbalanced-deref"
                    (Printf.sprintf
                       "`%s' bound from %s is not released (or handed off) \
                        on every path"
                       v fn)
            | Ppat_any, Some fn ->
                add ~file ~line:vb.pvb_loc.loc_start.pos_lnum
                  ~rule:"unbalanced-deref"
                  (Printf.sprintf
                     "result of %s is dropped: the acquired reference can \
                      never be released"
                     fn)
            | _ -> ())
          vbs
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let module_expr_hook self m =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> check_lid add ~file txt loc
    | _ -> ());
    Ast_iterator.default_iterator.module_expr self m
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr = expr_hook;
      module_expr = module_expr_hook;
    }
  in
  it.structure it str

(* ---------------- C sources ---------------------------------------- *)

let rec collect_suffix ~suffix acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc name ->
        if name = "_build" || (String.length name > 0 && name.[0] = '.') then
          acc
        else collect_suffix ~suffix acc (Filename.concat path name))
      acc (Sys.readdir path)
  else if Filename.check_suffix path suffix then path :: acc
  else acc

let collect_ml acc path = collect_suffix ~suffix:".ml" acc path
let collect_c acc path = collect_suffix ~suffix:".c" acc path

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Blank out C comments and string literals (preserving newlines so
   line numbers survive). *)
let decomment_c src =
  let b = Bytes.of_string src in
  let n = Bytes.length b in
  let blank i = if Bytes.get b i <> '\n' then Bytes.set b i ' ' in
  let i = ref 0 in
  while !i < n do
    let c = Bytes.get b !i in
    if c = '/' && !i + 1 < n && Bytes.get b (!i + 1) = '*' then begin
      let j = ref !i in
      while
        !j + 1 < n
        && not (Bytes.get b !j = '*' && Bytes.get b (!j + 1) = '/')
      do
        blank !j;
        incr j
      done;
      if !j + 1 < n then begin
        blank !j;
        blank (!j + 1);
        i := !j + 2
      end
      else i := n
    end
    else if c = '/' && !i + 1 < n && Bytes.get b (!i + 1) = '/' then begin
      let j = ref !i in
      while !j < n && Bytes.get b !j <> '\n' do
        blank !j;
        incr j
      done;
      i := !j
    end
    else if c = '"' then begin
      blank !i;
      let j = ref (!i + 1) in
      while
        !j < n
        && not (Bytes.get b !j = '"' && Bytes.get b (!j - 1) <> '\\')
      do
        blank !j;
        incr j
      done;
      if !j < n then blank !j;
      i := !j + 1
    end
    else incr i
  done;
  Bytes.to_string b

let line_at src pos =
  let line = ref 1 in
  for i = 0 to min pos (String.length src - 1) - 1 do
    if src.[i] = '\n' then incr line
  done;
  !line

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

(* Whole-word occurrences of [tok] in [src]. *)
let word_occurs src tok =
  let lt = String.length tok and ls = String.length src in
  let rec go i =
    if i + lt > ls then false
    else if
      String.sub src i lt = tok
      && (i = 0 || not (is_ident_char src.[i - 1]))
      && (i + lt >= ls || not (is_ident_char src.[i + lt]))
    then true
    else go (i + 1)
  in
  go 0

(* ---------------- stub-ordering pass ------------------------------- *)

(* The declared ordering contract for the C stubs, keyed by the
   __atomic builtin's suffix; "*" is the default row. Today the whole
   tree is SEQ_CST — any future relaxed-ordering perf work must edit
   this table explicitly (and justify the edit in review), which is
   the point: orderings become a contract, not an accident. *)
let atomic_ordering_table : (string * string list) list =
  [ ("*", [ "__ATOMIC_SEQ_CST" ]) ]

let allowed_orderings builtin =
  match List.assoc_opt builtin atomic_ordering_table with
  | Some l -> l
  | None -> (
      match List.assoc_opt "*" atomic_ordering_table with
      | Some l -> l
      | None -> [])

(* Scan one decommented C source for __atomic_* call sites; check
   every __ATOMIC_* token among the arguments against the table, and
   flag calls whose memory order is not a literal __ATOMIC_ token at
   all (a variable order cannot be audited statically). *)
let check_stub_ordering add ~file src =
  let n = String.length src in
  let i = ref 0 in
  let pat = "__atomic_" in
  let lp = String.length pat in
  while !i + lp <= n do
    if
      String.sub src !i lp = pat
      && (!i = 0 || not (is_ident_char src.[!i - 1]))
    then begin
      (* builtin name *)
      let j = ref (!i + lp) in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      let builtin = String.sub src (!i + lp) (!j - (!i + lp)) in
      let line = line_at src !i in
      (* skip whitespace to the opening paren; a bare mention (e.g.
         in a macro definition) without a call is ignored *)
      let k = ref !j in
      while !k < n && (src.[!k] = ' ' || src.[!k] = '\n' || src.[!k] = '\t') do
        incr k
      done;
      if !k < n && src.[!k] = '(' then begin
        (* balanced-paren argument span *)
        let depth = ref 0 and stop = ref (-1) and p = ref !k in
        while !stop < 0 && !p < n do
          (match src.[!p] with
          | '(' -> incr depth
          | ')' ->
              decr depth;
              if !depth = 0 then stop := !p
          | _ -> ());
          incr p
        done;
        let args =
          if !stop > !k then String.sub src (!k + 1) (!stop - !k - 1)
          else ""
        in
        (* every __ATOMIC_ token in the argument list *)
        let allowed = allowed_orderings builtin in
        let found = ref 0 in
        let la = String.length args in
        let q = ref 0 in
        let tok_pat = "__ATOMIC_" in
        let ltp = String.length tok_pat in
        while !q + ltp <= la do
          if
            String.sub args !q ltp = tok_pat
            && (!q = 0 || not (is_ident_char args.[!q - 1]))
          then begin
            let e = ref (!q + ltp) in
            while !e < la && is_ident_char args.[!e] do
              incr e
            done;
            let tok = String.sub args !q (!e - !q) in
            incr found;
            if not (List.mem tok allowed) then
              add ~file ~line:(line_at src (!k + 1 + !q))
                ~rule:"stub-ordering"
                (Printf.sprintf
                   "__atomic_%s uses %s; the declared ordering table admits \
                    only {%s} — relaxing an ordering means editing the \
                    table, with justification"
                   builtin tok
                   (String.concat ", " allowed));
            q := !e
          end
          else incr q
        done;
        if !found = 0 then
          add ~file ~line ~rule:"stub-ordering"
            (Printf.sprintf
               "__atomic_%s call carries no literal __ATOMIC_* memory \
                order: a variable order cannot be audited statically"
               builtin);
        i := !stop + 1
      end
      else i := !j
    end
    else incr i
  done

(* ---------------- counter-coverage pass ---------------------------- *)

(* Every [Counters.event] constructor must be constructed somewhere in
   the scanned tree (outside counters.ml itself): an event nobody can
   increment is dead telemetry, and the instrumentation layers are
   required to keep the whole vocabulary live. The scan covers OCaml
   constructors and — since the park/futex paths may one day bump
   counters from C — whole-word token occurrences in the C stubs.
   Matching is by constructor name (parsetrees carry no module
   resolution), which is the usual precision of a syntactic lint. *)
let counter_constructors str =
  let out = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
          List.iter
            (fun d ->
              if d.ptype_name.txt = "event" then
                match d.ptype_kind with
                | Ptype_variant cds ->
                    List.iter
                      (fun cd ->
                        out :=
                          (cd.pcd_name.txt, cd.pcd_loc.loc_start.pos_lnum)
                          :: !out)
                      cds
                | _ -> ())
            decls
      | _ -> ())
    str;
  List.rev !out

let check_counter_coverage add structures c_sources =
  match
    List.find_opt
      (fun (f, _) -> Filename.basename f = "counters.ml")
      structures
  with
  | None -> () (* counters.ml not in scope: nothing to check *)
  | Some (cfile, cstr) ->
      let wanted = counter_constructors cstr in
      if wanted <> [] then begin
        let constructed = Hashtbl.create 64 in
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun self e ->
                (match e.pexp_desc with
                | Pexp_construct ({ txt; _ }, _) ->
                    Hashtbl.replace constructed (Longident.last txt) ()
                | _ -> ());
                Ast_iterator.default_iterator.expr self e);
          }
        in
        List.iter
          (fun (f, s) -> if f <> cfile then it.structure it s)
          structures;
        List.iter
          (fun (name, line) ->
            if
              (not (Hashtbl.mem constructed name))
              && not
                   (List.exists
                      (fun (_, src) -> word_occurs src name)
                      c_sources)
            then
              add ~file:cfile ~line ~rule:"counter-coverage"
                (Printf.sprintf
                   "Counters.%s is never constructed: dead telemetry event"
                   name))
          wanted
      end

(* ---------------- Pass registry / driver --------------------------- *)

let parse_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lb = Lexing.from_channel ic in
      Lexing.set_filename lb file;
      Parse.implementation lb)

let passes =
  [
    ( "protocol",
      "ownership balance (interprocedural consume/borrow summaries) and \
       raw-primitives layering" );
    ( "counter-coverage",
      "every Counters.event constructor is live in .ml or the C stubs" );
    ( "stub-ordering",
      "__atomic_* call sites in C stubs match the declared ordering table" );
    ( "progress",
      "static wait-freedom: loop/recursion cycles vs the file's declared \
       progress contract" );
  ]

let pass_names = List.map fst passes

let run_passes ~passes:selected ~roots =
  List.iter
    (fun p ->
      if not (List.mem p pass_names) then
        invalid_arg (Printf.sprintf "unknown lint pass %S" p))
    selected;
  let want p = List.mem p selected in
  let out = ref [] in
  let add ~file ~line ~rule msg = out := { file; line; rule; msg } :: !out in
  let ml_files = List.sort compare (List.fold_left collect_ml [] roots) in
  let c_files = List.sort compare (List.fold_left collect_c [] roots) in
  let needs_ml = want "protocol" || want "counter-coverage" in
  let structures =
    if not needs_ml then []
    else
      List.filter_map
        (fun f ->
          match parse_file f with
          | s -> Some (f, s)
          | exception e ->
              if want "protocol" then
                add ~file:f ~line:1 ~rule:"parse" (Printexc.to_string e);
              None)
        ml_files
  in
  let c_sources =
    if want "counter-coverage" || want "stub-ordering" then
      List.map (fun f -> (f, decomment_c (read_file f))) c_files
    else []
  in
  if want "protocol" then begin
    let summaries = build_summaries structures in
    List.iter (fun (f, s) -> check_structure add ~summaries ~file:f s) structures
  end;
  if want "counter-coverage" then
    check_counter_coverage add structures c_sources;
  if want "stub-ordering" then
    List.iter (fun (f, src) -> check_stub_ordering add ~file:f src) c_sources;
  if want "progress" then begin
    let r = Progress.analyze ~roots in
    List.iter
      (fun (v : Progress.violation) ->
        add ~file:v.v_file ~line:v.v_line ~rule:"progress" v.v_msg)
      r.violations
  end;
  List.sort
    (fun a b -> compare (a.file, a.line, a.rule, a.msg) (b.file, b.line, b.rule, b.msg))
    !out

let run ~roots = run_passes ~passes:pass_names ~roots
