(* A parse-tree protocol checker for the reclamation API.

   The paper's user model (§3.2) imposes discipline the type system
   cannot see: every reference acquired through DeRefLink/AllocNode
   must be released, and clients must never reach around the manager
   to the raw shared-memory primitives. This pass walks parsetrees
   (compiler-libs, no typing) and enforces the syntactic shadow of
   those rules; it is deliberately under-approximate — aliasing and
   flow through data structures count as ownership transfer — so it
   stays quiet on correct idiomatic code. *)

open Parsetree

type violation = { file : string; line : int; rule : string; msg : string }

let to_string v = Printf.sprintf "%s:%d: [%s] %s" v.file v.line v.rule v.msg

(* ---------------- Names ------------------------------------------- *)

let fn_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.last txt)
  | _ -> None

(* The acquiring operations of Mm_intf: their result carries a
   reference the caller owes back. *)
let acquire_fns = [ "deref"; "alloc"; "copy_ref" ]

(* Discharging operations: the reference obligation ends here. *)
let release_fns = [ "release"; "terminate"; "make_immortal"; "release_ref" ]

(* Buffered release (DESIGN.md §6.3): [defer_release] parks the
   decrement in a per-thread rc buffer, which discharges the caller's
   obligation — but only in a file that can also flush that buffer.
   A file that buffers without ever naming a flush site parks the
   decrement forever, so the reference is never actually returned. *)
let buffer_fns = [ "defer_release" ]
let flush_fns = [ "flush"; "flush_all"; "rc_flush" ]

(* Read-through accessors: a reference passed to one of these is
   used, not consumed — the obligation stays with the caller. This
   includes cas_link/store_link, whose link share is managed
   internally by the scheme (Mm_intf): linking a node does NOT
   discharge the caller's own reference. *)
let accessor_fns =
  [
    "read"; "write"; "cas"; "faa"; "swap"; "read_data"; "write_data";
    "read_link"; "write_link"; "read_mm_ref"; "faa_mm_ref"; "cas_mm_ref";
    "read_mm_next"; "write_mm_next"; "mm_ref_addr"; "mm_next_addr";
    "link_addr"; "data_addr"; "node_base"; "dump_node"; "cas_link";
    "store_link"; "is_null"; "is_marked"; "mark"; "unmark"; "handle";
    "same_node"; "pp_ptr"; "pp_word"; "ignore"; "not"; "incr"; "decr";
  ]

(* Calls that abort the path: the obligation is excused on
   exceptional exits. *)
let abort_fns = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "failf" ]

(* ---------------- Expression queries ------------------------------ *)

exception Found

let mentions v e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } when x = v ->
              raise Found
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  try
    it.expr it e;
    false
  with Found -> true

(* [if not (is_null v) then ...]: the null-guard idiom. The branch
   where [v] is null carries no obligation, so a release in either
   arm discharges. *)
let null_guard v cond =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args)
            when fn_name f = Some "is_null"
                 && List.exists (fun (_, a) -> mentions v a) args ->
              raise Found
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  try
    it.expr it cond;
    false
  with Found -> true

(* Does [e] discharge the obligation on [v] along every
   non-exceptional path? "Discharge" is a release-ish call, a return,
   a store into any data structure, or a hand-off to a function we do
   not recognise as a pure accessor (ownership transfer). [flushes]
   says whether the surrounding file contains a flush site: a buffered
   release only discharges when it does. *)
let discharges ~flushes v e =
  let rec go v e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } when x = v ->
        true (* returned *)
    | Pexp_apply (f, args) -> (
        match fn_name f with
        | Some n when List.mem n release_fns ->
            List.exists (fun (_, a) -> mentions v a) args
        | Some n when List.mem n buffer_fns ->
            flushes && List.exists (fun (_, a) -> mentions v a) args
        | Some n when List.mem n abort_fns -> true
        | Some n when List.mem n accessor_fns -> false
        | _ -> List.exists (fun (_, a) -> mentions v a) args)
    | Pexp_sequence (a, b) -> go v a || go v b
    | Pexp_let (_, vbs, body) ->
        List.exists (fun vb -> go v vb.pvb_expr) vbs
        || go v body
        (* [let u = Value.unmark v in ...]: [u] aliases the same node
           reference (mark/unmark only toggle the low bit), so
           discharging the alias discharges [v]. *)
        || List.exists
             (fun vb ->
               match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
               | Ppat_var { txt = a; _ }, Pexp_apply (f, args)
                 when (fn_name f = Some "mark" || fn_name f = Some "unmark")
                      && List.exists (fun (_, x) -> mentions v x) args ->
                   a <> v && go a body
               | _ -> false)
             vbs
    | Pexp_ifthenelse (c, th, el) ->
        go v c
        ||
        let el_d = match el with Some e -> go v e | None -> false in
        if null_guard v c then go v th || el_d
        else go v th && el_d
    | Pexp_match (scr, cases) | Pexp_try (scr, cases) ->
        go v scr
        || (cases <> [] && List.for_all (fun c -> go v c.pc_rhs) cases)
    | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> mentions v a
    | Pexp_tuple es | Pexp_array es -> List.exists (mentions v) es
    | Pexp_record (fields, base) ->
        List.exists (fun (_, a) -> mentions v a) fields
        || (match base with Some b -> mentions v b | None -> false)
    | Pexp_setfield (a, _, b) -> mentions v a || mentions v b
    | Pexp_fun (_, _, _, body) -> mentions v body (* captured by a closure *)
    | Pexp_function cases ->
        List.exists (fun c -> mentions v c.pc_rhs) cases
    | Pexp_while _ | Pexp_for _ -> mentions v e (* conservative on loops *)
    | Pexp_assert
        { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
      ->
        true (* assert false aborts the path *)
    | Pexp_constraint (a, _)
    | Pexp_coerce (a, _, _)
    | Pexp_open (_, a)
    | Pexp_letmodule (_, _, a)
    | Pexp_letexception (_, a) ->
        go v a
    | _ -> false
  in
  go v e

let acquire_rhs e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
      match fn_name f with
      | Some n when List.mem n acquire_fns -> Some n
      | _ -> None)
  | _ -> None

(* ---------------- Per-file checks --------------------------------- *)

let dir_of file = Filename.basename (Filename.dirname file)

(* Layers allowed to name the raw shared-memory primitives and the
   native free store: the managers themselves plus the layers below
   them. Everything else must go through Mm_intf. *)
let primitives_ok = [ "atomics"; "shmem"; "core"; "lfrc"; "hazard"; "epoch"; "lockrc" ]
let freestore_ok = [ "shmem"; "core"; "lfrc"; "hazard"; "epoch"; "lockrc" ]

(* The raw unboxed word store is one tier below even the managers:
   only the atomics layer itself, the arena/freestore facades and the
   core scheme (whose cross-store fusions need the raw blocks) may
   name it. The baseline managers address through Arena/Hot. *)
let words_ok = [ "atomics"; "shmem"; "core" ]

let restricted_module file comp =
  (comp = "Primitives" && not (List.mem (dir_of file) primitives_ok))
  || (comp = "Freestore" && not (List.mem (dir_of file) freestore_ok))
  || (comp = "Words" && not (List.mem (dir_of file) words_ok))

let check_lid add ~file lid (loc : Location.t) =
  List.iter
    (fun comp ->
      if restricted_module file comp then
        add ~file ~line:loc.loc_start.pos_lnum ~rule:"raw-primitives"
          (Printf.sprintf
             "%s is reserved to the managers and the shmem/atomics layers; \
              go through Mm_intf"
             comp))
    (Longident.flatten lid)

(* A flush site anywhere in the file licenses its buffered releases:
   per-file granularity matches the buffer's ownership (the module
   that buffers is the module responsible for flushing). *)
let has_flush_site str =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, _)
            when (match fn_name f with
                 | Some n -> List.mem n flush_fns
                 | None -> false) ->
              raise Found
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  try
    it.structure it str;
    false
  with Found -> true

let check_structure add ~file str =
  let flushes = has_flush_site str in
  let expr_hook self e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_lid add ~file txt loc
    | Pexp_let (_, vbs, cont) ->
        List.iter
          (fun vb ->
            match (vb.pvb_pat.ppat_desc, acquire_rhs vb.pvb_expr) with
            | Ppat_var { txt = v; _ }, Some fn ->
                if not (discharges ~flushes v cont) then
                  add ~file ~line:vb.pvb_loc.loc_start.pos_lnum
                    ~rule:"unbalanced-deref"
                    (Printf.sprintf
                       "`%s' bound from %s is not released (or handed off) \
                        on every path"
                       v fn)
            | Ppat_any, Some fn ->
                add ~file ~line:vb.pvb_loc.loc_start.pos_lnum
                  ~rule:"unbalanced-deref"
                  (Printf.sprintf
                     "result of %s is dropped: the acquired reference can \
                      never be released"
                     fn)
            | _ -> ())
          vbs
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let module_expr_hook self m =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> check_lid add ~file txt loc
    | _ -> ());
    Ast_iterator.default_iterator.module_expr self m
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr = expr_hook;
      module_expr = module_expr_hook;
    }
  in
  it.structure it str

(* ---------------- Counter coverage -------------------------------- *)

(* Every [Counters.event] constructor must be constructed somewhere in
   the scanned tree (outside counters.ml itself): an event nobody can
   increment is dead telemetry, and the instrumentation layers are
   required to keep the whole vocabulary live. Matching is by
   constructor name — parsetrees carry no module resolution — which is
   the usual precision of a syntactic lint. *)
let counter_constructors str =
  let out = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
          List.iter
            (fun d ->
              if d.ptype_name.txt = "event" then
                match d.ptype_kind with
                | Ptype_variant cds ->
                    List.iter
                      (fun cd ->
                        out :=
                          (cd.pcd_name.txt, cd.pcd_loc.loc_start.pos_lnum)
                          :: !out)
                      cds
                | _ -> ())
            decls
      | _ -> ())
    str;
  List.rev !out

let check_counter_coverage add structures =
  match
    List.find_opt
      (fun (f, _) -> Filename.basename f = "counters.ml")
      structures
  with
  | None -> () (* counters.ml not in scope: nothing to check *)
  | Some (cfile, cstr) ->
      let wanted = counter_constructors cstr in
      if wanted <> [] then begin
        let constructed = Hashtbl.create 64 in
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun self e ->
                (match e.pexp_desc with
                | Pexp_construct ({ txt; _ }, _) ->
                    Hashtbl.replace constructed (Longident.last txt) ()
                | _ -> ());
                Ast_iterator.default_iterator.expr self e);
          }
        in
        List.iter
          (fun (f, s) -> if f <> cfile then it.structure it s)
          structures;
        List.iter
          (fun (name, line) ->
            if not (Hashtbl.mem constructed name) then
              add ~file:cfile ~line ~rule:"counter-coverage"
                (Printf.sprintf
                   "Counters.%s is never constructed: dead telemetry event"
                   name))
          wanted
      end

(* ---------------- Driver ------------------------------------------ *)

let rec collect_ml acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc name ->
        if name = "_build" || (String.length name > 0 && name.[0] = '.') then
          acc
        else collect_ml acc (Filename.concat path name))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let parse_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lb = Lexing.from_channel ic in
      Lexing.set_filename lb file;
      Parse.implementation lb)

let run ~roots =
  let files = List.sort compare (List.fold_left collect_ml [] roots) in
  let out = ref [] in
  let add ~file ~line ~rule msg = out := { file; line; rule; msg } :: !out in
  let structures =
    List.filter_map
      (fun f ->
        match parse_file f with
        | s -> Some (f, s)
        | exception e ->
            add ~file:f ~line:1 ~rule:"parse" (Printexc.to_string e);
            None)
      files
  in
  List.iter (fun (f, s) -> check_structure add ~file:f s) structures;
  check_counter_coverage add structures;
  List.sort
    (fun a b -> compare (a.file, a.line, a.rule, a.msg) (b.file, b.line, b.rule, b.msg))
    !out
