(* Static progress analyzer: bounded-step (wait-freedom) checking.

   The paper's claim over Valois-style lock-free RC is that every
   operation finishes in a bounded number of own steps (Lemmas 6-10).
   The repo observes this dynamically (E2/E13, Audit.Steps); this pass
   checks it *statically* against the code we actually run.

   Model. Every `.ml` file carrying a floating

       [@@@wfrc.progress "wait_free" | "lock_free" | "blocking"]

   attribute enters the analysis universe. Within the universe we
   extract every function (top-level bindings, functor bodies, and
   local `let`/`let rec` functions), find every loop and recursion
   cycle, and classify each:

   - statically bounded — a `for` loop, a `while` loop over a
     strictly advancing counter, a recursion with a fuel or cursor
     parameter that advances at every recursive site toward a
     comparison guard, or a cycle carrying a
     [@@wfrc.bounded "evidence"] annotation (the declared escape
     hatch for bounds the syntax cannot see: work-stack cascades, the
     F9-F10 two-list placement, round counters threaded through
     helpers — the annotation text is the printed evidence).
   - helping-bounded — the cycle body makes a helping call (a callee
     whose name speaks the helping vocabulary: help / donate / adopt /
     announcement) *and* contains a monotone progress witness: a
     CAS/FAA/bump_mod that strictly advances shared round-robin
     state. This is the Lemma 9 shape — a failed round implies a
     concurrent success, which in turn helps the next starving
     thread.
   - cas-retry — every recursive site sits in a branch governed by a
     CAS outcome. Unbounded for one thread, but each retry implies a
     concurrent success: the lock-free shape.
   - unbounded — none of the above.

   Per-function summaries propagate over the call graph (Tarjan SCC
   condensation, worst level wins), so a wait-free entry point calling
   an unbounded helper is flagged with the offending chain.

   Contracts: `wait_free` admits bounded/helping only; `lock_free`
   additionally admits cas-retry; `blocking` admits everything. A
   [@@wfrc.expect_unbounded "reason"] annotation *asserts* that the
   function contains an unbounded/retry cycle — the lock-free
   baselines' deref retries are what the paper measures against, so a
   regression to bounded is also a finding. *)

open Parsetree

(* ---------------- Result types ------------------------------------ *)

type level = Bounded | Helping | Retry | Unbounded
type contract = Wait_free | Lock_free | Blocking

let level_rank = function
  | Bounded -> 0
  | Helping -> 1
  | Retry -> 2
  | Unbounded -> 3

let level_name = function
  | Bounded -> "statically-bounded"
  | Helping -> "helping-bounded"
  | Retry -> "cas-retry"
  | Unbounded -> "unbounded"

let contract_name = function
  | Wait_free -> "wait_free"
  | Lock_free -> "lock_free"
  | Blocking -> "blocking"

(* The worst level a contract admits. *)
let contract_allows = function
  | Wait_free -> Helping
  | Lock_free -> Retry
  | Blocking -> Unbounded

type cls = {
  c_file : string;
  c_func : string; (* qualified name, e.g. "free_push.push" *)
  c_line : int;
  c_kind : string; (* "for" | "while" | "recursion" | "mutual-recursion" *)
  c_level : level;
  c_evidence : string;
}

type violation = { v_file : string; v_line : int; v_msg : string }

type report = {
  files : (string * contract) list;
  classifications : cls list;
  expectations : (string * string * bool) list;
      (* file, function, satisfied *)
  violations : violation list;
}

(* ---------------- File collection / parsing ----------------------- *)

let rec collect_ml acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc name ->
        if name = "_build" || (String.length name > 0 && name.[0] = '.') then
          acc
        else collect_ml acc (Filename.concat path name))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let parse_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lb = Lexing.from_channel ic in
      Lexing.set_filename lb file;
      Parse.implementation lb)

(* ---------------- Attributes -------------------------------------- *)

let string_payload (a : attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let file_contract (str : structure) =
  List.find_map
    (fun it ->
      match it.pstr_desc with
      | Pstr_attribute a when a.attr_name.txt = "wfrc.progress" -> (
          match string_payload a with
          | Some "wait_free" -> Some Wait_free
          | Some "lock_free" -> Some Lock_free
          | Some "blocking" -> Some Blocking
          | _ -> None)
      | _ -> None)
    str

let binding_annot name (attrs : attributes) =
  List.find_map
    (fun a ->
      if a.attr_name.txt = name then
        Some (Option.value (string_payload a) ~default:"")
      else None)
    attrs

(* ---------------- Unit extraction --------------------------------- *)

(* A "unit" is one analyzable function: a top-level binding (including
   inside functor/module bodies) or a local let/let rec function. *)

type unit_t = {
  u_file : string;
  u_name : string; (* qualified display name, "parent.child" for locals *)
  u_key : string; (* bare binding name, for call resolution *)
  u_line : int;
  u_params : (string option * string) list; (* label, pattern var *)
  u_body : expression;
  u_bounded : string option;
  u_expect : string option;
  u_toplevel : bool;
  mutable u_scope : (string * int) list; (* visible name -> unit index *)
  mutable u_children : (string * int) list; (* own locals *)
}

(* Strip the fun/newtype prelude off a binding's expression. *)
let rec strip_params acc e =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, pat, body) ->
      let var =
        match pat.ppat_desc with
        | Ppat_var { txt; _ } -> txt
        | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> txt
        | _ -> "_"
      in
      let lbl =
        match lbl with
        | Asttypes.Nolabel -> None
        | Asttypes.Labelled l | Asttypes.Optional l -> Some l
      in
      strip_params ((lbl, var) :: acc) body
  | Pexp_newtype (_, body) -> strip_params acc body
  | _ -> (List.rev acc, e)

let is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

(* Extract all units of one file. Returns the units (indexed by
   position) and a skip-set of sub-unit body locations: when walking
   one unit's body, nested units' bodies are someone else's problem. *)
let extract_units file (str : structure) =
  let units : unit_t array ref = ref [||] in
  let push u =
    let i = Array.length !units in
    units := Array.append !units [| u |];
    i
  in
  let skip : (Location.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let make ~toplevel ~prefix (vb : value_binding) =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = key; _ } when is_function vb.pvb_expr ->
        let params, body = strip_params [] vb.pvb_expr in
        let params =
          match body.pexp_desc with
          | Pexp_function _ -> params @ [ (None, "_fnarg") ]
          | _ -> params
        in
        Hashtbl.replace skip body.pexp_loc ();
        Some
          (push
             {
               u_file = file;
               u_name = (if prefix = "" then key else prefix ^ "." ^ key);
               u_key = key;
               u_line = vb.pvb_loc.loc_start.pos_lnum;
               u_params = params;
               u_body = body;
               u_bounded = binding_annot "wfrc.bounded" vb.pvb_attributes;
               u_expect =
                 binding_annot "wfrc.expect_unbounded" vb.pvb_attributes;
               u_toplevel = toplevel;
               u_scope = [];
               u_children = [];
             })
    | _ -> None
  in
  (* Scan one unit's body for local function bindings; [owner] is the
     enclosing unit's index, [scope] its visible names. *)
  let rec scan_body ~owner ~scope (e : expression) =
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            match e.pexp_desc with
            | Pexp_let (_, vbs, cont) ->
                let made =
                  List.filter_map
                    (fun vb ->
                      match
                        make ~toplevel:false
                          ~prefix:!units.(owner).u_name vb
                      with
                      | Some i -> Some (vb, i)
                      | None -> None)
                    vbs
                in
                let scope' =
                  List.fold_left
                    (fun sc (_, i) -> (!units.(i).u_key, i) :: sc)
                    scope made
                in
                List.iter
                  (fun (_, i) ->
                    !units.(i).u_scope <- scope';
                    !units.(owner).u_children <-
                      (!units.(i).u_key, i) :: !units.(owner).u_children)
                  made;
                List.iter
                  (fun vb ->
                    match List.assq_opt vb made with
                    | Some i -> scan_body ~owner:i ~scope:scope' vb.pvb_expr
                    | None -> self.expr self vb.pvb_expr)
                  vbs;
                self.expr self cont
            | _ -> Ast_iterator.default_iterator.expr self e);
      }
    in
    (* enter through the body even though its own loc is skip-listed *)
    match e.pexp_desc with
    | _ -> it.expr it e
  in
  let rec scan_structure ~scope (str : structure) =
    let top = ref scope in
    let made = ref [] in
    List.iter
      (fun it ->
        match it.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match make ~toplevel:true ~prefix:"" vb with
                | Some i ->
                    top := (!units.(i).u_key, i) :: !top;
                    made := (vb, i) :: !made
                | None -> ())
              vbs
        | _ -> ())
      str;
    List.iter (fun (_, i) -> !units.(i).u_scope <- !top) !made;
    List.iter
      (fun it ->
        match it.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match List.assq_opt vb !made with
                | Some i -> scan_body ~owner:i ~scope:!top vb.pvb_expr
                | None -> ())
              vbs
        | Pstr_module mb -> scan_module ~scope:!top mb.pmb_expr
        | Pstr_recmodule mbs ->
            List.iter (fun mb -> scan_module ~scope:!top mb.pmb_expr) mbs
        | _ -> ())
      str
  and scan_module ~scope (m : module_expr) =
    match m.pmod_desc with
    | Pmod_structure s -> scan_structure ~scope s
    | Pmod_functor (_, body) -> scan_module ~scope body
    | Pmod_constraint (m, _) -> scan_module ~scope m
    | _ -> ()
  in
  scan_structure ~scope:[] str;
  (!units, skip)

(* ---------------- Expression queries ------------------------------ *)

let cas_names =
  [ "cas"; "cas_link"; "cas_mm_ref"; "compare_and_set"; "compare_exchange" ]

let advance_names =
  [ "cas"; "cas_link"; "cas_mm_ref"; "faa"; "faa_mm_ref"; "bump_mod" ]

let helping_vocab = [ "help"; "donate"; "adopt"; "ann" ]

let has_substring hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i =
    i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
  in
  go 0

let applied_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.last txt)
  | _ -> None

exception Found

(* Does [e] contain an application of a function named in [names]? *)
let contains_apply_of names e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, _)
            when (match applied_name f with
                 | Some n -> List.mem n names
                 | None -> false) ->
              raise Found
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  try
    it.expr it e;
    false
  with Found -> true

let mentions_ident v e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } when x = v ->
              raise Found
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  try
    it.expr it e;
    false
  with Found -> true

(* An `(x + k) mod n`-shaped subexpression: the round-robin advance. *)
let contains_round_robin e =
  let rec rr e =
    match e.pexp_desc with
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident "mod"; _ }; _ },
          [ (_, a); _ ] ) ->
        contains_apply_of [ "+" ] a
    | Pexp_constraint (a, _) | Pexp_open (_, a) -> rr a
    | _ -> false
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          if rr e then raise Found;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  try
    it.expr it e;
    false
  with Found -> true

(* ---------------- while-loop classification ------------------------ *)

(* Counter lvalues a while-condition can bound: `!r`, `e.f`. *)
type lvalue = Ref of string | Field of string

let as_lvalue e =
  match e.pexp_desc with
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident "!"; _ }; _ },
        [ (_, { pexp_desc = Pexp_ident { txt = Longident.Lident x; _ }; _ }) ]
      ) ->
      Some (Ref x)
  | Pexp_field (_, { txt; _ }) -> Some (Field (Longident.last txt))
  | _ -> None

let lvalue_name = function Ref x -> "!" ^ x | Field f -> "." ^ f
let comparison_ops = [ "<"; ">"; "<="; ">="; "<>"; "=" ]

(* The counter lvalues compared anywhere inside [cond]. *)
let compared_lvalues cond =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args)
            when (match applied_name f with
                 | Some n -> List.mem n comparison_ops
                 | None -> false) ->
              List.iter
                (fun (_, a) ->
                  match as_lvalue a with
                  | Some lv -> out := lv :: !out
                  | None -> ())
                args
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it cond;
  !out

(* Does [body] strictly advance [lv]: incr/decr, `r := ... + ...`, or
   `e.f <- ... e.f ... +- ...`? *)
let advances lv body =
  let hit e =
    match (lv, e.pexp_desc) with
    | ( Ref x,
        Pexp_apply
          ( {
              pexp_desc =
                Pexp_ident { txt = Longident.Lident ("incr" | "decr"); _ };
              _;
            },
            [
              (_, { pexp_desc = Pexp_ident { txt = Longident.Lident y; _ }; _ });
            ] ) ) ->
        x = y
    | ( Ref x,
        Pexp_apply
          ( { pexp_desc = Pexp_ident { txt = Longident.Lident ":="; _ }; _ },
            [
              (_, { pexp_desc = Pexp_ident { txt = Longident.Lident y; _ }; _ });
              (_, rhs);
            ] ) ) ->
        x = y && contains_apply_of [ "+"; "-" ] rhs
    | Field f, Pexp_setfield (_, { txt; _ }, rhs) ->
        Longident.last txt = f && contains_apply_of [ "+"; "-" ] rhs
    | _ -> false
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          if hit e then raise Found;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  try
    it.expr it body;
    false
  with Found -> true

let classify_while cond body =
  if contains_apply_of cas_names cond then
    (Retry, "while-until-CAS: the loop condition re-tries a CAS")
  else
    match
      List.find_opt (fun lv -> advances lv body) (compared_lvalues cond)
    with
    | Some lv ->
        ( Bounded,
          Printf.sprintf
            "while-loop counter '%s' is compared in the condition and \
             strictly advances each iteration"
            (lvalue_name lv) )
    | None ->
        (Unbounded, "while-loop with no advancing counter or CAS witness")

(* ---------------- Recursion: site collection ----------------------- *)

type site = { s_args : (Asttypes.arg_label * expression) list; s_cas : bool }

(* Collect applications of [key] inside [body], tracking whether each
   site sits in a branch governed by a CAS outcome, and whether the
   name escapes as a non-applied identifier (higher-order recursion,
   e.g. `List.iter drop xs`). Skips nested unit bodies. *)
let self_sites ~skip ~root key body =
  let sites = ref [] in
  let ho = ref false in
  let rec go cas e =
    if e != root && Hashtbl.mem skip e.pexp_loc then ()
    else
      match e.pexp_desc with
      | Pexp_apply
          ({ pexp_desc = Pexp_ident { txt = Longident.Lident n; _ }; _ }, args)
        ->
          if n = key then sites := { s_args = args; s_cas = cas } :: !sites;
          List.iter (fun (_, a) -> go cas a) args
      | Pexp_ident { txt = Longident.Lident n; _ } when n = key -> ho := true
      | Pexp_ifthenelse (c, th, el) ->
          go cas c;
          let branch_cas = cas || contains_apply_of cas_names c in
          go branch_cas th;
          Option.iter (go branch_cas) el
      | Pexp_match (scr, cases) | Pexp_try (scr, cases) ->
          go cas scr;
          let branch_cas = cas || contains_apply_of cas_names scr in
          List.iter (fun c -> go branch_cas c.pc_rhs) cases
      | Pexp_let (_, vbs, cont) ->
          List.iter (fun vb -> go cas vb.pvb_expr) vbs;
          go cas cont
      | Pexp_sequence (a, b) ->
          go cas a;
          go cas b
      | Pexp_apply (f, args) ->
          go cas f;
          List.iter (fun (_, a) -> go cas a) args
      | Pexp_fun (_, _, _, b) -> go cas b
      | Pexp_function cases -> List.iter (fun c -> go cas c.pc_rhs) cases
      | Pexp_while (c, b) ->
          go cas c;
          go cas b
      | Pexp_for (_, a, b, _, bd) ->
          go cas a;
          go cas b;
          go cas bd
      | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> go cas a
      | Pexp_tuple es | Pexp_array es -> List.iter (go cas) es
      | Pexp_record (fs, base) ->
          List.iter (fun (_, a) -> go cas a) fs;
          Option.iter (go cas) base
      | Pexp_field (a, _) -> go cas a
      | Pexp_setfield (a, _, b) ->
          go cas a;
          go cas b
      | Pexp_constraint (a, _)
      | Pexp_coerce (a, _, _)
      | Pexp_open (_, a)
      | Pexp_letmodule (_, _, a)
      | Pexp_letexception (_, a)
      | Pexp_lazy a | Pexp_assert a ->
          go cas a
      | _ -> ()
  in
  go false body;
  (List.rev !sites, !ho)

(* The argument a site supplies for a parameter: by label, or by
   position among the site's positional arguments. *)
let site_arg lbl ~pos (s : site) =
  match lbl with
  | Some l ->
      List.find_map
        (fun (al, a) ->
          match al with
          | Asttypes.Labelled l' | Asttypes.Optional l' when l' = l -> Some a
          | _ -> None)
        s.s_args
  | None ->
      let positional =
        List.filter_map
          (fun (al, a) ->
            match al with Asttypes.Nolabel -> Some a | _ -> None)
          s.s_args
      in
      List.nth_opt positional pos

(* `var` (unchanged), `var + k` / `var - k` (advance), other. *)
type arg_shape = Same | Advance of int | Other

let rec arg_shape var e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } when x = var -> Same
  | Pexp_apply
      ( {
          pexp_desc = Pexp_ident { txt = Longident.Lident (("+" | "-") as op); _ };
          _;
        },
        [
          (_, { pexp_desc = Pexp_ident { txt = Longident.Lident x; _ }; _ });
          (_, { pexp_desc = Pexp_constant (Pconst_integer (k, _)); _ });
        ] )
    when x = var -> (
      match int_of_string_opt k with
      | Some k when k > 0 -> Advance (if op = "+" then k else -k)
      | _ -> Other)
  | Pexp_constraint (a, _) | Pexp_open (_, a) -> arg_shape var a
  | _ -> Other

(* Is [var] mentioned inside a comparison anywhere in [body]? *)
let guarded var body =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args)
            when (match applied_name f with
                 | Some n -> List.mem n comparison_ops
                 | None -> false) ->
              if List.exists (fun (_, a) -> mentions_ident var a) args then
                raise Found
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  try
    it.expr it body;
    false
  with Found -> true

(* The helping witness: a vocabulary callee plus a monotone shared
   advance (bump_mod, or a CAS/FAA whose argument is round-robin). *)
let helping_witness ~skip ~root ~self_key body =
  let call = ref None and witness = ref None in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          if e != root && Hashtbl.mem skip e.pexp_loc then ()
          else begin
            (match e.pexp_desc with
            | Pexp_apply (f, args) -> (
                (match applied_name f with
                | Some n
                  when n <> self_key
                       && List.exists (has_substring n) helping_vocab ->
                    if !call = None then call := Some n
                | _ -> ());
                match applied_name f with
                | Some n when List.mem n advance_names ->
                    if
                      n = "bump_mod"
                      || List.exists (fun (_, a) -> contains_round_robin a) args
                    then if !witness = None then witness := Some n
                | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.expr self e
          end);
    }
  in
  it.expr it body;
  match (!call, !witness) with
  | Some c, Some w -> Some (c, w)
  | _ -> None

(* The fuel/cursor heuristics over one self-recursive unit. *)
let classify_self_recursion (u : unit_t) (sites : site list) ~ho ~skip =
  if sites = [] && not ho then None
  else
    match u.u_bounded with
    | Some ev -> Some (Bounded, Printf.sprintf "[@wfrc.bounded]: %s" ev)
    | None ->
        if ho then
          Some
            ( Unbounded,
              Printf.sprintf
                "'%s' recurs through a higher-order call; no bounding \
                 witness visible"
                u.u_key )
        else
          let body = u.u_body in
          let n_positional = ref (-1) in
          let try_param (lbl, var) =
            if lbl = None then incr n_positional;
            let pos = !n_positional in
            if var = "_" then None
            else
              let shapes =
                List.map
                  (fun s ->
                    match site_arg lbl ~pos s with
                    | Some a -> arg_shape var a
                    | None -> Other)
                  sites
              in
              let no_retreat =
                List.for_all
                  (function Same | Advance _ -> true | Other -> false)
                  shapes
              and advances_only =
                List.for_all (function Advance _ -> true | _ -> false) shapes
              and some_advance =
                List.exists (function Advance _ -> true | _ -> false) shapes
              and same_direction =
                match
                  List.filter_map
                    (function Advance k -> Some (k > 0) | _ -> None)
                    shapes
                with
                | [] -> false
                | s :: rest -> List.for_all (( = ) s) rest
              in
              if not (guarded var body) then None
              else if advances_only && same_direction then
                Some
                  ( Bounded,
                    Printf.sprintf
                      "fuel parameter '%s' advances by a constant at every \
                       recursive site, under a comparison guard"
                      var )
              else if no_retreat && some_advance && same_direction then
                Some
                  ( Bounded,
                    Printf.sprintf
                      "cursor parameter '%s' never retreats and advances on \
                       at least one recursive path, under a comparison guard"
                      var )
              else None
          in
          let rec first_param = function
            | [] -> None
            | p :: rest -> (
                match try_param p with
                | Some r -> Some r
                | None -> first_param rest)
          in
          (match first_param u.u_params with
          | Some r -> Some r
          | None -> (
              match
                helping_witness ~skip ~root:body ~self_key:u.u_key body
              with
              | Some (c, w) ->
                  Some
                    ( Helping,
                      Printf.sprintf
                        "helping call '%s' with monotone shared advance \
                         through '%s' (round-robin witness)"
                        c w )
              | None ->
                  if List.for_all (fun s -> s.s_cas) sites then
                    Some
                      ( Retry,
                        "every recursive site is governed by a CAS outcome \
                         (retry-until-CAS)" )
                  else
                    Some
                      ( Unbounded,
                        Printf.sprintf
                          "recursion on '%s' has no fuel/cursor parameter, \
                           helping witness, or CAS guard"
                          u.u_key )))

(* ---------------- References (for the call graph) ------------------ *)

(* Bare and module-qualified identifiers inside a unit body, skipping
   nested unit bodies. *)
let references ~skip ~root body =
  let bare = ref [] and dotted = ref [] in
  let rec last_mod = function
    | Longident.Lident m -> m
    | Longident.Ldot (_, m) -> m
    | Longident.Lapply (_, r) -> last_mod r
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          if e != root && Hashtbl.mem skip e.pexp_loc then ()
          else begin
            (match e.pexp_desc with
            | Pexp_ident { txt = Longident.Lident n; _ } -> bare := n :: !bare
            | Pexp_ident { txt = Longident.Ldot (path, n); _ } ->
                dotted := (last_mod path, n) :: !dotted
            | _ -> ());
            Ast_iterator.default_iterator.expr self e
          end);
    }
  in
  it.expr it body;
  (!bare, !dotted)

let module_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

(* ---------------- Tarjan SCC (callees-first output) ---------------- *)

let sccs n edges =
  let index = Array.make n (-1) and low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] and counter = ref 0 and out = ref [] in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      edges.(v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := pop [] :: !out
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  List.rev !out (* sinks (callees) first *)

(* ---------------- The analysis ------------------------------------ *)

let analyze ~roots =
  let files = List.sort compare (List.fold_left collect_ml [] roots) in
  let parsed =
    List.filter_map
      (fun f ->
        match parse_file f with
        | s -> Some (f, s)
        | exception _ -> None (* the protocol pass reports parse errors *))
      files
  in
  let universe =
    List.filter_map
      (fun (f, s) ->
        match file_contract s with
        | Some c -> Some (f, c, s)
        | None -> None)
      parsed
  in
  (* units, globally indexed; per-file skip tables *)
  let skips = Hashtbl.create 16 in
  let units, offsets =
    let acc = ref [] and offs = Hashtbl.create 16 and n = ref 0 in
    List.iter
      (fun (f, _, s) ->
        let us, skip = extract_units f s in
        Hashtbl.replace skips f skip;
        Hashtbl.replace offs f !n;
        n := !n + Array.length us;
        acc := us :: !acc)
      universe;
    (Array.concat (List.rev !acc), offs)
  in
  let n = Array.length units in
  let global i file = Hashtbl.find offsets file + i in
  let file_of_module = Hashtbl.create 16 in
  List.iter
    (fun (f, _, _) -> Hashtbl.replace file_of_module (module_of_file f) f)
    universe;
  let toplevel = Hashtbl.create 64 in
  Array.iteri
    (fun i u ->
      if u.u_toplevel then Hashtbl.replace toplevel (u.u_file, u.u_key) i)
    units;
  (* edges (a unit's scope/children indices are file-local: offset them) *)
  let edges = Array.make n [] in
  let add_edge i j =
    if j <> i && not (List.mem j edges.(i)) then edges.(i) <- j :: edges.(i)
  in
  Array.iteri
    (fun i u ->
      let skip = Hashtbl.find skips u.u_file in
      let bare, dotted = references ~skip ~root:u.u_body u.u_body in
      List.iter
        (fun nme ->
          match List.assoc_opt nme u.u_children with
          | Some local -> add_edge i (global local u.u_file)
          | None -> (
              match List.assoc_opt nme u.u_scope with
              | Some local -> add_edge i (global local u.u_file)
              | None -> ()))
        bare;
      List.iter
        (fun (m, nme) ->
          match Hashtbl.find_opt file_of_module m with
          | Some f -> (
              match Hashtbl.find_opt toplevel (f, nme) with
              | Some j -> add_edge i j
              | None -> ())
          | None -> ())
        dotted)
    units;
  (* per-unit own cycles *)
  let classifications = ref [] in
  let own_level = Array.make n Bounded in
  let own_blame = Array.make n "" in
  Array.iteri
    (fun i u ->
      let skip = Hashtbl.find skips u.u_file in
      let record ~line ~kind (lvl, ev) =
        classifications :=
          {
            c_file = u.u_file;
            c_func = u.u_name;
            c_line = line;
            c_kind = kind;
            c_level = lvl;
            c_evidence = ev;
          }
          :: !classifications;
        if level_rank lvl > level_rank own_level.(i) then begin
          own_level.(i) <- lvl;
          own_blame.(i) <-
            Printf.sprintf "%s cycle at line %d: %s" kind line ev
        end
      in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              if e != u.u_body && Hashtbl.mem skip e.pexp_loc then ()
              else begin
                (match e.pexp_desc with
                | Pexp_for _ ->
                    record ~line:e.pexp_loc.loc_start.pos_lnum ~kind:"for"
                      (Bounded, "for-loop: bounds are evaluated once")
                | Pexp_while (c, b) ->
                    record ~line:e.pexp_loc.loc_start.pos_lnum ~kind:"while"
                      (match u.u_bounded with
                      | Some ev when fst (classify_while c b) <> Bounded ->
                          (Bounded, Printf.sprintf "[@wfrc.bounded]: %s" ev)
                      | _ -> classify_while c b)
                | _ -> ());
                Ast_iterator.default_iterator.expr self e
              end);
        }
      in
      it.expr it u.u_body;
      let sites, ho = self_sites ~skip ~root:u.u_body u.u_key u.u_body in
      match classify_self_recursion u sites ~ho ~skip with
      | Some r -> record ~line:u.u_line ~kind:"recursion" r
      | None -> ())
    units;
  (* SCC condensation: mutual cycles + worst-level propagation *)
  let comps = sccs n edges in
  let summary = Array.make n Bounded in
  let blame = Array.make n "" in
  List.iter
    (fun comp ->
      let mutual =
        match comp with
        | [ _ ] -> None
        | _ ->
            let members = List.map (fun i -> units.(i)) comp in
            let cycle_names =
              String.concat " -> "
                (List.map (fun (u : unit_t) -> u.u_name) members)
            in
            let r =
              match
                List.find_map (fun (u : unit_t) -> u.u_bounded) members
              with
              | Some ev -> (Bounded, Printf.sprintf "[@wfrc.bounded]: %s" ev)
              | None ->
                  let helping =
                    List.exists
                      (fun (u : unit_t) ->
                        let skip = Hashtbl.find skips u.u_file in
                        let bare, dotted =
                          references ~skip ~root:u.u_body u.u_body
                        in
                        List.exists
                          (fun nme ->
                            nme <> u.u_key
                            && List.exists (has_substring nme) helping_vocab)
                          (bare @ List.map snd dotted))
                      members
                  in
                  if helping then
                    (Helping, Printf.sprintf "mutual helping cycle: %s" cycle_names)
                  else
                    ( Unbounded,
                      Printf.sprintf
                        "mutual recursion (%s) with no bounding witness"
                        cycle_names )
            in
            let u0 = List.hd members in
            classifications :=
              {
                c_file = u0.u_file;
                c_func = u0.u_name;
                c_line = u0.u_line;
                c_kind = "mutual-recursion";
                c_level = fst r;
                c_evidence = snd r;
              }
              :: !classifications;
            Some r
      in
      let lvl = ref Bounded and why = ref "" in
      let bump l w =
        if level_rank l > level_rank !lvl then begin
          lvl := l;
          why := w
        end
      in
      List.iter
        (fun i ->
          bump own_level.(i) own_blame.(i);
          (match mutual with Some (l, w) -> bump l w | None -> ());
          List.iter
            (fun j ->
              if not (List.mem j comp) then
                bump summary.(j)
                  (Printf.sprintf "calls %s.%s which is %s%s"
                     (module_of_file units.(j).u_file)
                     units.(j).u_name
                     (level_name summary.(j))
                     (if blame.(j) = "" then "" else " (" ^ blame.(j) ^ ")")))
            edges.(i))
        comp;
      List.iter
        (fun i ->
          let u = units.(i) in
          if u.u_bounded <> None then begin
            summary.(i) <- Bounded;
            blame.(i) <- ""
          end
          else if u.u_expect <> None then begin
            summary.(i) <-
              (if level_rank !lvl > level_rank Retry then Retry else !lvl);
            blame.(i) <- Printf.sprintf "expected-unbounded '%s'" u.u_name
          end
          else begin
            summary.(i) <- !lvl;
            blame.(i) <- !why
          end)
        comp)
    comps;
  (* expectation assertions: the annotated function must still contain
     an unbounded/retry cycle (directly or through its callees) *)
  let raw i =
    let l = ref own_level.(i) in
    List.iter
      (fun j -> if level_rank summary.(j) > level_rank !l then l := summary.(j))
      edges.(i);
    !l
  in
  let violations = ref [] in
  let expectations = ref [] in
  Array.iteri
    (fun i u ->
      match u.u_expect with
      | None -> ()
      | Some reason ->
          let satisfied = level_rank (raw i) >= level_rank Retry in
          expectations := (u.u_file, u.u_name, satisfied) :: !expectations;
          if not satisfied then
            violations :=
              {
                v_file = u.u_file;
                v_line = u.u_line;
                v_msg =
                  Printf.sprintf
                    "'%s' is annotated [@@wfrc.expect_unbounded \"%s\"] but \
                     every cycle in it is now bounded — the baseline no \
                     longer measures what the paper compares against"
                    u.u_name reason;
              }
              :: !violations)
    units;
  (* contract checks over every top-level function of a contracted file *)
  Array.iteri
    (fun i u ->
      if u.u_toplevel && u.u_expect = None && u.u_bounded = None then
        match
          List.find_map
            (fun (f, c, _) -> if f = u.u_file then Some c else None)
            universe
        with
        | None -> ()
        | Some c ->
            if level_rank summary.(i) > level_rank (contract_allows c) then
              violations :=
                {
                  v_file = u.u_file;
                  v_line = u.u_line;
                  v_msg =
                    Printf.sprintf "'%s' is %s but the file's contract is %s: %s"
                      u.u_name
                      (level_name summary.(i))
                      (contract_name c) blame.(i);
                }
                :: !violations)
    units;
  {
    files = List.map (fun (f, c, _) -> (f, c)) universe;
    classifications =
      List.sort
        (fun a b ->
          compare (a.c_file, a.c_line, a.c_func) (b.c_file, b.c_line, b.c_func))
        !classifications;
    expectations = List.sort compare !expectations;
    violations =
      List.sort
        (fun a b ->
          compare (a.v_file, a.v_line, a.v_msg) (b.v_file, b.v_line, b.v_msg))
        !violations;
  }

let pp_cls c =
  Printf.sprintf "%s:%d: %s [%s/%s] %s" c.c_file c.c_line c.c_func c.c_kind
    (level_name c.c_level) c.c_evidence
