[@@@wfrc.progress "lock_free"] (* static progress contract; checked by `wfrc_lint --pass progress` *)

(* Epoch-based reclamation (3-epoch scheme), the other mainstream
   deferred-reclamation baseline.

   Threads bracket every structure operation with enter/exit; inside
   the bracket, plain reads of links are safe because a node retired
   by [terminate] during epoch [e] is only recycled after the global
   epoch has advanced twice, which requires every active thread to
   have left epoch [e].

   Like hazard pointers this scheme reclaims on [terminate], so it
   shares HP's applicability restriction (no multi-level skiplist),
   and unlike both RC schemes it is not even non-blocking for
   reclamation: one stalled reader stops the epoch from advancing and
   memory from being recycled — the trade-off the paper's §1 surveys. *)

module P = Atomics.Primitives
module B = Atomics.Backend
module C = Atomics.Counters
module Value = Shmem.Value
module Layout = Shmem.Layout
module Arena = Shmem.Arena
module Freestore = Shmem.Freestore

type per_thread = {
  active : P.cell;
  epoch : P.cell;
  bags : Value.ptr list array;  (* indexed by epoch mod 3; local *)
  mutable bag_sizes : int array;
  mutable last_seen : int;
  mutable ops : int;
}

type t = {
  cfg : Mm_intf.config;
  backend : B.t;
  arena : Arena.t;
  ctr : C.t;
  global : P.cell;
  head : P.cell; (* stamped free-pool head *)
  store : Freestore.t option; (* sharded Native free store (else legacy) *)
  threads : per_thread array;
  advance_every : int;
  dead : bool array; (* tids declared permanently stopped *)
}

let name = "ebr"
let refcounted = false
let config t = t.cfg
let arena t = t.arena
let counters t = t.ctr

let create (cfg : Mm_intf.config) =
  let backend = cfg.backend in
  let layout =
    Layout.create ~num_links:cfg.num_links ~num_data:cfg.num_data
  in
  let arena =
    Arena.create ~backend ~rep:cfg.rep ~layout ~capacity:cfg.capacity
      ~num_roots:cfg.num_roots ()
  in
  for h = 1 to cfg.capacity do
    let p = Value.of_handle h in
    Arena.write_mm_next arena p
      (if h < cfg.capacity then Value.of_handle (h + 1) else Value.null)
  done;
  let ctr = C.create ~backend ~threads:cfg.threads () in
  let store =
    if Mm_intf.sharded cfg then
      Some
        (Freestore.create ~backend ~rep:cfg.rep ~arena ~counters:ctr
           ~shards:cfg.shards ~batch:cfg.batch ~threads:cfg.threads ())
    else None
  in
  {
    cfg;
    backend;
    arena;
    ctr;
    global = B.make_contended backend 0;
    head =
      B.make_contended backend
        (Value.pack_stamped ~stamp:0
           ~ptr:(if store = None then Value.of_handle 1 else Value.null));
    store;
    threads =
      Array.init cfg.threads (fun _ ->
          {
            (* owner-written, advance-scanner-read: padded per thread *)
            active = B.make_contended backend 0;
            epoch = B.make_contended backend 0;
            bags = [| []; []; [] |];
            bag_sizes = Array.make 3 0;
            last_seen = 0;
            ops = 0;
          });
    advance_every = 4;
    dead = Array.make cfg.threads false;
  }

let declare_dead t ~tid =
  if tid < 0 || tid >= t.cfg.threads then invalid_arg "Epoch.declare_dead";
  t.dead.(tid) <- true

let dead t =
  let acc = ref [] in
  for id = t.cfg.threads - 1 downto 0 do
    if t.dead.(id) then acc := id :: !acc
  done;
  !acc

let pool_push t ~tid node =
  Mm_intf.Events.emit ~tid node Mm_intf.Events.Free;
  C.incr t.ctr ~tid Free;
  match t.store with
  | Some fs -> Freestore.free fs ~tid node
  | None ->
      let rec push () =
        let hv = B.read t.backend t.head in
        Arena.write_mm_next t.arena node (Value.stamped_ptr hv);
        let nw =
          Value.pack_stamped ~stamp:(Value.stamped_stamp hv + 1) ~ptr:node
        in
        if not (B.cas t.backend t.head ~old:hv ~nw) then begin
          C.incr t.ctr ~tid Free_retry;
          push ()
        end
      in
      push ()

(* Free this thread's bag for epoch slot [(e+1) mod 3]: those nodes
   were retired at epoch [e-2] or earlier and every thread has since
   passed through at least one epoch boundary. *)
let collect t ~tid e =
  let pt = t.threads.(tid) in
  let slot = (e + 1) mod 3 in
  let victims = pt.bags.(slot) in
  if victims <> [] then begin
    pt.bags.(slot) <- [];
    pt.bag_sizes.(slot) <- 0;
    List.iter
      (fun p ->
        C.incr t.ctr ~tid Node_reclaimed;
        pool_push t ~tid p)
      victims
  end

let try_advance t ~tid =
  let e = B.read t.backend t.global in
  let blocked = ref false in
  Array.iter
    (fun pt ->
      if
        B.read t.backend pt.active = 1 && B.read t.backend pt.epoch <> e
      then blocked := true)
    t.threads;
  if (not !blocked) && B.cas t.backend t.global ~old:e ~nw:(e + 1) then
    C.incr t.ctr ~tid Epoch_advance

let enter_op t ~tid =
  let pt = t.threads.(tid) in
  B.write t.backend pt.active 1;
  let e = B.read t.backend t.global in
  B.write t.backend pt.epoch e;
  if e <> pt.last_seen then begin
    pt.last_seen <- e;
    collect t ~tid e
  end

let exit_op t ~tid =
  let pt = t.threads.(tid) in
  B.write t.backend pt.active 0;
  pt.ops <- pt.ops + 1;
  if pt.ops mod t.advance_every = 0 then try_advance t ~tid

let alloc t ~tid =
  C.incr t.ctr ~tid Alloc;
  (* Under pool pressure, try to advance the epoch and drain our own
     bags a few times before declaring out-of-memory. If another
     thread is stalled inside an epoch this cannot make progress —
     EBR's reclamation is blocking, which is part of the comparison. *)
  let pressure = ref 0 in
  let under_pressure () =
    if !pressure >= 6 then raise Mm_intf.Out_of_memory;
    incr pressure;
    (* NB: we may hold epoch-protected references ourselves, so we
       must not republish our epoch here; at most one advance can
       happen while we are inside the bracket, draining one bag
       generation. *)
    try_advance t ~tid;
    let e = B.read t.backend t.global in
    let pt = t.threads.(tid) in
    if e <> pt.last_seen then begin
      pt.last_seen <- e;
      collect t ~tid e
    end
  in
  match t.store with
  | Some fs ->
      (* Collected nodes land in our own cache, so the next pass sees
         them immediately. *)
      let rec claim ~adopted =
        match Freestore.alloc fs ~tid with
        | Some node ->
            Mm_intf.Events.emit ~tid node Mm_intf.Events.Alloc;
            node
        | None ->
            if !pressure >= 6 then begin
              (* Bounded degradation: adopt declared-dead peers'
                 caches once, then surface typed backpressure — a
                 crashed-in-bracket peer jams the epoch forever, so
                 spinning further cannot make progress. *)
              if (not adopted) && Freestore.adopt fs ~tid ~dead:(dead t) > 0
              then claim ~adopted:true
              else begin
                C.incr t.ctr ~tid Oom_backpressure;
                raise
                  (Mm_intf.Out_of_nodes { retries = !pressure; waits = 0 })
              end
            end
            else begin
              under_pressure ();
              C.incr t.ctr ~tid Alloc_retry;
              claim ~adopted
            end
      [@@wfrc.bounded
        "pressure counter: under_pressure advances !pressure toward the \
         bound of 6 at every pass; the single reset is gated by the \
         one-shot adopted flag, so at most 2*6 passes (each a bounded \
         epoch-advance-and-collect) before typed Out_of_nodes"]
      in
      claim ~adopted:false
  | None ->
      let rec pop () =
        let hv = B.read t.backend t.head in
        let node = Value.stamped_ptr hv in
        if Value.is_null node then begin
          under_pressure ();
          pop ()
        end
        else
          let next = Arena.read_mm_next t.arena node in
          let nw =
            Value.pack_stamped ~stamp:(Value.stamped_stamp hv + 1) ~ptr:next
          in
          if B.cas t.backend t.head ~old:hv ~nw then begin
            Mm_intf.Events.emit ~tid node Mm_intf.Events.Alloc;
            node
          end
          else begin
            C.incr t.ctr ~tid Alloc_retry;
            pop ()
          end
      [@@wfrc.expect_unbounded
        "stamped Treiber pop: the head CAS can lose to concurrent \
         pushes/pops indefinitely, and exhaustion spins through epoch \
         advances — the legacy lock-free allocation path"]
      in
      pop ()

(* Within the epoch bracket a plain read is already safe. *)
let deref t ~tid link =
  C.incr t.ctr ~tid Deref;
  Arena.read t.arena link

let release t ~tid p =
  if not (Value.is_null p) then C.incr t.ctr ~tid Release

let copy_ref _t ~tid:_ p = p

let cas_link t ~tid link ~old ~nw =
  C.incr t.ctr ~tid Cas_attempt;
  if Arena.cas t.arena link ~old ~nw then true
  else begin
    C.incr t.ctr ~tid Cas_failure;
    false
  end

let store_link t ~tid:_ link p = Arena.write t.arena link p

let terminate t ~tid p =
  Mm_intf.Events.emit ~tid (Value.unmark p) Mm_intf.Events.Retire;
  let pt = t.threads.(tid) in
  let e = B.read t.backend t.global in
  let slot = e mod 3 in
  pt.bags.(slot) <- Value.unmark p :: pt.bags.(slot);
  pt.bag_sizes.(slot) <- pt.bag_sizes.(slot) + 1

(* Quiescent inspection. *)
let free_set t =
  let cap = t.cfg.capacity in
  let seen = Array.make (cap + 1) false in
  let record where p =
    let h = Value.handle p in
    if seen.(h) then failwith ("Epoch: node reachable twice (" ^ where ^ ")");
    seen.(h) <- true
  in
  (match t.store with
  | Some fs ->
      Freestore.iter_free fs ~violation:failwith ~f:(fun p -> record "pool" p)
  | None ->
      let rec walk p steps =
        if steps > cap then failwith "Epoch: cycle in free pool"
        else if not (Value.is_null p) then begin
          record "pool" p;
          walk (Arena.read_mm_next t.arena p) (steps + 1)
        end
      in
      walk (Value.stamped_ptr (B.read t.backend t.head)) 0);
  Array.iter
    (fun pt ->
      Array.iter (List.iter (fun p -> record "bag" p)) pt.bags)
    t.threads;
  seen

let free_count t =
  let seen = free_set t in
  let c = ref 0 in
  Array.iter (fun b -> if b then incr c) seen;
  !c

(* Tolerant snapshot for the auditor. Limbo bags are [pending] under
   their owner: only that thread's [collect] empties them, so a
   crashed owner strands every bag generation — and worse, if it
   crashed inside the bracket ([active] still 1) the global epoch can
   never advance again and {e every} thread's bags jam. That unbounded
   loss is the E12 comparison point. Nothing is [pinned] node-wise:
   epochs protect eras, not individual nodes. *)
let custody t =
  let cap = t.cfg.capacity in
  let free = Array.make (cap + 1) false in
  let violations = ref [] in
  (match t.store with
  | Some fs ->
      (* Stripe chains, return buffers and caches are all [free]
         custody for the auditor's partition. *)
      Freestore.iter_free fs
        ~violation:(fun s -> violations := s :: !violations)
        ~f:(fun p ->
          let h = Value.handle p in
          if free.(h) then
            violations :=
              Printf.sprintf "node #%d in the pool twice" h :: !violations
          else free.(h) <- true)
  | None ->
      let rec walk p steps =
        if steps > cap then violations := "cycle in free pool" :: !violations
        else if not (Value.is_null p) then begin
          let h = Value.handle p in
          if free.(h) then
            violations :=
              Printf.sprintf "node #%d in the pool twice" h :: !violations
          else begin
            free.(h) <- true;
            walk (Arena.read_mm_next t.arena p) (steps + 1)
          end
        end
      in
      walk (Value.stamped_ptr (B.read t.backend t.head)) 0);
  let pending = ref [] in
  Array.iteri
    (fun tid pt ->
      Array.iter
        (List.iter (fun p ->
             let h = Value.handle p in
             if free.(h) then
               violations :=
                 Printf.sprintf "bagged node #%d also in the pool" h
                 :: !violations
             else pending := (tid, h) :: !pending))
        pt.bags)
    t.threads;
  Mm_intf.
    {
      free;
      pending = !pending;
      pinned = [];
      deferred = [];
      violations = List.rev !violations;
    }

(* Crash recovery: un-jam the epoch (a thread that crashed inside the
   bracket blocks [try_advance] forever), adopt the dead threads' bag
   generations into the survivor's bags, then advance+collect a few
   rounds — each round frees one of the three slots, so all adopted
   limbo drains back to the pool. Finally sweep orphans: a victim
   that crashed between unlinking a node and bagging it strands the
   node outside every bag, where only a root-marking pass can find
   it. *)
let recover t ~tid =
  if not (Array.exists Fun.id t.dead) then Mm_intf.no_recovery
  else begin
    let adopted = ref 0 and cleared = ref 0 in
    let me = t.threads.(tid) in
    for id = 0 to t.cfg.threads - 1 do
      if t.dead.(id) && id <> tid then begin
        let pt = t.threads.(id) in
        if B.read t.backend pt.active = 1 then begin
          B.write t.backend pt.active 0;
          incr cleared
        end;
        for slot = 0 to 2 do
          List.iter
            (fun p ->
              C.incr t.ctr ~tid Recovery_adopt;
              incr adopted;
              me.bags.(slot) <- p :: me.bags.(slot);
              me.bag_sizes.(slot) <- me.bag_sizes.(slot) + 1)
            pt.bags.(slot);
          pt.bags.(slot) <- [];
          pt.bag_sizes.(slot) <- 0
        done
      end
    done;
    for _ = 1 to 4 do
      try_advance t ~tid;
      let e = B.read t.backend t.global in
      me.last_seen <- e;
      collect t ~tid e
    done;
    let cached =
      match t.store with
      | Some fs -> Freestore.adopt fs ~tid ~dead:(dead t)
      | None -> 0
    in
    let c = custody t in
    let kept = Array.make (t.cfg.capacity + 1) false in
    List.iter (fun (_, h) -> kept.(h) <- true) c.Mm_intf.pending;
    let swept =
      Mm_intf.Orphan.sweep ~arena:t.arena ~free:c.Mm_intf.free
        ~keep:(fun h -> kept.(h))
        ~reclaim:(fun p ->
          C.incr t.ctr ~tid Recovery_adopt;
          C.incr t.ctr ~tid Node_reclaimed;
          pool_push t ~tid p)
    in
    {
      Mm_intf.adopted = !adopted + cached + swept;
      released = 0;
      cleared = !cleared;
    }
  end

let validate t =
  ignore (free_set t);
  Array.iteri
    (fun tid pt ->
      if B.read t.backend pt.active = 1 then
        failwith (Printf.sprintf "Epoch: thread %d still active" tid))
    t.threads

(* Sentinels are never retired, so plain reads of them are always
   safe; nothing to do. *)
let make_immortal _t ~tid:_ _p = ()
