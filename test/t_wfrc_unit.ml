(* Single-threaded semantics of the wait-free scheme: reference-count
   bookkeeping of every operation, free-list behaviour, reclamation
   cascades, out-of-memory, the announcement pool, and the Figure 6
   link operations. *)

open Helpers
module Gc = Wfrc.Gc
module Ann = Wfrc.Ann
module Value = Shmem.Value
module Arena = Shmem.Arena

let mk ?(threads = 2) ?(capacity = 16) ?(num_links = 2) ?(num_data = 1)
    ?(num_roots = 2) () =
  Gc.create
    (Mm_intf.config ~threads ~capacity ~num_links ~num_data ~num_roots ())

let refs gc p = Arena.read_mm_ref (Gc.arena gc) p

let alloc_tests =
  [
    tc "fresh manager: all nodes free, validates" (fun () ->
        let gc = mk () in
        Gc.validate gc;
        check_int "free" 16 (Gc.free_count gc));
    tc "alloc returns one reference (mm_ref=2)" (fun () ->
        let gc = mk () in
        let p = Gc.alloc gc ~tid:0 in
        check_int "mm_ref" 2 (refs gc p);
        check_int "one fewer free" 15 (Gc.free_count gc);
        Gc.validate gc);
    tc "alloc+release is identity on the free set" (fun () ->
        let gc = mk () in
        for _ = 1 to 100 do
          let p = Gc.alloc gc ~tid:0 in
          Gc.release gc ~tid:0 p
        done;
        check_int "free" 16 (Gc.free_count gc);
        Gc.validate gc);
    tc "distinct nodes until exhaustion; no double-hand-out" (fun () ->
        let gc = mk ~threads:1 ~capacity:8 () in
        let seen = Hashtbl.create 8 in
        let got = ref [] in
        (try
           for _ = 1 to 9 do
             let p = Gc.alloc gc ~tid:0 in
             let h = Value.handle p in
             if Hashtbl.mem seen h then Alcotest.failf "node %d twice" h;
             Hashtbl.replace seen h ();
             got := p :: !got
           done;
           Alcotest.fail "expected OOM"
         with Mm_intf.Out_of_memory | Mm_intf.Out_of_nodes _ -> ());
        (* single thread: no annAlloc parking possible, all 8 handed out *)
        check_int "all handed out" 8 (List.length !got);
        List.iter (fun p -> Gc.release gc ~tid:0 p) !got;
        check_int "all recovered" 8 (Gc.free_count gc);
        Gc.validate gc);
    tc "OOM is repeatable and non-destructive" (fun () ->
        let gc = mk ~threads:1 ~capacity:2 () in
        let a = Gc.alloc gc ~tid:0 and b = Gc.alloc gc ~tid:0 in
        fails_with (fun () -> Gc.alloc gc ~tid:0);
        fails_with (fun () -> Gc.alloc gc ~tid:0);
        Gc.release gc ~tid:0 a;
        let c = Gc.alloc gc ~tid:0 in
        check_int "recycled the freed node" (Value.handle a) (Value.handle c);
        Gc.release gc ~tid:0 b;
        Gc.release gc ~tid:0 c;
        Gc.validate gc);
    tc "fix_ref adjusts and returns the node" (fun () ->
        let gc = mk () in
        let p = Gc.alloc gc ~tid:0 in
        let q = Gc.fix_ref gc p 2 in
        check_int "same node" p q;
        check_int "bumped" 4 (refs gc p);
        Gc.release gc ~tid:0 p;
        check_int "back to one ref" 2 (refs gc p);
        Gc.release gc ~tid:0 p;
        Gc.validate gc);
    tc "free nodes carry mm_ref=1 (list) or 3 (annAlloc donation)" (fun () ->
        let gc = mk () in
        let p = Gc.alloc gc ~tid:0 in
        let h = Value.handle p in
        Gc.release gc ~tid:0 p;
        (* FreeNode either pushes to a free-list (mm_ref = 1) or donates
           via F3 (mm_ref = 3, see the Figure 5 erratum in DESIGN.md) *)
        let r = refs gc (Value.of_handle h) in
        check_bool (Printf.sprintf "claimed (got %d)" r) true (r = 1 || r = 3));
  ]

let deref_tests =
  [
    tc "deref of null link is null" (fun () ->
        let gc = mk () in
        let root = Arena.root_addr (Gc.arena gc) 0 in
        check_int "null" Value.null (Gc.deref gc ~tid:0 root);
        Gc.validate gc);
    tc "deref acquires a reference; release drops it" (fun () ->
        let gc = mk () in
        let arena = Gc.arena gc in
        let root = Arena.root_addr arena 0 in
        let a = Gc.alloc gc ~tid:0 in
        (* hand-rolled store: link share via fix_ref, per §3.2 *)
        Arena.write arena root (Gc.fix_ref gc a 2);
        check_int "alloc+link" 4 (refs gc a);
        let p = Gc.deref gc ~tid:1 root in
        check_int "same node" (Value.handle a) (Value.handle p);
        check_int "three refs" 6 (refs gc a);
        Gc.release gc ~tid:1 p;
        check_int "two refs" 4 (refs gc a);
        Gc.release gc ~tid:0 a;
        Arena.write arena root Value.null;
        Gc.release gc ~tid:0 a;
        check_int "reclaimed" 16 (Gc.free_count gc);
        Gc.validate gc);
    tc "deref returns marked words as stored" (fun () ->
        let gc = mk () in
        let arena = Gc.arena gc in
        let root = Arena.root_addr arena 0 in
        let a = Gc.alloc gc ~tid:0 in
        Arena.write arena root (Value.mark (Gc.fix_ref gc a 2));
        let w = Gc.deref gc ~tid:0 root in
        check_bool "marked" true (Value.is_marked w);
        check_int "same node" (Value.handle a) (Value.handle w);
        check_int "refcount counted on node" 6 (refs gc a);
        Gc.release gc ~tid:0 w;
        Arena.write arena root Value.null;
        Gc.release gc ~tid:0 a;
        Gc.release gc ~tid:0 a;
        Gc.validate gc);
    tc "announcement pool is clean after deref" (fun () ->
        let gc = mk () in
        let root = Arena.root_addr (Gc.arena gc) 0 in
        for _ = 1 to 10 do
          ignore (Gc.deref gc ~tid:0 root)
        done;
        Ann.validate (Gc.announcements gc));
    tc "help_deref with no announcements is a no-op" (fun () ->
        let gc = mk () in
        let root = Arena.root_addr (Gc.arena gc) 0 in
        Gc.help_deref gc ~tid:0 root;
        Gc.validate gc);
  ]

let release_tests =
  [
    tc "release cascades through held links (R3)" (fun () ->
        (* a -> b -> c chain via link slots; releasing the last ref on
           a must reclaim all three *)
        let gc = mk ~capacity:8 () in
        let arena = Gc.arena gc in
        let a = Gc.alloc gc ~tid:0 in
        let b = Gc.alloc gc ~tid:0 in
        let c = Gc.alloc gc ~tid:0 in
        Arena.write_link arena a 0 (Gc.fix_ref gc b 2);
        Arena.write_link arena b 0 (Gc.fix_ref gc c 2);
        Gc.release gc ~tid:0 b;
        Gc.release gc ~tid:0 c;
        check_int "only a held by us" 5 (Gc.free_count gc);
        Gc.release gc ~tid:0 a;
        check_int "cascade reclaimed all" 8 (Gc.free_count gc);
        Gc.validate gc);
    tc "cascade handles long chains without stack overflow" (fun () ->
        (* threads:1 so no node can be parked as a donation to another
           thread while we allocate the full capacity *)
        let n = 20_000 in
        let gc = mk ~threads:1 ~capacity:n ~num_links:1 () in
        let arena = Gc.arena gc in
        let first = Gc.alloc gc ~tid:0 in
        let prev = ref first in
        for _ = 2 to n do
          let x = Gc.alloc gc ~tid:0 in
          Arena.write_link arena !prev 0 (Gc.fix_ref gc x 2);
          Gc.release gc ~tid:0 x;
          prev := x
        done;
        check_int "all allocated" 0 (Gc.free_count gc);
        Gc.release gc ~tid:0 first;
        check_int "all reclaimed" n (Gc.free_count gc);
        Gc.validate gc);
    tc "release on a multiply-referenced node defers reclamation"
      (fun () ->
        let gc = mk () in
        let p = Gc.alloc gc ~tid:0 in
        ignore (Gc.fix_ref gc p 2);
        ignore (Gc.fix_ref gc p 2);
        Gc.release gc ~tid:0 p;
        Gc.release gc ~tid:0 p;
        check_int "still allocated" 15 (Gc.free_count gc);
        Gc.release gc ~tid:0 p;
        check_int "now reclaimed" 16 (Gc.free_count gc);
        Gc.validate gc);
    tc "reclaimed node's link slots are cleared" (fun () ->
        let gc = mk ~capacity:4 () in
        let arena = Gc.arena gc in
        let a = Gc.alloc gc ~tid:0 in
        let b = Gc.alloc gc ~tid:0 in
        let ha = Value.handle a in
        Arena.write_link arena a 0 (Gc.fix_ref gc b 2);
        Gc.release gc ~tid:0 b;
        Gc.release gc ~tid:0 a;
        check_int "slots cleared" 0
          (Arena.read_link arena (Value.of_handle ha) 0);
        Gc.validate gc);
  ]

(* The Wfrc (Mm_intf.S) wrapper: Figure 6 semantics. *)
let link_tests =
  [
    tc "store_link moves the link share" (fun () ->
        let cfg = small_cfg () in
        let mm = mm_of "wfrc" cfg in
        let arena = Mm_intf.arena mm in
        let root = Arena.root_addr arena 0 in
        let a = Mm_intf.alloc mm ~tid:0 in
        Mm_intf.store_link mm ~tid:0 root a;
        check_int "us + link" 4 (Arena.read_mm_ref arena a);
        let b = Mm_intf.alloc mm ~tid:0 in
        Mm_intf.store_link mm ~tid:0 root b;
        check_int "a lost the link share" 2 (Arena.read_mm_ref arena a);
        check_int "b gained it" 4 (Arena.read_mm_ref arena b);
        Mm_intf.store_link mm ~tid:0 root Value.null;
        Mm_intf.release mm ~tid:0 a;
        Mm_intf.release mm ~tid:0 b;
        assert_all_free mm);
    tc "cas_link success transfers shares and helps" (fun () ->
        let cfg = small_cfg () in
        let mm = mm_of "wfrc" cfg in
        let arena = Mm_intf.arena mm in
        let root = Arena.root_addr arena 0 in
        let a = Mm_intf.alloc mm ~tid:0 in
        Mm_intf.store_link mm ~tid:0 root a;
        let b = Mm_intf.alloc mm ~tid:0 in
        check_bool "cas ok" true (Mm_intf.cas_link mm ~tid:0 root ~old:a ~nw:b);
        check_int "a: only ours" 2 (Arena.read_mm_ref arena a);
        check_int "b: ours + link" 4 (Arena.read_mm_ref arena b);
        ignore (Mm_intf.cas_link mm ~tid:0 root ~old:b ~nw:Value.null);
        Mm_intf.release mm ~tid:0 a;
        Mm_intf.release mm ~tid:0 b;
        assert_all_free mm);
    tc "cas_link failure changes nothing" (fun () ->
        let cfg = small_cfg () in
        let mm = mm_of "wfrc" cfg in
        let arena = Mm_intf.arena mm in
        let root = Arena.root_addr arena 0 in
        let a = Mm_intf.alloc mm ~tid:0 in
        Mm_intf.store_link mm ~tid:0 root a;
        let b = Mm_intf.alloc mm ~tid:0 in
        check_bool "cas misses" false
          (Mm_intf.cas_link mm ~tid:0 root ~old:b ~nw:b);
        check_int "a untouched" 4 (Arena.read_mm_ref arena a);
        check_int "b untouched" 2 (Arena.read_mm_ref arena b);
        Mm_intf.store_link mm ~tid:0 root Value.null;
        Mm_intf.release mm ~tid:0 a;
        Mm_intf.release mm ~tid:0 b;
        assert_all_free mm);
    tc "copy_ref duplicates a held reference" (fun () ->
        let cfg = small_cfg () in
        let mm = mm_of "wfrc" cfg in
        let arena = Mm_intf.arena mm in
        let a = Mm_intf.alloc mm ~tid:0 in
        let a' = Mm_intf.copy_ref mm ~tid:0 a in
        check_int "same" a a';
        check_int "two refs" 4 (Arena.read_mm_ref arena a);
        Mm_intf.release mm ~tid:0 a;
        Mm_intf.release mm ~tid:0 a';
        assert_all_free mm);
    tc "null is inert through the whole API" (fun () ->
        let cfg = small_cfg () in
        let mm = mm_of "wfrc" cfg in
        Mm_intf.release mm ~tid:0 Value.null;
        check_int "copy null" Value.null
          (Mm_intf.copy_ref mm ~tid:0 Value.null);
        assert_all_free mm);
  ]

(* Direct announcement-pool mechanics. *)
let ann_tests =
  [
    tc "choose_slot returns a busy-free slot" (fun () ->
        let ann = Ann.create ~threads:3 () in
        check_int "first free" 0 (Ann.choose_slot ann ~tid:1);
        Ann.busy_incr ann ~id:1 ~slot:0;
        check_int "skips busy" 1 (Ann.choose_slot ann ~tid:1);
        Ann.busy_decr ann ~id:1 ~slot:0;
        check_int "freed again" 0 (Ann.choose_slot ann ~tid:1));
    tc "choose_slot fails when all slots busy (invariant breach)"
      (fun () ->
        let ann = Ann.create ~threads:2 () in
        Ann.busy_incr ann ~id:0 ~slot:0;
        Ann.busy_incr ann ~id:0 ~slot:1;
        fails_with ~substring:"no free slot" (fun () ->
            Ann.choose_slot ann ~tid:0));
    tc "announce/retract roundtrip" (fun () ->
        let ann = Ann.create ~threads:2 () in
        Ann.set_index ann ~tid:0 1;
        Ann.announce ann ~tid:0 ~slot:1 42;
        check_int "visible" (Value.enc_link 42) (Ann.read_slot ann ~id:0 ~slot:1);
        check_int "index visible" 1 (Ann.read_index ann ~id:0);
        let w = Ann.retract ann ~tid:0 ~slot:1 in
        check_int "got own link back" (Value.enc_link 42) w;
        check_int "cleared" 0 (Ann.read_slot ann ~id:0 ~slot:1));
    tc "answer_cas answers exactly once" (fun () ->
        let ann = Ann.create ~threads:2 () in
        Ann.set_index ann ~tid:0 0;
        Ann.announce ann ~tid:0 ~slot:0 7;
        check_bool "first answer lands" true
          (Ann.answer_cas ann ~id:0 ~slot:0 ~link:7 (Value.of_handle 3));
        check_bool "second answer refused" false
          (Ann.answer_cas ann ~id:0 ~slot:0 ~link:7 (Value.of_handle 4));
        let w = Ann.retract ann ~tid:0 ~slot:0 in
        check_int "owner sees the answer" (Value.of_handle 3) w);
    tc "answer for a different link is refused" (fun () ->
        let ann = Ann.create ~threads:2 () in
        Ann.set_index ann ~tid:0 0;
        Ann.announce ann ~tid:0 ~slot:0 7;
        check_bool "wrong link" false
          (Ann.answer_cas ann ~id:0 ~slot:0 ~link:8 (Value.of_handle 3));
        ignore (Ann.retract ann ~tid:0 ~slot:0));
    tc "validate detects leftover busy" (fun () ->
        let ann = Ann.create ~threads:2 () in
        Ann.busy_incr ann ~id:1 ~slot:0;
        fails_with ~substring:"busy" (fun () -> Ann.validate ann));
  ]

let ablation_tests =
  [
    tc "help_alloc:false still allocates correctly" (fun () ->
        let gc =
          Gc.create ~help_alloc:false
            (Mm_intf.config ~threads:2 ~capacity:8 ~num_links:0 ~num_data:0
               ~num_roots:0 ())
        in
        let ps = List.init 8 (fun _ -> Gc.alloc gc ~tid:0) in
        check_int "all distinct" 8
          (List.length (List.sort_uniq compare ps));
        List.iter (fun p -> Gc.release gc ~tid:0 p) ps;
        check_int "recovered" 8 (Gc.free_count gc);
        Gc.validate gc);
    tc "own-index placement still conserves nodes" (fun () ->
        let gc =
          Gc.create ~placement:`Own_index
            (Mm_intf.config ~threads:2 ~capacity:8 ~num_links:0 ~num_data:0
               ~num_roots:0 ())
        in
        for tid = 0 to 1 do
          for _ = 1 to 20 do
            let p = Gc.alloc gc ~tid in
            Gc.release gc ~tid p
          done
        done;
        check_int "conserved" 8 (Gc.free_count gc);
        Gc.validate gc);
  ]

let prop_tests =
  [
    qc ~count:50 "random alloc/release interleavings conserve nodes"
      QCheck.(list (int_range 0 2))
      (fun script ->
        let gc = mk ~threads:1 ~capacity:8 ~num_links:1 () in
        let held = ref [] in
        List.iter
          (fun op ->
            match op with
            | 0 -> (
                try held := Gc.alloc gc ~tid:0 :: !held
                with Mm_intf.Out_of_memory | Mm_intf.Out_of_nodes _ -> ())
            | _ -> (
                match !held with
                | [] -> ()
                | p :: rest ->
                    Gc.release gc ~tid:0 p;
                    held := rest))
          script;
        List.iter (fun p -> Gc.release gc ~tid:0 p) !held;
        Gc.validate gc;
        Gc.free_count gc = 8);
    qc ~count:50 "random link graphs are fully reclaimed"
      QCheck.(list (pair (int_range 0 7) (int_range 0 7)))
      (fun edges ->
        (* build arbitrary link graphs among 8 nodes (cycles allowed
           only as DAG here: only link lower -> higher to avoid
           unreclaimable cycles, a documented limitation of RC) *)
        let gc = mk ~threads:1 ~capacity:8 ~num_links:2 () in
        let arena = Gc.arena gc in
        let nodes = Array.init 8 (fun _ -> Gc.alloc gc ~tid:0) in
        let next_slot = Array.make 8 0 in
        List.iter
          (fun (i, j) ->
            if i < j && next_slot.(i) < 2 then begin
              Arena.write_link arena nodes.(i) next_slot.(i)
                (Gc.fix_ref gc nodes.(j) 2);
              next_slot.(i) <- next_slot.(i) + 1
            end)
          edges;
        Array.iter (fun p -> Gc.release gc ~tid:0 p) nodes;
        Gc.validate gc;
        Gc.free_count gc = 8);
  ]

let suite =
  alloc_tests @ deref_tests @ release_tests @ link_tests @ ann_tests
  @ ablation_tests @ prop_tests
