(* The exhaustion path of the paper's footnote 4: when the fixed arena
   runs dry, AllocNode must detect it and raise — and freeing a single
   node must make allocation possible again. Every scheme, one thread,
   so the whole path is deterministic without the engine. *)

open Helpers

(* Capacity small enough that hp's per-thread hazard slots can pin
   every allocated node at once with a single thread. *)
let cfg () = small_cfg ~threads:1 ~capacity:12 ~num_roots:1 ()

(* Recycling may need an operation bracket or two before the freed
   node is allocatable again (ebr advances one epoch generation per
   bracket; hp scans under pool pressure). *)
let alloc_with_retries mm ~tid =
  let rec go n =
    Mm.enter_op mm ~tid;
    match Mm.alloc mm ~tid with
    | p ->
        Mm.terminate mm ~tid p;
        Mm.release mm ~tid p;
        Mm.exit_op mm ~tid
    | exception Mm.Out_of_memory ->
        Mm.exit_op mm ~tid;
        if n = 0 then Alcotest.fail "freed node never became allocatable"
        else go (n - 1)
  in
  go 5

let exhaustion_roundtrip scheme =
  tc (scheme ^ ": exhaust, free one, alloc again") (fun () ->
      let cfg = cfg () in
      let mm = mm_of scheme cfg in
      let tid = 0 in
      Mm.enter_op mm ~tid;
      let held = ref [] in
      let oom = ref false in
      (try
         while true do
           held := Mm.alloc mm ~tid :: !held
         done
       with Mm.Out_of_memory -> oom := true);
      check_bool "Out_of_memory raised" true !oom;
      check_int "every node was handed out" cfg.capacity
        (List.length !held);
      check_int "free store empty at exhaustion" 0 (Mm.free_count mm);
      (* still exhausted: a retry without freeing must fail again *)
      (match Mm.alloc mm ~tid with
      | _ -> Alcotest.fail "alloc succeeded on an exhausted arena"
      | exception Mm.Out_of_memory -> ());
      (* free exactly one node *)
      (match !held with
      | [] -> Alcotest.fail "nothing allocated"
      | p :: rest ->
          Mm.terminate mm ~tid p;
          Mm.release mm ~tid p;
          held := rest);
      Mm.exit_op mm ~tid;
      (* ... and allocation works again *)
      alloc_with_retries mm ~tid;
      (* the rest of the held nodes are still valid and releasable *)
      Mm.enter_op mm ~tid;
      List.iter
        (fun p ->
          Mm.terminate mm ~tid p;
          Mm.release mm ~tid p)
        !held;
      Mm.exit_op mm ~tid)

(* Exhaustion must also be detected mid-structure: fill the arena via
   root links so the nodes are genuinely in use, not just held. *)
let exhaustion_in_structure scheme =
  tc (scheme ^ ": OOM with all nodes linked into the structure")
    (fun () ->
      let cfg =
        small_cfg ~threads:1 ~capacity:8 ~num_links:1 ~num_roots:1 ()
      in
      let mm = mm_of scheme cfg in
      let tid = 0 in
      let arena = Mm.arena mm in
      let root = Arena.root_addr arena 0 in
      Mm.enter_op mm ~tid;
      (* build a list of all [capacity] nodes hanging off the root *)
      for _ = 1 to cfg.capacity do
        let p = Mm.alloc mm ~tid in
        let old = Mm.deref mm ~tid root in
        Mm.store_link mm ~tid (Arena.link_addr arena p 0) old;
        if not (Value.is_null old) then Mm.release mm ~tid old;
        Mm.store_link mm ~tid root p;
        Mm.release mm ~tid p
      done;
      (match Mm.alloc mm ~tid with
      | _ -> Alcotest.fail "alloc succeeded with every node reachable"
      | exception Mm.Out_of_memory -> ());
      (* pop one node off the list; its memory must come back *)
      let p = Mm.deref mm ~tid root in
      let next = Mm.deref mm ~tid (Arena.link_addr arena p 0) in
      Mm.store_link mm ~tid root next;
      if not (Value.is_null next) then Mm.release mm ~tid next;
      Mm.release mm ~tid p;
      Mm.terminate mm ~tid p;
      Mm.exit_op mm ~tid;
      alloc_with_retries mm ~tid)

(* Bounded OOM degradation (DESIGN.md §7): on the sharded Native
   store, exhaustion with a crashed peer holding the last nodes must
   terminate with typed [Out_of_nodes] backpressure — after a bounded
   number of scan/park rounds, never an unbounded park — and declaring
   the peer dead must unblock allocation through dead-cache adoption
   alone, before any full recovery pass. Driven single-threaded with
   tid indices: manager ops need no engine. *)
let dead_holder_backpressure scheme =
  tc (scheme ^ ": dead holder degrades to Out_of_nodes, adoption unblocks")
    (fun () ->
      let capacity = 24 in
      let cfg =
        Mm.config ~backend:Atomics.Backend.Native ~shards:2 ~batch:4
          ~threads:2 ~capacity ~num_links:1 ~num_data:1 ~num_roots:1 ()
      in
      let mm = mm_of scheme cfg in
      let hold tid =
        let held = ref [] in
        (try
           for _ = 1 to capacity + 1 do
             held := Mm.alloc mm ~tid :: !held
           done
         with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ());
        !held
      in
      (* the doomed peer takes everything, parks one cache-full back
         (only adoption can reach those), then "crashes" *)
      let held1 = hold 1 in
      check_bool "peer took the arena" true (List.length held1 > capacity / 2);
      let rec release_n n = function
        | p :: rest when n > 0 ->
            Mm.release mm ~tid:1 p;
            release_n (n - 1) rest
        | _ -> ()
      in
      release_n 8 held1;
      (* the survivor's exhausted alloc must be typed backpressure with
         bounded retry accounting, not Out_of_memory and not a hang *)
      let held0 = ref [] and seen = ref None in
      (try
         for _ = 1 to capacity + 1 do
           held0 := Mm.alloc mm ~tid:0 :: !held0
         done
       with
      | Mm.Out_of_nodes { retries; waits } -> seen := Some (retries, waits)
      | Mm.Out_of_memory -> Alcotest.fail "untyped Out_of_memory on sharded");
      (match !seen with
      | Some (retries, waits) ->
          check_bool "bounded retries recorded" true (retries >= 1);
          check_bool "wait count is sane" true (waits >= 0)
      | None -> Alcotest.fail "exhaustion never surfaced");
      List.iter (fun p -> Mm.release mm ~tid:0 p) !held0;
      (* declaring the peer dead unblocks allocation via the in-alloc
         dead-cache adoption path alone *)
      Mm.declare_dead mm ~tid:1;
      (match Mm.alloc mm ~tid:0 with
      | p -> Mm.release mm ~tid:0 p
      | exception (Mm.Out_of_memory | Mm.Out_of_nodes _) ->
          Alcotest.fail "adoption did not unblock allocation");
      (* a full recovery pass returns the dead peer's held nodes too *)
      let o = Harness.Recovery.run ~dead:[ 1 ] ~by:0 mm in
      let post = o.Harness.Recovery.post in
      check_bool
        ("post-recovery audit ok: " ^ Harness.Audit.to_string post)
        true
        (Harness.Audit.ok post);
      check_int "crash_held collapsed" 0 post.Harness.Audit.crash_held;
      check_int "nothing leaked" 0 post.Harness.Audit.leaked;
      match Mm.alloc mm ~tid:0 with
      | p -> Mm.release mm ~tid:0 p
      | exception (Mm.Out_of_memory | Mm.Out_of_nodes _) ->
          Alcotest.fail "allocation still blocked after recovery")

let suite =
  List.concat_map
    (fun s -> [ exhaustion_roundtrip s; exhaustion_in_structure s ])
    all_schemes
  @ List.map dead_holder_backpressure rc_schemes
