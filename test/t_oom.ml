(* The exhaustion path of the paper's footnote 4: when the fixed arena
   runs dry, AllocNode must detect it and raise — and freeing a single
   node must make allocation possible again. Every scheme, one thread,
   so the whole path is deterministic without the engine. *)

open Helpers

(* Capacity small enough that hp's per-thread hazard slots can pin
   every allocated node at once with a single thread. *)
let cfg () = small_cfg ~threads:1 ~capacity:12 ~num_roots:1 ()

(* Recycling may need an operation bracket or two before the freed
   node is allocatable again (ebr advances one epoch generation per
   bracket; hp scans under pool pressure). *)
let alloc_with_retries mm ~tid =
  let rec go n =
    Mm.enter_op mm ~tid;
    match Mm.alloc mm ~tid with
    | p ->
        Mm.terminate mm ~tid p;
        Mm.release mm ~tid p;
        Mm.exit_op mm ~tid
    | exception Mm.Out_of_memory ->
        Mm.exit_op mm ~tid;
        if n = 0 then Alcotest.fail "freed node never became allocatable"
        else go (n - 1)
  in
  go 5

let exhaustion_roundtrip scheme =
  tc (scheme ^ ": exhaust, free one, alloc again") (fun () ->
      let cfg = cfg () in
      let mm = mm_of scheme cfg in
      let tid = 0 in
      Mm.enter_op mm ~tid;
      let held = ref [] in
      let oom = ref false in
      (try
         while true do
           held := Mm.alloc mm ~tid :: !held
         done
       with Mm.Out_of_memory -> oom := true);
      check_bool "Out_of_memory raised" true !oom;
      check_int "every node was handed out" cfg.capacity
        (List.length !held);
      check_int "free store empty at exhaustion" 0 (Mm.free_count mm);
      (* still exhausted: a retry without freeing must fail again *)
      (match Mm.alloc mm ~tid with
      | _ -> Alcotest.fail "alloc succeeded on an exhausted arena"
      | exception Mm.Out_of_memory -> ());
      (* free exactly one node *)
      (match !held with
      | [] -> Alcotest.fail "nothing allocated"
      | p :: rest ->
          Mm.terminate mm ~tid p;
          Mm.release mm ~tid p;
          held := rest);
      Mm.exit_op mm ~tid;
      (* ... and allocation works again *)
      alloc_with_retries mm ~tid;
      (* the rest of the held nodes are still valid and releasable *)
      Mm.enter_op mm ~tid;
      List.iter
        (fun p ->
          Mm.terminate mm ~tid p;
          Mm.release mm ~tid p)
        !held;
      Mm.exit_op mm ~tid)

(* Exhaustion must also be detected mid-structure: fill the arena via
   root links so the nodes are genuinely in use, not just held. *)
let exhaustion_in_structure scheme =
  tc (scheme ^ ": OOM with all nodes linked into the structure")
    (fun () ->
      let cfg =
        small_cfg ~threads:1 ~capacity:8 ~num_links:1 ~num_roots:1 ()
      in
      let mm = mm_of scheme cfg in
      let tid = 0 in
      let arena = Mm.arena mm in
      let root = Arena.root_addr arena 0 in
      Mm.enter_op mm ~tid;
      (* build a list of all [capacity] nodes hanging off the root *)
      for _ = 1 to cfg.capacity do
        let p = Mm.alloc mm ~tid in
        let old = Mm.deref mm ~tid root in
        Mm.store_link mm ~tid (Arena.link_addr arena p 0) old;
        if not (Value.is_null old) then Mm.release mm ~tid old;
        Mm.store_link mm ~tid root p;
        Mm.release mm ~tid p
      done;
      (match Mm.alloc mm ~tid with
      | _ -> Alcotest.fail "alloc succeeded with every node reachable"
      | exception Mm.Out_of_memory -> ());
      (* pop one node off the list; its memory must come back *)
      let p = Mm.deref mm ~tid root in
      let next = Mm.deref mm ~tid (Arena.link_addr arena p 0) in
      Mm.store_link mm ~tid root next;
      if not (Value.is_null next) then Mm.release mm ~tid next;
      Mm.release mm ~tid p;
      Mm.terminate mm ~tid p;
      Mm.exit_op mm ~tid;
      alloc_with_retries mm ~tid)

let suite =
  List.concat_map
    (fun s -> [ exhaustion_roundtrip s; exhaustion_in_structure s ])
    all_schemes
