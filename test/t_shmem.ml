(* Layout and arena tests: addressing, field isolation, atomic word
   operations, inverse mapping. *)

open Helpers
module Layout = Shmem.Layout
module Value = Shmem.Value
module Arena = Shmem.Arena

let layout_tests =
  [
    tc "node_size accounting" (fun () ->
        let l = Layout.create ~num_links:3 ~num_data:2 in
        check_int "size" 7 (Layout.node_size l);
        check_int "links" 3 (Layout.num_links l);
        check_int "data" 2 (Layout.num_data l));
    tc "mm_ref is the first field (Lemma 1 layout)" (fun () ->
        check_int "offset" 0 Layout.mm_ref_offset;
        check_int "next" 1 Layout.mm_next_offset);
    tc "offsets are disjoint and ordered" (fun () ->
        let l = Layout.create ~num_links:2 ~num_data:2 in
        check_int "link0" 2 (Layout.link_offset l 0);
        check_int "link1" 3 (Layout.link_offset l 1);
        check_int "data0" 4 (Layout.data_offset l 0);
        check_int "data1" 5 (Layout.data_offset l 1));
    tc "out-of-range offsets rejected" (fun () ->
        let l = Layout.create ~num_links:1 ~num_data:1 in
        fails_with (fun () -> Layout.link_offset l 1);
        fails_with (fun () -> Layout.link_offset l (-1));
        fails_with (fun () -> Layout.data_offset l 1));
    tc "zero links and data allowed" (fun () ->
        let l = Layout.create ~num_links:0 ~num_data:0 in
        check_int "header only" Layout.header_size (Layout.node_size l));
    tc "negative sizes rejected" (fun () ->
        fails_with (fun () -> Layout.create ~num_links:(-1) ~num_data:0));
  ]

let mk_arena ?(capacity = 8) ?(num_roots = 3) () =
  let layout = Layout.create ~num_links:2 ~num_data:2 in
  Arena.create ~layout ~capacity ~num_roots ()

let arena_tests =
  [
    tc "creation geometry" (fun () ->
        let a = mk_arena () in
        check_int "capacity" 8 (Arena.capacity a);
        check_int "roots" 3 (Arena.num_roots a);
        check_int "cells" (3 + (8 * 6)) (Arena.num_cells a));
    tc "cells start at zero (null)" (fun () ->
        let a = mk_arena () in
        for i = 0 to Arena.num_cells a - 1 do
          if Arena.read a i <> 0 then Alcotest.failf "cell %d not zero" i
        done);
    tc "root addresses are the first cells" (fun () ->
        let a = mk_arena () in
        check_int "root0" 0 (Arena.root_addr a 0);
        check_int "root2" 2 (Arena.root_addr a 2);
        fails_with (fun () -> Arena.root_addr a 3));
    tc "node_base and handle bounds" (fun () ->
        let a = mk_arena () in
        check_int "first node after roots" 3 (Arena.node_base a 1);
        check_int "second node" 9 (Arena.node_base a 2);
        fails_with (fun () -> Arena.node_base a 0);
        fails_with (fun () -> Arena.node_base a 9));
    tc "field writes are isolated" (fun () ->
        let a = mk_arena () in
        let p1 = Value.of_handle 1 and p2 = Value.of_handle 2 in
        Arena.write a (Arena.mm_ref_addr a p1) 42;
        Arena.write_link a p1 0 7;
        Arena.write_link a p1 1 8;
        Arena.write_data a p1 0 9;
        Arena.write_data a p1 1 10;
        Arena.write_mm_next a p1 p2;
        check_int "ref" 42 (Arena.read_mm_ref a p1);
        check_int "l0" 7 (Arena.read_link a p1 0);
        check_int "l1" 8 (Arena.read_link a p1 1);
        check_int "d0" 9 (Arena.read_data a p1 0);
        check_int "d1" 10 (Arena.read_data a p1 1);
        check_int "next" p2 (Arena.read_mm_next a p1);
        (* neighbour untouched *)
        check_int "p2 ref" 0 (Arena.read_mm_ref a p2);
        check_int "p2 l0" 0 (Arena.read_link a p2 0));
    tc "marked pointers address the same node" (fun () ->
        let a = mk_arena () in
        let p = Value.of_handle 3 in
        check_int "ref addr" (Arena.mm_ref_addr a p)
          (Arena.mm_ref_addr a (Value.mark p));
        check_int "link addr" (Arena.link_addr a p 1)
          (Arena.link_addr a (Value.mark p) 1));
    tc "cas/faa/swap word semantics" (fun () ->
        let a = mk_arena () in
        let addr = Arena.root_addr a 0 in
        check_bool "cas hit" true (Arena.cas a addr ~old:0 ~nw:5);
        check_bool "cas miss" false (Arena.cas a addr ~old:0 ~nw:9);
        check_int "after cas" 5 (Arena.read a addr);
        let prev = Arena.faa a addr 3 in
        check_int "faa returns previous" 5 prev;
        check_int "after faa" 8 (Arena.read a addr);
        let old = Arena.swap a addr 100 in
        check_int "swap returns old" 8 old;
        check_int "after swap" 100 (Arena.read a addr));
    tc "owner_of inverse mapping" (fun () ->
        let a = mk_arena () in
        (match Arena.owner_of a 1 with
        | `Root 1 -> ()
        | _ -> Alcotest.fail "expected root 1");
        (match Arena.owner_of a (Arena.node_base a 2 + 4) with
        | `Node (2, 4) -> ()
        | _ -> Alcotest.fail "expected node 2 offset 4");
        fails_with (fun () -> Arena.owner_of a (-1));
        fails_with (fun () -> Arena.owner_of a (Arena.num_cells a)));
    tc "iter_nodes covers every handle once" (fun () ->
        let a = mk_arena () in
        let seen = ref [] in
        Arena.iter_nodes a (fun p -> seen := Value.handle p :: !seen);
        check_int "count" 8 (List.length !seen);
        check_bool "in order" true
          (List.rev !seen = List.init 8 (fun i -> i + 1)));
    tc "faa on mm_ref accumulates" (fun () ->
        let a = mk_arena () in
        let p = Value.of_handle 5 in
        Arena.faa_mm_ref a p 2;
        Arena.faa_mm_ref a p 2;
        Arena.faa_mm_ref a p (-2);
        check_int "net" 2 (Arena.read_mm_ref a p));
    tc "invalid creation rejected" (fun () ->
        let layout = Layout.create ~num_links:0 ~num_data:0 in
        fails_with (fun () -> Arena.create ~layout ~capacity:0 ~num_roots:0 ());
        fails_with (fun () -> Arena.create ~layout ~capacity:4 ~num_roots:(-1) ()));
  ]

(* Representation-parametrized addressing: the same logical geometry
   must hold on the dense boxed store and the padded unboxed store —
   owner_of is the uniform inverse, and physical padding words (which
   only the unboxed rep has between fields) have no owner. *)
module B = Atomics.Backend

let mk_native_arena rep =
  let layout = Layout.create ~num_links:2 ~num_data:2 in
  Arena.create ~backend:B.Native ~rep ~layout ~capacity:8 ~num_roots:3 ()

let rep_arena_tests =
  List.concat_map
    (fun rep ->
      let name s = Printf.sprintf "%s [native %s]" s (B.rep_name rep) in
      [
        tc (name "addressing round-trips through owner_of") (fun () ->
            let a = mk_native_arena rep in
            for r = 0 to Arena.num_roots a - 1 do
              match Arena.owner_of a (Arena.root_addr a r) with
              | `Root r' -> check_int "root index" r r'
              | `Node _ -> Alcotest.failf "root %d mapped to a node" r
            done;
            for h = 1 to Arena.capacity a do
              let p = Value.of_handle h in
              let field what addr logical =
                match Arena.owner_of a addr with
                | `Node (h', off) ->
                    check_int (what ^ " handle") h h';
                    check_int (what ^ " offset") logical off
                | `Root _ -> Alcotest.failf "%s of node %d mapped to a root" what h
              in
              field "mm_ref" (Arena.mm_ref_addr a p) 0;
              field "mm_next" (Arena.mm_next_addr a p) 1;
              for i = 0 to 1 do
                field "link" (Arena.link_addr a p i) (2 + i)
              done;
              for j = 0 to 1 do
                field "data" (Arena.data_addr a p j) (4 + j)
              done
            done);
        tc (name "marked pointers address the same node") (fun () ->
            let a = mk_native_arena rep in
            let p = Value.of_handle 3 in
            check_int "ref addr" (Arena.mm_ref_addr a p)
              (Arena.mm_ref_addr a (Value.mark p));
            check_int "link addr" (Arena.link_addr a p 1)
              (Arena.link_addr a (Value.mark p) 1));
        tc (name "word ops keep figure 2 semantics") (fun () ->
            let a = mk_native_arena rep in
            let addr = Arena.mm_ref_addr a (Value.of_handle 5) in
            check_bool "cas hit" true (Arena.cas a addr ~old:0 ~nw:5);
            check_bool "cas miss" false (Arena.cas a addr ~old:0 ~nw:9);
            check_int "faa returns previous" 5 (Arena.faa a addr 3);
            check_int "swap returns old" 8 (Arena.swap a addr 100);
            check_int "final" 100 (Arena.read a addr);
            (* neighbours untouched *)
            check_int "prev node" 0 (Arena.read_mm_ref a (Value.of_handle 4));
            check_int "next node" 0 (Arena.read_mm_ref a (Value.of_handle 6)));
        tc (name "out-of-range addresses rejected") (fun () ->
            let a = mk_native_arena rep in
            fails_with (fun () -> Arena.owner_of a (-1));
            fails_with (fun () -> Arena.node_base a 0);
            fails_with (fun () -> Arena.node_base a 9);
            fails_with (fun () -> Arena.root_addr a 3);
            (* far past the physical end of the store *)
            fails_with (fun () -> Arena.owner_of a 1_000_000);
            fails_with (fun () -> Arena.read a 1_000_000));
      ])
    [ B.Boxed; B.Unboxed ]
  @ [
      tc "unboxed padding words have no owner" (fun () ->
          let a = mk_native_arena B.Unboxed in
          (* between root 0 and root 1: roots are line-strided *)
          fails_with ~substring:"padding" (fun () ->
              Arena.owner_of a (Arena.root_addr a 0 + 1));
          (* between mm_ref and mm_next inside a node block *)
          fails_with ~substring:"padding" (fun () ->
              Arena.owner_of a (Arena.mm_ref_addr a (Value.of_handle 1) + 1)));
      tc "boxed native store is dense (no padding words)" (fun () ->
          let a = mk_native_arena B.Boxed in
          (* every address below num_cells has an owner *)
          for addr = 0 to Arena.num_cells a - 1 do
            ignore (Arena.owner_of a addr)
          done);
    ]

let prop_tests =
  [
    qc "owner_of is a true inverse"
      QCheck.(pair (int_range 1 8) (int_range 0 5))
      (fun (h, off) ->
        let a = mk_arena () in
        match Arena.owner_of a (Arena.node_base a h + off) with
        | `Node (h', off') -> h' = h && off' = off
        | `Root _ -> false);
    qc "swap sequence preserves last write" (QCheck.list QCheck.small_int)
      (fun vs ->
        let a = mk_arena () in
        let addr = Arena.root_addr a 0 in
        List.iter (fun v -> ignore (Arena.swap a addr v)) vs;
        Arena.read a addr = (match List.rev vs with [] -> 0 | v :: _ -> v));
  ]

let suite = layout_tests @ arena_tests @ rep_arena_tests @ prop_tests
