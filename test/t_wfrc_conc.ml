(* Native (Domain-based) stress tests of the wait-free scheme:
   conservation, exclusive hand-out, deref safety and quiescent
   invariants under real preemption. *)

open Helpers
module Value = Shmem.Value
module Arena = Shmem.Arena
module Mm = Mm_intf

let churn_test ~threads ~rounds ~capacity () =
  let cfg =
    Mm.config ~threads ~capacity ~num_links:0 ~num_data:1 ~num_roots:0 ()
  in
  let mm = mm_of "wfrc" cfg in
  let arena = Mm.arena mm in
  let conflicts = Atomic.make 0 in
  let oom = Atomic.make 0 in
  ignore
    (Harness.Runner.run ~threads (fun ~tid ->
         for _ = 1 to rounds do
           match Mm.alloc mm ~tid with
           | p ->
               (* exclusive ownership probe: write our tid, spin a
                  little, then verify it's still ours *)
               Arena.write_data arena p 0 (tid + 1);
               for _ = 1 to 5 do
                 Domain.cpu_relax ()
               done;
               if Arena.read_data arena p 0 <> tid + 1 then
                 Atomic.incr conflicts;
               Mm.release mm ~tid p
           | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> Atomic.incr oom
         done));
  check_int "no ownership conflicts" 0 (Atomic.get conflicts);
  assert_all_free mm

let deref_stress ~threads ~rounds () =
  let cfg =
    Mm.config ~threads ~capacity:(16 * threads) ~num_links:1 ~num_data:1
      ~num_roots:4 ()
  in
  let mm = mm_of "wfrc" cfg in
  let arena = Mm.arena mm in
  let roots = Array.init 4 (fun i -> Arena.root_addr arena i) in
  Array.iter
    (fun root ->
      let a = Mm.alloc mm ~tid:0 in
      Arena.write_data arena a 0 999;
      Mm.store_link mm ~tid:0 root a;
      Mm.release mm ~tid:0 a)
    roots;
  let dead = Atomic.make 0 in
  ignore
    (Harness.Runner.run ~threads (fun ~tid ->
         let rng = Sched.Rng.create (31 + tid) in
         for i = 1 to rounds do
           let root = roots.(Sched.Rng.int rng 4) in
           if Sched.Rng.int rng 100 < 70 then begin
             let p = Mm.deref mm ~tid root in
             if not (Value.is_null p) then begin
               let r = Arena.read_mm_ref arena p in
               if r < 2 || r land 1 = 1 then Atomic.incr dead;
               if Arena.read_data arena p 0 < 900 then Atomic.incr dead;
               Mm.release mm ~tid p
             end
           end
           else begin
             match Mm.alloc mm ~tid with
             | b ->
                 Arena.write_data arena b 0 (1000 + (tid * rounds) + i);
                 let old = Mm.deref mm ~tid root in
                 ignore (Mm.cas_link mm ~tid root ~old ~nw:b);
                 if not (Value.is_null old) then Mm.release mm ~tid old;
                 Mm.release mm ~tid b
             | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ()
           end
         done));
  check_int "no dead/torn nodes observed" 0 (Atomic.get dead);
  (* drain roots, then everything must be free *)
  Array.iter
    (fun root ->
      let p = Mm.deref mm ~tid:0 root in
      if not (Value.is_null p) then begin
        ignore (Mm.cas_link mm ~tid:0 root ~old:p ~nw:Value.null);
        Mm.release mm ~tid:0 p
      end)
    roots;
  assert_all_free mm

(* Conservation under mixed hold times: threads keep a working set of
   nodes alive across iterations. *)
let working_set_test ~threads ~rounds () =
  let capacity = 32 * threads in
  let cfg =
    Mm.config ~threads ~capacity ~num_links:0 ~num_data:0 ~num_roots:0 ()
  in
  let mm = mm_of "wfrc" cfg in
  ignore
    (Harness.Runner.run ~threads (fun ~tid ->
         let rng = Sched.Rng.create (77 + tid) in
         let held = ref [] in
         let held_n = ref 0 in
         for _ = 1 to rounds do
           if !held_n < 8 && Sched.Rng.bool rng then (
             match Mm.alloc mm ~tid with
             | p ->
                 held := p :: !held;
                 incr held_n
             | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ())
           else
             match !held with
             | [] -> ()
             | p :: rest ->
                 Mm.release mm ~tid p;
                 held := rest;
                 decr held_n
         done;
         List.iter (fun p -> Mm.release mm ~tid p) !held));
  assert_all_free mm

(* Torture the helping path: every thread alternates deref-heavy and
   update-heavy phases against a single hot link. *)
let hot_link_test ~threads ~rounds () =
  let cfg =
    Mm.config ~threads ~capacity:(8 * threads) ~num_links:1 ~num_data:1
      ~num_roots:1 ()
  in
  let mm = mm_of "wfrc" cfg in
  let arena = Mm.arena mm in
  let root = Arena.root_addr arena 0 in
  let a = Mm.alloc mm ~tid:0 in
  Mm.store_link mm ~tid:0 root a;
  Mm.release mm ~tid:0 a;
  ignore
    (Harness.Runner.run ~threads (fun ~tid ->
         for i = 1 to rounds do
           if (i + tid) mod 3 = 0 then begin
             match Mm.alloc mm ~tid with
             | b ->
                 let old = Mm.deref mm ~tid root in
                 ignore (Mm.cas_link mm ~tid root ~old ~nw:b);
                 if not (Value.is_null old) then Mm.release mm ~tid old;
                 Mm.release mm ~tid b
             | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ()
           end
           else begin
             let p = Mm.deref mm ~tid root in
             if not (Value.is_null p) then Mm.release mm ~tid p
           end
         done));
  let p = Mm.deref mm ~tid:0 root in
  if not (Value.is_null p) then begin
    ignore (Mm.cas_link mm ~tid:0 root ~old:p ~nw:Value.null);
    Mm.release mm ~tid:0 p
  end;
  assert_all_free mm

let suite =
  [
    tc "churn x2 threads" (churn_test ~threads:2 ~rounds:5_000 ~capacity:64);
    tc "churn x4 threads" (churn_test ~threads:4 ~rounds:3_000 ~capacity:64);
    tc_slow "churn x8 threads, tight memory"
      (churn_test ~threads:8 ~rounds:2_000 ~capacity:16);
    tc "deref/update stress x2" (deref_stress ~threads:2 ~rounds:4_000);
    tc "deref/update stress x4" (deref_stress ~threads:4 ~rounds:2_500);
    tc "working sets conserve nodes x4" (working_set_test ~threads:4 ~rounds:4_000);
    tc "hot link x4" (hot_link_test ~threads:4 ~rounds:3_000);
    tc_slow "hot link x8" (hot_link_test ~threads:8 ~rounds:2_000);
  ]
