(* RNG, policies, the deterministic engine and exploration. *)

open Helpers
module Rng = Sched.Rng
module Policy = Sched.Policy
module Engine = Sched.Engine
module Explore = Sched.Explore

let rng_tests =
  [
    tc "deterministic per seed" (fun () ->
        let a = Rng.create 7 and b = Rng.create 7 in
        for _ = 1 to 100 do
          check_bool "same stream" true (Rng.next64 a = Rng.next64 b)
        done);
    tc "different seeds differ" (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let same = ref 0 in
        for _ = 1 to 50 do
          if Rng.next64 a = Rng.next64 b then incr same
        done;
        check_bool "streams diverge" true (!same < 5));
    tc "copy forks the stream" (fun () ->
        let a = Rng.create 3 in
        ignore (Rng.next64 a);
        let b = Rng.copy a in
        check_bool "same continuation" true (Rng.next64 a = Rng.next64 b));
    tc "int respects bounds" (fun () ->
        let r = Rng.create 11 in
        for _ = 1 to 1000 do
          let v = Rng.int r 17 in
          if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
        done;
        fails_with (fun () -> Rng.int r 0));
    tc "float in [0,1)" (fun () ->
        let r = Rng.create 13 in
        for _ = 1 to 1000 do
          let f = Rng.float r in
          if f < 0.0 || f >= 1.0 then Alcotest.failf "out of range: %f" f
        done);
    tc "shuffle permutes" (fun () ->
        let r = Rng.create 17 in
        let arr = Array.init 50 Fun.id in
        Rng.shuffle r arr;
        let sorted = Array.copy arr in
        Array.sort compare sorted;
        check_bool "same multiset" true (sorted = Array.init 50 Fun.id);
        check_bool "actually moved" true (arr <> Array.init 50 Fun.id));
    qc "int always within bound"
      QCheck.(pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let r = Rng.create seed in
        let v = Rng.int r bound in
        v >= 0 && v < bound);
    tc "int is uniform (chi-square)" (fun () ->
        (* Regression for the modulo-bias fix: [int] must draw each
           residue with equal probability. Pearson chi-square against
           the uniform expectation, deterministic seeds; the 1e-4
           quantile for the degrees of freedom involved stays below
           the thresholds used, so a correct generator passes with
           huge margin while a structurally biased one fails. *)
        let chi2 ~seed ~bound ~draws =
          let r = Rng.create seed in
          let counts = Array.make bound 0 in
          for _ = 1 to draws do
            let v = Rng.int r bound in
            counts.(v) <- counts.(v) + 1
          done;
          let exp_ = float_of_int draws /. float_of_int bound in
          Array.fold_left
            (fun acc c ->
              let d = float_of_int c -. exp_ in
              acc +. (d *. d /. exp_))
            0.0 counts
        in
        (* bound 7: df 6, chi2 < 33 is ~p=1e-5 *)
        check_bool "bound 7" true (chi2 ~seed:101 ~bound:7 ~draws:70_000 < 33.0);
        (* bound 64 (power of two, never rejects): df 63 *)
        check_bool "bound 64" true
          (chi2 ~seed:103 ~bound:64 ~draws:128_000 < 120.0);
        (* bound 1000: df 999, threshold ~ 999 + 4*sqrt(2*999) *)
        check_bool "bound 1000" true
          (chi2 ~seed:107 ~bound:1000 ~draws:1_000_000 < 1_180.0));
    tc "int handles boundary bounds" (fun () ->
        let r = Rng.create 19 in
        for _ = 1 to 100 do
          check_int "bound 1 is constant" 0 (Rng.int r 1)
        done;
        (* max_int: the rejection cutoff itself is max_int - 1; the
           draw must stay in range without looping forever. *)
        for _ = 1 to 100 do
          let v = Rng.int r max_int in
          if v < 0 || v >= max_int then Alcotest.failf "out of range: %d" v
        done);
  ]

let policy_tests =
  [
    tc "round_robin rotates fairly" (fun () ->
        let p = Policy.round_robin () in
        let runnable = [ 0; 1; 2 ] in
        let picks = List.init 6 (fun i -> Policy.next p ~runnable ~step:i) in
        check_bool "rotation" true (picks = [ 0; 1; 2; 0; 1; 2 ]));
    tc "round_robin skips finished threads" (fun () ->
        let p = Policy.round_robin () in
        check_int "first" 1 (Policy.next p ~runnable:[ 1; 3 ] ~step:0);
        check_int "second" 3 (Policy.next p ~runnable:[ 1; 3 ] ~step:1);
        check_int "wraps" 1 (Policy.next p ~runnable:[ 1; 3 ] ~step:2));
    tc "others_first starves the victim" (fun () ->
        let p = Policy.others_first ~victim:1 in
        check_int "prefers 0" 0 (Policy.next p ~runnable:[ 0; 1; 2 ] ~step:0);
        check_int "victim only when alone" 1
          (Policy.next p ~runnable:[ 1 ] ~step:1));
    tc "replay follows the schedule then falls back" (fun () ->
        let p = Policy.replay [| 2; 0 |] in
        check_int "first" 2 (Policy.next p ~runnable:[ 0; 1; 2 ] ~step:0);
        check_int "second" 0 (Policy.next p ~runnable:[ 0; 1; 2 ] ~step:1);
        check_int "fallback" 0 (Policy.next p ~runnable:[ 0; 1 ] ~step:2));
    tc "random stays within runnable" (fun () ->
        let p = Policy.random ~seed:5 in
        for step = 0 to 500 do
          let pick = Policy.next p ~runnable:[ 3; 5; 9 ] ~step in
          check_bool "member" true (List.mem pick [ 3; 5; 9 ])
        done);
    tc "every policy rejects an empty runnable list" (fun () ->
        List.iter
          (fun (name, p) ->
            match Policy.next p ~runnable:[] ~step:0 with
            | _ -> Alcotest.failf "%s accepted an empty runnable list" name
            | exception Invalid_argument msg ->
                check_bool
                  (Printf.sprintf "%s names itself (%s)" name msg)
                  true
                  (Helpers.contains msg "empty runnable"))
          [
            ("round_robin", Policy.round_robin ());
            ("random", Policy.random ~seed:1);
            ("replay", Policy.replay [| 0; 1 |]);
            ("replay(exhausted)", Policy.replay [||]);
            ("others_first", Policy.others_first ~victim:0);
            ("biased", Policy.biased ~seed:1 ~victim:0 ~weight:2);
            ("crashed", Policy.crashed ~dead:[ 0 ] (Policy.round_robin ()));
          ]);
    tc "others_first is deterministic: lowest non-victim, else victim"
      (fun () ->
        let p = Policy.others_first ~victim:2 in
        check_int "lowest non-victim" 0
          (Policy.next p ~runnable:[ 0; 1; 2 ] ~step:0);
        check_int "still lowest" 1 (Policy.next p ~runnable:[ 1; 2 ] ~step:1);
        check_int "victim only alone" 2 (Policy.next p ~runnable:[ 2 ] ~step:2));
    tc "biased picks the victim sometimes" (fun () ->
        let p = Policy.biased ~seed:3 ~victim:0 ~weight:3 in
        let victim = ref 0 and other = ref 0 in
        for step = 0 to 999 do
          if Policy.next p ~runnable:[ 0; 1 ] ~step = 0 then incr victim
          else incr other
        done;
        check_bool "victim occasionally" true (!victim > 100);
        check_bool "others mostly" true (!other > !victim));
  ]

let engine_tests =
  [
    tc "runs all fibers to completion" (fun () ->
        let done_ = Array.make 3 false in
        let o =
          Engine.run ~threads:3 ~policy:(Policy.round_robin ()) (fun tid ->
              let c = Atomics.Primitives.make 0 in
              ignore (Atomics.Primitives.faa c 1);
              done_.(tid) <- true)
        in
        check_bool "all done" true (Array.for_all Fun.id done_);
        check_int "steps accounted" o.total_steps
          (Array.fold_left ( + ) 0 o.steps));
    tc "steps count primitive crossings" (fun () ->
        let o =
          Engine.run ~threads:1 ~policy:(Policy.round_robin ()) (fun _ ->
              let c = Atomics.Primitives.make 0 in
              for _ = 1 to 10 do
                ignore (Atomics.Primitives.faa c 1)
              done)
        in
        (* 10 yields + the final resume to completion *)
        check_int "steps" 11 o.steps.(0));
    tc "schedule is replayable" (fun () ->
        let trace = ref [] in
        let body tid =
          let c = Atomics.Primitives.make 0 in
          for _ = 1 to 3 do
            ignore (Atomics.Primitives.faa c 1);
            trace := tid :: !trace
          done
        in
        let o1 = Engine.run ~threads:2 ~policy:(Policy.random ~seed:99) body in
        let t1 = !trace in
        trace := [];
        let o2 =
          Engine.run ~threads:2 ~policy:(Policy.replay o1.schedule) body
        in
        check_bool "same schedule" true (o1.schedule = o2.schedule);
        check_bool "same trace" true (t1 = !trace));
    tc "fiber exceptions surface with tid" (fun () ->
        match
          Engine.run ~threads:2 ~policy:(Policy.round_robin ()) (fun tid ->
              Atomics.Schedpoint.hit ();
              if tid = 1 then failwith "kaboom")
        with
        | _ -> Alcotest.fail "expected Fiber_failed"
        | exception Engine.Fiber_failed (tid, Failure msg) ->
            check_int "failing tid" 1 tid;
            check_string "message" "kaboom" msg
        | exception e -> raise e);
    tc "max_steps guards runaway fibers" (fun () ->
        match
          Engine.run ~max_steps:100 ~threads:1
            ~policy:(Policy.round_robin ()) (fun _ ->
              let c = Atomics.Primitives.make 0 in
              while true do
                ignore (Atomics.Primitives.faa c 1)
              done)
        with
        | _ -> Alcotest.fail "expected Out_of_steps"
        | exception Engine.Out_of_steps -> ());
    tc "current_tid/now valid inside a run" (fun () ->
        let seen = ref [] in
        ignore
          (Engine.run ~threads:2 ~policy:(Policy.round_robin ()) (fun tid ->
               Atomics.Schedpoint.hit ();
               seen := (tid, Engine.current_tid (), Engine.now ()) :: !seen));
        List.iter
          (fun (tid, cur, now) ->
            check_int "tid matches" tid cur;
            check_bool "clock positive" true (now > 0))
          !seen);
    tc "atomicity: two fibers incrementing via faa" (fun () ->
        let c = Atomics.Primitives.make 0 in
        ignore
          (Engine.run ~threads:2 ~policy:(Policy.random ~seed:1) (fun _ ->
               for _ = 1 to 20 do
                 ignore (Atomics.Primitives.faa c 1)
               done));
        check_int "no lost updates" 40 (Atomic.get c));
    tc "read-modify-write race IS observable with plain ops" (fun () ->
        (* sanity that the engine actually interleaves: non-atomic
           increments lose updates under some schedule *)
        let lost = ref false in
        let s = ref 0 in
        while not !lost && !s < 200 do
          let c = Atomics.Primitives.make 0 in
          ignore
            (Engine.run ~threads:2 ~policy:(Policy.random ~seed:!s)
               (fun _ ->
                 for _ = 1 to 5 do
                   let v = Atomics.Primitives.read c in
                   Atomics.Primitives.write c (v + 1)
                 done));
          if Atomic.get c < 10 then lost := true;
          incr s
        done;
        check_bool "some schedule loses updates" true !lost);
  ]

let explore_tests =
  [
    tc "exhaustive covers the full tree of a tiny program" (fun () ->
        (* 2 fibers × 2 primitives each: C(4,2)=6 interleavings *)
        let r =
          exhaustive_ok ~threads:2 (fun () ->
              let c = Atomics.Primitives.make 0 in
              ( (fun _ ->
                  ignore (Atomics.Primitives.faa c 1);
                  ignore (Atomics.Primitives.faa c 1)),
                fun () -> check_int "sum" 4 (Atomic.get c) ))
        in
        check_bool "exhausted" true r.exhausted;
        (* each schedule has 6 decisions (3 per fiber incl. final), so
           more schedules than the 6 core interleavings are explored;
           at least those must be present *)
        check_bool "at least 6" true (r.schedules_run >= 6));
    tc "exhaustive finds a seeded bug and reports its schedule" (fun () ->
        let r =
          Explore.exhaustive ~threads:2 ~max_schedules:10_000 (fun () ->
              let c = Atomics.Primitives.make 0 in
              ( (fun _ ->
                  (* racy read-modify-write *)
                  let v = Atomics.Primitives.read c in
                  Atomics.Primitives.write c (v + 1)),
                fun () ->
                  if Atomic.get c <> 2 then failwith "lost update" ))
        in
        (match r.failure with
        | Some f ->
            check_bool "nonempty schedule" true (Array.length f.schedule > 0);
            (* replaying the counterexample reproduces it *)
            let again =
              Explore.replay ~threads:2 ~schedule:f.schedule (fun () ->
                  let c = Atomics.Primitives.make 0 in
                  ( (fun _ ->
                      let v = Atomics.Primitives.read c in
                      Atomics.Primitives.write c (v + 1)),
                    fun () ->
                      if Atomic.get c <> 2 then failwith "lost update" ))
            in
            check_bool "replay reproduces" true (again <> None)
        | None -> Alcotest.fail "expected to find the lost update"));
    tc "shrink minimises a failing schedule" (fun () ->
        (* the racy read-modify-write program: find a counterexample,
           then shrink it; the result must still fail and be no longer
           than the original *)
        let mk () =
          let c = Atomics.Primitives.make 0 in
          ( (fun _ ->
              let v = Atomics.Primitives.read c in
              Atomics.Primitives.write c (v + 1)),
            fun () -> if Atomic.get c <> 2 then failwith "lost update" )
        in
        let r = Explore.exhaustive ~threads:2 ~max_schedules:10_000 mk in
        match r.failure with
        | None -> Alcotest.fail "expected a counterexample"
        | Some f -> (
            match Explore.shrink ~threads:2 ~schedule:f.schedule mk with
            | None -> Alcotest.fail "shrink lost the failure"
            | Some small ->
                check_bool "no longer than original" true
                  (Array.length small <= Array.length f.schedule);
                check_bool "still fails" true
                  (Explore.replay ~threads:2 ~schedule:small mk <> None);
                (* the minimal lost-update needs at most 3 recorded
                   decisions (read A, read B, rest follows by fallback) *)
                check_bool
                  (Printf.sprintf "small enough (%d)" (Array.length small))
                  true
                  (Array.length small <= 3)));
    tc "shrink refuses non-reproducing schedules" (fun () ->
        let mk () =
          let c = Atomics.Primitives.make 0 in
          ( (fun _ -> ignore (Atomics.Primitives.faa c 1)),
            fun () -> check_int "sum" 2 (Atomic.get c) )
        in
        check_bool "none" true
          (Explore.shrink ~threads:2 ~schedule:[| 0; 1; 0; 1 |] mk = None));
    tc "random_sweep is reproducible per seed" (fun () ->
        let mk () =
          let c = Atomics.Primitives.make 0 in
          ( (fun _ -> ignore (Atomics.Primitives.faa c 1)),
            fun () -> check_int "sum" 2 (Atomic.get c) )
        in
        let r1 = Explore.random_sweep ~threads:2 ~runs:20 ~seed:5 mk in
        let r2 = Explore.random_sweep ~threads:2 ~runs:20 ~seed:5 mk in
        check_int "same runs" r1.schedules_run r2.schedules_run;
        check_bool "no failures" true (r1.failure = None && r2.failure = None));
  ]

let base_suite = rng_tests @ policy_tests @ engine_tests @ explore_tests

(* Crash modelling: quorum completion + the crashed policy. *)
let crash_tests =
  [
    tc "quorum run finishes despite an abandoned fiber" (fun () ->
        let done0 = ref false in
        let o =
          Engine.run ~quorum:[ 0 ] ~threads:2
            ~policy:(Policy.crashed ~dead:[ 1 ] ~after:5 (Policy.random ~seed:3))
            (fun tid ->
              if tid = 0 then begin
                let c = Atomics.Primitives.make 0 in
                for _ = 1 to 10 do
                  ignore (Atomics.Primitives.faa c 1)
                done;
                done0 := true
              end
              else
                (* never terminates; must be abandoned *)
                let c = Atomics.Primitives.make 0 in
                while true do
                  ignore (Atomics.Primitives.faa c 1)
                done)
        in
        check_bool "worker finished" true !done0;
        check_bool "victim got some steps before dying" true (o.steps.(1) <= 6));
    tc "crashed policy never schedules the dead after the deadline" (fun () ->
        let p = Policy.crashed ~dead:[ 1 ] ~after:3 (Policy.round_robin ()) in
        for step = 0 to 2 do
          ignore (Policy.next p ~runnable:[ 0; 1 ] ~step)
        done;
        for step = 3 to 20 do
          check_int "only 0 after crash" 0
            (Policy.next p ~runnable:[ 0; 1 ] ~step)
        done);
    tc "quorum tid out of range rejected" (fun () ->
        fails_with (fun () ->
            Engine.run ~quorum:[ 5 ] ~threads:2
              ~policy:(Policy.round_robin ()) (fun _ -> ())));
    tc "wfrc survives a helper crashed inside H4..H8" (fun () ->
        (* worker 0 performs derefs; worker 1 updates (and thus helps);
           crash 1 at random points — 0 must always finish, and the
           announcement pool must still serve future derefs *)
        for s = 0 to 49 do
          let cfg =
            Mm_intf.config ~threads:2 ~capacity:16 ~num_links:1 ~num_data:1
              ~num_roots:1 ()
          in
          let mm = Helpers.mm_of "wfrc" cfg in
          let arena = Mm_intf.arena mm in
          let root = Shmem.Arena.root_addr arena 0 in
          let a = Mm_intf.alloc mm ~tid:0 in
          Mm_intf.store_link mm ~tid:0 root a;
          Mm_intf.release mm ~tid:0 a;
          let finished = ref false in
          let body tid =
            if tid = 0 then begin
              for _ = 1 to 6 do
                let p = Mm_intf.deref mm ~tid root in
                if not (Shmem.Value.is_null p) then Mm_intf.release mm ~tid p
              done;
              finished := true
            end
            else
              while true do
                match Mm_intf.alloc mm ~tid with
                | b ->
                    let old = Mm_intf.deref mm ~tid root in
                    ignore (Mm_intf.cas_link mm ~tid root ~old ~nw:b);
                    if not (Shmem.Value.is_null old) then
                      Mm_intf.release mm ~tid old;
                    Mm_intf.release mm ~tid b
                | exception Mm_intf.Out_of_memory | exception Mm_intf.Out_of_nodes _ -> ()
              done
          in
          let policy =
            Policy.crashed ~dead:[ 1 ] ~after:(10 + (s * 3))
              (Policy.random ~seed:(777 + s))
          in
          ignore
            (Engine.run ~max_steps:100_000 ~quorum:[ 0 ] ~threads:2 ~policy
               body);
          if not !finished then Alcotest.failf "seed %d: worker starved" s
        done);
  ]

let suite = base_suite @ crash_tests
