(* Constructs Hits and Misses but never Never_incremented. *)

let tally c hit = Counters.incr c (if hit then Counters.Hits else Counters.Misses)
