(* Fixture: an event vocabulary with a constructor nobody ever
   constructs. Expected: one [counter-coverage] violation. *)

type event = Hits | Misses | Never_incremented

let to_string = function
  | Hits -> "hits"
  | Misses -> "misses"
  | Never_incremented -> "never"
