(* Constructs Hits from OCaml; Stub_bump is bumped by user.c. *)

let tally c = Counters.incr c Counters.Hits
