(* Fixture: an event vocabulary where one constructor is only ever
   bumped from a C stub.  The counter-coverage pass must accept a
   whole-word token occurrence in a sibling .c source as liveness.
   Expected: zero violations. *)

type event = Hits | Stub_bump

let to_string = function Hits -> "hits" | Stub_bump -> "stub_bump"
