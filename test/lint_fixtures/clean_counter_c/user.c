/* Bumps the Stub_bump telemetry row straight from the stub, the way
   park_stubs.c accounts futex wakeups.  The C enum mirrors the OCaml
   variant order; the whole-word identifier is what keeps the
   constructor alive for counter-coverage (comments and strings are
   blanked before the scan, so a mention here would not count). */

enum clean_counter_event { Hits = 0, Stub_bump = 1 };

void bump_from_stub(long *rows)
{
  __atomic_fetch_add(&rows[Stub_bump], 1, __ATOMIC_SEQ_CST);
}
