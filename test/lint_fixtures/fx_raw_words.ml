(* Fixture: client code poking the raw unboxed word store directly
   instead of addressing through Arena/Hot (or, above that, Mm_intf).
   Expected: [raw-primitives] violations. *)

module W = Atomics.Words

let sneak w = W.set w 0 42
let peek w = Atomics.Words.get w 0
