(* Fixture: releases the acquired reference on only one branch of a
   condition that is NOT the null-guard idiom, leaking it on the
   other. Expected: one [unbalanced-deref] violation. *)

let maybe_read mm arena ~tid root ~verbose =
  let w = Mm.deref mm ~tid root in
  if verbose then begin
    ignore (Arena.read_data arena w 0);
    Mm.release mm ~tid w
  end
  else ignore (Arena.read_data arena w 1)
