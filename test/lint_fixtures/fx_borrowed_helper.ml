(* Fixture: interprocedural ownership. [peek] only borrows its
   argument — its body neither releases [w] nor hands it off — so a
   call to it does NOT discharge the caller's obligation. The
   accessor-style name is irrelevant: the in-file summary is the
   authority. Expected: one [unbalanced-deref] violation, in
   [read_leaky]. *)

let peek arena w = Arena.read_data arena (Value.unmark w) 0

let read_leaky mm arena ~tid root =
  let w = Mm.deref mm ~tid root in
  peek arena w

(* Contrast: the same borrow is fine when the caller still releases. *)
let drop mm ~tid w = Mm.release mm ~tid w

let read_ok mm arena ~tid root =
  let w = Mm.deref mm ~tid root in
  let v = peek arena w in
  drop mm ~tid w;
  v
