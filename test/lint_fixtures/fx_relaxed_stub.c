/* Fixture: a stub using a memory ordering weaker than the declared
   table (all-SEQ_CST today).  Expected: one [stub-ordering]
   violation, at the __ATOMIC_RELAXED load. */

#include <stdint.h>

long relaxed_read(long *p)
{
  /* __ATOMIC_ACQUIRE in a comment must not confuse the scanner. */
  return __atomic_load_n(p, __ATOMIC_RELAXED);
}

long seq_cst_read(long *p)
{
  return __atomic_load_n(p, __ATOMIC_SEQ_CST);
}
