(* Fixture: client code allocating straight from the native free
   store instead of going through a manager's [alloc].
   Expected: [raw-primitives] violations. *)

module F = Shmem.Freestore

let grab store = F.alloc store
