(* Fixture: correct reclamation idioms — the lint must stay quiet
   here. Expected: zero violations. *)

(* Straight-line acquire/use/release. *)
let read_root mm arena ~tid root =
  let w = Mm.deref mm ~tid root in
  let v = Arena.read_data arena (Value.unmark w) 0 in
  Mm.release mm ~tid w;
  v

(* The null-guard idiom: releasing on the non-null branch only is
   fine, because the null branch carries no reference. *)
let drop_next mm ~tid node =
  let w = Mm.deref mm ~tid (next_addr node) in
  if not (Value.is_null w) then Mm.release mm ~tid w

(* Ownership transfer: returning the acquired reference hands the
   obligation to the caller. *)
let take mm ~tid root = Mm.deref mm ~tid root

(* Hand-off to a helper counts as a transfer too. *)
let push_back stash mm ~tid root =
  let w = Mm.deref mm ~tid root in
  Stash.put stash w

(* Alias discharge: releasing the unmarked alias releases the node. *)
let drop_unmarked mm ~tid root =
  let w = Mm.deref mm ~tid root in
  let u = Value.unmark w in
  Mm.release mm ~tid u

(* Buffered release (DESIGN.md §6.3): parking the decrement in the rc
   buffer discharges the obligation because this file also flushes —
   the buffer-full trigger right here, quiescence elsewhere. *)
let release_buffered mm buf ~tid root =
  let w = Mm.deref mm ~tid root in
  if Rcbuf.defer_release buf ~tid w then Rcbuf.flush buf ~tid

