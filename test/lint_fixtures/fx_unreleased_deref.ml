(* Fixture: acquires a reference and never discharges it.
   Expected: one [unbalanced-deref] violation. *)

let peek mm arena ~tid root =
  let w = Mm.deref mm ~tid root in
  Arena.read_data arena (Value.unmark w) 0
