(* Fixture: a buffered release in a file with no flush site. The
   decrement is parked in the rc buffer forever — nothing in this
   module can ever apply it — so the reference acquired by the deref
   is never actually returned. Expected: one unbalanced-deref
   violation. *)

let park_forever mm buf ~tid root =
  let w = Mm.deref mm ~tid root in
  if Rcbuf.defer_release buf ~tid w then ()
