(* Fixture: buffered release where the only flush site is the
   quiescence-driven [flush_all] — DESIGN.md §6.3's second trigger.
   The protocol pass must accept any in-file flush site, not just the
   buffer-full [flush].  Expected: zero violations. *)

let release_deferred mm buf ~tid root =
  let w = Mm.deref mm ~tid root in
  if Rcbuf.defer_release buf ~tid w then ()

(* The quiescence hook: the domain parks, so every deferred decrement
   in the buffer is flushed to the shared counters. *)
let on_quiesce buf ~tid = Rcbuf.flush_all buf ~tid
