(* Fixture: client code reaching around the manager to the raw
   shared-memory primitives. Expected: [raw-primitives] violations. *)

let sneak_read ~tid addr = Atomics.Primitives.read_at ~tid addr

let sneak_cas ~tid addr ~expect ~repl =
  Atomics.Primitives.cas_at ~tid addr ~expect ~repl
